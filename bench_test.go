// Benchmarks regenerating the paper's tables, figures and analytical
// claims. Each benchmark corresponds to an experiment id in DESIGN.md
// (E1-E18) and reports the paper-relevant quantity as a custom metric
// besides ns/op:
//
//	accept/log    acceptance fraction of a log corpus (degree of
//	              concurrency, Fig. 4 / Section III-C)
//	restarts/txn  runtime abort pressure (Fig. 5, Section VI)
//	steps         parallel comparison depth (Fig. 6, Theorem 4)
//	msgs/op       DMT(k) message overhead (Section V-B)
//
// Run: go test -bench=. -benchmem
package mdts

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/classify"
	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/enumerate"
	"repro/internal/interval"
	"repro/internal/lock"
	"repro/internal/mvmt"
	"repro/internal/nested"
	"repro/internal/occ"
	"repro/internal/oplog"
	"repro/internal/sched"
	"repro/internal/sgt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tsto"
	"repro/internal/txn"
	"repro/internal/vecproc"
	"repro/internal/wal"
	"repro/internal/workload"
)

// corpus generates a deterministic set of random two-step logs used by
// the acceptance benchmarks.
func corpus(n, txns, items int, seed int64) []*oplog.Log {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"x", "y", "z", "w"}[:items]
	logs := make([]*oplog.Log, 0, n)
	for i := 0; i < n; i++ {
		type pend struct{ r, w oplog.Op }
		var pends []pend
		for t := 1; t <= txns; t++ {
			pends = append(pends, pend{
				oplog.R(t, names[rng.Intn(items)]),
				oplog.W(t, names[rng.Intn(items)]),
			})
		}
		var ops []oplog.Op
		emitted := make([]int, len(pends))
		for len(ops) < 2*len(pends) {
			j := rng.Intn(len(pends))
			if emitted[j] == 0 {
				ops = append(ops, pends[j].r)
				emitted[j] = 1
			} else if emitted[j] == 1 {
				ops = append(ops, pends[j].w)
				emitted[j] = 2
			}
		}
		logs = append(logs, oplog.NewLog(ops...))
	}
	return logs
}

// multiCorpus generates random multi-step logs (q ops per transaction).
func multiCorpus(n, txns, q, items int, seed int64) []*oplog.Log {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"x", "y", "z", "w"}[:items]
	logs := make([]*oplog.Log, 0, n)
	for i := 0; i < n; i++ {
		var ops []oplog.Op
		for t := 1; t <= txns; t++ {
			for o := 0; o < q; o++ {
				ops = append(ops, oplog.NewOp(t, oplog.Kind(rng.Intn(2)), names[rng.Intn(items)]))
			}
		}
		rng.Shuffle(len(ops), func(a, b int) { ops[a], ops[b] = ops[b], ops[a] })
		logs = append(logs, oplog.NewLog(ops...))
	}
	return logs
}

// E1/E16: acceptance (degree of concurrency) of each recognizer over the
// same two-step corpus. The paper's shape: DSR ⊇ TO(3) ∪ TO(1) ⊇ each
// TO class; TO(3+) ⊇ TO(3); 2PL incomparable with the TO classes.
func BenchmarkAcceptanceCensus(b *testing.B) {
	logs := corpus(400, 3, 3, 17)
	recognizers := []struct {
		name string
		fn   func(*oplog.Log) bool
	}{
		{"MT1", func(l *oplog.Log) bool { return engine.Accepts(1, l) }},
		{"MT2", func(l *oplog.Log) bool { return engine.Accepts(2, l) }},
		{"MT3", func(l *oplog.Log) bool { return engine.Accepts(3, l) }},
		{"MT3plus", func(l *oplog.Log) bool { return composite.Accepts(3, l) }},
		{"TO1def4", classify.TO1},
		{"TwoPL", classify.TwoPL},
		{"DSR", classify.DSR},
	}
	for _, r := range recognizers {
		b.Run(r.name, func(b *testing.B) {
			accepted := 0
			total := 0
			for i := 0; i < b.N; i++ {
				l := logs[i%len(logs)]
				if r.fn(l) {
					accepted++
				}
				total++
			}
			b.ReportMetric(float64(accepted)/float64(total), "accept/log")
		})
	}
}

// E6: the Fig. 4 hierarchy census (enumeration + classification of every
// 2-transaction two-step log; -short for CI speed, the full 3-txn census
// runs in cmd/mthier).
func BenchmarkHierarchyCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := enumerate.RunCensus(2, []string{"x", "y"})
		if c.Total != 48 {
			b.Fatal("census broken")
		}
	}
}

// E10: MT(k) recognizes a log in O(nqk) — scheduling cost must grow
// linearly in each of n (transactions), q (operations) and k (vector
// size). ns/op across the sweeps exposes the shape.
func BenchmarkMTkScaling(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		logs := multiCorpus(8, n, 3, 4, 23)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := engine.NewScheduler(engine.Options{K: 5})
				s.AcceptLog(logs[i%len(logs)])
			}
		})
	}
	for _, q := range []int{2, 4, 8, 16} {
		logs := multiCorpus(8, 16, q, 4, 29)
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := engine.NewScheduler(engine.Options{K: 5})
				s.AcceptLog(logs[i%len(logs)])
			}
		})
	}
	logsK := multiCorpus(8, 16, 3, 4, 31)
	for _, k := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := engine.NewScheduler(engine.Options{K: k})
				s.AcceptLog(logsK[i%len(logsK)])
			}
		})
	}
}

// E8: vector comparison — sequential O(k) versus the simulated parallel
// O(log k) depth (reported as "steps").
func BenchmarkVectorCompare(b *testing.B) {
	for _, k := range []int{4, 16, 64, 256} {
		a, c := core.NewVector(k), core.NewVector(k)
		// Fully defined vectors differing at the last element: worst case.
		for m := 1; m <= k; m++ {
			a.SetElem(m, int64(m))
			if m < k {
				c.SetElem(m, int64(m))
			} else {
				c.SetElem(m, int64(m+1))
			}
		}
		b.Run(fmt.Sprintf("seq/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Compare(c)
			}
		})
		b.Run(fmt.Sprintf("parsim/k=%d", k), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				steps = vecproc.Compare(a, c).ParallelSteps
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// E11: the composite protocol costs O(nqk) like MT(k) (not O(nqk²) as
// naive independent subprotocols would) while accepting the union class.
func BenchmarkComposite(b *testing.B) {
	logs := corpus(100, 3, 3, 37)
	for _, k := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			accepted, total := 0, 0
			for i := 0; i < b.N; i++ {
				s := composite.NewScheduler(composite.Options{K: k})
				ok, _ := s.AcceptLog(logs[i%len(logs)])
				if ok {
					accepted++
				}
				total++
			}
			b.ReportMetric(float64(accepted)/float64(total), "accept/log")
		})
	}
}

// E12: DMT(k) per-operation cost and message overhead by site count.
func BenchmarkDMT(b *testing.B) {
	logs := corpus(50, 4, 3, 41)
	for _, sites := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			var msgs, ops int64
			for i := 0; i < b.N; i++ {
				c := dmt.NewCluster(dmt.Options{K: 3, Sites: sites})
				l := logs[i%len(logs)]
				c.AcceptLog(l)
				msgs += c.Messages()
				ops += int64(l.Len())
			}
			b.ReportMetric(float64(msgs)/float64(ops), "msgs/op")
		})
	}
}

// E13: Section VI-A — chained dependencies through one hot item. The
// interval scheme without compaction exhausts its space after ~62
// midpoint splits; MT(2) encodes any depth. "depth" is the chain length
// achieved before the first abort (capped at 500).
func BenchmarkIntervalVsVector(b *testing.B) {
	b.Run("interval-nocompact", func(b *testing.B) {
		depth := 0
		for i := 0; i < b.N; i++ {
			iv := interval.New(storage.New(), interval.Options{NoCompact: true})
			depth = chainDepth(iv, 500)
		}
		b.ReportMetric(float64(depth), "depth")
	})
	b.Run("interval-compact", func(b *testing.B) {
		depth := 0
		for i := 0; i < b.N; i++ {
			iv := interval.New(storage.New(), interval.Options{})
			depth = chainDepth(iv, 500)
		}
		b.ReportMetric(float64(depth), "depth")
	})
	b.Run("vector", func(b *testing.B) {
		depth := 0
		for i := 0; i < b.N; i++ {
			s := engine.NewScheduler(engine.Options{K: 2})
			d := 0
			for t := 1; t <= 500; t++ {
				if s.Step(oplog.R(t, "hot")).Verdict == core.Reject {
					break
				}
				if s.Step(oplog.W(t, "hot")).Verdict == core.Reject {
					break
				}
				d = t
			}
			depth = d
		}
		b.ReportMetric(float64(depth), "depth")
	})
}

func chainDepth(s sched.Scheduler, max int) int {
	depth := 0
	for t := 1; t <= max; t++ {
		s.Begin(t)
		if _, err := s.Read(t, "hot"); err != nil {
			break
		}
		if err := s.Write(t, "hot", int64(t)); err != nil {
			break
		}
		if err := s.Commit(t); err != nil {
			break
		}
		depth = t
	}
	return depth
}

// E9/E14: acceptance rate by vector size on a conflicting multi-step
// corpus — grows with k and saturates at 2q-1 (Theorem 3; Section VI-B
// guideline (a): more conflict justifies a larger vector).
func BenchmarkVectorSizeSweep(b *testing.B) {
	logs := multiCorpus(300, 3, 3, 3, 43) // q = 3 -> saturation at k = 5
	for _, k := range []int{1, 2, 3, 5, 7, 9} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			accepted, total := 0, 0
			for i := 0; i < b.N; i++ {
				if engine.Accepts(k, logs[i%len(logs)]) {
					accepted++
				}
				total++
			}
			b.ReportMetric(float64(accepted)/float64(total), "accept/log")
		})
	}
}

// runtimeBench runs a workload against a scheduler and reports
// restarts/txn (the abort pressure the protocols trade off).
func runtimeBench(b *testing.B, mk func(*storage.Store) sched.Scheduler, hot bool) {
	cfg := workload.Config{
		Txns: 200, OpsPerTxn: 4, Items: 64, ReadFraction: 0.7, Seed: 7,
	}
	if hot {
		cfg.HotItems = 4
		cfg.HotFraction = 0.8
	}
	specs := cfg.Generate()
	var restarts, txns int64
	for i := 0; i < b.N; i++ {
		rep := sim.Run(sim.Config{
			NewScheduler: mk,
			Specs:        specs,
			Workers:      8,
			MaxAttempts:  500,
			Backoff:      10 * time.Microsecond,
		})
		restarts += rep.Restarts
		txns += int64(rep.Txns)
	}
	b.ReportMetric(float64(restarts)/float64(txns), "restarts/txn")
}

// E17: runtime throughput/abort shape under low and high contention for
// every protocol.
func BenchmarkRuntime(b *testing.B) {
	protos := []struct {
		name string
		mk   func(*storage.Store) sched.Scheduler
	}{
		{"MT7", func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 7, StarvationAvoidance: true}})
		}},
		{"MT7mono", func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{
				K: 7, StarvationAvoidance: true, MonotonicEncoding: true}})
		}},
		{"2PL", func(st *storage.Store) sched.Scheduler { return lock.NewTwoPL(st) }},
		{"TO1", func(st *storage.Store) sched.Scheduler {
			return tsto.New(st, tsto.Options{ThomasWriteRule: true})
		}},
		{"OCC", func(st *storage.Store) sched.Scheduler { return occ.New(st) }},
		{"SGT", func(st *storage.Store) sched.Scheduler { return sgt.New(st) }},
		{"Interval", func(st *storage.Store) sched.Scheduler {
			return interval.New(st, interval.Options{})
		}},
		{"MVMT7", func(st *storage.Store) sched.Scheduler {
			return mvmt.New(st, mvmt.Options{K: 7})
		}},
	}
	for _, p := range protos {
		b.Run("uniform/"+p.name, func(b *testing.B) { runtimeBench(b, p.mk, false) })
	}
	for _, p := range protos {
		b.Run("hotspot/"+p.name, func(b *testing.B) { runtimeBench(b, p.mk, true) })
	}
}

// E15: rollback schemes — immediate write validation (Algorithm 1) versus
// the Section VI-C-2 deferred scheme. Deferred never aborts a committed
// transaction; immediate detects conflicts earlier.
func BenchmarkRollback(b *testing.B) {
	for _, deferred := range []bool{false, true} {
		name := "immediate"
		if deferred {
			name = "deferred"
		}
		b.Run(name, func(b *testing.B) {
			runtimeBench(b, func(st *storage.Store) sched.Scheduler {
				return sched.NewMT(st, sched.MTOptions{
					Core:        engine.Options{K: 7, StarvationAvoidance: true},
					DeferWrites: deferred,
				})
			}, true)
		})
	}
}

// E15b: partial rollback (Section VI-C-1) — operations executed per
// committed transaction with full restarts versus mid-transaction
// resumes, on a contended-tail workload.
func BenchmarkPartialRollback(b *testing.B) {
	for _, partial := range []bool{false, true} {
		name := "full-restart"
		if partial {
			name = "partial-resume"
		}
		b.Run(name, func(b *testing.B) {
			var ops, txns int64
			for i := 0; i < b.N; i++ {
				st := storage.New()
				m := sched.NewMT(st, sched.MTOptions{
					Core: engine.Options{K: 9, StarvationAvoidance: true}})
				rt := &txn.Runtime{
					Sched: m, MaxAttempts: 100,
					PartialRollback: partial, Store: st,
				}
				specs := workload.Config{
					Txns: 50, OpsPerTxn: 5, Items: 8, ReadFraction: 0.8, Seed: 67,
				}.Generate()
				for _, s := range specs {
					res := rt.Exec(s)
					ops += int64(res.OpsExecuted)
					txns++
				}
			}
			b.ReportMetric(float64(ops)/float64(txns), "ops/txn")
		})
	}
}

// E7: the Fig. 5 starvation fix — retries needed for the starving
// transaction with and without the flush-and-reseed rule.
func BenchmarkStarvationFix(b *testing.B) {
	run := func(fix bool) float64 {
		s := engine.NewScheduler(engine.Options{K: 2, StarvationAvoidance: fix})
		s.AcceptLog(oplog.MustParse("W1[x] W2[x] R3[y]"))
		attempts := 0
		for ; attempts < 10; attempts++ {
			d := s.Step(oplog.W(3, "x"))
			if d.Verdict == core.Accept {
				break
			}
			s.Abort(3, d.Blocker)
			s.Step(oplog.R(3, "y"))
		}
		return float64(attempts)
	}
	b.Run("without-fix", func(b *testing.B) {
		var a float64
		for i := 0; i < b.N; i++ {
			a = run(false)
		}
		b.ReportMetric(a, "retries")
	})
	b.Run("with-fix", func(b *testing.B) {
		var a float64
		for i := 0; i < b.N; i++ {
			a = run(true)
		}
		b.ReportMetric(a, "retries")
	})
}

// E18: the Thomas write rule turns obsolete-write aborts into ignored
// writes; accept fraction of a blind-write-heavy corpus with and without.
func BenchmarkThomasWriteRule(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	var logs []*oplog.Log
	for i := 0; i < 200; i++ {
		var ops []oplog.Op
		for t := 1; t <= 3; t++ {
			ops = append(ops, oplog.W(t, []string{"x", "y"}[rng.Intn(2)]))
			ops = append(ops, oplog.W(t, []string{"x", "y"}[rng.Intn(2)]))
		}
		rng.Shuffle(len(ops), func(a, c int) { ops[a], ops[c] = ops[c], ops[a] })
		logs = append(logs, oplog.NewLog(ops...))
	}
	for _, thomas := range []bool{false, true} {
		name := "off"
		if thomas {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			accepted, total := 0, 0
			for i := 0; i < b.N; i++ {
				s := engine.NewScheduler(engine.Options{K: 3, ThomasWriteRule: thomas})
				if ok, _ := s.AcceptLog(logs[i%len(logs)]); ok {
					accepted++
				}
				total++
			}
			b.ReportMetric(float64(accepted)/float64(total), "accept/log")
		})
	}
}

// E4 companion: hierarchical MT(k1,k2) scheduling cost versus flat MT(k)
// on the same logs (group lookups add a constant factor).
func BenchmarkNestedVsFlat(b *testing.B) {
	logs := corpus(100, 4, 3, 59)
	groups := map[int]int{1: 1, 2: 1, 3: 2, 4: 2}
	b.Run("flat-MT2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := engine.NewScheduler(engine.Options{K: 2})
			s.AcceptLog(logs[i%len(logs)])
		}
	})
	b.Run("nested-MT22", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := nested.New2Level(2, 2, groups)
			s.AcceptLog(logs[i%len(logs)])
		}
	})
}

// E2 companion: hot-item right-shifted encoding — fraction of vector
// pairs left incomparable (future flexibility) with and without the
// optimization, over a skewed corpus.
func BenchmarkHotItemEncoding(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	var logs []*oplog.Log
	for i := 0; i < 100; i++ {
		var ops []oplog.Op
		for t := 1; t <= 4; t++ {
			// Two ops on the hot item, one elsewhere.
			ops = append(ops, oplog.NewOp(t, oplog.Kind(rng.Intn(2)), "hot"))
			ops = append(ops, oplog.NewOp(t, oplog.Kind(rng.Intn(2)), []string{"a", "b", "c"}[rng.Intn(3)]))
		}
		rng.Shuffle(len(ops), func(a, c int) { ops[a], ops[c] = ops[c], ops[a] })
		logs = append(logs, oplog.NewLog(ops...))
	}
	measure := func(opts engine.Options) float64 {
		incomparable, pairs := 0, 0
		for _, l := range logs {
			s := engine.NewScheduler(opts)
			if ok, _ := s.AcceptLog(l); !ok {
				continue
			}
			txns := l.Transactions()
			for a := 0; a < len(txns); a++ {
				for c := a + 1; c < len(txns); c++ {
					rel, _ := s.Vector(txns[a]).Compare(s.Vector(txns[c]))
					pairs++
					if rel == core.Equal || rel == core.Unknown {
						incomparable++
					}
				}
			}
		}
		if pairs == 0 {
			return 0
		}
		return float64(incomparable) / float64(pairs)
	}
	b.Run("normal", func(b *testing.B) {
		var f float64
		for i := 0; i < b.N; i++ {
			f = measure(engine.Options{K: 6})
		}
		b.ReportMetric(f, "incomparable/pair")
	})
	b.Run("hot-shifted", func(b *testing.B) {
		var f float64
		for i := 0; i < b.N; i++ {
			f = measure(engine.Options{K: 6, HotItems: map[string]bool{"hot": true}})
		}
		b.ReportMetric(f, "incomparable/pair")
	})
}

// E3 companion: multiversion extension — read slides instead of read
// aborts under a read-mostly hotspot.
func BenchmarkMVMTReadSlides(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := storage.New()
		m := mvmt.New(st, mvmt.Options{K: 3, MaxVersions: 64})
		// An old reader watches while writers churn the item.
		m.Begin(1000)
		if _, err := m.Read(1000, "seed"); err != nil {
			b.Fatal(err)
		}
		for t := 1; t <= 20; t++ {
			m.Begin(t)
			if err := m.Write(t, "seed", 1); err != nil {
				b.Fatal(err)
			}
			if err := m.Write(t, "x", int64(t)); err != nil {
				b.Fatal(err)
			}
			if err := m.Commit(t); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Read(1000, "x"); err != nil {
			b.Fatal("old read aborted despite multiversioning")
		}
		m.Commit(1000)
	}
}

// E17b: forced-overlap runtime — per-operation think time makes
// transactions genuinely concurrent, the regime where the protocols'
// ordering decisions differ. Here single-valued TO's premature start-time
// ordering produces aborts that the lock/graph protocols avoid.
func BenchmarkRuntimeOverlap(b *testing.B) {
	protos := []struct {
		name string
		mk   func(*storage.Store) sched.Scheduler
	}{
		{"MT7", func(st *storage.Store) sched.Scheduler {
			// Same concessions as the TO baseline: Thomas rule on, and the
			// paper's own line-9 relaxation (Section III-D-2 remark).
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{
				K: 7, StarvationAvoidance: true, ThomasWriteRule: true, RelaxedReadCheck: true}})
		}},
		{"MT7mono", func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{
				K: 7, StarvationAvoidance: true, MonotonicEncoding: true,
				ThomasWriteRule: true, RelaxedReadCheck: true}})
		}},
		{"MT7defer", func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{
				K: 7, StarvationAvoidance: true, ThomasWriteRule: true, RelaxedReadCheck: true},
				DeferWrites: true})
		}},
		{"TO1", func(st *storage.Store) sched.Scheduler {
			return tsto.New(st, tsto.Options{ThomasWriteRule: true})
		}},
		{"TO1defer", func(st *storage.Store) sched.Scheduler {
			return tsto.New(st, tsto.Options{ThomasWriteRule: true, DeferWrites: true})
		}},
		{"OCC", func(st *storage.Store) sched.Scheduler { return occ.New(st) }},
		{"SGT", func(st *storage.Store) sched.Scheduler { return sgt.New(st) }},
	}
	specs := workload.Config{
		Txns: 64, OpsPerTxn: 4, Items: 16, ReadFraction: 0.6,
		HotItems: 4, HotFraction: 0.7, Seed: 71,
	}.Generate()
	for _, p := range protos {
		b.Run(p.name, func(b *testing.B) {
			var restarts, txns int64
			for i := 0; i < b.N; i++ {
				rep := sim.Run(sim.Config{
					NewScheduler: p.mk,
					Specs:        specs,
					Workers:      8,
					MaxAttempts:  500,
					Backoff:      20 * time.Microsecond,
					Think:        200 * time.Microsecond,
				})
				restarts += rep.Restarts
				txns += int64(rep.Txns)
			}
			b.ReportMetric(float64(restarts)/float64(txns), "restarts/txn")
		})
	}
}

// E21b: the adaptable-CC extension (Section IV closing remark) — the
// self-tuning scheduler converges toward a workload-appropriate k.
// Reported metric: the k it settles on.
func BenchmarkAdaptive(b *testing.B) {
	for _, contended := range []bool{false, true} {
		name := "quiet"
		cfg := workload.Config{Txns: 300, OpsPerTxn: 3, Items: 256, ReadFraction: 0.8, Seed: 97}
		if contended {
			name = "contended"
			cfg.Items = 8
			cfg.ReadFraction = 0.4
		}
		specs := cfg.Generate()
		b.Run(name, func(b *testing.B) {
			finalK := 0
			for i := 0; i < b.N; i++ {
				var a *adaptive.Adaptive
				sim.Run(sim.Config{
					NewScheduler: func(st *storage.Store) sched.Scheduler {
						a = adaptive.New(st, adaptive.Options{
							InitialK: 3, MinK: 1, MaxK: 9, Window: 32,
							Core: engine.Options{StarvationAvoidance: true},
						})
						return a
					},
					Specs:       specs,
					Workers:     8,
					MaxAttempts: 300,
					Backoff:     10 * time.Microsecond,
				})
				finalK = a.K()
			}
			b.ReportMetric(float64(finalK), "final-k")
		})
	}
}

// E23a: raw write-ahead-log cost — the journal+Wait path in isolation,
// per sync policy. Concurrency is the group-commit batch-size lever: a
// flush leader gathers whatever is in flight, so 1/8/64 concurrent
// committers yield batches of roughly that size. Reported metric:
// records amortized per fsync (the Taurus-style batching win).
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []wal.SyncPolicy{wal.SyncGroup, wal.SyncAlways, wal.SyncNone} {
		for _, writers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/writers=%d", pol, writers), func(b *testing.B) {
				w, _, err := wal.Open(wal.Options{Dir: b.TempDir(), Sync: pol})
				if err != nil {
					b.Fatal(err)
				}
				st := storage.New()
				w.Attach(st, nil)
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < writers; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							id := next.Add(1)
							if id > int64(b.N) {
								return
							}
							st.ApplyTxn(int(id), map[string]int64{"x": id})
							if err := w.Wait(int(id)); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				if s := w.Stats(); s.Syncs.Value() > 0 {
					b.ReportMetric(s.BatchRecords.Mean(), "recs/fsync")
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// E23b: end-to-end durable commit latency — the runtime workload with
// no log at all, then under each sync policy. The volatile/wal-none
// gap is the journaling overhead; wal-none/wal-group is the batched
// fsync; wal-group/wal-always is what group commit saves.
func BenchmarkDurableCommit(b *testing.B) {
	specs := workload.Config{
		Txns: 64, OpsPerTxn: 4, Items: 32, ReadFraction: 0.5, Seed: 83,
	}.Generate()
	newSched := func(st *storage.Store) sched.Scheduler {
		return sched.NewMT(st, sched.MTOptions{
			Core:        engine.Options{K: 7, StarvationAvoidance: true},
			DeferWrites: true,
		})
	}
	run := func(b *testing.B, mkWAL func() *wal.Options) {
		var lat float64
		for i := 0; i < b.N; i++ {
			cfg := sim.Config{
				NewScheduler: newSched, Specs: specs, Workers: 8,
				MaxAttempts: 500, Backoff: 20 * time.Microsecond,
			}
			if mkWAL != nil {
				cfg.WAL = mkWAL()
			}
			rep := sim.Run(cfg)
			if rep.Durable != rep.Committed {
				b.Fatalf("durable=%d != committed=%d", rep.Durable, rep.Committed)
			}
			lat += rep.Latency.Mean()
		}
		b.ReportMetric(lat/float64(b.N)/1e3, "µs/txn")
	}
	b.Run("volatile", func(b *testing.B) { run(b, nil) })
	for _, pol := range []wal.SyncPolicy{wal.SyncNone, wal.SyncGroup, wal.SyncAlways} {
		pol := pol
		b.Run("wal-"+pol.String(), func(b *testing.B) {
			run(b, func() *wal.Options { return &wal.Options{Dir: b.TempDir(), Sync: pol} })
		})
	}
}

// E11b: the Fig. 9/10 shared-table composite versus running the
// subprotocols independently — the paper's O(nqk) vs O(nqk²) point.
func BenchmarkSharedComposite(b *testing.B) {
	logs := corpus(100, 3, 3, 37)
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("plain/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := composite.NewScheduler(composite.Options{K: k})
				s.AcceptLog(logs[i%len(logs)])
			}
		})
		b.Run(fmt.Sprintf("shared/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := composite.NewSharedScheduler(k)
				s.AcceptLog(logs[i%len(logs)])
			}
		})
	}
}

// E24: the striped MT(k) adapter versus the coarse global-mutex
// reference. With StoreLatency=0 the two mostly measure protocol
// overhead (on one CPU the striped adapter's extra latching is pure
// cost); with a simulated per-access store latency the coarse adapter
// serializes every sleep under its global mutex while the striped one
// overlaps sleeps on disjoint items — the lock-granularity effect.
// cmd/mtbench runs the full sweep; this keeps a sample in the suite.
func BenchmarkStripedScheduler(b *testing.B) {
	mkCoarse := func(st *storage.Store) sched.Scheduler {
		return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 7, StarvationAvoidance: true}})
	}
	mkStriped := func(st *storage.Store) sched.Scheduler {
		return sched.NewMTStriped(st, sched.MTOptions{Core: engine.Options{K: 7, StarvationAvoidance: true}})
	}
	specs := workload.Config{
		Txns: 200, OpsPerTxn: 4, Items: 1024, ReadFraction: 0.7, Seed: 7,
	}.Generate()
	run := func(b *testing.B, mk func(*storage.Store) sched.Scheduler, lat time.Duration) {
		var committed int64
		for i := 0; i < b.N; i++ {
			rep := sim.Run(sim.Config{
				NewScheduler: mk,
				Specs:        specs,
				Workers:      8,
				MaxAttempts:  500,
				Backoff:      10 * time.Microsecond,
				StoreLatency: lat,
			})
			committed += rep.Committed
		}
		b.ReportMetric(float64(committed)/float64(b.N), "committed/run")
	}
	for _, c := range []struct {
		name string
		lat  time.Duration
	}{{"free-store", 0}, {"iolat=20µs", 20 * time.Microsecond}} {
		b.Run(c.name+"/coarse", func(b *testing.B) { run(b, mkCoarse, c.lat) })
		b.Run(c.name+"/striped", func(b *testing.B) { run(b, mkStriped, c.lat) })
	}

	// Steady-state hot path (the tentpole metric: make alloc-gate pins
	// these at 0 allocs/op via bench/alloc_budget.json). Transaction ids
	// cycle through a window so entries are constantly reclaimed and
	// recycled through the pool — the regime where interning, the dense
	// stripe tables and pooled entries must not allocate.
	stepBench := func(kind byte) func(*testing.B) {
		return func(b *testing.B) {
			eng := engine.NewStriped(engine.Options{K: 7, StarvationAvoidance: true})
			lt := eng.Latches()
			ids := make([]int32, 512)
			for i := range ids {
				ids[i] = eng.ItemID(fmt.Sprintf("i%04d", i))
			}
			n := 0
			iter := func() {
				n++
				t := 1 + n%4096
				id := ids[n%len(ids)]
				stripe := lt.StripeOfID(id)
				lt.LockStripe(stripe)
				var v core.Verdict
				var blocker int
				switch {
				case kind == 'r' || (kind == 'm' && n&1 == 0):
					v, blocker = eng.StepReadID(t, id)
				default:
					v, blocker = eng.StepWriteID(t, id)
				}
				lt.UnlockStripe(stripe)
				if v == core.Reject {
					eng.Abort(t, blocker)
				} else if n%4 == 3 {
					eng.Commit(t)
				}
			}
			for i := 0; i < 20000; i++ {
				iter() // warm the intern table, stripe slices, entry pool
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iter()
			}
		}
	}
	b.Run("steady-step/read", stepBench('r'))
	b.Run("steady-step/write", stepBench('w'))
	b.Run("steady-step/mixed", stepBench('m'))

	// Whole-transaction steady state through the runtime adapter and the
	// store (deferred mode): Begin + Read + Write + Commit per op.
	b.Run("steady-txn/deferred", func(b *testing.B) {
		store := storage.New()
		m := sched.NewMTStriped(store, sched.MTOptions{
			Core:        engine.Options{K: 7, StarvationAvoidance: true},
			DeferWrites: true,
		})
		items := make([]string, 64)
		for i := range items {
			items[i] = fmt.Sprintf("x%03d", i)
		}
		n := 0
		iter := func() {
			n++
			id := 1 + n%4096
			m.Begin(id)
			x := items[n%len(items)]
			if _, err := m.Read(id, x); err != nil {
				m.Abort(id)
				return
			}
			if err := m.Write(id, x, int64(n)); err != nil {
				m.Abort(id)
				return
			}
			_ = m.Commit(id)
		}
		for i := 0; i < 20000; i++ {
			iter()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			iter()
		}
	})
}
