// Package mdts is the public API of the multidimensional-timestamp
// concurrency-control library, a faithful implementation of
//
//	Pei-Jyun Leu and Bharat Bhargava,
//	"Multidimensional Timestamp Protocols for Concurrency Control",
//	Purdue CSD-TR-521 (1985, rev. 1986), ICDE 1986.
//
// The package re-exports the protocol family and its supporting cast:
//
//   - MT(k), the k-dimensional timestamp protocol (Algorithm 1), as an
//     offline log recognizer (NewMT / Accepts) and via the runtime
//     adapters in runtime.go;
//   - MT(k⁺), the composite protocol recognizing TO(1) ∪ … ∪ TO(k)
//     (Algorithm 2);
//   - MT(k1,k2), the hierarchical protocol for nested/grouped
//     transactions;
//   - DMT(k), the decentralized protocol over simulated sites;
//   - the class recognizers of the Fig. 4 hierarchy (DSR, SR, SSR, 2PL,
//     TO(1), TO(k));
//   - the O(log k) parallel vector comparison of Section III-E;
//   - runtime baselines: strict 2PL, single-valued TO, OCC, SGT and
//     Bayer-style timestamp intervals, plus the multiversion extension.
//
// Logs use the paper's notation: "W1[x] R2[y]" is a write of x by T1
// followed by a read of y by T2 (see ParseLog).
package mdts

import (
	"repro/internal/classify"
	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/nested"
	"repro/internal/oplog"
	"repro/internal/vecproc"
)

// Log model (the quintuple L = (D,T,Σ,S,π) of Section II).
type (
	// Log is a finite sequence of read/write operations.
	Log = oplog.Log
	// Op is one atomic operation on a set of items.
	Op = oplog.Op
	// OpKind distinguishes reads from writes.
	OpKind = oplog.Kind
)

// Operation kinds.
const (
	Read  = oplog.Read
	Write = oplog.Write
)

// R builds a read operation of transaction txn on the given items.
func R(txn int, items ...string) Op { return oplog.R(txn, items...) }

// W builds a write operation.
func W(txn int, items ...string) Op { return oplog.W(txn, items...) }

// NewLog builds a log from operations in sequence order.
func NewLog(ops ...Op) *Log { return oplog.NewLog(ops...) }

// ParseLog reads a log in the paper's notation, e.g. "W1[x] W1[y] R3[x]".
func ParseLog(s string) (*Log, error) { return oplog.Parse(s) }

// MustParseLog is ParseLog that panics on error.
func MustParseLog(s string) *Log { return oplog.MustParse(s) }

// Conflicts reports whether two operations conflict (Definition 1).
func Conflicts(a, b Op) bool { return oplog.Conflicts(a, b) }

// Timestamp vectors (Definition 6).
type (
	// Vector is a k-dimensional timestamp vector.
	Vector = core.Vector
	// VectorElem is a single element: an integer or undefined ('*').
	VectorElem = core.Elem
	// VectorRel is a comparison outcome: Less, Greater, Equal, Unknown.
	VectorRel = core.Rel
)

// Comparison outcomes.
const (
	Less    = core.Less
	Greater = core.Greater
	Equal   = core.Equal
	Unknown = core.Unknown
)

// Undefined is the undefined vector element, the paper's '*'.
var Undefined = core.Undef

// IntElem returns a defined vector element.
func IntElem(v int64) VectorElem { return core.Int(v) }

// The protocol MT(k).
type (
	// MTScheduler is the MT(k) concurrency controller of Algorithm 1.
	MTScheduler = engine.Scheduler
	// MTOptions configures MT(k): vector size K, ThomasWriteRule,
	// StarvationAvoidance, RelaxedReadCheck and hot-item encoding.
	MTOptions = engine.Options
	// SchedulerDecision is the verdict on one scheduled operation.
	SchedulerDecision = core.Decision
	// Verdict is Accept, AcceptIgnored or Reject.
	Verdict = core.Verdict
)

// Scheduler verdicts.
const (
	Accept        = core.Accept
	AcceptIgnored = core.AcceptIgnored
	Reject        = core.Reject
)

// NewMT returns an MT(k) scheduler (offline recognizer / building block).
func NewMT(opts MTOptions) *MTScheduler { return engine.NewScheduler(opts) }

// Accepts reports whether MT(k) accepts the log, i.e. whether the log is
// in the class TO(k).
func Accepts(k int, l *Log) bool { return engine.Accepts(k, l) }

// The composite protocol MT(k⁺) of Section IV.
type (
	// CompositeScheduler is the MT(k⁺) controller of Algorithm 2.
	CompositeScheduler = composite.Scheduler
	// CompositeOptions configures MT(k⁺).
	CompositeOptions = composite.Options
)

// NewComposite returns an MT(k⁺) scheduler.
func NewComposite(opts CompositeOptions) *CompositeScheduler {
	return composite.NewScheduler(opts)
}

// AcceptsComposite reports membership in TO(k⁺) = TO(1) ∪ … ∪ TO(k).
func AcceptsComposite(k int, l *Log) bool { return composite.Accepts(k, l) }

// SharedCompositeScheduler is the paper's optimized MT(k⁺) over the
// Fig. 9/10 shared PREFIX/LASTCOL tables: O(k) per operation instead of
// running the k subprotocols independently.
type SharedCompositeScheduler = composite.SharedScheduler

// NewSharedComposite returns the shared-table MT(k⁺) scheduler.
func NewSharedComposite(k int) *SharedCompositeScheduler {
	return composite.NewSharedScheduler(k)
}

// The nested/grouped protocol MT(k1, k2) of Section V-A.
type (
	// NestedScheduler is the hierarchical MT(k1,...,kl) controller.
	NestedScheduler = nested.Scheduler
	// NestedOptions configures the hierarchy levels.
	NestedOptions = nested.Options
)

// NewNested returns a hierarchical scheduler.
func NewNested(opts NestedOptions) *NestedScheduler { return nested.NewScheduler(opts) }

// NewNested2 is the paper's MT(k1, k2) with a transaction-to-group map.
func NewNested2(k1, k2 int, groups map[int]int) *NestedScheduler {
	return nested.New2Level(k1, k2, groups)
}

// SignatureGroups partitions transactions by read/write-set signature
// (Example 6); SiteGroups partitions by originating site (Example 5).
func SignatureGroups(l *Log) map[int]int        { return nested.SignatureGroups(l) }
func SiteGroups(siteOf map[int]int) map[int]int { return nested.SiteGroups(siteOf) }

// The decentralized protocol DMT(k) of Section V-B.
type (
	// DMTCluster is a multi-site DMT(k) deployment.
	DMTCluster = dmt.Cluster
	// DMTOptions configures sites and home functions.
	DMTOptions = dmt.Options
)

// NewDMT returns a DMT(k) cluster of simulated sites.
func NewDMT(opts DMTOptions) *DMTCluster { return dmt.NewCluster(opts) }

// Class recognizers of the Fig. 4 hierarchy.

// DSR reports D-serializability (acyclic dependency relation, Theorem 1).
func DSR(l *Log) bool { return classify.DSR(l) }

// SR reports final-state serializability (brute force; small logs only).
func SR(l *Log) bool { return classify.SR(l) }

// SSR reports strict serializability (brute force; small logs only).
func SSR(l *Log) bool { return classify.SSR(l) }

// TwoPL reports membership in the two-phase-locking class.
func TwoPL(l *Log) bool { return classify.TwoPL(l) }

// TO1 reports membership in TO(1) per Definition 4.
func TO1(l *Log) bool { return classify.TO1(l) }

// TOk reports membership in TO(k), the class recognized by MT(k).
func TOk(k int, l *Log) bool { return classify.TOk(k, l) }

// Parallel vector comparison (Section III-E).

// CompareParallel runs the simulated PE-array comparison: the result
// matches the sequential Definition 6 comparison and reports the
// ⌈log₂ k⌉+4 parallel step count of Theorem 4.
func CompareParallel(a, b *Vector) vecproc.Result { return vecproc.Compare(a, b) }

// VecResult is the outcome of a parallel comparison.
type VecResult = vecproc.Result
