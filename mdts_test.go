package mdts

import (
	"testing"
	"time"
)

// The facade round-trips the paper's running example end to end.
func TestFacadeExample1(t *testing.T) {
	l := MustParseLog("W1[x] W1[y] R3[x] R2[y] W3[y]")
	if Accepts(1, l) {
		t.Error("MT(1) should reject Example 1")
	}
	if !Accepts(2, l) {
		t.Error("MT(2) should accept Example 1")
	}
	if !AcceptsComposite(2, l) {
		t.Error("MT(2+) should accept Example 1")
	}
	if !DSR(l) || !SR(l) {
		t.Error("Example 1 is DSR and SR")
	}
	if TO1(l) {
		t.Error("Example 1 is not TO(1)")
	}
}

func TestFacadeVectorAPI(t *testing.T) {
	s := NewMT(MTOptions{K: 2})
	d := s.Step(R(1, "x"))
	if d.Verdict != Accept {
		t.Fatalf("verdict = %v", d.Verdict)
	}
	if got := s.Vector(1).String(); got != "<1,*>" {
		t.Fatalf("TS(1) = %s", got)
	}
	a := s.Vector(0)
	b := s.Vector(1)
	r := CompareParallel(a, b)
	if r.Rel != Less {
		t.Fatalf("parallel compare = %v", r.Rel)
	}
}

func TestFacadeNestedAndDMT(t *testing.T) {
	n := NewNested2(2, 2, map[int]int{1: 1, 2: 1, 3: 2})
	if ok, _ := n.AcceptLog(MustParseLog("R1[x] R2[y] W2[x] R3[x]")); !ok {
		t.Fatal("nested rejected Table III log")
	}
	c := NewDMT(DMTOptions{K: 2, Sites: 2})
	if ok, _ := c.AcceptLog(MustParseLog("R1[x] W1[x] R2[x] W2[x]")); !ok {
		t.Fatal("DMT rejected a serial log")
	}
}

func TestFacadeConflicts(t *testing.T) {
	if !Conflicts(R(1, "x"), W(2, "x")) || Conflicts(R(1, "x"), R(2, "x")) {
		t.Fatal("Conflicts wrong")
	}
	l := NewLog(R(1, "x"), W(1, "x"))
	if l.Len() != 2 {
		t.Fatal("NewLog wrong")
	}
	if _, err := ParseLog("garbage"); err == nil {
		t.Fatal("ParseLog accepted garbage")
	}
}

func TestFacadeRuntimeBanking(t *testing.T) {
	accounts := []string{"a", "b", "c"}
	rep := RunSim(SimConfig{
		NewScheduler: func(st *Store) RuntimeScheduler {
			return NewMTRuntime(st, DefaultMTOptions(4), true)
		},
		Specs:   Transfers(30, accounts, 5, 7),
		Workers: 4,
		Backoff: 20 * time.Microsecond,
		Initial: map[string]int64{"a": 100, "b": 100, "c": 100},
	})
	if rep.Committed != 30 {
		t.Fatalf("committed = %d", rep.Committed)
	}
	if rep.Store.Sum(accounts) != 300 {
		t.Fatalf("sum = %d", rep.Store.Sum(accounts))
	}
}

// The overload layer through the facade: an admission-controlled,
// deadline-bounded run keeps every offered transaction accounted for
// (committed, shed, deadline-missed or gave up) and attaches the
// controller's stats to the report.
func TestFacadeOverloadRuntime(t *testing.T) {
	accounts := []string{"a", "b", "c"}
	rep := RunSim(SimConfig{
		NewScheduler: func(st *Store) RuntimeScheduler {
			return NewMTRuntime(st, DefaultMTOptions(4), true)
		},
		Specs:    Transfers(60, accounts, 5, 7),
		Workers:  8,
		Backoff:  20 * time.Microsecond,
		Initial:  map[string]int64{"a": 100, "b": 100, "c": 100},
		Admit:    &AdmitOptions{},
		Deadline: 250 * time.Millisecond,
	})
	if got := rep.Committed + rep.Shed + rep.DeadlineMiss + rep.GaveUp; got != 60 {
		t.Fatalf("accounted = %d, want 60", got)
	}
	if rep.Admit == nil {
		t.Fatal("controller stats missing from report")
	}
	if rep.Store.Sum(accounts) != 300 {
		t.Fatalf("sum = %d", rep.Store.Sum(accounts))
	}
}

// The README durability quickstart, end to end: a durable banking run,
// then recovery reproduces the final balances from disk.
func TestFacadeDurableRuntime(t *testing.T) {
	accounts := []string{"a", "b", "c"}
	dir := t.TempDir() + "/wal"
	rep := RunSim(SimConfig{
		NewScheduler: func(st *Store) RuntimeScheduler {
			return NewMTRuntime(st, DefaultMTOptions(4), true)
		},
		Specs:   Transfers(30, accounts, 5, 7),
		Workers: 4,
		Backoff: 20 * time.Microsecond,
		Initial: map[string]int64{"a": 100, "b": 100, "c": 100},
		WAL:     &WALOptions{Dir: dir, Sync: SyncGroup},
	})
	if rep.Durable != rep.Committed || rep.Committed != 30 {
		t.Fatalf("durable=%d committed=%d, want 30/30", rep.Durable, rep.Committed)
	}
	rec, err := RecoverWAL(dir)
	if err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	sum := int64(0)
	for _, a := range accounts {
		sum += rec.Store.Data[a]
	}
	if sum != 300 {
		t.Fatalf("recovered sum = %d, want 300", sum)
	}
}

func TestFacadeAllRuntimes(t *testing.T) {
	mks := []func(*Store) RuntimeScheduler{
		func(st *Store) RuntimeScheduler { return NewMTRuntime(st, DefaultMTOptions(2), false) },
		func(st *Store) RuntimeScheduler { return NewCompositeRuntime(st, 2, MTOptions{}) },
		func(st *Store) RuntimeScheduler { return NewTwoPLRuntime(st) },
		func(st *Store) RuntimeScheduler { return NewTORuntime(st, true) },
		func(st *Store) RuntimeScheduler { return NewOCCRuntime(st) },
		func(st *Store) RuntimeScheduler { return NewSGTRuntime(st) },
		func(st *Store) RuntimeScheduler { return NewIntervalRuntime(st) },
		func(st *Store) RuntimeScheduler { return NewMVMTRuntime(st, 3) },
	}
	for _, mk := range mks {
		st := NewStore()
		s := mk(st)
		rt := &Runtime{Sched: s, MaxAttempts: 10}
		res := rt.Exec(Txn{ID: 1, Ops: []TxnOp{ReadOp("x"), WriteOp("y")}})
		if !res.Committed {
			t.Errorf("%s: simple transaction failed", s.Name())
		}
	}
}

func TestDefaultMTOptions(t *testing.T) {
	if DefaultMTOptions(3).K != 5 {
		t.Fatalf("K = %d, want 2q-1 = 5", DefaultMTOptions(3).K)
	}
	if DefaultMTOptions(0).K != 1 {
		t.Fatal("floor broken")
	}
	if !DefaultMTOptions(2).StarvationAvoidance {
		t.Fatal("starvation fix should default on")
	}
}

func TestSignatureAndSiteGroups(t *testing.T) {
	l := MustParseLog("R1[x] W1[y] R2[x] W2[y]")
	g := SignatureGroups(l)
	if g[1] != g[2] {
		t.Fatal("same signature, different groups")
	}
	sg := SiteGroups(map[int]int{1: 3})
	if sg[1] != 3 {
		t.Fatal("SiteGroups wrong")
	}
}
