// Classify: walk a handful of logs through the Fig. 4 hierarchy.
//
// Each log is tested against DSR, SR, SSR, 2PL, TO(1) (Definition 4) and
// the protocol classes TO(1..3); the output mirrors the region structure
// of the paper's Fig. 4.
//
// Run: go run ./examples/classify
package main

import (
	"fmt"
	"strings"

	mdts "repro"
)

func main() {
	logs := []struct {
		name string
		src  string
	}{
		{"serial", "R1[x] W1[x] R2[x] W2[x]"},
		{"Example 1", "W1[x] W1[y] R3[x] R2[y] W3[y]"},
		{"live cycle (not SR)", "R1[x] R2[y] W2[x] W1[y]"},
		{"dead cycle (SR \\ DSR)", "R1[x] R2[y] W2[x] W1[y] R3[z] W3[x,y]"},
		{"non-2PL but DSR", "W1[x] R2[x] R3[y] W1[y]"},
		{"interleaved disjoint", "R1[x] R2[y] W1[x] W2[y]"},
	}
	fmt.Printf("%-24s %-5s %-5s %-5s %-5s %-6s %-6s %-6s %-6s\n",
		"log", "DSR", "SR", "SSR", "2PL", "TO(1)", "TO(2)", "TO(3)", "TO(3+)")
	for _, lg := range logs {
		l := mdts.MustParseLog(lg.src)
		row := []string{
			b(mdts.DSR(l)), b(mdts.SR(l)), b(mdts.SSR(l)), b(mdts.TwoPL(l)),
			b(mdts.TO1(l)), b(mdts.TOk(2, l)), b(mdts.TOk(3, l)),
			b(mdts.AcceptsComposite(3, l)),
		}
		fmt.Printf("%-24s %-5s %-5s %-5s %-5s %-6s %-6s %-6s %-6s\n", lg.name,
			row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7])
	}
	fmt.Println()
	for _, lg := range logs {
		fmt.Printf("  %-24s %s\n", lg.name+":", lg.src)
	}
	fmt.Println("\nnotes:")
	fmt.Println(strings.TrimSpace(`
- "Example 1" sits in TO(2) and TO(3) but outside TO(1) and Definition-4
  TO(1): the multidimensional vectors defer the T2/T3 ordering decision.
- the "dead cycle" log is final-state serializable (its cyclic
  transactions are overwritten unread) yet not D-serializable: the
  SR \ DSR gap of Fig. 4.
- "non-2PL but DSR": T1 would have to release x before acquiring y.`))
}

func b(v bool) string {
	if v {
		return "yes"
	}
	return "-"
}
