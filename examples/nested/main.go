// Nested transactions: the MT(k1,k2) protocol of Section V-A.
//
// Transactions are partitioned into groups (here: by originating site,
// Example 5). Cross-group dependencies are encoded in group timestamp
// vectors, in-group dependencies in transaction vectors; group order is
// antisymmetric, so once G1 -> G2 exists, any operation implying
// G2 -> G1 is rejected. The example replays Table III and then shows the
// rejection.
//
// Run: go run ./examples/nested
package main

import (
	"fmt"

	mdts "repro"
)

func main() {
	// Example 4's grouping: G1 = {T1, T2} (site 1), G2 = {T3} (site 2).
	groups := mdts.SiteGroups(map[int]int{1: 1, 2: 1, 3: 2})
	s := mdts.NewNested2(2, 2, groups)

	log := mdts.MustParseLog("R1[x] R2[y] W2[x] R3[x]")
	fmt.Println("log:", log)
	fmt.Println("groups: T1,T2 -> G1; T3 -> G2")
	fmt.Println()
	for _, op := range log.Ops {
		d := s.Step(op)
		fmt.Printf("%-7s -> %-7s GS(1)=%-6s GS(2)=%-6s TS(1)=%-6s TS(2)=%-6s TS(3)=%-6s\n",
			op.String(), d.Verdict,
			s.UnitVector(1, 1), s.UnitVector(1, 2),
			s.TxnVector(1), s.TxnVector(2), s.TxnVector(3))
	}
	fmt.Println("\nserialization order:", s.SerialOrder([]int{1, 2, 3}))

	// Antisymmetry: T3 writes w; T2 reading w would mean G2 -> G1.
	s.Step(mdts.W(3, "w"))
	d := s.Step(mdts.R(2, "w"))
	fmt.Printf("\nW3[w] then R2[w] (implies G2 -> G1): %s — group order is antisymmetric\n",
		d.Verdict)

	// A three-level hierarchy: sites within regions.
	fmt.Println("\nthree-level hierarchy MT(2,2,2): regions > sites > transactions")
	region := map[int]int{1: 1, 2: 1, 3: 1, 4: 2}
	site := map[int]int{1: 1, 2: 1, 3: 2, 4: 3}
	h := mdts.NewNested(mdts.NestedOptions{
		Ks: []int{2, 2, 2},
		UnitOf: func(txn, lvl int) int {
			if lvl == 1 {
				return site[txn]
			}
			return region[txn]
		},
	})
	l := mdts.MustParseLog("W1[a] R3[a] R4[a]")
	ok, _ := h.AcceptLog(l)
	fmt.Printf("log %s accepted: %v\n", l, ok)
	fmt.Printf("  site-level  SS(1)=%s SS(2)=%s (T1 -> T3: same region, different sites)\n",
		h.UnitVector(1, 1), h.UnitVector(1, 2))
	fmt.Printf("  region-level RS(1)=%s RS(2)=%s (T1 -> T4: different regions)\n",
		h.UnitVector(2, 1), h.UnitVector(2, 2))
}
