// Banking: concurrent balance transfers under every scheduler in the
// suite. Each transfer reads two accounts and writes both; the total
// balance is invariant under any serializable execution, so the final sum
// doubles as a serializability check. The run prints per-protocol
// throughput, restarts and the invariant verdict.
//
// Run: go run ./examples/banking
package main

import (
	"fmt"
	"time"

	mdts "repro"
)

func main() {
	const (
		accountsN = 8
		transfers = 500
		balance   = 1_000
		workers   = 8
	)
	accounts := make([]string, accountsN)
	initial := map[string]int64{}
	for i := range accounts {
		accounts[i] = fmt.Sprintf("acct%02d", i)
		initial[accounts[i]] = balance
	}
	want := int64(accountsN * balance)

	schedulers := []struct {
		name string
		mk   func(*mdts.Store) mdts.RuntimeScheduler
	}{
		{"MT(7)", func(st *mdts.Store) mdts.RuntimeScheduler {
			return mdts.NewMTRuntime(st, mdts.DefaultMTOptions(4), false)
		}},
		{"MT(7)/deferred", func(st *mdts.Store) mdts.RuntimeScheduler {
			return mdts.NewMTRuntime(st, mdts.DefaultMTOptions(4), true)
		}},
		{"MT(3+)", func(st *mdts.Store) mdts.RuntimeScheduler {
			return mdts.NewCompositeRuntime(st, 3, mdts.MTOptions{StarvationAvoidance: true})
		}},
		{"2PL", mdts.NewTwoPLRuntime},
		{"TO(1)+Thomas", func(st *mdts.Store) mdts.RuntimeScheduler { return mdts.NewTORuntime(st, true) }},
		{"OCC", mdts.NewOCCRuntime},
		{"SGT", mdts.NewSGTRuntime},
		{"Interval", mdts.NewIntervalRuntime},
		{"MVMT(7)", func(st *mdts.Store) mdts.RuntimeScheduler { return mdts.NewMVMTRuntime(st, 7) }},
	}

	fmt.Printf("%d transfers over %d accounts, %d workers\n\n", transfers, accountsN, workers)
	for _, sc := range schedulers {
		rep := mdts.RunSim(mdts.SimConfig{
			NewScheduler: sc.mk,
			Specs:        mdts.Transfers(transfers, accounts, 3, 2026),
			Workers:      workers,
			Backoff:      30 * time.Microsecond,
			Initial:      initial,
		})
		sum := rep.Store.Sum(accounts)
		verdict := "OK"
		if sum != want || rep.Committed != transfers {
			verdict = fmt.Sprintf("BROKEN (sum=%d committed=%d)", sum, rep.Committed)
		}
		fmt.Printf("%-16s restarts=%-6d tput=%8.0f txn/s  invariant: %s\n",
			sc.name, rep.Restarts, rep.Throughput(), verdict)
	}
}
