// Quickstart: the paper's Example 1 end to end.
//
// A single-valued timestamp protocol prematurely orders T3 before T2 (T3
// started first), so the late conflict W3[y] after R2[y] forces an abort.
// MT(2) leaves the two transactions with EQUAL first elements and encodes
// the late dependency in the second dimension — no abort.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	mdts "repro"
)

func main() {
	log := mdts.MustParseLog("W1[x] W1[y] R3[x] R2[y] W3[y]")
	fmt.Println("log L =", log)

	fmt.Println("\nclass membership:")
	fmt.Println("  TO(1) (Definition 4):", mdts.TO1(log))
	fmt.Println("  TO(2) = MT(2) accepts:", mdts.Accepts(2, log))
	fmt.Println("  DSR:", mdts.DSR(log), " SSR:", mdts.SSR(log), " 2PL:", mdts.TwoPL(log))

	// Drive the MT(2) scheduler operation by operation.
	s := mdts.NewMT(mdts.MTOptions{K: 2})
	for _, op := range log.Ops {
		d := s.Step(op)
		fmt.Printf("\n%s -> %s\n", op, d.Verdict)
		for _, t := range []int{1, 2, 3} {
			fmt.Printf("  TS(%d) = %s\n", t, s.Vector(t))
		}
	}
	fmt.Println("\nserialization order:", s.SerialOrder([]int{1, 2, 3}))

	// The same log through MT(1): the last operation must abort.
	s1 := mdts.NewMT(mdts.MTOptions{K: 1})
	ok, at := s1.AcceptLog(log)
	fmt.Printf("\nMT(1) on the same log: accepted=%v (rejected op #%d: %s)\n",
		ok, at+1, log.Ops[at])
}
