// Distributed: the decentralized protocol DMT(k) of Section V-B.
//
// Four simulated sites each run a local MT(k) scheduler. Transaction
// vectors live at their home sites, item indices at theirs; every
// operation locks its (at most four) objects in a predefined linear order
// — no deadlock, no global coordination. The k-th vector elements stay
// globally unique without agreement by tagging them with the allocating
// site number. The run drives concurrent clients, then prints message
// counts, lock retries and the counter skew before/after a sync.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"math/rand"
	"sync"

	mdts "repro"
)

func main() {
	const (
		sites   = 4
		clients = 8
		txnsPer = 50
	)
	cluster := mdts.NewDMT(mdts.DMTOptions{K: 3, Sites: sites})
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, rejected := 0, 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < txnsPer; i++ {
				txn := c*txnsPer + i + 1
				ok := true
				for op := 0; op < 3 && ok; op++ {
					item := items[rng.Intn(len(items))]
					var d mdts.SchedulerDecision
					if rng.Intn(2) == 0 {
						d = cluster.Step(mdts.R(txn, item))
					} else {
						d = cluster.Step(mdts.W(txn, item))
					}
					if d.Verdict == mdts.Reject {
						ok = false
					}
				}
				mu.Lock()
				if ok {
					accepted++
				} else {
					rejected++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	fmt.Printf("sites=%d clients=%d transactions=%d\n", sites, clients, clients*txnsPer)
	fmt.Printf("accepted=%d rejected=%d\n", accepted, rejected)
	fmt.Printf("cross-site messages: %d\n", cluster.Messages())
	fmt.Printf("optimistic lock retries: %d\n", cluster.LockRetries())
	fmt.Printf("counter skew before sync: %d\n", cluster.CounterSkew())
	cluster.SyncCounters()
	fmt.Printf("counter skew after sync:  %d\n", cluster.CounterSkew())

	// Sequential sanity: the same log is treated like centralized MT(k).
	log := mdts.MustParseLog("W1[x] W1[y] R3[x] R2[y] W3[y]")
	single := mdts.NewDMT(mdts.DMTOptions{K: 2, Sites: 3})
	ok, _ := single.AcceptLog(log)
	fmt.Printf("\nExample 1 across 3 sites: accepted=%v (same as centralized MT(2): %v)\n",
		ok, mdts.Accepts(2, log))
}
