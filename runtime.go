package mdts

import (
	"repro/internal/adaptive"
	"repro/internal/admit"
	"repro/internal/engine"
	"repro/internal/interval"
	"repro/internal/lock"
	"repro/internal/mvmt"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/sgt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tsto"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Runtime layer: schedulers that execute real transactions over a store,
// the goroutine transaction runtime, workload generation and the
// simulation harness.
type (
	// Store is the committed-state key-value store.
	Store = storage.Store
	// RuntimeScheduler is the concurrency-control interface every
	// protocol implements at runtime.
	RuntimeScheduler = sched.Scheduler
	// Txn is a transaction specification for the runtime.
	Txn = txn.Spec
	// TxnOp is one step of a transaction.
	TxnOp = txn.Op
	// TxnResult reports a transaction's fate.
	TxnResult = txn.Result
	// Runtime executes transactions with retry.
	Runtime = txn.Runtime
	// Workload parameterizes generated transaction mixes.
	Workload = workload.Config
	// SimConfig configures a simulation run.
	SimConfig = sim.Config
	// SimReport aggregates a simulation's results.
	SimReport = sim.Report
)

// ErrAbort is returned (wrapped) by runtime schedulers when a transaction
// must abort and may be retried.
var ErrAbort = sched.ErrAbort

// NewStore returns an empty store.
func NewStore() *Store { return storage.New() }

// ReadOp and WriteOp build transaction steps.
func ReadOp(item string) TxnOp  { return txn.R(item) }
func WriteOp(item string) TxnOp { return txn.W(item) }

// Transfer builds a balance-preserving transfer transaction.
func Transfer(id int, src, dst string, amount int64) Txn {
	return workload.Transfer(id, src, dst, amount)
}

// Transfers generates n random transfers among the accounts.
func Transfers(n int, accounts []string, amount int64, seed int64) []Txn {
	return workload.Transfers(n, accounts, amount, seed)
}

// NewMTRuntime returns the MT(k) runtime scheduler over the store.
// deferWrites selects the Section VI-C-2 commit-time write validation.
func NewMTRuntime(store *Store, opts MTOptions, deferWrites bool) RuntimeScheduler {
	return sched.NewMT(store, sched.MTOptions{Core: opts, DeferWrites: deferWrites})
}

// NewMTStripedRuntime returns the fine-grained-locking MT(k) runtime
// scheduler (decision-for-decision equivalent to NewMTRuntime).
func NewMTStripedRuntime(store *Store, opts MTOptions, deferWrites bool) RuntimeScheduler {
	return sched.NewMTStriped(store, sched.MTOptions{Core: opts, DeferWrites: deferWrites})
}

// NewCompositeRuntime returns the MT(k⁺) runtime scheduler.
func NewCompositeRuntime(store *Store, k int, sub MTOptions) RuntimeScheduler {
	return sched.NewComposite(store, k, sub)
}

// NewNestedRuntime returns the hierarchical MT(k1, ..., kl) runtime
// scheduler (deferred writes, striped data path). A nil unitOf puts
// every transaction in one group, reducing the protocol to MT(ks[0]).
func NewNestedRuntime(store *Store, ks []int, unitOf func(txn, lvl int) int) RuntimeScheduler {
	return sched.NewNested(store, sched.NestedOptions{Ks: ks, UnitOf: unitOf})
}

// NewDMTRuntime returns the DMT(k) runtime scheduler over a cluster of
// simulated sites (striped data path).
func NewDMTRuntime(store *Store, opts DMTOptions) RuntimeScheduler {
	return sched.NewDMT(store, opts)
}

// NewTwoPLRuntime returns the strict two-phase-locking baseline.
func NewTwoPLRuntime(store *Store) RuntimeScheduler { return lock.NewTwoPL(store) }

// NewTORuntime returns the single-valued timestamp-ordering baseline.
func NewTORuntime(store *Store, thomas bool) RuntimeScheduler {
	return tsto.New(store, tsto.Options{ThomasWriteRule: thomas})
}

// NewOCCRuntime returns the optimistic (Kung-Robinson) baseline.
func NewOCCRuntime(store *Store) RuntimeScheduler { return occ.New(store) }

// NewSGTRuntime returns the serialization-graph-tester baseline (accepts
// exactly DSR prefixes).
func NewSGTRuntime(store *Store) RuntimeScheduler { return sgt.New(store) }

// NewIntervalRuntime returns the Bayer-style dynamic timestamp-interval
// baseline of Section VI-A.
func NewIntervalRuntime(store *Store) RuntimeScheduler {
	return interval.New(store, interval.Options{})
}

// NewMVMTRuntime returns the multiversion MT(k) extension (reads slide to
// older versions instead of aborting).
func NewMVMTRuntime(store *Store, k int) RuntimeScheduler {
	return mvmt.New(store, mvmt.Options{K: k})
}

// AdaptiveOptions tunes the self-adjusting MT(k) scheduler.
type AdaptiveOptions = adaptive.Options

// NewAdaptiveRuntime returns the self-tuning MT(k) scheduler: the vector
// size grows under abort pressure and shrinks when quiet, switching only
// at quiescent epoch boundaries (the paper's adaptable-CC remark).
func NewAdaptiveRuntime(store *Store, opts AdaptiveOptions) RuntimeScheduler {
	return adaptive.New(store, opts)
}

// RunSim executes a simulation and returns its report.
func RunSim(cfg SimConfig) *SimReport { return sim.Run(cfg) }

// Overload-control layer: adaptive admission, restart-storm damping,
// priority aging and deadline propagation (DESIGN.md §12). Set
// SimConfig.Admit (and optionally SimConfig.Deadline) to put the
// controller in front of a simulation's runtime.
type (
	// AdmitOptions configures the controller: the AIMD concurrency
	// limiter, the aging table (express lane, elder barrier, crisis
	// gate) and the storm detector.
	AdmitOptions = admit.Options
	// AdmitController gates admission, scales backoffs and tracks ages.
	AdmitController = admit.Controller
	// AdmitStats is the controller's counters, attached to SimReport.
	AdmitStats = admit.Stats
)

// ErrOverloaded is returned (wrapped in a typed *admit.OverloadError)
// when admission is refused because the system is past its limit.
var ErrOverloaded = admit.ErrOverloaded

// ErrDeadlineExceeded is returned when a transaction's deadline expires
// before it commits (admission wait, attempts and backoffs included).
var ErrDeadlineExceeded = sched.ErrDeadlineExceeded

// NewAdmitController builds an overload controller for use with
// txn.Runtime.Admit.
func NewAdmitController(opts AdmitOptions) *AdmitController { return admit.NewController(opts) }

// Durability layer: the write-ahead log that makes runtime commits
// crash-safe (redo records, group commit, checkpoints, recovery).
type (
	// WALOptions configures a log directory, sync policy and batching;
	// set SimConfig.WAL to make a simulation durable.
	WALOptions = wal.Options
	// WALWriter is the group-commit log writer.
	WALWriter = wal.Writer
	// WALRecovered is the state reconstructed from a log directory.
	WALRecovered = wal.RecoveredState
	// WALSyncPolicy selects when commits are fsynced.
	WALSyncPolicy = wal.SyncPolicy
)

// Sync policies for WALOptions.Sync.
const (
	SyncGroup  = wal.SyncGroup  // batched fsync (group commit, default)
	SyncAlways = wal.SyncAlways // fsync every flush, no gather delay
	SyncNone   = wal.SyncNone   // write without fsync (volatile tail)
)

// OpenWAL opens (creating or recovering) a write-ahead log directory
// and returns the writer plus the recovered state to restart from.
func OpenWAL(opts WALOptions) (*WALWriter, *WALRecovered, error) { return wal.Open(opts) }

// RecoverWAL reads a log directory without opening it for writing:
// checkpoint + redo suffix, torn tail truncated, corruption rejected
// with a typed *wal.CorruptError.
func RecoverWAL(dir string) (*WALRecovered, error) { return wal.Recover(nil, dir) }

// DefaultMTOptions returns the recommended production configuration:
// k = 2q-1 for the expected transaction length q (Section VI-B guideline
// (b)), with the starvation fix enabled.
func DefaultMTOptions(expectedOps int) MTOptions {
	k := 2*expectedOps - 1
	if k < 1 {
		k = 1
	}
	return engine.Options{K: k, StarvationAvoidance: true}
}
