GO ?= go

.PHONY: ci vet build test race bench chaos

# The full gate: what must pass before merging.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector: the fault
# injector and the DMT(k) degraded-mode machinery (crash/recovery racing
# allocations and counter sync), plus the runtime and harness that drive
# them.
race:
	$(GO) test -race ./internal/dmt/... ./internal/fault/... ./internal/txn/... ./internal/sim/...

bench:
	$(GO) test -bench=. -benchmem -benchtime=20x ./...

# A quick chaos smoke run: DMT(k) under crash + drift + message loss.
chaos:
	$(GO) run ./cmd/mtsim -chaos chaos -sites 4 -txns 2000 -workers 8 -k 3
