GO ?= go
FUZZTIME ?= 30s

.PHONY: ci vet fmt lint vuln build test shuffle race bench bench-smoke bench-sweep bench-sweep-4 bench-sweep-7 bench-sweep-10 alloc-gate chaos chaos-partition chaos-partition-smoke fuzz-smoke crash overload-smoke explore-smoke explore cover

# The full gate: what must pass before merging.
ci: vet fmt lint vuln build test shuffle race bench-smoke alloc-gate fuzz-smoke crash chaos-partition-smoke overload-smoke explore-smoke

vet:
	$(GO) vet ./...

# gofmt as a gate: fail (and show the files) if anything is unformatted.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# staticcheck/govulncheck when the binaries are on PATH; skipped (with a
# note) where they are not installed, so the gate degrades instead of
# forcing a network install on hermetic CI containers.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "vuln: govulncheck not installed, skipping"; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The suite again in random test order: catches inter-test state leaks
# (shared package-level state, test-order-dependent fixtures).
shuffle:
	$(GO) test -shuffle=on ./...

# The concurrency-sensitive packages under the race detector: the
# striped scheduler hot path (latch table, striped adapters, sharded
# store), the fault injector and the DMT(k) degraded-mode machinery
# (crash/recovery racing allocations and counter sync), plus the
# runtime, the group-commit log writer and the harness that drive them.
race:
	$(GO) test -race ./internal/core/... ./internal/sched/... ./internal/storage/... ./internal/lock/... ./internal/dmt/... ./internal/fault/... ./internal/txn/... ./internal/wal/... ./internal/sim/... ./internal/admit/... ./internal/explore/...

bench:
	$(GO) test -bench=. -benchmem -benchtime=20x ./...

# Every benchmark for exactly one iteration: benchmarks are build- and
# run-checked in CI so they cannot silently rot, without paying for a
# real measurement run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The reproducible scheduler sweep behind bench/BENCH_3.json (see
# EXPERIMENTS.md E24). Re-running with the same flags re-runs the
# identical workload.
bench-sweep:
	$(GO) run ./cmd/mtbench -scheds mt-coarse,mt-striped,mtdefer-striped,composite \
		-workers 1,2,4,8,16 -workloads uniform,zipf -iolat 0,20us -txns 1200 \
		-csv bench/bench_3.csv -json bench/BENCH_3.json

# The engine-unification sweep behind bench/BENCH_4.json (see
# EXPERIMENTS.md E25): every engine-backed family coarse vs striped,
# with per-family speedup columns.
bench-sweep-4:
	$(GO) run ./cmd/mtbench \
		-scheds mt-coarse,mt-striped,composite-coarse,composite-striped,dmt-coarse,dmt-striped \
		-speedups mt-coarse:mt-striped,composite-coarse:composite-striped,dmt-coarse:dmt-striped \
		-workers 1,2,4,8 -workloads uniform,zipf -iolat 0,20us -txns 1200 \
		-csv bench/bench_4.csv -json bench/BENCH_4.json

# Allocation regression gate (EXPERIMENTS.md E29): runs the hot-path
# benchmarks with -benchmem and checks allocs/op against the budgets in
# bench/alloc_budget.json. The steady-state engine/adapter benches are
# budgeted at exactly 0 allocs/op; the whole-run cells get headroom for
# setup noise. A budget pattern matching no benchmark also fails, so a
# renamed benchmark cannot silently escape its gate.
alloc-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkStripedScheduler/(free-store|steady)|BenchmarkDurableCommit/volatile' \
		-benchmem -benchtime 100x . | $(GO) run ./cmd/allocgate -budget bench/alloc_budget.json

# The zero-allocation-hot-path sweep behind bench/BENCH_10.json (see
# EXPERIMENTS.md E29): same grid as bench-sweep-4 so the rows are
# directly comparable before/after the interning + pooling rework.
# GOMAXPROCS=1 matches the BENCH_4 baseline environment.
bench-sweep-10:
	GOMAXPROCS=1 $(GO) run ./cmd/mtbench \
		-scheds mt-coarse,mt-striped,composite-coarse,composite-striped,dmt-coarse,dmt-striped \
		-speedups mt-coarse:mt-striped,composite-coarse:composite-striped,dmt-coarse:dmt-striped \
		-workers 1,2,4,8 -workloads uniform,zipf -iolat 0,20us -txns 1200 \
		-csv bench/bench_10.csv -json bench/BENCH_10.json

# A quick chaos smoke run: DMT(k) under crash + drift + message loss.
chaos:
	$(GO) run ./cmd/mtsim -chaos chaos -sites 4 -txns 2000 -workers 8 -k 3

# The partition-tolerance A/B matrix (EXPERIMENTS.md E26): fail-fast vs
# degraded parked commits across partition plans and crash variants,
# volatile and sidecar-backed counters. Each line reruns the identical
# seeded schedule under both policies and prints the availability delta.
chaos-partition:
	$(GO) run ./cmd/mtsim -partition partition -sites 4 -txns 2000 -seed 1
	$(GO) run ./cmd/mtsim -partition partition-crash -sites 4 -txns 2000 -seed 1
	$(GO) run ./cmd/mtsim -partition partition-churn -sites 4 -txns 2000 -seed 1
	$(GO) run ./cmd/mtsim -partition partition-churn -sites 4 -txns 2000 -seed 1 -sitewal
	$(GO) run ./cmd/mtsim -partition partition-asym -sites 4 -txns 2000 -seed 2

# One seed of the matrix for the CI gate (the full matrix is a local /
# nightly target).
chaos-partition-smoke:
	$(GO) run ./cmd/mtsim -partition partition-churn -sites 4 -txns 1000 -seed 1

# One quick overload A/B for the CI gate: exercises shedding, deadline
# accounting and the retention math end-to-end from the CLI. The
# measured curve (2000 txns, median-of-3) is bench-sweep-7 / E27.
overload-smoke:
	$(GO) run ./cmd/mtsim -sched mt -overload 1,10 -txns 800 -items 32 \
		-readfrac 0.5 -hotitems 4 -hotfrac 0.9 -workers 4

# The overload sweep behind bench/BENCH_7.json (EXPERIMENTS.md E27):
# goodput at 1x/4x/10x offered load per scheduler variant, admission
# control on vs off, median of 3 runs per point.
bench-sweep-7:
	$(GO) run ./cmd/mtsim -sched mt,mtdefer,composite,dmt -overload 1,4,10 \
		-txns 2000 -items 32 -readfrac 0.5 -hotitems 4 -hotfrac 0.9 \
		-workers 4 -repeats 3 -csv bench/bench_7.csv -json bench/BENCH_7.json

# Run every fuzz target for FUZZTIME each (Go runs one -fuzz target per
# invocation, hence the loop). Seed corpora alone run in `test`.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseLog -fuzztime=$(FUZZTIME) ./internal/oplog/
	$(GO) test -fuzz=FuzzParseLogWAL -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz=FuzzReplayTrace -fuzztime=$(FUZZTIME) ./internal/explore/

# Controlled-concurrency schedule exploration (internal/explore, see
# DESIGN.md §13 / EXPERIMENTS.md E28). The smoke leg runs the full test
# file: PCT campaigns over every scheduler family, exhaustive DFS on the
# 2x2 workloads (with the C(8,4)=70 bound check), the seeded-bug search
# acceptance tests, and the checked-in trace regressions.
explore-smoke:
	$(GO) test ./internal/explore -run TestExplore -explore.budget=40 -timeout 600s

# A deeper local search: more PCT executions per (family, workload).
explore:
	$(GO) test ./internal/explore -run TestExplore -explore.budget=500 -timeout 1800s -v

# Per-package coverage report (the numbers quoted in EXPERIMENTS.md E28).
cover:
	$(GO) test -cover ./internal/... | sort
	@$(GO) test -coverprofile=/tmp/repro-cover.out ./internal/... >/dev/null && \
		$(GO) tool cover -func=/tmp/repro-cover.out | tail -1

# The full crash matrix from the CLI: one run per filesystem sync
# boundary, verifying recovery, durability acks and counter watermarks.
crash:
	$(GO) run ./cmd/mtsim -sched mtdefer -txns 60 -items 8 -crashpoint -1 -checkpoint-every 16
