// Command allocgate enforces allocs/op budgets over `go test -benchmem`
// output. It reads benchmark result lines from stdin (or a file), matches
// each benchmark name against the patterns in a budget file, and fails —
// exit status 1 — if any matched benchmark exceeds its budget, or if a
// budget pattern matched no benchmark at all (so a renamed benchmark
// cannot silently escape its gate).
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkStripedScheduler' -benchmem -benchtime 100x . | allocgate -budget bench/alloc_budget.json
//
// The budget file maps a Go regexp (anchored on both ends) to the
// maximum allowed allocs/op:
//
//	{"budgets": {"BenchmarkStripedScheduler/steady-step/.*": 0}}
//
// Benchmark names are compared with their trailing GOMAXPROCS suffix
// ("-8") stripped, matching what `go test` prints rather than what the
// source declares.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// budgetFile is the on-disk schema of -budget.
type budgetFile struct {
	// Budgets maps an anchored regexp over benchmark names to the
	// maximum allocs/op allowed for every benchmark it matches.
	Budgets map[string]float64 `json:"budgets"`
}

// result is one parsed benchmark output line.
type result struct {
	name   string
	allocs float64
}

var (
	// benchLine matches e.g.
	// "BenchmarkStripedScheduler/steady-step/read-8   50000   117.5 ns/op   0 B/op   0 allocs/op"
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)
	// procSuffix is the trailing "-<GOMAXPROCS>" go test appends.
	procSuffix = regexp.MustCompile(`-\d+$`)
)

func main() {
	budgetPath := flag.String("budget", "bench/alloc_budget.json", "path to the allocs/op budget file")
	input := flag.String("input", "-", "benchmark output to check ('-' for stdin)")
	flag.Parse()

	bf, err := loadBudget(*budgetPath)
	if err != nil {
		fatal(err)
	}
	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parseResults(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found (did the bench run fail, or was -benchmem missing?)"))
	}

	failures := check(bf, results, os.Stdout)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "allocgate: %d violation(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("allocgate: all budgets satisfied")
}

func loadBudget(path string) (*budgetFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf budgetFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Budgets) == 0 {
		return nil, fmt.Errorf("%s: no budgets defined", path)
	}
	return &bf, nil
}

// parseResults extracts (name, allocs/op) pairs from go test output.
// Lines without an "allocs/op" field (custom-metric-only lines, PASS,
// headers) are skipped.
func parseResults(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		allocs, ok := allocsField(m[2])
		if !ok {
			continue
		}
		out = append(out, result{name: procSuffix.ReplaceAllString(m[1], ""), allocs: allocs})
	}
	return out, sc.Err()
}

// allocsField pulls the value preceding the "allocs/op" unit out of the
// metrics tail of a benchmark line.
func allocsField(tail string) (float64, bool) {
	fields := strings.Fields(tail)
	for i, f := range fields {
		if f == "allocs/op" && i > 0 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// check compares results against budgets, prints one table row per
// matched benchmark, and returns the number of violations. A budget
// pattern that matches nothing is itself a violation.
func check(bf *budgetFile, results []result, w io.Writer) int {
	// Sort patterns for deterministic output.
	patterns := make([]string, 0, len(bf.Budgets))
	for p := range bf.Budgets {
		patterns = append(patterns, p)
	}
	for i := 1; i < len(patterns); i++ {
		for j := i; j > 0 && patterns[j] < patterns[j-1]; j-- {
			patterns[j], patterns[j-1] = patterns[j-1], patterns[j]
		}
	}

	failures := 0
	fmt.Fprintf(w, "%-58s %12s %12s %s\n", "benchmark", "allocs/op", "budget", "verdict")
	for _, p := range patterns {
		re, err := regexp.Compile("^(?:" + p + ")$")
		if err != nil {
			fmt.Fprintf(w, "%-58s %12s %12s BAD PATTERN (%v)\n", p, "-", "-", err)
			failures++
			continue
		}
		limit := bf.Budgets[p]
		matched := false
		for _, res := range results {
			if !re.MatchString(res.name) {
				continue
			}
			matched = true
			verdict := "ok"
			if res.allocs > limit {
				verdict = "FAIL"
				failures++
			}
			fmt.Fprintf(w, "%-58s %12g %12g %s\n", res.name, res.allocs, limit, verdict)
		}
		if !matched {
			fmt.Fprintf(w, "%-58s %12s %12g UNMATCHED (benchmark missing or renamed)\n", p, "-", limit)
			failures++
		}
	}
	return failures
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "allocgate:", err)
	os.Exit(1)
}
