// Command mtexplore drives the controlled-concurrency schedule explorer
// (internal/explore) from the command line: it searches the interleaving
// space of a scheduler family over a tiny named workload with PCT random
// priorities or bounded DFS, judges every execution with the full oracle
// set (panic/deadlock, DSR, coarse-reference parity, k-th-column
// uniqueness), and writes any failing schedule as a replayable — and
// optionally delta-debugged — trace file.
//
// Usage:
//
//	mtexplore -sched mt-striped -workload conflict-2x2 -strategy pct -budget 2000
//	mtexplore -sched dmt -workload mix-3x3 -strategy dfs
//	mtexplore -replay failure.trace
//	mtexplore -replay testdata/publish_inversion.trace -inject
//
// Every run is a pure function of its flags: the same seed and budget
// re-explore the same schedules. A failing run exits 1 after writing
// the trace; -shrink minimizes it first.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/explore"
)

func main() {
	schedName := flag.String("sched", "mt-striped", "scheduler family: mt|mt-striped|composite|dmt|nested")
	workloadName := flag.String("workload", "conflict-2x2", "named workload: "+strings.Join(explore.WorkloadNames(), "|"))
	strategy := flag.String("strategy", "pct", "search strategy: pct|dfs")
	budget := flag.Int("budget", 1000, "PCT executions (ignored by dfs)")
	seed := flag.Int64("seed", 1, "PCT campaign seed")
	d := flag.Int("d", 3, "PCT priority-change points (bug depth - 1)")
	k := flag.Int("k", 2, "timestamp vector size")
	deferWrites := flag.Bool("defer", false, "deferred-write discipline (mt families)")
	starvation := flag.Bool("starvation", false, "enable the starvation-avoidance reseed")
	maxSchedules := flag.Int("max-schedules", 0, "DFS schedule cap (0 = run to exhaustion)")
	out := flag.String("out", ".", "directory for failing trace files")
	shrink := flag.Bool("shrink", true, "delta-debug failing schedules before writing them")
	replay := flag.String("replay", "", "replay a trace file instead of searching")
	inject := flag.Bool("inject", false, "with -replay: honor the trace's unsafe-* injection flags")
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay, *inject))
	}

	w, ok := explore.NamedWorkload(*workloadName)
	if !ok {
		fmt.Fprintf(os.Stderr, "mtexplore: unknown workload %q (have %s)\n",
			*workloadName, strings.Join(explore.WorkloadNames(), ", "))
		os.Exit(2)
	}
	o := explore.CampaignOptions{
		Config: explore.Config{
			Family:              *schedName,
			K:                   *k,
			DeferWrites:         *deferWrites,
			StarvationAvoidance: *starvation,
			Initial:             map[string]int64{"a": 10, "b": 20, "c": 30, "x": 40},
		},
		Workload: w,
	}
	var dfs *explore.DFS
	switch *strategy {
	case "pct":
		o.Strategy = &explore.PCT{Seed: *seed, D: *d, Budget: *budget}
	case "dfs":
		dfs = &explore.DFS{MaxSchedules: *maxSchedules}
		o.Strategy = dfs
		o.Preempt = explore.PreemptOps
	default:
		fmt.Fprintf(os.Stderr, "mtexplore: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	res := explore.RunCampaign(o)
	rate := float64(res.Executions) / res.Elapsed.Seconds()
	fmt.Printf("%s/%s %s: %d executions (%d distinct schedules) in %v — %.0f schedules/sec\n",
		*schedName, *workloadName, *strategy, res.Executions, res.Distinct, res.Elapsed.Round(1e6), rate)
	for st, n := range res.Statuses {
		fmt.Printf("  %-10s %d\n", st, n)
	}
	if dfs != nil {
		if res.Exhausted {
			fmt.Println("  schedule space exhausted")
		} else {
			fmt.Println("  schedule space NOT exhausted (cap reached)")
		}
	}
	if len(res.Failures) == 0 {
		fmt.Println("  all oracles passed")
		return
	}

	f := res.Failures[0]
	fmt.Printf("FAILURE %s: %s\n", f.Oracle, f.Detail)
	if *shrink && len(f.Dirs) > 0 {
		orig := len(f.Dirs)
		f.Dirs = explore.Shrink(f.Dirs, func(dirs []explore.Directive) bool {
			_, rf, _ := explore.ReplayTrace(o, &explore.Trace{Dirs: dirs})
			return rf != nil && rf.Oracle == f.Oracle
		}, 0)
		fmt.Printf("  shrunk %d -> %d directives\n", orig, len(f.Dirs))
	}
	tr := explore.TraceFor(o, f)
	path := filepath.Join(*out, fmt.Sprintf("%s_%s_%s.trace", *schedName, *workloadName, f.Oracle))
	if err := os.WriteFile(path, tr.Format(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mtexplore: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s — replay with: mtexplore -replay %s -inject\n", path, path)
	os.Exit(1)
}

func runReplay(path string, inject bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtexplore: %v\n", err)
		return 2
	}
	tr, err := explore.ParseTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtexplore: %v\n", err)
		return 2
	}
	o, err := explore.OptionsFromTrace(tr, inject)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtexplore: %v\n", err)
		return 2
	}
	ex, f, diverged := explore.ReplayTrace(o, tr)
	fmt.Printf("replayed %s: status=%s steps=%d diverged=%v\n", path, ex.Status, len(ex.Choices), diverged)
	if f != nil {
		fmt.Printf("FAILURE %s: %s\n", f.Oracle, f.Detail)
		return 1
	}
	fmt.Println("all oracles passed")
	return 0
}
