// Command mtexp reproduces the paper's worked examples, tables and
// figures and prints them in the paper's own notation. Run with -exp all
// (default) or one of: e1, table1, table2, table3, table4, fig4, fig5,
// fig6, starvation, thomas, theorem3, theorem5, interval.
//
// Usage:
//
//	mtexp [-exp name]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classify"
	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/enumerate"
	"repro/internal/interval"
	"repro/internal/nested"
	"repro/internal/oplog"
	"repro/internal/storage"
	"repro/internal/vecproc"
)

type experiment struct {
	name string
	desc string
	run  func()
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all', 'list')")
	flag.Parse()

	exps := []experiment{
		{"e1", "Example 1: MT(2) avoids the TO(1) abort", runE1},
		{"table1", "Table I: vector evolution for Example 2", runTable1},
		{"table2", "Table II: hot-item chain of Example 3", runTable2},
		{"table3", "Table III: MT(k1,k2) vectors for Example 4", runTable3},
		{"table4", "Table IV: read/write-set groups of Example 6", runTable4},
		{"fig4", "Fig. 4: hierarchy census over enumerated logs", runFig4},
		{"fig5", "Fig. 5: the starvation case and its fix", runFig5},
		{"fig6", "Fig. 6: parallel vector comparison", runFig6},
		{"thomas", "Thomas write rule integration", runThomas},
		{"theorem3", "Theorem 3: vector-size saturation at 2q-1", runTheorem3},
		{"theorem5", "Theorem 5: shared prefixes in MT(k+)", runTheorem5},
		{"interval", "Section VI-A: vectors vs timestamp intervals", runInterval},
	}

	if *exp == "list" {
		for _, e := range exps {
			fmt.Printf("  %-10s %s\n", e.name, e.desc)
		}
		return
	}
	ran := false
	for _, e := range exps {
		if *exp == "all" || *exp == e.name {
			fmt.Printf("==== %s — %s ====\n", e.name, e.desc)
			e.run()
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -exp list)\n", *exp)
		os.Exit(2)
	}
}

// printVectors prints the timestamp table rows in ascending txn order.
func printVectors(s *engine.Scheduler, txns []int) {
	for _, t := range txns {
		fmt.Printf("  TS(%d) = %s\n", t, s.Vector(t))
	}
}

func runE1() {
	l := oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]")
	fmt.Printf("log L = %s\n", l)
	fmt.Printf("TO(1) per Definition 4: %v (premature order T3 before T2)\n", classify.TO1(l))
	fmt.Printf("MT(1) accepts: %v\n", engine.Accepts(1, l))
	fmt.Printf("MT(2) accepts: %v\n", engine.Accepts(2, l))

	s := engine.NewScheduler(engine.Options{K: 2})
	prefix := oplog.MustParse("W1[x] W1[y] R3[x] R2[y]")
	s.AcceptLog(prefix)
	fmt.Println("after the prefix (T2 and T3 share element 1):")
	printVectors(s, []int{1, 2, 3})
	s.Step(oplog.W(3, "y"))
	fmt.Println("after W3[y] (T2 -> T3 encoded in dimension 2):")
	printVectors(s, []int{1, 2, 3})
	fmt.Printf("serialization order: %v\n", s.SerialOrder([]int{1, 2, 3}))
}

func runTable1() {
	s := engine.NewScheduler(engine.Options{K: 2})
	steps := []struct {
		op   oplog.Op
		edge string
	}{
		{oplog.R(1, "x"), "a: T0->T1"},
		{oplog.R(2, "y"), "b: T0->T2"},
		{oplog.R(3, "z"), "c: T0->T3"},
		{oplog.W(1, "y"), "d: T2->T1"},
		{oplog.W(1, "z"), "e: T3->T1"},
	}
	fmt.Printf("%-14s %-8s %-8s %-8s %-8s\n", "edge", "TS(0)", "TS(1)", "TS(2)", "TS(3)")
	row := func(label string) {
		fmt.Printf("%-14s %-8s %-8s %-8s %-8s\n", label,
			s.Vector(0), s.Vector(1), s.Vector(2), s.Vector(3))
	}
	row("initialization")
	for _, st := range steps {
		if d := s.Step(st.op); d.Verdict != core.Accept {
			fmt.Printf("unexpected reject at %v\n", st.op)
			return
		}
		row(st.edge)
	}
	row("resulting")
	fmt.Printf("serialization order: %v (log ≡ T3 T2 T1)\n", s.SerialOrder([]int{1, 2, 3}))
}

func runTable2() {
	s := engine.NewScheduler(engine.Options{K: 2})
	s.SeedVector(4, core.Int(1), core.Int(4))
	s.SetCounters(0, 5)
	fmt.Println("vectors just before the middle operations: TS(4) = <1,4>")
	for _, op := range oplog.MustParse("R1[x] W2[x] W3[x]").Ops {
		s.Step(op)
	}
	fmt.Printf("%-8s %-8s %-8s %-8s %-8s\n", "TS(0)", "TS(1)", "TS(2)", "TS(3)", "TS(4)")
	fmt.Printf("%-8s %-8s %-8s %-8s %-8s\n",
		s.Vector(0), s.Vector(1), s.Vector(2), s.Vector(3), s.Vector(4))
	fmt.Println("note: the hot item x chained TS(1) < TS(2) < TS(3) and ordered TS(4) too.")

	// The optimized (right-shifted) encoding of Section III-D-5.
	fmt.Println("optimized encoding (hot item, k=4): T1=<1,3,*,*> then encode T1->T2:")
	h2 := engine.NewScheduler(engine.Options{K: 4, HotItems: map[string]bool{"x": true}})
	h2.SeedVector(1, core.Int(1), core.Int(3), core.Undef, core.Undef)
	// Route the dependency through the hot item x: T1 writes, T2 reads.
	h2.Step(oplog.W(1, "x"))
	h2.Step(oplog.R(2, "x"))
	fmt.Printf("  TS(1) = %s, TS(2) = %s (dependency pushed right)\n", h2.Vector(1), h2.Vector(2))
}

func runTable3() {
	s := nested.New2Level(2, 2, map[int]int{1: 1, 2: 1, 3: 2})
	l := oplog.MustParse("R1[x] R2[y] W2[x] R3[x]")
	edges := []string{"a: G0->G1", "b: G0->G1 (already encoded)", "c: T1->T2", "d: G1->G2"}
	fmt.Printf("%-26s %-7s %-7s %-7s %-7s %-7s %-7s\n",
		"edge", "GS(0)", "GS(1)", "GS(2)", "TS(1)", "TS(2)", "TS(3)")
	row := func(label string) {
		fmt.Printf("%-26s %-7s %-7s %-7s %-7s %-7s %-7s\n", label,
			s.UnitVector(1, 0), s.UnitVector(1, 1), s.UnitVector(1, 2),
			s.TxnVector(1), s.TxnVector(2), s.TxnVector(3))
	}
	row("initialization")
	for i, op := range l.Ops {
		if d := s.Step(op); d.Verdict != core.Accept {
			fmt.Printf("unexpected reject at %v\n", op)
			return
		}
		row(edges[i])
	}
	row("resulting")
	fmt.Printf("serialization order: %v\n", s.SerialOrder([]int{1, 2, 3}))
	fmt.Println("a later dependency T3 -> T2 implies G2 -> G1 and is rejected:")
	s.Step(oplog.W(3, "w"))
	d := s.Step(oplog.R(2, "w"))
	fmt.Printf("  R2[w] after W3[w]: %s\n", d.Verdict)
}

func runTable4() {
	// Example 6's fixed signatures: G1 reads {x,z} writes {y,z};
	// G2 reads {y,w} writes {x,w}.
	l := oplog.MustParse("R1[x,z] W1[y,z] R3[x,z] W3[y,z] R2[y,w] W2[x,w]")
	groups := nested.SignatureGroups(l)
	fmt.Println("transactions partitioned by read/write-set signature:")
	txns := l.Transactions()
	for _, t := range txns {
		fmt.Printf("  T%d -> G%d\n", t, groups[t])
	}
	fmt.Printf("T1 and T3 share a group: %v; T2 is apart: %v\n",
		groups[1] == groups[3], groups[1] != groups[2])
	s := nested.NewScheduler(nested.Options{
		Ks:     []int{2, 2},
		UnitOf: func(txn, lvl int) int { return groups[txn] },
	})
	ok, at := s.AcceptLog(l)
	fmt.Printf("MT(2,2) over the signature groups accepts the log: %v (first reject index %d)\n", ok, at)
	fmt.Println("cross-group dependencies are one-way (G1 -> G2): antisymmetric by construction")
}

func runFig4() {
	c := enumerate.RunCensus(3, []string{"x", "y", "z"})
	fmt.Print(c.String())
	regions := []struct {
		name string
		pred func(enumerate.Membership) bool
	}{
		{"TO(3) \\ TO(1)", func(m enumerate.Membership) bool { return m.TO3 && !m.TO1 }},
		{"TO(1) \\ TO(3)", func(m enumerate.Membership) bool { return m.TO1 && !m.TO3 }},
		{"TO(3) ∩ SSR − TO(1) − 2PL (region 7)", func(m enumerate.Membership) bool {
			return m.TO3 && m.SSR && !m.TO1 && !m.TwoPL
		}},
		{"DSR ∩ SSR − TO(3) − TO(1) − 2PL (region 9)", func(m enumerate.Membership) bool {
			return m.DSR && m.SSR && !m.TO3 && !m.TO1 && !m.TwoPL
		}},
		{"2PL \\ TO(3)", func(m enumerate.Membership) bool { return m.TwoPL && !m.TO3 }},
		{"TO(3) \\ 2PL", func(m enumerate.Membership) bool { return m.TO3 && !m.TwoPL }},
	}
	fmt.Println("region witnesses:")
	for _, r := range regions {
		w := c.Witness(r.pred)
		n := c.ClassCount(r.pred)
		if w == nil {
			fmt.Printf("  %-44s EMPTY\n", r.name)
			continue
		}
		fmt.Printf("  %-44s n=%-5d e.g. %s\n", r.name, n, w)
	}
}

func runFig5() {
	fmt.Println("log L = W1[x] W2[x] R3[y] W3[x]")
	plain := engine.NewScheduler(engine.Options{K: 2})
	plain.AcceptLog(oplog.MustParse("W1[x] W2[x] R3[y]"))
	for attempt := 1; attempt <= 3; attempt++ {
		d := plain.Step(oplog.W(3, "x"))
		fmt.Printf("  attempt %d without fix: W3[x] %s (blocker T%d)\n", attempt, d.Verdict, d.Blocker)
		if d.Verdict != core.Reject {
			break
		}
		plain.Abort(3, d.Blocker)
		plain.Step(oplog.R(3, "y"))
	}
	fixed := engine.NewScheduler(engine.Options{K: 2, StarvationAvoidance: true})
	fixed.AcceptLog(oplog.MustParse("W1[x] W2[x] R3[y]"))
	d := fixed.Step(oplog.W(3, "x"))
	fmt.Printf("  with fix: first W3[x] %s; flushing TS(3)\n", d.Verdict)
	fixed.Abort(3, d.Blocker)
	fmt.Printf("  TS(3) reseeded to %s\n", fixed.Vector(3))
	ok, _ := fixed.AcceptLog(oplog.MustParse("R3[y] W3[x]"))
	fmt.Printf("  restart commits: %v\n", ok)
}

func runFig6() {
	a := core.VectorOf(core.Int(1), core.Int(3), core.Int(2), core.Int(2))
	b := core.VectorOf(core.Int(1), core.Int(3), core.Int(5), core.Int(2))
	r := vecproc.Compare(a, b)
	fmt.Printf("input:  TS(1) = %s\n        TS(2) = %s\n", a, b)
	fmt.Printf("output: TS(1) %s TS(2), deciding position %d, %d parallel steps\n",
		r.Rel, r.Pos, r.ParallelSteps)
	fmt.Println("parallel steps by vector size (⌈log2 k⌉ + 4, Theorem 4):")
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		v := core.NewVector(k)
		fmt.Printf("  k=%-3d steps=%d\n", k, vecproc.Compare(v, v.Clone()).ParallelSteps)
	}
}

func runThomas() {
	l := oplog.MustParse("W2[y] R1[y] W1[x] W2[x]")
	fmt.Printf("log L = %s (W2[x] is obsolete: TS(2) < TS(1) = WT(x))\n", l)
	plain := engine.NewScheduler(engine.Options{K: 2})
	okPlain, atPlain := plain.AcceptLog(l)
	fmt.Printf("  without Thomas rule: accepted=%v (reject at op %d)\n", okPlain, atPlain)
	thomas := engine.NewScheduler(engine.Options{K: 2, ThomasWriteRule: true})
	var last core.Decision
	for _, op := range l.Ops {
		last = thomas.Step(op)
	}
	fmt.Printf("  with Thomas rule: final op verdict=%s (write ignored, no abort)\n", last.Verdict)
}

func runTheorem3() {
	fmt.Println("two-step model (q=2): acceptance saturates at k = 2q-1 = 3")
	logs := []string{
		"W1[x] W1[y] R3[x] R2[y] W3[y]",
		"R1[x] W1[x] R2[x] W2[x] R3[y] W3[y]",
		"R1[x] R2[x] W1[y] W2[z] R3[y] W3[x]",
	}
	fmt.Printf("%-44s %-6s %-6s %-6s %-6s %-6s\n", "log", "k=1", "k=2", "k=3", "k=4", "k=5")
	for _, s := range logs {
		l := oplog.MustParse(s)
		fmt.Printf("%-44s", s)
		for k := 1; k <= 5; k++ {
			fmt.Printf(" %-6v", engine.Accepts(k, l))
		}
		fmt.Println()
	}
	// The 2q-th column is never set (Lemma 4).
	sch := engine.NewScheduler(engine.Options{K: 4})
	sch.AcceptLog(oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]"))
	maxDefined := 0
	for t, v := range sch.Snapshot() {
		_ = t
		for m := 1; m <= v.K(); m++ {
			if v.Elem(m).Defined && m > maxDefined {
				maxDefined = m
			}
		}
	}
	fmt.Printf("deepest element ever set with k=4 on Example 1: column %d (Lemma 4: < 2q)\n", maxDefined)
}

func runTheorem5() {
	s := composite.NewScheduler(composite.Options{K: 4})
	l := oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]")
	s.AcceptLog(l)
	fmt.Printf("alive subprotocols after Example 1: %v\n", s.Alive())
	fmt.Println("shared prefix lengths (Theorem 5 floor: min(h1,h2)-1):")
	for _, pair := range [][2]int{{2, 3}, {2, 4}, {3, 4}} {
		for _, txn := range []int{1, 2, 3} {
			fmt.Printf("  T%d MT(%d)/MT(%d): %d\n", txn, pair[0], pair[1],
				s.SharedPrefixSize(txn, pair[0], pair[1]))
		}
	}
}

func runInterval() {
	fmt.Println("hot-item chain, interval scheme without compaction (Section VI-A):")
	st := storage.New()
	iv := interval.New(st, interval.Options{NoCompact: true})
	deep := 0
	for i := 1; i <= 200; i++ {
		iv.Begin(i)
		if _, err := iv.Read(i, "hot"); err != nil {
			break
		}
		if err := iv.Write(i, "hot", int64(i)); err != nil {
			break
		}
		if err := iv.Commit(i); err != nil {
			break
		}
		deep = i
	}
	fmt.Printf("  chain depth before exhaustion: %d (space fragments exponentially)\n", deep)
	fmt.Printf("  fragmentation aborts: %d\n", iv.Exhausted())

	fmt.Println("the same chain under MT(2): no fragmentation, any depth:")
	s := engine.NewScheduler(engine.Options{K: 2})
	okAll := true
	for i := 1; i <= 200; i++ {
		if d := s.Step(oplog.R(i, "hot")); d.Verdict != core.Accept {
			okAll = false
			break
		}
		if d := s.Step(oplog.W(i, "hot")); d.Verdict != core.Accept {
			okAll = false
			break
		}
	}
	fmt.Printf("  200-deep chain accepted: %v\n", okAll)
}
