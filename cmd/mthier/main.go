// Command mthier runs the Fig. 4 hierarchy census: it enumerates every
// two-step log of n transactions over a small item alphabet, classifies
// each against 2PL / TO(1) / TO(2) / TO(3) / SSR / DSR / SR, and prints
// the population of every membership region with a witness log.
//
// Usage:
//
//	mthier [-n 3] [-items 3] [-witnesses]
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/enumerate"
)

func main() {
	n := flag.Int("n", 3, "number of transactions")
	items := flag.Int("items", 3, "alphabet size (max 4)")
	witnesses := flag.Bool("witnesses", false, "print a witness log per region")
	flag.Parse()

	alphabet := []string{"x", "y", "z", "w"}
	if *items < 1 {
		*items = 1
	}
	if *items > len(alphabet) {
		*items = len(alphabet)
	}
	fmt.Printf("enumerating two-step logs: n=%d items=%d\n", *n, *items)
	c := enumerate.RunCensus(*n, alphabet[:*items])
	fmt.Print(c.String())

	if *witnesses {
		type row struct {
			key string
			m   enumerate.Membership
		}
		var rows []row
		for m := range c.Counts {
			rows = append(rows, row{m.Key(), m})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
		fmt.Println("witnesses:")
		for _, r := range rows {
			fmt.Printf("  %-40s %s\n", r.key, c.Examples[r.m])
		}
	}

	// Headline class sizes (degree of concurrency, Section III-C).
	fmt.Println("class populations (degree of concurrency):")
	counts := []struct {
		name string
		pred func(enumerate.Membership) bool
	}{
		{"SR", func(m enumerate.Membership) bool { return m.SR }},
		{"DSR", func(m enumerate.Membership) bool { return m.DSR }},
		{"SSR", func(m enumerate.Membership) bool { return m.SSR }},
		{"2PL", func(m enumerate.Membership) bool { return m.TwoPL }},
		{"TO(1) def4", func(m enumerate.Membership) bool { return m.TO1 }},
		{"TO(2)", func(m enumerate.Membership) bool { return m.TO2 }},
		{"TO(3)", func(m enumerate.Membership) bool { return m.TO3 }},
		{"TO(3) ∪ TO(1)", func(m enumerate.Membership) bool { return m.TO3 || m.TO1 }},
	}
	for _, cc := range counts {
		fmt.Printf("  %-14s %6d / %d\n", cc.name, c.ClassCount(cc.pred), c.Total)
	}
}
