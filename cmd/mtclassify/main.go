// Command mtclassify classifies logs (given as arguments or on stdin, one
// per line, in the paper's "W1[x] R2[y]" notation) against the Fig. 4
// hierarchy: DSR, SR, SSR, 2PL, TO(1) (Definition 4), TO(1..kmax)
// (protocol classes) and TO(kmax⁺).
//
// Usage:
//
//	mtclassify [-kmax 3] ["W1[x] W1[y] R3[x] R2[y] W3[y]" ...]
//	echo "R1[x] W1[x]" | mtclassify
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/classify"
	"repro/internal/oplog"
)

func main() {
	kmax := flag.Int("kmax", 3, "largest vector size to test")
	brute := flag.Bool("brute", true, "run the brute-force SR/SSR classifiers (small logs only)")
	flag.Parse()

	logs := flag.Args()
	if len(logs) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				logs = append(logs, line)
			}
		}
	}
	if len(logs) == 0 {
		fmt.Fprintln(os.Stderr, "mtclassify: no logs given (arguments or stdin)")
		os.Exit(2)
	}
	exit := 0
	for _, src := range logs {
		l, err := oplog.Parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtclassify: %v\n", err)
			exit = 1
			continue
		}
		classifyOne(l, *kmax, *brute)
	}
	os.Exit(exit)
}

func classifyOne(l *oplog.Log, kmax int, brute bool) {
	fmt.Printf("log: %s\n", l)
	fmt.Printf("  transactions=%d ops=%d items=%d two-step=%v\n",
		len(l.Transactions()), l.Len(), len(l.Items()), l.IsTwoStep())
	var classes []string
	add := func(name string, member bool) {
		if member {
			classes = append(classes, name)
		}
	}
	add("DSR", classify.DSR(l))
	if brute && len(l.Transactions()) <= 7 {
		add("SR", classify.SR(l))
		add("SSR", classify.SSR(l))
	}
	add("2PL", classify.TwoPL(l))
	add("TO1(def4)", classify.TO1(l))
	for k := 1; k <= kmax; k++ {
		add(fmt.Sprintf("TO(%d)", k), classify.TOk(k, l))
	}
	add(fmt.Sprintf("TO(%d+)", kmax), classify.TOkPlus(kmax, l))
	if len(classes) == 0 {
		fmt.Println("  classes: none (not serializable)")
		return
	}
	fmt.Printf("  classes: %s\n", strings.Join(classes, " "))
}
