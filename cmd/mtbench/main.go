// Command mtbench is the reproducible scheduler benchmark harness: it
// sweeps goroutine counts × contention profiles × schedulers over
// seeded workloads and emits one CSV row per cell plus a JSON summary
// with derived subject-vs-baseline speedups.
//
// Usage:
//
//	mtbench -csv bench.csv -json BENCH_3.json
//	mtbench -scheds mt-coarse,mt-striped -workers 1,2,4,8 -iolat 0,20us
//	mtbench -workloads uniform,zipf -items 1024 -txns 1500 -zipfs 1.3
//
// The -iolat list models a paged/remote storage backend: every store
// access sleeps that long under the affected shard locks (see
// storage.SetSimLatency). With -iolat 0 the store is free, so on a
// single-CPU host the schedulers mostly measure protocol overhead;
// with a non-zero latency the coarse global-mutex adapter serializes
// every sleep while the striped adapter overlaps sleeps on disjoint
// items — the lock-granularity effect the sweep exists to expose.
//
// Every cell is a pure function of its flags (workload seed, runtime
// seed): re-running with identical flags re-runs the identical
// workload, so two CSVs from the same flags differ only in timing.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	schedList := flag.String("scheds", "mt-coarse,mt-striped",
		"comma list: mt-coarse|mt-striped|mtdefer-coarse|mtdefer-striped|composite-coarse|composite-striped|dmt-coarse|dmt-striped")
	workerList := flag.String("workers", "1,2,4,8,16", "comma list of goroutine counts")
	workloadList := flag.String("workloads", "uniform,zipf", "comma list: uniform|zipf|hotspot")
	iolatList := flag.String("iolat", "0,20us", "comma list of simulated store latencies (Go durations)")
	k := flag.Int("k", 0, "vector size for the MT family (0 = 2q-1 per Theorem 3)")
	txns := flag.Int("txns", 1500, "transactions per cell")
	ops := flag.Int("ops", 4, "operations per transaction")
	items := flag.Int("items", 1024, "database size (uniform; zipf/hotspot scale it down)")
	readFrac := flag.Float64("readfrac", 0.7, "fraction of reads")
	zipfS := flag.Float64("zipfs", 1.3, "zipf exponent for the zipf workload")
	seed := flag.Int64("seed", 1, "workload seed")
	sites := flag.Int("sites", 4, "site count for the dmt schedulers")
	maxAttempts := flag.Int("maxattempts", 1000, "per-transaction retry budget")
	csvPath := flag.String("csv", "", "write the per-cell CSV here (default stdout)")
	jsonPath := flag.String("json", "", "write the JSON summary (rows + speedups) here")
	baseline := flag.String("baseline", "mt-coarse", "speedup baseline scheduler")
	subject := flag.String("subject", "mt-striped", "speedup subject scheduler")
	speedupPairs := flag.String("speedups", "",
		"comma list of baseline:subject speedup pairs (overrides -baseline/-subject)")
	notes := flag.String("notes", "", "free-form note recorded in the JSON summary")
	flag.Parse()

	if *k <= 0 {
		*k = 2*(*ops) - 1
	}

	factories := map[string]func(*storage.Store) sched.Scheduler{
		"mt-coarse": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: *k, StarvationAvoidance: true}})
		},
		"mt-striped": func(st *storage.Store) sched.Scheduler {
			return sched.NewMTStriped(st, sched.MTOptions{Core: engine.Options{K: *k, StarvationAvoidance: true}})
		},
		"mtdefer-coarse": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{
				Core: engine.Options{K: *k, StarvationAvoidance: true}, DeferWrites: true})
		},
		"mtdefer-striped": func(st *storage.Store) sched.Scheduler {
			return sched.NewMTStriped(st, sched.MTOptions{
				Core: engine.Options{K: *k, StarvationAvoidance: true}, DeferWrites: true})
		},
		"composite-coarse": func(st *storage.Store) sched.Scheduler {
			return sched.NewCompositeCoarse(st, *k, engine.Options{StarvationAvoidance: true})
		},
		"composite-striped": func(st *storage.Store) sched.Scheduler {
			return sched.NewComposite(st, *k, engine.Options{StarvationAvoidance: true})
		},
		"dmt-coarse": func(st *storage.Store) sched.Scheduler {
			return sched.NewDMTCoarse(st, dmt.Options{K: *k, Sites: *sites})
		},
		"dmt-striped": func(st *storage.Store) sched.Scheduler {
			return sched.NewDMT(st, dmt.Options{K: *k, Sites: *sites})
		},
	}
	// Back-compat alias: "composite" is the striped variant.
	factories["composite"] = factories["composite-striped"]

	scheds := splitList(*schedList)
	for _, s := range scheds {
		if _, ok := factories[s]; !ok {
			fmt.Fprintf(os.Stderr, "mtbench: unknown scheduler %q\n", s)
			os.Exit(2)
		}
	}
	var workers []int
	for _, w := range splitList(*workerList) {
		n, err := strconv.Atoi(w)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "mtbench: bad worker count %q\n", w)
			os.Exit(2)
		}
		workers = append(workers, n)
	}
	var iolats []time.Duration
	for _, l := range splitList(*iolatList) {
		d, err := time.ParseDuration(l)
		if l == "0" {
			d, err = 0, nil
		}
		if err != nil || d < 0 {
			fmt.Fprintf(os.Stderr, "mtbench: bad store latency %q\n", l)
			os.Exit(2)
		}
		iolats = append(iolats, d)
	}

	type wl struct {
		name string
		cfg  workload.Config
	}
	allWLs := map[string]wl{
		"uniform": {"uniform", workload.Config{
			Txns: *txns, OpsPerTxn: *ops, Items: *items,
			ReadFraction: *readFrac, Seed: *seed}},
		"zipf": {"zipf", workload.Config{
			Txns: *txns, OpsPerTxn: *ops, Items: *items / 8,
			ReadFraction: *readFrac, ZipfS: *zipfS, Seed: *seed}},
		"hotspot": {"hotspot", workload.Config{
			Txns: *txns, OpsPerTxn: *ops, Items: *items / 4,
			ReadFraction: *readFrac, HotItems: 8, HotFraction: 0.8, Seed: *seed}},
	}
	var wls []wl
	for _, name := range splitList(*workloadList) {
		w, ok := allWLs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mtbench: unknown workload %q\n", name)
			os.Exit(2)
		}
		if w.cfg.Items < 1 {
			w.cfg.Items = 1
		}
		wls = append(wls, w)
	}

	fmt.Fprintf(os.Stderr, "mtbench: k=%d txns=%d ops=%d gomaxprocs=%d cells=%d\n",
		*k, *txns, *ops, runtime.GOMAXPROCS(0),
		len(scheds)*len(workers)*len(wls)*len(iolats))

	var rows []metrics.BenchRow
	for _, w := range wls {
		specs := w.cfg.Generate()
		for _, lat := range iolats {
			for _, nw := range workers {
				for _, sname := range scheds {
					// Mallocs delta around the cell gives allocs per
					// protocol op (committed ops only — restarted work
					// counts in the numerator, so this upper-bounds the
					// steady-state figure the alloc gate enforces).
					var msBefore, msAfter runtime.MemStats
					runtime.ReadMemStats(&msBefore)
					rep := sim.Run(sim.Config{
						NewScheduler: factories[sname],
						Specs:        specs,
						Workers:      nw,
						MaxAttempts:  *maxAttempts,
						Backoff:      20 * time.Microsecond,
						RuntimeSeed:  *seed,
						StoreLatency: lat,
					})
					runtime.ReadMemStats(&msAfter)
					row := metrics.BenchRow{
						Sched: sname, Workload: w.name, Workers: nw,
						Items: w.cfg.Items, Txns: *txns, OpsPerTxn: *ops,
						ReadFrac: *readFrac, StoreLatUS: lat.Microseconds(), Seed: *seed,
						Committed: rep.Committed, GaveUp: rep.GaveUp, Restarts: rep.Restarts,
						AbortRate: rep.AbortRate(), Throughput: rep.Throughput(),
						WallMS:    float64(rep.Wall.Microseconds()) / 1000,
						MeanLatUS: rep.Latency.Mean() / 1e3,
						P99US:     rep.Latency.Percentile(99) / 1000,
					}
					if ops := rep.Committed * int64(*ops); ops > 0 {
						row.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(ops)
					}
					if w.name == "zipf" {
						row.ZipfS = *zipfS
					}
					rows = append(rows, row)
					fmt.Fprintf(os.Stderr, "  %-16s %-8s workers=%-3d iolat=%-8s tput=%8.0f/s aborts=%.3f\n",
						sname, w.name, nw, lat, row.Throughput, row.AbortRate)
				}
			}
		}
	}

	csvOut := os.Stdout
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}
	if err := metrics.WriteBenchCSV(csvOut, rows); err != nil {
		fmt.Fprintf(os.Stderr, "mtbench: writing CSV: %v\n", err)
		os.Exit(1)
	}

	if *jsonPath != "" {
		pairs := [][2]string{{*baseline, *subject}}
		if *speedupPairs != "" {
			pairs = nil
			for _, p := range splitList(*speedupPairs) {
				b, s, ok := strings.Cut(p, ":")
				if !ok || b == "" || s == "" {
					fmt.Fprintf(os.Stderr, "mtbench: bad speedup pair %q (want baseline:subject)\n", p)
					os.Exit(2)
				}
				pairs = append(pairs, [2]string{b, s})
			}
		}
		var speedups []metrics.BenchSpeedup
		for _, p := range pairs {
			speedups = append(speedups, metrics.ComputeSpeedups(rows, p[0], p[1])...)
		}
		summary := metrics.BenchSummary{
			Name:       "mtbench sweep",
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Notes:      *notes,
			Rows:       rows,
			Speedups:   speedups,
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := metrics.WriteBenchJSON(f, summary); err != nil {
			fmt.Fprintf(os.Stderr, "mtbench: writing JSON: %v\n", err)
			os.Exit(1)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
