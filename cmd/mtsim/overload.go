package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/txn"
)

// overloadOptions carries the -overload mode's knobs from main.
type overloadOptions struct {
	factors   []float64
	deadline  time.Duration
	shedPause time.Duration
	repeats   int
	workers   int
	csvPath   string
	jsonPath  string
}

// parseFactors parses the -overload argument: a comma-separated list of
// offered-load multipliers ("1,4,10").
func parseFactors(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad load factor %q (want positive numbers, e.g. 1,4,10)", part)
		}
		out = append(out, f)
	}
	return out, nil
}

// runOverloadSweep runs the E27 goodput-vs-offered-load A/B for every
// selected scheduler: each curve is swept twice on identical specs and
// seeds — admission control on, then off — so the two curves differ
// only in the overload controller. Rows and per-curve retention land in
// the optional CSV/JSON artifacts.
func runOverloadSweep(names []string, factories map[string]func(*storage.Store) sched.Scheduler,
	specs []txn.Spec, opts overloadOptions) int {
	fmt.Printf("overload sweep: factors=%v deadline=%v repeats=%d workers=%d offered(1x)=%d\n",
		opts.factors, opts.deadline, opts.repeats, opts.workers, len(specs))
	var rows []metrics.OverloadRow
	for _, name := range names {
		for _, withAdmit := range []bool{true, false} {
			base := sim.Config{
				NewScheduler: factories[name],
				Specs:        specs,
				Workers:      opts.workers,
				Backoff:      30 * time.Microsecond,
				RuntimeSeed:  7,
				Deadline:     opts.deadline,
				ShedPause:    opts.shedPause,
			}
			if withAdmit {
				// ElderAfter sits above the restart budget the deadline
				// allows: deadline-bounded transactions cannot starve, so
				// the elder machinery stays out of the goodput path (see
				// internal/sim/overload_test.go for the full rationale).
				base.Admit = &admit.Options{Aging: admit.AgingOptions{ElderAfter: 64}}
			}
			res := sim.RunOverload(sim.OverloadConfig{
				Base: base, Factors: opts.factors, Repeats: opts.repeats,
			})
			label := "no-adm"
			if withAdmit {
				label = "admit "
			}
			for _, p := range res.Points {
				fmt.Printf("%-10s %s: %s\n", name, label, p)
				r := p.Report
				rows = append(rows, metrics.OverloadRow{
					Sched: name, Admit: withAdmit,
					Factor: p.Factor, Offered: p.Offered, Workers: p.Workers,
					Committed: r.Committed, Shed: r.Shed,
					DeadlineMiss: r.DeadlineMiss, GaveUp: r.GaveUp,
					AbortRate: r.AbortRate(), Goodput: p.Goodput(),
					WallMS: float64(r.Wall.Microseconds()) / 1000,
				})
			}
			fmt.Printf("%-10s %s: knee at x%g, retention %.2f\n",
				name, label, res.KneePoint().Factor, res.Retention())
		}
	}
	if err := writeOverloadArtifacts(rows, opts); err != nil {
		fmt.Fprintf(os.Stderr, "mtsim: %v\n", err)
		return 1
	}
	return 0
}

func writeOverloadArtifacts(rows []metrics.OverloadRow, opts overloadOptions) error {
	if opts.csvPath != "" {
		f, err := os.Create(opts.csvPath)
		if err != nil {
			return err
		}
		if err := metrics.WriteOverloadCSV(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", opts.csvPath, len(rows))
	}
	if opts.jsonPath != "" {
		sum := metrics.OverloadSummary{
			Name:       "overload sweep",
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Notes: fmt.Sprintf("factors=%v deadline=%v shedpause=%v repeats=%d; goodput = commits inside deadline / wall",
				opts.factors, opts.deadline, opts.shedPause, opts.repeats),
			Rows:      rows,
			Retention: metrics.ComputeRetention(rows),
		}
		f, err := os.Create(opts.jsonPath)
		if err != nil {
			return err
		}
		if err := metrics.WriteOverloadJSON(f, sum); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", opts.jsonPath)
	}
	return nil
}
