// Command mtsim runs runtime throughput/abort experiments: a generated
// workload executes on goroutine workers under a chosen concurrency
// controller, and the tool prints commits, restarts, abort rate,
// throughput and latency percentiles.
//
// Usage:
//
//	mtsim -sched mt -k 3 -txns 2000 -ops 4 -items 64 -readfrac 0.7 -workers 8
//	mtsim -sched all -hotitems 4 -hotfrac 0.8
//
// Schedulers: mt, mtdefer, composite, 2pl, to, occ, sgt, interval, mvmt,
// or "all" to sweep every one over the same workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/lock"
	"repro/internal/mvmt"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/sgt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tsto"
	"repro/internal/workload"
)

func main() {
	schedName := flag.String("sched", "all", "scheduler: mt|mtmono|mtdefer|composite|adaptive|2pl|to|occ|sgt|interval|mvmt|all")
	k := flag.Int("k", 0, "vector size for the MT family (0 = 2q-1 per Theorem 3)")
	txns := flag.Int("txns", 2000, "number of transactions")
	ops := flag.Int("ops", 4, "operations per transaction")
	items := flag.Int("items", 64, "database size")
	readFrac := flag.Float64("readfrac", 0.7, "fraction of reads")
	hotItems := flag.Int("hotitems", 0, "hotspot size (0 = uniform)")
	hotFrac := flag.Float64("hotfrac", 0.8, "fraction of accesses to the hotspot")
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	maxAttempts := flag.Int("maxattempts", 1000, "per-transaction retry budget")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if *k <= 0 {
		*k = 2*(*ops) - 1
	}
	specs := workload.Config{
		Txns: *txns, OpsPerTxn: *ops, Items: *items,
		ReadFraction: *readFrac, HotItems: *hotItems, HotFraction: *hotFrac,
		Seed: *seed,
	}.Generate()

	factories := map[string]func(*storage.Store) sched.Scheduler{
		"mt": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: core.Options{K: *k, StarvationAvoidance: true}})
		},
		"mtmono": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: core.Options{
				K: *k, StarvationAvoidance: true, MonotonicEncoding: true}})
		},
		"mtdefer": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{
				Core: core.Options{K: *k, StarvationAvoidance: true}, DeferWrites: true})
		},
		"composite": func(st *storage.Store) sched.Scheduler {
			return sched.NewComposite(st, *k, core.Options{StarvationAvoidance: true})
		},
		"2pl": func(st *storage.Store) sched.Scheduler { return lock.NewTwoPL(st) },
		"to": func(st *storage.Store) sched.Scheduler {
			return tsto.New(st, tsto.Options{ThomasWriteRule: true})
		},
		"occ":      func(st *storage.Store) sched.Scheduler { return occ.New(st) },
		"sgt":      func(st *storage.Store) sched.Scheduler { return sgt.New(st) },
		"interval": func(st *storage.Store) sched.Scheduler { return interval.New(st, interval.Options{}) },
		"mvmt":     func(st *storage.Store) sched.Scheduler { return mvmt.New(st, mvmt.Options{K: *k}) },
		"adaptive": func(st *storage.Store) sched.Scheduler {
			return adaptive.New(st, adaptive.Options{
				InitialK: 1, MaxK: *k,
				Core: core.Options{StarvationAvoidance: true},
			})
		},
	}
	order := []string{"mt", "mtmono", "mtdefer", "composite", "adaptive", "2pl", "to", "occ", "sgt", "interval", "mvmt"}

	var names []string
	if *schedName == "all" {
		names = order
	} else if _, ok := factories[*schedName]; ok {
		names = []string{*schedName}
	} else {
		fmt.Fprintf(os.Stderr, "mtsim: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}

	fmt.Printf("workload: txns=%d ops=%d items=%d readfrac=%.2f hot=%d/%.2f workers=%d k=%d\n",
		*txns, *ops, *items, *readFrac, *hotItems, *hotFrac, *workers, *k)
	for _, name := range names {
		rep := sim.Run(sim.Config{
			NewScheduler: factories[name],
			Specs:        specs,
			Workers:      *workers,
			MaxAttempts:  *maxAttempts,
			Backoff:      20 * time.Microsecond,
		})
		fmt.Println(rep)
	}
}
