// Command mtsim runs runtime throughput/abort experiments: a generated
// workload executes on goroutine workers under a chosen concurrency
// controller, and the tool prints commits, restarts, abort rate,
// throughput and latency percentiles.
//
// Usage:
//
//	mtsim -sched mt -k 3 -txns 2000 -ops 4 -items 64 -readfrac 0.7 -workers 8
//	mtsim -sched all -hotitems 4 -hotfrac 0.8
//	mtsim -chaos crash-drift -sites 4 -txns 2000
//	mtsim -sched mtdefer -wal /tmp/mtwal -walsync group -checkpoint-every 512
//	mtsim -sched mtdefer -crashpoint -1 -txns 200
//	mtsim -sched mt,composite -overload 1,4,10 -deadline 25ms -repeats 3
//
// Schedulers: mt, mtdefer, composite, dmt, 2pl, to, occ, sgt, interval,
// mvmt, a comma-separated subset, or "all" to sweep every one over the
// same workload.
//
// With -overload <factors>, the tool runs the goodput-vs-offered-load
// sweep instead (EXPERIMENTS.md E27): for each selected scheduler the
// workload is replicated to factor× its size with proportionally more
// client workers, twice per factor — admission control on, then off —
// and the tool prints each curve's saturation knee and how much of the
// knee's goodput survives at the highest factor. Every transaction
// carries the -deadline budget (default 25ms in this mode); goodput
// counts only commits inside it. -csv/-json write the curve artifacts.
//
// With -admit (outside -overload), a plain run gets the overload
// controller in front of the runtime: an adaptive AIMD concurrency
// limiter sheds excess load, restart-storm damping widens backoffs, and
// priority aging protects starving transactions.
//
// With -wal <dir>, commits are durable: every commit appends a redo
// record to a write-ahead log in <dir> (group-committed per -walsync:
// always, group or none) and acks only after fsync; a later run over
// the same directory recovers the store and counter watermarks before
// traffic. -sched all logs each scheduler under its own subdirectory.
//
// With -crashpoint N, the tool runs the in-process crash-point harness
// instead: the WAL lives on an in-memory disk that dies at the N-th
// I/O operation, the "machine" restarts, and recovery is verified
// against a shadow copy (exact state match, no acked-durable commit
// lost, counter watermarks dominate, and — for the MT family — no
// k-th-column counter value re-issued). N = -1 sweeps every I/O
// operation of a clean run.
//
// With -chaos <plan>, the workload runs on DMT(k) under a named,
// seed-deterministic fault plan (message loss, delays, site crash and
// recovery) and the tool reports commit rate, unavailability aborts,
// gave-up transactions, injector counters and per-site recovery latency.
// Chaos runs are reproducible: the fault schedule is a pure function of
// (-faultseed, plan, -sites) and retry jitter of (-seed), so re-running
// with identical flags replays the identical schedule — the tool prints
// the decision list and a repro header (effective seeds plus the planned
// fault schedule) so two runs can be diffed.
//
// With -partition <plan>, the tool runs the plan twice on the same
// seeds — fail-fast vs degraded-mode parked commits — and compares
// commit availability during the degraded windows. Plans with
// partitions: partition, partition-asym, partition-crash. Add -sitewal
// to give every DMT site a durable counter-lease sidecar so a
// recovering site reseeds its own counters without help from survivors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/adaptive"
	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/interval"
	"repro/internal/lock"
	"repro/internal/mvmt"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/sgt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tsto"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	schedName := flag.String("sched", "all", "scheduler: mt|mtmono|mtdefer|composite|adaptive|dmt|2pl|to|occ|sgt|interval|mvmt|all")
	k := flag.Int("k", 0, "vector size for the MT family (0 = 2q-1 per Theorem 3)")
	txns := flag.Int("txns", 2000, "number of transactions")
	ops := flag.Int("ops", 4, "operations per transaction")
	items := flag.Int("items", 64, "database size")
	readFrac := flag.Float64("readfrac", 0.7, "fraction of reads")
	hotItems := flag.Int("hotitems", 0, "hotspot size (0 = uniform)")
	hotFrac := flag.Float64("hotfrac", 0.8, "fraction of accesses to the hotspot")
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	maxAttempts := flag.Int("maxattempts", 1000, "per-transaction retry budget")
	seed := flag.Int64("seed", 1, "workload seed")
	sites := flag.Int("sites", 4, "DMT(k) site count (dmt scheduler and -chaos)")
	chaos := flag.String("chaos", "", "fault plan for a DMT(k) chaos run: "+strings.Join(fault.PlanNames(), "|"))
	partition := flag.String("partition", "", "partition-tolerance A/B: run the named fault plan twice on the same seeds, fail-fast vs degraded parked commits, and compare commit availability")
	siteWAL := flag.Bool("sitewal", false, "give every DMT site a durable counter-lease sidecar (-chaos/-partition)")
	faultSeed := flag.Int64("faultseed", 1, "fault-injection seed (-chaos)")
	unavailBudget := flag.Int("unavailbudget", 64, "per-transaction unavailability retry budget (-chaos)")
	walDir := flag.String("wal", "", "write-ahead log directory: enables durable commits")
	walSync := flag.String("walsync", "group", "WAL sync policy: always|group|none")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint the WAL after N log records (0 = never)")
	crashPoint := flag.Int64("crashpoint", 0, "crash-point harness: kill the in-memory disk at the Nth I/O op, recover, verify (-1 = sweep all ops, 0 = off)")
	overload := flag.String("overload", "", "goodput-vs-offered-load sweep: comma-separated load factors (e.g. 1,4,10), admission on vs off per scheduler")
	deadline := flag.Duration("deadline", 0, "per-transaction deadline, admission wait and retries included (0 = none; -overload defaults to 25ms)")
	shedPause := flag.Duration("shedpause", 200*time.Microsecond, "rejected client's retry-after pause before offering its next transaction")
	repeats := flag.Int("repeats", 1, "runs per overload point, keeping the median-goodput run (-overload)")
	admitOn := flag.Bool("admit", false, "put the overload controller (adaptive admission, storm damping, aging) in front of the runtime")
	csvPath := flag.String("csv", "", "write overload sweep rows to this CSV file (-overload)")
	jsonPath := flag.String("json", "", "write the overload sweep summary to this JSON file (-overload)")
	flag.Parse()

	if *k <= 0 {
		*k = 2*(*ops) - 1
	}
	specs := workload.Config{
		Txns: *txns, OpsPerTxn: *ops, Items: *items,
		ReadFraction: *readFrac, HotItems: *hotItems, HotFraction: *hotFrac,
		Seed: *seed,
	}.Generate()

	if *partition != "" {
		os.Exit(runPartition(specs, *partition, *k, *sites, *workers, *maxAttempts,
			*unavailBudget, *seed, *faultSeed, *siteWAL))
	}
	if *chaos != "" {
		runChaos(specs, *chaos, *k, *sites, *workers, *maxAttempts, *unavailBudget, *seed, *faultSeed, *siteWAL)
		return
	}

	factories := map[string]func(*storage.Store) sched.Scheduler{
		"mt": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: *k, StarvationAvoidance: true}})
		},
		"mtmono": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{
				K: *k, StarvationAvoidance: true, MonotonicEncoding: true}})
		},
		"mtdefer": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{
				Core: engine.Options{K: *k, StarvationAvoidance: true}, DeferWrites: true})
		},
		"composite": func(st *storage.Store) sched.Scheduler {
			return sched.NewComposite(st, *k, engine.Options{StarvationAvoidance: true})
		},
		"2pl": func(st *storage.Store) sched.Scheduler { return lock.NewTwoPL(st) },
		"to": func(st *storage.Store) sched.Scheduler {
			return tsto.New(st, tsto.Options{ThomasWriteRule: true})
		},
		"occ":      func(st *storage.Store) sched.Scheduler { return occ.New(st) },
		"sgt":      func(st *storage.Store) sched.Scheduler { return sgt.New(st) },
		"interval": func(st *storage.Store) sched.Scheduler { return interval.New(st, interval.Options{}) },
		"mvmt":     func(st *storage.Store) sched.Scheduler { return mvmt.New(st, mvmt.Options{K: *k}) },
		"adaptive": func(st *storage.Store) sched.Scheduler {
			return adaptive.New(st, adaptive.Options{
				InitialK: 1, MaxK: *k,
				Core: engine.Options{StarvationAvoidance: true},
			})
		},
		"dmt": func(st *storage.Store) sched.Scheduler {
			return sched.NewDMT(st, dmt.Options{K: *k, Sites: *sites})
		},
	}
	order := []string{"mt", "mtmono", "mtdefer", "composite", "adaptive", "dmt", "2pl", "to", "occ", "sgt", "interval", "mvmt"}

	var names []string
	if *schedName == "all" {
		names = order
	} else {
		for _, n := range strings.Split(*schedName, ",") {
			n = strings.TrimSpace(n)
			if _, ok := factories[n]; !ok {
				fmt.Fprintf(os.Stderr, "mtsim: unknown scheduler %q\n", n)
				os.Exit(2)
			}
			names = append(names, n)
		}
	}

	if *overload != "" {
		factors, err := parseFactors(*overload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtsim: %v\n", err)
			os.Exit(2)
		}
		if *deadline == 0 {
			// The sweep's goodput definition needs a deadline: without one a
			// closed loop never sheds and "goodput" is just throughput.
			*deadline = 25 * time.Millisecond
		}
		os.Exit(runOverloadSweep(names, factories, specs, overloadOptions{
			factors: factors, deadline: *deadline, shedPause: *shedPause,
			repeats: *repeats, workers: *workers,
			csvPath: *csvPath, jsonPath: *jsonPath,
		}))
	}

	pol, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtsim: %v\n", err)
		os.Exit(2)
	}

	if *crashPoint != 0 {
		name := names[0]
		if *schedName == "all" {
			name = "mtdefer"
		}
		runCrashHarness(name, factories[name], specs, *k, *workers, *maxAttempts,
			*seed, *crashPoint, pol, *ckptEvery)
		return
	}

	fmt.Printf("workload: txns=%d ops=%d items=%d readfrac=%.2f hot=%d/%.2f workers=%d k=%d\n",
		*txns, *ops, *items, *readFrac, *hotItems, *hotFrac, *workers, *k)
	for _, name := range names {
		cfg := sim.Config{
			NewScheduler: factories[name],
			Specs:        specs,
			Workers:      *workers,
			MaxAttempts:  *maxAttempts,
			Backoff:      20 * time.Microsecond,
			Deadline:     *deadline,
			ShedPause:    *shedPause,
		}
		if *admitOn {
			cfg.Admit = &admit.Options{}
		}
		if *walDir != "" {
			cfg.WAL = &wal.Options{
				Dir:             filepath.Join(*walDir, name),
				Sync:            pol,
				CheckpointEvery: *ckptEvery,
			}
		}
		rep := sim.Run(cfg)
		fmt.Println(rep)
	}
}

// runCrashHarness drives the in-process crash-point harness: a single
// point when point > 0, the full matrix (every I/O op of a clean run)
// when point < 0. MT-family schedulers additionally get the restart
// phase that traces counter-column assignments for the re-issue check.
func runCrashHarness(name string, factory func(*storage.Store) sched.Scheduler,
	specs []txn.Spec, k, workers, maxAttempts int, seed, point int64,
	pol wal.SyncPolicy, ckptEvery int) {
	cfg := sim.CrashPointConfig{
		Config: sim.Config{
			NewScheduler: factory,
			Specs:        specs,
			Workers:      workers,
			MaxAttempts:  maxAttempts,
			Backoff:      20 * time.Microsecond,
		},
		Seed:            seed,
		Sync:            pol,
		BatchDelay:      200 * time.Microsecond,
		CheckpointEvery: ckptEvery,
	}
	if name == "mt" || name == "mtmono" || name == "mtdefer" {
		n := 8
		if len(specs) < n {
			n = len(specs)
		}
		rs := make([]txn.Spec, n)
		for i := range rs {
			rs[i] = specs[i]
			rs[i].ID = 1_000_000 + i
		}
		cfg.RestartSpecs = rs
		deferW, mono := name == "mtdefer", name == "mtmono"
		cfg.NewTracedScheduler = func(st *storage.Store, trace func(core.Event)) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{
				Core: engine.Options{K: k, StarvationAvoidance: true,
					MonotonicEncoding: mono, Trace: trace},
				DeferWrites: deferW,
			})
		}
	}
	if point > 0 {
		cfg.CrashAt = point
		rep := sim.RunCrashPoint(cfg)
		fmt.Printf("%s crashpoint %d: %s\n", name, point, rep)
		if rep.Err() != nil {
			os.Exit(1)
		}
		return
	}
	clean := sim.RunCrashPoint(cfg)
	fmt.Printf("%s clean: %s\n", name, clean)
	if clean.Err() != nil {
		os.Exit(1)
	}
	fails := 0
	for at := int64(1); at <= clean.CleanOps; at++ {
		c := cfg
		c.CrashAt, c.Seed = at, seed+at
		if rep := sim.RunCrashPoint(c); rep.Err() != nil {
			fails++
			fmt.Printf("%s crashpoint %d: %s\n", name, at, rep)
		}
	}
	fmt.Printf("crash matrix: %d points, %d failures\n", clean.CleanOps, fails)
	if fails > 0 {
		os.Exit(1)
	}
}

// reproLines renders the replay header every chaos/partition report
// carries: the effective seeds plus the planned fault schedule, so a
// failing run is reproducible from its log alone.
func reproLines(flagName, planName string, plan fault.Plan, inj *fault.Injector, k, sites, txns int, seed, faultSeed int64) []string {
	lines := []string{
		fmt.Sprintf("repro: mtsim -%s %s -sites %d -k %d -txns %d -seed %d -faultseed %d",
			flagName, planName, sites, k, txns, seed, faultSeed),
	}
	var lastAt int64
	for _, ev := range plan.Events {
		if ev.At > lastAt {
			lastAt = ev.At
		}
	}
	for _, l := range inj.PlannedSchedule(lastAt) {
		lines = append(lines, "  planned: "+l)
	}
	return lines
}

// durableOpts builds the per-site sidecar options for -sitewal runs:
// an in-memory disk per invocation (the sites' crashes are logical, the
// process survives, so MemFS models per-site stable storage exactly).
func durableOpts(siteWAL bool, dir string, faultSeed int64) *dmt.DurableOptions {
	if !siteWAL {
		return nil
	}
	return &dmt.DurableOptions{FS: wal.NewMemFS(faultSeed, 0), Dir: dir}
}

// runChaos executes the workload on DMT(k) under a named fault plan and
// reports the degraded-mode picture: commit rate, unavailability aborts,
// gave-up transactions, injector counters and recovery latency.
func runChaos(specs []txn.Spec, planName string, k, sites, workers, maxAttempts, unavailBudget int, seed, faultSeed int64, siteWAL bool) {
	plan, err := fault.PlanByName(planName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtsim: %v\n", err)
		os.Exit(2)
	}
	if err := plan.Validate(sites); err != nil {
		fmt.Fprintf(os.Stderr, "mtsim: %v\n", err)
		os.Exit(2)
	}
	inj := fault.New(plan, sites, faultSeed)
	var d *sched.DMT
	fmt.Printf("chaos: %s sites=%d seed=%d faultseed=%d\n", plan, sites, seed, faultSeed)
	rep := sim.Run(sim.Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			d = sched.NewDMT(st, dmt.Options{K: k, Sites: sites, Transport: inj,
				Durable: durableOpts(siteWAL, "sitewal", faultSeed)})
			return d
		},
		Specs:              specs,
		Workers:            workers,
		MaxAttempts:        maxAttempts,
		Backoff:            20 * time.Microsecond,
		RuntimeSeed:        seed,
		UnavailableBudget:  unavailBudget,
		UnavailableBackoff: 200 * time.Microsecond,
		FaultStats:         inj.Stats(),
		Repro:              reproLines("chaos", planName, plan, inj, k, sites, len(specs), seed, faultSeed),
	})
	defer d.Cluster().Close()
	fmt.Println(rep)
	for _, line := range rep.Repro {
		fmt.Println(line)
	}
	fmt.Printf("commit-rate=%.3f unavailability-aborts=%d timeouts=%d gaveup=%d\n",
		float64(rep.Committed)/float64(rep.Txns), rep.Unavailable, rep.Timeouts, rep.GaveUp)
	fmt.Printf("cluster: messages=%d lock-retries=%d unavailable-steps=%d\n",
		d.Cluster().Messages(), d.Cluster().LockRetries(), d.Cluster().UnavailableCount())
	lats := d.Cluster().RecoveryLatencies()
	if len(lats) > 0 {
		var sitesWithLat []int
		for s := range lats {
			sitesWithLat = append(sitesWithLat, s)
		}
		sort.Ints(sitesWithLat)
		for _, s := range sitesWithLat {
			fmt.Printf("recovery-latency site %d: %v (recovery to first home commit)\n", s, lats[s])
		}
	}
	if sched := inj.Schedule(); len(sched) > 0 {
		fmt.Printf("fault schedule (%d decisions):\n", len(sched))
		shown := sched
		if len(shown) > 12 {
			shown = shown[:12]
		}
		for _, line := range shown {
			fmt.Println("  " + line)
		}
		if len(sched) > len(shown) {
			fmt.Printf("  ... %d more\n", len(sched)-len(shown))
		}
	}
}

// runPartition is the partition-tolerance A/B: the same workload runs
// twice under the same fault plan and seeds — once fail-fast (a commit
// whose home site is down aborts immediately) and once with degraded-
// mode parked commits — and the tool compares commit availability
// during the degraded windows. Both runs replay the identical fault
// schedule (it is a pure function of the plan and -faultseed), so the
// delta isolates the commit-path policy.
func runPartition(specs []txn.Spec, planName string, k, sites, workers, maxAttempts,
	unavailBudget int, seed, faultSeed int64, siteWAL bool) int {
	plan, err := fault.PlanByName(planName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtsim: %v\n", err)
		return 2
	}
	if err := plan.Validate(sites); err != nil {
		fmt.Fprintf(os.Stderr, "mtsim: %v\n", err)
		return 2
	}
	fmt.Printf("partition A/B: %s sites=%d seed=%d faultseed=%d sitewal=%v\n",
		plan, sites, seed, faultSeed, siteWAL)

	run := func(mode string, park bool) *sim.Report {
		inj := fault.New(plan, sites, faultSeed)
		var d *sched.DMT
		rep := sim.Run(sim.Config{
			NewScheduler: func(st *storage.Store) sched.Scheduler {
				d = sched.NewDMT(st, dmt.Options{K: k, Sites: sites, Transport: inj,
					Durable: durableOpts(siteWAL, "sitewal-"+mode, faultSeed)})
				if park {
					d.SetParking(sched.Parking{
						Capacity: workers,
						Deadline: 300 * time.Millisecond,
						Seed:     seed,
					})
				}
				return d
			},
			Specs:       specs,
			Workers:     workers,
			MaxAttempts: maxAttempts,
			Backoff:     20 * time.Microsecond,
			// Per-op think time gives transactions real duration, so they
			// straddle fault boundaries the way long-lived clients do: a
			// transaction that finished its reads before the crash reaches
			// Commit while its home site is down — the exact window the
			// fail-fast vs parked-commit policies differ on.
			Think:              100 * time.Microsecond,
			RuntimeSeed:        seed,
			UnavailableBudget:  unavailBudget,
			UnavailableBackoff: 200 * time.Microsecond,
			FaultStats:         inj.Stats(),
			Repro:              reproLines("partition", planName, plan, inj, k, sites, len(specs), seed, faultSeed),
		})
		rep.Name = rep.Name + "/" + mode
		d.Cluster().Close()
		fmt.Println(rep)
		return rep
	}

	failfast := run("failfast", false)
	degraded := run("degraded", true)
	for _, line := range degraded.Repro {
		fmt.Println(line)
	}

	avail := func(r *sim.Report) float64 {
		if r.Degraded == nil {
			return 1
		}
		return r.Degraded.Availability()
	}
	af, ad := avail(failfast), avail(degraded)
	fmt.Printf("commit availability during degraded windows: fail-fast=%.3f degraded=%.3f delta=%+.3f\n",
		af, ad, ad-af)
	fmt.Printf("committed: fail-fast=%d/%d degraded=%d/%d\n",
		failfast.Committed, failfast.Txns, degraded.Committed, degraded.Txns)
	return 0
}
