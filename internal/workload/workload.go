// Package workload generates transaction mixes for the simulation
// harness: uniform or hotspot item selection, tunable read fraction and
// transaction length, deterministic under a seed. These parameterize the
// paper's Section VI-B questions (conflict rate, transaction length,
// vector size).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/txn"
)

// Config describes a workload.
type Config struct {
	// Txns is the number of transactions to generate.
	Txns int
	// OpsPerTxn is the number of operations per transaction (q).
	OpsPerTxn int
	// Items is the database size |D|.
	Items int
	// ReadFraction is the probability an operation is a read (0..1).
	ReadFraction float64
	// HotItems carves this many items into a hotspot.
	HotItems int
	// HotFraction routes this probability mass of accesses to the
	// hotspot (0 disables).
	HotFraction float64
	// ZipfS, when > 1, draws items from a Zipf distribution with
	// parameter s (most-skewed item first); overrides the hotspot knobs.
	ZipfS float64
	// TwoStep forces the paper's two-step shape: one read followed by
	// one write (OpsPerTxn is then ignored).
	TwoStep bool
	// FirstID numbers the transactions starting here (default 1).
	FirstID int
	// Seed makes generation deterministic.
	Seed int64
}

// ItemName returns the canonical name of item i.
func ItemName(i int) string { return fmt.Sprintf("i%04d", i) }

// Items returns the full item list of the config.
func (c Config) ItemNames() []string {
	out := make([]string, c.Items)
	for i := range out {
		out[i] = ItemName(i)
	}
	return out
}

// zipfFor builds the generator lazily per Generate call.
func (c Config) zipfFor(rng *rand.Rand) *rand.Zipf {
	if c.ZipfS <= 1 {
		return nil
	}
	return rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Items-1))
}

// pick selects an item index under the hotspot distribution.
func (c Config) pick(rng *rand.Rand) int {
	if c.HotItems > 0 && c.HotFraction > 0 && rng.Float64() < c.HotFraction {
		return rng.Intn(c.HotItems)
	}
	lo := 0
	if c.HotItems > 0 && c.HotFraction > 0 {
		lo = c.HotItems
	}
	if lo >= c.Items {
		lo = 0
	}
	return lo + rng.Intn(c.Items-lo)
}

// Generate produces the transaction specs.
func (c Config) Generate() []txn.Spec {
	if c.Txns <= 0 || c.Items <= 0 {
		panic("workload: Txns and Items must be positive")
	}
	first := c.FirstID
	if first == 0 {
		first = 1
	}
	rng := rand.New(rand.NewSource(c.Seed))
	zipf := c.zipfFor(rng)
	next := func() string {
		if zipf != nil {
			return ItemName(int(zipf.Uint64()))
		}
		return ItemName(c.pick(rng))
	}
	specs := make([]txn.Spec, 0, c.Txns)
	for t := 0; t < c.Txns; t++ {
		var ops []txn.Op
		if c.TwoStep {
			ops = []txn.Op{txn.R(next()), txn.W(next())}
		} else {
			n := c.OpsPerTxn
			if n <= 0 {
				n = 2
			}
			for o := 0; o < n; o++ {
				item := next()
				if rng.Float64() < c.ReadFraction {
					ops = append(ops, txn.R(item))
				} else {
					ops = append(ops, txn.W(item))
				}
			}
		}
		specs = append(specs, txn.Spec{ID: first + t, Ops: ops})
	}
	return specs
}

// Transfer builds a banking transfer transaction: read both accounts,
// write both with the amount moved from src to dst. The total balance is
// invariant under any serializable execution.
func Transfer(id int, src, dst string, amount int64) txn.Spec {
	return txn.Spec{
		ID:  id,
		Ops: []txn.Op{txn.R(src), txn.R(dst), txn.W(src), txn.W(dst)},
		Value: func(item string, reads map[string]int64) int64 {
			if item == src {
				return reads[src] - amount
			}
			return reads[dst] + amount
		},
	}
}

// Transfers generates n random transfers among the given accounts.
func Transfers(n int, accounts []string, amount int64, seed int64) []txn.Spec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]txn.Spec, 0, n)
	for i := 0; i < n; i++ {
		a := rng.Intn(len(accounts))
		b := rng.Intn(len(accounts) - 1)
		if b >= a {
			b++
		}
		specs = append(specs, Transfer(i+1, accounts[a], accounts[b], amount))
	}
	return specs
}
