package workload

import (
	"testing"

	"repro/internal/oplog"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Txns: 20, OpsPerTxn: 4, Items: 10, ReadFraction: 0.5, Seed: 7}
	a, b := cfg.Generate(), cfg.Generate()
	if len(a) != 20 || len(b) != 20 {
		t.Fatal("wrong count")
	}
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].Ops) != len(b[i].Ops) {
			t.Fatal("not deterministic")
		}
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	cfg := Config{Txns: 50, OpsPerTxn: 3, Items: 5, ReadFraction: 1.0, Seed: 1}
	for _, s := range cfg.Generate() {
		if len(s.Ops) != 3 {
			t.Fatalf("ops = %d", len(s.Ops))
		}
		for _, op := range s.Ops {
			if op.Kind != oplog.Read {
				t.Fatal("ReadFraction=1 produced a write")
			}
		}
	}
	cfg.ReadFraction = 0
	for _, s := range cfg.Generate() {
		for _, op := range s.Ops {
			if op.Kind != oplog.Write {
				t.Fatal("ReadFraction=0 produced a read")
			}
		}
	}
}

func TestTwoStepShape(t *testing.T) {
	cfg := Config{Txns: 30, Items: 4, TwoStep: true, Seed: 3}
	for _, s := range cfg.Generate() {
		if len(s.Ops) != 2 || s.Ops[0].Kind != oplog.Read || s.Ops[1].Kind != oplog.Write {
			t.Fatalf("not two-step: %+v", s.Ops)
		}
	}
}

func TestHotspotSkew(t *testing.T) {
	cfg := Config{
		Txns: 2000, OpsPerTxn: 1, Items: 100, ReadFraction: 0.5,
		HotItems: 2, HotFraction: 0.9, Seed: 11,
	}
	hot := 0
	total := 0
	hotNames := map[string]bool{ItemName(0): true, ItemName(1): true}
	for _, s := range cfg.Generate() {
		for _, op := range s.Ops {
			total++
			if hotNames[op.Item] {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ~0.9", frac)
	}
}

func TestFirstID(t *testing.T) {
	cfg := Config{Txns: 3, OpsPerTxn: 1, Items: 2, FirstID: 100, Seed: 1}
	specs := cfg.Generate()
	if specs[0].ID != 100 || specs[2].ID != 102 {
		t.Fatalf("ids = %d..%d", specs[0].ID, specs[2].ID)
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Config{}.Generate()
}

func TestTransferSpec(t *testing.T) {
	s := Transfer(1, "a", "b", 10)
	if len(s.Ops) != 4 {
		t.Fatalf("ops = %d", len(s.Ops))
	}
	reads := map[string]int64{"a": 100, "b": 50}
	if got := s.Value("a", reads); got != 90 {
		t.Fatalf("a -> %d", got)
	}
	if got := s.Value("b", reads); got != 60 {
		t.Fatalf("b -> %d", got)
	}
}

func TestTransfersDistinctAccounts(t *testing.T) {
	accounts := []string{"a", "b", "c"}
	for _, s := range Transfers(100, accounts, 5, 9) {
		src := s.Ops[0].Item
		dst := s.Ops[1].Item
		if src == dst {
			t.Fatal("self transfer generated")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	cfg := Config{Txns: 2000, OpsPerTxn: 1, Items: 50, ReadFraction: 0.5, ZipfS: 1.5, Seed: 4}
	counts := map[string]int{}
	total := 0
	for _, s := range cfg.Generate() {
		for _, op := range s.Ops {
			counts[op.Item]++
			total++
		}
	}
	// The most popular item should dominate a uniform share by far.
	if counts[ItemName(0)] < total/10 {
		t.Fatalf("item 0 got %d of %d accesses; expected heavy skew", counts[ItemName(0)], total)
	}
	// Determinism.
	again := map[string]int{}
	for _, s := range cfg.Generate() {
		for _, op := range s.Ops {
			again[op.Item]++
		}
	}
	for k, v := range counts {
		if again[k] != v {
			t.Fatal("Zipf generation not deterministic")
		}
	}
}
