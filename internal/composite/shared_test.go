package composite

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/oplog"
)

func TestSharedPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSharedScheduler(0)
}

func TestSharedAcceptsExample1(t *testing.T) {
	s := NewSharedScheduler(2)
	l := oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]")
	ok, at := s.AcceptLog(l)
	if !ok {
		t.Fatalf("rejected at %d", at)
	}
	// MT(1) must be stopped by the last op (it rejects the log), MT(2)
	// alive.
	if !reflect.DeepEqual(s.Alive(), []int{2}) {
		t.Fatalf("alive = %v, want [2]", s.Alive())
	}
	// The shared prefix reproduces the Example 1 element values: T2 and
	// T3 share prefix element 2.
	if got := s.PrefixVector(2).Elem(1); !got.Defined || got.V != 2 {
		t.Errorf("PREFIX(1) of T2 = %v, want 2", got)
	}
	if got := s.PrefixVector(3).Elem(1); !got.Defined || got.V != 2 {
		t.Errorf("PREFIX(1) of T3 = %v, want 2", got)
	}
}

func TestSharedRejectsCycle(t *testing.T) {
	s := NewSharedScheduler(3)
	ok, at := s.AcceptLog(oplog.MustParse("R1[x] R2[y] W2[x] W1[y]"))
	if ok || at != 3 {
		t.Fatalf("ok=%v at=%d", ok, at)
	}
	if len(s.Alive()) != 0 {
		t.Fatalf("alive after total reject: %v", s.Alive())
	}
}

func TestSharedLastColDistinct(t *testing.T) {
	s := NewSharedScheduler(1)
	l := oplog.MustParse("W1[x] W2[x] W3[x]")
	if ok, _ := s.AcceptLog(l); !ok {
		t.Fatal("chain rejected")
	}
	seen := map[int64]bool{}
	for _, txn := range []int{1, 2, 3} {
		e := s.LastColElem(1, txn)
		if !e.Defined {
			t.Fatalf("LASTCOL(1) of T%d undefined", txn)
		}
		if seen[e.V] {
			t.Fatalf("duplicate LASTCOL value %d", e.V)
		}
		seen[e.V] = true
	}
}

func randomSharedTwoStep(rng *rand.Rand, nTxns, nItems int) *oplog.Log {
	items := []string{"x", "y", "z"}[:nItems]
	type pend struct{ r, w oplog.Op }
	var pends []pend
	for t := 1; t <= nTxns; t++ {
		pends = append(pends, pend{
			oplog.R(t, items[rng.Intn(nItems)]),
			oplog.W(t, items[rng.Intn(nItems)]),
		})
	}
	var ops []oplog.Op
	emitted := make([]int, len(pends))
	for len(ops) < 2*len(pends) {
		i := rng.Intn(len(pends))
		if emitted[i] == 0 {
			ops = append(ops, pends[i].r)
			emitted[i] = 1
		} else if emitted[i] == 1 {
			ops = append(ops, pends[i].w)
			emitted[i] = 2
		}
	}
	return oplog.NewLog(ops...)
}

// The shared-table implementation accepts only D-serializable prefixes
// and is monotone in k (inclusivity), like the plain composite.
func TestSharedDSRAndInclusivity(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 600; trial++ {
		l := randomSharedTwoStep(rng, 3, 3)
		prev := false
		for k := 1; k <= 4; k++ {
			s := NewSharedScheduler(k)
			n := 0
			for _, op := range l.Ops {
				if s.Step(op).Verdict == core.Reject {
					break
				}
				n++
			}
			if n > 0 && !classify.DSR(l.Prefix(n)) {
				t.Fatalf("non-DSR prefix accepted: %v", l.Prefix(n))
			}
			cur := n == l.Len()
			if prev && !cur {
				t.Fatalf("inclusivity violated at k=%d for %v", k, l)
			}
			prev = cur
		}
	}
}

// The shared implementation agrees with the plain composite on the vast
// majority of logs; the plain one keeps the line-9 read-slot path the
// paper crosses out for the shared tables, so it may accept strictly
// more, never less.
func TestSharedAgreesWithPlainComposite(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	agree, total, sharedOnly := 0, 0, 0
	for trial := 0; trial < 800; trial++ {
		l := randomSharedTwoStep(rng, 3, 3)
		plain := Accepts(3, l)
		sh, _ := NewSharedScheduler(3).AcceptLog(l)
		total++
		if plain == sh {
			agree++
		} else if sh && !plain {
			sharedOnly++
		}
	}
	if agree*10 < total*9 {
		t.Fatalf("agreement too low: %d/%d", agree, total)
	}
	if sharedOnly > total/50 {
		t.Fatalf("shared accepted %d logs the plain composite rejected", sharedOnly)
	}
}

// Theorem 5 by construction: the prefix is physically shared, so the
// "shared prefix size" between any two alive subprotocols is maximal.
func TestSharedPrefixPhysical(t *testing.T) {
	s := NewSharedScheduler(4)
	l := oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]")
	if ok, _ := s.AcceptLog(l); !ok {
		t.Fatal("rejected")
	}
	// Any defined prefix element is identical for every subprotocol by
	// construction — just assert the prefix exists and is consistent.
	for _, txn := range []int{1, 2, 3} {
		v := s.PrefixVector(txn)
		if v.K() != 3 {
			t.Fatalf("prefix width = %d", v.K())
		}
	}
}

func TestSharedStepMultiItem(t *testing.T) {
	s := NewSharedScheduler(2)
	if d := s.Step(oplog.R(1, "x", "y")); d.Verdict != core.Accept {
		t.Fatalf("multi-item read rejected: %v", d.Verdict)
	}
	if d := s.Step(oplog.W(2, "x", "y")); d.Verdict != core.Accept {
		t.Fatalf("multi-item write rejected: %v", d.Verdict)
	}
}
