package composite

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oplog"
)

// SharedScheduler is the paper's optimized MT(k⁺) implementation
// (Algorithm 2 over the Fig. 10 tables): one PREFIX table whose column h
// is shared by the subprotocols MT(h+1), …, MT(k), plus one LASTCOL
// column per subprotocol holding its distinct counter values. Theorem 5
// justifies the sharing — while subprotocols are alive, their vector
// prefixes coincide — and processing a dependency touches each column at
// most once, so an operation costs O(k) instead of the O(k²) of running
// the subprotocols independently.
//
// Following the paper's simplification for Theorem 5, the shared
// implementation runs the Scheduler procedure with lines 9-10 (the
// read-slot-in path) crossed out; the plain Scheduler in this package
// keeps them, so it can accept slightly more logs.
type SharedScheduler struct {
	k int
	// prefix[i] is transaction i's shared prefix (columns 1..k-1).
	prefix map[int]*core.Vector
	// lastcol[h-1][i] is transaction i's LASTCOL element under MT(h).
	lastcol []map[int]core.Elem
	// counters[h-1] allocates the distinct LASTCOL values of MT(h); the
	// values come from the engine's allocator, not a private copy.
	counters []*engine.LocalCounters
	stopped  []bool
	rt, wt   map[string]int
}

// NewSharedScheduler returns the shared-table MT(k⁺) scheduler.
func NewSharedScheduler(k int) *SharedScheduler {
	if k < 1 {
		panic("composite: k must be >= 1")
	}
	s := &SharedScheduler{
		k:        k,
		prefix:   make(map[int]*core.Vector),
		lastcol:  make([]map[int]core.Elem, k),
		counters: make([]*engine.LocalCounters, k),
		stopped:  make([]bool, k),
		rt:       make(map[string]int),
		wt:       make(map[string]int),
	}
	for h := 0; h < k; h++ {
		s.lastcol[h] = make(map[int]core.Elem)
		s.counters[h] = engine.NewLocalCounters()
	}
	// The virtual transaction T_0: prefix <0,*,...>, LASTCOL undefined
	// under every subprotocol except MT(1), whose "prefix" is empty.
	if k > 1 {
		p := core.NewVector(k - 1)
		p.SetElem(1, 0)
		s.prefix[0] = p
	}
	s.lastcol[0][0] = core.Int(0) // MT(1)'s only column holds TS(0)=<0>
	return s
}

// K returns the largest subprotocol dimension.
func (s *SharedScheduler) K() int { return s.k }

// Alive returns the dimensions of the running subprotocols.
func (s *SharedScheduler) Alive() []int {
	var out []int
	for h := 1; h <= s.k; h++ {
		if !s.stopped[h-1] {
			out = append(out, h)
		}
	}
	return out
}

// prefixOf returns (creating on demand) transaction i's shared prefix.
// For k = 1 there is no prefix; callers must guard.
func (s *SharedScheduler) prefixOf(i int) *core.Vector {
	if v, ok := s.prefix[i]; ok {
		return v
	}
	v := core.NewVector(s.k - 1)
	s.prefix[i] = v
	return v
}

// prefixElem returns PREFIX(h) of transaction i (column h, 1 <= h < k).
func (s *SharedScheduler) prefixElem(i, h int) core.Elem {
	if s.k == 1 {
		return core.Undef
	}
	return s.prefixOf(i).Elem(h)
}

// setPrefix assigns PREFIX(h) of transaction i.
func (s *SharedScheduler) setPrefix(i, h int, v int64) {
	s.prefixOf(i).SetElem(h, v)
}

// stopFrom stops the subprotocols MT(from), ..., MT(k).
func (s *SharedScheduler) stopFrom(from int) {
	for h := from; h <= s.k; h++ {
		s.stopped[h-1] = true
	}
}

// allStoppedFrom reports whether MT(from..k) are all stopped.
func (s *SharedScheduler) allStoppedFrom(from int) bool {
	for h := from; h <= s.k; h++ {
		if !s.stopped[h-1] {
			return false
		}
	}
	return true
}

// anyAlive reports whether some subprotocol still runs.
func (s *SharedScheduler) anyAlive() bool { return !s.allStoppedFrom(1) }

// encodeDep runs Algorithm 2 steps 1-3 for the dependency T_j -> T_i.
// It reports whether at least one subprotocol could encode (or had
// already encoded) the dependency; subprotocols whose tables contradict
// it are stopped.
func (s *SharedScheduler) encodeDep(j, i int) bool {
	if j == i {
		return s.anyAlive()
	}
	for h := 1; h <= s.k; h++ {
		// Step 2: the LASTCOL(h) column decides subprotocol MT(h). The
		// engine's counter-column arm allocates any missing elements;
		// Greater means the column contradicts MT(h)'s encoded order.
		if !s.stopped[h-1] {
			ej, ei := s.lastcol[h-1][j], s.lastcol[h-1][i]
			nj, ni, rel := engine.EncodeCounterColumn(ej, ei, s.counters[h-1])
			if rel == core.Greater {
				s.stopped[h-1] = true
			} else {
				if !ej.Defined {
					s.lastcol[h-1][j] = nj
				}
				if !ei.Defined {
					s.lastcol[h-1][i] = ni
				}
			}
		}
		// Step 3: the PREFIX(h) column serves MT(h+1), ..., MT(k).
		// Relative values suffice (upper = floor+1); Equal walks on to
		// the next column, Greater stops every deeper subprotocol.
		if h == s.k || s.allStoppedFrom(h+1) {
			break
		}
		pj, pi := s.prefixElem(j, h), s.prefixElem(i, h)
		nj, ni, rel := engine.EncodeRelativeColumn(pj, pi, func(floor int64) int64 { return floor + 1 })
		if rel == core.Equal {
			continue
		}
		if rel == core.Greater {
			// Conflicts with the shared prefix: MT(h+1..k) all lose.
			s.stopFrom(h + 1)
		} else {
			if !pj.Defined {
				s.setPrefix(j, h, nj.V)
			}
			if !pi.Defined {
				s.setPrefix(i, h, ni.V)
			}
		}
		break
	}
	return s.anyAlive()
}

// Step schedules one operation through the shared tables. Unlike the
// single-protocol Scheduler, which orders only against the LARGER of
// RT(x)/WT(x) and gets the other by transitivity within its one view,
// the shared composite must encode against BOTH holders: the alive
// subprotocols' views may disagree about which holder is larger, so a
// single pick is unsound across views.
func (s *SharedScheduler) Step(op oplog.Op) Decision {
	d := Decision{Op: op, Verdict: core.Accept}
	for _, x := range op.Items {
		first, second := s.holderMaxFirst(x)
		okA := s.encodeDep(first, op.Txn)
		okB := s.encodeDep(second, op.Txn)
		if !okA || !okB {
			d.Verdict = core.Reject
			return d
		}
		if op.Kind == oplog.Read {
			s.rt[x] = op.Txn
		} else {
			s.wt[x] = op.Txn
		}
	}
	d.AcceptedBy = s.Alive()
	return d
}

// holderMaxFirst orders RT(x)/WT(x) larger-first so the stronger
// constraint is encoded before the weaker one (which then usually lands
// in the "already encoded" case, matching standalone MT(k) behaviour).
// The choice only affects which columns get burned, never soundness —
// both dependencies are always encoded.
func (s *SharedScheduler) holderMaxFirst(x string) (first, second int) {
	rt, wt := s.rt[x], s.wt[x]
	if rt == wt {
		return rt, rt
	}
	// Decide by the shared prefix where possible.
	for h := 1; h < s.k; h++ {
		pr, pw := s.prefixElem(rt, h), s.prefixElem(wt, h)
		if pr.Defined && pw.Defined {
			if pr.V > pw.V {
				return rt, wt
			}
			if pr.V < pw.V {
				return wt, rt
			}
			continue
		}
		break
	}
	// Fall back to the first alive subprotocol whose LASTCOL decides.
	for h := 1; h <= s.k; h++ {
		if s.stopped[h-1] {
			continue
		}
		er, okr := s.lastcol[h-1][rt]
		ew, okw := s.lastcol[h-1][wt]
		if okr && er.Defined && okw && ew.Defined {
			if er.V > ew.V {
				return rt, wt
			}
			return wt, rt
		}
	}
	// Undecided: put the writer first (the conflict constraint).
	return wt, rt
}

// AcceptLog runs a complete log, returning (true, -1) on full acceptance
// or (false, idx) at the first rejected operation.
func (s *SharedScheduler) AcceptLog(l *oplog.Log) (bool, int) {
	for idx, op := range l.Ops {
		if d := s.Step(op); d.Verdict == core.Reject {
			return false, idx
		}
	}
	return true, -1
}

// PrefixVector returns a copy of transaction i's shared prefix (tests).
func (s *SharedScheduler) PrefixVector(i int) *core.Vector {
	if s.k == 1 {
		panic("composite: MT(1+) has no shared prefix")
	}
	return s.prefixOf(i).Clone()
}

// LastColElem returns transaction i's LASTCOL element under MT(h).
func (s *SharedScheduler) LastColElem(h, i int) core.Elem {
	if h < 1 || h > s.k {
		panic(fmt.Sprintf("composite: no subprotocol MT(%d)", h))
	}
	return s.lastcol[h-1][i]
}
