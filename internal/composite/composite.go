// Package composite implements the composite protocol MT(k⁺) of Section
// IV (Algorithm 2), which recognizes TO(k⁺) = TO(1) ∪ TO(2) ∪ … ∪ TO(k).
// Unlike the individual classes TO(h), the composite classes are totally
// ordered by inclusion: TO(1⁺) ⊂ TO(2⁺) ⊂ … ⊂ TO(k⁺), so MT(k⁺) is
// guaranteed to allow higher concurrency as the vector size grows.
//
// The scheduler runs the subprotocols MT(1), …, MT(k) side by side. An
// operation is accepted as long as at least one still-running subprotocol
// accepts it; a subprotocol that rejects an operation is stopped for the
// rest of the log (its class can no longer contain the log). When every
// subprotocol has stopped the operation is rejected — Algorithm 2 then
// aborts the active transactions and rolls back.
//
// Theorem 5 shows the corresponding vector prefixes of any two
// subprotocols agree whenever both are alive, which is what allows the
// PREFIX/LASTCOL shared-table layout of Fig. 9-10; SharedPrefixSize
// reports the sharing this scheduler actually exhibits.
package composite

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oplog"
)

// Options configures MT(k⁺).
type Options struct {
	// K is the largest subprotocol dimension; subprotocols MT(1)..MT(K)
	// run side by side.
	K int
	// Sub carries per-subprotocol options applied to every MT(h)
	// (ThomasWriteRule, StarvationAvoidance, ...). Sub.K is ignored.
	Sub engine.Options
}

// Scheduler is the MT(k⁺) composite concurrency controller.
type Scheduler struct {
	subs  []*engine.Scheduler // subs[h-1] runs MT(h)
	alive []bool
}

// Decision is the composite scheduling outcome for one operation.
type Decision struct {
	Op oplog.Op
	// Verdict is Accept if at least one alive subprotocol accepted,
	// Reject when all subprotocols are stopped.
	Verdict core.Verdict
	// AcceptedBy lists the dimensions whose subprotocol accepted the
	// operation; StoppedNow lists the dimensions stopped by this
	// operation.
	AcceptedBy []int
	StoppedNow []int
}

// NewScheduler returns an MT(k⁺) scheduler with all k subprotocols
// started (Algorithm 2 step 0).
func NewScheduler(opts Options) *Scheduler {
	if opts.K < 1 {
		panic("composite: Options.K must be >= 1")
	}
	s := &Scheduler{alive: make([]bool, opts.K)}
	for h := 1; h <= opts.K; h++ {
		sub := opts.Sub
		sub.K = h
		s.subs = append(s.subs, engine.NewScheduler(sub))
		s.alive[h-1] = true
	}
	return s
}

// K returns the largest subprotocol dimension.
func (s *Scheduler) K() int { return len(s.subs) }

// Alive returns the dimensions of the still-running subprotocols.
func (s *Scheduler) Alive() []int {
	var out []int
	for h := 1; h <= len(s.subs); h++ {
		if s.alive[h-1] {
			out = append(out, h)
		}
	}
	return out
}

// Sub returns the MT(h) subprotocol scheduler (1-based), alive or not.
func (s *Scheduler) Sub(h int) *engine.Scheduler { return s.subs[h-1] }

// Step schedules one operation through every alive subprotocol.
func (s *Scheduler) Step(op oplog.Op) Decision {
	d := Decision{Op: op, Verdict: core.Reject}
	for h := 1; h <= len(s.subs); h++ {
		if !s.alive[h-1] {
			continue
		}
		sub := s.subs[h-1].Step(op)
		if sub.Verdict == core.Reject {
			// The log has left TO(h): stop MT(h) for good.
			s.alive[h-1] = false
			d.StoppedNow = append(d.StoppedNow, h)
			continue
		}
		d.Verdict = core.Accept
		d.AcceptedBy = append(d.AcceptedBy, h)
	}
	return d
}

// Commit forwards the commit to the alive subprotocols (storage
// reclamation).
func (s *Scheduler) Commit(i int) {
	for h := range s.subs {
		if s.alive[h] {
			s.subs[h].Commit(i)
		}
	}
}

// Abort forwards the abort to the alive subprotocols.
func (s *Scheduler) Abort(i, blocker int) {
	for h := range s.subs {
		if s.alive[h] {
			s.subs[h].Abort(i, blocker)
		}
	}
}

// AcceptLog runs a complete log, returning (true, -1) on full acceptance
// or (false, i) with the index of the rejected operation.
func (s *Scheduler) AcceptLog(l *oplog.Log) (bool, int) {
	for idx, op := range l.Ops {
		if d := s.Step(op); d.Verdict == core.Reject {
			return false, idx
		}
	}
	return true, -1
}

// Accepts reports whether the log is in TO(k⁺).
func Accepts(k int, l *oplog.Log) bool {
	ok, _ := NewScheduler(Options{K: k}).AcceptLog(l)
	return ok
}

// Watermarks returns the composite's monotone counter-consumption
// watermarks: the max over the subprotocols' engine watermarks. An
// epoch restart replaces the subprotocols with fresh counters, so the
// instantaneous max can drop — the WAL writer's monotone clamp keeps
// the persisted pair valid.
func (s *Scheduler) Watermarks() (lo, hi int64) {
	for _, sub := range s.subs {
		l, u := sub.Watermarks()
		lo, hi = max(lo, l), max(hi, u)
	}
	return lo, hi
}

// RaiseWatermarks lifts every subprotocol's counters to at least the
// given watermarks (recovery seeding), raise-only.
func (s *Scheduler) RaiseWatermarks(lo, hi int64) {
	for _, sub := range s.subs {
		sub.RaiseWatermarks(lo, hi)
	}
}

// SharedPrefixSize returns, for transaction i and subprotocol pair
// (h1 < h2), the length of the longest common prefix of the two vectors
// maintained for T_i. Theorem 5 guarantees this is at least
// min(h1, h2) - 1 while both subprotocols are alive.
func (s *Scheduler) SharedPrefixSize(i, h1, h2 int) int {
	v1 := s.subs[h1-1].Vector(i)
	v2 := s.subs[h2-1].Vector(i)
	n := v1.K()
	if v2.K() < n {
		n = v2.K()
	}
	shared := 0
	for m := 1; m <= n; m++ {
		a, b := v1.Elem(m), v2.Elem(m)
		if a.Defined != b.Defined || (a.Defined && a.V != b.V) {
			break
		}
		shared++
	}
	return shared
}
