package composite

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oplog"
)

// Lifecycle fuzz: random interleavings of operations, commits and aborts
// must never corrupt the composite's subprotocol tables, and every
// accepted operation prefix (per alive subprotocol) must stay consistent
// with the committed dependency structure.
func TestFuzzCompositeLifecycle(t *testing.T) {
	items := []string{"a", "b", "c"}
	for seed := int64(0); seed < 4000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		thomas := rng.Intn(2) == 0
		s := NewScheduler(Options{K: k, Sub: engine.Options{
			StarvationAvoidance: rng.Intn(2) == 0,
			ThomasWriteRule:     thomas,
		}})
		var accepted []oplog.Op
		var trace []string
		retired := map[int]bool{} // committed ids: ops after commit would
		// be a new incarnation and break the whole-sequence DSR check
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panic: %v\ntrace: %v", seed, r, trace)
				}
			}()
			for step := 0; step < 30; step++ {
				txn := 1 + rng.Intn(4)
				if retired[txn] {
					continue
				}
				switch rng.Intn(10) {
				case 0:
					trace = append(trace, fmt.Sprintf("C%d", txn))
					s.Commit(txn)
					retired[txn] = true
				case 1:
					trace = append(trace, fmt.Sprintf("A%d", txn))
					s.Abort(txn, 0)
				default:
					var op oplog.Op
					it := items[rng.Intn(len(items))]
					if rng.Intn(2) == 0 {
						op = oplog.R(txn, it)
					} else {
						op = oplog.W(txn, it)
					}
					trace = append(trace, op.String())
					if d := s.Step(op); d.Verdict != core.Reject {
						accepted = append(accepted, op)
					} else if len(s.Alive()) != 0 {
						t.Fatalf("seed %d: reject while subprotocols alive: %v", seed, s.Alive())
					}
				}
			}
		}()
		// The accepted operation sequence need not be DSR as a whole
		// (aborted transactions interleave), but with no aborts in the
		// trace it must be.
		hasAbort := false
		for _, e := range trace {
			if len(e) > 0 && e[0] == 'A' {
				hasAbort = true
			}
		}
		// Thomas-ignored writes are view- but not conflict-serializable,
		// so the raw-sequence DSR check only applies with the rule off.
		if !hasAbort && !thomas && len(accepted) > 0 {
			if !classify.DSR(oplog.NewLog(accepted...)) {
				t.Fatalf("seed %d: accepted non-DSR sequence", seed)
			}
		}
	}
}

// Lifecycle fuzz for the shared-table implementation: random operation
// sequences never panic and abort-free accepted sequences stay DSR.
func TestFuzzSharedLifecycle(t *testing.T) {
	items := []string{"a", "b", "c"}
	for seed := int64(0); seed < 4000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSharedScheduler(1 + rng.Intn(4))
		var accepted []oplog.Op
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panic: %v", seed, r)
				}
			}()
			for step := 0; step < 30; step++ {
				txn := 1 + rng.Intn(4)
				it := items[rng.Intn(len(items))]
				var op oplog.Op
				if rng.Intn(2) == 0 {
					op = oplog.R(txn, it)
				} else {
					op = oplog.W(txn, it)
				}
				if d := s.Step(op); d.Verdict != core.Reject {
					accepted = append(accepted, op)
				}
			}
		}()
		if len(accepted) > 0 && !classify.DSR(oplog.NewLog(accepted...)) {
			t.Fatalf("seed %d: shared accepted non-DSR sequence %v",
				seed, oplog.NewLog(accepted...))
		}
	}
}
