package composite

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oplog"
)

func TestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScheduler(Options{K: 0})
}

func TestAcceptsExample1(t *testing.T) {
	// Example 1's full log is in TO(2) \ TO(1): MT(2⁺) accepts it and
	// stops MT(1) at the last operation.
	s := NewScheduler(Options{K: 2})
	l := oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]")
	for idx, op := range l.Ops {
		d := s.Step(op)
		if d.Verdict != core.Accept {
			t.Fatalf("op %d (%v) rejected", idx, op)
		}
		if idx < 4 && !reflect.DeepEqual(s.Alive(), []int{1, 2}) {
			t.Fatalf("op %d: alive = %v", idx, s.Alive())
		}
	}
	if !reflect.DeepEqual(s.Alive(), []int{2}) {
		t.Fatalf("final alive = %v, want [2]", s.Alive())
	}
}

func TestRejectWhenAllStopped(t *testing.T) {
	// A dependency cycle stops every subprotocol.
	s := NewScheduler(Options{K: 3})
	l := oplog.MustParse("R1[x] R2[y] W2[x]")
	for _, op := range l.Ops {
		if d := s.Step(op); d.Verdict != core.Accept {
			t.Fatalf("%v rejected early", op)
		}
	}
	d := s.Step(oplog.W(1, "y")) // closes the T1<->T2 cycle
	if d.Verdict != core.Reject {
		t.Fatalf("cycle-closing op accepted; alive=%v", s.Alive())
	}
	if len(s.Alive()) != 0 {
		t.Fatalf("alive = %v, want none", s.Alive())
	}
	if len(d.StoppedNow) == 0 {
		t.Fatal("StoppedNow empty on the rejecting op")
	}
}

func randomTwoStep(rng *rand.Rand, nTxns, nItems int) *oplog.Log {
	items := []string{"x", "y", "z"}[:nItems]
	type pend struct{ r, w oplog.Op }
	var pends []pend
	for t := 1; t <= nTxns; t++ {
		pends = append(pends, pend{
			oplog.R(t, items[rng.Intn(nItems)]),
			oplog.W(t, items[rng.Intn(nItems)]),
		})
	}
	var ops []oplog.Op
	emitted := make([]int, len(pends))
	for len(ops) < 2*len(pends) {
		i := rng.Intn(len(pends))
		if emitted[i] < 2 {
			if emitted[i] == 0 {
				ops = append(ops, pends[i].r)
			} else {
				ops = append(ops, pends[i].w)
			}
			emitted[i]++
		}
	}
	return oplog.NewLog(ops...)
}

func randomMultiStep(rng *rand.Rand, nTxns, q, nItems int) *oplog.Log {
	items := []string{"x", "y", "z", "w"}[:nItems]
	var ops []oplog.Op
	for t := 1; t <= nTxns; t++ {
		n := 1 + rng.Intn(q)
		for o := 0; o < n; o++ {
			ops = append(ops, oplog.NewOp(t, oplog.Kind(rng.Intn(2)), items[rng.Intn(nItems)]))
		}
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return oplog.NewLog(ops...)
}

// TO(k⁺) is exactly the union TO(1) ∪ … ∪ TO(k).
func TestQuickCompositeIsUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomMultiStep(rng, 3, 3, 3)
		for k := 1; k <= 4; k++ {
			want := false
			for h := 1; h <= k; h++ {
				if engine.Accepts(h, l) {
					want = true
					break
				}
			}
			if Accepts(k, l) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Inclusivity: TO(h⁺) ⊆ TO(k⁺) for h < k — the composite hierarchy is
// monotone (Section IV), unlike the plain TO(k) classes.
func TestQuickCompositeInclusivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomMultiStep(rng, 4, 3, 3)
		prev := false
		for k := 1; k <= 4; k++ {
			cur := Accepts(k, l)
			if prev && !cur {
				return false
			}
			prev = cur
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// MT(k⁺) accepts strictly more logs than MT(k) on a random sample (the
// point of the composite protocol).
func TestCompositeBeatsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	single, comp := 0, 0
	for trial := 0; trial < 2000; trial++ {
		l := randomMultiStep(rng, 3, 3, 3)
		if engine.Accepts(3, l) {
			single++
		}
		if Accepts(3, l) {
			comp++
		}
	}
	if comp <= single {
		t.Fatalf("composite %d <= single %d", comp, single)
	}
}

// Theorem 5: while two subprotocols MT(h1), MT(h2) (1 < h1 <= h2) are both
// alive, the first h1-1 elements of each transaction's two vectors agree.
func TestTheorem5SharedPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 400; trial++ {
		l := randomTwoStep(rng, 3, 3)
		s := NewScheduler(Options{K: 4})
		okAll := true
		for _, op := range l.Ops {
			if d := s.Step(op); d.Verdict == core.Reject {
				okAll = false
				break
			}
			alive := s.Alive()
			for ai := 0; ai < len(alive); ai++ {
				for bi := ai + 1; bi < len(alive); bi++ {
					h1, h2 := alive[ai], alive[bi]
					if h1 == 1 {
						continue // Theorem 5 requires 1 < k1
					}
					for _, txn := range l.Transactions() {
						if got := s.SharedPrefixSize(txn, h1, h2); got < h1-1 {
							t.Fatalf("log %v: T%d prefix(%d,%d) = %d < %d\nv1=%v v2=%v",
								l, txn, h1, h2, got, h1-1,
								s.Sub(h1).Vector(txn), s.Sub(h2).Vector(txn))
						}
					}
				}
			}
		}
		if okAll {
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d fully accepted logs", checked)
	}
}

func TestCommitAbortForwarding(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	l := oplog.MustParse("R1[x] W1[x]")
	if ok, _ := s.AcceptLog(l); !ok {
		t.Fatal("setup log rejected")
	}
	s.Commit(1)
	// Vector still pinned as RT/WT in both subs.
	if s.Sub(1).LiveVectors() != 2 || s.Sub(2).LiveVectors() != 2 {
		t.Fatalf("live vectors: %d, %d", s.Sub(1).LiveVectors(), s.Sub(2).LiveVectors())
	}
	s.Abort(2, 0) // no-op abort of an unknown txn must not panic
}
