package explore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Directive is one replay instruction: at scheduling step Step, grant
// the token to task Task (instead of the inertial default).
type Directive struct {
	Step int
	Task int
}

// MetaKV is one ordered metadata entry of a trace (scheduler family,
// workload name, seed, injected flags — whatever the campaign needs to
// rebuild the system under test).
type MetaKV struct {
	Key string
	Val string
}

// Trace is the on-disk form of a failing schedule: metadata plus the
// switch directives that reproduce it. The format is line-oriented and
// hand-editable:
//
//	mtexplore-trace v1
//	# comment
//	meta sched mt-striped
//	meta workload ww-conflict
//	switch 4 1
//	switch 9 0
//
// Directives must be strictly increasing in step. Parse rejects
// anything else; Format(Parse(x)) round-trips accepted inputs.
type Trace struct {
	Meta []MetaKV
	Dirs []Directive
}

// traceHeader is the first non-blank, non-comment line of every trace.
const traceHeader = "mtexplore-trace v1"

// maxTraceField bounds parsed integers: a schedule never has a billion
// steps, and the bound keeps fuzzed inputs from smuggling overflow.
const maxTraceField = 1_000_000_000

// Get returns the value of the first meta entry with the key ("" if
// absent).
func (t *Trace) Get(key string) string {
	for _, kv := range t.Meta {
		if kv.Key == key {
			return kv.Val
		}
	}
	return ""
}

// Set appends or replaces the meta entry for key.
func (t *Trace) Set(key, val string) {
	for i := range t.Meta {
		if t.Meta[i].Key == key {
			t.Meta[i].Val = val
			return
		}
	}
	t.Meta = append(t.Meta, MetaKV{Key: key, Val: val})
}

// Format renders the trace in canonical form.
func (t *Trace) Format() []byte {
	var b strings.Builder
	b.WriteString(traceHeader)
	b.WriteByte('\n')
	for _, kv := range t.Meta {
		fmt.Fprintf(&b, "meta %s %s\n", kv.Key, kv.Val)
	}
	for _, d := range t.Dirs {
		fmt.Fprintf(&b, "switch %d %d\n", d.Step, d.Task)
	}
	return []byte(b.String())
}

// printable rejects control characters (so formatted traces stay
// line-oriented and round-trip exactly).
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return false
		}
	}
	return true
}

// ParseTrace parses a trace file. Blank lines and '#' comments are
// skipped; the first significant line must be the version header.
func ParseTrace(data []byte) (*Trace, error) {
	t := &Trace{}
	seenHeader := false
	seenKeys := map[string]bool{}
	lastStep := -1
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !printable(line) {
			return nil, fmt.Errorf("trace line %d: control character", ln+1)
		}
		if !seenHeader {
			if line != traceHeader {
				return nil, fmt.Errorf("trace line %d: expected header %q, got %q", ln+1, traceHeader, line)
			}
			seenHeader = true
			continue
		}
		switch {
		case strings.HasPrefix(line, "meta "):
			rest := line[len("meta "):]
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				return nil, fmt.Errorf("trace line %d: meta needs key and value", ln+1)
			}
			key, val := rest[:sp], strings.TrimSpace(rest[sp+1:])
			if val == "" {
				return nil, fmt.Errorf("trace line %d: empty meta value", ln+1)
			}
			if seenKeys[key] {
				return nil, fmt.Errorf("trace line %d: duplicate meta key %q", ln+1, key)
			}
			seenKeys[key] = true
			t.Meta = append(t.Meta, MetaKV{Key: key, Val: val})
		case strings.HasPrefix(line, "switch "):
			f := strings.Fields(line)
			if len(f) != 3 {
				return nil, fmt.Errorf("trace line %d: switch needs step and task", ln+1)
			}
			step, err := parseTraceInt(f[1])
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad step: %v", ln+1, err)
			}
			task, err := parseTraceInt(f[2])
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad task: %v", ln+1, err)
			}
			if step <= lastStep {
				return nil, fmt.Errorf("trace line %d: step %d not increasing (previous %d)", ln+1, step, lastStep)
			}
			lastStep = step
			t.Dirs = append(t.Dirs, Directive{Step: step, Task: task})
		default:
			return nil, fmt.Errorf("trace line %d: unknown directive %q", ln+1, line)
		}
	}
	if !seenHeader {
		return nil, fmt.Errorf("trace: missing header %q", traceHeader)
	}
	return t, nil
}

// parseTraceInt parses a bounded non-negative integer. A leading zero
// on a nonzero number is rejected so the canonical form is unique (the
// round-trip property the fuzzer checks).
func parseTraceInt(s string) (int, error) {
	if len(s) > 1 && s[0] == '0' {
		return 0, fmt.Errorf("non-canonical number %q", s)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > maxTraceField {
		return 0, fmt.Errorf("out of range: %d", v)
	}
	return v, nil
}

// NewTrace builds a trace from campaign metadata and directives. Meta
// keys are emitted in sorted order for stable output.
func NewTrace(meta map[string]string, dirs []Directive) *Trace {
	t := &Trace{Dirs: dirs}
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Meta = append(t.Meta, MetaKV{Key: k, Val: meta[k]})
	}
	return t
}
