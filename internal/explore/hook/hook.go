// Package hook is the instrumentation seam between the production
// concurrency-control code and the systematic schedule explorer
// (internal/explore). Production packages (core, engine, storage, txn,
// sched) call the free functions below at their interesting
// interleaving points; with no controller installed every call is a
// single atomic load and an early return, so the hot paths stay hot.
// When internal/explore installs a controller, registered goroutines
// are scheduled cooperatively: Yield parks the caller until the
// controller grants it the run token again, TryAcquire turns a blocking
// lock acquisition into a controlled try-loop, and Observe stamps
// protocol events onto the controller's global event order (the basis
// of the decision-order parity oracle).
//
// hook is a leaf package — it imports nothing from this repository — so
// any layer can be instrumented without import cycles.
package hook

import (
	"runtime"
	"sync/atomic"
)

// Point describes one instrumented event. Site names the instrumented
// location ("latch.acquire", "engine.decision", ...), Item the datum it
// concerns (item name, or "" when not applicable), and A/B carry two
// site-specific integers (txn id, verdict, counter value, scaled
// backoff factor...). Points are plain values so building one allocates
// nothing.
type Point struct {
	Site string
	Item string
	A, B int64
}

// Controller is what the explorer installs. All methods receive the
// calling goroutine's id; the controller ignores goroutines it did not
// register (their hooks behave like production no-ops).
type Controller interface {
	// Yield offers a preemption point. The controller may park the
	// caller and run other tasks before returning.
	Yield(gid uint64, p Point)
	// Observe records an annotation event without yielding. Called
	// under arbitrary (possibly uninstrumented) locks, so it must never
	// park the caller.
	Observe(gid uint64, p Point)
	// Acquire performs a controlled acquisition of resource res for a
	// registered goroutine: it may yield first, then calls try (which
	// must not block) until it succeeds, parking the caller between
	// failed tries until the resource is released. It returns false —
	// having done nothing — when gid is not a registered task; the
	// caller then acquires normally.
	Acquire(gid uint64, res uint64, p Point, try func() bool) bool
	// Release notes that res was released so tasks blocked on it become
	// runnable. Called by registered and unregistered goroutines alike.
	Release(gid uint64, res uint64)
}

type holder struct{ c Controller }

var active atomic.Pointer[holder]

// Install makes c the process-wide controller. Exactly one controller
// may be active; Install panics if one already is (explore executions
// are strictly sequential).
func Install(c Controller) {
	if !active.CompareAndSwap(nil, &holder{c}) {
		panic("hook: controller already installed")
	}
}

// Uninstall removes the active controller.
func Uninstall() { active.Store(nil) }

// Enabled reports whether a controller is installed. Callers can use it
// to skip building expensive Point payloads, but the free functions are
// already cheap to call unconditionally.
func Enabled() bool { return active.Load() != nil }

// Yield offers a preemption point to the controller, if one is
// installed and has registered this goroutine.
func Yield(site, item string, a, b int64) {
	if h := active.Load(); h != nil {
		h.c.Yield(GID(), Point{Site: site, Item: item, A: a, B: b})
	}
}

// Observe records a protocol event (decision, allocation, apply) on the
// controller's global event order. Never parks; safe under locks.
func Observe(site, item string, a, b int64) {
	if h := active.Load(); h != nil {
		h.c.Observe(GID(), Point{Site: site, Item: item, A: a, B: b})
	}
}

// TryAcquire routes a lock acquisition through the controller. try must
// attempt the acquisition without blocking and report success. Returns
// true when the controller handled the acquisition (try eventually
// succeeded under its scheduling); false when the caller must acquire
// normally (no controller, or an unregistered goroutine).
func TryAcquire(res uint64, site string, try func() bool) bool {
	h := active.Load()
	if h == nil {
		return false
	}
	return h.c.Acquire(GID(), res, Point{Site: site, A: int64(res)}, try)
}

// Release reports that a resource previously acquired through
// TryAcquire's site was released, waking tasks blocked on it. Must be
// called on every release of an instrumented resource (even by
// goroutines that acquired it on the normal path) so controlled waiters
// never miss a wakeup.
func Release(res uint64) {
	if h := active.Load(); h != nil {
		h.c.Release(GID(), res)
	}
}

// resourceIDs hands out process-unique resource id ranges, so every
// latch table instance gets distinct ids for its stripes no matter how
// many tables a test builds.
var resourceIDs atomic.Uint64

// NewResourceRange reserves n consecutive resource ids and returns the
// first. n <= 0 reserves 1.
func NewResourceRange(n int) uint64 {
	if n <= 0 {
		n = 1
	}
	return resourceIDs.Add(uint64(n)) - uint64(n)
}

// GID returns the calling goroutine's runtime id, parsed from the
// "goroutine N [...]" header of its stack trace. ~1µs — irrelevant
// under the explorer (which replaces wall-clock-scale work with
// scheduling decisions) and never executed in production, where the
// controller pointer is nil.
func GID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
