// Package explore is a controlled-concurrency test harness: it takes
// over goroutine scheduling at the yield points instrumented through
// internal/explore/hook and searches the interleaving space of the
// schedulers systematically instead of sampling it with wall-clock
// races. One Controller drives one execution: every registered task
// runs only while it holds the run token, every latch wait becomes a
// scheduling decision, and the sequence of decisions — the schedule —
// is recorded, replayable from a compact trace, and minimizable by
// delta debugging. Strategies (PCT random priorities, bounded DFS,
// trace replay) decide which runnable task gets the token at each step;
// oracles (driver.go) judge each completed execution.
package explore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explore/hook"
)

// Status classifies how an execution ended.
type Status int

const (
	// StatusOK: every task ran to completion.
	StatusOK Status = iota
	// StatusDeadlock: no task is runnable but some are blocked on
	// controlled resources.
	StatusDeadlock
	// StatusPanic: a task panicked; the execution was torn down.
	StatusPanic
	// StatusWatchdog: the granted task neither yielded nor finished
	// within the watchdog interval (a block on an uninstrumented
	// resource, or a livelock inside one scheduling quantum).
	StatusWatchdog
	// StatusStepLimit: the schedule exceeded MaxSteps decisions.
	StatusStepLimit
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDeadlock:
		return "deadlock"
	case StatusPanic:
		return "panic"
	case StatusWatchdog:
		return "watchdog"
	case StatusStepLimit:
		return "step-limit"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Choice is one scheduling decision: which task received the run token,
// out of which runnable candidates (sorted ascending).
type Choice struct {
	Task       int
	Candidates []int
}

// Event is one observed protocol event (decision, allocation, commit
// boundary, backoff scale), stamped with its global order position.
type Event struct {
	Stamp int
	Task  int
	hook.Point
}

// Execution is the outcome of one controlled run.
type Execution struct {
	Status   Status
	Choices  []Choice
	Events   []Event
	PanicVal any
	PanicOn  string // name of the panicking task
	Stack    string // panic or watchdog stack dump
	Blocked  []string
}

// Options configures a Controller.
type Options struct {
	// Strategy picks the next task at each step. Required.
	Strategy Strategy
	// Preempt reports whether a yield site may preempt (park the
	// caller). Nil uses DefaultPreempt. Observe events are always
	// recorded regardless.
	Preempt func(site string) bool
	// MaxSteps bounds the schedule length (default 20000).
	MaxSteps int
	// Watchdog bounds one scheduling quantum (default 10s).
	Watchdog time.Duration
}

// DefaultPreempt is the preemption policy sound for every scheduler
// family with a striped data path: driver operation boundaries, latch
// acquisitions and runtime restarts. Storage sites stay observe-only
// (coarse adapters call the store under their global mutex, where
// parking would deadlock the run); the sched.publish site only exists
// under the seeded publish-inversion bug and preempting it is the
// point.
func DefaultPreempt(site string) bool {
	switch site {
	case "driver.op", "latch.acquire", "txn.restart", "sched.publish":
		return true
	}
	return false
}

// PreemptOps preempts only at driver operation boundaries — the policy
// for coarse (global-mutex) schedulers, where any in-operation park
// would block every other task on the uninstrumented mutex, and for
// the DFS bound tests, where the schedule space must be enumerable by
// hand.
func PreemptOps(site string) bool { return site == "driver.op" }

type taskState int

const (
	taskReady taskState = iota
	taskRunning
	taskBlocked
	taskDone
)

type task struct {
	c       *Controller
	idx     int
	name    string
	gid     uint64
	fn      func()
	grant   chan struct{}
	state   taskState
	res     uint64 // resource blocked on (taskBlocked)
	opStamp int    // stamp of the current op's first observe; -1 none
	panicV  any
	stack   string
}

// killSignal unwinds an abandoned task during teardown.
type killSignal struct{}

// Controller runs registered tasks one at a time. It implements
// hook.Controller; Run installs it as the process-wide hook for the
// duration of the execution, so executions are strictly sequential.
type Controller struct {
	opts Options

	mu     sync.Mutex
	tasks  []*task
	byGID  map[uint64]*task
	stamp  int
	events []Event

	parked  chan int // task idx → run loop: "I parked/blocked/finished"
	regged  chan struct{}
	abandon atomic.Bool

	choices []Choice
	last    int
}

// New returns a Controller with no tasks registered.
func New(opts Options) *Controller {
	if opts.Strategy == nil {
		panic("explore: Options.Strategy is required")
	}
	if opts.Preempt == nil {
		opts.Preempt = DefaultPreempt
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 20000
	}
	if opts.Watchdog <= 0 {
		opts.Watchdog = 10 * time.Second
	}
	return &Controller{
		opts:   opts,
		byGID:  make(map[uint64]*task),
		regged: make(chan struct{}),
		last:   -1,
	}
}

// Go registers a task. Must be called before Run; tasks are identified
// by their registration index in schedules and traces.
func (c *Controller) Go(name string, fn func()) {
	t := &task{
		c:       c,
		idx:     len(c.tasks),
		name:    name,
		fn:      fn,
		grant:   make(chan struct{}),
		state:   taskReady,
		opStamp: -1,
	}
	c.tasks = append(c.tasks, t)
}

// TaskNames returns the registered task names in index order.
func (c *Controller) TaskNames() []string {
	names := make([]string, len(c.tasks))
	for i, t := range c.tasks {
		names[i] = t.name
	}
	return names
}

// Run executes the registered tasks under controlled scheduling and
// returns the recorded execution. The Controller is single-shot: build
// a fresh one (and fresh system under test) per execution.
func (c *Controller) Run() *Execution {
	hook.Install(c)
	defer hook.Uninstall()
	c.parked = make(chan int, 4*len(c.tasks)+16)
	for _, t := range c.tasks {
		go c.taskMain(t)
	}
	for range c.tasks {
		<-c.regged
	}

	ex := &Execution{}
loop:
	for {
		c.mu.Lock()
		var cands []int
		allDone := true
		for _, t := range c.tasks {
			switch t.state {
			case taskReady:
				cands = append(cands, t.idx)
				allDone = false
			case taskBlocked:
				allDone = false
			}
		}
		c.mu.Unlock()
		if allDone {
			ex.Status = StatusOK
			break
		}
		if len(cands) == 0 {
			ex.Status = StatusDeadlock
			c.mu.Lock()
			for _, t := range c.tasks {
				if t.state == taskBlocked {
					ex.Blocked = append(ex.Blocked, t.name)
				}
			}
			c.mu.Unlock()
			break
		}
		if len(c.choices) >= c.opts.MaxSteps {
			ex.Status = StatusStepLimit
			break
		}
		pick := c.opts.Strategy.Pick(len(c.choices), cands, c.last)
		if !containsInt(cands, pick) {
			panic(fmt.Sprintf("explore: strategy picked task %d, not in candidates %v", pick, cands))
		}
		c.choices = append(c.choices, Choice{Task: pick, Candidates: cands})
		c.last = pick
		t := c.tasks[pick]
		c.mu.Lock()
		t.state = taskRunning
		c.mu.Unlock()
		t.grant <- struct{}{}
		select {
		case <-c.parked:
		case <-time.After(c.opts.Watchdog):
			ex.Status = StatusWatchdog
			ex.Stack = allStacks()
			break loop
		}
		// A panicked task ends the execution: its teardown unwound the
		// system under test, so further scheduling is meaningless.
		c.mu.Lock()
		pan := t.state == taskDone && t.panicV != nil
		if pan {
			ex.Status = StatusPanic
			ex.PanicVal = t.panicV
			ex.PanicOn = t.name
			ex.Stack = t.stack
		}
		c.mu.Unlock()
		if pan {
			break
		}
	}
	c.teardown()
	ex.Choices = c.choices
	ex.Events = c.events
	return ex
}

// teardown kills every task still parked on the controller so its
// goroutine (and the locks it holds) unwind. Tasks stuck on
// uninstrumented resources (watchdog case) are leaked deliberately —
// the run already failed and the system under test is discarded.
func (c *Controller) teardown() {
	c.abandon.Store(true)
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	for {
		c.mu.Lock()
		var wake []*task
		allDone := true
		for _, t := range c.tasks {
			if t.state == taskDone {
				continue
			}
			allDone = false
			if t.state == taskReady || t.state == taskBlocked {
				t.state = taskRunning
				wake = append(wake, t)
			}
		}
		c.mu.Unlock()
		if allDone || len(wake) == 0 {
			return
		}
		for _, t := range wake {
			t.grant <- struct{}{}
		}
		for range wake {
			select {
			case <-c.parked:
			case <-deadline.C:
				return
			}
		}
	}
}

func (c *Controller) taskMain(t *task) {
	gid := hook.GID()
	c.mu.Lock()
	t.gid = gid
	c.byGID[gid] = t
	c.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			if _, kill := r.(killSignal); !kill {
				t.panicV = r
				buf := make([]byte, 64<<10)
				t.stack = string(buf[:runtime.Stack(buf, false)])
			}
		}
		c.mu.Lock()
		t.state = taskDone
		delete(c.byGID, t.gid)
		c.mu.Unlock()
		c.parked <- t.idx
	}()
	c.regged <- struct{}{}
	t.waitGrant()
	t.fn()
}

// waitGrant parks until the run loop grants the token; during teardown
// the grant is a kill.
func (t *task) waitGrant() {
	<-t.grant
	if t.c.abandon.Load() {
		panic(killSignal{})
	}
}

// lookup resolves a goroutine to its task, nil for unregistered ones.
func (c *Controller) lookup(gid uint64) *task {
	c.mu.Lock()
	t := c.byGID[gid]
	c.mu.Unlock()
	return t
}

// Yield implements hook.Controller: park at a preemptible site,
// returning the token to the run loop.
func (c *Controller) Yield(gid uint64, p hook.Point) {
	t := c.lookup(gid)
	if t == nil || c.abandon.Load() || !c.opts.Preempt(p.Site) {
		return
	}
	c.mu.Lock()
	t.state = taskReady
	c.mu.Unlock()
	c.parked <- t.idx
	t.waitGrant()
}

// Observe implements hook.Controller: stamp a protocol event on the
// global order. Never parks; the stamp of an op's FIRST event is the
// op's linearization point for the parity oracle.
func (c *Controller) Observe(gid uint64, p hook.Point) {
	t := c.lookup(gid)
	if t == nil {
		return
	}
	c.mu.Lock()
	c.stamp++
	if t.opStamp < 0 {
		t.opStamp = c.stamp
	}
	c.events = append(c.events, Event{Stamp: c.stamp, Task: t.idx, Point: p})
	c.mu.Unlock()
}

// Acquire implements hook.Controller: a controlled lock acquisition.
// The try runs under the controller mutex, so it cannot race a Release
// into a lost wakeup: either the resource is free when tried, or the
// releaser's notification finds this task already registered blocked.
func (c *Controller) Acquire(gid uint64, res uint64, p hook.Point, try func() bool) bool {
	t := c.lookup(gid)
	if t == nil || c.abandon.Load() {
		return false
	}
	if c.opts.Preempt(p.Site) {
		c.mu.Lock()
		t.state = taskReady
		c.mu.Unlock()
		c.parked <- t.idx
		t.waitGrant()
	}
	for {
		c.mu.Lock()
		if try() {
			c.mu.Unlock()
			return true
		}
		t.state = taskBlocked
		t.res = res
		c.mu.Unlock()
		c.parked <- t.idx
		t.waitGrant()
	}
}

// Release implements hook.Controller: wake tasks blocked on res. Called
// by registered and unregistered goroutines alike.
func (c *Controller) Release(gid uint64, res uint64) {
	c.mu.Lock()
	for _, t := range c.tasks {
		if t.state == taskBlocked && t.res == res {
			t.state = taskReady
		}
	}
	c.mu.Unlock()
}

// BeginOp marks the start of a driver-level operation for the calling
// task: the next Observe stamps the op's linearization point.
func (c *Controller) BeginOp() {
	t := c.lookup(hook.GID())
	if t == nil {
		return
	}
	c.mu.Lock()
	t.opStamp = -1
	c.mu.Unlock()
}

// EndOp returns the calling task's current op stamp: the stamp of its
// first protocol event, or a fresh stamp if the op had none (a purely
// local operation, atomic from the last preemption point to here).
func (c *Controller) EndOp() int {
	t := c.lookup(hook.GID())
	if t == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.opStamp >= 0 {
		return t.opStamp
	}
	c.stamp++
	return c.stamp
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func allStacks() string {
	buf := make([]byte, 1<<20)
	return string(buf[:runtime.Stack(buf, true)])
}
