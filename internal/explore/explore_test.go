package explore

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/explore/hook"
)

// Helpers for the pure-harness tests (no scheduler under test): they
// reuse the production hook seam, so these tests exercise exactly the
// code paths instrumented call sites go through.
func yieldHere()          { hook.Yield("driver.op", "", 0, 0) }
func newResource() uint64 { return hook.NewResourceRange(1) }
func acquireRes(res uint64, try func() bool) bool {
	return hook.TryAcquire(res, "latch.acquire", try)
}
func releaseRes(res uint64) { hook.Release(res) }

var (
	exploreBudget = flag.Int("explore.budget", 60, "PCT executions per (family, workload) combination")
	exploreRegen  = flag.Bool("explore.regen", false, "regenerate testdata traces by searching for the seeded bugs")
)

// pctCombos are the (config, workload) pairs the PCT sweep covers: every
// scheduler family, both write modes where the family distinguishes
// them.
func pctCombos() []CampaignOptions {
	var out []CampaignOptions
	families := []Config{
		{Family: "mt"},
		{Family: "mt", DeferWrites: true},
		{Family: "mt-striped"},
		{Family: "mt-striped", DeferWrites: true},
		{Family: "mt-striped", DeferWrites: true, StarvationAvoidance: true},
		{Family: "composite"},
		{Family: "dmt"},
		{Family: "nested"},
	}
	workloads := []string{"conflict-2x2", "ww-2x1", "rw-2x1", "mix-3x2", "mix-3x3"}
	for _, cfg := range families {
		for _, wn := range workloads {
			w, ok := NamedWorkload(wn)
			if !ok {
				panic("unknown workload " + wn)
			}
			cfg.Initial = map[string]int64{"a": 10, "b": 20, "c": 30, "x": 40}
			out = append(out, CampaignOptions{Config: cfg, Workload: w})
		}
	}
	return out
}

func comboName(o CampaignOptions) string {
	n := o.Config.Family
	if o.Config.DeferWrites {
		n += "-defer"
	}
	if o.Config.StarvationAvoidance {
		n += "-sa"
	}
	return n + "/" + o.Workload.Name
}

func describeFailure(t *testing.T, o CampaignOptions, f *Failure) string {
	t.Helper()
	tr := TraceFor(o, f)
	return fmt.Sprintf("%s\nstatus=%s choices=%d seed=%d\ntrace:\n%s",
		f.Error(), f.Exec.Status, len(f.Exec.Choices), f.Seed, tr.Format())
}

// TestExplore sweeps PCT schedules over every scheduler family and
// asserts all oracles hold: no panics, no deadlocks, DSR histories,
// parity with the coarse reference, unique column allocations.
func TestExplore(t *testing.T) {
	for _, combo := range pctCombos() {
		combo := combo
		t.Run(comboName(combo), func(t *testing.T) {
			combo.Strategy = &PCT{Seed: 1, Budget: *exploreBudget}
			res := RunCampaign(combo)
			if len(res.Failures) > 0 {
				t.Fatalf("explore failure:\n%s", describeFailure(t, combo, res.Failures[0]))
			}
			if res.Executions != *exploreBudget {
				t.Fatalf("ran %d executions, budget %d", res.Executions, *exploreBudget)
			}
			t.Logf("%d executions, %d distinct schedules, %v", res.Executions, res.Distinct, res.Elapsed)
		})
	}
}

// TestExploreDFSExhaustive proves the harness enumerates the complete
// schedule space of a tiny workload. Two conflict-free transactions of
// two operations each yield exactly four atomic segments per task under
// the operations-only preemption policy, so the interleaving count must
// equal C(8,4) = 70 — no more (determinism), no fewer (exhaustiveness).
func TestExploreDFSExhaustive(t *testing.T) {
	w, _ := NamedWorkload("disjoint-2x2")
	d := &DFS{}
	res := RunCampaign(CampaignOptions{
		Config:   Config{Family: "mt-striped", Initial: map[string]int64{"a": 1, "b": 2}},
		Workload: w,
		Strategy: d,
		Preempt:  PreemptOps,
	})
	if len(res.Failures) > 0 {
		t.Fatalf("explore failure:\n%s", res.Failures[0].Error())
	}
	if !res.Exhausted {
		t.Fatalf("DFS did not exhaust the schedule space (%d schedules)", res.Executions)
	}
	if res.Executions != 70 || res.Distinct != 70 {
		t.Fatalf("expected exactly C(8,4) = 70 schedules, got %d executions / %d distinct", res.Executions, res.Distinct)
	}
}

// TestExploreDFSConflict exhausts the schedule space of a genuinely
// conflicting 2x2 workload on all four scheduler families, checking
// every interleaving against the full oracle set.
func TestExploreDFSConflict(t *testing.T) {
	configs := []Config{
		{Family: "mt"},
		{Family: "mt-striped"},
		{Family: "mt-striped", DeferWrites: true},
		{Family: "composite"},
		{Family: "dmt"},
		{Family: "nested"},
	}
	w, _ := NamedWorkload("conflict-2x2")
	w.MaxRetries = 1 // bound the space: one retry is enough to cover abort paths
	for _, cfg := range configs {
		cfg := cfg
		cfg.Initial = map[string]int64{"a": 10, "b": 20}
		name := cfg.Family
		if cfg.DeferWrites {
			name += "-defer"
		}
		t.Run(name, func(t *testing.T) {
			d := &DFS{MaxSchedules: 60000}
			res := RunCampaign(CampaignOptions{
				Config:   cfg,
				Workload: w,
				Strategy: d,
				Preempt:  PreemptOps,
			})
			if len(res.Failures) > 0 {
				t.Fatalf("explore failure:\n%s", res.Failures[0].Error())
			}
			if !res.Exhausted {
				t.Fatalf("DFS hit the %d-schedule cap before exhausting", d.MaxSchedules)
			}
			t.Logf("%d schedules exhausted in %v (statuses %v)", res.Executions, res.Elapsed, res.Statuses)
		})
	}
}

// inversionOptions is the seeded publish-inversion scenario: striped MT
// with deferred writes and the latch-release window between validation
// and publish reintroduced behind the test-only flag.
func inversionOptions() CampaignOptions {
	w, _ := NamedWorkload("ww-2x1")
	return CampaignOptions{
		Config: Config{
			Family:        "mt-striped",
			DeferWrites:   true,
			UnsafePublish: true,
			Initial:       map[string]int64{"x": 7},
		},
		Workload: w,
	}
}

// reclaimOptions is the seeded pooled-entry eager-reclaim scenario:
// striped MT whose finished entries are recycled while still pinned as
// an item's most-recent timestamp. Only schedules that order another
// transaction's conflict test after the reclaim see the empty vector
// and diverge from the coarse reference — the interleaving the
// checked-in eager_reclaim.trace pins.
func reclaimOptions() CampaignOptions {
	w, _ := NamedWorkload("mix-3x2")
	return CampaignOptions{
		Config: Config{
			Family:             "mt-striped",
			UnsafeEagerReclaim: true,
			Initial:            map[string]int64{"a": 10, "b": 20},
		},
		Workload: w,
	}
}

// TestExplorePCTFindsEagerReclaim is the acceptance test for the
// pooled-entry lifecycle oracle: PCT must find a schedule where the
// eager reclaim changes a decision (parity or DSR divergence), and the
// real reclaim discipline must pass the same schedule.
func TestExplorePCTFindsEagerReclaim(t *testing.T) {
	o := reclaimOptions()
	o.Strategy = &PCT{Seed: 11, Budget: 400}
	res := RunCampaign(o)
	if len(res.Failures) == 0 {
		t.Fatalf("PCT did not find the eager-reclaim divergence in %d executions", res.Executions)
	}
	f := res.Failures[0]
	t.Logf("found after %d executions: %s (seed %d, %d directives)",
		res.Executions, f.Error(), f.Seed, len(f.Dirs))
	fixed := o
	fixed.Config.UnsafeEagerReclaim = false
	if _, ff, _ := ReplayTrace(fixed, &Trace{Dirs: f.Dirs}); ff != nil {
		t.Fatalf("correct reclaim discipline fails the schedule: %v", ff)
	}
}

// livelockOptions is the seeded express-lane livelock scenario: the
// runtime retry loop under an admission controller whose express scale
// is forced to zero, so a conflict-aborted young transaction retries
// with no backoff at all.
func livelockOptions(inject bool) CampaignOptions {
	// mt-striped: its latch.acquire pre-yields give the controller an
	// interleaving point before every operation inside rt.Exec, which is
	// what makes conflict aborts (and so backoff decisions) reachable.
	w, _ := NamedWorkload("conflict-2x2")
	return CampaignOptions{
		Config:   Config{Family: "mt-striped", Initial: map[string]int64{"a": 10, "b": 20}},
		Workload: w,
		Runtime: &RuntimeMode{
			MaxAttempts: 4,
			Backoff:     time.Nanosecond,
			Aging:       &admit.AgingOptions{UnsafeZeroExpress: inject},
		},
		Oracles: Oracles{ZeroExpress: true},
	}
}

// shrinkCheck reruns a directive subset against the scenario and
// reports whether the same oracle still fails.
func shrinkCheck(o CampaignOptions, oracle string) func([]Directive) bool {
	return func(dirs []Directive) bool {
		tr := &Trace{Dirs: dirs}
		_, f, _ := ReplayTrace(o, tr)
		return f != nil && f.Oracle == oracle
	}
}

// TestExplorePCTFindsSeededInversion is the end-to-end acceptance test
// for the search half of the harness: PCT must find the reintroduced
// publish inversion within budget, the failing schedule must replay
// deterministically from its directives, and delta debugging must
// shrink it to at most 10 directives.
func TestExplorePCTFindsSeededInversion(t *testing.T) {
	o := inversionOptions()
	o.Strategy = &PCT{Seed: 42, Budget: 400}
	res := RunCampaign(o)
	if len(res.Failures) == 0 {
		t.Fatalf("PCT did not find the seeded publish inversion in %d executions", res.Executions)
	}
	f := res.Failures[0]
	t.Logf("found after %d executions: %s (seed %d, %d directives)",
		res.Executions, f.Error(), f.Seed, len(f.Dirs))

	// The raw directive list must replay to the same oracle failure.
	_, rf, _ := ReplayTrace(o, &Trace{Dirs: f.Dirs})
	if rf == nil || rf.Oracle != f.Oracle {
		t.Fatalf("failing schedule did not replay: got %v, want oracle %q", rf, f.Oracle)
	}

	shrunk := Shrink(f.Dirs, shrinkCheck(o, f.Oracle), 0)
	t.Logf("shrunk %d -> %d directives", len(f.Dirs), len(shrunk))
	if len(shrunk) > 10 {
		t.Fatalf("shrunk schedule still needs %d directives (want <= 10)", len(shrunk))
	}
	// And the shrunk schedule must itself reproduce.
	_, sf, _ := ReplayTrace(o, &Trace{Dirs: shrunk})
	if sf == nil || sf.Oracle != f.Oracle {
		t.Fatalf("shrunk schedule did not reproduce: got %v", sf)
	}
	// The fixed code must pass the same schedule.
	fixed := o
	fixed.Config.UnsafePublish = false
	if _, ff, _ := ReplayTrace(fixed, &Trace{Dirs: shrunk}); ff != nil {
		t.Fatalf("fixed scheduler fails the shrunk schedule: %v", ff)
	}
}

// TestExplorePCTFindsZeroExpress finds the seeded express-lane livelock
// through the runtime-mode harness.
func TestExplorePCTFindsZeroExpress(t *testing.T) {
	o := livelockOptions(true)
	o.Strategy = &PCT{Seed: 7, Budget: 200}
	res := RunCampaign(o)
	if len(res.Failures) == 0 {
		t.Fatalf("PCT did not find the zero express scale in %d executions", res.Executions)
	}
	f := res.Failures[0]
	if f.Oracle != "zero-express" {
		t.Fatalf("unexpected oracle %q: %s", f.Oracle, f.Error())
	}
	// The fix (a real express scale) passes the same schedule.
	if _, ff, _ := ReplayTrace(livelockOptions(false), &Trace{Dirs: f.Dirs}); ff != nil {
		t.Fatalf("fixed admission control fails the schedule: %v", ff)
	}
}

// regenTrace searches for a seeded bug, shrinks the first failure, and
// writes the checked-in regression trace.
func regenTrace(t *testing.T, path string, o CampaignOptions, seed int64, budget int) {
	t.Helper()
	o.Strategy = &PCT{Seed: seed, Budget: budget}
	res := RunCampaign(o)
	if len(res.Failures) == 0 {
		t.Fatalf("regen: no failure found for %s in %d executions", path, res.Executions)
	}
	f := res.Failures[0]
	f.Dirs = Shrink(f.Dirs, shrinkCheck(o, f.Oracle), 0)
	tr := TraceFor(o, f)
	if err := os.WriteFile(path, tr.Format(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d directives, oracle %s)", path, len(f.Dirs), f.Oracle)
}

// TestExploreRegenTraces rewrites the testdata traces from scratch.
// Run with: go test ./internal/explore -run TestExploreRegenTraces -explore.regen
func TestExploreRegenTraces(t *testing.T) {
	if !*exploreRegen {
		t.Skip("pass -explore.regen to rewrite testdata traces")
	}
	regenTrace(t, filepath.Join("testdata", "publish_inversion.trace"), inversionOptions(), 42, 400)
	regenTrace(t, filepath.Join("testdata", "express_livelock.trace"), livelockOptions(true), 7, 200)
	regenTrace(t, filepath.Join("testdata", "eager_reclaim.trace"), reclaimOptions(), 11, 400)
}

// TestExploreRegressionTraces replays every checked-in trace twice:
// with the seeded bug injected (the trace's oracle must fail — the
// regression is still detectable) and without (the fixed code must pass
// the exact same schedule). These are the PR 5 publish-inversion and
// PR 7 express-lane-livelock bugs as deterministic schedules.
func TestExploreRegressionTraces(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no testdata traces: run go test -run TestExploreRegenTraces -explore.regen")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := ParseTrace(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			wantOracle := tr.Get("oracle")
			if wantOracle == "" {
				t.Fatal("trace has no oracle metadata")
			}

			buggy, err := OptionsFromTrace(tr, true)
			if err != nil {
				t.Fatal(err)
			}
			_, f, diverged := ReplayTrace(buggy, tr)
			if f == nil {
				t.Fatalf("trace no longer reproduces its failure (diverged=%v)", diverged)
			}
			if f.Oracle != wantOracle {
				t.Fatalf("trace reproduces oracle %q, recorded %q: %s", f.Oracle, wantOracle, f.Error())
			}

			fixed, err := OptionsFromTrace(tr, false)
			if err != nil {
				t.Fatal(err)
			}
			if _, ff, _ := ReplayTrace(fixed, tr); ff != nil {
				t.Fatalf("fixed code fails the regression schedule: %s", ff.Error())
			}
		})
	}
}

// TestExploreDeadlockDetection builds a two-task lock-order inversion
// out of plain controlled acquisitions and asserts the controller
// reports it as a deadlock rather than hanging.
func TestExploreDeadlockDetection(t *testing.T) {
	// Simulated resources: two "latches" represented by try-channels.
	// The tasks acquire them in opposite orders with a yield between, so
	// one schedule deadlocks.
	d := &DFS{}
	var found bool
	for d.Begin(2) {
		ctl := New(Options{Strategy: d, Preempt: func(string) bool { return true }})
		resA := newFakeLatch()
		resB := newFakeLatch()
		ctl.Go("t0", func() { resA.lock(); yieldHere(); resB.lock(); resB.unlock(); resA.unlock() })
		ctl.Go("t1", func() { resB.lock(); yieldHere(); resA.lock(); resA.unlock(); resB.unlock() })
		ex := ctl.Run()
		d.End(ex)
		if ex.Status == StatusDeadlock {
			found = true
			if len(ex.Blocked) != 2 {
				t.Fatalf("deadlock with %d blocked tasks, want 2", len(ex.Blocked))
			}
		} else if ex.Status != StatusOK {
			t.Fatalf("unexpected status %s", ex.Status)
		}
	}
	if !d.Exhausted() {
		t.Fatalf("DFS not exhausted: %v", d.Err)
	}
	if !found {
		t.Fatal("no schedule deadlocked; the inversion must be reachable")
	}
}

// TestExplorePanicCapture asserts a panicking task is reported with its
// identity and value, and the run tears down cleanly.
func TestExplorePanicCapture(t *testing.T) {
	r := &Replay{Trace: &Trace{}}
	r.Begin(2)
	ctl := New(Options{Strategy: r, Preempt: func(string) bool { return true }})
	ctl.Go("calm", func() { yieldHere() })
	ctl.Go("bomb", func() { yieldHere(); panic("boom") })
	ex := ctl.Run()
	if ex.Status != StatusPanic {
		t.Fatalf("status %s, want panic", ex.Status)
	}
	if ex.PanicOn != "bomb" || ex.PanicVal != "boom" {
		t.Fatalf("panic attribution: on=%q val=%v", ex.PanicOn, ex.PanicVal)
	}
	if !strings.Contains(ex.Stack, "boom") && ex.Stack == "" {
		t.Fatal("no stack captured")
	}
}

// TestExploreShrink checks ddmin minimizes to the known-minimal subset.
func TestExploreShrink(t *testing.T) {
	dirs := make([]Directive, 12)
	for i := range dirs {
		dirs[i] = Directive{Step: i, Task: i % 2}
	}
	// Failure reproduces iff directives at steps 3 and 8 are both kept.
	check := func(d []Directive) bool {
		has := map[int]bool{}
		for _, x := range d {
			has[x.Step] = true
		}
		return has[3] && has[8]
	}
	got := Shrink(dirs, check, 0)
	if len(got) != 2 || got[0].Step != 3 || got[1].Step != 8 {
		t.Fatalf("shrink result %v, want steps [3 8]", got)
	}
}

// TestExploreTraceRoundTrip exercises the canonical-format property on
// a handwritten trace and the documented rejections.
func TestExploreTraceRoundTrip(t *testing.T) {
	in := "# a comment\n\nmtexplore-trace v1\nmeta family mt\nmeta workload ww-2x1\nswitch 0 1\nswitch 4 0\n"
	tr, err := ParseTrace([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Format()
	tr2, err := ParseTrace(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if string(tr2.Format()) != string(out) {
		t.Fatalf("not canonical:\n%s\nvs\n%s", out, tr2.Format())
	}
	bad := []string{
		"",                               // no header
		"mtexplore-trace v2\n",           // wrong version
		"mtexplore-trace v1\nswitch 1\n", // malformed switch
		"mtexplore-trace v1\nswitch 2 0\nswitch 1 0\n", // non-increasing
		"mtexplore-trace v1\nswitch 01 0\n",            // non-canonical int
		"mtexplore-trace v1\nmeta k v\nmeta k w\n",     // duplicate key
		"mtexplore-trace v1\nmeta k\n",                 // missing value
		"mtexplore-trace v1\nbogus 1 2\n",              // unknown directive
	}
	for _, b := range bad {
		if _, err := ParseTrace([]byte(b)); err == nil {
			t.Fatalf("accepted invalid trace %q", b)
		}
	}
}

// fakeLatch is a controller-visible lock for the pure-harness tests.
type fakeLatch struct {
	res uint64
	ch  chan struct{}
}

func newFakeLatch() *fakeLatch {
	return &fakeLatch{res: newResource(), ch: make(chan struct{}, 1)}
}

func (l *fakeLatch) lock() {
	if acquireRes(l.res, func() bool {
		select {
		case l.ch <- struct{}{}:
			return true
		default:
			return false
		}
	}) {
		return
	}
	l.ch <- struct{}{}
}

func (l *fakeLatch) unlock() {
	<-l.ch
	releaseRes(l.res)
}
