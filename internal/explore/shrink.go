package explore

// Shrink minimizes a failing schedule's directive list with ddmin-style
// delta debugging: check must rerun the schedule and report whether the
// failure still reproduces. Directives removed from a trace fall back
// to the inertial default (keep running the current task), so every
// subset is a valid — more sequential — schedule. maxRuns bounds the
// number of check calls (0 = 4·len² heuristic cap).
func Shrink(dirs []Directive, check func([]Directive) bool, maxRuns int) []Directive {
	if maxRuns <= 0 {
		maxRuns = 4*len(dirs)*len(dirs) + 64
	}
	runs := 0
	try := func(cand []Directive) bool {
		runs++
		return runs <= maxRuns && check(cand)
	}
	cur := append([]Directive(nil), dirs...)
	n := 2
	for len(cur) >= 2 && n <= len(cur) && runs < maxRuns {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(cur); lo += chunk {
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			// Try the complement: drop cur[lo:hi].
			cand := make([]Directive, 0, len(cur)-(hi-lo))
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[hi:]...)
			if try(cand) {
				cur = cand
				n -= 1
				if n < 2 {
					n = 2
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	// Final pass: drop single directives until no single drop
	// reproduces (1-minimality).
	for i := 0; i < len(cur) && runs < maxRuns; {
		cand := make([]Directive, 0, len(cur)-1)
		cand = append(cand, cur[:i]...)
		cand = append(cand, cur[i+1:]...)
		if try(cand) {
			cur = cand
		} else {
			i++
		}
	}
	return cur
}
