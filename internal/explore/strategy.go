package explore

import (
	"fmt"
	"math/rand"
)

// Strategy decides which runnable task gets the run token at each
// scheduling step. One Strategy instance drives a whole campaign of
// executions: Begin is called before each execution (returning false
// ends the campaign — budget spent or search space exhausted), Pick is
// called at every step, End after each execution with the recorded
// schedule.
type Strategy interface {
	Begin(nTasks int) bool
	Pick(step int, cands []int, last int) int
	End(ex *Execution)
}

// defaultPick is the inertial default schedule: keep running the task
// that ran last if it is runnable, else the lowest-index runnable task.
// Replay traces record only the deviations from this rule, which is
// what makes shrunk traces short: dropping a directive makes the
// schedule MORE sequential, never invalid.
func defaultPick(cands []int, last int) int {
	if containsInt(cands, last) {
		return last
	}
	return cands[0]
}

// PCT is probabilistic concurrency testing: each execution draws a
// random priority order over tasks plus D priority-change points over
// the (estimated) schedule length; at every step the highest-priority
// runnable task runs, and at a change point the current winner is
// demoted below everyone. A bug of depth d is found with probability
// >= 1/(n·L^(d-1)) per execution, independent of how rare its
// interleaving is under wall-clock scheduling.
type PCT struct {
	// Seed is the campaign seed; execution e derives its RNG from
	// Seed+e, so any single failing execution is reproducible from
	// (Seed, index).
	Seed int64
	// D is the number of priority-change points (bug depth - 1;
	// default 3).
	D int
	// Budget is the number of executions (default 100).
	Budget int

	exec    int
	prio    []int
	demote  int
	change  map[int]bool
	horizon int
	// LastSeed is the per-execution seed of the most recent Begin
	// (diagnostics: a failure report names it).
	LastSeed int64
}

// Begin implements Strategy.
func (p *PCT) Begin(nTasks int) bool {
	if p.Budget <= 0 {
		p.Budget = 100
	}
	if p.D <= 0 {
		p.D = 3
	}
	if p.exec >= p.Budget {
		return false
	}
	p.LastSeed = p.Seed + int64(p.exec)
	rng := rand.New(rand.NewSource(p.LastSeed))
	p.exec++
	p.prio = rng.Perm(nTasks)
	p.demote = -1
	if p.horizon < 16 {
		p.horizon = 16
	}
	p.change = make(map[int]bool, p.D)
	for i := 0; i < p.D; i++ {
		p.change[rng.Intn(p.horizon)] = true
	}
	return true
}

// Pick implements Strategy.
func (p *PCT) Pick(step int, cands []int, last int) int {
	best := p.argmax(cands)
	if p.change[step] {
		p.prio[best] = p.demote
		p.demote--
		best = p.argmax(cands)
	}
	return best
}

func (p *PCT) argmax(cands []int) int {
	best := cands[0]
	for _, t := range cands[1:] {
		if p.prio[t] > p.prio[best] {
			best = t
		}
	}
	return best
}

// End implements Strategy: the next execution's change points are
// sampled over this one's length.
func (p *PCT) End(ex *Execution) {
	if n := len(ex.Choices); n > 16 {
		p.horizon = n
	}
}

// Executions returns how many executions have begun.
func (p *PCT) Executions() int { return p.exec }

// DFS enumerates the schedule tree exhaustively: each execution follows
// the recorded prefix of choices, then extends it first-candidate
// first; End backtracks the deepest frame with an untried sibling.
// When the prefix empties the space is exhausted. Requires the system
// under test to be deterministic given the schedule — verified at every
// step by comparing the recorded candidate sets against the rerun.
type DFS struct {
	// MaxSchedules caps the campaign (0 = run to exhaustion).
	MaxSchedules int

	prefix []dfsFrame
	done   bool
	// Schedules counts completed executions.
	Schedules int
	// Err records a determinism violation: a rerun presented different
	// candidates than the recorded prefix. The campaign stops.
	Err error
}

type dfsFrame struct {
	idx   int
	cands []int
}

// Begin implements Strategy.
func (d *DFS) Begin(nTasks int) bool {
	if d.done || d.Err != nil {
		return false
	}
	if d.MaxSchedules > 0 && d.Schedules >= d.MaxSchedules {
		return false
	}
	return true
}

// Pick implements Strategy.
func (d *DFS) Pick(step int, cands []int, last int) int {
	if step < len(d.prefix) {
		f := d.prefix[step]
		if !equalInts(f.cands, cands) {
			d.Err = fmt.Errorf("explore: nondeterministic rerun at step %d: recorded candidates %v, got %v", step, f.cands, cands)
			return defaultPick(cands, last)
		}
		return f.cands[f.idx]
	}
	d.prefix = append(d.prefix, dfsFrame{idx: 0, cands: append([]int(nil), cands...)})
	return cands[0]
}

// End implements Strategy: backtrack to the deepest untried sibling.
func (d *DFS) End(ex *Execution) {
	d.Schedules++
	for len(d.prefix) > 0 {
		f := &d.prefix[len(d.prefix)-1]
		if f.idx+1 < len(f.cands) {
			f.idx++
			return
		}
		d.prefix = d.prefix[:len(d.prefix)-1]
	}
	d.done = true
}

// Exhausted reports whether the whole schedule space was enumerated.
func (d *DFS) Exhausted() bool { return d.done && d.Err == nil }

// Replay follows a trace's switch directives, falling back to the
// inertial default wherever the trace is silent. A directive naming a
// task that is not runnable at its step is skipped (and Diverged set),
// so traces stay usable as regression anchors even when unrelated
// instrumentation shifts step numbers slightly — the oracle verdict,
// not the exact schedule, is what the regression asserts.
type Replay struct {
	Trace    *Trace
	Diverged bool

	ran  bool
	dirs map[int]int
}

// Begin implements Strategy (single execution).
func (r *Replay) Begin(nTasks int) bool {
	if r.ran {
		return false
	}
	r.ran = true
	r.dirs = make(map[int]int, len(r.Trace.Dirs))
	for _, d := range r.Trace.Dirs {
		r.dirs[d.Step] = d.Task
	}
	return true
}

// Pick implements Strategy.
func (r *Replay) Pick(step int, cands []int, last int) int {
	if task, ok := r.dirs[step]; ok {
		if containsInt(cands, task) {
			return task
		}
		r.Diverged = true
	}
	return defaultPick(cands, last)
}

// End implements Strategy.
func (r *Replay) End(ex *Execution) {}

// DirectivesFrom compresses a recorded schedule to the switch
// directives that deviate from the inertial default. Replaying exactly
// these directives through Replay reproduces the schedule decision for
// decision (same system, same seed inputs).
func DirectivesFrom(ex *Execution) []Directive {
	last := -1
	var out []Directive
	for i, ch := range ex.Choices {
		if def := defaultPick(ch.Candidates, last); ch.Task != def {
			out = append(out, Directive{Step: i, Task: ch.Task})
		}
		last = ch.Task
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
