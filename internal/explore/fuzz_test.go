package explore

import (
	"bytes"
	"testing"
)

// FuzzReplayTrace checks the trace parser never panics on arbitrary
// input and that every accepted trace round-trips through the canonical
// format: Format(Parse(x)) must itself parse to an identical trace.
// This is what makes checked-in regression traces safe to hand-edit.
func FuzzReplayTrace(f *testing.F) {
	f.Add([]byte("mtexplore-trace v1\n"))
	f.Add([]byte("mtexplore-trace v1\nmeta family mt-striped\nmeta workload ww-2x1\nswitch 0 1\nswitch 3 0\n"))
	f.Add([]byte("# comment\n\nmtexplore-trace v1\nmeta seed 42\nswitch 1000000000 99\n"))
	f.Add([]byte("mtexplore-trace v1\nswitch 01 2\n"))
	f.Add([]byte("mtexplore-trace v2\n"))
	f.Add([]byte("mtexplore-trace v1\nmeta k v\nmeta k w\n"))
	f.Add([]byte{0x00, 0xff, 0x0a})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTrace(data)
		if err != nil {
			return
		}
		out := tr.Format()
		tr2, err := ParseTrace(out)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%q", err, out)
		}
		if !bytes.Equal(out, tr2.Format()) {
			t.Fatalf("round-trip not stable:\n%q\nvs\n%q", out, tr2.Format())
		}
	})
}
