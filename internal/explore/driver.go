package explore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/classify"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/explore/hook"
	"repro/internal/oplog"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
)

// TxnSpec is one transaction of an explore workload.
type TxnSpec struct {
	ID  int
	Ops []txn.Op
}

// Workload is a (tiny) transaction mix the explorer drives. Task i of
// the controller runs Txns[i]; retries reuse the transaction id, as the
// runtime does.
type Workload struct {
	Name       string
	Txns       []TxnSpec
	MaxRetries int // additional attempts after a conflict abort
}

// NamedWorkload returns a registry workload by name. These are the
// fixed vocabulary trace files reference, so a checked-in trace
// reconstructs its whole scenario from metadata.
func NamedWorkload(name string) (Workload, bool) {
	switch name {
	case "disjoint-2x2":
		// Two transactions on disjoint items: no conflicts, used by the
		// DFS exhaustiveness bound (every interleaving is conflict-free).
		return Workload{Name: name, Txns: []TxnSpec{
			{ID: 1, Ops: []txn.Op{txn.R("a"), txn.W("a")}},
			{ID: 2, Ops: []txn.Op{txn.R("b"), txn.W("b")}},
		}}, true
	case "conflict-2x2":
		// The classic write-skew shape: each reads the other's write
		// target.
		return Workload{Name: name, MaxRetries: 2, Txns: []TxnSpec{
			{ID: 1, Ops: []txn.Op{txn.R("a"), txn.W("b")}},
			{ID: 2, Ops: []txn.Op{txn.R("b"), txn.W("a")}},
		}}, true
	case "ww-2x1":
		// Two blind writers on one item — the publish-inversion shape.
		return Workload{Name: name, MaxRetries: 2, Txns: []TxnSpec{
			{ID: 1, Ops: []txn.Op{txn.W("x")}},
			{ID: 2, Ops: []txn.Op{txn.W("x")}},
		}}, true
	case "rw-2x1":
		// Reader racing a writer on one item.
		return Workload{Name: name, MaxRetries: 2, Txns: []TxnSpec{
			{ID: 1, Ops: []txn.Op{txn.R("x"), txn.W("x")}},
			{ID: 2, Ops: []txn.Op{txn.R("x"), txn.W("x")}},
		}}, true
	case "mix-3x2":
		// Three transactions over two items, reads and writes crossing.
		return Workload{Name: name, MaxRetries: 3, Txns: []TxnSpec{
			{ID: 1, Ops: []txn.Op{txn.R("a"), txn.W("b")}},
			{ID: 2, Ops: []txn.Op{txn.W("a"), txn.R("b")}},
			{ID: 3, Ops: []txn.Op{txn.R("a"), txn.W("a")}},
		}}, true
	case "mix-3x3":
		// Three transactions over three items (chain conflicts).
		return Workload{Name: name, MaxRetries: 3, Txns: []TxnSpec{
			{ID: 1, Ops: []txn.Op{txn.R("a"), txn.W("b")}},
			{ID: 2, Ops: []txn.Op{txn.R("b"), txn.W("c")}},
			{ID: 3, Ops: []txn.Op{txn.R("c"), txn.W("a")}},
		}}, true
	}
	return Workload{}, false
}

// WorkloadNames lists the registry (CLI help, campaign sweeps).
func WorkloadNames() []string {
	return []string{"disjoint-2x2", "conflict-2x2", "ww-2x1", "rw-2x1", "mix-3x2", "mix-3x3"}
}

// Config selects and parameterizes the system under test.
type Config struct {
	// Family: mt | mt-striped | composite | dmt | nested.
	Family string
	// K is the vector size (default 2; composite subprotocol count).
	K int
	// Sites is the DMT cluster size (default 3).
	Sites int
	// Ks are the nested level sizes (default [2,2]).
	Ks []int
	// DeferWrites buffers writes to commit (mt / mt-striped).
	DeferWrites bool
	// StarvationAvoidance enables the III-D-4 reseed.
	StarvationAvoidance bool
	// UnsafePublish injects the seeded publish-inversion bug
	// (mt-striped, deferred).
	UnsafePublish bool
	// UnsafeEagerReclaim injects the seeded pooled-entry eager-reclaim
	// bug (mt-striped): finished entries are recycled while still
	// pinned as an item's most-recent timestamp, so conflict tests that
	// land after the reclaim see an empty vector.
	UnsafeEagerReclaim bool
	// Initial seeds the store (applied identically to subject and
	// reference, in sorted item order).
	Initial map[string]int64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 2
	}
	if c.Sites <= 0 {
		c.Sites = 3
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{2, 2}
	}
	return c
}

// build constructs the scheduler (+ its store). coarse selects the
// reference data path used by the parity replay.
func (c Config) build(coarse bool) (sched.Scheduler, *storage.Store) {
	c = c.withDefaults()
	store := storage.New()
	items := make([]string, 0, len(c.Initial))
	for x := range c.Initial {
		items = append(items, x)
	}
	sort.Strings(items)
	for _, x := range items {
		store.Set(x, c.Initial[x])
	}
	eopts := engine.Options{K: c.K, StarvationAvoidance: c.StarvationAvoidance}
	switch c.Family {
	case "mt":
		return sched.NewMT(store, sched.MTOptions{Core: eopts, DeferWrites: c.DeferWrites}), store
	case "mt-striped":
		if coarse {
			return sched.NewMT(store, sched.MTOptions{Core: eopts, DeferWrites: c.DeferWrites}), store
		}
		eopts.UnsafeEagerReclaim = c.UnsafeEagerReclaim
		s := sched.NewMTStriped(store, sched.MTOptions{Core: eopts, DeferWrites: c.DeferWrites})
		if c.UnsafePublish {
			s.SetUnsafePublish(true)
		}
		return s, store
	case "composite":
		if coarse {
			return sched.NewCompositeCoarse(store, c.K, engine.Options{K: 2}), store
		}
		return sched.NewComposite(store, c.K, engine.Options{K: 2}), store
	case "dmt":
		o := dmt.Options{K: c.K, Sites: c.Sites}
		if coarse {
			return sched.NewDMTCoarse(store, o), store
		}
		return sched.NewDMT(store, o), store
	case "nested":
		return sched.NewNested(store, sched.NestedOptions{Ks: c.Ks, Coarse: coarse}), store
	}
	panic("explore: unknown family " + c.Family)
}

// preemptFor is the family's sound default preemption policy: coarse
// MT holds one global mutex across protocol and store access, so only
// operation boundaries may park; the striped families also park at
// latch acquisitions and runtime restarts.
func (c Config) preemptFor() func(string) bool {
	if c.Family == "mt" {
		return PreemptOps
	}
	return DefaultPreempt
}

// record kinds of the driver's effect log.
type recKind int

const (
	recBegin recKind = iota
	recRead
	recWrite
	recCommit
	recAbort
)

// record is one driver-level operation outcome, stamped with its
// linearization point (the global order position of its first protocol
// event, or its completion when it had none).
type record struct {
	seq     int
	stamp   int
	kind    recKind
	txn     int
	attempt int
	item    string
	val     int64
	failed  bool
	blocker int
	reason  string
}

// Oracles selects which checks judge each execution. The zero value
// enables the standard three; ZeroExpress is opt-in (livelock
// campaigns).
type Oracles struct {
	NoParity     bool // skip coarse-reference replay parity
	NoDSR        bool // skip the committed-history DSR check
	NoUnique     bool // skip k-th-column uniqueness
	ZeroExpress  bool // fail on a zero backoff scale (express-lane livelock)
	AllowAborts  bool // unused reserve; aborts are always legal outcomes
	AllowedFails int  // unused reserve
}

// Failure describes one failed execution, with everything needed to
// reproduce it: the directives, and (from the campaign) the metadata.
type Failure struct {
	Oracle string
	Detail string
	Exec   *Execution
	Dirs   []Directive
	Seed   int64 // PCT per-execution seed, when applicable
}

func (f *Failure) Error() string {
	return fmt.Sprintf("%s: %s", f.Oracle, f.Detail)
}

// CampaignOptions configures RunCampaign.
type CampaignOptions struct {
	Config   Config
	Workload Workload
	Strategy Strategy
	// Preempt overrides the family default policy.
	Preempt func(string) bool
	// Runtime drives transactions through txn.Runtime (retry loop,
	// backoff, admission control) instead of calling the scheduler
	// directly; parity and DSR oracles are disabled in this mode (the
	// runtime's think/backoff machinery is outside the effect log).
	Runtime *RuntimeMode
	Oracles Oracles
	// MaxFailures stops the campaign after this many failing
	// executions (default 1).
	MaxFailures int
	MaxSteps    int
	Watchdog    time.Duration
}

// RuntimeMode parameterizes Runtime-driven campaigns.
type RuntimeMode struct {
	// MaxAttempts per transaction (conflict budget).
	MaxAttempts int
	// Backoff base for retry sleeps (keep tiny: sleeps hold the run
	// token).
	Backoff time.Duration
	// Aging wires an admission controller with these aging options
	// (limiter left at defaults, elder threshold raised so the crisis
	// gate stays open — its channel waits are uninstrumented).
	Aging *admit.AgingOptions
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Executions int
	Distinct   int
	Failures   []*Failure
	Exhausted  bool
	Elapsed    time.Duration
	Statuses   map[Status]int
}

// RunCampaign drives the strategy to exhaustion or budget, judging
// every execution with the configured oracles.
func RunCampaign(o CampaignOptions) *CampaignResult {
	if o.MaxFailures <= 0 {
		o.MaxFailures = 1
	}
	start := time.Now()
	res := &CampaignResult{Statuses: make(map[Status]int)}
	seen := make(map[string]bool)
	for o.Strategy.Begin(len(o.Workload.Txns)) {
		ex, recs, subject := runOnce(o)
		o.Strategy.End(ex)
		res.Executions++
		res.Statuses[ex.Status]++
		seen[scheduleKey(ex)] = true
		if f := judge(o, ex, recs, subject); f != nil {
			if p, ok := o.Strategy.(*PCT); ok {
				f.Seed = p.LastSeed
			}
			res.Failures = append(res.Failures, f)
			if len(res.Failures) >= o.MaxFailures {
				break
			}
		}
	}
	if d, ok := o.Strategy.(*DFS); ok {
		res.Exhausted = d.Exhausted()
		if d.Err != nil {
			res.Failures = append(res.Failures, &Failure{Oracle: "determinism", Detail: d.Err.Error()})
		}
	}
	res.Distinct = len(seen)
	res.Elapsed = time.Since(start)
	return res
}

// ReplayTrace runs the single execution a trace describes and judges
// it; o.Strategy is ignored. Returns the execution, its failure (nil
// when every oracle passed) and whether the replay diverged from the
// trace's directives.
func ReplayTrace(o CampaignOptions, tr *Trace) (*Execution, *Failure, bool) {
	r := &Replay{Trace: tr}
	o.Strategy = r
	if !r.Begin(len(o.Workload.Txns)) {
		panic("explore: replay strategy refused to begin")
	}
	ex, recs, subject := runOnce(o)
	r.End(ex)
	f := judge(o, ex, recs, subject)
	return ex, f, r.Diverged
}

// subjectState is what the oracles need from a finished execution.
type subjectState struct {
	sched sched.Scheduler
	store *storage.Store
}

// runOnce executes the workload once under a fresh system and
// controller.
func runOnce(o CampaignOptions) (*Execution, []record, *subjectState) {
	subject, store := o.Config.build(false)
	preempt := o.Preempt
	if preempt == nil {
		preempt = o.Config.preemptFor()
	}
	ctl := New(Options{
		Strategy: strategyShim{o.Strategy},
		Preempt:  preempt,
		MaxSteps: o.MaxSteps,
		Watchdog: o.Watchdog,
	})
	d := &driver{ctl: ctl, subject: subject}
	if o.Runtime != nil {
		d.setupRuntime(o, subject, store)
	} else {
		for _, spec := range o.Workload.Txns {
			spec := spec
			ctl.Go(fmt.Sprintf("txn%d", spec.ID), func() { d.runTxn(spec, o.Workload.MaxRetries) })
		}
	}
	ex := ctl.Run()
	return ex, d.recs, &subjectState{sched: subject, store: store}
}

// strategyShim adapts a campaign Strategy to the controller's Pick
// calls (Begin/End are driven by the campaign loop).
type strategyShim struct{ s Strategy }

func (sh strategyShim) Begin(n int) bool                         { return true }
func (sh strategyShim) Pick(step int, cands []int, last int) int { return sh.s.Pick(step, cands, last) }
func (sh strategyShim) End(ex *Execution)                        {}

// driver runs workload transactions against the subject scheduler,
// recording every operation outcome with its linearization stamp. The
// records slice is only ever appended by the task holding the run
// token, so the token's channel handoffs order the appends.
type driver struct {
	ctl     *Controller
	subject sched.Scheduler
	recs    []record
}

func (d *driver) rec(k recKind, txnID, attempt int, item string, val int64, err error) {
	r := record{
		seq:     len(d.recs),
		stamp:   d.ctl.EndOp(),
		kind:    k,
		txn:     txnID,
		attempt: attempt,
		item:    item,
		val:     val,
	}
	if err != nil {
		r.failed = true
		var ae *sched.AbortError
		if errors.As(err, &ae) {
			r.blocker = ae.Blocker
			r.reason = ae.Reason
		}
	}
	d.recs = append(d.recs, r)
}

// writeValue is the deterministic value written by op i of attempt a of
// txn id — schedules replay bit-identically because values depend only
// on the schedule-determined (id, attempt, op) triple.
func writeValue(id, attempt, i int) int64 {
	return int64(id)*1_000_000 + int64(attempt)*1_000 + int64(i)
}

// runTxn executes one transaction with retries, mirroring the
// runtime's shape (abort on failure, retry under the same id).
func (d *driver) runTxn(spec TxnSpec, maxRetries int) {
	for attempt := 0; ; attempt++ {
		d.ctl.BeginOp()
		d.subject.Begin(spec.ID)
		d.rec(recBegin, spec.ID, attempt, "", 0, nil)
		failed := false
		for i, op := range spec.Ops {
			hook.Yield("driver.op", op.Item, int64(spec.ID), int64(i))
			d.ctl.BeginOp()
			if op.Kind == oplog.Read {
				v, err := d.subject.Read(spec.ID, op.Item)
				d.rec(recRead, spec.ID, attempt, op.Item, v, err)
				if err != nil {
					failed = true
					break
				}
			} else {
				v := writeValue(spec.ID, attempt, i)
				err := d.subject.Write(spec.ID, op.Item, v)
				d.rec(recWrite, spec.ID, attempt, op.Item, v, err)
				if err != nil {
					failed = true
					break
				}
			}
		}
		if !failed {
			hook.Yield("driver.op", "commit", int64(spec.ID), int64(len(spec.Ops)))
			d.ctl.BeginOp()
			err := d.subject.Commit(spec.ID)
			d.rec(recCommit, spec.ID, attempt, "", 0, err)
			if err == nil {
				return
			}
		}
		d.ctl.BeginOp()
		d.subject.Abort(spec.ID)
		d.rec(recAbort, spec.ID, attempt, "", 0, nil)
		if attempt >= maxRetries {
			return
		}
	}
}

// setupRuntime registers tasks that drive transactions through
// txn.Runtime (livelock campaigns: the backoff-scale decision is the
// behavior under test).
func (d *driver) setupRuntime(o CampaignOptions, subject sched.Scheduler, store *storage.Store) {
	rm := o.Runtime
	rt := &txn.Runtime{
		Sched:       subject,
		Store:       store,
		MaxAttempts: rm.MaxAttempts,
		Backoff:     rm.Backoff,
	}
	if rm.Aging != nil {
		a := *rm.Aging
		if a.ElderAfter == 0 {
			// Keep the crisis gate open: its channel waits are not
			// instrumented, so an elder promotion would park a task
			// outside the controller.
			a.ElderAfter = 1 << 20
		}
		rt.Admit = admit.NewController(admit.Options{Aging: a})
	}
	for _, spec := range o.Workload.Txns {
		spec := spec
		ctl := d.ctl
		ctl.Go(fmt.Sprintf("txn%d", spec.ID), func() {
			hook.Yield("driver.op", "exec", int64(spec.ID), 0)
			rt.Exec(txn.Spec{ID: spec.ID, Ops: spec.Ops})
		})
	}
}

// judge runs the configured oracles over one execution. The first
// failing oracle wins (they are ordered from most to least direct).
func judge(o CampaignOptions, ex *Execution, recs []record, sub *subjectState) *Failure {
	fail := func(oracle, detail string) *Failure {
		return &Failure{Oracle: oracle, Detail: detail, Exec: ex, Dirs: DirectivesFrom(ex)}
	}
	switch ex.Status {
	case StatusPanic:
		return fail("panic", fmt.Sprintf("task %s panicked: %v", ex.PanicOn, ex.PanicVal))
	case StatusDeadlock:
		return fail("deadlock", fmt.Sprintf("blocked tasks: %s", strings.Join(ex.Blocked, ", ")))
	case StatusWatchdog:
		return fail("watchdog", "a task neither yielded nor finished within the watchdog interval")
	case StatusStepLimit:
		return fail("step-limit", fmt.Sprintf("schedule exceeded %d steps", len(ex.Choices)))
	}
	if o.Oracles.ZeroExpress {
		for _, ev := range ex.Events {
			if ev.Site == "txn.backoff" && ev.B == 0 {
				return fail("zero-express", fmt.Sprintf("txn %d retried with a zero backoff scale (stamp %d): the express lane hot-loops", ev.A, ev.Stamp))
			}
		}
	}
	if !o.Oracles.NoUnique {
		if detail := checkUnique(ex.Events); detail != "" {
			return fail("kth-column-uniqueness", detail)
		}
	}
	if o.Runtime == nil && !o.Oracles.NoDSR {
		if detail := checkDSR(recs); detail != "" {
			return fail("dsr", detail)
		}
	}
	if o.Runtime == nil && !o.Oracles.NoParity {
		if detail := checkParity(o.Config, recs, sub); detail != "" {
			return fail("parity", detail)
		}
	}
	return nil
}

// checkUnique verifies no column allocator handed out the same upper
// (or lower) value twice within the execution.
func checkUnique(events []Event) string {
	type key struct {
		aid int64
		val int64
	}
	seenU := make(map[key]bool)
	seenL := make(map[key]bool)
	for _, ev := range events {
		switch ev.Site {
		case "alloc.upper":
			k := key{ev.B, ev.A}
			if seenU[k] {
				return fmt.Sprintf("upper value %d allocated twice by allocator %d", ev.A, ev.B)
			}
			seenU[k] = true
		case "alloc.lower":
			k := key{ev.B, ev.A}
			if seenL[k] {
				return fmt.Sprintf("lower value %d allocated twice by allocator %d", ev.A, ev.B)
			}
			seenL[k] = true
		}
	}
	return ""
}

// committedLog builds the committed-effect oplog from the records:
// reads at their linearization stamps, writes at their commit's stamp
// in first-write order, aborted incarnations dropped — the same
// semantics as history.Recorder.
func committedLog(recs []record) *oplog.Log {
	type entry struct {
		stamp int
		seq   int
		op    oplog.Op
	}
	var out []entry
	type pendTxn struct {
		reads  []entry
		writes []string
		wseen  map[string]bool
	}
	pend := make(map[int]*pendTxn)
	for _, r := range recs {
		switch r.kind {
		case recBegin:
			pend[r.txn] = &pendTxn{wseen: make(map[string]bool)}
		case recRead:
			if p := pend[r.txn]; p != nil && !r.failed {
				p.reads = append(p.reads, entry{r.stamp, r.seq, oplog.R(r.txn, r.item)})
			}
		case recWrite:
			if p := pend[r.txn]; p != nil && !r.failed && !p.wseen[r.item] {
				p.wseen[r.item] = true
				p.writes = append(p.writes, r.item)
			}
		case recCommit:
			if p := pend[r.txn]; p != nil && !r.failed {
				out = append(out, p.reads...)
				for i, x := range p.writes {
					out = append(out, entry{r.stamp, r.seq*1000 + i, oplog.W(r.txn, x)})
				}
				delete(pend, r.txn)
			}
		case recAbort:
			delete(pend, r.txn)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].stamp != out[j].stamp {
			return out[i].stamp < out[j].stamp
		}
		return out[i].seq < out[j].seq
	})
	ops := make([]oplog.Op, len(out))
	for i, e := range out {
		ops[i] = e.op
	}
	return &oplog.Log{Ops: ops}
}

// checkDSR verifies the committed history is D-serializable.
func checkDSR(recs []record) string {
	log := committedLog(recs)
	if len(log.Ops) == 0 {
		return ""
	}
	if !classify.DSR(log) {
		return fmt.Sprintf("committed history not DSR: %s", log)
	}
	return ""
}

// checkParity replays the records in linearization-stamp order through
// a fresh coarse reference build of the same configuration and compares
// every outcome, then the final stores and counter watermarks. This is
// the equiv_test differential oracle generalized to arbitrary explored
// schedules: the stamp order is the subject's own decision order, so a
// correct subject must agree with the serial reference decision for
// decision.
func checkParity(cfg Config, recs []record, sub *subjectState) string {
	ref, refStore := cfg.build(true)
	ordered := append([]record(nil), recs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].stamp != ordered[j].stamp {
			return ordered[i].stamp < ordered[j].stamp
		}
		return ordered[i].seq < ordered[j].seq
	})
	for _, r := range ordered {
		switch r.kind {
		case recBegin:
			ref.Begin(r.txn)
		case recRead:
			v, err := ref.Read(r.txn, r.item)
			if d := outcomeDiff(r, v, err, true); d != "" {
				return d
			}
		case recWrite:
			err := ref.Write(r.txn, r.item, r.val)
			if d := outcomeDiff(r, 0, err, false); d != "" {
				return d
			}
		case recCommit:
			err := ref.Commit(r.txn)
			if d := outcomeDiff(r, 0, err, false); d != "" {
				return d
			}
		case recAbort:
			ref.Abort(r.txn)
		}
	}
	if d := storeDiff(sub.store.State(), refStore.State()); d != "" {
		return d
	}
	type durable interface{ WALCounters() (int64, int64) }
	ds, okS := sub.sched.(durable)
	dr, okR := ref.(durable)
	if okS && okR {
		sl, sh := ds.WALCounters()
		rl, rh := dr.WALCounters()
		if sl != rl || sh != rh {
			return fmt.Sprintf("counter watermark divergence: subject (%d,%d), reference (%d,%d)", sl, sh, rl, rh)
		}
	}
	return ""
}

// outcomeDiff compares one replayed reference outcome against the
// subject's record.
func outcomeDiff(r record, v int64, err error, isRead bool) string {
	name := [...]string{"begin", "read", "write", "commit", "abort"}[r.kind]
	if (err != nil) != r.failed {
		return fmt.Sprintf("%s(%d,%q) outcome divergence: subject failed=%v, reference err=%v", name, r.txn, r.item, r.failed, err)
	}
	if err != nil {
		var ae *sched.AbortError
		if errors.As(err, &ae) {
			if ae.Blocker != r.blocker || ae.Reason != r.reason {
				return fmt.Sprintf("%s(%d,%q) abort divergence: subject blocker=%d reason=%q, reference blocker=%d reason=%q",
					name, r.txn, r.item, r.blocker, r.reason, ae.Blocker, ae.Reason)
			}
		}
		return ""
	}
	if isRead && v != r.val {
		return fmt.Sprintf("read(%d,%q) value divergence: subject %d, reference %d", r.txn, r.item, r.val, v)
	}
	return ""
}

// storeDiff compares two committed states.
func storeDiff(a, b storage.State) string {
	if a.Version != b.Version {
		return fmt.Sprintf("store version divergence: subject %d, reference %d", a.Version, b.Version)
	}
	if d := mapDiff("value", a.Data, b.Data); d != "" {
		return d
	}
	return mapDiff("item version", a.ItemVers, b.ItemVers)
}

func mapDiff(what string, a, b map[string]int64) string {
	for x, v := range a {
		if bv, ok := b[x]; !ok || bv != v {
			return fmt.Sprintf("store %s divergence at %q: subject %d, reference %d (present=%v)", what, x, v, bv, ok)
		}
	}
	for x, v := range b {
		if _, ok := a[x]; !ok {
			return fmt.Sprintf("store %s divergence at %q: reference %d, subject missing", what, x, v)
		}
	}
	return ""
}

// scheduleKey fingerprints a schedule for distinct-interleaving
// counting.
func scheduleKey(ex *Execution) string {
	var b strings.Builder
	for _, ch := range ex.Choices {
		b.WriteString(strconv.Itoa(ch.Task))
		b.WriteByte(',')
	}
	return b.String()
}

// TraceFor packages a failure as a replayable trace with the campaign
// metadata needed to rebuild the scenario.
func TraceFor(o CampaignOptions, f *Failure) *Trace {
	cfg := o.Config.withDefaults()
	meta := map[string]string{
		"family":   cfg.Family,
		"workload": o.Workload.Name,
		"k":        strconv.Itoa(cfg.K),
		"oracle":   f.Oracle,
	}
	if cfg.Family == "dmt" {
		meta["sites"] = strconv.Itoa(cfg.Sites)
	}
	if cfg.Family == "nested" {
		ks := make([]string, len(cfg.Ks))
		for i, k := range cfg.Ks {
			ks[i] = strconv.Itoa(k)
		}
		meta["ks"] = strings.Join(ks, ",")
	}
	if cfg.DeferWrites {
		meta["defer"] = "1"
	}
	if cfg.StarvationAvoidance {
		meta["starvation"] = "1"
	}
	if cfg.UnsafePublish {
		meta["unsafe-publish"] = "1"
	}
	if cfg.UnsafeEagerReclaim {
		meta["unsafe-eager-reclaim"] = "1"
	}
	if o.Runtime != nil {
		meta["runtime"] = "1"
		meta["max-attempts"] = strconv.Itoa(o.Runtime.MaxAttempts)
		if o.Runtime.Aging != nil && o.Runtime.Aging.UnsafeZeroExpress {
			meta["unsafe-zero-express"] = "1"
		}
	}
	if f.Seed != 0 {
		meta["seed"] = strconv.FormatInt(f.Seed, 10)
	}
	return NewTrace(meta, f.Dirs)
}

// OptionsFromTrace rebuilds campaign options from a trace's metadata
// (the strategy is supplied by ReplayTrace). The unsafe injection flags
// are honored only when inject is true, so a regression test can assert
// both "bug trace fails with the bug present" and "same schedule passes
// on the fixed code".
func OptionsFromTrace(tr *Trace, inject bool) (CampaignOptions, error) {
	var o CampaignOptions
	w, ok := NamedWorkload(tr.Get("workload"))
	if !ok {
		return o, fmt.Errorf("explore: trace references unknown workload %q", tr.Get("workload"))
	}
	o.Workload = w
	o.Config.Family = tr.Get("family")
	if o.Config.Family == "" {
		return o, fmt.Errorf("explore: trace missing family")
	}
	if k := tr.Get("k"); k != "" {
		o.Config.K, _ = strconv.Atoi(k)
	}
	if s := tr.Get("sites"); s != "" {
		o.Config.Sites, _ = strconv.Atoi(s)
	}
	if ks := tr.Get("ks"); ks != "" {
		for _, p := range strings.Split(ks, ",") {
			v, _ := strconv.Atoi(p)
			o.Config.Ks = append(o.Config.Ks, v)
		}
	}
	o.Config.DeferWrites = tr.Get("defer") == "1"
	o.Config.StarvationAvoidance = tr.Get("starvation") == "1"
	o.Config.UnsafePublish = inject && tr.Get("unsafe-publish") == "1"
	o.Config.UnsafeEagerReclaim = inject && tr.Get("unsafe-eager-reclaim") == "1"
	if tr.Get("runtime") == "1" {
		ma, _ := strconv.Atoi(tr.Get("max-attempts"))
		if ma <= 0 {
			ma = 4
		}
		o.Runtime = &RuntimeMode{
			MaxAttempts: ma,
			Backoff:     time.Nanosecond,
			Aging:       &admit.AgingOptions{UnsafeZeroExpress: inject && tr.Get("unsafe-zero-express") == "1"},
		}
		o.Oracles.ZeroExpress = true
	}
	return o, nil
}
