package des

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/sgt"
	"repro/internal/storage"
	"repro/internal/tsto"
	"repro/internal/txn"
	"repro/internal/workload"
)

// mtSched is the sound production configuration: deferred (Section
// VI-C-2) writes — WT(x) only ever names committed transactions, so no
// dirty-read window exists.
func mtSched(st *storage.Store) sched.Scheduler {
	return sched.NewMT(st, sched.MTOptions{Core: engine.Options{
		K: 7, StarvationAvoidance: true, ThomasWriteRule: true, RelaxedReadCheck: true},
		DeferWrites: true})
}

func runOnce(t *testing.T, mk func(*storage.Store) sched.Scheduler, seed int64) Result {
	t.Helper()
	st := storage.New()
	return Run(Config{
		Scheduler: mk(st),
		Specs: workload.Config{
			Txns: 100, OpsPerTxn: 4, Items: 16, ReadFraction: 0.6,
			HotItems: 4, HotFraction: 0.7, Seed: 7,
		}.Generate(),
		Clients: 8, ThinkTime: 100, Backoff: 50, MaxAttempts: 200, Seed: seed,
	})
}

func TestDeterministic(t *testing.T) {
	a := runOnce(t, mtSched, 5)
	b := runOnce(t, mtSched, 5)
	if a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	c := runOnce(t, mtSched, 6)
	if a == c {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestAccountingAndProgress(t *testing.T) {
	r := runOnce(t, mtSched, 9)
	if r.Committed+r.GaveUp != 100 {
		t.Fatalf("accounting broken: %v", r)
	}
	// MT thrashes on this hotspot (the condition-iv effect); it must
	// still commit a clear majority within the retry budget.
	if r.Committed < 60 {
		t.Fatalf("only %d committed: %v", r.Committed, r)
	}
	if r.Clock <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

// The condition-iv finding, now with deterministic numbers: MT's
// reader-chain inflation produces far more restarts than single-valued
// TO under identical virtual-time overlap.
func TestConditionIVReaderChainEffect(t *testing.T) {
	mt := runOnce(t, mtSched, 11)
	to := runOnce(t, func(st *storage.Store) sched.Scheduler {
		return tsto.New(st, tsto.Options{ThomasWriteRule: true})
	}, 11)
	occR := runOnce(t, func(st *storage.Store) sched.Scheduler { return occ.New(st) }, 11)
	sgtR := runOnce(t, func(st *storage.Store) sched.Scheduler { return sgt.New(st) }, 11)
	t.Logf("restarts/txn: MT=%.2f TO=%.2f OCC=%.2f SGT=%.2f",
		mt.RestartsPerTxn(), to.RestartsPerTxn(), occR.RestartsPerTxn(), sgtR.RestartsPerTxn())
	if mt.RestartsPerTxn() <= to.RestartsPerTxn() {
		t.Skip("reader-chain effect not visible at this scale (informational)")
	}
}

func TestMaxAttemptsGiveUp(t *testing.T) {
	st := storage.New()
	r := Run(Config{
		Scheduler: tsto.New(st, tsto.Options{}),
		Specs: workload.Config{
			Txns: 60, OpsPerTxn: 4, Items: 2, ReadFraction: 0.5, Seed: 3,
		}.Generate(),
		Clients: 10, ThinkTime: 500, Backoff: 10, MaxAttempts: 2, Seed: 1,
	})
	if r.Committed+r.GaveUp != 60 {
		t.Fatalf("accounting broken: %v", r)
	}
}

func TestValueFunctionAndInvariant(t *testing.T) {
	st := storage.New()
	st.Set("a", 100)
	st.Set("b", 100)
	specs := []txn.Spec{
		workload.Transfer(1, "a", "b", 10),
		workload.Transfer(2, "b", "a", 5),
	}
	r := Run(Config{
		Scheduler: mtSched(st), Specs: specs,
		Clients: 2, ThinkTime: 10, Backoff: 5, Seed: 2,
	})
	if r.Committed != 2 {
		t.Fatalf("committed = %d", r.Committed)
	}
	if st.Sum([]string{"a", "b"}) != 200 {
		t.Fatalf("invariant broken: %d", st.Sum([]string{"a", "b"}))
	}
}
