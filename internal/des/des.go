// Package des is a deterministic discrete-event simulator for the
// concurrency-control experiments: clients issue transaction operations
// at virtual-time instants, schedulers decide, and aborted transactions
// restart after virtual backoff. Runs are exactly reproducible from the
// seed — unlike the wall-clock goroutine harness in internal/sim — which
// makes protocol comparisons (e.g. the condition-iv reader-chain effect)
// stable enough to quote.
//
// Only non-blocking schedulers fit the model (every scheduler in this
// repository except strict 2PL, whose lock waits would need explicit
// wait-queue modelling).
package des

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/oplog"
	"repro/internal/sched"
	"repro/internal/txn"
)

// Config describes a deterministic simulation.
type Config struct {
	// Scheduler under test (non-blocking).
	Scheduler sched.Scheduler
	// Specs is the workload; each spec runs as one client.
	Specs []txn.Spec
	// Clients bounds how many transactions run concurrently; further
	// specs start as earlier ones finish (multiprogramming level, the
	// paper's Section III-D-6a cites 8-10).
	Clients int
	// ThinkTime is the virtual delay between operations of a transaction.
	ThinkTime int64
	// Backoff is the virtual delay before a restart.
	Backoff int64
	// MaxAttempts bounds retries per transaction (0 = 100).
	MaxAttempts int
	// Seed drives start-time jitter.
	Seed int64
}

// Result aggregates a run.
type Result struct {
	Committed int
	GaveUp    int
	Restarts  int64
	Ops       int64
	// Clock is the final virtual time.
	Clock int64
}

// RestartsPerTxn returns the abort pressure.
func (r Result) RestartsPerTxn() float64 {
	n := r.Committed + r.GaveUp
	if n == 0 {
		return 0
	}
	return float64(r.Restarts) / float64(n)
}

// event is one scheduled client step.
type event struct {
	at  int64
	seq int64 // FIFO tiebreak: determinism
	cl  *client
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

// client executes one Spec as a state machine.
type client struct {
	spec     txn.Spec
	opIdx    int
	attempts int
	reads    map[string]int64
	begun    bool
}

// Run executes the simulation to completion.
func Run(cfg Config) Result {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result
	var q eventQueue
	heap.Init(&q)
	var seq int64
	var clock int64
	pending := append([]txn.Spec(nil), cfg.Specs...)

	schedule := func(c *client, at int64) {
		seq++
		heap.Push(&q, &event{at: at, seq: seq, cl: c})
	}
	admit := func(at int64) {
		if len(pending) == 0 {
			return
		}
		c := &client{spec: pending[0], reads: map[string]int64{}}
		pending = pending[1:]
		schedule(c, at+rng.Int63n(cfg.ThinkTime+1))
	}
	for i := 0; i < cfg.Clients && len(pending) > 0; i++ {
		admit(0)
	}

	s := cfg.Scheduler
	for q.Len() > 0 {
		e := heap.Pop(&q).(*event)
		clock = e.at
		c := e.cl
		if !c.begun {
			s.Begin(c.spec.ID)
			c.begun = true
			c.attempts++
		}
		finished, aborted := stepClient(s, c)
		res.Ops++
		switch {
		case finished:
			res.Committed++
			admit(clock)
		case aborted:
			s.Abort(c.spec.ID)
			if c.attempts >= cfg.MaxAttempts {
				res.GaveUp++
				admit(clock)
				continue
			}
			res.Restarts++
			c.opIdx = 0
			c.begun = false
			c.reads = map[string]int64{}
			schedule(c, clock+cfg.Backoff+rng.Int63n(cfg.Backoff+1))
		default:
			schedule(c, clock+cfg.ThinkTime)
		}
	}
	res.Clock = clock
	return res
}

// stepClient performs the client's next operation (or the commit).
func stepClient(s sched.Scheduler, c *client) (finished, aborted bool) {
	if c.opIdx >= len(c.spec.Ops) {
		if err := s.Commit(c.spec.ID); err != nil {
			return false, true
		}
		return true, false
	}
	op := c.spec.Ops[c.opIdx]
	if op.Kind == oplog.Read {
		v, err := s.Read(c.spec.ID, op.Item)
		if err != nil {
			return false, true
		}
		c.reads[op.Item] = v
	} else {
		var v int64
		if c.spec.Value != nil {
			v = c.spec.Value(op.Item, c.reads)
		} else {
			v = int64(c.spec.ID)
		}
		if err := s.Write(c.spec.ID, op.Item, v); err != nil {
			return false, true
		}
	}
	c.opIdx++
	return false, false
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("committed=%d gaveup=%d restarts=%d ops=%d clock=%d restarts/txn=%.2f",
		r.Committed, r.GaveUp, r.Restarts, r.Ops, r.Clock, r.RestartsPerTxn())
}
