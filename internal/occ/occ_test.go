package occ

import (
	"errors"
	"testing"

	"repro/internal/sched"
	"repro/internal/storage"
)

func TestReadWriteNeverFail(t *testing.T) {
	s := New(storage.New())
	s.Begin(1)
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
}

func TestValidationAbortsInvalidatedReader(t *testing.T) {
	st := storage.New()
	s := New(st)
	s.Begin(1)
	s.Begin(2)
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(2, "x", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T1's read of x is now stale.
	if err := s.Commit(1); !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
	if st.Get("x") != 5 {
		t.Fatal("committed write lost")
	}
}

func TestBlindWritersDontConflict(t *testing.T) {
	s := New(storage.New())
	s.Begin(1)
	s.Begin(2)
	if err := s.Write(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(2, "x", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T1 read nothing: serial validation lets it commit (write-write
	// resolved by commit order).
	if err := s.Commit(1); err != nil {
		t.Fatalf("blind writer aborted: %v", err)
	}
}

func TestStartBeforeCommitWindow(t *testing.T) {
	s := New(storage.New())
	s.Begin(2)
	if err := s.Write(2, "x", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T3 begins after T2 committed: reading x is safe.
	s.Begin(3)
	if _, err := s.Read(3, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(3); err != nil {
		t.Fatalf("reader starting after commit aborted: %v", err)
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	s := New(storage.New())
	s.Begin(1)
	if err := s.Write(1, "x", 9); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(1, "x")
	if err != nil || v != 9 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	// Reading the buffered value must NOT invalidate against own write.
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
}

func TestValidationLogGC(t *testing.T) {
	s := New(storage.New())
	for i := 1; i <= 50; i++ {
		s.Begin(i)
		if err := s.Write(i, "x", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	// No active transactions: the log must be fully pruned.
	if n := s.ValidationLogLen(); n != 0 {
		t.Fatalf("validation log length = %d, want 0", n)
	}
}
