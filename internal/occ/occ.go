// Package occ implements the optimistic concurrency-control baseline
// (Kung-Robinson serial validation), the "wait till the end of the
// transaction to make a commit/abort decision" comparator from the
// paper's introduction [13]. Reads and writes always succeed; at commit
// the transaction's read set is validated against the write sets of every
// transaction that committed after it began.
package occ

import (
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/storage"
)

// OCC is the optimistic runtime scheduler.
type OCC struct {
	mu    sync.Mutex
	store *storage.Store
	// committed is the validation log: write sets of committed
	// transactions tagged with their commit sequence number.
	committed []committedTxn
	commitSeq int64
	txns      map[int]*txnState
}

type committedTxn struct {
	seq    int64
	writes map[string]bool
}

type txnState struct {
	startSeq int64
	reads    map[string]bool
	writes   map[string]int64
}

// New returns an OCC scheduler over the store.
func New(store *storage.Store) *OCC {
	return &OCC{store: store, txns: make(map[int]*txnState)}
}

// Name implements sched.Scheduler.
func (o *OCC) Name() string { return "OCC" }

// Begin implements sched.Scheduler.
func (o *OCC) Begin(txn int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.txns[txn] = &txnState{
		startSeq: o.commitSeq,
		reads:    make(map[string]bool),
		writes:   make(map[string]int64),
	}
}

func (o *OCC) state(txn int) *txnState {
	st := o.txns[txn]
	if st == nil {
		panic(fmt.Sprintf("occ: operation on transaction %d without Begin", txn))
	}
	return st
}

// Read implements sched.Scheduler: always succeeds; the item joins the
// read set.
func (o *OCC) Read(txn int, item string) (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state(txn)
	if v, ok := st.writes[item]; ok {
		return v, nil
	}
	st.reads[item] = true
	return o.store.Get(item), nil
}

// Write implements sched.Scheduler: always succeeds; buffered.
func (o *OCC) Write(txn int, item string, v int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.state(txn).writes[item] = v
	return nil
}

// Commit implements sched.Scheduler: serial validation — abort if any
// transaction that committed after our start wrote something we read.
func (o *OCC) Commit(txn int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state(txn)
	for _, c := range o.committed {
		if c.seq <= st.startSeq {
			continue
		}
		for x := range c.writes {
			if st.reads[x] {
				delete(o.txns, txn)
				return sched.Abort(txn, 0, "read set invalidated by "+x)
			}
		}
	}
	o.commitSeq++
	ws := make(map[string]bool, len(st.writes))
	for x := range st.writes {
		ws[x] = true
	}
	if len(ws) > 0 {
		o.committed = append(o.committed, committedTxn{seq: o.commitSeq, writes: ws})
	}
	o.store.Apply(st.writes)
	delete(o.txns, txn)
	o.gc()
	return nil
}

// gc prunes validation-log entries older than every active transaction.
func (o *OCC) gc() {
	minStart := o.commitSeq
	for _, st := range o.txns {
		if st.startSeq < minStart {
			minStart = st.startSeq
		}
	}
	keep := o.committed[:0]
	for _, c := range o.committed {
		if c.seq > minStart {
			keep = append(keep, c)
		}
	}
	o.committed = keep
}

// Abort implements sched.Scheduler.
func (o *OCC) Abort(txn int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.txns, txn)
	o.gc()
}

// ValidationLogLen returns the current validation-log length (gc tests).
func (o *OCC) ValidationLogLen() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.committed)
}
