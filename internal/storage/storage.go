// Package storage provides the in-memory key-value store the transaction
// runtime executes against. Values are int64 (enough for the paper's
// workloads: account balances, counters). The store only ever holds
// committed data: schedulers buffer writes and Apply them atomically at
// commit (the paper's Section VI-C-2 "two-phase commit for each write
// operation" — temporary copies stay invisible to other transactions).
package storage

import "sync"

// ApplyEvent describes one committed batch, delivered to the journal
// hook in apply order (the hook runs under the store mutex, so event
// order is the true commit order). Writes and Vers are owned by the
// store only for the duration of the call: a hook that retains them
// must copy.
type ApplyEvent struct {
	// Txn is the committing transaction (0 for anonymous batches such
	// as Set and legacy Apply callers).
	Txn int
	// Writes is the committed batch.
	Writes map[string]int64
	// Vers maps each written item to its per-item version after this
	// batch.
	Vers map[string]int64
	// Version is the store version after this batch.
	Version int64
}

// Journal observes committed batches. It is called synchronously under
// the store mutex and must be fast (enqueue, don't fsync).
type Journal func(ApplyEvent)

// State is a consistent copy of the committed state — data, per-item
// versions and the batch counter — the unit a checkpoint persists and
// recovery restores.
type State struct {
	Data     map[string]int64
	ItemVers map[string]int64
	Version  int64
}

// Store is a concurrency-safe committed-state KV store.
type Store struct {
	mu   sync.RWMutex
	data map[string]int64
	// version counts committed Apply batches, handy for validation
	// schemes that need a cheap global commit counter.
	version int64
	// itemVer counts commits per item; partial rollback uses it to decide
	// whether a kept read value is still current.
	itemVer map[string]int64
	// journal, when set, observes every committed batch under the lock.
	journal Journal
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string]int64), itemVer: make(map[string]int64)}
}

// Restore builds a store from a recovered state. The maps are copied;
// a nil map restores as empty.
func Restore(st State) *Store {
	s := New()
	for x, v := range st.Data {
		s.data[x] = v
	}
	for x, v := range st.ItemVers {
		s.itemVer[x] = v
	}
	s.version = st.Version
	return s
}

// SetJournal installs (or clears, with nil) the journaling hook. Set it
// before traffic flows: batches applied earlier are not re-delivered.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	s.journal = j
	s.mu.Unlock()
}

// Get returns the committed value of item (0 if never written).
func (s *Store) Get(item string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[item]
}

// GetMany returns the committed values of several items atomically.
func (s *Store) GetMany(items []string) map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(items))
	for _, x := range items {
		out[x] = s.data[x]
	}
	return out
}

// Apply commits a write batch atomically and returns the new version.
func (s *Store) Apply(writes map[string]int64) int64 {
	return s.ApplyTxn(0, writes)
}

// ApplyTxn commits a write batch atomically on behalf of txn and
// returns the new version. The journal hook (if any) observes the
// batch under the lock, so journal order is commit order.
func (s *Store) ApplyTxn(txn int, writes map[string]int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	vers := make(map[string]int64, len(writes))
	for x, v := range writes {
		s.data[x] = v
		s.itemVer[x]++
		vers[x] = s.itemVer[x]
	}
	s.version++
	if s.journal != nil {
		s.journal(ApplyEvent{Txn: txn, Writes: writes, Vers: vers, Version: s.version})
	}
	return s.version
}

// Set commits a single value.
func (s *Store) Set(item string, v int64) {
	s.ApplyTxn(0, map[string]int64{item: v})
}

// ItemVersion returns the number of commits that wrote item (0 if never
// written).
func (s *Store) ItemVersion(item string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.itemVer[item]
}

// Version returns the number of committed batches so far.
func (s *Store) Version() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Snapshot returns a copy of the committed state.
func (s *Store) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.data))
	for x, v := range s.data {
		out[x] = v
	}
	return out
}

// State returns a consistent copy of the full committed state: data,
// per-item versions and the batch counter — what a checkpoint persists
// and what verification harnesses diff against a shadow store.
func (s *Store) State() State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := State{
		Data:     make(map[string]int64, len(s.data)),
		ItemVers: make(map[string]int64, len(s.itemVer)),
		Version:  s.version,
	}
	for x, v := range s.data {
		st.Data[x] = v
	}
	for x, v := range s.itemVer {
		st.ItemVers[x] = v
	}
	return st
}

// Sum returns the sum of the committed values of the given items
// (atomically), used by invariant checks such as the banking example.
func (s *Store) Sum(items []string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum int64
	for _, x := range items {
		sum += s.data[x]
	}
	return sum
}
