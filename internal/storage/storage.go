// Package storage provides the in-memory key-value store the transaction
// runtime executes against. Values are int64 (enough for the paper's
// workloads: account balances, counters). The store only ever holds
// committed data: schedulers buffer writes and Apply them atomically at
// commit (the paper's Section VI-C-2 "two-phase commit for each write
// operation" — temporary copies stay invisible to other transactions).
package storage

import "sync"

// Store is a concurrency-safe committed-state KV store.
type Store struct {
	mu   sync.RWMutex
	data map[string]int64
	// version counts committed Apply batches, handy for validation
	// schemes that need a cheap global commit counter.
	version int64
	// itemVer counts commits per item; partial rollback uses it to decide
	// whether a kept read value is still current.
	itemVer map[string]int64
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string]int64), itemVer: make(map[string]int64)}
}

// Get returns the committed value of item (0 if never written).
func (s *Store) Get(item string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[item]
}

// GetMany returns the committed values of several items atomically.
func (s *Store) GetMany(items []string) map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(items))
	for _, x := range items {
		out[x] = s.data[x]
	}
	return out
}

// Apply commits a write batch atomically and returns the new version.
func (s *Store) Apply(writes map[string]int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for x, v := range writes {
		s.data[x] = v
		s.itemVer[x]++
	}
	s.version++
	return s.version
}

// Set commits a single value.
func (s *Store) Set(item string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[item] = v
	s.itemVer[item]++
	s.version++
}

// ItemVersion returns the number of commits that wrote item (0 if never
// written).
func (s *Store) ItemVersion(item string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.itemVer[item]
}

// Version returns the number of committed batches so far.
func (s *Store) Version() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Snapshot returns a copy of the committed state.
func (s *Store) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.data))
	for x, v := range s.data {
		out[x] = v
	}
	return out
}

// Sum returns the sum of the committed values of the given items
// (atomically), used by invariant checks such as the banking example.
func (s *Store) Sum(items []string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum int64
	for _, x := range items {
		sum += s.data[x]
	}
	return sum
}
