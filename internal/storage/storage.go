// Package storage provides the in-memory key-value store the transaction
// runtime executes against. Values are int64 (enough for the paper's
// workloads: account balances, counters). The store only ever holds
// committed data: schedulers buffer writes and Apply them atomically at
// commit (the paper's Section VI-C-2 "two-phase commit for each write
// operation" — temporary copies stay invisible to other transactions).
//
// The map is hash-sharded with a per-shard RWMutex so reads and commits
// on disjoint items proceed concurrently; the only global serialization
// point is the commit mutex that sequences the batch version counter
// and the journal hook. A committing batch holds its items' shard locks
// ACROSS the journal call, so for any single item the journal order, the
// per-item version order and the in-memory apply order always agree —
// the property WAL replay correctness rests on.
package storage

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explore/hook"
)

// shardCount is the number of map shards (power of two).
const shardCount = 64

// ApplyEvent describes one committed batch, delivered to the journal
// hook in apply order (the hook runs under the commit mutex, so event
// order is the true commit order). Writes and Vers are owned by the
// store only for the duration of the call: a hook that retains them
// must copy.
type ApplyEvent struct {
	// Txn is the committing transaction (0 for anonymous batches such
	// as Set and legacy Apply callers).
	Txn int
	// Writes is the committed batch.
	Writes map[string]int64
	// Vers maps each written item to its per-item version after this
	// batch.
	Vers map[string]int64
	// Version is the store version after this batch.
	Version int64
}

// Journal observes committed batches. It is called synchronously under
// the commit mutex (with the batch's shard locks still held) and must
// be fast (enqueue, don't fsync).
type Journal func(ApplyEvent)

// State is a consistent copy of the committed state — data, per-item
// versions and the batch counter — the unit a checkpoint persists and
// recovery restores.
type State struct {
	Data     map[string]int64
	ItemVers map[string]int64
	Version  int64
}

// shard is one slice of the keyspace with its own lock.
type shard struct {
	mu      sync.RWMutex
	data    map[string]int64
	itemVer map[string]int64
}

// Store is a concurrency-safe committed-state KV store, sharded by item
// hash.
type Store struct {
	shards [shardCount]shard
	// commitMu is the global ordering point: it sequences the batch
	// version counter and the journal hook. It nests strictly inside the
	// shard locks (ApplyTxn holds the batch's shards, then commitMu).
	commitMu sync.Mutex
	// version counts committed Apply batches, handy for validation
	// schemes that need a cheap global commit counter. Guarded by
	// commitMu.
	version int64
	// journal, when set, observes every committed batch under commitMu.
	journal Journal
	// simLatency, when non-zero, is a per-access sleep (ns) modeling a
	// paged or remote storage backend; see SetSimLatency.
	simLatency atomic.Int64
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].data = make(map[string]int64)
		s.shards[i].itemVer = make(map[string]int64)
	}
	return s
}

// Restore builds a store from a recovered state. The maps are copied;
// a nil map restores as empty.
func Restore(st State) *Store {
	s := New()
	for x, v := range st.Data {
		sh := s.shardOf(x)
		sh.data[x] = v
	}
	for x, v := range st.ItemVers {
		sh := s.shardOf(x)
		sh.itemVer[x] = v
	}
	s.version = st.Version
	return s
}

// fnv1a hashes an item name (inlined FNV-1a, avoiding an allocation per
// access).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (s *Store) shardOf(item string) *shard {
	return &s.shards[fnv1a(item)&(shardCount-1)]
}

// SetSimLatency installs a simulated per-access latency: every Get and
// every ApplyTxn sleeps d while holding the affected items' shard
// locks, modeling a store whose items live on a paged buffer pool or a
// remote backend rather than in local RAM. Benchmarks use it to expose
// what a scheduler's lock granularity costs when data access is not
// free: a scheduler that holds a global mutex across storage access
// serializes these sleeps, one that holds per-item latches overlaps
// them. Zero (the default) disables the sleep.
func (s *Store) SetSimLatency(d time.Duration) { s.simLatency.Store(int64(d)) }

func (s *Store) simSleep() {
	if d := s.simLatency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// SetJournal installs (or clears, with nil) the journaling hook. Set it
// before traffic flows: batches applied earlier are not re-delivered.
func (s *Store) SetJournal(j Journal) {
	s.commitMu.Lock()
	s.journal = j
	s.commitMu.Unlock()
}

// Get returns the committed value of item (0 if never written).
func (s *Store) Get(item string) int64 {
	hook.Yield("storage.get", item, 0, 0)
	sh := s.shardOf(item)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s.simSleep()
	return sh.data[item]
}

// lockAll acquires every shard lock in index order (write mode) and
// returns an unlock function. Whole-store snapshots use it; the index
// order matches lockShards, so snapshots and commits cannot deadlock.
func (s *Store) lockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := shardCount - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}
}

// rlockAll acquires every shard lock in index order (read mode).
func (s *Store) rlockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	return func() {
		for i := shardCount - 1; i >= 0; i-- {
			s.shards[i].mu.RUnlock()
		}
	}
}

// GetMany returns the committed values of several items atomically.
func (s *Store) GetMany(items []string) map[string]int64 {
	unlock := s.rlockAll()
	defer unlock()
	s.simSleep()
	out := make(map[string]int64, len(items))
	for _, x := range items {
		out[x] = s.shardOf(x).data[x]
	}
	return out
}

// Apply commits a write batch atomically and returns the new version.
func (s *Store) Apply(writes map[string]int64) int64 {
	return s.ApplyTxn(0, writes)
}

// lockShards acquires the (deduplicated) shard locks covering the batch
// in ascending index order and returns an unlock function.
func (s *Store) lockShards(writes map[string]int64) func() {
	var idx []int
	seen := [shardCount]bool{}
	for x := range writes {
		i := int(fnv1a(x) & (shardCount - 1))
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		s.shards[i].mu.Lock()
	}
	return func() {
		for j := len(idx) - 1; j >= 0; j-- {
			s.shards[idx[j]].mu.Unlock()
		}
	}
}

// ApplyTxn commits a write batch atomically on behalf of txn and
// returns the new version. The batch's shard locks are held across the
// journal call, and the version bump plus the journal hook run under
// the commit mutex: journal order is commit order globally, and agrees
// with the per-item version order item by item.
func (s *Store) ApplyTxn(txn int, writes map[string]int64) int64 {
	hook.Yield("storage.apply", "", int64(txn), 0)
	unlock := s.lockShards(writes)
	defer unlock()
	s.simSleep()
	vers := make(map[string]int64, len(writes))
	for x, v := range writes {
		sh := s.shardOf(x)
		sh.data[x] = v
		sh.itemVer[x]++
		vers[x] = sh.itemVer[x]
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.version++
	// The journal boundary event: emitted under commitMu with the shard
	// locks held, so observation order IS global commit order (never a
	// preemption point — commitMu is uninstrumented).
	hook.Observe("storage.commit", "", int64(txn), s.version)
	if s.journal != nil {
		s.journal(ApplyEvent{Txn: txn, Writes: writes, Vers: vers, Version: s.version})
	}
	return s.version
}

// Set commits a single value.
func (s *Store) Set(item string, v int64) {
	s.ApplyTxn(0, map[string]int64{item: v})
}

// ItemVersion returns the number of commits that wrote item (0 if never
// written).
func (s *Store) ItemVersion(item string) int64 {
	sh := s.shardOf(item)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.itemVer[item]
}

// Version returns the number of committed batches so far.
func (s *Store) Version() int64 {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.version
}

// Snapshot returns a copy of the committed state.
func (s *Store) Snapshot() map[string]int64 {
	unlock := s.rlockAll()
	defer unlock()
	out := make(map[string]int64)
	for i := range s.shards {
		for x, v := range s.shards[i].data {
			out[x] = v
		}
	}
	return out
}

// State returns a consistent copy of the full committed state: data,
// per-item versions and the batch counter — what a checkpoint persists
// and what verification harnesses diff against a shadow copy. It locks
// every shard plus the commit mutex, so no batch is half-visible.
func (s *Store) State() State {
	unlock := s.rlockAll()
	defer unlock()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	st := State{
		Data:     make(map[string]int64),
		ItemVers: make(map[string]int64),
		Version:  s.version,
	}
	for i := range s.shards {
		for x, v := range s.shards[i].data {
			st.Data[x] = v
		}
		for x, v := range s.shards[i].itemVer {
			st.ItemVers[x] = v
		}
	}
	return st
}

// Sum returns the sum of the committed values of the given items
// (atomically), used by invariant checks such as the banking example.
func (s *Store) Sum(items []string) int64 {
	unlock := s.rlockAll()
	defer unlock()
	var sum int64
	for _, x := range items {
		sum += s.shardOf(x).data[x]
	}
	return sum
}
