// Package storage provides the in-memory key-value store the transaction
// runtime executes against. Values are int64 (enough for the paper's
// workloads: account balances, counters). The store only ever holds
// committed data: schedulers buffer writes and Apply them atomically at
// commit (the paper's Section VI-C-2 "two-phase commit for each write
// operation" — temporary copies stay invisible to other transactions).
//
// Items are interned to dense int32 ids (the store owns the intern
// table and can share it with a scheduler, so both agree on ids), and
// committed state lives in dense per-shard slices indexed by id: the
// steady-state Get/ApplyTxnIDs path hashes no strings and allocates
// nothing. The keyspace is sharded with a per-shard RWMutex so reads
// and commits on disjoint items proceed concurrently; the only global
// serialization point is the commit mutex that sequences the batch
// version counter and the journal hook. A committing batch holds its
// items' shard locks ACROSS the journal call, so for any single item
// the journal order, the per-item version order and the in-memory
// apply order always agree — the property WAL replay correctness rests
// on.
package storage

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explore/hook"
	"repro/internal/intern"
)

// shardCount is the number of shards (power of two).
const shardCount = 64

// ApplyEvent describes one committed batch, delivered to the journal
// hook in apply order (the hook runs under the commit mutex, so event
// order is the true commit order). Writes and Vers are owned by the
// store only for the duration of the call: a hook that retains them
// must copy.
type ApplyEvent struct {
	// Txn is the committing transaction (0 for anonymous batches such
	// as Set and legacy Apply callers).
	Txn int
	// Writes is the committed batch.
	Writes map[string]int64
	// Vers maps each written item to its per-item version after this
	// batch.
	Vers map[string]int64
	// Version is the store version after this batch.
	Version int64
}

// Journal observes committed batches. It is called synchronously under
// the commit mutex (with the batch's shard locks still held) and must
// be fast (enqueue, don't fsync).
type Journal func(ApplyEvent)

// State is a consistent copy of the committed state — data, per-item
// versions and the batch counter — the unit a checkpoint persists and
// recovery restores.
type State struct {
	Data     map[string]int64
	ItemVers map[string]int64
	Version  int64
}

// shard is one slice of the id space with its own lock. An item with
// id n lives at index n >> 6 of shard n & 63 (ids are dense, so shards
// grow in lockstep with the item count); the slices grow only under
// the shard's write lock.
type shard struct {
	mu      sync.RWMutex
	vals    []int64
	vers    []int64
	written []bool // item has committed data (vals valid)
}

// ensure grows the shard to cover in-shard index li (write lock held).
func (sh *shard) ensure(li int) {
	for li >= len(sh.vals) {
		sh.vals = append(sh.vals, 0)
		sh.vers = append(sh.vers, 0)
		sh.written = append(sh.written, false)
	}
}

// Store is a concurrency-safe committed-state KV store, sharded by
// interned item id.
type Store struct {
	names  *intern.Table
	shards [shardCount]shard
	// commitMu is the global ordering point: it sequences the batch
	// version counter and the journal hook. It nests strictly inside the
	// shard locks (ApplyTxn holds the batch's shards, then commitMu).
	commitMu sync.Mutex
	// version counts committed Apply batches, handy for validation
	// schemes that need a cheap global commit counter. Guarded by
	// commitMu.
	version int64
	// journal, when set, observes every committed batch under commitMu;
	// jset mirrors journal != nil so the apply path can skip building
	// the event maps without taking commitMu early.
	journal Journal
	jset    atomic.Bool
	// simLatency, when non-zero, is a per-access sleep (ns) modeling a
	// paged or remote storage backend; see SetSimLatency.
	simLatency atomic.Int64
}

// New returns an empty store.
func New() *Store {
	return &Store{names: intern.New()}
}

// Restore builds a store from a recovered state. The state is copied;
// a nil map restores as empty.
func Restore(st State) *Store {
	s := New()
	for x, v := range st.Data {
		id := s.names.ID(x)
		sh, li := s.shardOf(id)
		sh.ensure(li)
		sh.vals[li] = v
		sh.written[li] = true
	}
	for x, v := range st.ItemVers {
		id := s.names.ID(x)
		sh, li := s.shardOf(id)
		sh.ensure(li)
		sh.vers[li] = v
	}
	s.version = st.Version
	return s
}

// Interner exposes the store's item-intern table, so a scheduler built
// with engine.NewStripedInterned shares the store's id space and the
// runtime adapter can drive the id-indexed fast path end to end.
func (s *Store) Interner() *intern.Table { return s.names }

// IDOf interns item and returns its dense id.
func (s *Store) IDOf(item string) int32 { return s.names.ID(item) }

func (s *Store) shardOf(id int32) (*shard, int) {
	return &s.shards[int(uint32(id))&(shardCount-1)], int(id) >> 6
}

// SetSimLatency installs a simulated per-access latency: every Get and
// every ApplyTxn sleeps d while holding the affected items' shard
// locks, modeling a store whose items live on a paged buffer pool or a
// remote backend rather than in local RAM. Benchmarks use it to expose
// what a scheduler's lock granularity costs when data access is not
// free: a scheduler that holds a global mutex across storage access
// serializes these sleeps, one that holds per-item latches overlaps
// them. Zero (the default) disables the sleep.
func (s *Store) SetSimLatency(d time.Duration) { s.simLatency.Store(int64(d)) }

func (s *Store) simSleep() {
	if d := s.simLatency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// SetJournal installs (or clears, with nil) the journaling hook. Set it
// before traffic flows: batches applied earlier are not re-delivered.
func (s *Store) SetJournal(j Journal) {
	s.commitMu.Lock()
	s.journal = j
	s.jset.Store(j != nil)
	s.commitMu.Unlock()
}

// Get returns the committed value of item (0 if never written).
func (s *Store) Get(item string) int64 {
	return s.GetID(s.names.ID(item))
}

// GetID is Get keyed by interned id: the allocation-free fast path.
func (s *Store) GetID(id int32) int64 {
	if hook.Enabled() {
		hook.Yield("storage.get", s.names.Name(id), 0, 0)
	}
	sh, li := s.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s.simSleep()
	if li >= len(sh.vals) {
		return 0
	}
	return sh.vals[li]
}

// lockAll acquires every shard lock in index order (write mode) and
// returns an unlock function. Whole-store snapshots use it; the index
// order matches the apply path, so snapshots and commits cannot
// deadlock.
func (s *Store) lockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := shardCount - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}
}

// rlockAll acquires every shard lock in index order (read mode).
func (s *Store) rlockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	return func() {
		for i := shardCount - 1; i >= 0; i-- {
			s.shards[i].mu.RUnlock()
		}
	}
}

// GetMany returns the committed values of several items atomically.
func (s *Store) GetMany(items []string) map[string]int64 {
	unlock := s.rlockAll()
	defer unlock()
	s.simSleep()
	out := make(map[string]int64, len(items))
	for _, x := range items {
		out[x] = s.lockedGet(s.names.ID(x))
	}
	return out
}

// lockedGet reads one value with the item's shard lock already held.
func (s *Store) lockedGet(id int32) int64 {
	sh, li := s.shardOf(id)
	if li >= len(sh.vals) {
		return 0
	}
	return sh.vals[li]
}

// Apply commits a write batch atomically and returns the new version.
func (s *Store) Apply(writes map[string]int64) int64 {
	return s.ApplyTxn(0, writes)
}

// shardSet is the fixed-size scratch for a batch's deduplicated shard
// indices; it lives on the apply path's stack.
type shardSet struct {
	seen [shardCount]bool
	idx  [shardCount]int
	n    int
}

func (ss *shardSet) add(id int32) {
	i := int(uint32(id)) & (shardCount - 1)
	if !ss.seen[i] {
		ss.seen[i] = true
		ss.idx[ss.n] = i
		ss.n++
	}
}

// lock acquires the collected shards in ascending index order.
func (ss *shardSet) lock(s *Store) {
	slices.Sort(ss.idx[:ss.n])
	for _, i := range ss.idx[:ss.n] {
		s.shards[i].mu.Lock()
	}
}

func (ss *shardSet) unlock(s *Store) {
	for j := ss.n - 1; j >= 0; j-- {
		s.shards[ss.idx[j]].mu.Unlock()
	}
}

// ApplyTxn commits a write batch atomically on behalf of txn and
// returns the new version. The batch's shard locks are held across the
// journal call, and the version bump plus the journal hook run under
// the commit mutex: journal order is commit order globally, and agrees
// with the per-item version order item by item.
func (s *Store) ApplyTxn(txn int, writes map[string]int64) int64 {
	hook.Yield("storage.apply", "", int64(txn), 0)
	var ss shardSet
	for x := range writes {
		ss.add(s.names.ID(x))
	}
	ss.lock(s)
	defer ss.unlock(s)
	s.simSleep()
	var vers map[string]int64
	if s.jset.Load() {
		vers = make(map[string]int64, len(writes))
	}
	for x, v := range writes {
		ver := s.applyOne(s.names.ID(x), v)
		if vers != nil {
			vers[x] = ver
		}
	}
	return s.finishCommit(txn, writes, vers)
}

// ApplyTxnIDs is ApplyTxn keyed by interned ids: ids[i] is written
// vals[i]. Duplicate ids apply in slice order. Allocation-free unless
// a journal is installed (the event's maps are then materialized from
// the intern table).
func (s *Store) ApplyTxnIDs(txn int, ids []int32, vals []int64) int64 {
	hook.Yield("storage.apply", "", int64(txn), 0)
	var ss shardSet
	for _, id := range ids {
		ss.add(id)
	}
	ss.lock(s)
	defer ss.unlock(s)
	s.simSleep()
	var writes, vers map[string]int64
	if s.jset.Load() {
		writes = make(map[string]int64, len(ids))
		vers = make(map[string]int64, len(ids))
	}
	for i, id := range ids {
		ver := s.applyOne(id, vals[i])
		if writes != nil {
			x := s.names.Name(id)
			writes[x] = vals[i]
			vers[x] = ver
		}
	}
	return s.finishCommit(txn, writes, vers)
}

// applyOne writes one value (shard lock held) and returns the item's
// new version.
func (s *Store) applyOne(id int32, v int64) int64 {
	sh, li := s.shardOf(id)
	sh.ensure(li)
	sh.vals[li] = v
	sh.written[li] = true
	sh.vers[li]++
	return sh.vers[li]
}

// finishCommit sequences the batch under the commit mutex (shard locks
// still held) and emits the journal event.
func (s *Store) finishCommit(txn int, writes, vers map[string]int64) int64 {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.version++
	// The journal boundary event: emitted under commitMu with the shard
	// locks held, so observation order IS global commit order (never a
	// preemption point — commitMu is uninstrumented).
	hook.Observe("storage.commit", "", int64(txn), s.version)
	if s.journal != nil {
		if writes == nil {
			writes = map[string]int64{}
		}
		if vers == nil {
			vers = map[string]int64{}
		}
		s.journal(ApplyEvent{Txn: txn, Writes: writes, Vers: vers, Version: s.version})
	}
	return s.version
}

// Set commits a single value.
func (s *Store) Set(item string, v int64) {
	s.ApplyTxn(0, map[string]int64{item: v})
}

// ItemVersion returns the number of commits that wrote item (0 if never
// written).
func (s *Store) ItemVersion(item string) int64 {
	id, ok := s.names.Lookup(item)
	if !ok {
		return 0
	}
	sh, li := s.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if li >= len(sh.vers) {
		return 0
	}
	return sh.vers[li]
}

// Version returns the number of committed batches so far.
func (s *Store) Version() int64 {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.version
}

// Snapshot returns a copy of the committed state.
func (s *Store) Snapshot() map[string]int64 {
	unlock := s.rlockAll()
	defer unlock()
	out := make(map[string]int64)
	for id, name := range s.names.Names() {
		sh, li := s.shardOf(int32(id))
		if li < len(sh.written) && sh.written[li] {
			out[name] = sh.vals[li]
		}
	}
	return out
}

// State returns a consistent copy of the full committed state: data,
// per-item versions and the batch counter — what a checkpoint persists
// and what verification harnesses diff against a shadow copy. It locks
// every shard plus the commit mutex, so no batch is half-visible.
func (s *Store) State() State {
	unlock := s.rlockAll()
	defer unlock()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	st := State{
		Data:     make(map[string]int64),
		ItemVers: make(map[string]int64),
		Version:  s.version,
	}
	for id, name := range s.names.Names() {
		sh, li := s.shardOf(int32(id))
		if li >= len(sh.written) {
			continue
		}
		if sh.written[li] {
			st.Data[name] = sh.vals[li]
		}
		if sh.vers[li] > 0 {
			st.ItemVers[name] = sh.vers[li]
		}
	}
	return st
}

// Sum returns the sum of the committed values of the given items
// (atomically), used by invariant checks such as the banking example.
func (s *Store) Sum(items []string) int64 {
	unlock := s.rlockAll()
	defer unlock()
	var sum int64
	for _, x := range items {
		if id, ok := s.names.Lookup(x); ok {
			sum += s.lockedGet(id)
		}
	}
	return sum
}
