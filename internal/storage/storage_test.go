package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestGetSetApply(t *testing.T) {
	s := New()
	if s.Get("x") != 0 {
		t.Fatal("fresh item not 0")
	}
	s.Set("x", 7)
	if s.Get("x") != 7 {
		t.Fatal("Set not visible")
	}
	v0 := s.Version()
	s.Apply(map[string]int64{"x": 1, "y": 2})
	if s.Get("x") != 1 || s.Get("y") != 2 {
		t.Fatal("Apply not visible")
	}
	if s.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", s.Version(), v0+1)
	}
}

func TestGetManySnapshotSum(t *testing.T) {
	s := New()
	s.Apply(map[string]int64{"a": 1, "b": 2, "c": 3})
	m := s.GetMany([]string{"a", "c", "zz"})
	if m["a"] != 1 || m["c"] != 3 || m["zz"] != 0 {
		t.Fatalf("GetMany = %v", m)
	}
	if got := s.Sum([]string{"a", "b", "c"}); got != 6 {
		t.Fatalf("Sum = %d", got)
	}
	snap := s.Snapshot()
	s.Set("a", 100)
	if snap["a"] != 1 {
		t.Fatal("Snapshot aliases store")
	}
}

func TestConcurrentApply(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Apply(map[string]int64{"x": int64(w)})
				s.Get("x")
				s.Sum([]string{"x"})
			}
		}(w)
	}
	wg.Wait()
	if s.Version() != 800 {
		t.Fatalf("version = %d, want 800", s.Version())
	}
}

// TestJournalOrderMatchesItemVersions hammers ApplyTxn from many
// goroutines and asserts the property WAL replay rests on: for every
// item, the journal delivers that item's versions in strictly
// ascending contiguous order (the batch holds its shard locks across
// the journal call), and the global batch versions are contiguous.
func TestJournalOrderMatchesItemVersions(t *testing.T) {
	s := New()
	var mu sync.Mutex
	lastItemVer := make(map[string]int64)
	var lastVersion int64
	var violations []string
	s.SetJournal(func(ev ApplyEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Version != lastVersion+1 {
			violations = append(violations, "global version gap")
		}
		lastVersion = ev.Version
		for x, v := range ev.Vers {
			if v != lastItemVer[x]+1 {
				violations = append(violations, "item version out of order: "+x)
			}
			lastItemVer[x] = v
		}
	})
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				batch := map[string]int64{
					items[(w+i)%len(items)]:   int64(i),
					items[(w+i+3)%len(items)]: int64(i),
				}
				s.ApplyTxn(w, batch)
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(violations) > 0 {
		t.Fatalf("%d ordering violations, first: %s", len(violations), violations[0])
	}
	if lastVersion != 8*200 {
		t.Fatalf("journal saw %d batches, want %d", lastVersion, 8*200)
	}
	for x, v := range lastItemVer {
		if got := s.ItemVersion(x); got != v {
			t.Fatalf("item %s: store version %d, journal high-water %d", x, got, v)
		}
	}
}

// TestConcurrentReadersAndCommits mixes Get/GetMany/Snapshot/State/Sum
// with committing batches across shards; -race plus the State
// consistency check (version must equal the number of batches the
// journal delivered) guard the sharded locking.
func TestConcurrentReadersAndCommits(t *testing.T) {
	s := New()
	items := make([]string, 32)
	for i := range items {
		items[i] = fmt.Sprintf("it%02d", i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Get(items[(w*5+i)%len(items)])
				if i%7 == 0 {
					s.GetMany(items[:4])
				}
				if i%13 == 0 {
					st := s.State()
					if int64(len(st.ItemVers)) > st.Version*2 {
						t.Error("state invariant broken: more item versions than 2x batches")
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s.ApplyTxn(w, map[string]int64{
					items[(w+i)%len(items)]:   int64(i),
					items[(w*3+i)%len(items)]: int64(i),
					items[(w*7+i)%len(items)]: int64(i),
				})
			}
		}(w)
	}
	// Wait for the writers to finish, then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for s.Version() < 4*300 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if got := s.Version(); got != 4*300 {
		t.Fatalf("version %d, want %d", got, 4*300)
	}
}

// TestSimLatencySleeps checks SetSimLatency actually delays accesses.
func TestSimLatencySleeps(t *testing.T) {
	s := New()
	s.Set("x", 1)
	s.SetSimLatency(2 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 5; i++ {
		s.Get("x")
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("5 reads with 2ms sim latency took %v, want >= 10ms", d)
	}
	s.SetSimLatency(0)
}
