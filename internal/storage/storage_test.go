package storage

import (
	"sync"
	"testing"
)

func TestGetSetApply(t *testing.T) {
	s := New()
	if s.Get("x") != 0 {
		t.Fatal("fresh item not 0")
	}
	s.Set("x", 7)
	if s.Get("x") != 7 {
		t.Fatal("Set not visible")
	}
	v0 := s.Version()
	s.Apply(map[string]int64{"x": 1, "y": 2})
	if s.Get("x") != 1 || s.Get("y") != 2 {
		t.Fatal("Apply not visible")
	}
	if s.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", s.Version(), v0+1)
	}
}

func TestGetManySnapshotSum(t *testing.T) {
	s := New()
	s.Apply(map[string]int64{"a": 1, "b": 2, "c": 3})
	m := s.GetMany([]string{"a", "c", "zz"})
	if m["a"] != 1 || m["c"] != 3 || m["zz"] != 0 {
		t.Fatalf("GetMany = %v", m)
	}
	if got := s.Sum([]string{"a", "b", "c"}); got != 6 {
		t.Fatalf("Sum = %d", got)
	}
	snap := s.Snapshot()
	s.Set("a", 100)
	if snap["a"] != 1 {
		t.Fatal("Snapshot aliases store")
	}
}

func TestConcurrentApply(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Apply(map[string]int64{"x": int64(w)})
				s.Get("x")
				s.Sum([]string{"x"})
			}
		}(w)
	}
	wg.Wait()
	if s.Version() != 800 {
		t.Fatalf("version = %d, want 800", s.Version())
	}
}
