// Package history provides an execution recorder for runtime schedulers:
// it captures the *effect order* of a concurrent execution as a log in
// the paper's model — reads at the moment they are served, writes at the
// moment their transaction commits (when their effect becomes visible
// under the Section VI-C-2 deferred-write discipline every scheduler in
// this repository follows) — and can then be checked against the offline
// class recognizers. A correct single-version scheduler must always
// produce a D-serializable committed history; the integration tests use
// this to validate every protocol under real goroutine concurrency.
//
// The recorder serializes all scheduler calls through its own mutex so
// the recorded order is exactly the order the wrapped scheduler saw.
// Wrap only non-blocking schedulers: a scheduler that parks inside
// Read/Write (the 2PL lock manager) would deadlock under the recorder's
// mutex.
package history

import (
	"sync"

	"repro/internal/oplog"
	"repro/internal/sched"
)

// Recorder wraps a scheduler and records the committed effect order.
type Recorder struct {
	mu    sync.Mutex
	inner sched.Scheduler
	ops   []oplog.Op
	// writesOf accumulates the items written by each live transaction so
	// the write effects can be appended at commit.
	writesOf  map[int][]string
	committed map[int]bool
}

// Wrap returns a recording wrapper around inner.
func Wrap(inner sched.Scheduler) *Recorder {
	return &Recorder{
		inner:     inner,
		writesOf:  make(map[int][]string),
		committed: make(map[int]bool),
	}
}

// Name implements sched.Scheduler.
func (r *Recorder) Name() string { return r.inner.Name() + "+rec" }

// Unwrap exposes the wrapped scheduler so harnesses can reach optional
// interfaces (e.g. degraded-mode stats) through the recorder.
func (r *Recorder) Unwrap() sched.Scheduler { return r.inner }

// Begin implements sched.Scheduler.
func (r *Recorder) Begin(txn int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner.Begin(txn)
	// A restarted incarnation's previous recorded reads are void: drop
	// any ops of txn recorded since its last commit (it never committed).
	r.dropUncommitted(txn)
	r.writesOf[txn] = nil
}

// dropUncommitted removes recorded reads of an aborted incarnation.
func (r *Recorder) dropUncommitted(txn int) {
	if r.committed[txn] {
		return
	}
	keep := r.ops[:0]
	for _, op := range r.ops {
		if op.Txn != txn {
			keep = append(keep, op)
		}
	}
	r.ops = keep
}

// Read implements sched.Scheduler.
func (r *Recorder) Read(txn int, item string) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, err := r.inner.Read(txn, item)
	if err == nil {
		r.ops = append(r.ops, oplog.R(txn, item))
	}
	return v, err
}

// Write implements sched.Scheduler: the effect is recorded at commit.
func (r *Recorder) Write(txn int, item string, v int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.inner.Write(txn, item, v); err != nil {
		return err
	}
	r.writesOf[txn] = append(r.writesOf[txn], item)
	return nil
}

// Commit implements sched.Scheduler.
func (r *Recorder) Commit(txn int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.inner.Commit(txn); err != nil {
		r.dropUncommitted(txn)
		delete(r.writesOf, txn)
		return err
	}
	for _, item := range r.writesOf[txn] {
		r.ops = append(r.ops, oplog.W(txn, item))
	}
	delete(r.writesOf, txn)
	r.committed[txn] = true
	return nil
}

// Abort implements sched.Scheduler.
func (r *Recorder) Abort(txn int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner.Abort(txn)
	r.dropUncommitted(txn)
	delete(r.writesOf, txn)
}

// CommittedLog returns the recorded effect order restricted to committed
// transactions.
func (r *Recorder) CommittedLog() *oplog.Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ops []oplog.Op
	for _, op := range r.ops {
		if r.committed[op.Txn] {
			ops = append(ops, op)
		}
	}
	return oplog.NewLog(ops...)
}
