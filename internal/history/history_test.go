package history

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/engine"
	"repro/internal/interval"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/sgt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tsto"
	"repro/internal/workload"
)

func TestRecorderBasics(t *testing.T) {
	st := storage.New()
	r := Wrap(sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 2}}))
	r.Begin(1)
	if _, err := r.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(1, "y", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(1); err != nil {
		t.Fatal(err)
	}
	if got := r.CommittedLog().String(); got != "R1[x] W1[y]" {
		t.Fatalf("log = %q", got)
	}
	if r.Name() != "MT(2)+rec" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestRecorderDropsAbortedOps(t *testing.T) {
	st := storage.New()
	r := Wrap(sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 2}}))
	r.Begin(1)
	r.Read(1, "x")
	r.Write(1, "y", 1)
	r.Abort(1)
	if got := r.CommittedLog().Len(); got != 0 {
		t.Fatalf("aborted ops leaked: %v", r.CommittedLog())
	}
	// A later committed incarnation appears.
	r.Begin(1)
	r.Read(1, "z")
	if err := r.Commit(1); err != nil {
		t.Fatal(err)
	}
	if got := r.CommittedLog().String(); got != "R1[z]" {
		t.Fatalf("log = %q", got)
	}
}

func TestRecorderDropsFailedCommit(t *testing.T) {
	st := storage.New()
	inner := tsto.New(st, tsto.Options{DeferWrites: true})
	r := Wrap(inner)
	r.Begin(1)
	r.Begin(2)
	if err := r.Write(1, "x", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(2, "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T1's deferred write now fails validation; its ops must vanish.
	if err := r.Commit(1); !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
	if got := r.CommittedLog().String(); got != "R2[x]" {
		t.Fatalf("log = %q", got)
	}
}

// The integration property: every non-blocking scheduler, run under real
// goroutine concurrency, must produce a D-serializable committed history.
func TestConcurrentHistoriesAreDSR(t *testing.T) {
	protos := []struct {
		name string
		mk   func(*storage.Store) sched.Scheduler
	}{
		{"MT3", func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 3, StarvationAvoidance: true}})
		}},
		{"MT3defer", func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{
				Core: engine.Options{K: 3, StarvationAvoidance: true}, DeferWrites: true})
		}},
		{"MT3mono", func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{
				K: 3, StarvationAvoidance: true, MonotonicEncoding: true}})
		}},
		{"TO1", func(st *storage.Store) sched.Scheduler { return tsto.New(st, tsto.Options{}) }},
		{"TO1thomas", func(st *storage.Store) sched.Scheduler {
			// Note: Thomas-rule histories are not conflict-serializable in
			// general (ignored writes), so run it without the rule here.
			return tsto.New(st, tsto.Options{})
		}},
		{"OCC", func(st *storage.Store) sched.Scheduler { return occ.New(st) }},
		{"SGT", func(st *storage.Store) sched.Scheduler { return sgt.New(st) }},
		{"Interval", func(st *storage.Store) sched.Scheduler {
			return interval.New(st, interval.Options{})
		}},
	}
	for _, p := range protos {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for round := 0; round < 5; round++ {
				var rec *Recorder
				rep := sim.Run(sim.Config{
					NewScheduler: func(st *storage.Store) sched.Scheduler {
						rec = Wrap(p.mk(st))
						return rec
					},
					Specs: workload.Config{
						Txns: 30, OpsPerTxn: 3, Items: 6,
						ReadFraction: 0.5, Seed: int64(round + 1),
					}.Generate(),
					Workers:     6,
					MaxAttempts: 300,
					Backoff:     10 * time.Microsecond,
				})
				l := rec.CommittedLog()
				if !classify.DSR(l) {
					t.Fatalf("round %d: committed history not DSR:\n%s", round, l)
				}
				if rep.Committed == 0 {
					t.Fatalf("round %d: nothing committed", round)
				}
			}
		})
	}
}

// Small concurrent histories are also checked against the brute-force SR
// recognizer (stronger than DSR).
func TestSmallConcurrentHistoriesAreSR(t *testing.T) {
	for round := 0; round < 10; round++ {
		var rec *Recorder
		sim.Run(sim.Config{
			NewScheduler: func(st *storage.Store) sched.Scheduler {
				rec = Wrap(sched.NewMT(st, sched.MTOptions{
					Core: engine.Options{K: 3, StarvationAvoidance: true}}))
				return rec
			},
			Specs: workload.Config{
				Txns: 6, OpsPerTxn: 3, Items: 3, ReadFraction: 0.5,
				Seed: int64(round + 77),
			}.Generate(),
			Workers:     4,
			MaxAttempts: 300,
			Backoff:     10 * time.Microsecond,
		})
		l := rec.CommittedLog()
		if !classify.SR(l) {
			t.Fatalf("round %d: committed history not SR:\n%s", round, l)
		}
	}
}

func ExampleRecorder() {
	st := storage.New()
	r := Wrap(sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 2}}))
	r.Begin(1)
	r.Read(1, "x")
	r.Write(1, "x", 42)
	r.Commit(1)
	fmt.Println(r.CommittedLog())
	// Output: R1[x] W1[x]
}
