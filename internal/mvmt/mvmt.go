// Package mvmt implements the multiversion extension of MT(k) sketched in
// implementation issue (d) of Section III-D-6: Reed's multiversion
// timestamp scheme [19] generalized from scalar timestamps to the paper's
// timestamp vectors.
//
// Every item keeps a stack of committed versions whose writers are
// totally ordered by their timestamp vectors. A read NEVER aborts: if the
// reader cannot be ordered after the newest version's writer, it slides
// down the version stack to the newest version whose writer precedes it —
// the failed Set against the newer writer has already established the
// required upper bound. Readers of the same version are chained through a
// per-version max-reader index (the same condition-iv discipline as
// MT(k)'s RT(x)), so a single index per version suffices. A write aborts
// only when some reader of the version it would supersede is already
// ordered after it.
package mvmt

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Options configures the multiversion MT scheduler.
type Options struct {
	// K is the vector size.
	K int
	// MaxVersions caps the per-item version stack; older versions are
	// pruned and a reader old enough to need them aborts (classic
	// multiversion GC). 0 means 16.
	MaxVersions int
}

// version is one committed version of an item.
type version struct {
	writer int
	value  int64
	reader int // max reader (0 = none); chained like RT(x)
}

// MVMT is the multiversion MT(k) runtime scheduler.
type MVMT struct {
	mu    sync.Mutex
	opts  Options
	tab   *engine.VectorTable
	store *storage.Store
	// versions[x] is ordered oldest..newest; index 0 is the virtual
	// initial version written by T_0.
	versions map[string][]*version
	txns     map[int]*txnState
	// readSlides counts reads served by an older version (the
	// never-abort benefit made measurable).
	readSlides int64
}

type txnState struct {
	writes  map[string]int64
	order   []string
	blocker int // last transaction whose order forced a failure
}

// New returns a multiversion MT(k) scheduler over the store.
func New(store *storage.Store, opts Options) *MVMT {
	if opts.K < 1 {
		panic("mvmt: Options.K must be >= 1")
	}
	if opts.MaxVersions <= 0 {
		opts.MaxVersions = 16
	}
	return &MVMT{
		opts:     opts,
		tab:      engine.NewVectorTable(opts.K),
		store:    store,
		versions: make(map[string][]*version),
		txns:     make(map[int]*txnState),
	}
}

// Name implements sched.Scheduler.
func (m *MVMT) Name() string { return fmt.Sprintf("MVMT(%d)", m.opts.K) }

// ReadSlides returns how many reads were served by an older version
// instead of aborting.
func (m *MVMT) ReadSlides() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.readSlides
}

// Begin implements sched.Scheduler.
func (m *MVMT) Begin(txn int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.txns[txn] = &txnState{writes: make(map[string]int64)}
}

func (m *MVMT) state(txn int) *txnState {
	st := m.txns[txn]
	if st == nil {
		panic(fmt.Sprintf("mvmt: operation on transaction %d without Begin", txn))
	}
	return st
}

// stack returns the version stack of x, creating the virtual initial
// version on demand.
func (m *MVMT) stack(x string) []*version {
	if vs, ok := m.versions[x]; ok {
		return vs
	}
	vs := []*version{{writer: 0, value: m.store.Get(x)}}
	m.versions[x] = vs
	return vs
}

// Read implements sched.Scheduler. It never aborts unless GC pruned the
// only admissible version.
func (m *MVMT) Read(txn int, item string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(txn)
	if v, ok := st.writes[item]; ok {
		return v, nil
	}
	vs := m.stack(item)
	for i := len(vs) - 1; i >= 0; i-- {
		v := vs[i]
		if !m.tab.Set(v.writer, txn, false) {
			// TS(txn) < TS(writer) established: slide to an older version.
			continue
		}
		if i < len(vs)-1 {
			m.readSlides++
		}
		// Chain after the version's current max reader; if the reader is
		// already ordered after us, the line-9 analogue applies: we read
		// the version without becoming its max reader.
		if v.reader == 0 || m.tab.Set(v.reader, txn, false) {
			v.reader = txn
		}
		return v.value, nil
	}
	return 0, sched.Abort(txn, 0, "all admissible versions pruned")
}

// Write implements sched.Scheduler: buffered until commit.
func (m *MVMT) Write(txn int, item string, v int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(txn)
	if _, ok := st.writes[item]; !ok {
		st.order = append(st.order, item)
	}
	st.writes[item] = v
	return nil
}

// Commit implements sched.Scheduler: each write finds its slot in the
// version order and aborts only if a reader of the superseded version is
// already ordered after the writer (Reed's rule, vector form). The whole
// write set installs atomically: a failure on any item undoes the
// versions already inserted during this commit (nobody can have read them
// — the scheduler mutex is held throughout).
func (m *MVMT) Commit(txn int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(txn)
	var installed []string
	undoTop := map[string]int64{}
	for _, x := range st.order {
		undoTop[x] = m.store.Get(x)
		if err := m.installVersion(txn, x, st.writes[x]); err != nil {
			for _, ix := range installed {
				m.removeVersion(txn, ix)
				m.store.Set(ix, undoTop[ix])
			}
			// Keep the blocker so Abort can reseed the vector.
			return err
		}
		installed = append(installed, x)
	}
	delete(m.txns, txn)
	return nil
}

// removeVersion deletes txn's version of x from the stack (commit undo).
func (m *MVMT) removeVersion(txn int, x string) {
	vs := m.versions[x]
	keep := vs[:0]
	for _, v := range vs {
		if v.writer != txn {
			keep = append(keep, v)
		}
	}
	m.versions[x] = keep
}

// installVersion inserts txn's write of x into the version stack.
func (m *MVMT) installVersion(txn int, x string, val int64) error {
	vs := m.stack(x)
	st := m.txns[txn]
	slot := -1
	for i := len(vs) - 1; i >= 0; i-- {
		if m.tab.Set(vs[i].writer, txn, false) {
			slot = i
			break
		}
		if st != nil {
			st.blocker = vs[i].writer
		}
		// TS(txn) < TS(vs[i].writer) established: insert below.
	}
	if slot < 0 {
		return sched.Abort(txn, 0, "write below every retained version")
	}
	sup := vs[slot]
	// Readers of the superseded version must precede the new version.
	if sup.reader != 0 && !m.tab.Set(sup.reader, txn, false) {
		if st != nil {
			st.blocker = sup.reader
		}
		return sched.Abort(txn, sup.reader, "later read already saw the old version")
	}
	nv := &version{writer: txn, value: val}
	vs = append(vs, nil)
	copy(vs[slot+2:], vs[slot+1:])
	vs[slot+1] = nv
	// Prune the oldest versions beyond the cap (never the newest).
	if len(vs) > m.opts.MaxVersions {
		vs = vs[len(vs)-m.opts.MaxVersions:]
	}
	m.versions[x] = vs
	// The committed store always mirrors the newest version.
	m.store.Set(x, vs[len(vs)-1].value)
	return nil
}

// Abort implements sched.Scheduler. The transaction's vector is flushed
// and reseeded past its blocker (the Section III-D-4 starvation fix), so
// a retried incarnation is not stuck below the same writer; the reseeded
// first element dominates the old vector, so every established
// "w < TS(txn)" relation survives and no reader protection is lost.
func (m *MVMT) Abort(txn int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.txns[txn]
	if st != nil && st.blocker != 0 {
		if b := m.tab.Vector(st.blocker).Elem(1); b.Defined {
			m.tab.ReseedFirst(txn, b.V)
		}
	}
	delete(m.txns, txn)
}

// Versions returns the number of live versions of an item (tests).
func (m *MVMT) Versions(item string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.stack(item))
}
