package mvmt

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/sched"
	"repro/internal/storage"
)

// Lifecycle fuzz: random read/write/commit/abort interleavings must never
// panic, never leak dirty data, and reads must never fail while versions
// are retained.
func TestFuzzMVMTLifecycle(t *testing.T) {
	items := []string{"a", "b", "c"}
	for seed := int64(0); seed < 3000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := storage.New()
		m := New(st, Options{K: 1 + rng.Intn(3), MaxVersions: 2 + rng.Intn(6)})
		type state struct {
			live   bool
			writes map[string]int64
		}
		txns := map[int]*state{}
		allCommitted := map[int64]bool{0: true} // every value ever published
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panic: %v", seed, r)
				}
			}()
			for step := 0; step < 40; step++ {
				txn := 1 + rng.Intn(4)
				ts := txns[txn]
				if ts == nil || !ts.live {
					ts = &state{live: true, writes: map[string]int64{}}
					txns[txn] = ts
					m.Begin(txn)
				}
				switch rng.Intn(8) {
				case 0:
					err := m.Commit(txn)
					if err == nil {
						for _, v := range ts.writes {
							allCommitted[v] = true
						}
					} else if !errors.Is(err, sched.ErrAbort) {
						t.Fatalf("seed %d: non-abort commit error %v", seed, err)
					}
					ts.live = false
				case 1:
					m.Abort(txn)
					ts.live = false
				case 2, 3, 4:
					it := items[rng.Intn(len(items))]
					if _, err := m.Read(txn, it); err != nil && !errors.Is(err, sched.ErrAbort) {
						t.Fatalf("seed %d: read error %v", seed, err)
					}
				default:
					it := items[rng.Intn(len(items))]
					v := int64(txn*1000 + step)
					if err := m.Write(txn, it, v); err != nil {
						t.Fatalf("seed %d: buffered write failed: %v", seed, err)
					}
					ts.writes[it] = v
				}
			}
		}()
		// No dirty data: every store value must come from a successful
		// commit (commit undo restores a previously committed top).
		for x, v := range st.Snapshot() {
			if !allCommitted[v] {
				t.Fatalf("seed %d: dirty value %d leaked into %s", seed, v, x)
			}
		}
	}
}
