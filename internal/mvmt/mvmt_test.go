package mvmt

import (
	"errors"
	"testing"

	"repro/internal/sched"
	"repro/internal/storage"
)

func TestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(storage.New(), Options{K: 0})
}

func TestBasicReadWrite(t *testing.T) {
	st := storage.New()
	st.Set("x", 5)
	m := New(st, Options{K: 2})
	m.Begin(1)
	v, err := m.Read(1, "x")
	if err != nil || v != 5 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if err := m.Write(1, "x", 6); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 6 {
		t.Fatalf("x = %d", st.Get("x"))
	}
	if m.Versions("x") != 2 {
		t.Fatalf("versions = %d", m.Versions("x"))
	}
}

// The headline multiversion benefit: a read that single-version MT would
// reject slides to an older version and succeeds.
func TestLateReadSlidesToOldVersion(t *testing.T) {
	st := storage.New()
	st.Set("x", 1)
	m := New(st, Options{K: 2})
	// T1 reads y first (gets a small vector), T2 writes x and commits.
	m.Begin(1)
	if _, err := m.Read(1, "y"); err != nil {
		t.Fatal(err)
	}
	m.Begin(2)
	// Order T1 before T2 via y.
	if err := m.Write(2, "y", 9); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(2, "x", 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T1 is now established before T2; reading x must slide to the old
	// version instead of aborting.
	v, err := m.Read(1, "x")
	if err != nil {
		t.Fatalf("read aborted: %v", err)
	}
	if v != 1 {
		t.Fatalf("v = %d, want the old version 1", v)
	}
	if m.ReadSlides() != 1 {
		t.Fatalf("ReadSlides = %d", m.ReadSlides())
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatedByLaterReaderAborts(t *testing.T) {
	st := storage.New()
	m := New(st, Options{K: 2})
	// T2 reads x (initial version) and is ordered after T1.
	m.Begin(1)
	if _, err := m.Read(1, "z"); err != nil {
		t.Fatal(err)
	}
	m.Begin(2)
	if err := m.Write(2, "z", 1); err != nil { // orders T1 < T2 at commit
		t.Fatal(err)
	}
	if _, err := m.Read(2, "x"); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T1 (ordered before T2) writing x would invalidate T2's read of the
	// initial version: abort.
	if err := m.Write(1, "x", 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1); !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
}

func TestVersionCapPrunes(t *testing.T) {
	st := storage.New()
	m := New(st, Options{K: 1, MaxVersions: 4})
	for i := 1; i <= 10; i++ {
		m.Begin(i)
		if err := m.Write(i, "x", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	if m.Versions("x") != 4 {
		t.Fatalf("versions = %d, want 4", m.Versions("x"))
	}
	if st.Get("x") != 10 {
		t.Fatalf("newest = %d", st.Get("x"))
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	m := New(storage.New(), Options{K: 2})
	m.Begin(1)
	if err := m.Write(1, "x", 3); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(1, "x")
	if err != nil || v != 3 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestAbortDiscardsBuffer(t *testing.T) {
	st := storage.New()
	m := New(st, Options{K: 2})
	m.Begin(1)
	if err := m.Write(1, "x", 3); err != nil {
		t.Fatal(err)
	}
	m.Abort(1)
	if st.Get("x") != 0 {
		t.Fatal("aborted write leaked")
	}
	if m.Versions("x") != 1 {
		t.Fatal("aborted write created a version")
	}
}

// Reads never abort under normal caps: heavy write traffic cannot kick
// out a concurrent reader.
func TestReadsNeverAbortUnderWriteTraffic(t *testing.T) {
	st := storage.New()
	m := New(st, Options{K: 3})
	m.Begin(100)
	if _, err := m.Read(100, "seed"); err != nil { // small vector for T100
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		m.Begin(i)
		if err := m.Write(i, "seed", 1); err != nil {
			t.Fatal(err)
		}
		if err := m.Write(i, "x", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	// T100 now reads x: ten newer versions exist; must slide, not abort.
	v, err := m.Read(100, "x")
	if err != nil {
		t.Fatalf("read aborted: %v", err)
	}
	if v != 0 {
		t.Fatalf("v = %d, want initial 0", v)
	}
	if err := m.Commit(100); err != nil {
		t.Fatal(err)
	}
}
