package txn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/sched"
	"repro/internal/storage"
)

// TestDeadlineCancelsBackoff pins the runtime against an always-aborting
// scheduler with a backoff base far longer than the deadline: without a
// cancellable sleep the transaction would be stuck in time.Sleep long
// past its budget.
func TestDeadlineCancelsBackoff(t *testing.T) {
	rt := &Runtime{
		Sched:    alwaysAbort{},
		Backoff:  10 * time.Second,
		Deadline: 20 * time.Millisecond,
	}
	start := time.Now()
	res := rt.Exec(Spec{ID: 1, Ops: []Op{R("x")}})
	if res.Committed || !res.DeadlineExceeded {
		t.Fatalf("res = %+v", res)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("deadline did not cancel the backoff sleep (waited %v)", waited)
	}
}

// TestDeadlineCancelsThink covers the think-time sleeps: a per-op think
// of 10s against a 20ms deadline must not block the caller.
func TestDeadlineCancelsThink(t *testing.T) {
	st := storage.New()
	rt := &Runtime{
		Sched:    mt(st),
		Think:    10 * time.Second,
		Deadline: 20 * time.Millisecond,
	}
	start := time.Now()
	res := rt.Exec(Spec{ID: 1, Ops: []Op{R("x"), W("y")}})
	if res.Committed || !res.DeadlineExceeded {
		t.Fatalf("res = %+v", res)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("deadline did not cancel the think sleep (waited %v)", waited)
	}
}

// TestStopCancelsSleeps covers shutdown: closing Stop mid-backoff
// releases the in-flight transaction promptly.
func TestStopCancelsSleeps(t *testing.T) {
	stop := make(chan struct{})
	rt := &Runtime{
		Sched:   alwaysAbort{},
		Backoff: 10 * time.Second,
		Stop:    stop,
	}
	done := make(chan Result, 1)
	go func() { done <- rt.Exec(Spec{ID: 1, Ops: []Op{R("x")}}) }()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	select {
	case res := <-done:
		if !res.DeadlineExceeded {
			t.Fatalf("res = %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not cancel the backoff sleep")
	}
}

// TestExecCtxCancel covers caller-context cancellation.
func TestExecCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Runtime{Sched: alwaysAbort{}, Backoff: 10 * time.Second}
	done := make(chan Result, 1)
	go func() { done <- rt.ExecCtx(ctx, Spec{ID: 1, Ops: []Op{R("x")}}) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if !res.DeadlineExceeded {
			t.Fatalf("res = %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ctx cancel did not release the transaction")
	}
}

// blockingSched blocks inside Read until released — the latch-wait
// model: the deadline must abandon the attempt even though the
// scheduler call never returns on its own.
type blockingSched struct {
	release chan struct{}
	aborted sync.Map
}

func (b *blockingSched) Name() string { return "blocking" }
func (b *blockingSched) Begin(int)    {}
func (b *blockingSched) Abort(txn int) {
	b.aborted.Store(txn, true)
}
func (b *blockingSched) Commit(int) error { return nil }
func (b *blockingSched) Read(txn int, item string) (int64, error) {
	<-b.release
	return 0, nil
}
func (b *blockingSched) Write(txn int, item string, v int64) error { return nil }

func TestDeadlineAbandonsBlockedAttempt(t *testing.T) {
	b := &blockingSched{release: make(chan struct{})}
	rt := &Runtime{Sched: b, Deadline: 20 * time.Millisecond}
	start := time.Now()
	res := rt.Exec(Spec{ID: 7, Ops: []Op{R("x")}})
	if !res.DeadlineExceeded || res.Committed {
		t.Fatalf("res = %+v", res)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("blocked attempt not abandoned (waited %v)", waited)
	}
	// The incarnation was aborted so the scheduler can reclaim it.
	if _, ok := b.aborted.Load(7); !ok {
		t.Fatal("abandoned transaction was not aborted at the scheduler")
	}
	close(b.release) // let the straggler goroutine drain
}

// TestAdmitShedsTyped wires a controller with a full queue: the second
// transaction must come back Shed without touching the scheduler.
func TestAdmitShedsTyped(t *testing.T) {
	ctrl := admit.NewController(admit.Options{
		Limiter: admit.LimiterOptions{Initial: 1, Min: 1, Max: 1, QueuePerSlot: 1},
	})
	b := &blockingSched{release: make(chan struct{})}
	rt := &Runtime{Sched: b, Admit: ctrl, AttemptTimeout: time.Hour}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt.ExecCtx(context.Background(), Spec{ID: 1, Ops: []Op{R("x")}})
	}()
	// Wait for txn 1 to hold the only slot.
	deadline := time.Now().Add(time.Second)
	for ctrl.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("txn 1 never admitted")
		}
		time.Sleep(50 * time.Microsecond)
	}
	// Fill the queue with a second waiter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt.ExecCtx(context.Background(), Spec{ID: 2, Ops: []Op{R("x")}})
	}()
	stats := func() admit.Stats { return ctrl.Stats() }
	for deadline = time.Now().Add(time.Second); ; {
		if st := stats(); st.InFlight == 1 && st.Shed == 0 {
			// A queued waiter is not directly observable; give it a moment.
			time.Sleep(time.Millisecond)
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	res := rt.ExecCtx(context.Background(), Spec{ID: 3, Ops: []Op{R("x")}})
	if !res.Shed || res.Attempts != 0 || res.Committed {
		t.Fatalf("res = %+v", res)
	}
	close(b.release)
	wg.Wait()
	if ctrl.Stats().Shed != 1 {
		t.Fatalf("shed = %d", ctrl.Stats().Shed)
	}
}

// TestAgedTransactionCommits drives one transaction past the elder
// threshold against a scheduler that aborts it N times, and checks the
// elder's retries stop sleeping (the run finishes fast despite a huge
// backoff base once promoted).
func TestAgedTransactionCommits(t *testing.T) {
	ctrl := admit.NewController(admit.Options{
		Aging: admit.AgingOptions{ElderAfter: 3},
	})
	s := &abortNTimes{n: 10}
	rt := &Runtime{
		Sched: s,
		Admit: ctrl,
		// Backoff large enough that 10 un-aged retries would take
		// far longer than the test timeout; the elder promotion after 3
		// restarts must drop the remaining sleeps to zero.
		Backoff: 200 * time.Millisecond,
	}
	start := time.Now()
	res := rt.Exec(Spec{ID: 1, Ops: []Op{W("x")}})
	if !res.Committed {
		t.Fatalf("res = %+v", res)
	}
	if res.Attempts != 11 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	// 3 pre-elder sleeps of <= 200ms*2^n jitter each can cost ~2s in the
	// worst case; 7 more at full exponential width would add up to ~60s.
	if waited := time.Since(start); waited > 15*time.Second {
		t.Fatalf("elder retries still sleeping (took %v)", waited)
	}
	if ctrl.Stats().Elders != 1 {
		t.Fatalf("elders = %d", ctrl.Stats().Elders)
	}
}

type abortNTimes struct {
	mu sync.Mutex
	n  int
}

func (a *abortNTimes) Name() string                             { return "abortN" }
func (a *abortNTimes) Begin(int)                                {}
func (a *abortNTimes) Abort(int)                                {}
func (a *abortNTimes) Commit(int) error                         { return nil }
func (a *abortNTimes) Read(txn int, item string) (int64, error) { return 0, nil }
func (a *abortNTimes) Write(txn int, item string, v int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n > 0 {
		a.n--
		return sched.Abort(txn, 99, "induced")
	}
	return nil
}

// TestDeadlineErrorTyped checks the typed error plumbing end to end.
func TestDeadlineErrorTyped(t *testing.T) {
	err := sched.DeadlineExceeded(4, time.Second, "backoff")
	var de *sched.DeadlineError
	if !errors.As(err, &de) || de.Txn != 4 || de.Stage != "backoff" {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, sched.ErrDeadlineExceeded) {
		t.Fatal("errors.Is(ErrDeadlineExceeded) false")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}
