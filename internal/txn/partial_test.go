package txn

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
)

// buildBlockedT3 prepares the Fig. 5 shape on a fresh scheduler: T1 and
// T2 write x, T3 has read y and will be rejected writing x.
func buildBlockedT3(t *testing.T, st *storage.Store) *sched.MT {
	t.Helper()
	m := sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 2, StarvationAvoidance: true}})
	for _, w := range []int{1, 2} {
		m.Begin(w)
		if err := m.Write(w, "x", int64(w)); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(w); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestPartialRollbackResumesMidTransaction(t *testing.T) {
	st := storage.New()
	m := buildBlockedT3(t, st)
	rt := &Runtime{Sched: m, PartialRollback: true, Store: st, MaxAttempts: 10}
	res := rt.Exec(Spec{ID: 3, Ops: []Op{R("y"), W("x")}})
	if !res.Committed {
		t.Fatalf("not committed: %+v", res)
	}
	if res.PartialResumes != 1 {
		t.Fatalf("PartialResumes = %d, want 1", res.PartialResumes)
	}
	// Full restart would re-execute both ops; the partial resume repeats
	// only the failed write: 2 (first attempt) + 1 (resumed write).
	if res.OpsExecuted != 3 {
		t.Fatalf("OpsExecuted = %d, want 3", res.OpsExecuted)
	}
	if st.Get("x") != 3 {
		t.Fatalf("x = %d", st.Get("x"))
	}
}

func TestPartialRollbackFallsBackWhenReadStale(t *testing.T) {
	st := storage.New()
	m := buildBlockedT3(t, st)
	rt := &Runtime{Sched: m, PartialRollback: true, Store: st, MaxAttempts: 10}
	// Wrap the value function to commit a conflicting write to y right
	// after the first failure, invalidating the kept read.
	first := true
	res := rt.Exec(Spec{
		ID:  3,
		Ops: []Op{R("y"), W("x")},
		Value: func(item string, reads map[string]int64) int64 {
			if first {
				first = false
				// Sneak a committed write to y between attempt and retry.
				m.Begin(99)
				if err := m.Write(99, "y", 7); err == nil {
					m.Commit(99)
				} else {
					m.Abort(99)
				}
			}
			return reads["y"] + 1
		},
	})
	if !res.Committed {
		t.Fatalf("not committed: %+v", res)
	}
	if res.PartialResumes != 0 {
		t.Fatalf("stale read should force a full restart, got %d resumes", res.PartialResumes)
	}
	// The committed value must reflect the NEW y (7 + 1), proving the
	// full restart re-read it.
	if st.Get("x") != 8 {
		t.Fatalf("x = %d, want 8", st.Get("x"))
	}
}

func TestPartialRollbackDisabledWithoutStore(t *testing.T) {
	st := storage.New()
	m := buildBlockedT3(t, st)
	rt := &Runtime{Sched: m, PartialRollback: true, MaxAttempts: 10} // no Store
	res := rt.Exec(Spec{ID: 3, Ops: []Op{R("y"), W("x")}})
	if !res.Committed || res.PartialResumes != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPartialRollbackNeedsStarvationAvoidance(t *testing.T) {
	st := storage.New()
	m := sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 2}}) // fix off
	for _, w := range []int{1, 2} {
		m.Begin(w)
		m.Write(w, "x", int64(w))
		m.Commit(w)
	}
	m.Begin(3)
	if _, err := m.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(3, "x", 3); err == nil {
		t.Fatal("setup: write should be rejected")
	}
	if m.TryPartialRestart(3, []string{"y"}) {
		t.Fatal("partial restart must require the starvation fix")
	}
}

func TestPartialRollbackReducesWastedOps(t *testing.T) {
	// Long transactions with a contended tail item: partial rollback
	// should replay fewer operations than full restarts on the same
	// deterministic single-threaded conflict pattern.
	run := func(partial bool) int {
		st := storage.New()
		m := sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 9, StarvationAvoidance: true}})
		// Pre-commit writers on the tail item so the victim gets blocked.
		for _, w := range []int{101, 102} {
			m.Begin(w)
			m.Write(w, "tail", int64(w))
			m.Commit(w)
		}
		rt := &Runtime{Sched: m, PartialRollback: partial, Store: st, MaxAttempts: 20}
		ops := []Op{R("a"), R("b"), R("c"), R("d"), W("tail")}
		res := rt.Exec(Spec{ID: 3, Ops: ops})
		if !res.Committed {
			return 1 << 30
		}
		return res.OpsExecuted
	}
	full := run(false)
	part := run(true)
	if part >= full {
		t.Fatalf("partial rollback executed %d ops, full restart %d", part, full)
	}
}
