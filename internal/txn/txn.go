// Package txn is the goroutine transaction runtime: it executes
// transaction specifications against any sched.Scheduler, retrying
// aborted transactions with (optionally) exponential backoff. A retried
// transaction keeps its id, so protocols like MT(k) with the starvation
// fix can privilege the restarted incarnation.
package txn

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/oplog"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Op is one step of a transaction: read or write of a single item.
type Op struct {
	Kind oplog.Kind
	Item string
}

// R and W build ops.
func R(item string) Op { return Op{Kind: oplog.Read, Item: item} }

// W builds a write op.
func W(item string) Op { return Op{Kind: oplog.Write, Item: item} }

// Spec describes a transaction to execute.
type Spec struct {
	// ID is the transaction id; unique among concurrently running
	// transactions and stable across retries.
	ID int
	// Ops run in order.
	Ops []Op
	// Value computes the value written to item given the reads observed
	// so far. Nil writes the transaction id (enough for conflict-shape
	// experiments).
	Value func(item string, reads map[string]int64) int64
}

// Result reports one transaction's fate.
type Result struct {
	ID        int
	Committed bool
	// Attempts counts executions including the successful one.
	Attempts int
	// PartialResumes counts retries that resumed mid-transaction via the
	// Section VI-C-1 partial rollback instead of restarting from scratch.
	PartialResumes int
	// OpsExecuted counts operations actually issued across all attempts
	// (the wasted-work metric of the rollback experiments).
	OpsExecuted int
	// Reads holds the read values of the committed attempt (nil if the
	// transaction never committed).
	Reads map[string]int64
	// Latency is the wall time from first attempt to final outcome.
	Latency time.Duration
}

// PartialRestarter is implemented by schedulers supporting the Section
// VI-C-1 partial rollback: after a rejected operation, the scheduler
// reseeds the transaction and re-validates its earlier reads, so the
// runtime can resume mid-transaction.
type PartialRestarter interface {
	TryPartialRestart(txn int, readItems []string) bool
}

// Runtime executes Specs on a Scheduler.
type Runtime struct {
	Sched sched.Scheduler
	// MaxAttempts bounds retries (0 = retry forever).
	MaxAttempts int
	// Backoff is the base sleep after an abort; attempt n sleeps
	// Backoff * 2^min(n,6) with full jitter. Zero disables sleeping.
	Backoff time.Duration
	// Think sleeps between consecutive operations of a transaction,
	// forcing transactions to overlap in time (the regime where the
	// protocols' ordering decisions actually differ).
	Think time.Duration
	// PartialRollback enables the Section VI-C-1 scheme when both the
	// scheduler implements PartialRestarter and Store is set (item
	// versions decide whether kept read values are still current).
	PartialRollback bool
	// Store is consulted for per-item versions under PartialRollback.
	Store *storage.Store
}

// Exec runs one transaction to commit or retry exhaustion.
func (r *Runtime) Exec(spec Spec) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(int64(spec.ID)))
	res := Result{ID: spec.ID}
	resumeFrom := 0
	var reads map[string]int64
	var readVers map[string]int64
	for attempt := 1; ; attempt++ {
		if resumeFrom == 0 {
			reads = make(map[string]int64)
			readVers = make(map[string]int64)
		}
		got, failedAt, err := r.attempt(spec, resumeFrom, reads, readVers, &res)
		if err == nil {
			res.Committed = true
			res.Attempts = attempt
			res.Reads = got
			res.Latency = time.Since(start)
			return res
		}
		if !errors.Is(err, sched.ErrAbort) {
			panic("txn: scheduler returned a non-abort error: " + err.Error())
		}
		resumeFrom = 0
		if r.PartialRollback && r.Store != nil && failedAt > 0 {
			if pr, ok := r.Sched.(PartialRestarter); ok && r.tryResume(spec, failedAt, reads, readVers, pr) {
				resumeFrom = failedAt
				res.PartialResumes++
			}
		}
		if resumeFrom == 0 {
			r.Sched.Abort(spec.ID)
		}
		if r.MaxAttempts > 0 && attempt >= r.MaxAttempts {
			res.Attempts = attempt
			res.Latency = time.Since(start)
			return res
		}
		if r.Backoff > 0 {
			shift := attempt
			if shift > 6 {
				shift = 6
			}
			max := int64(r.Backoff) << shift
			time.Sleep(time.Duration(rng.Int63n(max + 1)))
		}
	}
}

// tryResume decides whether execution can continue mid-transaction: the
// kept reads' item versions must be unchanged (their values are still
// current) and the scheduler must re-validate them under a reseeded
// vector.
func (r *Runtime) tryResume(spec Spec, failedAt int, reads, readVers map[string]int64, pr PartialRestarter) bool {
	var kept []string
	for _, op := range spec.Ops[:failedAt] {
		if op.Kind != oplog.Read {
			continue
		}
		if r.Store.ItemVersion(op.Item) != readVers[op.Item] {
			return false // a newer committed value invalidates the kept read
		}
		kept = append(kept, op.Item)
	}
	return pr.TryPartialRestart(spec.ID, kept)
}

// attempt runs ops[resumeFrom:] of the spec; a fresh attempt
// (resumeFrom == 0) begins the transaction first. It returns the reads,
// the failing op index and the error.
func (r *Runtime) attempt(spec Spec, resumeFrom int, reads, readVers map[string]int64, res *Result) (map[string]int64, int, error) {
	if resumeFrom == 0 {
		r.Sched.Begin(spec.ID)
	}
	for i := resumeFrom; i < len(spec.Ops); i++ {
		op := spec.Ops[i]
		if r.Think > 0 && i > 0 {
			time.Sleep(r.Think)
		}
		res.OpsExecuted++
		if op.Kind == oplog.Read {
			if r.Store != nil {
				readVers[op.Item] = r.Store.ItemVersion(op.Item)
			}
			v, err := r.Sched.Read(spec.ID, op.Item)
			if err != nil {
				return nil, i, err
			}
			reads[op.Item] = v
			continue
		}
		var v int64
		if spec.Value != nil {
			v = spec.Value(op.Item, reads)
		} else {
			v = int64(spec.ID)
		}
		if err := r.Sched.Write(spec.ID, op.Item, v); err != nil {
			return nil, i, err
		}
	}
	if err := r.Sched.Commit(spec.ID); err != nil {
		return nil, len(spec.Ops), err
	}
	return reads, -1, nil
}

// Pool executes specs on w workers and returns every result.
func (r *Runtime) Pool(specs []Spec, workers int) []Result {
	if workers < 1 {
		workers = 1
	}
	in := make(chan Spec)
	out := make([]Result, len(specs))
	idx := make(map[int]int, len(specs)) // spec id -> slot
	for i, s := range specs {
		idx[s.ID] = i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range in {
				out[idx[spec.ID]] = r.Exec(spec)
			}
		}()
	}
	for _, s := range specs {
		in <- s
	}
	close(in)
	wg.Wait()
	return out
}
