// Package txn is the goroutine transaction runtime: it executes
// transaction specifications against any sched.Scheduler, retrying
// aborted transactions with (optionally) exponential backoff. A retried
// transaction keeps its id, so protocols like MT(k) with the starvation
// fix can privilege the restarted incarnation.
package txn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/admit"
	"repro/internal/explore/hook"
	"repro/internal/oplog"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Op is one step of a transaction: read or write of a single item.
type Op struct {
	Kind oplog.Kind
	Item string
}

// R and W build ops.
func R(item string) Op { return Op{Kind: oplog.Read, Item: item} }

// W builds a write op.
func W(item string) Op { return Op{Kind: oplog.Write, Item: item} }

// Spec describes a transaction to execute.
type Spec struct {
	// ID is the transaction id; unique among concurrently running
	// transactions and stable across retries.
	ID int
	// Ops run in order.
	Ops []Op
	// Value computes the value written to item given the reads observed
	// so far. Nil writes the transaction id (enough for conflict-shape
	// experiments).
	Value func(item string, reads map[string]int64) int64
}

// Result reports one transaction's fate.
type Result struct {
	ID        int
	Committed bool
	// Attempts counts executions including the successful one.
	Attempts int
	// PartialResumes counts retries that resumed mid-transaction via the
	// Section VI-C-1 partial rollback instead of restarting from scratch.
	PartialResumes int
	// OpsExecuted counts operations actually issued across all attempts
	// (the wasted-work metric of the rollback experiments).
	OpsExecuted int
	// Unavailable counts attempts that ended in sched.ErrUnavailable
	// (degraded-mode retries, not protocol aborts).
	Unavailable int
	// Timeouts counts attempts abandoned by the per-attempt timeout.
	Timeouts int
	// Shed reports that admission control refused the transaction with
	// admit.ErrOverloaded before it consumed any scheduler resources
	// (Attempts is 0).
	Shed bool
	// DeadlineExceeded reports that the per-transaction deadline (or the
	// caller's context) expired before the transaction committed or
	// exhausted its retry budgets.
	DeadlineExceeded bool
	// Durable reports whether the commit reached stable storage before
	// it was acknowledged. Equal to Committed when the runtime has no
	// Durable waiter; false when the write-ahead log failed after the
	// scheduler committed (the commit happened in memory but would not
	// survive a crash).
	Durable bool
	// Reads holds the read values of the committed attempt (nil if the
	// transaction never committed).
	Reads map[string]int64
	// Latency is the wall time from first attempt to final outcome.
	Latency time.Duration
}

// PartialRestarter is implemented by schedulers supporting the Section
// VI-C-1 partial rollback: after a rejected operation, the scheduler
// reseeds the transaction and re-validates its earlier reads, so the
// runtime can resume mid-transaction.
type PartialRestarter interface {
	TryPartialRestart(txn int, readItems []string) bool
}

// Runtime executes Specs on a Scheduler.
type Runtime struct {
	Sched sched.Scheduler
	// MaxAttempts bounds conflict-abort retries (0 = retry forever).
	MaxAttempts int
	// Backoff is the base sleep after an abort; attempt n sleeps
	// Backoff * 2^min(n,6) with full jitter. Zero disables sleeping.
	Backoff time.Duration
	// Think sleeps between consecutive operations of a transaction and
	// before its commit, forcing transactions to overlap in time (the
	// regime where the protocols' ordering decisions actually differ).
	// The pre-commit sleep models the commit request as its own message
	// round: a site can fail between a transaction's last operation and
	// its commit, which is the window degraded-mode commits address.
	Think time.Duration
	// PartialRollback enables the Section VI-C-1 scheme when both the
	// scheduler implements PartialRestarter and Store is set (item
	// versions decide whether kept read values are still current).
	PartialRollback bool
	// Store is consulted for per-item versions under PartialRollback.
	Store *storage.Store
	// Seed perturbs the per-transaction backoff RNG. Zero preserves the
	// legacy seeding from the spec ID alone; any other value is mixed
	// with the spec ID so chaos experiments can vary jitter across runs
	// deterministically via config.
	Seed int64
	// AttemptTimeout bounds one attempt's wall time (0 = unbounded). A
	// timed-out attempt is abandoned, the incarnation aborted, and the
	// transaction retried under the unavailability budget — the last
	// line of defense against a hung site.
	AttemptTimeout time.Duration
	// UnavailableBudget bounds retries caused by sched.ErrUnavailable or
	// attempt timeouts (0 = retry forever). Unavailability retries have
	// their own budget and backoff: they signal a down site, not a lost
	// conflict, so they should not consume the conflict-retry budget.
	UnavailableBudget int
	// UnavailableBackoff is the base sleep for unavailability retries
	// (exponential with full jitter); falls back to Backoff when zero.
	// Typically set much higher than Backoff: the site needs time to
	// recover, not just the conflict window to pass.
	UnavailableBackoff time.Duration
	// Durable, when set, is waited on after every successful commit:
	// the commit acks only once its redo record reaches stable storage
	// (wal.Writer satisfies this). A Wait error marks the result
	// non-durable but still committed — the in-memory state has it,
	// the disk does not.
	Durable interface{ Wait(txn int) error }
	// Admit, when set, is the overload controller: every transaction's
	// first attempt passes its admission gate (a refused transaction
	// returns with Shed set and no scheduler work done), every conflict
	// abort is reported to it, and the scale it returns multiplies the
	// next backoff sleep (storm damping, priority aging).
	Admit *admit.Controller
	// ShedPause is slept (cancellably) before a shed transaction
	// returns, modeling a rejected client's retry-after pause; 0 = none.
	// Without it a closed-loop worker pool turns shedding into a busy
	// loop that steals CPU from the admitted work it protects.
	ShedPause time.Duration
	// Deadline bounds one transaction end to end (0 = none): it covers
	// admission waits, every attempt, backoff sleeps and think time.
	// Expiry cancels in-flight sleeps, abandons blocked attempts and
	// returns a result with DeadlineExceeded set.
	Deadline time.Duration
	// Stop, when non-nil, is a shutdown signal: once it closes, every
	// in-flight backoff or think sleep is cancelled and transactions
	// return promptly with DeadlineExceeded (shutdown is a deadline of
	// "now").
	Stop <-chan struct{}
}

// errAttemptTimeout marks an attempt abandoned by AttemptTimeout. It
// wraps sched.ErrUnavailable: a hung attempt is indistinguishable from
// an unreachable site and is retried under the same budget.
var errAttemptTimeout = fmt.Errorf("txn: attempt timed out: %w", sched.ErrUnavailable)

// jitterSeed mixes the runtime-level seed into the per-spec RNG seed.
// With Seed == 0 the legacy spec.ID-only seeding is preserved; otherwise
// two runs of the same spec under different runtime seeds draw different
// jitter, deterministically (SplitMix64 finalizer).
func jitterSeed(runtimeSeed int64, id int) int64 {
	if runtimeSeed == 0 {
		return int64(id)
	}
	z := uint64(runtimeSeed) ^ uint64(id)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Exec runs one transaction to commit or retry exhaustion. Conflict
// aborts (sched.ErrAbort) and unavailability (sched.ErrUnavailable,
// attempt timeouts) are retried under separate budgets with separate
// exponential-backoff-plus-jitter schedules.
func (r *Runtime) Exec(spec Spec) Result {
	return r.ExecCtx(context.Background(), spec)
}

// ExecCtx is Exec under a context: ctx expiry (or Runtime.Deadline,
// whichever fires first, or a closed Stop channel) cancels admission
// waits, backoff and think sleeps and abandons blocked attempts,
// returning a result with DeadlineExceeded set. With Admit configured,
// the transaction first passes the overload controller's admission
// gate; a refusal returns immediately with Shed set.
func (r *Runtime) ExecCtx(ctx context.Context, spec Spec) Result {
	start := time.Now()
	res := Result{ID: spec.ID}
	if r.Stop != nil {
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		stop := r.Stop
		go func() {
			select {
			case <-stop:
				cancel()
			case <-sctx.Done():
			}
		}()
		ctx = sctx
	}
	if r.Deadline > 0 {
		dctx, cancel := context.WithTimeout(ctx, r.Deadline)
		defer cancel()
		ctx = dctx
	}
	if r.Admit != nil {
		if err := r.Admit.Admit(ctx, spec.ID); err != nil {
			if errors.Is(err, admit.ErrOverloaded) {
				res.Shed = true
				_ = sleepCtx(ctx, r.ShedPause)
			} else {
				res.DeadlineExceeded = true
			}
			res.Latency = time.Since(start)
			return res
		}
		// The controller is fed SERVICE latency (admission grant to
		// outcome), not arrival latency: queue wait is the limiter's own
		// artifact, and feeding it back would spiral the limit down under
		// load — the deeper the queue, the "slower" the system looks, the
		// harder it throttles. Result.Latency stays arrival-based.
		admitted := time.Now()
		defer func() {
			r.Admit.Done(spec.ID, res.Committed, res.Attempts, time.Since(admitted))
		}()
	}
	rng := rand.New(rand.NewSource(jitterSeed(r.Seed, spec.ID)))
	resumeFrom := 0
	var reads map[string]int64
	var readVers map[string]int64
	conflicts := 0 // attempts ended by ErrAbort, counted against MaxAttempts
	unavail := 0   // attempts ended by ErrUnavailable, separate budget
	// expired finalizes a deadline exit: the live incarnation (if any)
	// is aborted so the scheduler does not hold its vector forever.
	expired := func() Result {
		r.Sched.Abort(spec.ID)
		res.DeadlineExceeded = true
		res.Latency = time.Since(start)
		return res
	}
	for {
		// Retries (never the first attempt) pass the aging crisis gate:
		// while an elder is fighting for its commit, only the oldest live
		// transaction may launch, so its commit is certain rather than a
		// rematch it can keep losing.
		if r.Admit != nil && res.Attempts > 0 {
			if err := r.Admit.RetryGate(ctx, spec.ID); err != nil {
				return expired()
			}
		}
		if resumeFrom == 0 {
			reads = make(map[string]int64)
			readVers = make(map[string]int64)
		}
		out := r.attemptWithTimeout(ctx, spec, resumeFrom, reads, readVers)
		res.OpsExecuted += out.ops
		res.Attempts++
		if out.err == nil {
			res.Committed = true
			res.Durable = true
			if r.Durable != nil {
				if werr := r.Durable.Wait(spec.ID); werr != nil {
					res.Durable = false
				}
			}
			res.Reads = out.reads
			res.Latency = time.Since(start)
			return res
		}
		switch {
		case errors.Is(out.err, sched.ErrDeadlineExceeded):
			return expired()
		case errors.Is(out.err, sched.ErrUnavailable):
			// Degraded mode: no conflict was lost and no ordering was
			// established against us — abort the incarnation and wait for
			// the site to come back.
			if errors.Is(out.err, errAttemptTimeout) {
				res.Timeouts++
			} else {
				res.Unavailable++
			}
			unavail++
			resumeFrom = 0
			r.Sched.Abort(spec.ID)
			if r.UnavailableBudget > 0 && unavail >= r.UnavailableBudget {
				res.Latency = time.Since(start)
				return res
			}
			base := r.UnavailableBackoff
			if base == 0 {
				base = r.Backoff
			}
			if err := sleepBackoff(ctx, rng, unavail, base, 1); err != nil {
				return expired()
			}
		case errors.Is(out.err, sched.ErrAbort):
			conflicts++
			resumeFrom = 0
			if r.PartialRollback && r.Store != nil && out.failedAt > 0 {
				if pr, ok := r.Sched.(PartialRestarter); ok && r.tryResume(spec, out.failedAt, reads, readVers, pr) {
					resumeFrom = out.failedAt
					res.PartialResumes++
				}
			}
			if resumeFrom == 0 {
				r.Sched.Abort(spec.ID)
			}
			if r.MaxAttempts > 0 && conflicts >= r.MaxAttempts {
				res.Latency = time.Since(start)
				return res
			}
			scale := 1.0
			if r.Admit != nil {
				blocker := 0
				var ae *sched.AbortError
				if errors.As(out.err, &ae) {
					blocker = ae.Blocker
				}
				scale = r.Admit.OnAbort(spec.ID, blocker)
			}
			// Explore instrumentation: the backoff scale the admission
			// controller chose (scaled to ppm so zero stays exactly zero —
			// the express-lane livelock oracle checks for it), then the
			// restart itself as a preemption point.
			hook.Observe("txn.backoff", "", int64(spec.ID), int64(scale*1e6))
			hook.Yield("txn.restart", "", int64(spec.ID), int64(conflicts))
			if err := sleepBackoff(ctx, rng, conflicts, r.Backoff, scale); err != nil {
				return expired()
			}
		default:
			panic("txn: scheduler returned a non-abort error: " + out.err.Error())
		}
	}
}

// sleepBackoff sleeps Backoff-style full jitter: uniform in
// [0, scale·base·2^min(n,6)]. scale < 1 shortens the sleep (0 skips it
// entirely — an aged transaction retrying immediately), scale > 1
// widens it (storm damping, young-yields-to-old). The sleep is
// cancellable: ctx expiry interrupts it and returns the ctx error.
func sleepBackoff(ctx context.Context, rng *rand.Rand, n int, base time.Duration, scale float64) error {
	if base <= 0 || scale < 0 {
		return ctx.Err()
	}
	shift := n
	if shift > 6 {
		shift = 6
	}
	max := int64(float64(base) * scale)
	if max <= 0 {
		return ctx.Err()
	}
	max <<= shift
	return sleepCtx(ctx, time.Duration(rng.Int63n(max+1)))
}

// sleepCtx sleeps d, returning early with the ctx error when the
// context expires first. The fast path (no cancellation possible) stays
// a bare time.Sleep. Sleeps at or below spinSleepMax yield-spin
// instead: a timer sleep's realized latency (timer granularity plus
// waking a parked P) is 100-250µs on Linux, an order of magnitude more
// than a short backoff asks for, and it dominates wall time in
// backoff-bound low-concurrency runs. Gosched surrenders the CPU to
// any runnable worker — the semantic point of backing off — so an
// oversubscribed host absorbs the spin as useful work; only an
// otherwise-idle process burns the duration as CPU. The cap is 1ms,
// not the ~250µs where the timer tax stops dominating, because the
// backoff sleeps that matter most are the admission controller's
// scaled yields (young transactions sleeping YieldScale times longer
// than their older blockers): those land in the 240µs-1ms band, fire
// exactly when the host is oversubscribed with the older work they
// are donating CPU to, and paying the timer wakeup there erases the
// aging tie-break's throughput instead of just delaying one sleeper.
const spinSleepMax = 1 * time.Millisecond

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if d <= spinSleepMax {
		for deadline := time.Now().Add(d); ; {
			if err := ctx.Err(); err != nil {
				return err
			}
			runtime.Gosched()
			if !time.Now().Before(deadline) {
				return ctx.Err()
			}
		}
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryResume decides whether execution can continue mid-transaction: the
// kept reads' item versions must be unchanged (their values are still
// current) and the scheduler must re-validate them under a reseeded
// vector.
func (r *Runtime) tryResume(spec Spec, failedAt int, reads, readVers map[string]int64, pr PartialRestarter) bool {
	var kept []string
	for _, op := range spec.Ops[:failedAt] {
		if op.Kind != oplog.Read {
			continue
		}
		if r.Store.ItemVersion(op.Item) != readVers[op.Item] {
			return false // a newer committed value invalidates the kept read
		}
		kept = append(kept, op.Item)
	}
	return pr.TryPartialRestart(spec.ID, kept)
}

// attemptOut is one attempt's outcome: the reads on success, the failing
// op index, the number of ops issued, and the error.
type attemptOut struct {
	reads    map[string]int64
	failedAt int
	ops      int
	err      error
}

// attemptWithTimeout runs one attempt, bounded by AttemptTimeout when
// set and by the context's deadline. A timed-out or deadline-abandoned
// attempt keeps draining in its goroutine against the scheduler (which
// must tolerate stray operations of a dead incarnation) but its maps are
// never reused by the caller, and its op count is lost. This abandonment
// is also what cancels an attempt blocked on a latch or lock wait: the
// caller stops waiting even though the blocked goroutine only unwinds
// once the latch frees.
func (r *Runtime) attemptWithTimeout(ctx context.Context, spec Spec, resumeFrom int, reads, readVers map[string]int64) attemptOut {
	if r.AttemptTimeout <= 0 && ctx.Done() == nil {
		return r.attempt(ctx, spec, resumeFrom, reads, readVers)
	}
	ch := make(chan attemptOut, 1)
	go func() { ch <- r.attempt(ctx, spec, resumeFrom, reads, readVers) }()
	var timeout <-chan time.Time
	if r.AttemptTimeout > 0 {
		timer := time.NewTimer(r.AttemptTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case out := <-ch:
		return out
	case <-timeout:
		return attemptOut{failedAt: -1, err: errAttemptTimeout}
	case <-ctx.Done():
		// Janitor: the abandoned goroutine may Begin a fresh incarnation
		// after the caller's final Abort, leaving a live-looking entry
		// that poisons other transactions' pending-writer checks. The
		// deadline path never reuses the id, so re-aborting once the
		// stray drains is safe and closes the leak.
		go func() { <-ch; r.Sched.Abort(spec.ID) }()
		return attemptOut{failedAt: -1, err: sched.DeadlineExceeded(spec.ID, 0, "attempt abandoned")}
	}
}

// attempt runs ops[resumeFrom:] of the spec; a fresh attempt
// (resumeFrom == 0) begins the transaction first. Think sleeps are
// cancellable: ctx expiry fails the attempt with ErrDeadlineExceeded.
func (r *Runtime) attempt(ctx context.Context, spec Spec, resumeFrom int, reads, readVers map[string]int64) attemptOut {
	out := attemptOut{failedAt: -1}
	if resumeFrom == 0 {
		if ctx.Err() != nil {
			out.err = sched.DeadlineExceeded(spec.ID, 0, "attempt not started")
			return out
		}
		r.Sched.Begin(spec.ID)
	}
	for i := resumeFrom; i < len(spec.Ops); i++ {
		op := spec.Ops[i]
		if r.Think > 0 && i > 0 {
			if err := sleepCtx(ctx, r.Think); err != nil {
				out.failedAt, out.err = i, sched.DeadlineExceeded(spec.ID, 0, "think")
				return out
			}
		}
		out.ops++
		if op.Kind == oplog.Read {
			if r.Store != nil {
				readVers[op.Item] = r.Store.ItemVersion(op.Item)
			}
			v, err := r.Sched.Read(spec.ID, op.Item)
			if err != nil {
				out.failedAt, out.err = i, err
				return out
			}
			reads[op.Item] = v
			continue
		}
		var v int64
		if spec.Value != nil {
			v = spec.Value(op.Item, reads)
		} else {
			v = int64(spec.ID)
		}
		if err := r.Sched.Write(spec.ID, op.Item, v); err != nil {
			out.failedAt, out.err = i, err
			return out
		}
	}
	if r.Think > 0 && len(spec.Ops) > 0 {
		if err := sleepCtx(ctx, r.Think); err != nil {
			out.failedAt, out.err = len(spec.Ops), sched.DeadlineExceeded(spec.ID, 0, "pre-commit think")
			return out
		}
	}
	if err := r.Sched.Commit(spec.ID); err != nil {
		out.failedAt, out.err = len(spec.Ops), err
		return out
	}
	out.reads = reads
	return out
}

// Pool executes specs on w workers and returns every result.
func (r *Runtime) Pool(specs []Spec, workers int) []Result {
	return r.PoolCtx(context.Background(), specs, workers)
}

// PoolCtx is Pool under a context shared by every transaction (each
// still gets its own per-transaction Deadline on top, when configured).
func (r *Runtime) PoolCtx(ctx context.Context, specs []Spec, workers int) []Result {
	if workers < 1 {
		workers = 1
	}
	in := make(chan Spec)
	out := make([]Result, len(specs))
	idx := make(map[int]int, len(specs)) // spec id -> slot
	for i, s := range specs {
		idx[s.ID] = i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range in {
				out[idx[spec.ID]] = r.ExecCtx(ctx, spec)
			}
		}()
	}
	for _, s := range specs {
		in <- s
	}
	close(in)
	wg.Wait()
	return out
}
