package txn

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
)

func mt(st *storage.Store) sched.Scheduler {
	return sched.NewMT(st, sched.MTOptions{
		Core: engine.Options{K: 3, StarvationAvoidance: true},
	})
}

func TestExecCommits(t *testing.T) {
	st := storage.New()
	st.Set("x", 5)
	rt := &Runtime{Sched: mt(st)}
	res := rt.Exec(Spec{ID: 1, Ops: []Op{R("x"), W("y")}})
	if !res.Committed || res.Attempts != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Reads["x"] != 5 {
		t.Fatalf("read x = %d", res.Reads["x"])
	}
	if st.Get("y") != 1 { // default value: txn id
		t.Fatalf("y = %d", st.Get("y"))
	}
}

func TestValueFunction(t *testing.T) {
	st := storage.New()
	st.Set("x", 10)
	rt := &Runtime{Sched: mt(st)}
	res := rt.Exec(Spec{
		ID:  1,
		Ops: []Op{R("x"), W("x")},
		Value: func(item string, reads map[string]int64) int64 {
			return reads["x"] + 1
		},
	})
	if !res.Committed {
		t.Fatal("not committed")
	}
	if st.Get("x") != 11 {
		t.Fatalf("x = %d", st.Get("x"))
	}
}

func TestMaxAttemptsGivesUp(t *testing.T) {
	// An always-aborting scheduler.
	rt := &Runtime{Sched: alwaysAbort{}, MaxAttempts: 3}
	res := rt.Exec(Spec{ID: 1, Ops: []Op{R("x")}})
	if res.Committed || res.Attempts != 3 {
		t.Fatalf("res = %+v", res)
	}
}

type alwaysAbort struct{}

func (alwaysAbort) Name() string     { return "abort" }
func (alwaysAbort) Begin(int)        {}
func (alwaysAbort) Abort(int)        {}
func (alwaysAbort) Commit(int) error { return sched.Abort(0, 0, "always") }
func (alwaysAbort) Read(txn int, item string) (int64, error) {
	return 0, sched.Abort(txn, 0, "always")
}
func (alwaysAbort) Write(txn int, item string, v int64) error {
	return sched.Abort(txn, 0, "always")
}

func TestPoolRunsAll(t *testing.T) {
	st := storage.New()
	rt := &Runtime{Sched: mt(st)}
	var specs []Spec
	for i := 1; i <= 40; i++ {
		specs = append(specs, Spec{ID: i, Ops: []Op{R("a"), W("b")}})
	}
	results := rt.Pool(specs, 8)
	if len(results) != 40 {
		t.Fatalf("len = %d", len(results))
	}
	for _, r := range results {
		if !r.Committed {
			t.Fatalf("txn %d gave up: %+v", r.ID, r)
		}
	}
}

func TestPoolSingleWorkerFloor(t *testing.T) {
	st := storage.New()
	rt := &Runtime{Sched: mt(st)}
	res := rt.Pool([]Spec{{ID: 1, Ops: []Op{W("x")}}}, 0)
	if len(res) != 1 || !res[0].Committed {
		t.Fatalf("res = %+v", res)
	}
}

func TestPanicOnUnexpectedError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-abort error")
		}
	}()
	rt := &Runtime{Sched: weirdError{}}
	rt.Exec(Spec{ID: 1, Ops: []Op{R("x")}})
}

type weirdError struct{ alwaysAbort }

func (weirdError) Read(txn int, item string) (int64, error) {
	return 0, errInternal
}

var errInternal = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }
