package txn

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// flakyUnavailable fails its first n reads with sched.ErrUnavailable and
// then serves normally — a site that comes back.
type flakyUnavailable struct {
	mu       sync.Mutex
	failures int
	aborts   int
}

func (f *flakyUnavailable) Name() string { return "flaky" }
func (f *flakyUnavailable) Begin(int)    {}
func (f *flakyUnavailable) Abort(int) {
	f.mu.Lock()
	f.aborts++
	f.mu.Unlock()
}
func (f *flakyUnavailable) Commit(int) error { return nil }
func (f *flakyUnavailable) Read(txn int, item string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failures > 0 {
		f.failures--
		return 0, sched.Unavailable(txn, 1, "site down")
	}
	return 42, nil
}
func (f *flakyUnavailable) Write(txn int, item string, v int64) error { return nil }

// Unavailability retries must not consume the conflict-retry budget:
// with MaxAttempts=1 a transaction that hits a down site twice and then
// succeeds still commits.
func TestUnavailableRetriesSeparateBudget(t *testing.T) {
	f := &flakyUnavailable{failures: 2}
	rt := &Runtime{Sched: f, MaxAttempts: 1, UnavailableBudget: 10}
	res := rt.Exec(Spec{ID: 1, Ops: []Op{R("x")}})
	if !res.Committed {
		t.Fatalf("gave up: %+v", res)
	}
	if res.Attempts != 3 || res.Unavailable != 2 || res.Timeouts != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Reads["x"] != 42 {
		t.Fatalf("reads = %v", res.Reads)
	}
	// Each unavailability retry aborted the dead incarnation first.
	if f.aborts != 2 {
		t.Fatalf("aborts = %d, want 2", f.aborts)
	}
}

// The unavailability budget is enforced: a site that never comes back
// makes the transaction give up after exactly UnavailableBudget attempts.
func TestUnavailableBudgetExhausted(t *testing.T) {
	f := &flakyUnavailable{failures: 1 << 30}
	rt := &Runtime{Sched: f, MaxAttempts: 1, UnavailableBudget: 3}
	res := rt.Exec(Spec{ID: 1, Ops: []Op{R("x")}})
	if res.Committed {
		t.Fatal("committed against a permanently down site")
	}
	if res.Attempts != 3 || res.Unavailable != 3 {
		t.Fatalf("res = %+v", res)
	}
}

// hangOnce blocks the first read until released — a hung site that the
// per-attempt timeout must cut loose.
type hangOnce struct {
	mu      sync.Mutex
	hung    bool
	release chan struct{}
}

func (h *hangOnce) Name() string     { return "hang" }
func (h *hangOnce) Begin(int)        {}
func (h *hangOnce) Abort(int)        {}
func (h *hangOnce) Commit(int) error { return nil }
func (h *hangOnce) Read(txn int, item string) (int64, error) {
	h.mu.Lock()
	first := !h.hung
	h.hung = true
	h.mu.Unlock()
	if first {
		<-h.release
		return 0, sched.Unavailable(txn, 1, "stale attempt")
	}
	return 7, nil
}
func (h *hangOnce) Write(txn int, item string, v int64) error { return nil }

// A hung attempt is abandoned by AttemptTimeout, counted as a timeout
// (not a protocol abort), and the retry commits.
func TestAttemptTimeoutAbandonsHungAttempt(t *testing.T) {
	h := &hangOnce{release: make(chan struct{})}
	defer close(h.release) // let the abandoned goroutine drain
	rt := &Runtime{Sched: h, AttemptTimeout: 20 * time.Millisecond, UnavailableBudget: 5}
	done := make(chan Result, 1)
	go func() { done <- rt.Exec(Spec{ID: 1, Ops: []Op{R("x")}}) }()
	select {
	case res := <-done:
		if !res.Committed {
			t.Fatalf("gave up: %+v", res)
		}
		if res.Timeouts != 1 || res.Unavailable != 0 || res.Attempts != 2 {
			t.Fatalf("res = %+v", res)
		}
		if res.Reads["x"] != 7 {
			t.Fatalf("reads = %v", res.Reads)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Exec hung despite AttemptTimeout")
	}
}

// The jitter seed preserves legacy behavior at Seed 0 and varies
// deterministically with the runtime seed otherwise.
func TestJitterSeed(t *testing.T) {
	if got := jitterSeed(0, 42); got != 42 {
		t.Fatalf("jitterSeed(0, 42) = %d, want the legacy spec-ID seed", got)
	}
	a, b := jitterSeed(7, 42), jitterSeed(9, 42)
	if a == 42 || b == 42 {
		t.Fatal("runtime seed not mixed in")
	}
	if a == b {
		t.Fatal("different runtime seeds collapsed to the same jitter seed")
	}
	if jitterSeed(7, 42) != a {
		t.Fatal("jitterSeed is not deterministic")
	}
}
