package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path"
	"sync"
)

// The counter sidecar is the per-site durability half of DMT(k)'s
// partition tolerance: each site persists a write-ahead lease over its
// own (ucnt, lcnt) counter pair in a tiny dedicated log, so a
// recovering site reseeds its k-th-column counters from its OWN disk
// instead of re-validating against live survivors. Under a partition
// the survivors may be unreachable — with the sidecar, recovery still
// guarantees cluster-wide no-reissue, because every counter the dead
// incarnation could have consumed lies below the last lease it
// persisted before consuming.
//
// Frames reuse the WAL framing (| len | crc32c | payload |) with a
// dedicated kindCounter payload: two varint watermarks. Recovery
// truncates a torn tail (crash mid-append) and rejects mid-log
// corruption with the same typed *CorruptError as the main log.
const kindCounter = 3

// counterLogName is the sidecar file inside a site's durable directory.
const counterLogName = "counters.log"

// counterCompactEvery bounds sidecar growth: after this many appended
// leases the log is rewritten as a single frame (temp file + fsync +
// atomic rename, the checkpoint discipline in miniature).
const counterCompactEvery = 256

// CounterLog is one site's durable counter-lease log. Safe for
// concurrent use; Extend is raise-only.
type CounterLog struct {
	fs  FS
	dir string

	mu      sync.Mutex
	f       File
	u, l    int64 // highest persisted lease
	appends int   // frames since the last compaction
	buf     []byte
	closed  bool
}

// OpenCounterLog opens (or creates) the site sidecar in dir and
// recovers the persisted lease: the maximum over all readable frames,
// with a torn final frame truncated away. Mid-log corruption returns a
// typed *CorruptError and refuses to open — a site must not guess its
// lease.
func OpenCounterLog(fsys FS, dir string) (*CounterLog, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: counter sidecar mkdir: %w", err)
	}
	name := path.Join(dir, counterLogName)
	c := &CounterLog{fs: fsys, dir: dir}
	data, err := fsys.ReadFile(name)
	if err != nil && !notExist(err) {
		return nil, fmt.Errorf("wal: counter sidecar read: %w", err)
	}
	goodLen, frames, err := c.replay(data)
	if err != nil {
		return nil, err
	}
	if goodLen < len(data) {
		if err := fsys.Truncate(name, int64(goodLen)); err != nil {
			return nil, fmt.Errorf("wal: counter sidecar truncate torn tail: %w", err)
		}
	}
	c.appends = frames
	f, err := fsys.OpenAppend(name)
	if err != nil {
		return nil, fmt.Errorf("wal: counter sidecar open: %w", err)
	}
	c.f = f
	return c, nil
}

// replay scans the sidecar image, raising c.u/c.l from each valid
// frame. Returns the valid prefix length and the frame count.
func (c *CounterLog) replay(data []byte) (goodLen, frames int, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return off, frames, nil // torn header
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if n > maxFrame {
			if uint64(off)+8+uint64(n) > uint64(len(data)) {
				return off, frames, nil // torn length field
			}
			return 0, 0, &CorruptError{Offset: int64(off), Reason: "frame length exceeds limit"}
		}
		if off+8+int(n) > len(data) {
			return off, frames, nil // torn payload
		}
		want := binary.LittleEndian.Uint32(rest[4:8])
		payload := rest[8 : 8+int(n)]
		if crc32.Checksum(payload, castagnoli) != want {
			return 0, 0, &CorruptError{Offset: int64(off), Reason: "crc mismatch"}
		}
		u, l, derr := decodeCounter(payload)
		if derr != nil {
			return 0, 0, &CorruptError{Offset: int64(off), Reason: derr.Error()}
		}
		if u > c.u {
			c.u = u
		}
		if l > c.l {
			c.l = l
		}
		frames++
		off += 8 + int(n)
	}
	return off, frames, nil
}

// decodeCounter decodes a kindCounter payload: kind byte + two varints.
func decodeCounter(payload []byte) (u, l int64, err error) {
	if len(payload) == 0 || payload[0] != kindCounter {
		return 0, 0, fmt.Errorf("unexpected record kind")
	}
	p := &payloadReader{buf: payload, off: 1}
	u = p.varint()
	l = p.varint()
	if p.err != nil {
		return 0, 0, p.err
	}
	if !p.done() {
		return 0, 0, fmt.Errorf("trailing bytes in counter payload")
	}
	return u, l, nil
}

// appendPayloadCounter encodes a lease body (without framing).
func appendPayloadCounter(buf []byte, u, l int64) []byte {
	buf = append(buf, kindCounter)
	buf = binary.AppendVarint(buf, u)
	buf = binary.AppendVarint(buf, l)
	return buf
}

// Watermarks returns the persisted lease — the reseed point for
// SiteCounters.SetDurable after a restart.
func (c *CounterLog) Watermarks() (u, l int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.u, c.l
}

// Extend persists a new lease covering (u, l): append one framed
// record and fsync before returning, so by the time any counter under
// the lease is consumed the lease is durable. Raise-only; a lease not
// above the persisted one returns nil without touching the disk.
func (c *CounterLog) Extend(u, l int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("wal: counter sidecar closed")
	}
	if u <= c.u && l <= c.l {
		return nil
	}
	if u < c.u {
		u = c.u
	}
	if l < c.l {
		l = c.l
	}
	if c.appends >= counterCompactEvery {
		if err := c.compactLocked(u, l); err != nil {
			return err
		}
		c.u, c.l = u, l
		return nil
	}
	c.buf = appendFrame(c.buf[:0], appendPayloadCounter(nil, u, l))
	if _, err := c.f.Write(c.buf); err != nil {
		return fmt.Errorf("wal: counter sidecar append: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("wal: counter sidecar sync: %w", err)
	}
	c.u, c.l = u, l
	c.appends++
	return nil
}

// compactLocked rewrites the log as a single frame: temp file, fsync,
// atomic rename, reopen for append. Caller holds mu.
func (c *CounterLog) compactLocked(u, l int64) error {
	name := path.Join(c.dir, counterLogName)
	tmp := name + ".tmp"
	f, err := c.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: counter sidecar compact create: %w", err)
	}
	frame := appendFrame(nil, appendPayloadCounter(nil, u, l))
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("wal: counter sidecar compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: counter sidecar compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: counter sidecar compact close: %w", err)
	}
	if err := c.fs.Rename(tmp, name); err != nil {
		return fmt.Errorf("wal: counter sidecar compact rename: %w", err)
	}
	old := c.f
	nf, err := c.fs.OpenAppend(name)
	if err != nil {
		return fmt.Errorf("wal: counter sidecar compact reopen: %w", err)
	}
	c.f = nf
	_ = old.Close()
	c.appends = 1
	return nil
}

// Close releases the file handle. Further Extends fail.
func (c *CounterLog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.f.Close()
}
