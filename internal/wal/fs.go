// Package wal is the durability subsystem: a crash-safe redo log plus
// checkpoints that make scheduler commits survive process death. Each
// committed write batch appends one CRC32C-framed, length-prefixed
// record carrying the transaction id, the write set with per-item
// versions, the store version, and the scheduler's k-th-column counter
// watermarks (so a restarted scheduler never re-issues a consumed
// counter value — the durability half of the paper's "synchronize the
// counters periodically" remark). Appends flow through a group-commit
// batcher in the style of Taurus' lightweight parallel logging: the
// first committer to need durability becomes the flush leader, gathers
// company for a bounded delay, writes the whole batch and fsyncs once,
// and every rider's commit acks on that single fsync.
//
// Checkpoint persists a snapshot of the store (temp file, fsync,
// atomic rename) and truncates the log so recovery replays a bounded
// suffix. Recover loads snapshot + suffix, truncates a torn tail
// (partial final record — the expected shape of a crash) and rejects
// mid-log corruption with a typed error, never silently replaying it.
//
// All file I/O goes through the FS interface so the crash-point
// harness can substitute MemFS: an in-memory filesystem with a
// buffer-cache model (unsynced bytes die on crash, modulo a
// deterministic torn tail) and fault-style seeded crash scheduling.
package wal

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of file operations the log needs.
type File interface {
	Write(p []byte) (int, error)
	// Sync forces written data to stable storage.
	Sync() error
	Close() error
}

// FS abstracts the filesystem so crash-point tests can model exactly
// which bytes survive a crash. All paths are slash-separated and
// relative to the FS root.
type FS interface {
	// MkdirAll ensures the directory exists.
	MkdirAll(dir string) error
	// Create opens a file for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns the whole content; a missing file reports an
	// error satisfying errors.Is(err, fs.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Truncate cuts the named file to the given size.
	Truncate(name string, size int64) error
	// Remove deletes the file; missing files are not an error.
	Remove(name string) error
}

// OSFS implements FS on the real filesystem. Renames are followed by a
// best-effort fsync of the parent directory so the new directory entry
// is durable, matching the crash model MemFS simulates.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	syncDir(filepath.Dir(newname))
	return nil
}

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Remove implements FS.
func (OSFS) Remove(name string) error {
	err := os.Remove(name)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// syncDir fsyncs a directory, making renames durable on filesystems
// that require it. Best effort: some platforms refuse to fsync
// directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// notExist reports whether the error means "no such file".
func notExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
