package wal

import (
	"errors"
	"hash/fnv"
	"io/fs"
	"sync"

	"repro/internal/fault"
)

// ErrCrash is injected by MemFS at a scheduled I/O boundary: the
// simulated process has died and every further filesystem operation
// fails. Callers observing it must abandon the writer and reopen the
// directory through Recover (after MemFS.Restart).
var ErrCrash = errors.New("wal: crash injected")

// MemFS is an in-memory FS with a buffer-cache crash model, the disk
// half of the crash-point harness. Every mutating operation advances a
// logical I/O clock (the fault package's seeded-clock idiom); when the
// clock reaches the scheduled crash point the operation fails with
// ErrCrash, all subsequent operations fail with ErrCrash, and the
// "disk" freezes at exactly the durable image:
//
//   - bytes written but never synced die, except for a deterministic
//     torn prefix (fault.Mix of the seed and the crash op) — the
//     partial final record a real crash leaves behind;
//   - metadata operations (create, rename, truncate, remove) that
//     completed before the crash survive, modeling a journaling
//     filesystem with ordered metadata.
//
// Restart clears the crashed flag and promotes the surviving image to
// durable, modeling the process restart that recovery runs in.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	seed    int64
	ops     int64 // logical I/O clock: mutating operations so far
	crashAt int64 // 0 = never; the op that reaches it fails with ErrCrash
	crashed bool
}

type memFile struct {
	data    []byte
	durable int // bytes guaranteed to survive a crash
}

// NewMemFS returns an empty in-memory filesystem. The seed drives the
// torn-tail length at crash time; crashAt schedules the crash on the
// crashAt-th mutating operation (0 disables crashing).
func NewMemFS(seed, crashAt int64) *MemFS {
	return &MemFS{files: make(map[string]*memFile), seed: seed, crashAt: crashAt}
}

// Ops returns the logical I/O clock (mutating operations so far), used
// by the crash matrix to size its sweep.
func (m *MemFS) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the scheduled crash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Restart models the post-crash process restart: the surviving image
// becomes the new durable state and operations work again. No further
// crash is scheduled. It is also safe to call without a crash (no-op
// beyond clearing the schedule).
func (m *MemFS) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
	m.crashAt = 0
	for _, f := range m.files {
		f.durable = len(f.data)
	}
}

// op advances the logical clock and fires the scheduled crash. Caller
// holds mu. Returns ErrCrash if the filesystem is (now) dead.
func (m *MemFS) op() error {
	if m.crashed {
		return ErrCrash
	}
	m.ops++
	if m.crashAt > 0 && m.ops >= m.crashAt {
		m.crashLocked()
		return ErrCrash
	}
	return nil
}

// crashLocked freezes the disk at its durable image plus a
// deterministic torn prefix of each file's unsynced bytes.
func (m *MemFS) crashLocked() {
	m.crashed = true
	for name, f := range m.files {
		unsynced := len(f.data) - f.durable
		if unsynced <= 0 {
			continue
		}
		h := fnv.New32a()
		h.Write([]byte(name))
		torn := int(fault.Mix(m.seed^int64(h.Sum32()), m.ops) % uint64(unsynced+1))
		f.data = f.data[:f.durable+torn]
		f.durable = len(f.data)
	}
}

// MkdirAll implements FS (directories are implicit in MemFS).
func (m *MemFS) MkdirAll(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrash
	}
	return nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return nil, err
	}
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return nil, err
	}
	if m.files[name] == nil {
		m.files[name] = &memFile{}
	}
	return &memHandle{fs: m, name: name}, nil
}

// ReadFile implements FS. Reads see the volatile view (the page cache)
// and do not advance the crash clock.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrash
	}
	f := m.files[name]
	if f == nil {
		return nil, fs.ErrNotExist
	}
	return append([]byte(nil), f.data...), nil
}

// Rename implements FS: atomic and, per the ordered-metadata model,
// durable once it returns.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	f := m.files[oldname]
	if f == nil {
		return fs.ErrNotExist
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	f := m.files[name]
	if f == nil {
		return fs.ErrNotExist
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.durable > len(f.data) {
		f.durable = len(f.data)
	}
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	delete(m.files, name)
	return nil
}

// memHandle is an open MemFS file. All writes append (the log's only
// write pattern; Create starts from empty).
type memHandle struct {
	fs   *MemFS
	name string
}

// Write implements File: bytes land in the volatile view and die on
// crash unless synced.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.op(); err != nil {
		return 0, err
	}
	f := h.fs.files[h.name]
	if f == nil {
		return 0, fs.ErrNotExist
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

// Sync implements File: the volatile view becomes durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.op(); err != nil {
		return err
	}
	f := h.fs.files[h.name]
	if f == nil {
		return fs.ErrNotExist
	}
	f.durable = len(f.data)
	return nil
}

// Close implements File.
func (h *memHandle) Close() error { return nil }
