package wal

import (
	"fmt"
	"path"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// Log file names inside the WAL directory.
const (
	logName  = "wal.log"
	ckptName = "checkpoint"
	tmpName  = "checkpoint.tmp"
)

// SyncPolicy selects when the log reaches stable storage.
type SyncPolicy int

const (
	// SyncGroup fsyncs once per group-commit batch: the flush leader
	// waits BatchDelay for company, then one fsync acks every rider.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs eagerly, without waiting for company. Under
	// contention waiters still coalesce behind the current leader, so
	// this degrades gracefully rather than serializing fully.
	SyncAlways
	// SyncNone never fsyncs: commits ack after the buffered write.
	// Fast, and exactly as durable as it sounds — for experiments that
	// want log bytes without paying for stable storage.
	SyncNone
)

// String names the policy (flag value round-trip).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "group"
	}
}

// ParseSyncPolicy parses a -walsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "group", "":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return SyncGroup, fmt.Errorf("wal: unknown sync policy %q (want always, group or none)", s)
}

// Options configures a Writer.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// FS is the filesystem; nil means the real one (OSFS).
	FS FS
	// Sync selects the fsync policy (zero value: SyncGroup).
	Sync SyncPolicy
	// BatchDelay is how long a flush leader waits for company under
	// SyncGroup (default 200µs; <0 disables waiting).
	BatchDelay time.Duration
	// BatchBytes flushes without waiting once the queue reaches this
	// size (default 256 KiB).
	BatchBytes int
	// CheckpointEvery checkpoints automatically after this many
	// records reach the log (0 = only explicit Checkpoint calls).
	CheckpointEvery int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FS == nil {
		out.FS = OSFS{}
	}
	if out.BatchDelay == 0 {
		out.BatchDelay = 200 * time.Microsecond
	}
	if out.BatchBytes <= 0 {
		out.BatchBytes = 256 << 10
	}
	return out
}

// Stats counts the writer's I/O work. Histograms carry nanosecond
// samples.
type Stats struct {
	// Appends counts records enqueued.
	Appends metrics.Counter
	// Flushes counts write(+fsync) batches; Syncs counts actual fsyncs.
	Flushes metrics.Counter
	// Syncs counts fsync calls on the log file.
	Syncs metrics.Counter
	// Bytes counts log bytes written.
	Bytes metrics.Counter
	// Checkpoints counts completed checkpoints.
	Checkpoints metrics.Counter
	// FsyncNs samples the write+fsync latency of each flush batch.
	FsyncNs metrics.Histogram
	// BatchRecords samples records per flush batch (group-commit
	// effectiveness: mean ≈ commits amortized per fsync).
	BatchRecords metrics.Histogram
}

// Writer is the redo-log writer. One Writer owns a WAL directory;
// open it with Open, wire it to a store and scheduler with Attach,
// and commits become durable via Journal (enqueue, called under the
// store lock) + Wait (group-commit flush, called by the runtime after
// Commit returns).
type Writer struct {
	opts  Options
	file  File
	store *storage.Store
	// counters samples the scheduler's (lo, hi) watermarks; set by
	// Attach. Called inside Journal, i.e. under the store mutex, which
	// the schedulers hold while their own counter mutex is held — the
	// sample is consistent with the batch being journaled.
	counters func() (lo, hi int64)

	// mu protects the queue and bookkeeping. Never held across I/O.
	mu       sync.Mutex
	queue    []byte          // encoded frames awaiting flush
	qRecords int64           // records in queue
	qTxns    []int64         // txns with tickets in queue
	txnVer   map[int64]int64 // txn -> version awaiting durability
	queueVer int64           // version of the newest enqueued record
	durable  int64           // newest version known flushed (+synced)
	lastLo   int64           // monotone counter watermarks of the
	lastHi   int64           //   newest enqueued record
	since    int64           // records logged since the last checkpoint
	err      error           // sticky I/O error; everything fails after

	// flushMu serializes flush leaders and checkpoints. Held across
	// I/O; waiters parked on it form the next group.
	flushMu sync.Mutex

	stats Stats
}

// Open recovers the WAL directory and returns a Writer appending after
// the recovered tail, plus the recovered state (never nil on success;
// empty for a fresh directory). Corruption fails the open.
func Open(opts Options) (*Writer, *RecoveredState, error) {
	o := opts.withDefaults()
	if err := o.FS.MkdirAll(o.Dir); err != nil {
		return nil, nil, err
	}
	st, err := Recover(o.FS, o.Dir)
	if err != nil {
		return nil, nil, err
	}
	f, err := o.FS.OpenAppend(path.Join(o.Dir, logName))
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{
		opts:     o,
		file:     f,
		txnVer:   make(map[int64]int64),
		queueVer: st.Store.Version,
		durable:  st.Store.Version,
		lastLo:   st.Lo,
		lastHi:   st.Hi,
		since:    int64(st.Records),
	}
	return w, st, nil
}

// Attach wires the writer to a store (journaling every committed
// batch) and a counter source (nil for schedulers without durable
// counters). Call before traffic flows.
func (w *Writer) Attach(store *storage.Store, counters func() (lo, hi int64)) {
	w.store = store
	w.counters = counters
	store.SetJournal(w.Journal)
}

// SetCounterSource installs the watermark sampler after Attach — for
// callers that must attach the journal (to capture seeding batches)
// before the scheduler exists. Call before traffic flows: the field is
// read without a lock by the journal hook.
func (w *Writer) SetCounterSource(counters func() (lo, hi int64)) {
	w.counters = counters
}

// Journal enqueues a redo record for a committed batch. It runs under
// the store mutex and therefore observes batches in commit order; it
// never touches the file (the group-commit flush does).
func (w *Writer) Journal(ev storage.ApplyEvent) {
	var lo, hi int64
	if w.counters != nil {
		lo, hi = w.counters()
	}
	kvs := sortedKVs(ev.Writes, ev.Vers)

	w.mu.Lock()
	defer w.mu.Unlock()
	// Watermarks are monotone by contract; max defensively so a lagging
	// source can never roll a record's watermark backwards.
	if lo < w.lastLo {
		lo = w.lastLo
	}
	if hi < w.lastHi {
		hi = w.lastHi
	}
	rec := Record{Txn: int64(ev.Txn), Version: ev.Version, Lo: lo, Hi: hi, Writes: kvs}
	w.queue = appendFrame(w.queue, appendPayloadCommit(nil, rec))
	w.qRecords++
	w.queueVer = ev.Version
	w.lastLo, w.lastHi = lo, hi
	w.since++
	if ev.Txn != 0 {
		w.txnVer[int64(ev.Txn)] = ev.Version
		w.qTxns = append(w.qTxns, int64(ev.Txn))
	}
	w.stats.Appends.Inc()
}

// Wait blocks until txn's commit record is durable (per the sync
// policy) and returns the sticky I/O error if durability was lost.
// The first waiter becomes the flush leader: it gathers company for
// BatchDelay, writes the whole queue, fsyncs once, and every waiter
// parked behind it rides the same fsync. A txn with no pending record
// (read-only, or already flushed by an earlier leader) returns
// immediately.
func (w *Writer) Wait(txn int) error {
	w.mu.Lock()
	ver, ok := w.txnVer[int64(txn)]
	if !ok {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return w.waitVersion(ver)
}

// waitVersion drives the leader-follower loop until version ver is
// durable or the writer has failed.
func (w *Writer) waitVersion(ver int64) error {
	for {
		w.mu.Lock()
		if w.durable >= ver {
			w.mu.Unlock()
			return nil
		}
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		w.mu.Unlock()

		w.flushMu.Lock()
		w.mu.Lock()
		done := w.durable >= ver || w.err != nil
		needDelay := w.opts.Sync == SyncGroup && w.opts.BatchDelay > 0 &&
			len(w.queue) < w.opts.BatchBytes
		w.mu.Unlock()
		if done {
			w.flushMu.Unlock()
			continue // top of loop resolves success vs error
		}
		if needDelay {
			// Gather company: commits journaled during the sleep join
			// this batch; their Wait calls park on flushMu behind us.
			time.Sleep(w.opts.BatchDelay)
		}
		w.flushLocked()
		w.flushMu.Unlock()
	}
}

// flushLocked writes and fsyncs the queued frames. Caller holds
// flushMu (and must not hold mu).
func (w *Writer) flushLocked() {
	w.mu.Lock()
	buf := w.queue
	recs := w.qRecords
	txns := w.qTxns
	ver := w.queueVer
	w.queue, w.qRecords, w.qTxns = nil, 0, nil
	w.mu.Unlock()
	if len(buf) == 0 {
		return
	}

	start := time.Now()
	_, err := w.file.Write(buf)
	if err == nil && w.opts.Sync != SyncNone {
		err = w.file.Sync()
		w.stats.Syncs.Inc()
	}
	w.stats.Flushes.Inc()
	w.stats.FsyncNs.ObserveSince(start)
	w.stats.BatchRecords.Observe(recs)
	w.stats.Bytes.Add(int64(len(buf)))

	w.mu.Lock()
	if err != nil {
		w.err = err
		w.mu.Unlock()
		return
	}
	w.durable = ver
	for _, t := range txns {
		delete(w.txnVer, t)
	}
	auto := w.opts.CheckpointEvery > 0 && w.since >= int64(w.opts.CheckpointEvery)
	w.mu.Unlock()

	if auto && w.store != nil {
		// Leader pays the checkpoint; riders still ack as soon as
		// flushMu releases since their versions are already durable.
		_ = w.checkpointLocked()
	}
}

// Checkpoint snapshots the store into the checkpoint file and
// truncates the log. Safe at every intermediate crash point: the old
// checkpoint + full log stay valid until the atomic rename, and after
// it every log record is superseded by the snapshot.
func (w *Writer) Checkpoint() error {
	if w.store == nil {
		return fmt.Errorf("wal: Checkpoint before Attach")
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.flushLocked()
	return w.checkpointLocked()
}

// checkpointLocked does the work; caller holds flushMu with the queue
// drained. Only flushMu holders write the log file, so every record in
// it has version <= the snapshot version taken here and truncating the
// log after the rename loses nothing.
func (w *Writer) checkpointLocked() error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()

	st := w.store.State()
	// Sample the watermarks only AFTER the snapshot is taken: the
	// journal hook runs under the store write lock, so every commit
	// State() captured has already raised lastLo/lastHi. A commit
	// landing between the snapshot and this sample merely rounds the
	// watermarks up, which is safe — they are monotone consumption
	// bounds. Sampling before the snapshot would let such a commit into
	// the checkpoint *without* its counter state; after the truncate,
	// recovery would skip its log record as superseded and seed the
	// scheduler below counters a durable commit already consumed.
	w.mu.Lock()
	lo, hi := w.lastLo, w.lastHi
	w.mu.Unlock()
	c := checkpoint{Version: st.Version, Lo: lo, Hi: hi, Items: stateKVs(st)}
	frame := appendFrame(nil, appendPayloadCheckpoint(nil, c))

	fail := func(err error) error {
		w.mu.Lock()
		if w.err == nil {
			w.err = err
		}
		w.mu.Unlock()
		return err
	}
	tmp := path.Join(w.opts.Dir, tmpName)
	f, err := w.opts.FS.Create(tmp)
	if err != nil {
		return fail(err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := w.opts.FS.Rename(tmp, path.Join(w.opts.Dir, ckptName)); err != nil {
		return fail(err)
	}
	// The snapshot now owns everything in the log; an old log tail is
	// merely redundant, so a crash between rename and truncate is safe.
	if err := w.opts.FS.Truncate(path.Join(w.opts.Dir, logName), 0); err != nil {
		return fail(err)
	}
	w.mu.Lock()
	w.since = 0
	w.mu.Unlock()
	w.stats.Checkpoints.Inc()
	return nil
}

// stateKVs flattens a store state into the checkpoint's sorted items.
// Items with a version but no data (never the case today) default to
// value 0, matching Store.Get on a missing key.
func stateKVs(st storage.State) []KV {
	vals := make(map[string]int64, len(st.Data))
	for x, v := range st.Data {
		vals[x] = v
	}
	for x := range st.ItemVers {
		if _, ok := vals[x]; !ok {
			vals[x] = 0
		}
	}
	return sortedKVs(vals, st.ItemVers)
}

// Flush forces the queue to stable storage without waiting on a
// specific transaction (used at shutdown and by tests).
func (w *Writer) Flush() error {
	w.flushMu.Lock()
	w.flushLocked()
	w.flushMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes and closes the log file. The writer is unusable after.
func (w *Writer) Close() error {
	err := w.Flush()
	if cerr := w.file.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats exposes the writer's counters (live; safe to read while
// running).
func (w *Writer) Stats() *Stats { return &w.stats }

// LastWatermarks returns the counter watermarks carried by the newest
// journaled record (the recovered pair before any traffic). Journal
// runs under the store mutex, so a journal observer calling this for
// the same batch — i.e. under the same store-mutex hold, after the
// WAL's hook — reads exactly the pair that batch's record persists.
func (w *Writer) LastWatermarks() (lo, hi int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLo, w.lastHi
}

// DurableVersion returns the newest store version known durable.
func (w *Writer) DurableVersion() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}
