package wal

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

// testOpen opens a writer over fsys with test-friendly batching.
func testOpen(t *testing.T, fsys FS, every int) (*Writer, *RecoveredState) {
	t.Helper()
	w, st, err := Open(Options{
		Dir:             "d",
		FS:              fsys,
		BatchDelay:      100 * time.Microsecond,
		CheckpointEvery: every,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w, st
}

// commit applies one batch through the store (journaling it) and waits
// for durability.
func commit(t *testing.T, w *Writer, s *storage.Store, txn int, writes map[string]int64) {
	t.Helper()
	s.ApplyTxn(txn, writes)
	if err := w.Wait(txn); err != nil {
		t.Fatalf("Wait(%d): %v", txn, err)
	}
}

func TestRoundtrip(t *testing.T) {
	fsys := NewMemFS(1, 0)
	w, st := testOpen(t, fsys, 0)
	if st.Store.Version != 0 || len(st.Store.Data) != 0 {
		t.Fatalf("fresh dir recovered non-empty state: %+v", st)
	}
	s := storage.Restore(st.Store)
	var lo, hi int64
	w.Attach(s, func() (int64, int64) { return lo, hi })

	lo, hi = 1, 2
	commit(t, w, s, 7, map[string]int64{"x": 10, "y": 20})
	lo, hi = 3, 5
	commit(t, w, s, 8, map[string]int64{"x": 11})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, err := Recover(fsys, "d")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !reflect.DeepEqual(got.Store, s.State()) {
		t.Fatalf("recovered state %+v != live state %+v", got.Store, s.State())
	}
	if got.Lo != 3 || got.Hi != 5 {
		t.Fatalf("watermarks = (%d,%d), want (3,5)", got.Lo, got.Hi)
	}
	if got.Records != 2 || got.TornBytes != 0 {
		t.Fatalf("Records=%d TornBytes=%d, want 2, 0", got.Records, got.TornBytes)
	}
}

func TestReadOnlyWaitReturnsImmediately(t *testing.T) {
	fsys := NewMemFS(1, 0)
	w, st := testOpen(t, fsys, 0)
	s := storage.Restore(st.Store)
	w.Attach(s, nil)
	if err := w.Wait(42); err != nil { // never journaled anything
		t.Fatalf("Wait for read-only txn: %v", err)
	}
}

func TestEmptyLogRecovers(t *testing.T) {
	fsys := NewMemFS(1, 0)
	st, err := Recover(fsys, "d")
	if err != nil {
		t.Fatalf("Recover on missing dir: %v", err)
	}
	if st.Store.Version != 0 || st.Records != 0 || st.Lo != 0 || st.Hi != 0 {
		t.Fatalf("missing dir state: %+v", st)
	}
}

// buildLog commits n batches and returns the fs and final store state.
func buildLog(t *testing.T, n int) (*MemFS, storage.State) {
	t.Helper()
	fsys := NewMemFS(1, 0)
	w, st := testOpen(t, fsys, 0)
	s := storage.Restore(st.Store)
	var ctr int64
	w.Attach(s, func() (int64, int64) { ctr++; return ctr, ctr * 2 })
	for i := 1; i <= n; i++ {
		commit(t, w, s, i, map[string]int64{fmt.Sprintf("k%d", i%3): int64(i)})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return fsys, s.State()
}

func TestTornTailEveryByte(t *testing.T) {
	fsys, _ := buildLog(t, 3)
	full, err := fsys.ReadFile("d/" + logName)
	if err != nil {
		t.Fatal(err)
	}
	// Find the byte offsets of the record boundaries.
	_, goodLen, torn, perr := parseLog(full)
	if perr != nil || torn || goodLen != len(full) {
		t.Fatalf("reference log not clean: torn=%v err=%v", torn, perr)
	}
	recs, _, _, _ := parseLog(full)
	if len(recs) != 3 {
		t.Fatalf("want 3 records, got %d", len(recs))
	}
	// Offset where the final record starts: parse the first two frames.
	secondEnd := 0
	for i := 0; i < 2; i++ {
		n := int(uint32(full[secondEnd]) | uint32(full[secondEnd+1])<<8 |
			uint32(full[secondEnd+2])<<16 | uint32(full[secondEnd+3])<<24)
		secondEnd += 8 + n
	}

	for cut := secondEnd; cut < len(full); cut++ {
		fs2 := NewMemFS(1, 0)
		if err := fs2.MkdirAll("d"); err != nil {
			t.Fatal(err)
		}
		f, err := fs2.Create("d/" + logName)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(full[:cut]); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		st, err := Recover(fs2, "d")
		if err != nil {
			t.Fatalf("cut=%d: Recover: %v", cut, err)
		}
		if st.Records != 2 {
			t.Fatalf("cut=%d: replayed %d records, want 2", cut, st.Records)
		}
		wantTorn := int64(cut - secondEnd)
		if st.TornBytes != wantTorn {
			t.Fatalf("cut=%d: TornBytes=%d, want %d", cut, st.TornBytes, wantTorn)
		}
		// The torn tail must be gone from disk now.
		after, _ := fs2.ReadFile("d/" + logName)
		if len(after) != secondEnd {
			t.Fatalf("cut=%d: log not truncated: %d bytes, want %d", cut, len(after), secondEnd)
		}
		// Idempotence: a second recovery sees a clean log, same state.
		st2, err := Recover(fs2, "d")
		if err != nil {
			t.Fatalf("cut=%d: second Recover: %v", cut, err)
		}
		if st2.TornBytes != 0 || !reflect.DeepEqual(st2.Store, st.Store) {
			t.Fatalf("cut=%d: second recovery differs: %+v vs %+v", cut, st2, st)
		}
	}
}

func TestCorruptMidLogRejected(t *testing.T) {
	fsys, _ := buildLog(t, 3)
	full, _ := fsys.ReadFile("d/" + logName)
	// Flip a payload byte of the FIRST record (inside its frame, past
	// the 8-byte header) — a complete frame with a bad CRC.
	mut := append([]byte(nil), full...)
	mut[9] ^= 0xFF
	fs2 := NewMemFS(1, 0)
	f, _ := fs2.Create("d/" + logName)
	f.Write(mut)
	f.Sync()
	_, err := Recover(fs2, "d")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt mid-log record: err=%v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CorruptError: %v", err)
	}
}

func TestVersionGapRejected(t *testing.T) {
	// Two records with versions 1 and 3: contiguity violation.
	r1 := appendFrame(nil, appendPayloadCommit(nil, Record{Txn: 1, Version: 1}))
	r3 := appendFrame(nil, appendPayloadCommit(nil, Record{Txn: 3, Version: 3}))
	fs2 := NewMemFS(1, 0)
	f, _ := fs2.Create("d/" + logName)
	f.Write(append(r1, r3...))
	f.Sync()
	_, err := Recover(fs2, "d")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gapped log: err=%v, want ErrCorrupt", err)
	}
	if !errors.Is(err, ErrGap) {
		t.Fatalf("gapped log: err=%v, want ErrGap distinguishable via errors.Is", err)
	}
}

// writeWALFile creates one file in the MemFS with the given bytes.
func writeWALFile(t *testing.T, fsys *MemFS, name string, data []byte) {
	t.Helper()
	f, err := fsys.Create("d/" + name)
	if err != nil {
		t.Fatalf("Create %s: %v", name, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("Write %s: %v", name, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync %s: %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close %s: %v", name, err)
	}
}

// TestSuffixGapAfterCheckpointRejected covers the Recover-level gap: a
// log whose first live record does not continue the checkpoint version.
func TestSuffixGapAfterCheckpointRejected(t *testing.T) {
	fsys := NewMemFS(1, 0)
	writeWALFile(t, fsys, ckptName, appendFrame(nil, appendPayloadCheckpoint(nil, checkpoint{Version: 2})))
	writeWALFile(t, fsys, logName, appendFrame(nil, appendPayloadCommit(nil, Record{Txn: 5, Version: 5})))
	_, err := Recover(fsys, "d")
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, ErrGap) {
		t.Fatalf("suffix gap: err=%v, want ErrCorrupt and ErrGap", err)
	}
}

// TestSupersededRecordsRepairWatermarks models a checkpoint whose
// watermarks lag its snapshot (a historical or buggy writer): the
// superseded log records still carry the true consumption bounds, and
// recovery must fold them in rather than trusting the checkpoint alone.
func TestSupersededRecordsRepairWatermarks(t *testing.T) {
	ck := appendFrame(nil, appendPayloadCheckpoint(nil, checkpoint{
		Version: 2, Lo: 0, Hi: 0,
		Items: []KV{{Item: "x", Val: 2, Ver: 2}},
	}))
	log := appendFrame(nil, appendPayloadCommit(nil, Record{
		Txn: 1, Version: 1, Lo: 1, Hi: 2, Writes: []KV{{Item: "x", Val: 1, Ver: 1}}}))
	log = appendFrame(log, appendPayloadCommit(nil, Record{
		Txn: 2, Version: 2, Lo: 3, Hi: 6, Writes: []KV{{Item: "x", Val: 2, Ver: 2}}}))
	fsys := NewMemFS(1, 0)
	writeWALFile(t, fsys, ckptName, ck)
	writeWALFile(t, fsys, logName, log)
	got, err := Recover(fsys, "d")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got.Store.Version != 2 || got.Records != 0 {
		t.Fatalf("version=%d records=%d, want version 2 with 0 replayed", got.Store.Version, got.Records)
	}
	if got.Lo != 3 || got.Hi != 6 {
		t.Fatalf("watermarks (%d,%d), want (3,6) repaired from superseded records", got.Lo, got.Hi)
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	fsys := NewMemFS(1, 0)
	w, st := testOpen(t, fsys, 0)
	s := storage.Restore(st.Store)
	w.Attach(s, func() (int64, int64) { return 9, 11 })
	commit(t, w, s, 1, map[string]int64{"a": 1})
	commit(t, w, s, 2, map[string]int64{"b": 2})
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if buf, _ := fsys.ReadFile("d/" + logName); len(buf) != 0 {
		t.Fatalf("log not truncated after checkpoint: %d bytes", len(buf))
	}

	// Checkpoint with empty suffix recovers exactly.
	got, err := Recover(fsys, "d")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !reflect.DeepEqual(got.Store, s.State()) {
		t.Fatalf("recovered %+v != live %+v", got.Store, s.State())
	}
	if got.Records != 0 {
		t.Fatalf("Records=%d after checkpoint with empty suffix, want 0", got.Records)
	}
	if got.Lo != 9 || got.Hi != 11 {
		t.Fatalf("checkpoint watermarks (%d,%d), want (9,11)", got.Lo, got.Hi)
	}

	// More commits after the checkpoint land in the (short) log.
	commit(t, w, s, 3, map[string]int64{"a": 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = Recover(fsys, "d")
	if err != nil {
		t.Fatalf("Recover after post-checkpoint commit: %v", err)
	}
	if !reflect.DeepEqual(got.Store, s.State()) || got.Records != 1 {
		t.Fatalf("post-checkpoint recovery: %+v (records=%d)", got.Store, got.Records)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	fsys := NewMemFS(1, 0)
	w, st := testOpen(t, fsys, 4)
	s := storage.Restore(st.Store)
	w.Attach(s, nil)
	for i := 1; i <= 10; i++ {
		commit(t, w, s, i, map[string]int64{"x": int64(i)})
	}
	if w.Stats().Checkpoints.Value() == 0 {
		t.Fatal("no automatic checkpoint after 10 commits with CheckpointEvery=4")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(fsys, "d")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !reflect.DeepEqual(got.Store, s.State()) {
		t.Fatalf("recovered %+v != live %+v", got.Store, s.State())
	}
}

// TestGroupCommitStress hammers the writer from many goroutines; run
// under -race this exercises the queue/flush/ack handoffs.
func TestGroupCommitStress(t *testing.T) {
	fsys := NewMemFS(1, 0)
	w, st := testOpen(t, fsys, 50)
	s := storage.Restore(st.Store)
	w.Attach(s, nil)

	const workers, per = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := g*per + i + 1
				s.ApplyTxn(txn, map[string]int64{fmt.Sprintf("w%d", g): int64(i)})
				if err := w.Wait(txn); err != nil {
					errs <- fmt.Errorf("txn %d: %w", txn, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Recover(fsys, "d")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !reflect.DeepEqual(got.Store, s.State()) {
		t.Fatalf("recovered state diverged from live state")
	}
	if mean := w.Stats().BatchRecords.Mean(); mean < 1 {
		t.Fatalf("batch records mean %v < 1", mean)
	}
}

func TestReopenContinuesLog(t *testing.T) {
	fsys := NewMemFS(1, 0)
	w, st := testOpen(t, fsys, 0)
	s := storage.Restore(st.Store)
	w.Attach(s, nil)
	commit(t, w, s, 1, map[string]int64{"x": 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, st2 := testOpen(t, fsys, 0)
	if st2.Store.Version != 1 {
		t.Fatalf("reopened at version %d, want 1", st2.Store.Version)
	}
	s2 := storage.Restore(st2.Store)
	w2.Attach(s2, nil)
	commit(t, w2, s2, 2, map[string]int64{"y": 2})
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Recover(fsys, "d")
	if err != nil {
		t.Fatal(err)
	}
	if got.Store.Version != 2 || got.Store.Data["x"] != 1 || got.Store.Data["y"] != 2 {
		t.Fatalf("recovery across reopen: %+v", got.Store)
	}
}

func TestMemFSCrashSemantics(t *testing.T) {
	// Unsynced bytes die (modulo torn prefix); synced bytes survive;
	// post-crash operations fail; Restart revives the survivors.
	fsys := NewMemFS(7, 0)
	f, err := fsys.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("volatile"))

	// Schedule the crash on the very next op.
	fsys.mu.Lock()
	fsys.crashAt = fsys.ops + 1
	fsys.mu.Unlock()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrash) {
		t.Fatalf("write at crash point: err=%v, want ErrCrash", err)
	}
	if !fsys.Crashed() {
		t.Fatal("Crashed() = false after injected crash")
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash write: err=%v, want ErrCrash", err)
	}
	if _, err := fsys.ReadFile("f"); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash read: err=%v, want ErrCrash", err)
	}

	fsys.Restart()
	data, err := fsys.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < len("durable.") || string(data[:8]) != "durable." {
		t.Fatalf("synced prefix lost: %q", data)
	}
	if len(data) > len("durable.volatilex") {
		t.Fatalf("more data than ever written: %q", data)
	}
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatalf("write after Restart: %v", err)
	}
}

func TestWriterFailsStickyAfterCrash(t *testing.T) {
	fsys := NewMemFS(3, 0)
	w, st := testOpen(t, fsys, 0)
	s := storage.Restore(st.Store)
	w.Attach(s, nil)
	commit(t, w, s, 1, map[string]int64{"x": 1})

	fsys.mu.Lock()
	fsys.crashAt = fsys.ops + 1
	fsys.mu.Unlock()

	s.ApplyTxn(2, map[string]int64{"x": 2})
	if err := w.Wait(2); !errors.Is(err, ErrCrash) {
		t.Fatalf("Wait after crash: err=%v, want ErrCrash", err)
	}
	// Sticky: later commits fail too, without touching the dead disk.
	s.ApplyTxn(3, map[string]int64{"x": 3})
	if err := w.Wait(3); !errors.Is(err, ErrCrash) {
		t.Fatalf("Wait after sticky failure: err=%v, want ErrCrash", err)
	}

	fsys.Restart()
	got, err := Recover(fsys, "d")
	if err != nil {
		t.Fatalf("Recover after crash: %v", err)
	}
	// Txn 1 was acked durable; it must have survived.
	if got.Store.Version < 1 || got.Store.Data["x"] < 1 {
		t.Fatalf("acked commit lost: %+v", got.Store)
	}
}

// FuzzParseLogWAL feeds arbitrary bytes to the log parser: it must
// never panic, and whatever prefix it accepts must re-encode to the
// same bytes (no garbage accepted as records).
func FuzzParseLogWAL(f *testing.F) {
	r1 := appendFrame(nil, appendPayloadCommit(nil,
		Record{Txn: 1, Version: 1, Lo: 2, Hi: 3, Writes: []KV{{Item: "x", Val: 9, Ver: 1}}}))
	f.Add(r1)
	f.Add(append(r1, r1[:5]...))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, torn, err := parseLog(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range", goodLen)
		}
		if err != nil {
			if torn {
				t.Fatal("torn and corrupt at once")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed parse error: %v", err)
			}
			return
		}
		// Semantic round-trip: whatever was accepted re-encodes and
		// re-parses to the same records (varints are not canonical, so
		// byte equality is too strong).
		var enc []byte
		for _, r := range recs {
			enc = appendFrame(enc, appendPayloadCommit(nil, r))
		}
		recs2, n2, torn2, err2 := parseLog(enc)
		if err2 != nil || torn2 || n2 != len(enc) || !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("accepted records do not round-trip: err=%v torn=%v", err2, torn2)
		}
	})
}
