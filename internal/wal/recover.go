package wal

import (
	"fmt"
	"hash/crc32"
	"path"

	"repro/internal/storage"
)

// RecoveredState is what Recover reconstructs from a WAL directory:
// the store image to restore, the counter watermarks to seed the
// scheduler with, and forensics about the log it replayed.
type RecoveredState struct {
	// Store is the recovered committed state (restore with
	// storage.Restore).
	Store storage.State
	// Lo, Hi are the counter watermarks of the newest durable commit.
	// Seeding the scheduler at or above them guarantees no k-th-column
	// counter value consumed by a durable commit is ever re-issued.
	Lo, Hi int64
	// Records counts commit records replayed from the log suffix.
	Records int
	// TornBytes is the size of the torn tail truncated from the log
	// (0 when the log ended cleanly).
	TornBytes int64
}

// Recover rebuilds the durable state from a WAL directory: load the
// checkpoint (if any), replay the log suffix, truncate a torn tail.
// It is idempotent — a second call returns the same state — and safe
// on an empty or missing directory (returns a fresh empty state).
// A complete-but-invalid record or checkpoint returns a *CorruptError
// (errors.Is ErrCorrupt): corruption is never silently replayed.
func Recover(fsys FS, dir string) (*RecoveredState, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	st := &RecoveredState{Store: storage.State{
		Data:     make(map[string]int64),
		ItemVers: make(map[string]int64),
	}}

	if buf, err := fsys.ReadFile(path.Join(dir, ckptName)); err == nil {
		c, cerr := readCheckpoint(buf)
		if cerr != nil {
			return nil, cerr
		}
		for _, it := range c.Items {
			st.Store.Data[it.Item] = it.Val
			st.Store.ItemVers[it.Item] = it.Ver
		}
		st.Store.Version = c.Version
		st.Lo, st.Hi = c.Lo, c.Hi
	} else if !notExist(err) {
		return nil, err
	}

	logPath := path.Join(dir, logName)
	data, err := fsys.ReadFile(logPath)
	if err != nil {
		if notExist(err) {
			return st, nil
		}
		return nil, err
	}
	recs, goodLen, torn, perr := parseLog(data)
	if perr != nil {
		return nil, perr
	}
	if torn {
		st.TornBytes = int64(len(data) - goodLen)
		if terr := fsys.Truncate(logPath, int64(goodLen)); terr != nil {
			return nil, terr
		}
	}
	for _, rec := range recs {
		// Fold watermarks from every durable record — including ones the
		// checkpoint supersedes — before deciding whether to replay it.
		// Watermarks are monotone, so the newest pair dominates anyway;
		// taking the max over the whole log is defense in depth: should a
		// checkpoint's watermarks ever lag its snapshot, the superseded
		// records still carry the correct values and repair it here.
		if rec.Lo > st.Lo {
			st.Lo = rec.Lo
		}
		if rec.Hi > st.Hi {
			st.Hi = rec.Hi
		}
		if rec.Version <= st.Store.Version {
			continue // superseded by the checkpoint
		}
		if rec.Version != st.Store.Version+1 {
			return nil, &CorruptError{Err: ErrGap, Reason: fmt.Sprintf(
				"%s: record version %d after state version %d",
				ErrGap, rec.Version, st.Store.Version)}
		}
		for _, w := range rec.Writes {
			st.Store.Data[w.Item] = w.Val
			st.Store.ItemVers[w.Item] = w.Ver
		}
		st.Store.Version = rec.Version
		st.Records++
	}
	return st, nil
}

// readCheckpoint decodes the checkpoint file: exactly one framed
// checkpoint record. The file is written to a temp path, fsynced and
// renamed into place, so a partial or mismatched image is corruption,
// not a torn tail.
func readCheckpoint(buf []byte) (checkpoint, error) {
	corrupt := func(reason string) (checkpoint, error) {
		return checkpoint{}, &CorruptError{Reason: "checkpoint: " + reason}
	}
	if len(buf) < 8 {
		return corrupt("truncated header")
	}
	n := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	if n > maxFrame || 8+int(n) != len(buf) {
		return corrupt("frame length does not match file size")
	}
	want := uint32(buf[4]) | uint32(buf[5])<<8 | uint32(buf[6])<<16 | uint32(buf[7])<<24
	payload := buf[8:]
	if crc32.Checksum(payload, castagnoli) != want {
		return corrupt("crc mismatch")
	}
	if len(payload) == 0 || payload[0] != kindCheckpoint {
		return corrupt("unexpected record kind")
	}
	c, err := decodeCheckpoint(payload)
	if err != nil {
		return corrupt(err.Error())
	}
	return c, nil
}
