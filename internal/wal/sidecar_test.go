package wal

import (
	"errors"
	"path"
	"testing"

	"repro/internal/engine"
)

// TestCounterLogRoundTrip: leases persist across close/reopen and are
// raise-only.
func TestCounterLogRoundTrip(t *testing.T) {
	fs := NewMemFS(1, 0)
	c, err := OpenCounterLog(fs, "site0")
	if err != nil {
		t.Fatal(err)
	}
	if u, l := c.Watermarks(); u != 0 || l != 0 {
		t.Fatalf("fresh log watermarks = (%d,%d), want (0,0)", u, l)
	}
	for _, lease := range [][2]int64{{10, 5}, {20, 7}, {15, 30}} {
		if err := c.Extend(lease[0], lease[1]); err != nil {
			t.Fatal(err)
		}
	}
	if u, l := c.Watermarks(); u != 20 || l != 30 {
		t.Fatalf("watermarks = (%d,%d), want (20,30) (raise-only max)", u, l)
	}
	// A stale lease is a durable no-op.
	if err := c.Extend(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCounterLog(fs, "site0")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if u, l := c2.Watermarks(); u != 20 || l != 30 {
		t.Fatalf("reopened watermarks = (%d,%d), want (20,30)", u, l)
	}
}

// TestCounterLogSurvivesCrash: sweep the crash point over every I/O
// operation of a lease sequence; whatever survives, the recovered lease
// is a prefix maximum — never higher than what was extended, and at
// least the last lease whose Extend returned nil before the crash.
func TestCounterLogSurvivesCrash(t *testing.T) {
	// Size the sweep from a crash-free run.
	probe := NewMemFS(1, 0)
	writeLeases := func(fs *MemFS) (acked int64, err error) {
		c, err := OpenCounterLog(fs, "s")
		if err != nil {
			return 0, err
		}
		for i := int64(1); i <= 40; i++ {
			if err := c.Extend(i*10, i*10); err != nil {
				return acked, err
			}
			acked = i * 10
		}
		return acked, c.Close()
	}
	if _, err := writeLeases(probe); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()

	for at := int64(1); at <= total; at++ {
		fs := NewMemFS(at, at)
		acked, _ := writeLeases(fs) // error expected at the crash point
		fs.Restart()
		c, err := OpenCounterLog(fs, "s")
		if err != nil {
			t.Fatalf("crashAt=%d: recovery failed: %v", at, err)
		}
		u, l := c.Watermarks()
		c.Close()
		if u < acked || l < acked {
			t.Fatalf("crashAt=%d: recovered lease (%d,%d) below acked %d", at, u, l, acked)
		}
		if u > 400 || l > 400 {
			t.Fatalf("crashAt=%d: recovered lease (%d,%d) above anything extended", at, u, l)
		}
	}
}

// TestCounterLogTornTail: a partial final frame is truncated, the
// preceding leases survive.
func TestCounterLogTornTail(t *testing.T) {
	fs := NewMemFS(1, 0)
	c, err := OpenCounterLog(fs, "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Extend(100, 50); err != nil {
		t.Fatal(err)
	}
	c.Close()
	name := path.Join("s", counterLogName)
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// Append a torn frame: a full frame cut short.
	torn := appendFrame(nil, appendPayloadCounter(nil, 999, 999))
	f, err := fs.OpenAppend(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()

	c2, err := OpenCounterLog(fs, "s")
	if err != nil {
		t.Fatalf("torn tail must recover cleanly: %v", err)
	}
	defer c2.Close()
	if u, l := c2.Watermarks(); u != 100 || l != 50 {
		t.Fatalf("watermarks = (%d,%d), want (100,50)", u, l)
	}
	after, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(after), len(data))
	}
}

// TestCounterLogRejectsCorruption: a flipped byte mid-log is a typed
// *CorruptError, never silently replayed past.
func TestCounterLogRejectsCorruption(t *testing.T) {
	fs := NewMemFS(1, 0)
	c, err := OpenCounterLog(fs, "s")
	if err != nil {
		t.Fatal(err)
	}
	c.Extend(10, 10)
	c.Extend(20, 20)
	c.Close()
	name := path.Join("s", counterLogName)
	data, _ := fs.ReadFile(name)
	data[9] ^= 0xFF // inside the first frame's payload
	fs.Remove(name)
	f, _ := fs.Create(name)
	f.Write(data)
	f.Sync()
	f.Close()

	_, err = OpenCounterLog(fs, "s")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt sidecar opened: err=%v, want *CorruptError", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("errors.Is(err, ErrCorrupt) = false: %v", err)
	}
}

// TestCounterLogCompaction: the log stays bounded across many leases
// and compaction preserves the lease exactly.
func TestCounterLogCompaction(t *testing.T) {
	fs := NewMemFS(1, 0)
	c, err := OpenCounterLog(fs, "s")
	if err != nil {
		t.Fatal(err)
	}
	n := int64(3 * counterCompactEvery)
	for i := int64(1); i <= n; i++ {
		if err := c.Extend(i, i); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	data, err := fs.ReadFile(path.Join("s", counterLogName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > counterCompactEvery*32 {
		t.Fatalf("sidecar grew unbounded: %d bytes after %d leases", len(data), n)
	}
	c2, err := OpenCounterLog(fs, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if u, l := c2.Watermarks(); u != n || l != n {
		t.Fatalf("watermarks = (%d,%d), want (%d,%d)", u, l, n, n)
	}
}

// TestSiteCountersDurableLease: the glue invariant — with a sidecar
// lease installed, the persisted lease always dominates the volatile
// counters, so a crash at ANY moment reseeds at or above everything
// consumed. This is the per-site no-reissue contract end to end.
func TestSiteCountersDurableLease(t *testing.T) {
	fs := NewMemFS(1, 0)
	log, err := OpenCounterLog(fs, "site1")
	if err != nil {
		t.Fatal(err)
	}
	sc := engine.NewSiteCounters(3)
	u0, l0 := log.Watermarks()
	sc.SetDurable(1, u0, l0, 8, log.Extend)

	var consumedMax int64
	for i := 0; i < 100; i++ {
		v := sc.AllocUpper(1, 0)
		if v > consumedMax {
			consumedMax = v
		}
		sc.AllocLower(1, 0)
		// The documented invariant: lease >= volatile counters, always.
		du, dl := sc.DurableLease(1)
		cu, cl := sc.SiteWatermarks(1)
		if du < cu || dl < cl {
			t.Fatalf("step %d: lease (%d,%d) behind counters (%d,%d)", i, du, dl, cu, cl)
		}
		lu, ll := log.Watermarks()
		if lu != du || ll != dl {
			t.Fatalf("step %d: in-memory lease (%d,%d) != persisted (%d,%d)", i, du, dl, lu, ll)
		}
	}
	if err := sc.DurableErr(1); err != nil {
		t.Fatal(err)
	}
	log.Close()

	// Crash: volatile loss, reopen the sidecar, reseed.
	sc.Reset(1)
	log2, err := OpenCounterLog(fs, "site1")
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	u, l := log2.Watermarks()
	sc.SetDurable(1, u, l, 8, log2.Extend)
	// No value allocated after the reseed may repeat a consumed one.
	if v := sc.AllocUpper(1, 0); v <= consumedMax {
		t.Fatalf("post-recovery alloc %d <= consumed max %d (re-issue!)", v, consumedMax)
	}
}

// TestSiteCountersDurableErrSticky: a failing extend surfaces through
// DurableErr and allocation still proceeds (degrade the guarantee, not
// availability).
func TestSiteCountersDurableErrSticky(t *testing.T) {
	sc := engine.NewSiteCounters(2)
	boom := errors.New("disk gone")
	sc.SetDurable(0, 0, 0, 4, func(u, l int64) error { return boom })
	if sc.AllocUpper(0, 0) == sc.AllocUpper(0, 0) {
		t.Fatal("allocation stopped being unique")
	}
	if !errors.Is(sc.DurableErr(0), boom) {
		t.Fatalf("DurableErr = %v, want %v", sc.DurableErr(0), boom)
	}
}
