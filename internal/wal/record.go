package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Typed decode errors. A torn tail (partial final record) is NOT an
// error: recovery truncates it. Corruption — a CRC mismatch or a
// malformed payload with further data behind it — is never replayed.
var (
	// ErrCorrupt marks a record that fails its CRC or decodes to
	// garbage while not being the file's torn tail.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrGap marks a log whose record versions are not contiguous —
	// a record is missing, so the suffix cannot be replayed safely.
	// It is reported wrapped in a *CorruptError, so both
	// errors.Is(err, ErrCorrupt) and errors.Is(err, ErrGap) hold.
	ErrGap = errors.New("wal: log has a version gap")
)

// CorruptError carries the offset of the offending frame.
type CorruptError struct {
	Offset int64
	Reason string
	// Err is the typed cause when the corruption has one (e.g. ErrGap);
	// nil for generic corruption such as a CRC mismatch.
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorrupt) true, and additionally
// errors.Is(err, e.Err) when a typed cause is set.
func (e *CorruptError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorrupt, e.Err}
	}
	return []error{ErrCorrupt}
}

// castagnoli is the CRC32C table (the polynomial storage systems use
// for record framing: hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record kinds.
const (
	kindCommit     = 1
	kindCheckpoint = 2
)

// maxFrame bounds a single frame so a garbage length field cannot make
// the parser allocate unboundedly.
const maxFrame = 1 << 26

// KV is one committed write: the item, its new value, and the item's
// per-item version after the commit.
type KV struct {
	Item string
	Val  int64
	Ver  int64
}

// Record is one redo-log entry: the write set of a committed
// transaction plus the scheduler counter watermarks sampled at commit.
// Lo and Hi are both monotone non-decreasing consumption watermarks
// for the k-th-column lower/upper counters (see sched.DurableCounters)
// — restarting a scheduler at or above them guarantees no consumed
// counter value is ever re-issued.
type Record struct {
	Txn     int64
	Version int64 // store version after this batch; contiguous in the log
	Lo, Hi  int64 // counter watermarks at commit
	Writes  []KV  // sorted by item
}

// checkpoint is the snapshot persisted by Checkpoint: the full store
// image plus the watermarks, superseding every record with
// Version <= its Version.
type checkpoint struct {
	Version int64
	Lo, Hi  int64
	Items   []KV // item -> (value, per-item version), sorted
}

// appendPayloadCommit encodes the record body (without framing).
func appendPayloadCommit(buf []byte, r Record) []byte {
	buf = append(buf, kindCommit)
	buf = binary.AppendVarint(buf, r.Txn)
	buf = binary.AppendVarint(buf, r.Version)
	buf = binary.AppendVarint(buf, r.Lo)
	buf = binary.AppendVarint(buf, r.Hi)
	buf = binary.AppendUvarint(buf, uint64(len(r.Writes)))
	for _, w := range r.Writes {
		buf = binary.AppendUvarint(buf, uint64(len(w.Item)))
		buf = append(buf, w.Item...)
		buf = binary.AppendVarint(buf, w.Val)
		buf = binary.AppendVarint(buf, w.Ver)
	}
	return buf
}

// appendPayloadCheckpoint encodes a checkpoint body (without framing).
func appendPayloadCheckpoint(buf []byte, c checkpoint) []byte {
	buf = append(buf, kindCheckpoint)
	buf = binary.AppendVarint(buf, c.Version)
	buf = binary.AppendVarint(buf, c.Lo)
	buf = binary.AppendVarint(buf, c.Hi)
	buf = binary.AppendUvarint(buf, uint64(len(c.Items)))
	for _, it := range c.Items {
		buf = binary.AppendUvarint(buf, uint64(len(it.Item)))
		buf = append(buf, it.Item...)
		buf = binary.AppendVarint(buf, it.Val)
		buf = binary.AppendVarint(buf, it.Ver)
	}
	return buf
}

// appendFrame wraps a payload in the on-disk frame:
//
//	| len uint32 LE | crc32c(payload) uint32 LE | payload |
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// sortedKVs converts a write map (+ per-item versions) into the sorted
// KV slice the record format wants (determinism: identical commits
// encode identically).
func sortedKVs(writes, vers map[string]int64) []KV {
	kvs := make([]KV, 0, len(writes))
	for x, v := range writes {
		kvs = append(kvs, KV{Item: x, Val: v, Ver: vers[x]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Item < kvs[j].Item })
	return kvs
}

// payloadReader decodes varint payloads with explicit error returns.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (p *payloadReader) fail(reason string) {
	if p.err == nil {
		p.err = errors.New(reason)
	}
}

func (p *payloadReader) varint() int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.buf[p.off:])
	if n <= 0 {
		p.fail("bad varint")
		return 0
	}
	p.off += n
	return v
}

func (p *payloadReader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.buf[p.off:])
	if n <= 0 {
		p.fail("bad uvarint")
		return 0
	}
	p.off += n
	return v
}

func (p *payloadReader) bytes(n uint64) []byte {
	if p.err != nil {
		return nil
	}
	if n > uint64(len(p.buf)-p.off) {
		p.fail("string runs past payload")
		return nil
	}
	b := p.buf[p.off : p.off+int(n)]
	p.off += int(n)
	return b
}

func (p *payloadReader) done() bool { return p.err == nil && p.off == len(p.buf) }

// decodeKVs reads n length-prefixed (item, val, ver) triples.
func (p *payloadReader) decodeKVs(n uint64) []KV {
	if n > uint64(len(p.buf)) { // each KV takes >= 3 bytes; cheap sanity bound
		p.fail("kv count exceeds payload")
		return nil
	}
	kvs := make([]KV, 0, n)
	for i := uint64(0); i < n; i++ {
		item := string(p.bytes(p.uvarint()))
		val := p.varint()
		ver := p.varint()
		if p.err != nil {
			return nil
		}
		kvs = append(kvs, KV{Item: item, Val: val, Ver: ver})
	}
	return kvs
}

// decodeCommit decodes a commit payload (after the kind byte has been
// checked by the caller's framing loop).
func decodeCommit(payload []byte) (Record, error) {
	p := &payloadReader{buf: payload, off: 1}
	r := Record{
		Txn:     p.varint(),
		Version: p.varint(),
		Lo:      p.varint(),
		Hi:      p.varint(),
	}
	r.Writes = p.decodeKVs(p.uvarint())
	if p.err != nil {
		return Record{}, p.err
	}
	if !p.done() {
		return Record{}, errors.New("trailing bytes in commit payload")
	}
	return r, nil
}

// decodeCheckpoint decodes a checkpoint payload.
func decodeCheckpoint(payload []byte) (checkpoint, error) {
	p := &payloadReader{buf: payload, off: 1}
	c := checkpoint{
		Version: p.varint(),
		Lo:      p.varint(),
		Hi:      p.varint(),
	}
	c.Items = p.decodeKVs(p.uvarint())
	if p.err != nil {
		return checkpoint{}, p.err
	}
	if !p.done() {
		return checkpoint{}, errors.New("trailing bytes in checkpoint payload")
	}
	return c, nil
}

// parseLog scans a log image and returns the decoded records, the byte
// length of the valid prefix, and whether a torn tail was dropped.
// A frame that runs past EOF (length field or payload cut short) is a
// torn tail: parsing stops cleanly at the last whole record. A frame
// that fits but fails its CRC or decodes to garbage is corruption and
// returns a *CorruptError — it is never skipped, because every record
// behind it would be replayed out of context.
func parseLog(data []byte) (recs []Record, goodLen int, torn bool, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return recs, off, true, nil // header cut short: torn tail
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if n > maxFrame {
			if uint64(off)+8+uint64(n) > uint64(len(data)) {
				return recs, off, true, nil // absurd length past EOF: torn length field
			}
			return recs, off, false, &CorruptError{Offset: int64(off), Reason: "frame length exceeds limit"}
		}
		if off+8+int(n) > len(data) {
			return recs, off, true, nil // payload cut short: torn tail
		}
		want := binary.LittleEndian.Uint32(rest[4:8])
		payload := rest[8 : 8+int(n)]
		if crc32.Checksum(payload, castagnoli) != want {
			return recs, off, false, &CorruptError{Offset: int64(off), Reason: "crc mismatch"}
		}
		if len(payload) == 0 || payload[0] != kindCommit {
			return recs, off, false, &CorruptError{Offset: int64(off), Reason: "unexpected record kind"}
		}
		rec, derr := decodeCommit(payload)
		if derr != nil {
			return recs, off, false, &CorruptError{Offset: int64(off), Reason: derr.Error()}
		}
		if len(recs) > 0 && rec.Version != recs[len(recs)-1].Version+1 {
			return recs, off, false, &CorruptError{Offset: int64(off), Reason: ErrGap.Error(), Err: ErrGap}
		}
		recs = append(recs, rec)
		off += 8 + int(n)
	}
	return recs, off, false, nil
}
