package graph

import (
	"reflect"
	"testing"
)

func TestTransitiveClosureEmptyGraph(t *testing.T) {
	for _, n := range []int{0, 3} {
		c := New(n).TransitiveClosure()
		if c.Len() != n {
			t.Fatalf("closure of edgeless %d-node graph has %d nodes", n, c.Len())
		}
		if c.EdgeCount() != 0 {
			t.Fatalf("closure of edgeless graph has %d edges", c.EdgeCount())
		}
	}
}

func TestTransitiveClosureSelfLoop(t *testing.T) {
	// A self-loop is a nonempty path u->u, so the closure keeps it; it
	// must not leak reachability to unrelated nodes.
	g := New(2)
	g.AddEdge(0, 0)
	c := g.TransitiveClosure()
	if !c.HasEdge(0, 0) {
		t.Fatal("closure dropped the self-loop")
	}
	if c.HasEdge(0, 1) || c.HasEdge(1, 0) || c.HasEdge(1, 1) {
		t.Fatal("closure invented edges from a self-loop")
	}
}

func TestTransitiveClosureChainAndCycle(t *testing.T) {
	// Chain 0->1->2->3: closure adds all forward pairs, nothing backward.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	c := g.TransitiveClosure()
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			want := u < v
			if c.HasEdge(u, v) != want {
				t.Errorf("chain closure HasEdge(%d,%d) = %v, want %v", u, v, !want, want)
			}
		}
	}
	// 2-cycle: every ordered pair (including both self-loops via the
	// round trip) becomes an edge.
	g2 := New(2)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 0)
	c2 := g2.TransitiveClosure()
	for u := 0; u < 2; u++ {
		for v := 0; v < 2; v++ {
			if !c2.HasEdge(u, v) {
				t.Errorf("cycle closure missing edge %d->%d", u, v)
			}
		}
	}
}

func TestSCCEmptyGraph(t *testing.T) {
	if comps := New(0).SCC(); len(comps) != 0 {
		t.Fatalf("SCC of empty graph = %v", comps)
	}
	// Edgeless nodes are singleton components.
	comps := New(3).SCC()
	if len(comps) != 3 {
		t.Fatalf("SCC of 3 edgeless nodes = %v", comps)
	}
	for _, c := range comps {
		if len(c) != 1 {
			t.Fatalf("edgeless node in non-singleton component %v", c)
		}
	}
}

func TestSCCSelfLoop(t *testing.T) {
	// A self-loop does not merge components: the node stays a singleton
	// (but a cyclic one for HasCycle).
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	comps := g.SCC()
	if len(comps) != 2 {
		t.Fatalf("SCC = %v, want two singletons", comps)
	}
	if !g.HasCycle() {
		t.Fatal("self-loop not reported as a cycle")
	}
}

func TestSCCMergesCycleAndOrdersReverseTopo(t *testing.T) {
	// 0->1->2->0 is one component; 3 hangs off it (2->3). Reverse
	// topological order puts the sink component {3} first.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	comps := g.SCC()
	want := [][]int{{3}, {0, 1, 2}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("SCC = %v, want %v", comps, want)
	}
}
