// Package graph provides small directed-graph utilities used throughout the
// repository: cycle detection, topological sorting, strongly connected
// components and transitive closure. Nodes are identified by dense integer
// indices; callers that work with sparse identifiers should map them first.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over nodes 0..N-1 with adjacency sets.
// The zero value is an empty graph; use New or AddNode/AddEdge to grow it.
type Digraph struct {
	adj []map[int]bool
}

// New returns a digraph with n nodes and no edges.
func New(n int) *Digraph {
	g := &Digraph{adj: make([]map[int]bool, n)}
	return g
}

// Len returns the number of nodes.
func (g *Digraph) Len() int { return len(g.adj) }

// AddNode appends a new node and returns its index.
func (g *Digraph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// ensure grows the graph so node id is valid.
func (g *Digraph) ensure(id int) {
	for len(g.adj) <= id {
		g.adj = append(g.adj, nil)
	}
}

// AddEdge inserts the edge u -> v, growing the node set if needed.
// Self-loops are recorded like any other edge.
func (g *Digraph) AddEdge(u, v int) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative node id (%d, %d)", u, v))
	}
	g.ensure(u)
	g.ensure(v)
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]bool)
	}
	g.adj[u][v] = true
}

// HasEdge reports whether the edge u -> v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	return g.adj[u][v]
}

// Succ returns the successors of u in ascending order.
func (g *Digraph) Succ(u int) []int {
	if u < 0 || u >= len(g.adj) {
		return nil
	}
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// EdgeCount returns the total number of edges.
func (g *Digraph) EdgeCount() int {
	n := 0
	for _, m := range g.adj {
		n += len(m)
	}
	return n
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New(len(g.adj))
	for u, m := range g.adj {
		for v := range m {
			c.AddEdge(u, v)
		}
	}
	return c
}

// HasCycle reports whether the graph contains a directed cycle
// (including self-loops).
func (g *Digraph) HasCycle() bool {
	_, ok := g.TopoSort()
	return !ok
}

// TopoSort returns a topological order of the nodes and true, or nil and
// false if the graph is cyclic. Among admissible orders it prefers lower
// node indices first (deterministic output).
func (g *Digraph) TopoSort() ([]int, bool) {
	n := len(g.adj)
	indeg := make([]int, n)
	for _, m := range g.adj {
		for v := range m {
			indeg[v]++
		}
	}
	// Min-heap-free deterministic Kahn: scan for the smallest zero-indegree
	// node. n is small in all our uses (transactions in a log).
	order := make([]int, 0, n)
	used := make([]bool, n)
	for len(order) < n {
		pick := -1
		for v := 0; v < n; v++ {
			if !used[v] && indeg[v] == 0 {
				pick = v
				break
			}
		}
		if pick < 0 {
			return nil, false
		}
		used[pick] = true
		order = append(order, pick)
		for v := range g.adj[pick] {
			indeg[v]--
		}
	}
	return order, true
}

// AllTopoSorts calls fn with every topological order of the graph, stopping
// early if fn returns false. It reports whether enumeration ran to
// completion (true) or was stopped by fn (false). A cyclic graph yields no
// orders and returns true.
func (g *Digraph) AllTopoSorts(fn func(order []int) bool) bool {
	n := len(g.adj)
	indeg := make([]int, n)
	for _, m := range g.adj {
		for v := range m {
			indeg[v]++
		}
	}
	used := make([]bool, n)
	order := make([]int, 0, n)
	var rec func() bool
	rec = func() bool {
		if len(order) == n {
			return fn(order)
		}
		for v := 0; v < n; v++ {
			if used[v] || indeg[v] != 0 {
				continue
			}
			used[v] = true
			order = append(order, v)
			for w := range g.adj[v] {
				indeg[w]--
			}
			if !rec() {
				return false
			}
			for w := range g.adj[v] {
				indeg[w]++
			}
			order = order[:len(order)-1]
			used[v] = false
		}
		return true
	}
	return rec()
}

// Reachable reports whether v is reachable from u by a nonempty path.
func (g *Digraph) Reachable(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	seen := make([]bool, len(g.adj))
	stack := []int{}
	for w := range g.adj[u] {
		stack = append(stack, w)
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if w == v {
			return true
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		for x := range g.adj[w] {
			if !seen[x] {
				stack = append(stack, x)
			}
		}
	}
	return false
}

// TransitiveClosure returns a new graph with an edge u->v whenever v is
// reachable from u in g by a nonempty path.
func (g *Digraph) TransitiveClosure() *Digraph {
	n := len(g.adj)
	c := New(n)
	for u := 0; u < n; u++ {
		seen := make([]bool, n)
		stack := append([]int(nil), g.Succ(u)...)
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[w] {
				continue
			}
			seen[w] = true
			c.AddEdge(u, w)
			for _, x := range g.Succ(w) {
				if !seen[x] {
					stack = append(stack, x)
				}
			}
		}
	}
	return c
}

// SCC returns the strongly connected components in reverse topological
// order (Tarjan). Each component is sorted ascending.
func (g *Digraph) SCC() [][]int {
	n := len(g.adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Succ(v) {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
	return comps
}
