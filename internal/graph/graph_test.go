package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.Len() != 0 {
		t.Fatalf("Len = %d, want 0", g.Len())
	}
	if g.HasCycle() {
		t.Fatal("empty graph reported cyclic")
	}
	order, ok := g.TopoSort()
	if !ok || len(order) != 0 {
		t.Fatalf("TopoSort = %v, %v", order, ok)
	}
}

func TestAddEdgeGrows(t *testing.T) {
	g := New(0)
	g.AddEdge(3, 5)
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6", g.Len())
	}
	if !g.HasEdge(3, 5) || g.HasEdge(5, 3) {
		t.Fatal("edge membership wrong")
	}
}

func TestAddEdgeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative node id")
		}
	}()
	New(1).AddEdge(-1, 0)
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0)
	if !g.HasCycle() {
		t.Fatal("self-loop not detected as cycle")
	}
}

func TestTopoSortChain(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 0)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("chain reported cyclic")
	}
	want := []int{3, 2, 1, 0}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTopoSortDeterministicPreference(t *testing.T) {
	// No edges: must come out in index order.
	g := New(5)
	order, _ := g.TopoSort()
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("order = %v", order)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.HasCycle() {
		t.Fatal("acyclic graph reported cyclic")
	}
	g.AddEdge(2, 0)
	if !g.HasCycle() {
		t.Fatal("3-cycle not detected")
	}
}

func TestAllTopoSortsCountsOrders(t *testing.T) {
	// Two independent chains 0->1 and 2->3 have 6 interleavings.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	count := 0
	g.AllTopoSorts(func(order []int) bool {
		count++
		return true
	})
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
}

func TestAllTopoSortsEarlyStop(t *testing.T) {
	g := New(3)
	calls := 0
	done := g.AllTopoSorts(func(order []int) bool {
		calls++
		return false
	})
	if done {
		t.Fatal("expected early stop to report false")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestAllTopoSortsCyclicYieldsNone(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	count := 0
	g.AllTopoSorts(func([]int) bool { count++; return true })
	if count != 0 {
		t.Fatalf("cyclic graph yielded %d orders", count)
	}
}

func TestReachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.Reachable(0, 2) {
		t.Fatal("0 should reach 2")
	}
	if g.Reachable(2, 0) {
		t.Fatal("2 should not reach 0")
	}
	if g.Reachable(0, 0) {
		t.Fatal("0 should not reach itself without a cycle")
	}
	g.AddEdge(2, 0)
	if !g.Reachable(0, 0) {
		t.Fatal("0 should reach itself through the cycle")
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := g.TransitiveClosure()
	if !c.HasEdge(0, 2) {
		t.Fatal("closure missing 0->2")
	}
	if c.HasEdge(2, 0) {
		t.Fatal("closure has spurious 2->0")
	}
	if c.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d, want 3", c.EdgeCount())
	}
}

func TestSCC(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // component {0,1,2}
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := g.SCC()
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[1] != 2 {
		t.Fatalf("comps = %v", comps)
	}
}

func TestClone(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 0)
	if g.HasEdge(1, 0) {
		t.Fatal("Clone aliases original")
	}
}

func TestSuccSortedAndOutOfRange(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	if !reflect.DeepEqual(g.Succ(0), []int{1, 2}) {
		t.Fatalf("Succ = %v", g.Succ(0))
	}
	if g.Succ(-1) != nil || g.Succ(99) != nil {
		t.Fatal("out-of-range Succ should be nil")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(99, 0) {
		t.Fatal("out-of-range HasEdge should be false")
	}
	if g.Reachable(-1, 0) {
		t.Fatal("out-of-range Reachable should be false")
	}
}

// Property: a topological order returned by TopoSort respects every edge.
func TestQuickTopoSortRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := New(n)
		// random DAG: edges only from lower to higher via a random permutation
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(perm[i], perm[j])
				}
			}
		}
		order, ok := g.TopoSort()
		if !ok {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TransitiveClosure agrees with Reachable.
func TestQuickClosureMatchesReachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		g := New(n)
		for e := 0; e < n*2; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		c := g.TransitiveClosure()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if c.HasEdge(u, v) != g.Reachable(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HasCycle agrees with SCC structure (a graph is cyclic iff some
// SCC has size >1 or a self-loop exists).
func TestQuickCycleMatchesSCC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		g := New(n)
		for e := 0; e < n; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		cyclic := false
		for _, c := range g.SCC() {
			if len(c) > 1 {
				cyclic = true
			}
		}
		for v := 0; v < n; v++ {
			if g.HasEdge(v, v) {
				cyclic = true
			}
		}
		return g.HasCycle() == cyclic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
