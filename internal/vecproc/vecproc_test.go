package vecproc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// fig6Vectors reproduces the Fig. 6 example: TS(1) = <1,3,2,2>,
// TS(2) = <1,3,5,2> — deciding position 3, TS(1) < TS(2).
func fig6Vectors() (*core.Vector, *core.Vector) {
	a := core.VectorOf(core.Int(1), core.Int(3), core.Int(2), core.Int(2))
	b := core.VectorOf(core.Int(1), core.Int(3), core.Int(5), core.Int(2))
	return a, b
}

func TestFig6Example(t *testing.T) {
	a, b := fig6Vectors()
	r := Compare(a, b)
	if r.Rel != core.Less || r.Pos != 3 {
		t.Fatalf("Compare = %+v, want Less at 3", r)
	}
	// k = 4: ⌈log₂ 4⌉ + 4 = 6 parallel steps.
	if r.ParallelSteps != 6 {
		t.Fatalf("ParallelSteps = %d, want 6", r.ParallelSteps)
	}
}

func TestDepthFormula(t *testing.T) {
	for _, c := range []struct{ k, want int }{
		{1, 4}, {2, 5}, {3, 6}, {4, 6}, {5, 7}, {8, 7}, {9, 8}, {16, 8}, {17, 9},
	} {
		a, b := core.NewVector(c.k), core.NewVector(c.k)
		if got := Compare(a, b).ParallelSteps; got != c.want {
			t.Errorf("k=%d: steps = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestIdenticalVectors(t *testing.T) {
	v := core.VectorOf(core.Int(1), core.Int(2))
	r := Compare(v, v.Clone())
	// No difference bit set: Equal at the fallback position k.
	if r.Rel != core.Equal || r.Pos != 2 {
		t.Fatalf("got %+v", r)
	}
}

func TestUndefinedHandling(t *testing.T) {
	a := core.VectorOf(core.Int(2), core.Undef)
	b := core.VectorOf(core.Int(2), core.Undef)
	if r := Compare(a, b); r.Rel != core.Equal || r.Pos != 2 {
		t.Fatalf("both-undefined: %+v", r)
	}
	c := core.VectorOf(core.Int(2), core.Int(1))
	if r := Compare(a, c); r.Rel != core.Unknown || r.Pos != 2 {
		t.Fatalf("one-undefined: %+v", r)
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compare(core.NewVector(2), core.NewVector(3))
}

func randVector(rng *rand.Rand, k int) *core.Vector {
	elems := make([]core.Elem, k)
	d := rng.Intn(k + 1) // defined-prefix invariant
	for i := 0; i < d; i++ {
		elems[i] = core.Int(int64(rng.Intn(4)))
	}
	return core.VectorOf(elems...)
}

// Property: the PE simulation agrees with the sequential Definition 6
// comparison on relation and deciding position.
func TestQuickMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		a, b := randVector(rng, k), randVector(rng, k)
		seqRel, seqPos := a.Compare(b)
		r := Compare(a, b)
		if r.Rel != seqRel {
			return false
		}
		// Sequential Compare reports position k for fully-equal defined
		// vectors; the PE array reports the same fallback.
		return r.Pos == seqPos
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the goroutine-per-PE implementation matches the simulation.
func TestQuickConcurrentMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		a, b := randVector(rng, k), randVector(rng, k)
		return CompareConcurrent(a, b) == Compare(a, b)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
