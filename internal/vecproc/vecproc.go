// Package vecproc simulates the parallel timestamp-vector comparison
// mechanism of Section III-E (Fig. 6 and 7): an array of processing
// elements compares two k-element vectors in O(log k) parallel time.
//
// The five phases of Fig. 6 are modelled explicitly:
//
//  1. load the vector elements into the PE rows a and b;
//  2. per-element difference c_i (0 iff the elements are "equal" in the
//     Definition 6 sense: both defined with the same value);
//  3. parallel-prefix OR d_i = c_1 ⊕ … ⊕ c_i over a binary tree of
//     height ⌈log₂ k⌉ (Fig. 7);
//  4. each PE checks its left neighbour: the unique i with d_i = 1 and
//     d_{i-1} = 0 is the deciding position;
//  5. the order of the two vectors is read off a_m versus b_m.
//
// Steps 1, 2, 4 and 5 take constant parallel time; step 3 takes ⌈log₂ k⌉
// rounds, so the whole comparison takes ⌈log₂ k⌉ + 4 parallel steps
// (Theorem 4). The package also provides a goroutine-per-PE
// implementation to demonstrate the same dataflow with real concurrency.
package vecproc

import (
	"sync"

	"repro/internal/core"
)

// Result is the outcome of a simulated parallel comparison.
type Result struct {
	Rel core.Rel // relation of a versus b per Definition 6
	Pos int      // 1-based deciding position (k if the vectors are identical)
	// ParallelSteps is the number of parallel phases executed:
	// ⌈log₂ k⌉ for the prefix-OR tree plus 4 constant phases.
	ParallelSteps int
}

// log2ceil returns ⌈log₂ n⌉ (0 for n <= 1).
func log2ceil(n int) int {
	d := 0
	for (1 << d) < n {
		d++
	}
	return d
}

// elemsEqual is the PE subtraction of phase 2 under Definition 6: two
// elements are equal iff both are defined with the same value.
func elemsEqual(a, b core.Elem) bool {
	return a.Defined && b.Defined && a.V == b.V
}

// decide resolves the relation at the deciding position.
func decide(a, b core.Elem) core.Rel {
	switch {
	case a.Defined && b.Defined && a.V < b.V:
		return core.Less
	case a.Defined && b.Defined && a.V > b.V:
		return core.Greater
	case !a.Defined && !b.Defined:
		return core.Equal
	default:
		return core.Unknown
	}
}

// Compare runs the PE-array simulation on two equal-size vectors. The
// returned relation and position agree exactly with the sequential
// Definition 6 comparison, while ParallelSteps reflects the O(log k)
// parallel cost.
func Compare(a, b *core.Vector) Result {
	k := a.K()
	if b.K() != k {
		panic("vecproc: vector sizes differ")
	}
	// Phase 2: difference bits.
	c := make([]bool, k)
	for i := 0; i < k; i++ {
		c[i] = !elemsEqual(a.Elem(i+1), b.Elem(i+1))
	}
	// Phase 3: parallel-prefix OR with pointer doubling; rounds = ⌈log₂ k⌉.
	d := append([]bool(nil), c...)
	rounds := log2ceil(k)
	for step := 1; step < k; step <<= 1 {
		next := append([]bool(nil), d...)
		for i := step; i < k; i++ {
			next[i] = d[i] || d[i-step]
		}
		d = next
	}
	// Phase 4: find the unique PE with d_i && !d_{i-1}.
	pos := k // identical vectors: fall back to position k
	for i := 0; i < k; i++ {
		prev := false
		if i > 0 {
			prev = d[i-1]
		}
		if d[i] && !prev {
			pos = i + 1
			break
		}
	}
	// Phase 5: decide.
	rel := core.Equal
	if d[k-1] { // some difference exists
		rel = decide(a.Elem(pos), b.Elem(pos))
	}
	return Result{Rel: rel, Pos: pos, ParallelSteps: rounds + 4}
}

// CompareConcurrent runs the same five-phase dataflow with one goroutine
// per processing element, demonstrating the Fig. 7 layout with real
// concurrency. Results are identical to Compare.
func CompareConcurrent(a, b *core.Vector) Result {
	k := a.K()
	if b.K() != k {
		panic("vecproc: vector sizes differ")
	}
	c := make([]bool, k)
	var wg sync.WaitGroup
	// Phase 2 in parallel.
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c[i] = !elemsEqual(a.Elem(i+1), b.Elem(i+1))
		}(i)
	}
	wg.Wait()
	// Phase 3: log-depth doubling, PEs advance in lockstep rounds.
	d := append([]bool(nil), c...)
	for step := 1; step < k; step <<= 1 {
		next := make([]bool, k)
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i >= step {
					next[i] = d[i] || d[i-step]
				} else {
					next[i] = d[i]
				}
			}(i)
		}
		wg.Wait()
		d = next
	}
	// Phases 4-5 (constant).
	pos := k
	for i := 0; i < k; i++ {
		prev := false
		if i > 0 {
			prev = d[i-1]
		}
		if d[i] && !prev {
			pos = i + 1
			break
		}
	}
	rel := core.Equal
	if d[k-1] {
		rel = decide(a.Elem(pos), b.Elem(pos))
	}
	return Result{Rel: rel, Pos: pos, ParallelSteps: log2ceil(k) + 4}
}
