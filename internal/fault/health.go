package fault

import (
	"sync/atomic"
	"time"
)

// SiteState is a failure detector's opinion of one site.
type SiteState int32

// Detector states. A site starts Up; consecutive failed contacts move
// it to Suspect and then Down; a single successful contact moves it
// back to Up (partitions heal instantly from the detector's view the
// moment a message gets through).
const (
	Up SiteState = iota
	Suspect
	Down
)

// String names the state.
func (s SiteState) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	default:
		return "down"
	}
}

// HealthOptions tunes the detector.
type HealthOptions struct {
	// SuspectAfter is the consecutive-failure count at which a site
	// becomes Suspect (default 2).
	SuspectAfter int
	// DownAfter is the consecutive-failure count at which a Suspect
	// site becomes Down (default SuspectAfter + 4).
	DownAfter int
	// ProbeEvery is the base probe interval for Watch loops; each sleep
	// is jittered ±50% by the seeded sequence (default 500µs).
	ProbeEvery time.Duration
	// Seed drives the probe jitter (the package's seeded-clock idiom:
	// the jitter sequence is a pure function of the seed).
	Seed int64
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2
	}
	if o.DownAfter <= o.SuspectAfter {
		o.DownAfter = o.SuspectAfter + 4
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 500 * time.Microsecond
	}
	return o
}

// Health is a per-site accrual failure detector: every observed contact
// outcome (workload accesses and explicit probes alike) feeds a
// suspicion counter, and the counter maps to Up/Suspect/Down states.
// It distinguishes "site dead" from "site unreachable" only in how the
// evidence arrives — a crashed site and a partitioned one both stop
// answering — which is exactly the partial-synchrony limit: the
// detector is necessarily imperfect, so its consumers (counter
// synchronization skip sets, degraded-mode commit parking) must stay
// safe under false suspicion.
//
// Lock-free: Observe sits on the cluster's access hot path, so state
// lives in per-site atomics (no shared mutex to serialize the striped
// schedulers behind). Racing observers may interleave, but the state a
// reader sees is always one some sequential interleaving produced.
type Health struct {
	opts   HealthOptions
	fails  []atomic.Int32
	state  []atomic.Int32
	flaps  atomic.Int64 // state transitions (diagnostics)
	probes atomic.Int64 // probe rounds completed by Watch
}

// NewHealth returns a detector for the given number of sites, all Up.
func NewHealth(sites int, opts HealthOptions) *Health {
	if sites < 1 {
		panic("fault: health tracker needs at least one site")
	}
	return &Health{
		opts:  opts.withDefaults(),
		fails: make([]atomic.Int32, sites),
		state: make([]atomic.Int32, sites),
	}
}

// Observe feeds one contact outcome with a site: ok resets the site to
// Up, a failure bumps its suspicion counter and possibly its state.
func (h *Health) Observe(site int, ok bool) {
	if site < 0 || site >= len(h.state) {
		return
	}
	if ok {
		if h.fails[site].Load() != 0 {
			h.fails[site].Store(0)
		}
		if h.state[site].Load() != int32(Up) {
			if h.state[site].Swap(int32(Up)) != int32(Up) {
				h.flaps.Add(1)
			}
		}
		return
	}
	n := int(h.fails[site].Add(1))
	next := int32(Up)
	switch {
	case n >= h.opts.DownAfter:
		next = int32(Down)
	case n >= h.opts.SuspectAfter:
		next = int32(Suspect)
	default:
		return // below every threshold: state unchanged
	}
	if h.state[site].Load() != next {
		if h.state[site].Swap(next) != next {
			h.flaps.Add(1)
		}
	}
}

// State returns the detector's current opinion of the site.
func (h *Health) State(site int) SiteState {
	if site < 0 || site >= len(h.state) {
		return Down
	}
	return SiteState(h.state[site].Load())
}

// Skip reports whether the site should be skipped by best-effort
// cluster maintenance (counter synchronization): any non-Up state.
// This is the skip-set feed of engine.SiteCounters.Sync.
func (h *Health) Skip(site int) bool { return h.State(site) != Up }

// Snapshot returns every site's state (diagnostics and reports).
func (h *Health) Snapshot() []SiteState {
	out := make([]SiteState, len(h.state))
	for i := range h.state {
		out[i] = SiteState(h.state[i].Load())
	}
	return out
}

// Transitions returns the number of state changes observed so far.
func (h *Health) Transitions() int64 { return h.flaps.Load() }

// ProbeRounds returns how many Watch probe rounds have completed.
func (h *Health) ProbeRounds() int64 { return h.probes.Load() }

// Watch runs the active probing loop until stop closes: each round
// calls probe(site) for every site and feeds the outcomes, then sleeps
// a jittered interval (ProbeEvery ±50%, jitter drawn from the seeded
// sequence so two runs with the same seed probe on the same cadence).
// probe must return nil for a reachable site. Run it in a goroutine;
// it keeps Suspect/Down states fresh even when the workload's own
// traffic avoids the suspected sites.
func (h *Health) Watch(probe func(site int) error, stop <-chan struct{}) {
	sites := len(h.state)
	for tick := int64(1); ; tick++ {
		select {
		case <-stop:
			return
		default:
		}
		for s := 0; s < sites; s++ {
			h.Observe(s, probe(s) == nil)
		}
		h.probes.Add(1)
		// Jitter: base/2 + uniform[0, base), a pure function of (seed, tick).
		base := h.opts.ProbeEvery
		j := time.Duration(Mix(h.opts.Seed, tick) % uint64(base))
		timer := time.NewTimer(base/2 + j)
		select {
		case <-stop:
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}
