// Package fault is the deterministic fault-injection subsystem for the
// distributed protocol DMT(k). It models the failure modes the paper's
// Section V-B silently assumes away: lost and delayed cross-site
// messages, fail-stop site crashes with recovery, and crash-induced
// counter drift (a crashed site restarting with stale or zeroed local
// counters, the hazard behind the paper's "synchronize the counters
// periodically" remark).
//
// The injector is driven by a *logical clock*: every cross-object access
// in the cluster calls Transport.Send, which advances a global sequence
// number under one mutex. All fault decisions — which message drops,
// when a site crashes or recovers — are functions of that sequence
// number and a seeded RNG consumed in sequence order, so a (Plan, seed)
// pair reproduces the exact same fault schedule byte-for-byte no matter
// how goroutines interleave. Schedule() returns the decision log for
// reproducibility assertions.
//
// Wall-clock time appears only in the injected message delays and the
// recovery timestamps used for latency reporting; it never influences
// which faults fire.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ErrSiteDown reports an access to (or from) a crashed site.
var ErrSiteDown = errors.New("fault: site down")

// ErrDropped reports a cross-site message lost in transit.
var ErrDropped = errors.New("fault: message dropped")

// ErrPartitioned reports a cross-site message refused by an active
// network partition: both endpoints are alive, but the link between
// their groups is cut. Distinct from ErrSiteDown so failure detection
// can tell "site dead" from "site unreachable".
var ErrPartitioned = errors.New("fault: network partitioned")

// Error carries the failing site and the underlying fault cause so the
// scheduler layer can name the unavailable site in its error.
type Error struct {
	Site int // the site that is down or unreachable
	Err  error
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("site %d: %v", e.Site, e.Err) }

// Unwrap exposes the cause for errors.Is.
func (e *Error) Unwrap() error { return e.Err }

// SiteOf extracts the failing site from a transport error (-1 if the
// error carries none).
func SiteOf(err error) int {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Site
	}
	return -1
}

// Transport is the injectable hook every cross-site (and local) object
// access of a DMT cluster goes through. A nil Transport in the cluster
// options means a perfect network.
type Transport interface {
	// Send delivers one logical request/reply exchange from site `from`
	// to the site `to` that homes the accessed object. A nil return means
	// the access succeeds; otherwise the returned error wraps ErrSiteDown
	// or ErrDropped and the access must fail fast without touching state.
	Send(from, to int) error
	// SiteUp reports whether the site is currently operational.
	SiteUp(site int) bool
}

// EventKind labels a scheduled site transition.
type EventKind int

// Site transition kinds.
const (
	// Crash fail-stops a site: its volatile item index is lost and, with
	// Event.Drift, its local counters reset (clock-skewed drift).
	Crash EventKind = iota
	// Recover brings a crashed site back; the cluster rebuilds its item
	// index and re-validates its counters against the survivors.
	Recover
	// Partition cuts the links between the event's site groups: sends
	// between sites of different groups fail with ErrPartitioned while
	// both endpoints stay alive. A single group is cut off from every
	// unlisted site; Event.OneWay makes the cut asymmetric.
	Partition
	// Heal restores the links the matching Partition cut (or every cut,
	// for a Heal with no groups).
	Heal
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Partition:
		return "partition"
	default:
		return "heal"
	}
}

// Event is one scheduled site transition, fired when the injector's
// logical clock reaches At.
type Event struct {
	At    int64 // logical access sequence at which the event fires
	Kind  EventKind
	Site  int
	Drift bool // with Crash: also reset the site's local counters
	// Groups, for Partition and Heal, are the site groups whose mutual
	// links are cut or restored. A single group means "this group versus
	// every other site". A Heal with no groups clears every active cut.
	Groups [][]int
	// OneWay, with Partition, cuts only the Groups[0] -> Groups[1]
	// direction (or group -> rest, for a single group): an asymmetric
	// link failure. Symmetric cuts sever both directions.
	OneWay bool
}

// Plan is a named, deterministic fault schedule.
type Plan struct {
	Name string
	// DropRate is the per-message probability a cross-site exchange is
	// lost (0..1). Local accesses never drop.
	DropRate float64
	// Delay is the maximum injected cross-site latency; each exchange
	// sleeps uniformly in [0, Delay). Zero disables delays.
	Delay time.Duration
	// Events are site transitions ordered by At.
	Events []Event
}

// Hooks let the cluster react to site transitions: the injector calls
// OnCrash/OnRecover synchronously (outside its own lock) when an event
// fires, so the cluster can wipe volatile state and run recovery.
// OnHeal runs asynchronously after a heal restores links (clusters use
// it to re-synchronize counters and bound the skew the partition built
// up); OnPartition runs asynchronously when a cut lands.
type Hooks struct {
	OnCrash     func(site int, drift bool)
	OnRecover   func(site int)
	OnPartition func(groups [][]int, oneWay bool)
	OnHeal      func(groups [][]int)
}

// Stats are the injector's observable fault counters, built on the
// metrics toolkit so harnesses can surface them alongside throughput.
type Stats struct {
	Sent        metrics.Counter // logical exchanges attempted
	Dropped     metrics.Counter // cross-site messages lost
	Rejected    metrics.Counter // accesses refused because a site was down
	Partitioned metrics.Counter // accesses refused by an active link cut
	Crashes     metrics.Counter // crash events fired
	Recoveries  metrics.Counter // recovery events fired
	Partitions  metrics.Counter // partition events fired
	Heals       metrics.Counter // heal events fired
}

// Injector implements Transport for a Plan. Safe for concurrent use.
type Injector struct {
	plan  Plan
	sites int
	seed  int64
	hooks Hooks

	mu    sync.Mutex
	seq   int64
	next  int // index of the next unfired event
	down  []bool
	cut   [][]bool // cut[from][to]: link severed by a partition
	sched []string // decision log, one line per fault decision

	stats Stats
}

// New builds the injector for a plan over the given number of sites.
// The seed fixes every probabilistic decision: same (plan, sites, seed)
// means the same fault schedule. The plan must be valid for the site
// count (see Plan.Validate); an invalid plan panics — callers that want
// the typed error run Validate themselves first.
func New(plan Plan, sites int, seed int64) *Injector {
	if sites < 1 {
		panic("fault: sites must be >= 1")
	}
	if err := plan.Validate(sites); err != nil {
		panic("fault: invalid plan: " + err.Error())
	}
	cut := make([][]bool, sites)
	for i := range cut {
		cut[i] = make([]bool, sites)
	}
	return &Injector{
		plan:  plan.Normalize(),
		sites: sites,
		seed:  seed,
		down:  make([]bool, sites),
		cut:   cut,
	}
}

// SetHooks registers the cluster's crash/recovery callbacks. Must be set
// before traffic flows; the cluster wires this at construction.
func (in *Injector) SetHooks(h Hooks) {
	in.mu.Lock()
	in.hooks = h
	in.mu.Unlock()
}

// Stats exposes the fault counters.
func (in *Injector) Stats() *Stats { return &in.stats }

// Seq returns the current logical clock value.
func (in *Injector) Seq() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Schedule returns a copy of the fault-decision log: one line per drop,
// crash and recovery, each tagged with the logical sequence number at
// which it fired. Two runs with the same plan and seed produce identical
// schedules.
func (in *Injector) Schedule() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.sched...)
}

// PlannedSchedule renders the full fault schedule up to the given
// logical time as a pure function of (plan, seed): scheduled site events
// and every sequence slot whose cross-site message would drop. Identical
// for identical (plan, sites, seed) regardless of workload interleaving,
// which is what makes chaos runs reproducible.
func (in *Injector) PlannedSchedule(upTo int64) []string {
	var out []string
	next := 0
	for seq := int64(1); seq <= upTo; seq++ {
		for next < len(in.plan.Events) && in.plan.Events[next].At <= seq {
			ev := in.plan.Events[next]
			next++
			switch ev.Kind {
			case Partition:
				tag := "partition"
				if ev.OneWay {
					tag = "partition-oneway"
				}
				out = append(out, fmt.Sprintf("seq=%d %s %s", seq, tag, FormatGroups(ev.Groups)))
			case Heal:
				out = append(out, fmt.Sprintf("seq=%d heal %s", seq, FormatGroups(ev.Groups)))
			default:
				tag := ev.Kind.String()
				if ev.Kind == Crash && ev.Drift {
					tag = "crash+drift"
				}
				out = append(out, fmt.Sprintf("seq=%d %s site=%d", seq, tag, ev.Site))
			}
		}
		if in.wouldDrop(seq) {
			out = append(out, fmt.Sprintf("seq=%d would-drop", seq))
		}
	}
	return out
}

// SiteUp implements Transport.
func (in *Injector) SiteUp(site int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if site < 0 || site >= in.sites {
		return false
	}
	return !in.down[site]
}

// Partitioned reports whether any link cut is currently active — the
// "inside a partition window" predicate availability experiments
// measure against.
func (in *Injector) Partitioned() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, row := range in.cut {
		for _, c := range row {
			if c {
				return true
			}
		}
	}
	return false
}

// Reachable reports whether a message from -> to would currently pass
// the partition layer (it may still be dropped or hit a crashed site).
func (in *Injector) Reachable(from, to int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if from < 0 || from >= in.sites || to < 0 || to >= in.sites {
		return false
	}
	return !in.cut[from][to]
}

// cutPairs expands an event's groups into the directed group pairs
// whose links the event severs or restores: every ordered pair of
// distinct groups, with a single group paired against its complement.
// OneWay keeps only the first direction.
func cutPairs(groups [][]int, oneWay bool, sites int) [][2][]int {
	gs := groups
	if len(gs) == 1 {
		listed := map[int]bool{}
		for _, s := range gs[0] {
			listed[s] = true
		}
		var rest []int
		for s := 0; s < sites; s++ {
			if !listed[s] {
				rest = append(rest, s)
			}
		}
		gs = [][]int{gs[0], rest}
	}
	var pairs [][2][]int
	for i := range gs {
		for j := range gs {
			if i == j {
				continue
			}
			if oneWay && !(i == 0 && j == 1) {
				continue
			}
			pairs = append(pairs, [2][]int{gs[i], gs[j]})
		}
	}
	return pairs
}

// partitionLocked applies a partition event to the cut matrix. Returns
// true if at least one new link was severed. Caller holds mu.
func (in *Injector) partitionLocked(ev Event) bool {
	changed := false
	for _, p := range cutPairs(ev.Groups, ev.OneWay, in.sites) {
		for _, a := range p[0] {
			for _, b := range p[1] {
				if a != b && !in.cut[a][b] {
					in.cut[a][b] = true
					changed = true
				}
			}
		}
	}
	if !changed {
		return false
	}
	in.stats.Partitions.Inc()
	tag := "partition"
	if ev.OneWay {
		tag = "partition-oneway"
	}
	in.sched = append(in.sched, fmt.Sprintf("seq=%d %s %s", in.seq, tag, FormatGroups(ev.Groups)))
	return true
}

// healLocked applies a heal event: with groups, the cuts between those
// groups clear (both directions); with none, every cut clears. Returns
// true if at least one link was restored. Caller holds mu.
func (in *Injector) healLocked(ev Event) bool {
	changed := false
	if len(ev.Groups) == 0 {
		for a := range in.cut {
			for b := range in.cut[a] {
				if in.cut[a][b] {
					in.cut[a][b] = false
					changed = true
				}
			}
		}
	} else {
		for _, p := range cutPairs(ev.Groups, false, in.sites) {
			for _, a := range p[0] {
				for _, b := range p[1] {
					if in.cut[a][b] {
						in.cut[a][b] = false
						changed = true
					}
				}
			}
		}
	}
	if !changed {
		return false
	}
	in.stats.Heals.Inc()
	in.sched = append(in.sched, fmt.Sprintf("seq=%d heal %s", in.seq, FormatGroups(ev.Groups)))
	return true
}

// Partition cuts the links between the given site groups immediately
// (manual control for tests; scheduled plans use Events).
func (in *Injector) Partition(groups [][]int, oneWay bool) {
	in.mu.Lock()
	fired := in.partitionLocked(Event{At: in.seq, Kind: Partition, Groups: groups, OneWay: oneWay})
	hooks := in.hooks
	in.mu.Unlock()
	if fired && hooks.OnPartition != nil {
		hooks.OnPartition(groups, oneWay)
	}
}

// Heal restores the links between the given site groups (all links with
// nil groups) immediately.
func (in *Injector) Heal(groups [][]int) {
	in.mu.Lock()
	fired := in.healLocked(Event{At: in.seq, Kind: Heal, Groups: groups})
	hooks := in.hooks
	in.mu.Unlock()
	if fired && hooks.OnHeal != nil {
		hooks.OnHeal(groups)
	}
}

// Crash fail-stops a site immediately (manual control for tests and
// interactive drivers; scheduled plans use Events). The caller must not
// hold cluster locks: the crash hook runs synchronously.
func (in *Injector) Crash(site int, drift bool) {
	in.mu.Lock()
	fired := in.crashLocked(Event{At: in.seq, Kind: Crash, Site: site, Drift: drift})
	hooks := in.hooks
	in.mu.Unlock()
	if fired && hooks.OnCrash != nil {
		hooks.OnCrash(site, drift)
	}
}

// Recover brings a crashed site back immediately: the recovery hook runs
// synchronously and the site is only marked up once it completes, so no
// traffic reaches a half-rebuilt site. The caller must not hold cluster
// locks.
func (in *Injector) Recover(site int) {
	in.mu.Lock()
	fired := in.beginRecoverLocked(Event{At: in.seq, Kind: Recover, Site: site})
	hooks := in.hooks
	in.mu.Unlock()
	if !fired {
		return
	}
	if hooks.OnRecover != nil {
		hooks.OnRecover(site)
	}
	in.markUp(site)
}

// crashLocked flips the site down and logs the decision. Caller holds mu.
func (in *Injector) crashLocked(ev Event) bool {
	if ev.Site < 0 || ev.Site >= in.sites || in.down[ev.Site] {
		return false
	}
	in.down[ev.Site] = true
	in.stats.Crashes.Inc()
	tag := "crash"
	if ev.Drift {
		tag = "crash+drift"
	}
	in.sched = append(in.sched, fmt.Sprintf("seq=%d %s site=%d", in.seq, tag, ev.Site))
	return true
}

// beginRecoverLocked logs a recovery decision but leaves the site down:
// the caller runs the recovery hook and then markUp, so the site only
// serves traffic once its state is rebuilt. Caller holds mu.
func (in *Injector) beginRecoverLocked(ev Event) bool {
	if ev.Site < 0 || ev.Site >= in.sites || !in.down[ev.Site] {
		return false
	}
	in.stats.Recoveries.Inc()
	in.sched = append(in.sched, fmt.Sprintf("seq=%d recover site=%d", in.seq, ev.Site))
	return true
}

// markUp completes a recovery.
func (in *Injector) markUp(site int) {
	in.mu.Lock()
	in.down[site] = false
	in.mu.Unlock()
}

// Send implements Transport. Each call advances the logical clock, fires
// any due scheduled events, then decides the fate of this exchange. Drop
// and delay decisions are pure functions of (seed, sequence number), so
// the fault schedule does not depend on which goroutine's access drew
// which sequence slot.
func (in *Injector) Send(from, to int) error {
	in.mu.Lock()
	in.seq++
	seq := in.seq

	// Fire scheduled events whose time has come; callbacks run after the
	// injector lock is released (the cluster's handlers take their own
	// locks).
	var crashes, recovers, partitions, heals []Event
	for in.next < len(in.plan.Events) && in.plan.Events[in.next].At <= seq {
		ev := in.plan.Events[in.next]
		in.next++
		switch ev.Kind {
		case Crash:
			if in.crashLocked(ev) {
				crashes = append(crashes, ev)
			}
		case Recover:
			if in.beginRecoverLocked(ev) {
				recovers = append(recovers, ev)
			}
		case Partition:
			if in.partitionLocked(ev) {
				partitions = append(partitions, ev)
			}
		case Heal:
			if in.healLocked(ev) {
				heals = append(heals, ev)
			}
		}
	}

	var err error
	var site int
	switch {
	case in.down[from]:
		err, site = ErrSiteDown, from
	case in.down[to]:
		err, site = ErrSiteDown, to
	case in.cut[from][to]:
		// Both endpoints are alive; the link between their groups is cut.
		// Not logged per-send: a partition window refuses thousands of
		// exchanges and the decision is fully determined by the cut state
		// (the partition/heal events ARE the schedule entries).
		err, site = ErrPartitioned, to
	case from != to && in.wouldDrop(seq):
		err, site = ErrDropped, to
		in.sched = append(in.sched, fmt.Sprintf("seq=%d drop %d->%d", seq, from, to))
	}
	var delay time.Duration
	if err == nil && from != to {
		delay = in.delayFor(seq)
	}
	hooks := in.hooks
	in.mu.Unlock()

	for _, ev := range crashes {
		if hooks.OnCrash != nil {
			hooks.OnCrash(ev.Site, ev.Drift)
		}
	}
	// Scheduled recovery runs asynchronously: the goroutine in whose Send
	// the event fired may hold cluster locks the recovery handler needs.
	// The site stays down until the rebuild completes.
	for _, ev := range recovers {
		go func(site int) {
			if hooks.OnRecover != nil {
				hooks.OnRecover(site)
			}
			in.markUp(site)
		}(ev.Site)
	}
	// Partition and heal notifications likewise run asynchronously: the
	// heal handler typically re-synchronizes counters, which itself sends.
	for _, ev := range partitions {
		if hooks.OnPartition != nil {
			go hooks.OnPartition(ev.Groups, ev.OneWay)
		}
	}
	for _, ev := range heals {
		if hooks.OnHeal != nil {
			go hooks.OnHeal(ev.Groups)
		}
	}

	in.stats.Sent.Inc()
	if err != nil {
		switch {
		case errors.Is(err, ErrDropped):
			in.stats.Dropped.Inc()
		case errors.Is(err, ErrPartitioned):
			in.stats.Partitioned.Inc()
		default:
			in.stats.Rejected.Inc()
		}
		return &Error{Site: site, Err: err}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// wouldDrop decides message loss for a sequence slot: a pure function of
// the injector seed and the slot, never of goroutine interleaving.
func (in *Injector) wouldDrop(seq int64) bool {
	if in.plan.DropRate <= 0 {
		return false
	}
	u := splitmix64(uint64(in.seed) ^ uint64(seq)*0x9E3779B97F4A7C15)
	return float64(u>>11)/float64(1<<53) < in.plan.DropRate
}

// delayFor derives the injected latency for a sequence slot.
func (in *Injector) delayFor(seq int64) time.Duration {
	if in.plan.Delay <= 0 {
		return 0
	}
	u := splitmix64(uint64(in.seed)*0xBF58476D1CE4E5B9 ^ uint64(seq))
	return time.Duration(u % uint64(in.plan.Delay))
}

// Mix derives a deterministic 64-bit value from a seed and a logical
// sequence number — the seeded-logical-clock idiom every injector in
// this package is built on (drop decisions, delays). Exported so other
// fault-injection layers (the WAL's crash-point filesystem) schedule
// their decisions the same way: as pure functions of (seed, sequence),
// never of goroutine interleaving.
func Mix(seed, seq int64) uint64 {
	return splitmix64(uint64(seed) ^ uint64(seq)*0x9E3779B97F4A7C15)
}

// splitmix64 is the finalizer of the SplitMix64 generator.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
