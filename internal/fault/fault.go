// Package fault is the deterministic fault-injection subsystem for the
// distributed protocol DMT(k). It models the failure modes the paper's
// Section V-B silently assumes away: lost and delayed cross-site
// messages, fail-stop site crashes with recovery, and crash-induced
// counter drift (a crashed site restarting with stale or zeroed local
// counters, the hazard behind the paper's "synchronize the counters
// periodically" remark).
//
// The injector is driven by a *logical clock*: every cross-object access
// in the cluster calls Transport.Send, which advances a global sequence
// number under one mutex. All fault decisions — which message drops,
// when a site crashes or recovers — are functions of that sequence
// number and a seeded RNG consumed in sequence order, so a (Plan, seed)
// pair reproduces the exact same fault schedule byte-for-byte no matter
// how goroutines interleave. Schedule() returns the decision log for
// reproducibility assertions.
//
// Wall-clock time appears only in the injected message delays and the
// recovery timestamps used for latency reporting; it never influences
// which faults fire.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ErrSiteDown reports an access to (or from) a crashed site.
var ErrSiteDown = errors.New("fault: site down")

// ErrDropped reports a cross-site message lost in transit.
var ErrDropped = errors.New("fault: message dropped")

// Error carries the failing site and the underlying fault cause so the
// scheduler layer can name the unavailable site in its error.
type Error struct {
	Site int // the site that is down or unreachable
	Err  error
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("site %d: %v", e.Site, e.Err) }

// Unwrap exposes the cause for errors.Is.
func (e *Error) Unwrap() error { return e.Err }

// SiteOf extracts the failing site from a transport error (-1 if the
// error carries none).
func SiteOf(err error) int {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Site
	}
	return -1
}

// Transport is the injectable hook every cross-site (and local) object
// access of a DMT cluster goes through. A nil Transport in the cluster
// options means a perfect network.
type Transport interface {
	// Send delivers one logical request/reply exchange from site `from`
	// to the site `to` that homes the accessed object. A nil return means
	// the access succeeds; otherwise the returned error wraps ErrSiteDown
	// or ErrDropped and the access must fail fast without touching state.
	Send(from, to int) error
	// SiteUp reports whether the site is currently operational.
	SiteUp(site int) bool
}

// EventKind labels a scheduled site transition.
type EventKind int

// Site transition kinds.
const (
	// Crash fail-stops a site: its volatile item index is lost and, with
	// Event.Drift, its local counters reset (clock-skewed drift).
	Crash EventKind = iota
	// Recover brings a crashed site back; the cluster rebuilds its item
	// index and re-validates its counters against the survivors.
	Recover
)

// String names the kind.
func (k EventKind) String() string {
	if k == Crash {
		return "crash"
	}
	return "recover"
}

// Event is one scheduled site transition, fired when the injector's
// logical clock reaches At.
type Event struct {
	At    int64 // logical access sequence at which the event fires
	Kind  EventKind
	Site  int
	Drift bool // with Crash: also reset the site's local counters
}

// Plan is a named, deterministic fault schedule.
type Plan struct {
	Name string
	// DropRate is the per-message probability a cross-site exchange is
	// lost (0..1). Local accesses never drop.
	DropRate float64
	// Delay is the maximum injected cross-site latency; each exchange
	// sleeps uniformly in [0, Delay). Zero disables delays.
	Delay time.Duration
	// Events are site transitions ordered by At.
	Events []Event
}

// Hooks let the cluster react to site transitions: the injector calls
// OnCrash/OnRecover synchronously (outside its own lock) when an event
// fires, so the cluster can wipe volatile state and run recovery.
type Hooks struct {
	OnCrash   func(site int, drift bool)
	OnRecover func(site int)
}

// Stats are the injector's observable fault counters, built on the
// metrics toolkit so harnesses can surface them alongside throughput.
type Stats struct {
	Sent       metrics.Counter // logical exchanges attempted
	Dropped    metrics.Counter // cross-site messages lost
	Rejected   metrics.Counter // accesses refused because a site was down
	Crashes    metrics.Counter // crash events fired
	Recoveries metrics.Counter // recovery events fired
}

// Injector implements Transport for a Plan. Safe for concurrent use.
type Injector struct {
	plan  Plan
	sites int
	seed  int64
	hooks Hooks

	mu    sync.Mutex
	seq   int64
	next  int // index of the next unfired event
	down  []bool
	sched []string // decision log, one line per fault decision

	stats Stats
}

// New builds the injector for a plan over the given number of sites.
// The seed fixes every probabilistic decision: same (plan, sites, seed)
// means the same fault schedule.
func New(plan Plan, sites int, seed int64) *Injector {
	if sites < 1 {
		panic("fault: sites must be >= 1")
	}
	return &Injector{
		plan:  plan.Normalize(),
		sites: sites,
		seed:  seed,
		down:  make([]bool, sites),
	}
}

// SetHooks registers the cluster's crash/recovery callbacks. Must be set
// before traffic flows; the cluster wires this at construction.
func (in *Injector) SetHooks(h Hooks) {
	in.mu.Lock()
	in.hooks = h
	in.mu.Unlock()
}

// Stats exposes the fault counters.
func (in *Injector) Stats() *Stats { return &in.stats }

// Seq returns the current logical clock value.
func (in *Injector) Seq() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Schedule returns a copy of the fault-decision log: one line per drop,
// crash and recovery, each tagged with the logical sequence number at
// which it fired. Two runs with the same plan and seed produce identical
// schedules.
func (in *Injector) Schedule() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.sched...)
}

// PlannedSchedule renders the full fault schedule up to the given
// logical time as a pure function of (plan, seed): scheduled site events
// and every sequence slot whose cross-site message would drop. Identical
// for identical (plan, sites, seed) regardless of workload interleaving,
// which is what makes chaos runs reproducible.
func (in *Injector) PlannedSchedule(upTo int64) []string {
	var out []string
	next := 0
	for seq := int64(1); seq <= upTo; seq++ {
		for next < len(in.plan.Events) && in.plan.Events[next].At <= seq {
			ev := in.plan.Events[next]
			next++
			tag := ev.Kind.String()
			if ev.Kind == Crash && ev.Drift {
				tag = "crash+drift"
			}
			out = append(out, fmt.Sprintf("seq=%d %s site=%d", seq, tag, ev.Site))
		}
		if in.wouldDrop(seq) {
			out = append(out, fmt.Sprintf("seq=%d would-drop", seq))
		}
	}
	return out
}

// SiteUp implements Transport.
func (in *Injector) SiteUp(site int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if site < 0 || site >= in.sites {
		return false
	}
	return !in.down[site]
}

// Crash fail-stops a site immediately (manual control for tests and
// interactive drivers; scheduled plans use Events). The caller must not
// hold cluster locks: the crash hook runs synchronously.
func (in *Injector) Crash(site int, drift bool) {
	in.mu.Lock()
	fired := in.crashLocked(Event{At: in.seq, Kind: Crash, Site: site, Drift: drift})
	hooks := in.hooks
	in.mu.Unlock()
	if fired && hooks.OnCrash != nil {
		hooks.OnCrash(site, drift)
	}
}

// Recover brings a crashed site back immediately: the recovery hook runs
// synchronously and the site is only marked up once it completes, so no
// traffic reaches a half-rebuilt site. The caller must not hold cluster
// locks.
func (in *Injector) Recover(site int) {
	in.mu.Lock()
	fired := in.beginRecoverLocked(Event{At: in.seq, Kind: Recover, Site: site})
	hooks := in.hooks
	in.mu.Unlock()
	if !fired {
		return
	}
	if hooks.OnRecover != nil {
		hooks.OnRecover(site)
	}
	in.markUp(site)
}

// crashLocked flips the site down and logs the decision. Caller holds mu.
func (in *Injector) crashLocked(ev Event) bool {
	if ev.Site < 0 || ev.Site >= in.sites || in.down[ev.Site] {
		return false
	}
	in.down[ev.Site] = true
	in.stats.Crashes.Inc()
	tag := "crash"
	if ev.Drift {
		tag = "crash+drift"
	}
	in.sched = append(in.sched, fmt.Sprintf("seq=%d %s site=%d", in.seq, tag, ev.Site))
	return true
}

// beginRecoverLocked logs a recovery decision but leaves the site down:
// the caller runs the recovery hook and then markUp, so the site only
// serves traffic once its state is rebuilt. Caller holds mu.
func (in *Injector) beginRecoverLocked(ev Event) bool {
	if ev.Site < 0 || ev.Site >= in.sites || !in.down[ev.Site] {
		return false
	}
	in.stats.Recoveries.Inc()
	in.sched = append(in.sched, fmt.Sprintf("seq=%d recover site=%d", in.seq, ev.Site))
	return true
}

// markUp completes a recovery.
func (in *Injector) markUp(site int) {
	in.mu.Lock()
	in.down[site] = false
	in.mu.Unlock()
}

// Send implements Transport. Each call advances the logical clock, fires
// any due scheduled events, then decides the fate of this exchange. Drop
// and delay decisions are pure functions of (seed, sequence number), so
// the fault schedule does not depend on which goroutine's access drew
// which sequence slot.
func (in *Injector) Send(from, to int) error {
	in.mu.Lock()
	in.seq++
	seq := in.seq

	// Fire scheduled events whose time has come; callbacks run after the
	// injector lock is released (the cluster's handlers take their own
	// locks).
	var crashes, recovers []Event
	for in.next < len(in.plan.Events) && in.plan.Events[in.next].At <= seq {
		ev := in.plan.Events[in.next]
		in.next++
		switch ev.Kind {
		case Crash:
			if in.crashLocked(ev) {
				crashes = append(crashes, ev)
			}
		case Recover:
			if in.beginRecoverLocked(ev) {
				recovers = append(recovers, ev)
			}
		}
	}

	var err error
	var site int
	switch {
	case in.down[from]:
		err, site = ErrSiteDown, from
	case in.down[to]:
		err, site = ErrSiteDown, to
	case from != to && in.wouldDrop(seq):
		err, site = ErrDropped, to
		in.sched = append(in.sched, fmt.Sprintf("seq=%d drop %d->%d", seq, from, to))
	}
	var delay time.Duration
	if err == nil && from != to {
		delay = in.delayFor(seq)
	}
	hooks := in.hooks
	in.mu.Unlock()

	for _, ev := range crashes {
		if hooks.OnCrash != nil {
			hooks.OnCrash(ev.Site, ev.Drift)
		}
	}
	// Scheduled recovery runs asynchronously: the goroutine in whose Send
	// the event fired may hold cluster locks the recovery handler needs.
	// The site stays down until the rebuild completes.
	for _, ev := range recovers {
		go func(site int) {
			if hooks.OnRecover != nil {
				hooks.OnRecover(site)
			}
			in.markUp(site)
		}(ev.Site)
	}

	in.stats.Sent.Inc()
	if err != nil {
		if errors.Is(err, ErrDropped) {
			in.stats.Dropped.Inc()
		} else {
			in.stats.Rejected.Inc()
		}
		return &Error{Site: site, Err: err}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// wouldDrop decides message loss for a sequence slot: a pure function of
// the injector seed and the slot, never of goroutine interleaving.
func (in *Injector) wouldDrop(seq int64) bool {
	if in.plan.DropRate <= 0 {
		return false
	}
	u := splitmix64(uint64(in.seed) ^ uint64(seq)*0x9E3779B97F4A7C15)
	return float64(u>>11)/float64(1<<53) < in.plan.DropRate
}

// delayFor derives the injected latency for a sequence slot.
func (in *Injector) delayFor(seq int64) time.Duration {
	if in.plan.Delay <= 0 {
		return 0
	}
	u := splitmix64(uint64(in.seed)*0xBF58476D1CE4E5B9 ^ uint64(seq))
	return time.Duration(u % uint64(in.plan.Delay))
}

// Mix derives a deterministic 64-bit value from a seed and a logical
// sequence number — the seeded-logical-clock idiom every injector in
// this package is built on (drop decisions, delays). Exported so other
// fault-injection layers (the WAL's crash-point filesystem) schedule
// their decisions the same way: as pure functions of (seed, sequence),
// never of goroutine interleaving.
func Mix(seed, seq int64) uint64 {
	return splitmix64(uint64(seed) ^ uint64(seq)*0x9E3779B97F4A7C15)
}

// splitmix64 is the finalizer of the SplitMix64 generator.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
