package fault

import (
	"errors"
	"strings"
	"testing"
)

// TestValidateRejections covers every rejection class of Plan.Validate:
// each invalid schedule must fail with a typed *PlanError naming the
// offending event, instead of producing an undefined injector schedule.
func TestValidateRejections(t *testing.T) {
	iso1 := [][]int{{1}}
	cases := []struct {
		name   string
		plan   Plan
		reason string // substring of the expected PlanError reason
	}{
		{"drop rate below zero", Plan{DropRate: -0.1}, "outside [0,1]"},
		{"drop rate above one", Plan{DropRate: 1.5}, "outside [0,1]"},
		{"event before clock start", Plan{Events: []Event{
			{At: 0, Kind: Crash, Site: 1}}}, "before the logical clock"},
		{"crash site out of range", Plan{Events: []Event{
			{At: 10, Kind: Crash, Site: 9}}}, "out of range"},
		{"crash negative site", Plan{Events: []Event{
			{At: 10, Kind: Crash, Site: -1}}}, "out of range"},
		{"overlapping crash", Plan{Events: []Event{
			{At: 10, Kind: Crash, Site: 1},
			{At: 20, Kind: Crash, Site: 1}}}, "already down"},
		{"recover without crash", Plan{Events: []Event{
			{At: 10, Kind: Recover, Site: 1}}}, "not down"},
		{"recover twice", Plan{Events: []Event{
			{At: 10, Kind: Crash, Site: 1},
			{At: 20, Kind: Recover, Site: 1},
			{At: 30, Kind: Recover, Site: 1}}}, "not down"},
		{"drift on recover", Plan{Events: []Event{
			{At: 10, Kind: Crash, Site: 1},
			{At: 20, Kind: Recover, Site: 1, Drift: true}}}, "crash property"},
		{"groups on crash", Plan{Events: []Event{
			{At: 10, Kind: Crash, Site: 1, Groups: iso1}}}, "partition groups"},
		{"partition without groups", Plan{Events: []Event{
			{At: 10, Kind: Partition}}}, "without site groups"},
		{"partition empty group", Plan{Events: []Event{
			{At: 10, Kind: Partition, Groups: [][]int{{}}}}}, "empty site group"},
		{"partition site out of range", Plan{Events: []Event{
			{At: 10, Kind: Partition, Groups: [][]int{{7}}}}}, "out of range"},
		{"partition site in two groups", Plan{Events: []Event{
			{At: 10, Kind: Partition, Groups: [][]int{{0, 1}, {1, 2}}}}}, "two groups"},
		{"partition covers every site", Plan{Events: []Event{
			{At: 10, Kind: Partition, Groups: [][]int{{0, 1, 2, 3}}}}}, "no complement"},
		{"overlapping partition", Plan{Events: []Event{
			{At: 10, Kind: Partition, Groups: iso1},
			{At: 20, Kind: Partition, Groups: iso1}}}, "no new link"},
		{"one-way with three groups", Plan{Events: []Event{
			{At: 10, Kind: Partition, Groups: [][]int{{0}, {1}, {2}}, OneWay: true}}}, "one or two groups"},
		{"heal without partition", Plan{Events: []Event{
			{At: 10, Kind: Heal, Groups: iso1}}}, "restores no cut link"},
		{"heal-all without partition", Plan{Events: []Event{
			{At: 10, Kind: Heal}}}, "restores no cut link"},
		{"one-way heal", Plan{Events: []Event{
			{At: 10, Kind: Partition, Groups: iso1},
			{At: 20, Kind: Heal, Groups: iso1, OneWay: true}}}, "partition property"},
		{"unknown kind", Plan{Events: []Event{
			{At: 10, Kind: EventKind(99), Site: 1}}}, "unknown event kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.plan.Name = tc.name
			err := tc.plan.Validate(4)
			if err == nil {
				t.Fatalf("Validate accepted invalid plan %q", tc.name)
			}
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *PlanError: %v", err, err)
			}
			if !strings.Contains(pe.Reason, tc.reason) {
				t.Fatalf("reason %q does not mention %q", pe.Reason, tc.reason)
			}
		})
	}
}

// TestValidateAcceptsNamedPlans: every named plan must be valid for a
// reasonable cluster (4 sites), since fault.New panics on invalid ones.
func TestValidateAcceptsNamedPlans(t *testing.T) {
	for _, name := range PlanNames() {
		plan, err := PlanByName(name)
		if err != nil {
			t.Fatalf("PlanByName(%q): %v", name, err)
		}
		if err := plan.Validate(4); err != nil {
			t.Fatalf("named plan %q invalid for 4 sites: %v", name, err)
		}
	}
}

// TestValidateAcceptsLegalSequences: crash/recover/crash cycles and
// partition/heal/partition cycles are legal; a heal without groups
// clears prior cuts.
func TestValidateAcceptsLegalSequences(t *testing.T) {
	plan := Plan{Name: "legal", Events: []Event{
		{At: 10, Kind: Crash, Site: 1, Drift: true},
		{At: 20, Kind: Recover, Site: 1},
		{At: 25, Kind: Partition, Groups: [][]int{{1}}},
		{At: 30, Kind: Crash, Site: 1},
		{At: 35, Kind: Heal}, // no groups: clears everything
		{At: 40, Kind: Recover, Site: 1},
		{At: 45, Kind: Partition, Groups: [][]int{{0, 1}, {2, 3}}, OneWay: true},
		{At: 50, Kind: Heal, Groups: [][]int{{0, 1}, {2, 3}}},
	}}
	if err := plan.Validate(4); err != nil {
		t.Fatalf("legal plan rejected: %v", err)
	}
}

// TestNewPanicsOnInvalidPlan: the constructor refuses an undefined
// schedule loudly rather than running it.
func TestNewPanicsOnInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid plan without panicking")
		}
	}()
	New(Plan{Name: "bad", Events: []Event{{At: 5, Kind: Recover, Site: 0}}}, 3, 1)
}

// TestPartitionCutsTraffic: a symmetric partition refuses cross-group
// sends in both directions with ErrPartitioned, leaves intra-group and
// local sends alone, and heal restores everything.
func TestPartitionCutsTraffic(t *testing.T) {
	in := New(Plan{Name: "manual"}, 4, 7)
	in.Partition([][]int{{1}}, false)

	if !in.Partitioned() {
		t.Fatal("Partitioned() false while a cut is active")
	}
	for _, dir := range [][2]int{{0, 1}, {1, 0}, {2, 1}, {1, 3}} {
		err := in.Send(dir[0], dir[1])
		if !errors.Is(err, ErrPartitioned) {
			t.Fatalf("Send(%d,%d) = %v, want ErrPartitioned", dir[0], dir[1], err)
		}
		if errors.Is(err, ErrSiteDown) {
			t.Fatalf("partition error must stay distinct from ErrSiteDown")
		}
	}
	// Sites on the same side still talk; locals always pass.
	for _, dir := range [][2]int{{0, 2}, {2, 3}, {1, 1}, {0, 0}} {
		if err := in.Send(dir[0], dir[1]); err != nil {
			t.Fatalf("Send(%d,%d) = %v, want nil", dir[0], dir[1], err)
		}
	}
	if got := in.Stats().Partitioned.Value(); got != 4 {
		t.Fatalf("Partitioned stat = %d, want 4", got)
	}

	in.Heal(nil)
	if in.Partitioned() {
		t.Fatal("Partitioned() true after heal")
	}
	if err := in.Send(0, 1); err != nil {
		t.Fatalf("Send(0,1) after heal = %v, want nil", err)
	}
}

// TestOneWayPartition: an asymmetric cut severs only group -> rest;
// the reverse direction keeps flowing.
func TestOneWayPartition(t *testing.T) {
	in := New(Plan{Name: "manual"}, 3, 7)
	in.Partition([][]int{{1}}, true)

	if err := in.Send(1, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("Send(1,0) = %v, want ErrPartitioned", err)
	}
	if err := in.Send(0, 1); err != nil {
		t.Fatalf("Send(0,1) = %v, want nil (cut is one-way)", err)
	}
	if in.Reachable(1, 2) {
		t.Fatal("Reachable(1,2) true across a one-way cut")
	}
	if !in.Reachable(2, 1) {
		t.Fatal("Reachable(2,1) false on the open direction")
	}
}

// TestScheduledPartitionFires: a planned partition/heal pair fires on
// the logical clock and shows up in both the executed and the planned
// schedule, making the run replayable from the log line alone.
func TestScheduledPartitionFires(t *testing.T) {
	plan, err := PlanByName("partition")
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan, 4, 42)
	sawCut := false
	for i := 0; i < 3000; i++ {
		err := in.Send(0, 1)
		if errors.Is(err, ErrPartitioned) {
			sawCut = true
		}
	}
	if !sawCut {
		t.Fatal("scheduled partition never refused a send")
	}
	if in.Partitioned() {
		t.Fatal("partition still active after scheduled heal")
	}
	var got []string
	for _, line := range in.Schedule() {
		if strings.Contains(line, "partition") || strings.Contains(line, "heal") {
			got = append(got, line)
		}
	}
	want := []string{"seq=400 partition [1]", "seq=2400 heal [1]"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("executed schedule %v, want %v", got, want)
	}
	planned := in.PlannedSchedule(3000)
	text := strings.Join(planned, "\n")
	for _, w := range want {
		if !strings.Contains(text, w) {
			t.Fatalf("planned schedule missing %q:\n%s", w, text)
		}
	}
}

// TestPartitionHooksFire: OnPartition/OnHeal notifications reach the
// cluster for both manual and scheduled events.
func TestPartitionHooksFire(t *testing.T) {
	in := New(Plan{Name: "manual"}, 3, 1)
	parted := make(chan [][]int, 1)
	healed := make(chan [][]int, 1)
	in.SetHooks(Hooks{
		OnPartition: func(groups [][]int, oneWay bool) { parted <- groups },
		OnHeal:      func(groups [][]int) { healed <- groups },
	})
	in.Partition([][]int{{2}}, false)
	if g := <-parted; FormatGroups(g) != "[2]" {
		t.Fatalf("OnPartition groups = %v", g)
	}
	in.Heal([][]int{{2}})
	if g := <-healed; FormatGroups(g) != "[2]" {
		t.Fatalf("OnHeal groups = %v", g)
	}
}

// TestFormatGroups: deterministic rendering regardless of input order.
func TestFormatGroups(t *testing.T) {
	cases := []struct {
		in   [][]int
		want string
	}{
		{nil, "all"},
		{[][]int{{1}}, "[1]"},
		{[][]int{{3, 0, 2}, {1}}, "[0 2 3|1]"},
		{[][]int{{2}, {1, 0}}, "[0 1|2]"},
	}
	for _, tc := range cases {
		if got := FormatGroups(tc.in); got != tc.want {
			t.Fatalf("FormatGroups(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
