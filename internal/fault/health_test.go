package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestHealthTransitions: consecutive failures walk a site through
// Up -> Suspect -> Down; one success snaps it back to Up.
func TestHealthTransitions(t *testing.T) {
	h := NewHealth(3, HealthOptions{SuspectAfter: 2, DownAfter: 4})
	if got := h.State(1); got != Up {
		t.Fatalf("initial state = %v, want up", got)
	}
	h.Observe(1, false)
	if got := h.State(1); got != Up {
		t.Fatalf("after 1 failure = %v, want up (below suspect threshold)", got)
	}
	h.Observe(1, false)
	if got := h.State(1); got != Suspect {
		t.Fatalf("after 2 failures = %v, want suspect", got)
	}
	if !h.Skip(1) {
		t.Fatal("Skip(suspect site) = false")
	}
	h.Observe(1, false)
	h.Observe(1, false)
	if got := h.State(1); got != Down {
		t.Fatalf("after 4 failures = %v, want down", got)
	}
	h.Observe(1, true)
	if got := h.State(1); got != Up {
		t.Fatalf("after success = %v, want up (recovery is instant)", got)
	}
	if h.Skip(1) {
		t.Fatal("Skip(up site) = true")
	}
	// Other sites are untouched by site 1's history.
	if got := h.State(0); got != Up {
		t.Fatalf("unrelated site state = %v, want up", got)
	}
	if h.Transitions() != 3 { // up->suspect, suspect->down, down->up
		t.Fatalf("Transitions = %d, want 3", h.Transitions())
	}
}

// TestHealthOutOfRange: unknown sites are conservatively Down/skipped
// and Observe on them is a no-op, not a panic.
func TestHealthOutOfRange(t *testing.T) {
	h := NewHealth(2, HealthOptions{})
	h.Observe(-1, false)
	h.Observe(9, true)
	if got := h.State(9); got != Down {
		t.Fatalf("State(out of range) = %v, want down", got)
	}
	if !h.Skip(-1) {
		t.Fatal("Skip(out of range) = false")
	}
}

// TestHealthWatchDetectsPartition: the probe loop drives a site cut off
// by an injector partition to Down, and back to Up after heal — the
// detector sees "unreachable" exactly like "dead", which is the
// partial-synchrony limit the skip set must tolerate.
func TestHealthWatchDetectsPartition(t *testing.T) {
	in := New(Plan{Name: "manual"}, 3, 5)
	h := NewHealth(3, HealthOptions{
		SuspectAfter: 1, DownAfter: 2,
		ProbeEvery: 50 * time.Microsecond, Seed: 5,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.Watch(func(site int) error { return in.Send(0, site) }, stop)
	}()

	in.Partition([][]int{{2}}, false)
	waitState(t, h, 2, Down)
	if got := h.State(1); got != Up {
		t.Fatalf("connected site state = %v, want up", got)
	}

	in.Heal(nil)
	waitState(t, h, 2, Up)
	close(stop)
	wg.Wait()
	if h.ProbeRounds() == 0 {
		t.Fatal("Watch completed no probe rounds")
	}
}

// waitState polls for the detector to converge (the probe loop is
// asynchronous; convergence, not timing, is the contract).
func waitState(t *testing.T, h *Health, site int, want SiteState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.State(site) == want {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("site %d never reached %v (stuck at %v)", site, want, h.State(site))
}

// TestHealthConcurrentObserve: racing observers and readers are safe
// and the suspicion counter never yields an out-of-bounds state.
func TestHealthConcurrentObserve(t *testing.T) {
	h := NewHealth(4, HealthOptions{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(i%4, Mix(int64(g), int64(i))%3 == 0)
				_ = h.State(i % 4)
				_ = h.Skip((i + 1) % 4)
				_ = h.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	for s := 0; s < 4; s++ {
		if st := h.State(s); st != Up && st != Suspect && st != Down {
			t.Fatalf("site %d in impossible state %d", s, st)
		}
	}
}

// TestHealthDefaultsSane: zero options resolve to usable thresholds.
func TestHealthDefaultsSane(t *testing.T) {
	o := HealthOptions{}.withDefaults()
	if o.SuspectAfter < 1 || o.DownAfter <= o.SuspectAfter || o.ProbeEvery <= 0 {
		t.Fatalf("bad defaults: %+v", o)
	}
	if errors.Is(nil, ErrPartitioned) {
		t.Fatal("sanity")
	}
}
