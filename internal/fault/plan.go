package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Named plans for the -chaos/-partition modes of cmd/mtsim and the
// chaos test suites. Crash/recovery/partition positions are expressed
// on the logical access clock, so they land at the same point of the
// workload regardless of machine speed.
//
//	none            perfect network (baseline under the transport hook)
//	lossy           2% cross-site message loss
//	slow            up to 200µs injected cross-site latency
//	crash           site 1 crashes at access 400, recovers at access 2400
//	crash-drift     same, and the crash zeroes site 1's local counters
//	chaos           crash-drift plus 1% message loss
//	partition       site 1 is cut off from the rest at access 400, the
//	                partition heals at access 2400
//	partition-asym  same window, but only site 1's outbound links are
//	                cut (asymmetric failure: it hears, nobody hears it)
//	partition-crash partition of site 1 (400..2400) overlapping a
//	                crash+drift of site 2 (600..2000): the full
//	                dead-vs-unreachable matrix in one run
//	partition-churn the partition-crash window followed by a flapping
//	                site 2: ten crash/recover cycles (drift on every
//	                other crash), the availability A/B's showcase —
//	                attempts keep arriving at a home site that keeps
//	                dying
var planNames = []string{"none", "lossy", "slow", "crash", "crash-drift", "chaos",
	"partition", "partition-asym", "partition-crash", "partition-churn"}

// PlanNames lists the named plans in presentation order.
func PlanNames() []string { return append([]string(nil), planNames...) }

// PlanByName resolves a named plan. The crash plans target site 1 and
// the partition plans cut site 1 off (site 0 homes the virtual
// transaction T0 and stays up and connected).
func PlanByName(name string) (Plan, error) {
	crash := []Event{
		{At: 400, Kind: Crash, Site: 1},
		{At: 2400, Kind: Recover, Site: 1},
	}
	crashDrift := []Event{
		{At: 400, Kind: Crash, Site: 1, Drift: true},
		{At: 2400, Kind: Recover, Site: 1},
	}
	isolate1 := [][]int{{1}}
	switch name {
	case "none", "":
		return Plan{Name: "none"}, nil
	case "lossy":
		return Plan{Name: "lossy", DropRate: 0.02}, nil
	case "slow":
		return Plan{Name: "slow", Delay: 200 * time.Microsecond}, nil
	case "crash":
		return Plan{Name: "crash", Events: crash}, nil
	case "crash-drift":
		return Plan{Name: "crash-drift", Events: crashDrift}, nil
	case "chaos":
		return Plan{Name: "chaos", DropRate: 0.01, Events: crashDrift}, nil
	case "partition":
		return Plan{Name: "partition", Events: []Event{
			{At: 400, Kind: Partition, Groups: isolate1},
			{At: 2400, Kind: Heal, Groups: isolate1},
		}}, nil
	case "partition-asym":
		return Plan{Name: "partition-asym", Events: []Event{
			{At: 400, Kind: Partition, Groups: isolate1, OneWay: true},
			{At: 2400, Kind: Heal, Groups: isolate1},
		}}, nil
	case "partition-crash":
		return Plan{Name: "partition-crash", Events: []Event{
			{At: 400, Kind: Partition, Groups: isolate1},
			{At: 600, Kind: Crash, Site: 2, Drift: true},
			{At: 2000, Kind: Recover, Site: 2},
			{At: 2400, Kind: Heal, Groups: isolate1},
		}}, nil
	case "partition-churn":
		evs := []Event{
			{At: 400, Kind: Partition, Groups: isolate1},
			{At: 2400, Kind: Heal, Groups: isolate1},
		}
		for i := int64(0); i < 10; i++ {
			evs = append(evs,
				Event{At: 600 + 2000*i, Kind: Crash, Site: 2, Drift: i%2 == 0},
				Event{At: 1600 + 2000*i, Kind: Recover, Site: 2})
		}
		return Plan{Name: "partition-churn", Events: evs}.Normalize(), nil
	}
	return Plan{}, fmt.Errorf("fault: unknown plan %q (have %s)", name, strings.Join(planNames, ", "))
}

// Normalize sorts the plan's events by firing time, keeping the relative
// order of simultaneous events. Call after hand-building event lists.
func (p Plan) Normalize() Plan {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	p.Events = evs
	return p
}

// PlanError reports an invalid event schedule: the offending event (by
// position in firing order) and why it cannot produce a well-defined
// injector schedule.
type PlanError struct {
	Plan   string
	Index  int // position in the time-sorted event list
	Event  Event
	Reason string
}

// Error implements error.
func (e *PlanError) Error() string {
	return fmt.Sprintf("fault: plan %q: event %d (%s at seq %d): %s",
		e.Plan, e.Index, e.Event.Kind, e.Event.At, e.Reason)
}

// Validate checks that the plan's events form a well-defined schedule
// over the given number of sites by simulating them in firing order:
// crash/recover must alternate per site (no overlapping crash of a
// down site, no recovery of an up site), partitions must cut at least
// one new link, heals must restore at least one, and every site
// reference must be in range. Returns a typed *PlanError naming the
// first offending event; nil for a valid plan.
func (p Plan) Validate(sites int) error {
	if p.DropRate < 0 || p.DropRate > 1 {
		return &PlanError{Plan: p.Name, Index: -1, Reason: fmt.Sprintf("drop rate %v outside [0,1]", p.DropRate)}
	}
	down := make([]bool, sites)
	cut := make([][]bool, sites)
	for i := range cut {
		cut[i] = make([]bool, sites)
	}
	evs := p.Normalize().Events
	for i, ev := range evs {
		fail := func(reason string) error {
			return &PlanError{Plan: p.Name, Index: i, Event: ev, Reason: reason}
		}
		if ev.At < 1 {
			return fail("fires before the logical clock starts (At must be >= 1)")
		}
		switch ev.Kind {
		case Crash, Recover:
			if ev.Site < 0 || ev.Site >= sites {
				return fail(fmt.Sprintf("site %d out of range [0,%d)", ev.Site, sites))
			}
			if len(ev.Groups) != 0 {
				return fail("site event carries partition groups")
			}
			if ev.Kind == Crash {
				if down[ev.Site] {
					return fail(fmt.Sprintf("site %d is already down (overlapping crash without a recover)", ev.Site))
				}
				down[ev.Site] = true
			} else {
				if ev.Drift {
					return fail("drift is a crash property, not a recover property")
				}
				if !down[ev.Site] {
					return fail(fmt.Sprintf("site %d is not down (recover without a preceding crash)", ev.Site))
				}
				down[ev.Site] = false
			}
		case Partition:
			if err := validateGroups(ev.Groups, sites, fail); err != nil {
				return err
			}
			if ev.OneWay && len(ev.Groups) > 2 {
				return fail("a one-way cut needs exactly one or two groups")
			}
			changed := false
			for _, pr := range cutPairs(ev.Groups, ev.OneWay, sites) {
				for _, a := range pr[0] {
					for _, b := range pr[1] {
						if a != b && !cut[a][b] {
							cut[a][b] = true
							changed = true
						}
					}
				}
			}
			if !changed {
				return fail("cuts no new link (overlapping partition)")
			}
		case Heal:
			if len(ev.Groups) > 0 {
				if err := validateGroups(ev.Groups, sites, fail); err != nil {
					return err
				}
			}
			if ev.OneWay {
				return fail("one-way is a partition property, not a heal property")
			}
			changed := false
			if len(ev.Groups) == 0 {
				for a := range cut {
					for b := range cut[a] {
						if cut[a][b] {
							cut[a][b] = false
							changed = true
						}
					}
				}
			} else {
				for _, pr := range cutPairs(ev.Groups, false, sites) {
					for _, a := range pr[0] {
						for _, b := range pr[1] {
							if cut[a][b] {
								cut[a][b] = false
								changed = true
							}
						}
					}
				}
			}
			if !changed {
				return fail("restores no cut link (heal without a matching partition)")
			}
		default:
			return fail(fmt.Sprintf("unknown event kind %d", ev.Kind))
		}
	}
	return nil
}

// validateGroups checks a partition/heal group list: non-empty groups,
// sites in range, no site in two groups, and at least one site left
// outside a single group (its complement is the other side).
func validateGroups(groups [][]int, sites int, fail func(string) error) error {
	if len(groups) == 0 {
		return fail("partition event without site groups")
	}
	seen := map[int]bool{}
	total := 0
	for _, g := range groups {
		if len(g) == 0 {
			return fail("empty site group")
		}
		for _, s := range g {
			if s < 0 || s >= sites {
				return fail(fmt.Sprintf("site %d out of range [0,%d)", s, sites))
			}
			if seen[s] {
				return fail(fmt.Sprintf("site %d appears in two groups", s))
			}
			seen[s] = true
			total++
		}
	}
	if len(groups) == 1 && total >= sites {
		return fail("single group covers every site (no complement to cut it from)")
	}
	return nil
}

// FormatGroups renders a partition/heal group list deterministically
// for schedules and reports: sites sorted within groups, groups by
// first site, e.g. [1|0 2 3]. Empty groups render as "all".
func FormatGroups(groups [][]int) string {
	if len(groups) == 0 {
		return "all"
	}
	gs := make([][]int, len(groups))
	for i, g := range groups {
		gs[i] = append([]int(nil), g...)
		sort.Ints(gs[i])
	}
	sort.Slice(gs, func(i, j int) bool {
		if len(gs[i]) == 0 || len(gs[j]) == 0 {
			return len(gs[j]) == 0
		}
		return gs[i][0] < gs[j][0]
	})
	var b strings.Builder
	b.WriteByte('[')
	for i, g := range gs {
		if i > 0 {
			b.WriteByte('|')
		}
		for j, s := range g {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", s)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// String renders the plan for reports.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: drop=%.2f delay=%v", p.Name, p.DropRate, p.Delay)
	for _, ev := range p.Events {
		switch ev.Kind {
		case Partition:
			tag := "partition"
			if ev.OneWay {
				tag = "partition-oneway"
			}
			fmt.Fprintf(&b, " [%s %s @%d]", tag, FormatGroups(ev.Groups), ev.At)
		case Heal:
			fmt.Fprintf(&b, " [heal %s @%d]", FormatGroups(ev.Groups), ev.At)
		default:
			tag := ev.Kind.String()
			if ev.Kind == Crash && ev.Drift {
				tag = "crash+drift"
			}
			fmt.Fprintf(&b, " [%s site %d @%d]", tag, ev.Site, ev.At)
		}
	}
	return b.String()
}
