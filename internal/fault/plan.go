package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Named plans for the -chaos mode of cmd/mtsim and the chaos test
// suites. Crash/recovery positions are expressed on the logical access
// clock, so they land at the same point of the workload regardless of
// machine speed.
//
//	none        perfect network (baseline under the transport hook)
//	lossy       2% cross-site message loss
//	slow        up to 200µs injected cross-site latency
//	crash       site 1 crashes at access 400, recovers at access 2400
//	crash-drift same, and the crash zeroes site 1's local counters
//	chaos       crash-drift plus 1% message loss
var planNames = []string{"none", "lossy", "slow", "crash", "crash-drift", "chaos"}

// PlanNames lists the named plans in presentation order.
func PlanNames() []string { return append([]string(nil), planNames...) }

// PlanByName resolves a named plan. The crash plans target site 1 (site
// 0 homes the virtual transaction T0 and stays up).
func PlanByName(name string) (Plan, error) {
	crash := []Event{
		{At: 400, Kind: Crash, Site: 1},
		{At: 2400, Kind: Recover, Site: 1},
	}
	crashDrift := []Event{
		{At: 400, Kind: Crash, Site: 1, Drift: true},
		{At: 2400, Kind: Recover, Site: 1},
	}
	switch name {
	case "none", "":
		return Plan{Name: "none"}, nil
	case "lossy":
		return Plan{Name: "lossy", DropRate: 0.02}, nil
	case "slow":
		return Plan{Name: "slow", Delay: 200 * time.Microsecond}, nil
	case "crash":
		return Plan{Name: "crash", Events: crash}, nil
	case "crash-drift":
		return Plan{Name: "crash-drift", Events: crashDrift}, nil
	case "chaos":
		return Plan{Name: "chaos", DropRate: 0.01, Events: crashDrift}, nil
	}
	return Plan{}, fmt.Errorf("fault: unknown plan %q (have %s)", name, strings.Join(planNames, ", "))
}

// Normalize sorts the plan's events by firing time, keeping the relative
// order of simultaneous events. Call after hand-building event lists.
func (p Plan) Normalize() Plan {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	p.Events = evs
	return p
}

// String renders the plan for reports.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: drop=%.2f delay=%v", p.Name, p.DropRate, p.Delay)
	for _, ev := range p.Events {
		tag := ev.Kind.String()
		if ev.Kind == Crash && ev.Drift {
			tag = "crash+drift"
		}
		fmt.Fprintf(&b, " [%s site %d @%d]", tag, ev.Site, ev.At)
	}
	return b.String()
}
