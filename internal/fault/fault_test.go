package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestPlanByName(t *testing.T) {
	for _, name := range PlanNames() {
		p, err := PlanByName(name)
		if err != nil {
			t.Fatalf("PlanByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("plan %q reports name %q", name, p.Name)
		}
	}
	if _, err := PlanByName("no-such-plan"); err == nil {
		t.Fatal("unknown plan accepted")
	}
	if p, err := PlanByName(""); err != nil || p.Name != "none" {
		t.Fatalf("empty plan name: %v %+v", err, p)
	}
}

func TestPlannedScheduleDeterministic(t *testing.T) {
	plan, _ := PlanByName("chaos")
	a := New(plan, 4, 99)
	b := New(plan, 4, 99)
	sa := strings.Join(a.PlannedSchedule(5000), "\n")
	sb := strings.Join(b.PlannedSchedule(5000), "\n")
	if sa != sb {
		t.Fatal("same (plan, sites, seed) produced different planned schedules")
	}
	c := New(plan, 4, 100)
	if sc := strings.Join(c.PlannedSchedule(5000), "\n"); sc == sa {
		t.Fatal("different seeds produced identical drop schedules")
	}
}

func TestScheduleReproducibleSequentially(t *testing.T) {
	plan := Plan{Name: "t", DropRate: 0.2, Events: []Event{
		{At: 10, Kind: Crash, Site: 1},
		{At: 20, Kind: Recover, Site: 1},
	}}
	run := func() []string {
		in := New(plan, 3, 7)
		for i := 0; i < 40; i++ {
			in.Send(0, (i%2)+1) // deterministic single-threaded traffic
		}
		return in.Schedule()
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("schedules differ:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no fault decisions recorded at 20% drop rate")
	}
}

func TestCrashRejectsTraffic(t *testing.T) {
	in := New(Plan{Name: "t"}, 3, 1)
	if err := in.Send(0, 1); err != nil {
		t.Fatalf("healthy send failed: %v", err)
	}
	in.Crash(1, false)
	if in.SiteUp(1) {
		t.Fatal("crashed site reports up")
	}
	err := in.Send(0, 1)
	if !errors.Is(err, ErrSiteDown) {
		t.Fatalf("send to crashed site: %v", err)
	}
	if got := SiteOf(err); got != 1 {
		t.Fatalf("SiteOf = %d, want 1", got)
	}
	// Sends *from* a crashed site fail too.
	if err := in.Send(1, 0); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("send from crashed site: %v", err)
	}
	in.Recover(1)
	if !in.SiteUp(1) {
		t.Fatal("recovered site reports down")
	}
	if err := in.Send(0, 1); err != nil {
		t.Fatalf("post-recovery send failed: %v", err)
	}
	st := in.Stats()
	if st.Crashes.Value() != 1 || st.Recoveries.Value() != 1 || st.Rejected.Value() != 2 {
		t.Fatalf("stats: crashes=%d recoveries=%d rejected=%d",
			st.Crashes.Value(), st.Recoveries.Value(), st.Rejected.Value())
	}
}

func TestScheduledEventsFireOnLogicalClock(t *testing.T) {
	plan := Plan{Name: "t", Events: []Event{
		{At: 5, Kind: Crash, Site: 2, Drift: true},
		{At: 9, Kind: Recover, Site: 2},
	}}
	var crashed, recovered []int
	done := make(chan struct{})
	in := New(plan, 3, 1)
	in.SetHooks(Hooks{
		OnCrash: func(site int, drift bool) {
			if !drift {
				t.Error("drift flag lost")
			}
			crashed = append(crashed, site)
		},
		OnRecover: func(site int) {
			recovered = append(recovered, site)
			close(done)
		},
	})
	for i := 0; i < 4; i++ {
		if err := in.Send(0, 1); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := in.Send(0, 2); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("send at seq 5 should hit the fresh crash: %v", err)
	}
	if len(crashed) != 1 || crashed[0] != 2 {
		t.Fatalf("crash hook: %v", crashed)
	}
	for i := 0; i < 4; i++ {
		in.Send(0, 1)
	}
	// Scheduled recovery completes asynchronously; the site is only up
	// once the hook has run.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("recovery hook never ran")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !in.SiteUp(2) {
		if time.Now().After(deadline) {
			t.Fatal("site never marked up after recovery")
		}
		time.Sleep(time.Millisecond)
	}
	if len(recovered) != 1 || recovered[0] != 2 {
		t.Fatalf("recover hook: %v", recovered)
	}
}

func TestDropRateApproximate(t *testing.T) {
	in := New(Plan{Name: "t", DropRate: 0.25}, 2, 3)
	drops := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if err := in.Send(0, 1); errors.Is(err, ErrDropped) {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("drop fraction %.3f far from 0.25", frac)
	}
	if in.Stats().Dropped.Value() != int64(drops) {
		t.Fatal("Dropped counter mismatch")
	}
	// Local sends never drop.
	for i := 0; i < 500; i++ {
		if err := in.Send(1, 1); err != nil {
			t.Fatalf("local send dropped: %v", err)
		}
	}
}

func TestDelayInjected(t *testing.T) {
	in := New(Plan{Name: "t", Delay: 2 * time.Millisecond}, 2, 1)
	start := time.Now()
	for i := 0; i < 20; i++ {
		in.Send(0, 1)
	}
	if time.Since(start) == 0 {
		t.Fatal("no time elapsed under injected delay")
	}
}
