package adaptive

import (
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

func TestDefaults(t *testing.T) {
	a := New(storage.New(), Options{})
	if a.K() != 3 {
		t.Fatalf("K = %d, want default 3", a.K())
	}
	if a.Name() != "Adaptive-MT(k=3)" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestBasicTransaction(t *testing.T) {
	st := storage.New()
	a := New(st, Options{InitialK: 2})
	a.Begin(1)
	if _, err := a.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(1, "x", 9); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(1); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 9 {
		t.Fatal("write lost")
	}
}

func TestGrowsUnderAbortPressure(t *testing.T) {
	st := storage.New()
	a := New(st, Options{
		InitialK: 1, MaxK: 7, Window: 10,
		GrowAbove: 0.2,
		Core:      engine.Options{StarvationAvoidance: true},
	})
	// Manufacture aborts: every transaction begins, then aborts.
	for i := 1; i <= 40; i++ {
		a.Begin(i)
		if _, err := a.Read(i, "x"); err == nil {
			if i%2 == 0 {
				a.Abort(i) // counted as aborted
				continue
			}
			a.Commit(i)
		}
	}
	if a.K() <= 1 {
		t.Fatalf("K = %d, expected growth under 50%% abort rate", a.K())
	}
	if a.Switches() == 0 {
		t.Fatal("no switches recorded")
	}
	if h := a.History(); len(h) < 2 || h[0] != 1 {
		t.Fatalf("history = %v", h)
	}
}

func TestShrinksWhenQuiet(t *testing.T) {
	st := storage.New()
	a := New(st, Options{
		InitialK: 7, MinK: 1, Window: 10, ShrinkBelow: 0.05,
		Core: engine.Options{StarvationAvoidance: true},
	})
	for i := 1; i <= 40; i++ {
		a.Begin(i)
		if _, err := a.Read(i, "x"); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	if a.K() >= 7 {
		t.Fatalf("K = %d, expected shrink with zero aborts", a.K())
	}
}

func TestSwitchWaitsForQuiescence(t *testing.T) {
	st := storage.New()
	a := New(st, Options{
		InitialK: 1, Window: 2, GrowAbove: 0.1,
		Core: engine.Options{StarvationAvoidance: true},
	})
	// T100 stays live across the epoch boundary.
	a.Begin(100)
	if _, err := a.Read(100, "keep"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		a.Begin(i)
		a.Abort(i)
	}
	if a.K() != 1 {
		t.Fatalf("switched to %d while a transaction was live", a.K())
	}
	if err := a.Commit(100); err != nil {
		t.Fatal(err)
	}
	if a.K() == 1 {
		t.Fatal("pending switch not applied at quiescence")
	}
}

func TestRuntimeIntegration(t *testing.T) {
	rep := sim.Run(sim.Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			return New(st, Options{
				InitialK: 1, Window: 16,
				Core: engine.Options{StarvationAvoidance: true},
			})
		},
		Specs: workload.Config{
			Txns: 120, OpsPerTxn: 3, Items: 8, ReadFraction: 0.5, Seed: 3,
		}.Generate(),
		Workers:     6,
		MaxAttempts: 300,
		Backoff:     10 * time.Microsecond,
	})
	if rep.Committed != 120 {
		t.Fatalf("committed = %d", rep.Committed)
	}
	if rep.Store == nil {
		t.Fatal("no store")
	}
}

func TestAbortErrorPropagation(t *testing.T) {
	st := storage.New()
	a := New(st, Options{InitialK: 2, Core: engine.Options{StarvationAvoidance: true}})
	// Fig. 5 shape through the adaptive wrapper.
	a.Begin(1)
	a.Write(1, "x", 1)
	a.Commit(1)
	a.Begin(3)
	if _, err := a.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	a.Begin(2)
	a.Write(2, "x", 2)
	a.Commit(2)
	if err := a.Write(3, "x", 3); !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
	a.Abort(3)
}
