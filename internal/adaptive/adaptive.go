// Package adaptive implements the adaptable concurrency control the
// paper's Section IV closes with: "the timestamp vector is a useful tool
// for switching between classes of concurrency algorithms such as MT(k1)
// and MT(k2) — this work is being used for the design of adaptable
// concurrency control mechanisms [8]".
//
// The Adaptive scheduler wraps MT(k) and re-tunes the vector size between
// epochs based on observed behaviour, following the Section VI-B
// guidelines: high conflict (abort pressure) favours a larger vector
// (guideline a), low conflict favours a smaller one (storage/processing,
// guideline b). Because timestamp vectors of different sizes cannot be
// compared, a switch only happens at an epoch boundary when no
// transaction is live; the request is recorded and applied lazily.
package adaptive

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Options tunes the adaptation policy.
type Options struct {
	// InitialK is the starting vector size (>= 1).
	InitialK int
	// MinK/MaxK bound the adaptation range (defaults 1 and 9).
	MinK, MaxK int
	// Window is the number of finished transactions per measurement
	// epoch (default 64).
	Window int
	// GrowAbove grows k when the epoch abort rate exceeds it
	// (default 0.20); ShrinkBelow shrinks k below it (default 0.05).
	GrowAbove, ShrinkBelow float64
	// Core carries the protocol options applied at every k (K ignored).
	Core engine.Options
	// DeferWrites selects the Section VI-C-2 write discipline.
	DeferWrites bool
}

func (o *Options) defaults() {
	if o.InitialK < 1 {
		o.InitialK = 3
	}
	if o.MinK < 1 {
		o.MinK = 1
	}
	if o.MaxK < o.MinK {
		o.MaxK = 9
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.GrowAbove == 0 {
		o.GrowAbove = 0.20
	}
	if o.ShrinkBelow == 0 {
		o.ShrinkBelow = 0.05
	}
}

// Adaptive is a self-tuning MT(k) runtime scheduler.
type Adaptive struct {
	mu    sync.Mutex
	opts  Options
	store *storage.Store
	inner *sched.MT
	k     int

	live     map[int]bool
	pendingK int // 0 = no switch requested
	finished int
	aborted  int
	switches int
	history  []int // k of each epoch, for inspection
}

// New returns an adaptive scheduler over the store.
func New(store *storage.Store, opts Options) *Adaptive {
	opts.defaults()
	a := &Adaptive{
		opts:  opts,
		store: store,
		k:     opts.InitialK,
		live:  make(map[int]bool),
	}
	a.inner = a.build(a.k)
	a.history = append(a.history, a.k)
	return a
}

func (a *Adaptive) build(k int) *sched.MT {
	c := a.opts.Core
	c.K = k
	return sched.NewMT(a.store, sched.MTOptions{Core: c, DeferWrites: a.opts.DeferWrites})
}

// Name implements sched.Scheduler.
func (a *Adaptive) Name() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return fmt.Sprintf("Adaptive-MT(k=%d)", a.k)
}

// K returns the current vector size.
func (a *Adaptive) K() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.k
}

// Switches returns how many epoch switches have been applied.
func (a *Adaptive) Switches() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.switches
}

// History returns the k of every epoch so far.
func (a *Adaptive) History() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.history...)
}

// Begin implements sched.Scheduler.
func (a *Adaptive) Begin(txn int) {
	a.mu.Lock()
	a.live[txn] = true
	inner := a.inner
	a.mu.Unlock()
	inner.Begin(txn)
}

// Read implements sched.Scheduler.
func (a *Adaptive) Read(txn int, item string) (int64, error) {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	return inner.Read(txn, item)
}

// Write implements sched.Scheduler.
func (a *Adaptive) Write(txn int, item string, v int64) error {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	return inner.Write(txn, item, v)
}

// Commit implements sched.Scheduler.
func (a *Adaptive) Commit(txn int) error {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	err := inner.Commit(txn)
	a.finish(txn, err != nil)
	return err
}

// Abort implements sched.Scheduler.
func (a *Adaptive) Abort(txn int) {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	inner.Abort(txn)
	a.finish(txn, true)
}

// finish updates the epoch statistics, decides on a resize and applies a
// pending switch once no transaction is live.
func (a *Adaptive) finish(txn int, aborted bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.live, txn)
	a.finished++
	if aborted {
		a.aborted++
	}
	if a.finished >= a.opts.Window && a.pendingK == 0 {
		rate := float64(a.aborted) / float64(a.finished)
		next := a.k
		switch {
		case rate > a.opts.GrowAbove && a.k < a.opts.MaxK:
			next = a.k + 2 // vectors grow in odd steps toward 2q-1
			if next > a.opts.MaxK {
				next = a.opts.MaxK
			}
		case rate < a.opts.ShrinkBelow && a.k > a.opts.MinK:
			next = a.k - 2
			if next < a.opts.MinK {
				next = a.opts.MinK
			}
		}
		if next != a.k {
			a.pendingK = next
		}
		a.finished, a.aborted = 0, 0
	}
	if a.pendingK != 0 && len(a.live) == 0 {
		a.k = a.pendingK
		a.pendingK = 0
		a.inner = a.build(a.k)
		a.switches++
		a.history = append(a.history, a.k)
	}
}
