package tsto

import (
	"errors"
	"testing"

	"repro/internal/sched"
	"repro/internal/storage"
)

func TestTimestampsIncrease(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1)
	s.Begin(2)
	if !(s.Timestamp(1) < s.Timestamp(2)) {
		t.Fatalf("ts1=%d ts2=%d", s.Timestamp(1), s.Timestamp(2))
	}
	if s.Timestamp(99) != 0 {
		t.Fatal("unknown txn should report 0")
	}
}

func TestReadTooLateAborts(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1) // ts 1
	s.Begin(2) // ts 2
	if err := s.Write(2, "x", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	_, err := s.Read(1, "x")
	if !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("stale read: %v", err)
	}
}

func TestWriteAfterLaterReadAborts(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1)
	s.Begin(2)
	if _, err := s.Read(2, "x"); err != nil {
		t.Fatal(err)
	}
	err := s.Write(1, "x", 5)
	if !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("late write: %v", err)
	}
}

func TestThomasWriteRuleSkips(t *testing.T) {
	st := storage.New()
	s := New(st, Options{ThomasWriteRule: true})
	s.Begin(1) // ts 1
	s.Begin(2) // ts 2
	if err := s.Write(2, "x", 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T1's obsolete write is skipped, not aborted.
	if err := s.Write(1, "x", 10); err != nil {
		t.Fatalf("Thomas rule should skip: %v", err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 20 {
		t.Fatalf("x = %d, want 20 (obsolete write dropped)", st.Get("x"))
	}
}

func TestWithoutThomasRuleAborts(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1)
	s.Begin(2)
	if err := s.Write(2, "x", 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, "x", 10); !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
}

func TestDeferredWritesValidateAtCommit(t *testing.T) {
	s := New(storage.New(), Options{DeferWrites: true})
	s.Begin(1)
	s.Begin(2)
	// T1 buffers a write; T2 reads the item and commits first.
	if err := s.Write(1, "x", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	// Commit-time validation sees rt(x) = 2 > ts(1).
	if err := s.Commit(1); !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("want commit abort, got %v", err)
	}
}

func TestRetryGetsFreshTimestamp(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1)
	ts1 := s.Timestamp(1)
	s.Abort(1)
	s.Begin(1)
	if s.Timestamp(1) <= ts1 {
		t.Fatal("retry must draw a later timestamp")
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1)
	if err := s.Write(1, "x", 7); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(1, "x")
	if err != nil || v != 7 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

// Example 1 at the runtime level: under single-valued TO the transaction
// that started earlier cannot consume a later transaction's conflicting
// slot — the exact premature-ordering abort MT(k) avoids.
func TestExample1ShapeAborts(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(3) // T3 starts first (smaller timestamp)
	s.Begin(2)
	if _, err := s.Read(3, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, "y"); err != nil {
		t.Fatal(err)
	}
	// T2 commits a write to y... then T3 writing y must abort.
	if err := s.Write(2, "y", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3, "y", 2); !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
}
