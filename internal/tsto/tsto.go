// Package tsto implements the conventional single-valued timestamp-
// ordering baseline (the protocol P4 of SDD-1 [4] / basic T/O of [2]):
// every transaction gets a scalar timestamp at Begin, and all conflicting
// operations must occur in timestamp order against per-item read/write
// high-water marks. This is exactly the "premature serialization order"
// comparator that Example 1 of the paper improves upon.
package tsto

import (
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/storage"
)

// Options configures the TO scheduler.
type Options struct {
	// ThomasWriteRule silently skips obsolete writes (ts < wt(x)) instead
	// of aborting, provided no later read has seen the item.
	ThomasWriteRule bool
	// DeferWrites validates writes at commit time (against the final
	// high-water marks) rather than at write time.
	DeferWrites bool
}

// TO is the single-valued timestamp-ordering runtime scheduler.
type TO struct {
	mu    sync.Mutex
	opts  Options
	store *storage.Store
	next  int64
	rts   map[string]int64 // read high-water mark per item
	wts   map[string]int64 // write high-water mark per item
	wtxn  map[string]int   // id of the transaction holding wts (immediate mode)
	txns  map[int]*txnState
}

type txnState struct {
	ts     int64
	writes map[string]int64
	order  []string
}

// New returns a TO(1) scheduler over the store.
func New(store *storage.Store, opts Options) *TO {
	return &TO{
		opts:  opts,
		store: store,
		rts:   make(map[string]int64),
		wts:   make(map[string]int64),
		wtxn:  make(map[string]int),
		txns:  make(map[int]*txnState),
	}
}

// Name implements sched.Scheduler.
func (t *TO) Name() string { return "TO(1)" }

// Begin implements sched.Scheduler: each (re)start draws a fresh
// timestamp, so a retried transaction serializes later.
func (t *TO) Begin(txn int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	t.txns[txn] = &txnState{ts: t.next, writes: make(map[string]int64)}
}

// Timestamp returns the scalar timestamp of a live transaction (tests).
func (t *TO) Timestamp(txn int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.txns[txn]; st != nil {
		return st.ts
	}
	return 0
}

func (t *TO) state(txn int) *txnState {
	st := t.txns[txn]
	if st == nil {
		panic(fmt.Sprintf("tsto: operation on transaction %d without Begin", txn))
	}
	return st
}

// Read implements sched.Scheduler: rejected when a newer write exists
// (ts < wt(x)); otherwise advances rt(x).
func (t *TO) Read(txn int, item string) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(txn)
	if v, ok := st.writes[item]; ok {
		return v, nil
	}
	if st.ts < t.wts[item] {
		return 0, sched.Abort(txn, 0, "read too late")
	}
	// Immediate mode publishes wt(x) at write time but data at commit: a
	// read past a live writer would see stale data while serializing
	// after the writer — abort instead (no dirty-read window).
	if w := t.wtxn[item]; w != 0 && w != txn {
		if _, live := t.txns[w]; live {
			return 0, sched.Abort(txn, w, "read over uncommitted writer")
		}
	}
	if st.ts > t.rts[item] {
		t.rts[item] = st.ts
	}
	return t.store.Get(item), nil
}

// validateWrite applies the TO write rules for one item, returning
// (skip, err): skip means the Thomas rule drops the write.
func (t *TO) validateWrite(st *txnState, txn int, item string) (bool, error) {
	if st.ts < t.rts[item] {
		return false, sched.Abort(txn, 0, "write after later read")
	}
	if st.ts < t.wts[item] {
		if t.opts.ThomasWriteRule {
			return true, nil
		}
		return false, sched.Abort(txn, 0, "write after later write")
	}
	t.wts[item] = st.ts
	t.wtxn[item] = txn
	return false, nil
}

// Write implements sched.Scheduler.
func (t *TO) Write(txn int, item string, v int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(txn)
	if !t.opts.DeferWrites {
		skip, err := t.validateWrite(st, txn, item)
		if err != nil {
			return err
		}
		if skip {
			delete(st.writes, item)
			return nil
		}
	}
	if _, ok := st.writes[item]; !ok {
		st.order = append(st.order, item)
	}
	st.writes[item] = v
	return nil
}

// Commit implements sched.Scheduler.
func (t *TO) Commit(txn int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(txn)
	apply := make(map[string]int64, len(st.writes))
	for x, v := range st.writes {
		apply[x] = v
	}
	if t.opts.DeferWrites {
		for _, x := range st.order {
			skip, err := t.validateWrite(st, txn, x)
			if err != nil {
				delete(t.txns, txn)
				return err
			}
			if skip {
				delete(apply, x)
			}
		}
	}
	t.store.Apply(apply)
	delete(t.txns, txn)
	return nil
}

// Abort implements sched.Scheduler.
func (t *TO) Abort(txn int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.txns, txn)
}
