package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BenchRow is one cell of a scheduler benchmark sweep: a (scheduler,
// workers, workload, store latency) point with its measured outcome.
// cmd/mtbench emits these; the CSV and JSON writers below render them
// so a sweep is reproducible and diffable.
type BenchRow struct {
	Sched      string  `json:"sched"`
	Workload   string  `json:"workload"`
	Workers    int     `json:"workers"`
	Items      int     `json:"items"`
	Txns       int     `json:"txns"`
	OpsPerTxn  int     `json:"ops_per_txn"`
	ReadFrac   float64 `json:"read_frac"`
	ZipfS      float64 `json:"zipf_s,omitempty"`
	StoreLatUS int64   `json:"store_latency_us"`
	Seed       int64   `json:"seed"`
	Committed  int64   `json:"committed"`
	GaveUp     int64   `json:"gave_up"`
	Restarts   int64   `json:"restarts"`
	AbortRate  float64 `json:"abort_rate"`
	Throughput float64 `json:"throughput_tps"`
	WallMS     float64 `json:"wall_ms"`
	MeanLatUS  float64 `json:"mean_latency_us"`
	P99US      int64   `json:"p99_latency_us"`
	// AllocsPerOp is heap allocations per protocol operation over the
	// whole cell: runtime.MemStats.Mallocs delta across the run divided
	// by committed*ops_per_txn. It includes worker setup and restarted
	// attempts, so it upper-bounds the steady-state figure the alloc
	// gate enforces (bench/alloc_budget.json).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchHeader is the CSV column order (kept in sync with csvRecord).
var benchHeader = []string{
	"sched", "workload", "workers", "items", "txns", "ops_per_txn",
	"read_frac", "zipf_s", "store_latency_us", "seed",
	"committed", "gave_up", "restarts", "abort_rate",
	"throughput_tps", "wall_ms", "mean_latency_us", "p99_latency_us",
	"allocs_per_op",
}

func (r BenchRow) csvRecord() []string {
	return []string{
		r.Sched, r.Workload,
		fmt.Sprint(r.Workers), fmt.Sprint(r.Items), fmt.Sprint(r.Txns), fmt.Sprint(r.OpsPerTxn),
		fmt.Sprintf("%.2f", r.ReadFrac), fmt.Sprintf("%.2f", r.ZipfS), fmt.Sprint(r.StoreLatUS), fmt.Sprint(r.Seed),
		fmt.Sprint(r.Committed), fmt.Sprint(r.GaveUp), fmt.Sprint(r.Restarts),
		fmt.Sprintf("%.4f", r.AbortRate),
		fmt.Sprintf("%.1f", r.Throughput), fmt.Sprintf("%.2f", r.WallMS),
		fmt.Sprintf("%.1f", r.MeanLatUS), fmt.Sprint(r.P99US),
		fmt.Sprintf("%.2f", r.AllocsPerOp),
	}
}

// WriteBenchCSV renders the rows as CSV with a header line.
func WriteBenchCSV(w io.Writer, rows []BenchRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(benchHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r.csvRecord()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// BenchSpeedup compares one scheduler against a baseline at the same
// (workload, workers, store latency) point.
type BenchSpeedup struct {
	Workload   string  `json:"workload"`
	Workers    int     `json:"workers"`
	StoreLatUS int64   `json:"store_latency_us"`
	Baseline   string  `json:"baseline"`
	Subject    string  `json:"subject"`
	BaseTPS    float64 `json:"baseline_tps"`
	SubjTPS    float64 `json:"subject_tps"`
	Speedup    float64 `json:"speedup"`
}

// BenchSummary is the JSON artifact a sweep produces (BENCH_N.json):
// the raw rows plus derived subject-vs-baseline speedups.
type BenchSummary struct {
	Name       string         `json:"name"`
	Generated  string         `json:"generated,omitempty"`
	Host       string         `json:"host,omitempty"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Notes      string         `json:"notes,omitempty"`
	Rows       []BenchRow     `json:"rows"`
	Speedups   []BenchSpeedup `json:"speedups,omitempty"`
}

// ComputeSpeedups derives subject/baseline throughput ratios for every
// (workload, workers, store latency) point where both appear.
func ComputeSpeedups(rows []BenchRow, baseline, subject string) []BenchSpeedup {
	type key struct {
		workload string
		workers  int
		lat      int64
	}
	base := make(map[key]BenchRow)
	subj := make(map[key]BenchRow)
	for _, r := range rows {
		k := key{r.Workload, r.Workers, r.StoreLatUS}
		switch r.Sched {
		case baseline:
			base[k] = r
		case subject:
			subj[k] = r
		}
	}
	var out []BenchSpeedup
	for k, b := range base {
		s, ok := subj[k]
		if !ok || b.Throughput <= 0 {
			continue
		}
		out = append(out, BenchSpeedup{
			Workload: k.workload, Workers: k.workers, StoreLatUS: k.lat,
			Baseline: baseline, Subject: subject,
			BaseTPS: b.Throughput, SubjTPS: s.Throughput,
			Speedup: s.Throughput / b.Throughput,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.StoreLatUS != b.StoreLatUS {
			return a.StoreLatUS < b.StoreLatUS
		}
		return a.Workers < b.Workers
	})
	return out
}

// WriteBenchJSON renders the summary as indented JSON.
func WriteBenchJSON(w io.Writer, s BenchSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
