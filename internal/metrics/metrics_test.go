package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("Mean = %f", h.Mean())
	}
	if p := h.Percentile(50); p < 49 || p > 51 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(99); p < 98 || p > 100 {
		t.Fatalf("p99 = %d", p)
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 100 {
		t.Fatal("extreme percentiles wrong")
	}
}

func TestHistogramObserveAfterSort(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Percentile(50) // forces sort
	h.Observe(1)         // must invalidate sort
	if h.Percentile(0) != 1 {
		t.Fatal("sort invalidation broken")
	}
}

func TestHistogramMax(t *testing.T) {
	var h Histogram
	if h.Max() != 0 {
		t.Fatal("empty Max not zero")
	}
	h.Observe(-5)
	if h.Max() != -5 {
		t.Fatalf("Max = %d, want -5", h.Max())
	}
	h.Observe(7)
	h.Observe(3)
	if h.Max() != 7 {
		t.Fatalf("Max = %d, want 7", h.Max())
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if v := h.Percentile(50); v < int64(time.Millisecond) {
		t.Fatalf("ObserveSince recorded %d ns, want >= 1ms", v)
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(2 * time.Microsecond)
	if h.Percentile(50) != 2000 {
		t.Fatalf("got %d", h.Percentile(50))
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}
