package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("Mean = %f", h.Mean())
	}
	if p := h.Percentile(50); p < 49 || p > 51 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(99); p < 98 || p > 100 {
		t.Fatalf("p99 = %d", p)
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 100 {
		t.Fatal("extreme percentiles wrong")
	}
}

func TestHistogramObserveAfterSort(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Percentile(50) // forces sort
	h.Observe(1)         // must invalidate sort
	if h.Percentile(0) != 1 {
		t.Fatal("sort invalidation broken")
	}
}

func TestHistogramMax(t *testing.T) {
	var h Histogram
	if h.Max() != 0 {
		t.Fatal("empty Max not zero")
	}
	h.Observe(-5)
	if h.Max() != -5 {
		t.Fatalf("Max = %d, want -5", h.Max())
	}
	h.Observe(7)
	h.Observe(3)
	if h.Max() != 7 {
		t.Fatalf("Max = %d, want 7", h.Max())
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if v := h.Percentile(50); v < int64(time.Millisecond) {
		t.Fatalf("ObserveSince recorded %d ns, want >= 1ms", v)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("Value = %d", g.Value())
	}
	if g.High() != 2 {
		t.Fatalf("High = %d", g.High())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("Value = %d, want 0", g.Value())
	}
	if g.High() < 1 || g.High() > 8 {
		t.Fatalf("High = %d, want 1..8", g.High())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(10)
	h.Reset()
	if h.Count() != 0 || h.Percentile(50) != 0 {
		t.Fatal("Reset left samples behind")
	}
	h.Observe(3)
	if h.Percentile(50) != 3 {
		t.Fatal("histogram unusable after Reset")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 10; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	h.Reset()
	h.Observe(1000) // must not affect the snapshot
	if s.Count() != 10 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 5.5 {
		t.Fatalf("Mean = %f", s.Mean())
	}
	if s.Max() != 10 {
		t.Fatalf("Max = %d", s.Max())
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 10 {
		t.Fatal("extreme percentiles wrong")
	}
	if p := s.Percentile(50); p < 4 || p > 6 {
		t.Fatalf("p50 = %d", p)
	}
	empty := (&Histogram{}).Snapshot()
	if empty.Count() != 0 || empty.Mean() != 0 || empty.Max() != 0 || empty.Percentile(50) != 0 {
		t.Fatal("empty snapshot not zero")
	}
}

// TestHistogramConcurrentWindows is the -race guard for the limiter's
// usage pattern: writers Observe continuously while a reader alternates
// Percentile queries, Snapshots and Resets.
func TestHistogramConcurrentWindows(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe(v % 1000)
			}
		}(int64(w + 1))
	}
	for i := 0; i < 200; i++ {
		_ = h.Percentile(50)
		_ = h.Mean()
		s := h.Snapshot()
		_ = s.Percentile(99)
		if i%10 == 0 {
			h.Reset()
		}
	}
	close(stop)
	wg.Wait()
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(2 * time.Microsecond)
	if h.Percentile(50) != 2000 {
		t.Fatalf("got %d", h.Percentile(50))
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}
