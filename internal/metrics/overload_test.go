package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func overloadRows() []OverloadRow {
	return []OverloadRow{
		{Sched: "mt", Admit: true, Factor: 1, Goodput: 1000},
		{Sched: "mt", Admit: true, Factor: 4, Goodput: 1200},
		{Sched: "mt", Admit: true, Factor: 10, Goodput: 960},
		{Sched: "mt", Admit: false, Factor: 1, Goodput: 1000},
		{Sched: "mt", Admit: false, Factor: 4, Goodput: 800},
		{Sched: "mt", Admit: false, Factor: 10, Goodput: 250},
	}
}

func TestComputeRetention(t *testing.T) {
	got := ComputeRetention(overloadRows())
	if len(got) != 2 {
		t.Fatalf("curves = %d, want 2", len(got))
	}
	adm := got[0]
	if !adm.Admit || adm.KneeFactor != 4 || adm.KneeTPS != 1200 {
		t.Fatalf("admit knee = %+v, want factor 4 @ 1200", adm)
	}
	if want := 960.0 / 1200.0; adm.Retention != want {
		t.Fatalf("admit retention = %g, want %g", adm.Retention, want)
	}
	raw := got[1]
	if raw.Admit || raw.KneeFactor != 1 || raw.Retention != 0.25 {
		t.Fatalf("raw curve = %+v, want knee x1, retention 0.25", raw)
	}
}

func TestOverloadWriters(t *testing.T) {
	rows := overloadRows()
	var csvBuf bytes.Buffer
	if err := WriteOverloadCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(rows)+1)
	}
	if !strings.HasPrefix(lines[0], "sched,admit,factor") {
		t.Fatalf("csv header = %q", lines[0])
	}

	var jsonBuf bytes.Buffer
	sum := OverloadSummary{Name: "t", Rows: rows, Retention: ComputeRetention(rows)}
	if err := WriteOverloadJSON(&jsonBuf, sum); err != nil {
		t.Fatal(err)
	}
	var back OverloadSummary
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(rows) || len(back.Retention) != 2 {
		t.Fatalf("round-trip: rows=%d retention=%d", len(back.Rows), len(back.Retention))
	}
}
