package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// OverloadRow is one point of a goodput-vs-offered-load curve: a
// (scheduler, admission on/off, load factor) cell with its measured
// outcome. cmd/mtsim -overload emits these; the writers below render
// them so a sweep is reproducible and diffable (the BenchRow idiom).
type OverloadRow struct {
	Sched        string  `json:"sched"`
	Admit        bool    `json:"admit"`
	Factor       float64 `json:"factor"`
	Offered      int     `json:"offered"`
	Workers      int     `json:"workers"`
	Committed    int64   `json:"committed"`
	Shed         int64   `json:"shed"`
	DeadlineMiss int64   `json:"deadline_miss"`
	GaveUp       int64   `json:"gave_up"`
	AbortRate    float64 `json:"abort_rate"`
	Goodput      float64 `json:"goodput_tps"`
	WallMS       float64 `json:"wall_ms"`
}

// overloadHeader is the CSV column order (kept in sync with csvRecord).
var overloadHeader = []string{
	"sched", "admit", "factor", "offered", "workers",
	"committed", "shed", "deadline_miss", "gave_up",
	"abort_rate", "goodput_tps", "wall_ms",
}

func (r OverloadRow) csvRecord() []string {
	return []string{
		r.Sched, fmt.Sprint(r.Admit), fmt.Sprintf("%g", r.Factor),
		fmt.Sprint(r.Offered), fmt.Sprint(r.Workers),
		fmt.Sprint(r.Committed), fmt.Sprint(r.Shed),
		fmt.Sprint(r.DeadlineMiss), fmt.Sprint(r.GaveUp),
		fmt.Sprintf("%.4f", r.AbortRate),
		fmt.Sprintf("%.1f", r.Goodput), fmt.Sprintf("%.2f", r.WallMS),
	}
}

// WriteOverloadCSV renders the rows as CSV with a header line.
func WriteOverloadCSV(w io.Writer, rows []OverloadRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(overloadHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r.csvRecord()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// OverloadRetention is one curve's verdict: where its saturation knee
// sits and what fraction of the knee's goodput survives at the final
// (highest) load factor. 1.0 means the system fully holds its best
// goodput under overload; values near 0 mean congestion collapse.
type OverloadRetention struct {
	Sched      string  `json:"sched"`
	Admit      bool    `json:"admit"`
	KneeFactor float64 `json:"knee_factor"`
	KneeTPS    float64 `json:"knee_tps"`
	FinalTPS   float64 `json:"final_tps"`
	Retention  float64 `json:"retention"`
}

// OverloadSummary is the JSON artifact an overload sweep produces
// (BENCH_N.json): the raw curve rows plus the per-curve retention
// verdicts.
type OverloadSummary struct {
	Name       string              `json:"name"`
	Generated  string              `json:"generated,omitempty"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Notes      string              `json:"notes,omitempty"`
	Rows       []OverloadRow       `json:"rows"`
	Retention  []OverloadRetention `json:"retention"`
}

// ComputeRetention derives one retention verdict per (sched, admit)
// curve present in the rows, preserving first-seen curve order. Rows
// within a curve are assumed to be in sweep (ascending-factor) order,
// as RunOverload emits them.
func ComputeRetention(rows []OverloadRow) []OverloadRetention {
	type key struct {
		sched string
		admit bool
	}
	idx := make(map[key]int)
	var out []OverloadRetention
	knee := make(map[key]OverloadRow)
	for _, r := range rows {
		k := key{r.Sched, r.Admit}
		if _, ok := idx[k]; !ok {
			idx[k] = len(out)
			out = append(out, OverloadRetention{Sched: r.Sched, Admit: r.Admit})
			knee[k] = r
		}
		if r.Goodput > knee[k].Goodput {
			knee[k] = r
		}
		o := &out[idx[k]]
		o.KneeFactor, o.KneeTPS = knee[k].Factor, knee[k].Goodput
		o.FinalTPS = r.Goodput
		if o.KneeTPS > 0 {
			o.Retention = o.FinalTPS / o.KneeTPS
		}
	}
	return out
}

// WriteOverloadJSON renders the summary as indented JSON.
func WriteOverloadJSON(w io.Writer, s OverloadSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
