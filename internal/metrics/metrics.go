// Package metrics provides the small statistics toolkit used by the
// simulation harness: atomic counters and sample histograms with
// mean/percentile queries.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is an atomic event counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an atomic level meter (e.g. in-flight admissions): it moves
// both ways and remembers its high-water mark.
type Gauge struct {
	n    atomic.Int64
	high atomic.Int64
}

// Inc raises the level by one and returns the new value.
func (g *Gauge) Inc() int64 {
	v := g.n.Add(1)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return v
		}
	}
}

// Dec lowers the level by one and returns the new value.
func (g *Gauge) Dec() int64 { return g.n.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.n.Load() }

// High returns the high-water mark.
func (g *Gauge) High() int64 { return g.high.Load() }

// Histogram collects int64 samples (typically nanoseconds) and answers
// mean and percentile queries. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []int64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the nanoseconds elapsed since start — the usual
// pattern around an instrumented call: start := time.Now(); ...;
// h.ObserveSince(start).
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max int64
	for i, v := range h.samples {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum int64
	for _, v := range h.samples {
		sum += v
	}
	return float64(sum) / float64(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method; 0 with no samples.
func (h *Histogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(p/100*float64(len(h.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99))
}

// Reset discards every sample, starting a fresh window. Samples recorded
// concurrently with the Reset land in either the old or the new window,
// never both.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = nil
	h.sorted = false
	h.mu.Unlock()
}

// Snapshot returns an immutable copy of the current window, sorted once,
// so callers can take several percentile readings without re-holding the
// histogram lock (the limiter reads p50/p99 of each adaptation window
// this way, then Resets the live histogram).
func (h *Histogram) Snapshot() *Snapshot {
	h.mu.Lock()
	samples := make([]int64, len(h.samples))
	copy(samples, h.samples)
	h.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return &Snapshot{samples: samples}
}

// Snapshot is a frozen, sorted sample set; all queries are lock-free.
type Snapshot struct {
	samples []int64
}

// Count returns the number of samples in the snapshot.
func (s *Snapshot) Count() int { return len(s.samples) }

// Mean returns the snapshot mean (0 with no samples).
func (s *Snapshot) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var sum int64
	for _, v := range s.samples {
		sum += v
	}
	return float64(sum) / float64(len(s.samples))
}

// Max returns the largest sample (0 with no samples).
func (s *Snapshot) Max() int64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile by the nearest-rank method
// (0 with no samples).
func (s *Snapshot) Percentile(p float64) int64 {
	if len(s.samples) == 0 {
		return 0
	}
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[len(s.samples)-1]
	}
	rank := int(p/100*float64(len(s.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.samples) {
		rank = len(s.samples) - 1
	}
	return s.samples[rank]
}
