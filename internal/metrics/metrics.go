// Package metrics provides the small statistics toolkit used by the
// simulation harness: atomic counters and sample histograms with
// mean/percentile queries.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is an atomic event counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Histogram collects int64 samples (typically nanoseconds) and answers
// mean and percentile queries. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []int64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the nanoseconds elapsed since start — the usual
// pattern around an instrumented call: start := time.Now(); ...;
// h.ObserveSince(start).
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max int64
	for i, v := range h.samples {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum int64
	for _, v := range h.samples {
		sum += v
	}
	return float64(sum) / float64(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method; 0 with no samples.
func (h *Histogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(p/100*float64(len(h.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99))
}
