package enumerate

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/oplog"
)

func TestInterleavingsCount(t *testing.T) {
	// Without the canonical-start pruning there are (2n)!/2^n
	// interleavings; with "T_{i+1} starts after T_i" the count divides by
	// n! (names interchangeable): n=2: 6/2=3; n=3: 90/6=15.
	for _, c := range []struct{ n, want int }{{1, 1}, {2, 3}, {3, 15}} {
		got := 0
		Interleavings(c.n, func([]int) bool { got++; return true })
		if got != c.want {
			t.Errorf("n=%d: %d interleavings, want %d", c.n, got, c.want)
		}
	}
}

func TestInterleavingsShape(t *testing.T) {
	Interleavings(3, func(order []int) bool {
		if len(order) != 6 {
			t.Fatalf("order len %d", len(order))
		}
		count := map[int]int{}
		for _, x := range order {
			count[x]++
		}
		for x := 1; x <= 3; x++ {
			if count[x] != 2 {
				t.Fatalf("txn %d appears %d times in %v", x, count[x], order)
			}
		}
		return true
	})
}

func TestInterleavingsEarlyStop(t *testing.T) {
	calls := 0
	done := Interleavings(3, func([]int) bool { calls++; return false })
	if done || calls != 1 {
		t.Fatalf("done=%v calls=%d", done, calls)
	}
}

func TestTwoStepLogsCountAndValidity(t *testing.T) {
	// n=2, 2 items: 3 interleavings × (2·2)^2 assignments = 48.
	got := 0
	TwoStepLogs(2, []string{"x", "y"}, func(l *oplog.Log) bool {
		got++
		if !l.IsTwoStep() {
			t.Fatalf("non-two-step log %v", l)
		}
		return true
	})
	if got != 48 {
		t.Fatalf("got %d logs, want 48", got)
	}
}

func TestMembershipKey(t *testing.T) {
	m := Membership{SR: true, DSR: true, TO3: true}
	if m.Key() != "SR DSR TO3" {
		t.Fatalf("Key = %q", m.Key())
	}
	if (Membership{}).Key() != "none" {
		t.Fatalf("empty Key = %q", Membership{}.Key())
	}
}

func TestCensusSmall(t *testing.T) {
	c := RunCensus(2, []string{"x", "y"})
	if c.Total != 48 {
		t.Fatalf("Total = %d", c.Total)
	}
	// Every 2-transaction two-step log that is DSR must be in all TO
	// classes' superclass DSR; sanity: some logs are fully serial and in
	// everything.
	all := c.ClassCount(func(m Membership) bool {
		return m.TwoPL && m.TO1 && m.TO2 && m.TO3 && m.SSR && m.DSR && m.SR
	})
	if all == 0 {
		t.Fatal("no log in the intersection of all classes")
	}
	// Non-serializable logs exist (live cycles).
	if c.ClassCount(func(m Membership) bool { return !m.SR }) == 0 {
		t.Fatal("no non-SR log found")
	}
	// Class containment sanity inside the census.
	for m := range c.Counts {
		if m.TwoPL && !m.DSR {
			t.Fatalf("2PL outside DSR: %v", m)
		}
		if (m.TO2 || m.TO3) && !m.DSR {
			t.Fatalf("TO(k) outside DSR: %v", m)
		}
		if m.DSR && !m.SR {
			t.Fatalf("DSR outside SR: %v", m)
		}
		if m.SSR && !m.SR {
			t.Fatalf("SSR outside SR: %v", m)
		}
	}
}

// The Fig. 4 hierarchy: the key separations the paper proves or asserts,
// demonstrated by exhaustive 3-transaction enumeration.
func TestHierarchyRegions(t *testing.T) {
	if testing.Short() {
		t.Skip("census is a few seconds; skipped with -short")
	}
	c := RunCensus(3, []string{"x", "y", "z"})
	regions := []struct {
		name string
		pred func(Membership) bool
	}{
		{"TO3 \\ TO1 (Example 1's region)", func(m Membership) bool { return m.TO3 && !m.TO1 }},
		{"TO1 \\ TO3 (incomparability)", func(m Membership) bool { return m.TO1 && !m.TO3 }},
		// Note: TO2 \ TO3 and TO3 \ TO2 are empty over this two-step
		// universe (see TestTO2TO3SeparationMultiStep for the multi-step
		// witnesses of the paper's TO(k-1) ⊄ TO(k) claim).
		{"TO3 ∩ SSR − TO1 − 2PL (region 7 core)", func(m Membership) bool { return m.TO3 && m.SSR && !m.TO1 && !m.TwoPL }},
		{"DSR ∩ SSR − TO3 − TO1 − 2PL (region 9 core)", func(m Membership) bool {
			return m.DSR && m.SSR && !m.TO3 && !m.TO1 && !m.TwoPL
		}},
		{"2PL \\ TO3", func(m Membership) bool { return m.TwoPL && !m.TO3 }},
		{"TO3 \\ 2PL", func(m Membership) bool { return m.TO3 && !m.TwoPL }},
		{"DSR \\ (2PL ∪ TO1 ∪ TO3)", func(m Membership) bool { return m.DSR && !m.TwoPL && !m.TO1 && !m.TO3 }},
		{"non-SR", func(m Membership) bool { return !m.SR }},
	}
	for _, r := range regions {
		if n := c.ClassCount(r.pred); n == 0 {
			t.Errorf("region %q empty", r.name)
		} else if w := c.Witness(r.pred); w == nil {
			t.Errorf("region %q has count %d but no witness", r.name, n)
		}
	}
	t.Logf("\n%s", c.String())
}

// Section III-C claims TO(k-1) ⊄ TO(k) for 2 ≤ k ≤ 2q-1. In the two-step
// model with ≤4 transactions MT(2) and MT(3) accept the same logs
// empirically, but multi-step logs separate the classes in both
// directions; these witnesses were found by randomized search.
func TestTO2TO3SeparationMultiStep(t *testing.T) {
	in2not3 := oplog.MustParse("R2[w] W4[z] W3[y] W4[w] W3[x] R4[y] R1[x] R2[y] W1[x]")
	if !classify.TOk(2, in2not3) || classify.TOk(3, in2not3) {
		t.Errorf("witness not in TO(2) \\ TO(3): TO2=%v TO3=%v",
			classify.TOk(2, in2not3), classify.TOk(3, in2not3))
	}
	in3not2 := oplog.MustParse("W1[z] W2[y] R2[z] R1[w] R3[x] W3[w] W2[x]")
	if !classify.TOk(3, in3not2) || classify.TOk(2, in3not2) {
		t.Errorf("witness not in TO(3) \\ TO(2): TO2=%v TO3=%v",
			classify.TOk(2, in3not2), classify.TOk(3, in3not2))
	}
}

// Composite logs (Section III-C): concatenating region witnesses lands in
// the predicted regions, e.g. L7 = L2 · L6 ∈ TO(3) ∩ SSR − TO(1) − 2PL.
func TestCompositeLogsRegions(t *testing.T) {
	if testing.Short() {
		t.Skip("census is a few seconds; skipped with -short")
	}
	c := RunCensus(3, []string{"x", "y"})
	l2 := c.Witness(func(m Membership) bool { return m.TO3 && m.SSR && !m.TO1 && m.TwoPL })
	l6 := c.Witness(func(m Membership) bool { return m.TO3 && m.SSR && m.TO1 && !m.TwoPL })
	if l2 == nil || l6 == nil {
		t.Skip("needed witnesses not present in the 2-item universe")
	}
	l7 := l2.Concat(l6)
	if !classify.TOk(3, l7) || !classify.SSR(l7) {
		t.Errorf("L7 should stay in TO(3) ∩ SSR: %v", l7)
	}
	if classify.TO1(l7) {
		t.Errorf("L7 should not be TO(1): %v", l7)
	}
	if classify.TwoPL(l7) {
		t.Errorf("L7 should not be 2PL: %v", l7)
	}
}
