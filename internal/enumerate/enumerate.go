// Package enumerate exhaustively generates small two-step logs and runs
// the Fig. 4 hierarchy census over them: every log is classified against
// 2PL, TO(1), TO(2), TO(3), SSR, DSR and SR, and the counts of every
// membership combination are collected. The census demonstrates
// computationally that the paper's hierarchy regions are inhabited.
package enumerate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/classify"
	"repro/internal/oplog"
)

// Interleavings enumerates every interleaving of n two-step transactions:
// each order is a sequence of 2n transaction indices (1-based), where a
// transaction's first occurrence is its read and the second its write.
// Enumeration stops early if fn returns false; the return value reports
// whether enumeration ran to completion.
func Interleavings(n int, fn func(order []int) bool) bool {
	order := make([]int, 0, 2*n)
	used := make([]int, n+1)
	var rec func() bool
	rec = func() bool {
		if len(order) == 2*n {
			return fn(order)
		}
		for t := 1; t <= n; t++ {
			if used[t] >= 2 {
				continue
			}
			// Canonical first appearances: transaction t+1 cannot start
			// before transaction t (transaction names are interchangeable,
			// so this only removes isomorphic duplicates).
			if used[t] == 0 && t > 1 && used[t-1] == 0 {
				continue
			}
			used[t]++
			order = append(order, t)
			if !rec() {
				return false
			}
			order = order[:len(order)-1]
			used[t]--
		}
		return true
	}
	return rec()
}

// TwoStepLogs enumerates every two-step log of n transactions where each
// transaction reads one item and writes one item drawn from items: all
// read/write item assignments crossed with all interleavings. fn may stop
// enumeration by returning false; the return value reports completion.
func TwoStepLogs(n int, items []string, fn func(l *oplog.Log) bool) bool {
	// assignment[i] = (read item, write item) for transaction i+1.
	reads := make([]string, n)
	writes := make([]string, n)
	var assign func(i int) bool
	assign = func(i int) bool {
		if i == n {
			return Interleavings(n, func(order []int) bool {
				seen := make([]bool, n+1)
				ops := make([]oplog.Op, 0, 2*n)
				for _, t := range order {
					if !seen[t] {
						seen[t] = true
						ops = append(ops, oplog.R(t, reads[t-1]))
					} else {
						ops = append(ops, oplog.W(t, writes[t-1]))
					}
				}
				return fn(oplog.NewLog(ops...))
			})
		}
		for _, r := range items {
			for _, w := range items {
				reads[i], writes[i] = r, w
				if !assign(i + 1) {
					return false
				}
			}
		}
		return true
	}
	return assign(0)
}

// Membership records which classes of the Fig. 4 hierarchy a log belongs
// to.
type Membership struct {
	TwoPL bool // producible by a two-phase locking scheduler
	TO1   bool // Definition 4 (s_i = π of first operation)
	TO2   bool // accepted by MT(2)
	TO3   bool // accepted by MT(3); = TO(k) for all k >= 3 in the two-step model
	SSR   bool // strictly serializable
	DSR   bool // D-serializable
	SR    bool // final-state serializable
}

// Classify computes the membership vector of a log.
func Classify(l *oplog.Log) Membership {
	return Membership{
		TwoPL: classify.TwoPL(l),
		TO1:   classify.TO1(l),
		TO2:   classify.TOk(2, l),
		TO3:   classify.TOk(3, l),
		SSR:   classify.SSR(l),
		DSR:   classify.DSR(l),
		SR:    classify.SR(l),
	}
}

// Key renders the membership as a stable, readable string such as
// "DSR SSR TO3" or "none".
func (m Membership) Key() string {
	var parts []string
	if m.SR {
		parts = append(parts, "SR")
	}
	if m.DSR {
		parts = append(parts, "DSR")
	}
	if m.SSR {
		parts = append(parts, "SSR")
	}
	if m.TwoPL {
		parts = append(parts, "2PL")
	}
	if m.TO1 {
		parts = append(parts, "TO1")
	}
	if m.TO2 {
		parts = append(parts, "TO2")
	}
	if m.TO3 {
		parts = append(parts, "TO3")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Census aggregates membership counts over an enumerated universe of logs.
type Census struct {
	Total    int
	Counts   map[Membership]int
	Examples map[Membership]*oplog.Log
}

// NewCensus returns an empty census.
func NewCensus() *Census {
	return &Census{
		Counts:   make(map[Membership]int),
		Examples: make(map[Membership]*oplog.Log),
	}
}

// Add classifies l and records it.
func (c *Census) Add(l *oplog.Log) {
	m := Classify(l)
	c.Total++
	c.Counts[m]++
	if c.Examples[m] == nil {
		c.Examples[m] = l.Clone()
	}
}

// ClassCount returns how many censused logs belong to the class selected
// by pred.
func (c *Census) ClassCount(pred func(Membership) bool) int {
	n := 0
	for m, cnt := range c.Counts {
		if pred(m) {
			n += cnt
		}
	}
	return n
}

// Witness returns an example log in the region selected by pred, or nil.
func (c *Census) Witness(pred func(Membership) bool) *oplog.Log {
	// Deterministic pick: smallest log string.
	var best *oplog.Log
	for m, l := range c.Examples {
		if pred(m) && (best == nil || l.String() < best.String()) {
			best = l
		}
	}
	return best
}

// String renders the census as a sorted table of region keys and counts.
func (c *Census) String() string {
	type row struct {
		key string
		n   int
	}
	var rows []row
	for m, n := range c.Counts {
		rows = append(rows, row{m.Key(), n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].key < rows[j].key
	})
	var b strings.Builder
	fmt.Fprintf(&b, "census of %d logs\n", c.Total)
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d  %s\n", r.n, r.key)
	}
	return b.String()
}

// RunCensus enumerates all two-step logs of n transactions over the given
// items and classifies every one of them.
func RunCensus(n int, items []string) *Census {
	c := NewCensus()
	TwoStepLogs(n, items, func(l *oplog.Log) bool {
		c.Add(l)
		return true
	})
	return c
}
