// Package oplog implements the paper's log model. A log is the quintuple
// L = (D, T, Σ, S, π): database items D, transactions T, atomic operations
// Σ, the access function S giving the item set touched by each operation,
// and the permutation function π giving each operation's sequence number.
//
// An atomic operation is written A_i[x] where A ∈ {R, W}, i is the
// transaction index and x is an item; in the two-step transaction model an
// operation may access a *set* of items (written R1[x,y]). π(op) is the
// 1-based position of the operation in the log.
package oplog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/graph"
)

// Kind distinguishes reads from writes.
type Kind int

// Operation kinds.
const (
	Read Kind = iota
	Write
)

// String returns "R" or "W".
func (k Kind) String() string {
	if k == Read {
		return "R"
	}
	return "W"
}

// Op is a single atomic operation of a transaction on a set of items.
type Op struct {
	Txn   int      // transaction index (unique id, ≥ 1 for real transactions)
	Kind  Kind     // Read or Write
	Items []string // item set accessed; non-empty, sorted, duplicate-free
}

// NewOp builds a normalized operation (items sorted, deduplicated).
func NewOp(txn int, kind Kind, items ...string) Op {
	set := map[string]bool{}
	for _, it := range items {
		set[it] = true
	}
	norm := make([]string, 0, len(set))
	for it := range set {
		norm = append(norm, it)
	}
	sort.Strings(norm)
	return Op{Txn: txn, Kind: kind, Items: norm}
}

// R is shorthand for a read operation.
func R(txn int, items ...string) Op { return NewOp(txn, Read, items...) }

// W is shorthand for a write operation.
func W(txn int, items ...string) Op { return NewOp(txn, Write, items...) }

// String renders the operation in the paper's notation, e.g. "W1[x]" or
// "R2[x,y]".
func (o Op) String() string {
	return fmt.Sprintf("%s%d[%s]", o.Kind, o.Txn, strings.Join(o.Items, ","))
}

// Accesses reports whether the operation touches item x.
func (o Op) Accesses(x string) bool {
	i := sort.SearchStrings(o.Items, x)
	return i < len(o.Items) && o.Items[i] == x
}

// intersects reports whether the item sets of a and b overlap.
func intersects(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Conflicts implements Definition 1: two operations conflict iff they belong
// to different transactions, access a common item, and at least one writes.
func Conflicts(a, b Op) bool {
	if a.Txn == b.Txn {
		return false
	}
	if a.Kind == Read && b.Kind == Read {
		return false
	}
	return intersects(a.Items, b.Items)
}

// Log is a finite sequence of operations. π(ops[i]) = i+1.
type Log struct {
	Ops []Op
}

// NewLog builds a log from operations in sequence order.
func NewLog(ops ...Op) *Log { return &Log{Ops: append([]Op(nil), ops...)} }

// Len returns the number of operations.
func (l *Log) Len() int { return len(l.Ops) }

// String renders the log in paper notation separated by spaces.
func (l *Log) String() string {
	parts := make([]string, len(l.Ops))
	for i, o := range l.Ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// Clone returns a deep copy of the log.
func (l *Log) Clone() *Log {
	ops := make([]Op, len(l.Ops))
	for i, o := range l.Ops {
		ops[i] = Op{Txn: o.Txn, Kind: o.Kind, Items: append([]string(nil), o.Items...)}
	}
	return &Log{Ops: ops}
}

// Concat returns the concatenation l · m (the paper's composite-log
// operator). Transaction indices in m are shifted above those in l so the
// two halves share no transactions, matching the use in Section III-C.
func (l *Log) Concat(m *Log) *Log {
	shift := 0
	for _, t := range l.Transactions() {
		if t > shift {
			shift = t
		}
	}
	out := l.Clone()
	for _, o := range m.Ops {
		out.Ops = append(out.Ops, Op{Txn: o.Txn + shift, Kind: o.Kind, Items: append([]string(nil), o.Items...)})
	}
	return out
}

// Transactions returns the sorted distinct transaction indices in the log.
func (l *Log) Transactions() []int {
	set := map[int]bool{}
	for _, o := range l.Ops {
		set[o.Txn] = true
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Items returns the sorted distinct items in the log (the set D).
func (l *Log) Items() []string {
	set := map[string]bool{}
	for _, o := range l.Ops {
		for _, x := range o.Items {
			set[x] = true
		}
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// OpsOf returns the operations of transaction t in log order.
func (l *Log) OpsOf(t int) []Op {
	var out []Op
	for _, o := range l.Ops {
		if o.Txn == t {
			out = append(out, o)
		}
	}
	return out
}

// MaxOpsPerTxn returns q, the maximum number of operations in a single
// transaction of the log.
func (l *Log) MaxOpsPerTxn() int {
	count := map[int]int{}
	q := 0
	for _, o := range l.Ops {
		count[o.Txn]++
		if count[o.Txn] > q {
			q = count[o.Txn]
		}
	}
	return q
}

// IsTwoStep reports whether the log follows the paper's two-step model:
// every transaction consists of exactly one read operation followed by one
// write operation.
func (l *Log) IsTwoStep() bool {
	type state struct{ reads, writes int }
	st := map[int]*state{}
	for _, o := range l.Ops {
		s := st[o.Txn]
		if s == nil {
			s = &state{}
			st[o.Txn] = s
		}
		switch o.Kind {
		case Read:
			if s.reads > 0 || s.writes > 0 {
				return false
			}
			s.reads++
		case Write:
			if s.reads != 1 || s.writes > 0 {
				return false
			}
			s.writes++
		}
	}
	for _, s := range st {
		if s.reads != 1 || s.writes != 1 {
			return false
		}
	}
	return true
}

// TxnIndex maps the log's transaction ids to dense indices 0..n-1 in
// ascending id order, returning the map and the ordered ids.
func (l *Log) TxnIndex() (map[int]int, []int) {
	ids := l.Transactions()
	m := make(map[int]int, len(ids))
	for i, t := range ids {
		m[t] = i
	}
	return m, ids
}

// DependencyGraph returns the direct-conflict digraph over dense transaction
// indices: an edge i -> j when some operation of transaction ids[i] precedes
// and conflicts with some operation of ids[j] (Definition 7 part i). The
// dense index mapping is the one produced by TxnIndex.
func (l *Log) DependencyGraph() (*graph.Digraph, []int) {
	idx, ids := l.TxnIndex()
	g := graph.New(len(ids))
	for i := 0; i < len(l.Ops); i++ {
		for j := i + 1; j < len(l.Ops); j++ {
			if Conflicts(l.Ops[i], l.Ops[j]) {
				g.AddEdge(idx[l.Ops[i].Txn], idx[l.Ops[j].Txn])
			}
		}
	}
	return g, ids
}

// Prefix returns the log consisting of the first n operations.
func (l *Log) Prefix(n int) *Log {
	if n > len(l.Ops) {
		n = len(l.Ops)
	}
	return NewLog(l.Ops[:n]...)
}

// Parse reads a log in the paper's notation: whitespace-separated operations
// like "W1[x] R2[y] R3[x,y]". It returns an error describing the first
// malformed token.
func Parse(s string) (*Log, error) {
	fields := strings.Fields(s)
	ops := make([]Op, 0, len(fields))
	for _, f := range fields {
		op, err := parseOp(f)
		if err != nil {
			return nil, fmt.Errorf("oplog: %q: %w", f, err)
		}
		ops = append(ops, op)
	}
	return NewLog(ops...), nil
}

// MustParse is Parse that panics on error, for tests and fixed examples.
func MustParse(s string) *Log {
	l, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return l
}

func parseOp(tok string) (Op, error) {
	if len(tok) < 4 {
		return Op{}, fmt.Errorf("too short")
	}
	var kind Kind
	switch tok[0] {
	case 'R', 'r':
		kind = Read
	case 'W', 'w':
		kind = Write
	default:
		return Op{}, fmt.Errorf("operation must start with R or W")
	}
	open := strings.IndexByte(tok, '[')
	if open < 0 || tok[len(tok)-1] != ']' || strings.IndexByte(tok, ']') != len(tok)-1 {
		return Op{}, fmt.Errorf("missing [items]")
	}
	// The index must be plain digits: Atoi alone would also accept
	// signed forms like "+1" or "-0", which the notation never uses.
	idx := tok[1:open]
	for i := 0; i < len(idx); i++ {
		if idx[i] < '0' || idx[i] > '9' {
			return Op{}, fmt.Errorf("bad transaction index %q", idx)
		}
	}
	txn, err := strconv.Atoi(idx)
	if err != nil {
		return Op{}, fmt.Errorf("bad transaction index: %v", err)
	}
	if txn < 1 {
		return Op{}, fmt.Errorf("transaction index must be positive")
	}
	body := tok[open+1 : len(tok)-1]
	if body == "" {
		return Op{}, fmt.Errorf("empty item set")
	}
	items := strings.Split(body, ",")
	for _, it := range items {
		if it == "" {
			return Op{}, fmt.Errorf("empty item name")
		}
		for _, r := range it {
			if r == '[' || unicode.IsSpace(r) || unicode.IsControl(r) || r == unicode.ReplacementChar {
				return Op{}, fmt.Errorf("invalid character %q in item name", r)
			}
		}
	}
	return NewOp(txn, kind, items...), nil
}
