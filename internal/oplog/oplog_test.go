package oplog

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"W1[x] W1[y] R3[x] R2[y]",
		"R1[x,y] W1[x,y]",
		"R2[a] W2[b]",
	}
	for _, c := range cases {
		l, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		if got := l.String(); got != c {
			t.Errorf("round trip: got %q, want %q", got, c)
		}
	}
}

func TestParseNormalizesItems(t *testing.T) {
	l := MustParse("R1[y,x,x]")
	if got := l.String(); got != "R1[x,y]" {
		t.Fatalf("got %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"X1[x]",    // bad kind
		"R[x]",     // missing index
		"R1x",      // missing brackets
		"R1[]",     // empty items
		"R1[a,]",   // empty item name
		"R-1[x]",   // negative index
		"W1.5[x]",  // non-integer index
		"R1[x] zz", // malformed second token
	}
	for _, c := range bad {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestConflicts(t *testing.T) {
	cases := []struct {
		a, b Op
		want bool
	}{
		{R(1, "x"), R(2, "x"), false},      // read-read never conflicts
		{R(1, "x"), W(2, "x"), true},       // read-write
		{W(1, "x"), R(2, "x"), true},       // write-read
		{W(1, "x"), W(2, "x"), true},       // write-write
		{W(1, "x"), W(2, "y"), false},      // disjoint items
		{W(1, "x"), W(1, "x"), false},      // same transaction
		{R(1, "x", "y"), W(2, "y"), true},  // set intersection
		{R(1, "a", "c"), W(2, "b"), false}, // interleaved names, disjoint
	}
	for _, c := range cases {
		if got := Conflicts(c.a, c.b); got != c.want {
			t.Errorf("Conflicts(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestConflictsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := []string{"x", "y", "z"}
		mk := func() Op {
			n := 1 + rng.Intn(2)
			its := make([]string, n)
			for i := range its {
				its[i] = items[rng.Intn(len(items))]
			}
			return NewOp(1+rng.Intn(3), Kind(rng.Intn(2)), its...)
		}
		a, b := mk(), mk()
		return Conflicts(a, b) == Conflicts(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionsItems(t *testing.T) {
	l := MustParse("W3[c] R1[a] W1[b] R2[a,b]")
	if got := l.Transactions(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Transactions = %v", got)
	}
	if got := l.Items(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Items = %v", got)
	}
}

func TestOpsOfAndMaxOps(t *testing.T) {
	l := MustParse("R1[x] R2[y] W1[x] W1[z]")
	ops := l.OpsOf(1)
	if len(ops) != 3 {
		t.Fatalf("OpsOf(1) len = %d", len(ops))
	}
	if q := l.MaxOpsPerTxn(); q != 3 {
		t.Fatalf("MaxOpsPerTxn = %d, want 3", q)
	}
}

func TestIsTwoStep(t *testing.T) {
	cases := []struct {
		log  string
		want bool
	}{
		{"R1[x] W1[x]", true},
		{"R1[x] R2[y] W1[x] W2[y]", true},
		{"R1[x,y] W1[x]", true},
		{"W1[x] R1[x]", false},       // write before read
		{"R1[x] W1[x] W1[y]", false}, // two writes
		{"R1[x]", false},             // missing write
		{"W1[x]", false},             // missing read
		{"R1[x] R1[y] W1[x]", false}, // two reads
	}
	for _, c := range cases {
		if got := MustParse(c.log).IsTwoStep(); got != c.want {
			t.Errorf("IsTwoStep(%q) = %v, want %v", c.log, got, c.want)
		}
	}
}

func TestDependencyGraphExample1(t *testing.T) {
	// Example 1 full log: W1[x] W1[y] R3[x] R2[y] W3[y].
	// Dependencies: T1->T3 (x), T1->T2 (y), T2->T3 (R2[y] before W3[y]),
	// and T1->T3 also via y.
	l := MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]")
	g, ids := l.DependencyGraph()
	if !reflect.DeepEqual(ids, []int{1, 2, 3}) {
		t.Fatalf("ids = %v", ids)
	}
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for _, e := range want {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if g.HasEdge(2, 1) || g.HasEdge(1, 0) || g.HasEdge(2, 0) {
		t.Error("spurious reverse edge")
	}
}

func TestDependencyGraphNoReadReadEdge(t *testing.T) {
	l := MustParse("R1[x] R2[x]")
	g, _ := l.DependencyGraph()
	if g.EdgeCount() != 0 {
		t.Fatalf("read-read produced %d edges", g.EdgeCount())
	}
}

func TestConcatShiftsTxnIDs(t *testing.T) {
	a := MustParse("R1[x] W1[x]")
	b := MustParse("R1[y] W1[y]")
	c := a.Concat(b)
	if got := c.String(); got != "R1[x] W1[x] R2[y] W2[y]" {
		t.Fatalf("Concat = %q", got)
	}
	// originals untouched
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatal("Concat mutated inputs")
	}
}

func TestPrefix(t *testing.T) {
	l := MustParse("R1[x] W1[x] R2[y]")
	p := l.Prefix(2)
	if p.String() != "R1[x] W1[x]" {
		t.Fatalf("Prefix = %q", p)
	}
	if l.Prefix(99).Len() != 3 {
		t.Fatal("over-long prefix should clamp")
	}
}

func TestCloneIndependence(t *testing.T) {
	l := MustParse("R1[x]")
	c := l.Clone()
	c.Ops[0].Items[0] = "zzz"
	if l.Ops[0].Items[0] != "x" {
		t.Fatal("Clone shares item slices")
	}
}

func TestAccesses(t *testing.T) {
	o := R(1, "b", "d")
	for _, c := range []struct {
		item string
		want bool
	}{{"a", false}, {"b", true}, {"c", false}, {"d", true}, {"e", false}} {
		if got := o.Accesses(c.item); got != c.want {
			t.Errorf("Accesses(%q) = %v", c.item, got)
		}
	}
}

func TestTxnIndexDense(t *testing.T) {
	l := MustParse("R7[x] W7[x] R3[y] W3[y]")
	idx, ids := l.TxnIndex()
	if !reflect.DeepEqual(ids, []int{3, 7}) {
		t.Fatalf("ids = %v", ids)
	}
	if idx[3] != 0 || idx[7] != 1 {
		t.Fatalf("idx = %v", idx)
	}
}

// Property: parsing the string form reproduces the log.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := []string{"x", "y", "z", "w"}
		var ops []Op
		for i := 0; i < 1+rng.Intn(10); i++ {
			n := 1 + rng.Intn(3)
			its := make([]string, n)
			for j := range its {
				its[j] = items[rng.Intn(len(items))]
			}
			ops = append(ops, NewOp(1+rng.Intn(5), Kind(rng.Intn(2)), its...))
		}
		l := NewLog(ops...)
		back, err := Parse(l.String())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(l, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the dependency graph only contains edges consistent with log
// order (an edge i->j requires some op of ids[i] before some op of ids[j]).
func TestQuickDependencyEdgesRespectOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := []string{"x", "y"}
		var ops []Op
		for i := 0; i < 2+rng.Intn(8); i++ {
			ops = append(ops, NewOp(1+rng.Intn(3), Kind(rng.Intn(2)), items[rng.Intn(2)]))
		}
		l := NewLog(ops...)
		g, ids := l.DependencyGraph()
		first := map[int]int{}
		for pos, o := range l.Ops {
			if _, ok := first[o.Txn]; !ok {
				first[o.Txn] = pos
			}
		}
		last := map[int]int{}
		for pos, o := range l.Ops {
			last[o.Txn] = pos
		}
		for i := range ids {
			for _, j := range g.Succ(i) {
				// some op of ids[i] precedes some op of ids[j]:
				if first[ids[i]] >= last[ids[j]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	if s := W(4, "x", "a").String(); s != "W4[a,x]" {
		t.Fatalf("String = %q", s)
	}
	if !strings.HasPrefix(R(1, "x").String(), "R1") {
		t.Fatal("read prefix wrong")
	}
}
