package oplog

import (
	"reflect"
	"strings"
	"testing"
	"unicode"
)

// FuzzParseLog drives Parse with arbitrary input and checks three
// properties:
//
//  1. Parse never panics;
//  2. anything Parse accepts is well formed — transaction indices are
//     positive, item sets are non-empty, sorted and duplicate-free,
//     and item names contain no structural characters ('[', ']', ','),
//     whitespace or control characters (otherwise String() produces a
//     log whose meaning differs from the one parsed);
//  3. accepted logs round-trip: Parse(l.String()) yields an identical
//     log (String is the paper notation, so this is the notation's
//     print/parse closure).
func FuzzParseLog(f *testing.F) {
	f.Add("W1[x] R2[y] R3[x,y]")
	f.Add("r1[a,b] w1[b,a]")
	f.Add("R1[x]\nW1[x]\tR2[z]")
	f.Add("R+1[x]")
	f.Add("R1[a]b]")
	f.Add("W2[[]")
	f.Add("R3[\x00]")
	f.Add("R99999999999999999999[x]")
	f.Add("")
	f.Add("W1[]")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := Parse(s)
		if err != nil {
			return
		}
		for _, op := range l.Ops {
			if op.Txn < 1 {
				t.Fatalf("accepted non-positive transaction index %d in %q", op.Txn, s)
			}
			if len(op.Items) == 0 {
				t.Fatalf("accepted empty item set in %q", s)
			}
			for i, it := range op.Items {
				if it == "" {
					t.Fatalf("accepted empty item name in %q", s)
				}
				if i > 0 && op.Items[i-1] >= it {
					t.Fatalf("items not sorted/deduped: %q in %q", op.Items, s)
				}
				if strings.ContainsAny(it, "[],") {
					t.Fatalf("accepted structural character in item %q from %q", it, s)
				}
				for _, r := range it {
					if unicode.IsSpace(r) || unicode.IsControl(r) || r == unicode.ReplacementChar {
						t.Fatalf("accepted unprintable rune %q in item %q from %q", r, it, s)
					}
				}
			}
		}
		back, err := Parse(l.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q failed: %v", l.String(), err)
		}
		if !reflect.DeepEqual(l.Ops, back.Ops) {
			t.Fatalf("round trip changed the log: %q -> %q", l.String(), back.String())
		}
	})
}
