// Package intern maps item names to dense int32 ids so the hot path
// can index slices instead of hashing strings into maps.
//
// The design target is the striped engine's steady state: every
// operation resolves its item's id, and almost every resolution is a
// repeat of a name seen before. The read path is therefore lock-free
// and allocation-free — one atomic load plus one map probe — while
// first-time interning takes a mutex and pays an amortized-O(1) copy.
//
// Ids are assigned densely from 0 in interning order, so a Table with
// n names has exactly ids 0..n-1: callers can use ids directly as
// slice indices (the whole point).
package intern

import (
	"sync"
	"sync/atomic"
)

// Table interns strings to dense int32 ids.
//
// Concurrency: ID, Lookup, Name, Names and Len are safe for concurrent
// use and never block on the writer; ID blocks only when the name is
// new (or so recently interned that it has not been promoted to the
// lock-free read map yet).
type Table struct {
	// read is the lock-free lookup map. It is copy-on-write: readers
	// load the pointer and probe; the writer publishes a fresh map.
	read atomic.Pointer[map[string]int32]

	// names is the published id -> name slice. Append-only: a new
	// header is published after the new element is written, so any
	// reader holding an id sees a slice that covers it.
	names atomic.Pointer[[]string]

	mu    sync.Mutex
	dirty map[string]int32 // interned but not yet promoted into read
	all   []string         // authoritative id -> name, guarded by mu
}

// New returns an empty table.
func New() *Table {
	t := &Table{}
	m := make(map[string]int32)
	t.read.Store(&m)
	n := make([]string, 0)
	t.names.Store(&n)
	return t
}

// ID returns the dense id for name, interning it on first use.
func (t *Table) ID(name string) int32 {
	if id, ok := (*t.read.Load())[name]; ok {
		return id
	}
	return t.intern(name)
}

// Lookup returns the id for name without interning it.
func (t *Table) Lookup(name string) (int32, bool) {
	if id, ok := (*t.read.Load())[name]; ok {
		return id, true
	}
	t.mu.Lock()
	id, ok := t.dirty[name]
	t.mu.Unlock()
	return id, ok
}

// Name returns the name for id. It panics if id was never assigned by
// this table (mirroring a slice bounds failure: ids are trusted,
// dense, and produced only by ID).
func (t *Table) Name(id int32) string {
	return (*t.names.Load())[id]
}

// Names returns the published id -> name slice. The slice is
// append-only and must not be mutated by the caller; index i holds the
// name with id i.
func (t *Table) Names() []string {
	return *t.names.Load()
}

// Len returns the number of interned names.
func (t *Table) Len() int {
	return len(*t.names.Load())
}

// intern assigns an id to a new name under the table mutex.
func (t *Table) intern(name string) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-check under the lock: the name may have been interned (into
	// either map) since the lock-free probe missed.
	if id, ok := (*t.read.Load())[name]; ok {
		return id
	}
	if id, ok := t.dirty[name]; ok {
		return id
	}
	id := int32(len(t.all))
	t.all = append(t.all, name)
	// Publish the grown names slice. Appending may write one past the
	// previously published length in a shared backing array, which is
	// safe: readers of the old header cannot index past its length, and
	// the new header is published with release ordering.
	namesCopy := t.all
	t.names.Store(&namesCopy)
	if t.dirty == nil {
		t.dirty = make(map[string]int32)
	}
	t.dirty[name] = id
	// Promote once the unpromoted overlay is a quarter of the read map
	// (minimum 16): amortized O(1) per interned name, and recently
	// interned names stop paying the mutex on lookup.
	if read := *t.read.Load(); len(t.dirty) >= 16 && len(t.dirty)*4 >= len(read) {
		merged := make(map[string]int32, len(read)+len(t.dirty))
		for k, v := range read {
			merged[k] = v
		}
		for k, v := range t.dirty {
			merged[k] = v
		}
		t.read.Store(&merged)
		t.dirty = nil
	}
	return id
}
