package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestTableDenseIDs(t *testing.T) {
	tb := New()
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("x%03d", i)
		if got := tb.ID(name); got != int32(i) {
			t.Fatalf("ID(%q) = %d, want %d", name, got, i)
		}
	}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("x%03d", i)
		if got := tb.ID(name); got != int32(i) {
			t.Fatalf("re-ID(%q) = %d, want %d", name, got, i)
		}
		if got := tb.Name(int32(i)); got != name {
			t.Fatalf("Name(%d) = %q, want %q", i, got, name)
		}
	}
	if tb.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tb.Len())
	}
	if id, ok := tb.Lookup("x007"); !ok || id != 7 {
		t.Fatalf("Lookup(x007) = %d,%v", id, ok)
	}
	if _, ok := tb.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
	names := tb.Names()
	if len(names) != 100 || names[42] != "x042" {
		t.Fatalf("Names() wrong: len=%d", len(names))
	}
}

// TestTableConcurrent hammers the table from many goroutines over a
// shared key space and checks every goroutine resolves every name to
// the same id (run under -race in CI).
func TestTableConcurrent(t *testing.T) {
	tb := New()
	const workers, keys = 8, 512
	ids := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		ids[w] = make([]int32, keys)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := (i*7 + w) % keys // interleaved orders per goroutine
				ids[w][k] = tb.ID(fmt.Sprintf("k%04d", k))
			}
		}(w)
	}
	wg.Wait()
	if tb.Len() != keys {
		t.Fatalf("Len = %d, want %d", tb.Len(), keys)
	}
	for k := 0; k < keys; k++ {
		want := ids[0][k]
		if got := tb.Name(want); got != fmt.Sprintf("k%04d", k) {
			t.Fatalf("Name(%d) = %q", want, got)
		}
		for w := 1; w < workers; w++ {
			if ids[w][k] != want {
				t.Fatalf("worker %d got id %d for key %d, worker 0 got %d", w, ids[w][k], k, want)
			}
		}
	}
}

func TestTableSteadyLookupAllocFree(t *testing.T) {
	tb := New()
	for i := 0; i < 64; i++ {
		tb.ID(fmt.Sprintf("x%02d", i))
	}
	tb.ID("promote-check")
	allocs := testing.AllocsPerRun(1000, func() {
		if tb.ID("x33") != 33 {
			t.Fatal("wrong id")
		}
		_ = tb.Name(33)
	})
	if allocs != 0 {
		t.Fatalf("steady ID+Name allocates %v/op, want 0", allocs)
	}
}
