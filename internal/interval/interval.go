// Package interval implements the dynamic timestamp-interval baseline of
// Bayer et al. [1], the related work the paper compares against in
// Section VI-A. Every transaction starts with the full timestamp interval
// (0, 2⁶²) which shrinks explicitly each time a dependency is discovered:
// to encode T_a -> T_b a split point c is chosen inside the overlap of the
// two intervals, T_a keeps the part below c and T_b the part above. A
// dependency between two already-disjoint intervals in the wrong order
// aborts.
//
// The paper's criticisms are all observable here: the split-point choice
// is a policy knob (SplitMid/SplitLow/SplitHigh), intervals shrink
// exponentially and can be exhausted (fragmentation), and a restarted
// transaction that always receives the full interval can starve.
package interval

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sched"
	"repro/internal/storage"
)

// SplitPolicy selects the split point c inside the overlap of two
// intervals when a dependency is encoded.
type SplitPolicy int

// Split policies.
const (
	// SplitMid picks the midpoint of the overlap.
	SplitMid SplitPolicy = iota
	// SplitLow leaves the predecessor the smallest possible interval.
	SplitLow
	// SplitHigh leaves the successor the smallest possible interval.
	SplitHigh
)

// MaxTimestamp bounds the timestamp space.
const MaxTimestamp = int64(1) << 62

// Options configures the interval scheduler.
type Options struct {
	Policy SplitPolicy
	// NoCompact disables timestamp-space compaction, exposing the raw
	// fragmentation/starvation behaviour for the Section VI-A
	// comparison experiment.
	NoCompact bool
}

// txnState holds a live transaction's interval (lo, hi), exclusive of lo.
type txnState struct {
	lo, hi int64 // interval (lo, hi]; valid while lo < hi
	writes map[string]int64
	order  []string
}

// Interval is the Bayer-style runtime scheduler.
type Interval struct {
	mu    sync.Mutex
	opts  Options
	store *storage.Store
	txns  map[int]*txnState
	// rt/wt track the most recent reader/writer ids per item, exactly
	// like MT(k)'s indices, so both schemes see identical dependencies.
	rt, wt map[string]int
	// fin records final intervals of finished transactions still
	// referenced by rt/wt.
	fin map[int]*txnState
	// exhausted counts dependencies that failed only because an overlap
	// had shrunk to nothing (fragmentation).
	exhausted int64
	// compactions counts order-preserving renumberings of the timestamp
	// space. Without them, a hot-item chain exhausts the space after
	// ~62 midpoint splits and every later transaction starves — the
	// fragmentation problem of Section VI-A item 3. Compaction is the
	// extra machinery interval schemes need and vectors do not.
	compactions int64
}

// New returns an interval scheduler over the store.
func New(store *storage.Store, opts Options) *Interval {
	iv := &Interval{
		opts:  opts,
		store: store,
		txns:  make(map[int]*txnState),
		rt:    make(map[string]int),
		wt:    make(map[string]int),
		fin:   make(map[int]*txnState),
	}
	// The virtual transaction 0 owns the degenerate interval (0, 0]: it
	// precedes everything.
	iv.fin[0] = &txnState{lo: 0, hi: 0}
	return iv
}

// Name implements sched.Scheduler.
func (iv *Interval) Name() string { return "Interval" }

// Exhausted returns how many aborts were caused purely by interval
// fragmentation (the overlap existed order-wise but had no room left).
func (iv *Interval) Exhausted() int64 {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	return iv.exhausted
}

// Begin implements sched.Scheduler: every (re)start receives the full
// interval — the fixed-restart-range behaviour whose starvation the paper
// points out in Section VI-A item 4.
func (iv *Interval) Begin(txn int) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	iv.txns[txn] = &txnState{lo: 0, hi: MaxTimestamp, writes: make(map[string]int64)}
	delete(iv.fin, txn)
}

func (iv *Interval) state(txn int) *txnState {
	if st := iv.txns[txn]; st != nil {
		return st
	}
	if st := iv.fin[txn]; st != nil {
		return st
	}
	panic(fmt.Sprintf("interval: operation on unknown transaction %d", txn))
}

// before reports whether a's interval already lies entirely before b's.
func before(a, b *txnState) bool { return a.hi <= b.lo }

// encode shrinks the two intervals so that a precedes b, reporting
// success. policyC picks the split point within (max(lo), min(hi)).
func (iv *Interval) encode(a, b *txnState) bool {
	if a == b {
		return true
	}
	if before(a, b) {
		return true
	}
	if before(b, a) {
		return false // the reverse order is already committed to
	}
	lo := max64(a.lo, b.lo)
	hi := min64(a.hi, b.hi)
	if hi-lo < 2 { // no room for a strict split: fragmentation
		iv.exhausted++
		if iv.opts.NoCompact {
			return false
		}
		iv.compact()
		lo = max64(a.lo, b.lo)
		hi = min64(a.hi, b.hi)
		if hi-lo < 2 {
			return false
		}
	}
	var c int64
	switch iv.opts.Policy {
	case SplitLow:
		c = lo + 1
	case SplitHigh:
		c = hi - 1
	default:
		c = lo + (hi-lo)/2
	}
	a.hi = c
	if c > b.lo {
		b.lo = c
	}
	if a.lo >= a.hi || b.lo >= b.hi {
		// A degenerate interval can no longer order against anything new;
		// treat as exhaustion.
		iv.exhausted++
		return false
	}
	return true
}

// compact renumbers the timestamp space with an order-preserving
// bijection on interval endpoints: the k-th smallest endpoint maps to
// k·(MaxTimestamp/(n+1)). Overlaps stay overlaps and disjoint orders are
// preserved, so no established relation changes, but midpoint splits get
// fresh room. This is the extra maintenance interval-based schemes
// require; the paper's vectors avoid it entirely.
func (iv *Interval) compact() {
	iv.compactions++
	endpoints := map[int64]bool{}
	states := make([]*txnState, 0, len(iv.txns)+len(iv.fin))
	for _, st := range iv.txns {
		states = append(states, st)
	}
	for t, st := range iv.fin {
		if t == 0 {
			continue // the virtual (0,0] stays fixed
		}
		states = append(states, st)
	}
	for _, st := range states {
		endpoints[st.lo] = true
		endpoints[st.hi] = true
	}
	sorted := make([]int64, 0, len(endpoints))
	for e := range endpoints {
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	span := MaxTimestamp / int64(len(sorted)+1)
	remap := make(map[int64]int64, len(sorted))
	for i, e := range sorted {
		v := int64(i+1) * span
		if e == 0 {
			v = 0 // endpoints at the virtual boundary stay put
		}
		remap[e] = v
	}
	for _, st := range states {
		st.lo = remap[st.lo]
		st.hi = remap[st.hi]
	}
}

// Compactions returns how many space renumberings have run.
func (iv *Interval) Compactions() int64 {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	return iv.compactions
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// maxHolder picks RT(x) or WT(x) with the later interval (by lower bound).
func (iv *Interval) maxHolder(x string) int {
	r, w := iv.rt[x], iv.wt[x]
	if r == w {
		return r
	}
	if iv.state(r).lo < iv.state(w).lo {
		return w
	}
	return r
}

// Read implements sched.Scheduler.
func (iv *Interval) Read(txn int, item string) (int64, error) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	st := iv.state(txn)
	if v, ok := st.writes[item]; ok {
		return v, nil
	}
	j := iv.maxHolder(item)
	if !iv.encode(iv.state(j), st) {
		return 0, sched.Abort(txn, j, "interval order violated")
	}
	iv.rt[item] = txn
	return iv.store.Get(item), nil
}

// Write implements sched.Scheduler (deferred validation at commit).
func (iv *Interval) Write(txn int, item string, v int64) error {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	st := iv.state(txn)
	if _, ok := st.writes[item]; !ok {
		st.order = append(st.order, item)
	}
	st.writes[item] = v
	return nil
}

// Commit implements sched.Scheduler.
func (iv *Interval) Commit(txn int) error {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	st := iv.state(txn)
	for _, x := range st.order {
		j := iv.maxHolder(x)
		if !iv.encode(iv.state(j), st) {
			delete(iv.txns, txn)
			return sched.Abort(txn, j, "interval order violated at commit")
		}
		iv.wt[x] = txn
	}
	iv.store.Apply(st.writes)
	// Keep the final interval while rt/wt may still reference it.
	iv.fin[txn] = st
	delete(iv.txns, txn)
	iv.gc()
	return nil
}

// Abort implements sched.Scheduler.
func (iv *Interval) Abort(txn int) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if st := iv.txns[txn]; st != nil {
		// The shrunk interval stays visible through rt — conservative,
		// like MT(k)'s aborted-reader residue.
		iv.fin[txn] = st
		delete(iv.txns, txn)
	}
	iv.gc()
}

// gc drops finished intervals no longer referenced by any rt/wt index.
func (iv *Interval) gc() {
	ref := map[int]bool{0: true}
	for _, t := range iv.rt {
		ref[t] = true
	}
	for _, t := range iv.wt {
		ref[t] = true
	}
	for t := range iv.fin {
		if !ref[t] {
			delete(iv.fin, t)
		}
	}
}

// Width returns the current interval width of a transaction (tests and
// the fragmentation experiment).
func (iv *Interval) Width(txn int) int64 {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	st := iv.state(txn)
	return st.hi - st.lo
}
