package interval

import (
	"errors"
	"testing"

	"repro/internal/sched"
	"repro/internal/storage"
)

func TestBasicOrdering(t *testing.T) {
	st := storage.New()
	s := New(st, Options{})
	s.Begin(1)
	s.Begin(2)
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 1 {
		t.Fatal("write lost")
	}
}

func TestDependencyAgainstCommittedOrderAborts(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1)
	s.Begin(2)
	s.Begin(3)
	// Chain: T1 -> T2 via x (T1 reads, T2 writes at commit).
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(2, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T3 reads x (after T2's write): T2 -> T3.
	if _, err := s.Read(3, "x"); err != nil {
		t.Fatal(err)
	}
	// T1 writing something T3 read... first T3 reads y, then T1 writes y
	// at commit: needs T3 -> T1, but T1 -> T2 -> T3 is committed.
	if _, err := s.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, "y", 9); err != nil {
		t.Fatal(err)
	}
	err := s.Commit(1)
	if !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("cycle-closing commit succeeded: %v", err)
	}
}

func TestIntervalsShrink(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1)
	w0 := s.Width(1)
	if w0 != MaxTimestamp {
		t.Fatalf("fresh width = %d", w0)
	}
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	s.Begin(2)
	if err := s.Write(2, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if s.Width(1) >= w0 {
		t.Fatal("interval did not shrink on dependency")
	}
}

// Fragmentation: SplitLow starves the successor side — repeated
// dependencies exhaust the space after ~width steps, while the paper's
// vectors never fragment. SplitMid exhausts after ~62 halvings.
func TestFragmentationExhaustion(t *testing.T) {
	s := New(storage.New(), Options{Policy: SplitMid, NoCompact: true})
	// Chain many transactions through one item: T1 -> T2 -> T3 -> ...
	// Each new reader/writer splits the remaining overlap in half.
	prev := 0
	aborted := false
	for i := 1; i <= 200; i++ {
		s.Begin(i)
		if _, err := s.Read(i, "hot"); err != nil {
			aborted = true
			break
		}
		if err := s.Write(i, "hot", int64(i)); err != nil {
			aborted = true
			break
		}
		if err := s.Commit(i); err != nil {
			aborted = true
			break
		}
		prev = i
	}
	_ = prev
	if !aborted {
		t.Skip("space not exhausted within 200 chained transactions")
	}
	if s.Exhausted() == 0 {
		t.Fatal("abort not attributed to fragmentation")
	}
}

// With compaction enabled the same hot-item chain never starves: the
// space is renumbered when it runs out, at the cost the paper's vectors
// never pay.
func TestCompactionPreventsStarvation(t *testing.T) {
	s := New(storage.New(), Options{Policy: SplitMid})
	for i := 1; i <= 200; i++ {
		s.Begin(i)
		if _, err := s.Read(i, "hot"); err != nil {
			t.Fatalf("txn %d read: %v", i, err)
		}
		if err := s.Write(i, "hot", int64(i)); err != nil {
			t.Fatalf("txn %d write: %v", i, err)
		}
		if err := s.Commit(i); err != nil {
			t.Fatalf("txn %d commit: %v", i, err)
		}
	}
	if s.Compactions() == 0 {
		t.Fatal("expected at least one compaction over a 200-deep chain")
	}
}

func TestSplitPolicies(t *testing.T) {
	for _, pol := range []SplitPolicy{SplitMid, SplitLow, SplitHigh} {
		s := New(storage.New(), Options{Policy: pol})
		s.Begin(1)
		s.Begin(2)
		if _, err := s.Read(1, "x"); err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
		if err := s.Write(2, "x", 1); err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
		if err := s.Commit(2); err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
		if err := s.Commit(1); err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	s := New(storage.New(), Options{})
	s.Begin(1)
	if err := s.Write(1, "x", 3); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(1, "x")
	if err != nil || v != 3 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}
