package sched

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

func TestMTCommitPublishes(t *testing.T) {
	st := storage.New()
	m := NewMT(st, MTOptions{Core: engine.Options{K: 2}})
	m.Begin(1)
	if _, err := m.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, "x", 7); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 0 {
		t.Fatal("dirty write visible")
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 7 {
		t.Fatal("write lost")
	}
}

func TestMTReadYourOwnWrite(t *testing.T) {
	m := NewMT(storage.New(), MTOptions{Core: engine.Options{K: 2}})
	m.Begin(1)
	if err := m.Write(1, "x", 3); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(1, "x")
	if err != nil || v != 3 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestMTNames(t *testing.T) {
	st := storage.New()
	if got := NewMT(st, MTOptions{Core: engine.Options{K: 3}}).Name(); got != "MT(3)" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewMT(st, MTOptions{Core: engine.Options{K: 3}, DeferWrites: true}).Name(); got != "MT(3)/deferred" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewComposite(st, 2, engine.Options{}).Name(); got != "MT(2+)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestMTImmediateRejectsConflictingWrite(t *testing.T) {
	m := NewMT(storage.New(), MTOptions{Core: engine.Options{K: 2}})
	// Fig. 5 shape: W1[x] W2[x] R3[y] then W3[x] must abort.
	m.Begin(1)
	if err := m.Write(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	m.Begin(2)
	if err := m.Write(2, "x", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	m.Begin(3)
	if _, err := m.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	err := m.Write(3, "x", 3)
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Blocker != 2 {
		t.Fatalf("blocker = %+v", err)
	}
}

func TestMTDeferredValidatesAtCommit(t *testing.T) {
	m := NewMT(storage.New(), MTOptions{Core: engine.Options{K: 2}, DeferWrites: true})
	m.Begin(3)
	if _, err := m.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	// Deferred mode: the write buffers fine...
	if err := m.Write(3, "x", 3); err != nil {
		t.Fatal(err)
	}
	// ...while two later writers move WT(x) past T3.
	m.Begin(1)
	if err := m.Write(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	m.Begin(2)
	if err := m.Write(2, "x", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	// Commit-time validation of T3's write must fail (TS(3) < TS(2)).
	if err := m.Commit(3); !errors.Is(err, ErrAbort) {
		t.Fatalf("want commit abort, got %v", err)
	}
}

func TestMTStarvationFixAcrossRetries(t *testing.T) {
	m := NewMT(storage.New(), MTOptions{
		Core: engine.Options{K: 2, StarvationAvoidance: true},
	})
	m.Begin(1)
	m.Write(1, "x", 1)
	m.Commit(1)
	m.Begin(2)
	m.Write(2, "x", 2)
	m.Commit(2)
	m.Begin(3)
	if _, err := m.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(3, "x", 3); !errors.Is(err, ErrAbort) {
		t.Fatalf("setup: want abort, got %v", err)
	}
	m.Abort(3)
	// Retry with the same id: the reseeded vector lets it through.
	m.Begin(3)
	if _, err := m.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(3, "x", 3); err != nil {
		t.Fatalf("retried write rejected: %v", err)
	}
	if err := m.Commit(3); err != nil {
		t.Fatal(err)
	}
}

func TestMTThomasRuleDropsWrite(t *testing.T) {
	st := storage.New()
	m := NewMT(st, MTOptions{Core: engine.Options{K: 2, ThomasWriteRule: true}})
	// Build TS(2) < TS(1) via a read-write conflict on z (T2 reads, T1
	// writes — no dirty read involved), then T1 writes x and commits;
	// T2's obsolete write of x is accepted-and-ignored.
	m.Begin(2)
	if _, err := m.Read(2, "z"); err != nil {
		t.Fatal(err)
	}
	m.Begin(1)
	if err := m.Write(1, "z", 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, "x", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(2, "x", 20); err != nil {
		t.Fatalf("Thomas write should be accepted-and-ignored: %v", err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 10 {
		t.Fatalf("x = %d, want 10 (obsolete write dropped)", st.Get("x"))
	}
	if st.Get("z") != 7 {
		t.Fatalf("z = %d, want 7", st.Get("z"))
	}
}

// An operation without Begin — a stray from an abandoned (deadline- or
// timeout-expired) attempt whose incarnation was already aborted — must
// answer with a plain abort, not a panic: the runtime's abandonment
// design guarantees such stragglers exist.
func TestMTOpWithoutBeginAborts(t *testing.T) {
	m := NewMT(storage.New(), MTOptions{Core: engine.Options{K: 2}})
	if _, err := m.Read(1, "x"); !errors.Is(err, ErrAbort) {
		t.Fatalf("read without Begin: err = %v, want ErrAbort", err)
	}
	if err := m.Write(1, "x", 1); !errors.Is(err, ErrAbort) {
		t.Fatalf("write without Begin: err = %v, want ErrAbort", err)
	}
	if err := m.Commit(1); !errors.Is(err, ErrAbort) {
		t.Fatalf("commit without Begin: err = %v, want ErrAbort", err)
	}
}

func TestCompositeRuntimeBasic(t *testing.T) {
	st := storage.New()
	c := NewComposite(st, 2, engine.Options{})
	c.Begin(1)
	if _, err := c.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(1, "x", 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 5 {
		t.Fatal("write lost")
	}
}

func TestCompositeEpochRestart(t *testing.T) {
	st := storage.New()
	c := NewComposite(st, 1, engine.Options{}) // single subprotocol: easy to stop
	// Drive MT(1) into a reject: Fig. 5 shape.
	c.Begin(1)
	c.Write(1, "x", 1)
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	// T3 reads y early, so its scalar timestamp precedes T2's.
	c.Begin(3)
	c.Begin(4)
	if _, err := c.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(4, "z"); err != nil {
		t.Fatal(err)
	}
	c.Begin(2)
	c.Write(2, "x", 2)
	if err := c.Commit(2); err != nil {
		t.Fatal(err)
	}
	// T3's conflicting write (validated at commit) stops MT(1): all
	// subprotocols stopped, epoch restart.
	if err := c.Write(3, "x", 3); err != nil {
		t.Fatalf("deferred write must buffer: %v", err)
	}
	if err := c.Commit(3); !errors.Is(err, ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
	// T4 belongs to the old epoch: its next operation aborts too.
	if _, err := c.Read(4, "z"); !errors.Is(err, ErrAbort) {
		t.Fatal("old-epoch transaction survived the restart")
	}
	c.Abort(4)
	// Fresh transactions proceed in the new epoch.
	c.Begin(5)
	if _, err := c.Read(5, "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(5); err != nil {
		t.Fatal(err)
	}
}

func TestMTConcurrentUse(t *testing.T) {
	st := storage.New()
	m := NewMT(st, MTOptions{Core: engine.Options{K: 3, StarvationAvoidance: true}})
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := 0
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for attempt := 0; attempt < 50; attempt++ {
				m.Begin(id)
				if _, err := m.Read(id, "a"); err != nil {
					m.Abort(id)
					continue
				}
				if err := m.Write(id, "b", int64(id)); err != nil {
					m.Abort(id)
					continue
				}
				if err := m.Commit(id); err != nil {
					m.Abort(id)
					continue
				}
				mu.Lock()
				committed++
				mu.Unlock()
				return
			}
		}(w)
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("no transaction committed")
	}
}
