package sched_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/oplog"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// equivPair is a pair under differential test: a coarse reference
// scheduler and its striped subject, over separate but identically
// seeded stores. Both sides must implement DurableCounters so the
// suite can assert watermark parity on top of behavioural parity.
type equivPair struct {
	ref, subj     sched.Scheduler
	rstore, store *storage.Store
	deferred      bool
}

// newMTPair builds the original MT pair: the retained coarse
// global-mutex adapter as the reference, the striped adapter as the
// subject.
func newMTPair(opts sched.MTOptions) *equivPair {
	rs, ss := storage.New(), storage.New()
	return &equivPair{
		ref:      sched.NewMT(rs, opts),
		subj:     sched.NewMTStriped(ss, opts),
		rstore:   rs,
		store:    ss,
		deferred: opts.DeferWrites,
	}
}

// runEquivWorkload interleaves the workload's transactions operation by
// operation (seeded round-robin, fully deterministic) through BOTH
// adapters, asserting identical outcomes event by event: read values,
// accept/reject verdicts, abort blockers, commit results. Aborted
// transactions are retried once with the same id (exercising the
// starvation-fix reseed on both sides). Returns the accepted op log
// (identical for both by construction) restricted to committed
// transactions, plus the committed set.
func runEquivWorkload(t *testing.T, pair *equivPair, specs []txn.Spec, seed int64) *oplog.Log {
	t.Helper()
	type state struct {
		spec    txn.Spec
		next    int // next op index
		retries int // incarnations used
		ops     []oplog.Op
	}
	rng := rand.New(rand.NewSource(seed))
	// Admission window: like the runtime's worker pool, only a handful of
	// transactions are live at once; the rest queue behind them.
	const window = 4
	pending := specs
	var livea []*state
	admit := func() {
		for len(livea) < window && len(pending) > 0 {
			sp := pending[0]
			pending = pending[1:]
			livea = append(livea, &state{spec: sp})
			pair.ref.Begin(sp.ID)
			pair.subj.Begin(sp.ID)
		}
	}
	admit()
	committed := map[int]bool{}
	var committedOps []oplog.Op
	abortBoth := func(st *state) bool {
		// Returns true if the transaction got a retry incarnation.
		pair.ref.Abort(st.spec.ID)
		pair.subj.Abort(st.spec.ID)
		st.ops = nil
		if st.retries >= 3 {
			return false
		}
		st.retries++
		st.next = 0
		pair.ref.Begin(st.spec.ID)
		pair.subj.Begin(st.spec.ID)
		return true
	}
	for len(livea) > 0 {
		i := rng.Intn(len(livea))
		st := livea[i]
		id := st.spec.ID
		drop := false
		if st.next < len(st.spec.Ops) {
			op := st.spec.Ops[st.next]
			if op.Kind == oplog.Read {
				cv, cerr := pair.ref.Read(id, op.Item)
				sv, serr := pair.subj.Read(id, op.Item)
				assertSameOutcome(t, id, st.next, "read "+op.Item, cv, cerr, sv, serr)
				if cerr != nil {
					drop = !abortBoth(st)
				} else {
					st.ops = append(st.ops, oplog.R(id, op.Item))
					st.next++
				}
			} else {
				v := int64(id)*1000 + int64(st.next)
				cerr := pair.ref.Write(id, op.Item, v)
				serr := pair.subj.Write(id, op.Item, v)
				assertSameOutcome(t, id, st.next, "write "+op.Item, 0, cerr, 0, serr)
				if cerr != nil {
					drop = !abortBoth(st)
				} else {
					if !pair.deferred {
						st.ops = append(st.ops, oplog.W(id, op.Item))
					}
					st.next++
				}
			}
		} else {
			cerr := pair.ref.Commit(id)
			serr := pair.subj.Commit(id)
			assertSameOutcome(t, id, st.next, "commit", 0, cerr, 0, serr)
			if cerr != nil {
				drop = !abortBoth(st)
			} else {
				if pair.deferred {
					// Commit-time validation replays the buffered writes in
					// first-write order — reconstruct that order here.
					seen := map[string]bool{}
					for _, op := range st.spec.Ops {
						if op.Kind == oplog.Write && !seen[op.Item] {
							seen[op.Item] = true
							st.ops = append(st.ops, oplog.W(id, op.Item))
						}
					}
				}
				committed[id] = true
				committedOps = append(committedOps, st.ops...)
				drop = true
			}
		}
		if drop {
			livea[i] = livea[len(livea)-1]
			livea = livea[:len(livea)-1]
			admit()
		}
	}
	if len(committed) == 0 {
		t.Fatal("no transaction committed")
	}
	return oplog.NewLog(committedOps...)
}

func assertSameOutcome(t *testing.T, id, opIdx int, what string, cv int64, cerr error, sv int64, serr error) {
	t.Helper()
	if (cerr == nil) != (serr == nil) {
		t.Fatalf("t%d.op%d %s: ref err=%v subj err=%v", id, opIdx, what, cerr, serr)
	}
	if cerr == nil {
		if cv != sv {
			t.Fatalf("t%d.op%d %s: ref value %d subj value %d", id, opIdx, what, cv, sv)
		}
		return
	}
	var ca, sa *sched.AbortError
	if !errors.As(cerr, &ca) || !errors.As(serr, &sa) {
		t.Fatalf("t%d.op%d %s: non-abort errors ref=%v subj=%v", id, opIdx, what, cerr, serr)
	}
	if ca.Blocker != sa.Blocker || ca.Reason != sa.Reason {
		t.Fatalf("t%d.op%d %s: ref abort (%s, blocker %d) subj abort (%s, blocker %d)",
			id, opIdx, what, ca.Reason, ca.Blocker, sa.Reason, sa.Blocker)
	}
}

// assertPairEquiv runs the workload through the pair and checks final
// stores, durable watermarks and D-serializability of the committed log.
func assertPairEquiv(t *testing.T, pair *equivPair, wcfg workload.Config, seed int64) {
	t.Helper()
	wcfg.Seed = seed
	log := runEquivWorkload(t, pair, wcfg.Generate(), seed*977)
	cs, ss := pair.rstore.State(), pair.store.State()
	if !reflect.DeepEqual(cs.Data, ss.Data) {
		t.Fatalf("final stores differ:\nref  %v\nsubj %v", cs.Data, ss.Data)
	}
	if !reflect.DeepEqual(cs.ItemVers, ss.ItemVers) || cs.Version != ss.Version {
		t.Fatalf("store versions differ: ref v%d %v, subj v%d %v",
			cs.Version, cs.ItemVers, ss.Version, ss.ItemVers)
	}
	// Protocol-level parity: the durable counter watermarks every
	// engine-backed adapter exports must agree.
	cl, cu := pair.ref.(sched.DurableCounters).WALCounters()
	sl, su := pair.subj.(sched.DurableCounters).WALCounters()
	if cl != sl || cu != su {
		t.Fatalf("watermarks: ref (%d,%d) subj (%d,%d)", cl, cu, sl, su)
	}
	// Every committed log must be DSR (serializable in the paper's
	// D-serializability sense, checked via the internal/graph
	// dependency machinery).
	if !classify.DSR(log) {
		t.Fatalf("committed log is not DSR: %v", log)
	}
}

func equivWorkloads() map[string]workload.Config {
	return map[string]workload.Config{
		"uniform":   {Txns: 24, OpsPerTxn: 4, Items: 64, ReadFraction: 0.6},
		"contended": {Txns: 24, OpsPerTxn: 4, Items: 4, ReadFraction: 0.5},
		"zipf":      {Txns: 24, OpsPerTxn: 3, Items: 32, ReadFraction: 0.5, ZipfS: 1.4},
		"hotspot":   {Txns: 20, OpsPerTxn: 4, Items: 32, HotItems: 2, HotFraction: 0.6, ReadFraction: 0.5},
		"twostep":   {Txns: 30, Items: 16, TwoStep: true},
	}
}

// TestStripedEquivalence is the MT(k) differential suite: for every
// protocol variant × workload × seed, the striped adapter must produce
// exactly the reference adapter's behaviour, the two stores must end
// identical, and the committed log must be DSR.
func TestStripedEquivalence(t *testing.T) {
	variants := map[string]sched.MTOptions{
		"k2-immediate":    {Core: engine.Options{K: 2}},
		"k2-deferred":     {Core: engine.Options{K: 2}, DeferWrites: true},
		"k3-immediate":    {Core: engine.Options{K: 3, StarvationAvoidance: true}},
		"k3-deferred":     {Core: engine.Options{K: 3, ThomasWriteRule: true, StarvationAvoidance: true}, DeferWrites: true},
		"k1-deferred":     {Core: engine.Options{K: 1}, DeferWrites: true},
		"k2-hot-deferred": {Core: engine.Options{K: 2, HotThreshold: 4}, DeferWrites: true},
	}
	for vname, opts := range variants {
		for wname, wcfg := range equivWorkloads() {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", vname, wname, seed)
				t.Run(name, func(t *testing.T) {
					assertPairEquiv(t, newMTPair(opts), wcfg, seed)
				})
			}
		}
	}
}

// TestEngineVariantEquivalence extends the differential matrix to the
// other engine-backed families: the MT(k1,k2) nested adapter, the
// MT(k⁺) composite and the DMT(k) cluster, each coarse-reference vs
// striped-subject, over the full workload × seed grid.
func TestEngineVariantEquivalence(t *testing.T) {
	pairs := map[string]func() *equivPair{
		"nested-k2k2": func() *equivPair {
			rs, ss := storage.New(), storage.New()
			unit := func(txn, lvl int) int { return txn % 3 }
			return &equivPair{
				ref:      sched.NewNested(rs, sched.NestedOptions{Ks: []int{2, 2}, UnitOf: unit, Coarse: true}),
				subj:     sched.NewNested(ss, sched.NestedOptions{Ks: []int{2, 2}, UnitOf: unit}),
				rstore:   rs,
				store:    ss,
				deferred: true,
			}
		},
		"composite-k3": func() *equivPair {
			rs, ss := storage.New(), storage.New()
			return &equivPair{
				ref:      sched.NewCompositeCoarse(rs, 3, engine.Options{}),
				subj:     sched.NewComposite(ss, 3, engine.Options{}),
				rstore:   rs,
				store:    ss,
				deferred: true,
			}
		},
		"dmt-k2-3sites": func() *equivPair {
			rs, ss := storage.New(), storage.New()
			return &equivPair{
				ref:    sched.NewDMTCoarse(rs, dmt.Options{K: 2, Sites: 3}),
				subj:   sched.NewDMT(ss, dmt.Options{K: 2, Sites: 3}),
				rstore: rs,
				store:  ss,
			}
		},
	}
	for pname, mk := range pairs {
		for wname, wcfg := range equivWorkloads() {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", pname, wname, seed)
				t.Run(name, func(t *testing.T) {
					assertPairEquiv(t, mk(), wcfg, seed)
				})
			}
		}
	}
}

// TestStripedPartialRestartParity drives the Section VI-C-1 partial
// rollback through both adapters and asserts the same outcome.
func TestStripedPartialRestartParity(t *testing.T) {
	opts := sched.MTOptions{Core: engine.Options{K: 2, StarvationAvoidance: true}}
	rs, ss := storage.New(), storage.New()
	coarse, striped := sched.NewMT(rs, opts), sched.NewMTStriped(ss, opts)
	run := func(m sched.Scheduler, pr interface {
		TryPartialRestart(int, []string) bool
	}) (bool, error) {
		m.Begin(1)
		m.Write(1, "x", 1)
		if err := m.Commit(1); err != nil {
			return false, err
		}
		m.Begin(2)
		m.Write(2, "x", 2)
		if err := m.Commit(2); err != nil {
			return false, err
		}
		m.Begin(3)
		if _, err := m.Read(3, "y"); err != nil {
			return false, err
		}
		if err := m.Write(3, "x", 3); !errors.Is(err, sched.ErrAbort) {
			return false, fmt.Errorf("setup: want write reject, got %v", err)
		}
		ok := pr.TryPartialRestart(3, []string{"y"})
		if !ok {
			return false, nil
		}
		if err := m.Write(3, "x", 3); err != nil {
			return false, fmt.Errorf("retried write after partial restart: %v", err)
		}
		return true, m.Commit(3)
	}
	cok, cerr := run(coarse, coarse)
	sok, serr := run(striped, striped)
	if cok != sok || (cerr == nil) != (serr == nil) {
		t.Fatalf("partial restart diverges: coarse (%v,%v) striped (%v,%v)", cok, cerr, sok, serr)
	}
	if !cok {
		t.Fatal("partial restart failed on both (want success)")
	}
	if cv, sv := rs.Get("x"), ss.Get("x"); cv != sv {
		t.Fatalf("x: coarse %d striped %d", cv, sv)
	}
}
