package sched_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/oplog"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// refPair is the pair under differential test: the retained coarse
// global-mutex MT adapter as the reference, the striped adapter as the
// subject, over separate but identically seeded stores.
type refPair struct {
	coarse  *sched.MT
	striped *sched.MTStriped
	cstore  *storage.Store
	sstore  *storage.Store
}

func newRefPair(opts sched.MTOptions) *refPair {
	cs, ss := storage.New(), storage.New()
	return &refPair{
		coarse:  sched.NewMT(cs, opts),
		striped: sched.NewMTStriped(ss, opts),
		cstore:  cs,
		sstore:  ss,
	}
}

// runEquivWorkload interleaves the workload's transactions operation by
// operation (seeded round-robin, fully deterministic) through BOTH
// adapters, asserting identical outcomes event by event: read values,
// accept/reject verdicts, abort blockers, commit results. Aborted
// transactions are retried once with the same id (exercising the
// starvation-fix reseed on both sides). Returns the accepted op log
// (identical for both by construction) restricted to committed
// transactions, plus the committed set.
func runEquivWorkload(t *testing.T, pair *refPair, specs []txn.Spec, seed int64, deferred bool) *oplog.Log {
	t.Helper()
	type state struct {
		spec    txn.Spec
		next    int // next op index
		retries int // incarnations used
		ops     []oplog.Op
	}
	rng := rand.New(rand.NewSource(seed))
	// Admission window: like the runtime's worker pool, only a handful of
	// transactions are live at once; the rest queue behind them.
	const window = 4
	pending := specs
	var livea []*state
	admit := func() {
		for len(livea) < window && len(pending) > 0 {
			sp := pending[0]
			pending = pending[1:]
			livea = append(livea, &state{spec: sp})
			pair.coarse.Begin(sp.ID)
			pair.striped.Begin(sp.ID)
		}
	}
	admit()
	committed := map[int]bool{}
	var committedOps []oplog.Op
	abortBoth := func(st *state) bool {
		// Returns true if the transaction got a retry incarnation.
		pair.coarse.Abort(st.spec.ID)
		pair.striped.Abort(st.spec.ID)
		st.ops = nil
		if st.retries >= 3 {
			return false
		}
		st.retries++
		st.next = 0
		pair.coarse.Begin(st.spec.ID)
		pair.striped.Begin(st.spec.ID)
		return true
	}
	for len(livea) > 0 {
		i := rng.Intn(len(livea))
		st := livea[i]
		id := st.spec.ID
		drop := false
		if st.next < len(st.spec.Ops) {
			op := st.spec.Ops[st.next]
			if op.Kind == oplog.Read {
				cv, cerr := pair.coarse.Read(id, op.Item)
				sv, serr := pair.striped.Read(id, op.Item)
				assertSameOutcome(t, id, st.next, "read "+op.Item, cv, cerr, sv, serr)
				if cerr != nil {
					drop = !abortBoth(st)
				} else {
					st.ops = append(st.ops, oplog.R(id, op.Item))
					st.next++
				}
			} else {
				v := int64(id)*1000 + int64(st.next)
				cerr := pair.coarse.Write(id, op.Item, v)
				serr := pair.striped.Write(id, op.Item, v)
				assertSameOutcome(t, id, st.next, "write "+op.Item, 0, cerr, 0, serr)
				if cerr != nil {
					drop = !abortBoth(st)
				} else {
					if !deferred {
						st.ops = append(st.ops, oplog.W(id, op.Item))
					}
					st.next++
				}
			}
		} else {
			cerr := pair.coarse.Commit(id)
			serr := pair.striped.Commit(id)
			assertSameOutcome(t, id, st.next, "commit", 0, cerr, 0, serr)
			if cerr != nil {
				drop = !abortBoth(st)
			} else {
				if deferred {
					// Commit-time validation replays the buffered writes in
					// first-write order — reconstruct that order here.
					seen := map[string]bool{}
					for _, op := range st.spec.Ops {
						if op.Kind == oplog.Write && !seen[op.Item] {
							seen[op.Item] = true
							st.ops = append(st.ops, oplog.W(id, op.Item))
						}
					}
				}
				committed[id] = true
				committedOps = append(committedOps, st.ops...)
				drop = true
			}
		}
		if drop {
			livea[i] = livea[len(livea)-1]
			livea = livea[:len(livea)-1]
			admit()
		}
	}
	if len(committed) == 0 {
		t.Fatal("no transaction committed")
	}
	return oplog.NewLog(committedOps...)
}

func assertSameOutcome(t *testing.T, id, opIdx int, what string, cv int64, cerr error, sv int64, serr error) {
	t.Helper()
	if (cerr == nil) != (serr == nil) {
		t.Fatalf("t%d.op%d %s: coarse err=%v striped err=%v", id, opIdx, what, cerr, serr)
	}
	if cerr == nil {
		if cv != sv {
			t.Fatalf("t%d.op%d %s: coarse value %d striped value %d", id, opIdx, what, cv, sv)
		}
		return
	}
	var ca, sa *sched.AbortError
	if !errors.As(cerr, &ca) || !errors.As(serr, &sa) {
		t.Fatalf("t%d.op%d %s: non-abort errors coarse=%v striped=%v", id, opIdx, what, cerr, serr)
	}
	if ca.Blocker != sa.Blocker || ca.Reason != sa.Reason {
		t.Fatalf("t%d.op%d %s: coarse abort (%s, blocker %d) striped abort (%s, blocker %d)",
			id, opIdx, what, ca.Reason, ca.Blocker, sa.Reason, sa.Blocker)
	}
}

func equivWorkloads() map[string]workload.Config {
	return map[string]workload.Config{
		"uniform":   {Txns: 24, OpsPerTxn: 4, Items: 64, ReadFraction: 0.6},
		"contended": {Txns: 24, OpsPerTxn: 4, Items: 4, ReadFraction: 0.5},
		"zipf":      {Txns: 24, OpsPerTxn: 3, Items: 32, ReadFraction: 0.5, ZipfS: 1.4},
		"hotspot":   {Txns: 20, OpsPerTxn: 4, Items: 32, ReadFraction: 0.5, HotItems: 2, HotFraction: 0.6},
		"twostep":   {Txns: 30, Items: 16, TwoStep: true},
	}
}

// TestStripedEquivalence is the differential suite: for every protocol
// variant × workload × seed, the striped adapter must produce exactly
// the reference adapter's behaviour, the two stores must end
// identical, and the committed log must be DSR.
func TestStripedEquivalence(t *testing.T) {
	variants := map[string]sched.MTOptions{
		"k2-immediate":    {Core: core.Options{K: 2}},
		"k2-deferred":     {Core: core.Options{K: 2}, DeferWrites: true},
		"k3-immediate":    {Core: core.Options{K: 3, StarvationAvoidance: true}},
		"k3-deferred":     {Core: core.Options{K: 3, ThomasWriteRule: true, StarvationAvoidance: true}, DeferWrites: true},
		"k1-deferred":     {Core: core.Options{K: 1}, DeferWrites: true},
		"k2-hot-deferred": {Core: core.Options{K: 2, HotThreshold: 4}, DeferWrites: true},
	}
	for vname, opts := range variants {
		for wname, wcfg := range equivWorkloads() {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", vname, wname, seed)
				t.Run(name, func(t *testing.T) {
					wcfg.Seed = seed
					pair := newRefPair(opts)
					log := runEquivWorkload(t, pair, wcfg.Generate(), seed*977, opts.DeferWrites)
					cs, ss := pair.cstore.State(), pair.sstore.State()
					if !reflect.DeepEqual(cs.Data, ss.Data) {
						t.Fatalf("final stores differ:\ncoarse  %v\nstriped %v", cs.Data, ss.Data)
					}
					if !reflect.DeepEqual(cs.ItemVers, ss.ItemVers) || cs.Version != ss.Version {
						t.Fatalf("store versions differ: coarse v%d %v, striped v%d %v",
							cs.Version, cs.ItemVers, ss.Version, ss.ItemVers)
					}
					// Protocol-level parity: counters and live vectors.
					cl, cu := pair.coarse.Core().Counters()
					sl, su := pair.striped.Striped().Counters()
					if cl != sl || cu != su {
						t.Fatalf("counters: coarse (%d,%d) striped (%d,%d)", cl, cu, sl, su)
					}
					// Every committed log must be DSR (serializable in the
					// paper's D-serializability sense, checked via the
					// internal/graph dependency machinery).
					if !classify.DSR(log) {
						t.Fatalf("committed log is not DSR: %v", log)
					}
				})
			}
		}
	}
}

// TestStripedPartialRestartParity drives the Section VI-C-1 partial
// rollback through both adapters and asserts the same outcome.
func TestStripedPartialRestartParity(t *testing.T) {
	opts := sched.MTOptions{Core: core.Options{K: 2, StarvationAvoidance: true}}
	pair := newRefPair(opts)
	run := func(m sched.Scheduler, pr interface {
		TryPartialRestart(int, []string) bool
	}) (bool, error) {
		m.Begin(1)
		m.Write(1, "x", 1)
		if err := m.Commit(1); err != nil {
			return false, err
		}
		m.Begin(2)
		m.Write(2, "x", 2)
		if err := m.Commit(2); err != nil {
			return false, err
		}
		m.Begin(3)
		if _, err := m.Read(3, "y"); err != nil {
			return false, err
		}
		if err := m.Write(3, "x", 3); !errors.Is(err, sched.ErrAbort) {
			return false, fmt.Errorf("setup: want write reject, got %v", err)
		}
		ok := pr.TryPartialRestart(3, []string{"y"})
		if !ok {
			return false, nil
		}
		if err := m.Write(3, "x", 3); err != nil {
			return false, fmt.Errorf("retried write after partial restart: %v", err)
		}
		return true, m.Commit(3)
	}
	cok, cerr := run(pair.coarse, pair.coarse)
	sok, serr := run(pair.striped, pair.striped)
	if cok != sok || (cerr == nil) != (serr == nil) {
		t.Fatalf("partial restart diverges: coarse (%v,%v) striped (%v,%v)", cok, cerr, sok, serr)
	}
	if !cok {
		t.Fatal("partial restart failed on both (want success)")
	}
	if cv, sv := pair.cstore.Get("x"), pair.sstore.Get("x"); cv != sv {
		t.Fatalf("x: coarse %d striped %d", cv, sv)
	}
}
