package sched_test

import (
	"errors"
	"testing"

	"repro/internal/classify"
	"repro/internal/engine"
	"repro/internal/history"
	"repro/internal/sched"
	"repro/internal/storage"
)

// TestImmediateModeWWGuard pins the lost-update fix the schedule
// explorer found (internal/explore) on the mix-3x2 workload: in
// immediate mode, WT(x) is published at write time but data only at
// commit, so two live transactions holding accepted writes on the same
// item publish in commit order — which inverts the decided write order
// for one of them. The serving order below used to commit all three
// transactions with the committed history
//
//	R3[a] R2[b] W2[a] R1[a] W3[a] W1[b]
//
// which is cyclic (T3 -> T2 -> T1 -> T3): T3 read the original a, T1
// read T2's a, yet T3's stale write published last. The guard aborts
// the second live writer instead.
func TestImmediateModeWWGuard(t *testing.T) {
	builds := map[string]func(*storage.Store) sched.Scheduler{
		"coarse": func(s *storage.Store) sched.Scheduler {
			return sched.NewMT(s, sched.MTOptions{Core: engine.Options{K: 2}})
		},
		"striped": func(s *storage.Store) sched.Scheduler {
			return sched.NewMTStriped(s, sched.MTOptions{Core: engine.Options{K: 2}})
		},
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			store := storage.New()
			store.Set("a", 10)
			store.Set("b", 20)
			rec := history.Wrap(build(store))

			// T1: R a, W b; T2: W a, R b; T3: R a, W a — served in the
			// explorer's failing order.
			rec.Begin(3)
			if _, err := rec.Read(3, "a"); err != nil {
				t.Fatalf("R3(a): %v", err)
			}
			if err := rec.Write(3, "a", 300); err != nil {
				t.Fatalf("W3(a): %v", err)
			}
			rec.Begin(2)
			err := rec.Write(2, "a", 200)
			if err == nil {
				t.Fatal("W2(a) accepted with T3's write to a still uncommitted")
			}
			var ae *sched.AbortError
			if !errors.As(err, &ae) || ae.Blocker != 3 {
				t.Fatalf("W2(a) error %v, want abort with blocker 3", err)
			}
			rec.Abort(2)

			// T2 retries after T3 commits; everything then serializes.
			if err := rec.Commit(3); err != nil {
				t.Fatalf("C3: %v", err)
			}
			rec.Begin(2)
			if err := rec.Write(2, "a", 201); err != nil {
				t.Fatalf("retry W2(a): %v", err)
			}
			if _, err := rec.Read(2, "b"); err != nil {
				t.Fatalf("retry R2(b): %v", err)
			}
			if err := rec.Commit(2); err != nil {
				t.Fatalf("retry C2: %v", err)
			}
			rec.Begin(1)
			if _, err := rec.Read(1, "a"); err != nil {
				t.Fatalf("R1(a): %v", err)
			}
			if err := rec.Write(1, "b", 100); err != nil {
				t.Fatalf("W1(b): %v", err)
			}
			if err := rec.Commit(1); err != nil {
				t.Fatalf("C1: %v", err)
			}

			l := rec.CommittedLog()
			if !classify.DSR(l) {
				t.Fatalf("committed history not DSR: %s", l)
			}
			if v := store.Get("a"); v != 201 {
				t.Fatalf("final a = %d, want T2's 201 (last decided writer)", v)
			}
		})
	}
}

// TestImmediateModeOwnRewrite makes sure the guard does not misfire on
// a transaction rewriting its own item or writing after a committed
// writer.
func TestImmediateModeOwnRewrite(t *testing.T) {
	store := storage.New()
	store.Set("a", 1)
	m := sched.NewMT(store, sched.MTOptions{Core: engine.Options{K: 2}})
	m.Begin(1)
	if err := m.Write(1, "a", 2); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := m.Write(1, "a", 3); err != nil {
		t.Fatalf("own rewrite aborted: %v", err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatalf("commit: %v", err)
	}
	m.Begin(2)
	if err := m.Write(2, "a", 4); err != nil {
		t.Fatalf("write after committed writer aborted: %v", err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatalf("commit 2: %v", err)
	}
}
