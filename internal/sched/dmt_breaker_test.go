package sched

import (
	"errors"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/fault"
)

// failHome drives one attempt homed at the crashed site and asserts it
// comes back unavailable, returning the observed error for inspection.
func failHome(t *testing.T, d *DMT, id int) error {
	t.Helper()
	d.Begin(id)
	_, err := d.Read(id, "x")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("read on crashed home: %v, want ErrUnavailable", err)
	}
	d.Abort(id)
	return err
}

// A flapping site must trip the breaker after DownAfter consecutive
// contact failures, fail fast while open, admit a half-open probe after
// the cooldown that re-closes the circuit, and re-trip on the next
// crash.
func TestDMTBreakerFlappingSite(t *testing.T) {
	d, _ := newParkingDMT(t, false)
	br := admit.NewBreaker(2, admit.BreakerOptions{
		Health:   fault.HealthOptions{SuspectAfter: 1, DownAfter: 2},
		Cooldown: 20 * time.Millisecond,
	})
	d.SetBreaker(br)

	for cycle := 1; cycle <= 2; cycle++ {
		d.Cluster().CrashSite(1, false)
		// Two real contact failures drive the detector to Down and trip
		// the circuit; further attempts are refused without a contact.
		for i := 0; i < 4; i++ {
			failHome(t, d, 100*cycle+2*i+1) // odd ids home at site 1
		}
		if !br.Open(1) || br.Trips() != int64(cycle) {
			t.Fatalf("cycle %d: open=%v trips=%d, want open with %d trips",
				cycle, br.Open(1), br.Trips(), cycle)
		}
		ff := br.FastFails()
		failHome(t, d, 100*cycle+11)
		if br.FastFails() <= ff {
			t.Fatalf("cycle %d: open breaker did not fast-fail", cycle)
		}

		// Heal. Before the cooldown elapses the circuit stays open even
		// though the site is back; after it, the first attempt through is
		// the half-open probe, whose successful contact closes the circuit.
		d.Cluster().RecoverSite(1)
		if !br.Open(1) {
			t.Fatalf("cycle %d: circuit closed without a probe", cycle)
		}
		time.Sleep(25 * time.Millisecond)
		id := 100*cycle + 21
		d.Begin(id)
		if _, err := d.Read(id, "x"); err != nil {
			t.Fatalf("cycle %d: half-open probe failed: %v", cycle, err)
		}
		if err := d.Commit(id); err != nil {
			t.Fatalf("cycle %d: probe commit: %v", cycle, err)
		}
		if br.Open(1) {
			t.Fatalf("cycle %d: successful probe did not close the circuit", cycle)
		}
	}
	if br.Reprobes() < 2 {
		t.Fatalf("reprobes = %d, want >= 2 (one per heal)", br.Reprobes())
	}
	s := br.Stats()
	if s.Trips != 2 || s.Open != 0 {
		t.Fatalf("stats = %+v, want 2 trips, all closed", s)
	}
}

// An open breaker must not let an attempt park: the first parked
// attempt's failing probes trip the circuit, and every later attempt
// fails fast instead of burning its own parking deadline against the
// down site.
func TestDMTBreakerBeatsParking(t *testing.T) {
	d, _ := newParkingDMT(t, true)
	d.SetParking(Parking{Capacity: 4, Deadline: 50 * time.Millisecond, Poll: 100 * time.Microsecond})
	br := admit.NewBreaker(2, admit.BreakerOptions{
		Health:   fault.HealthOptions{SuspectAfter: 1, DownAfter: 2},
		Cooldown: time.Hour,
	})
	d.SetBreaker(br)
	d.Cluster().CrashSite(1, false)
	// The first attempt parks (the circuit is still closed) and its
	// probes feed the breaker's detector until the parking deadline
	// expires — by which point the circuit has tripped.
	failHome(t, d, 1)
	if !br.Open(1) || br.Trips() != 1 {
		t.Fatalf("open=%v trips=%d after parked probes, want tripped", br.Open(1), br.Trips())
	}
	if d.Degraded().Parked != 1 {
		t.Fatalf("parked = %d, want the first attempt parked", d.Degraded().Parked)
	}
	// Later attempts must return immediately without entering the queue.
	start := time.Now()
	failHome(t, d, 3)
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Fatalf("open breaker let the attempt park (waited %v)", waited)
	}
	if d.Degraded().Parked != 1 {
		t.Fatalf("parked = %d, want 1 with the circuit open", d.Degraded().Parked)
	}
}
