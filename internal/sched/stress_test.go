package sched_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/oplog"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// zipfItems returns a seeded zipf item picker over n items (heavily
// skewed: the storm concentrates on a handful of hot items).
func zipfItems(seed int64, n int) func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string {
		z := rand.NewZipf(rng, 1.3, 1, uint64(n-1))
		return workload.ItemName(int(z.Uint64()))
	}
}

// stormScheduler is the protocol surface the storm drives.
type stormScheduler interface {
	sched.Scheduler
}

// runStorm fires workers goroutines, each running attempts
// transactions with globally unique ids against s: a couple of reads
// and writes over zipf-skewed items, then commit; protocol aborts
// retry as a NEW transaction (fresh id), so the committed id set is
// unambiguous. Returns the set of committed transaction ids.
func runStorm(t *testing.T, s stormScheduler, workers, attempts, items int, seed int64) map[int]bool {
	t.Helper()
	var next atomic.Int64
	pick := zipfItems(seed, items)
	var mu sync.Mutex
	committed := make(map[int]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wseed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(wseed))
			for a := 0; a < attempts; a++ {
				id := int(next.Add(1))
				s.Begin(id)
				ok := true
				nops := 2 + rng.Intn(3)
				for o := 0; o < nops && ok; o++ {
					x := pick(rng)
					if rng.Intn(2) == 0 {
						if _, err := s.Read(id, x); err != nil {
							ok = false
						}
					} else {
						if err := s.Write(id, x, int64(id)); err != nil {
							ok = false
						}
					}
				}
				if ok && s.Commit(id) == nil {
					mu.Lock()
					committed[id] = true
					mu.Unlock()
				} else {
					s.Abort(id)
				}
			}
		}(seed + int64(w)*7919)
	}
	wg.Wait()
	if len(committed) == 0 {
		t.Fatal("storm committed nothing")
	}
	return committed
}

// assertKthColumnUnique asserts the protocol invariant the counters
// exist for: among live vectors (T_0 aside), no two share a defined
// k-th-column value.
func assertKthColumnUnique(t *testing.T, name string, k int, snap map[int]*core.Vector) {
	t.Helper()
	seen := make(map[int64]int)
	for id, v := range snap {
		if id == 0 {
			continue
		}
		e := v.Elem(k)
		if !e.Defined {
			continue
		}
		if prev, dup := seen[e.V]; dup {
			t.Fatalf("%s: k-th column value %d shared by txns %d and %d", name, e.V, prev, id)
		}
		seen[e.V] = id
	}
}

// TestStripedStressRace storms MT(k)/striped in both write modes under
// heavy zipf contention; -race checks the locking, the snapshot checks
// the k-th-column uniqueness invariant afterwards.
func TestStripedStressRace(t *testing.T) {
	for _, mode := range []struct {
		name     string
		deferred bool
	}{{"immediate", false}, {"deferred", true}} {
		for _, k := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/k%d", mode.name, k), func(t *testing.T) {
				st := storage.New()
				m := sched.NewMTStriped(st, sched.MTOptions{
					Core:        engine.Options{K: k, StarvationAvoidance: true},
					DeferWrites: mode.deferred,
				})
				runStorm(t, m, 8, 40, 24, int64(k)*31+1)
				assertKthColumnUnique(t, m.Name(), k, m.Striped().Snapshot())
			})
		}
	}
}

// TestStripedStressSerializable storms the deferred striped scheduler
// while recording every decision through the OnDecision hook (fired
// under the item latches, so per-item order is the true decision
// order), then asserts the committed log's dependency graph is acyclic
// — serializability of the storm's outcome. Conflict edges only ever
// connect same-item accesses, so the per-item ordering guarantee makes
// the graph exact.
func TestStripedStressSerializable(t *testing.T) {
	st := storage.New()
	m := sched.NewMTStriped(st, sched.MTOptions{
		Core:        engine.Options{K: 3, StarvationAvoidance: true},
		DeferWrites: true,
	})
	var mu sync.Mutex
	var decided []oplog.Op
	m.Striped().OnDecision = func(d core.Decision) {
		if d.Verdict == core.Accept {
			mu.Lock()
			decided = append(decided, d.Op)
			mu.Unlock()
		}
	}
	committed := runStorm(t, m, 8, 40, 16, 99)
	var ops []oplog.Op
	for _, op := range decided {
		if committed[op.Txn] {
			ops = append(ops, op)
		}
	}
	log := oplog.NewLog(ops...)
	g, _ := log.DependencyGraph()
	if g.HasCycle() {
		t.Fatalf("committed storm log has a dependency cycle (%d ops)", log.Len())
	}
}

// bankStorm runs concurrent transfers between accounts with retries
// and asserts the total balance is preserved — lost updates or
// half-applied transfers would break it.
func bankStorm(t *testing.T, s sched.Scheduler, seed int64) {
	t.Helper()
	const accounts, initial = 8, 1000
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct%02d", i)
	}
	// Fund the accounts through the scheduler itself.
	s.Begin(1)
	for _, a := range names {
		if err := s.Write(1, a, initial); err != nil {
			t.Fatalf("funding write: %v", err)
		}
	}
	if err := s.Commit(1); err != nil {
		t.Fatalf("funding commit: %v", err)
	}
	var next atomic.Int64
	next.Store(1)
	var wg sync.WaitGroup
	var transferred atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(wseed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(wseed))
			for a := 0; a < 30; a++ {
				src := names[rng.Intn(accounts)]
				dst := names[rng.Intn(accounts)]
				if src == dst {
					continue
				}
				amount := int64(1 + rng.Intn(5))
				for try := 0; try < 20; try++ {
					id := int(next.Add(1))
					s.Begin(id)
					sv, err := s.Read(id, src)
					if err == nil {
						var dv int64
						dv, err = s.Read(id, dst)
						if err == nil {
							if err = s.Write(id, src, sv-amount); err == nil {
								if err = s.Write(id, dst, dv+amount); err == nil {
									err = s.Commit(id)
								}
							}
						}
					}
					if err == nil {
						transferred.Add(1)
						break
					}
					s.Abort(id)
					if !errors.Is(err, sched.ErrAbort) {
						t.Errorf("transfer failed with non-abort error: %v", err)
						break
					}
				}
			}
		}(seed + int64(w)*104729)
	}
	wg.Wait()
	if transferred.Load() == 0 {
		t.Fatal("no transfer committed")
	}
	var store *storage.Store
	switch sc := s.(type) {
	case interface{ Store() *storage.Store }:
		store = sc.Store()
	default:
		t.Fatal("scheduler does not expose its store")
	}
	if sum := store.Sum(names); sum != accounts*initial {
		t.Fatalf("%s: total balance %d, want %d (serializability violated)",
			s.Name(), sum, accounts*initial)
	}
}

// storeExposer lets bankStorm reach the store backing each adapter.
type storeExposer struct {
	sched.Scheduler
	st *storage.Store
}

func (e storeExposer) Store() *storage.Store { return e.st }

// TestBankInvariantUnderStress runs the banking storm against every
// protocol the striping touched: MT(k)/striped in both modes, MT(k⁺),
// and DMT(k).
func TestBankInvariantUnderStress(t *testing.T) {
	cases := []struct {
		name  string
		build func(st *storage.Store) sched.Scheduler
	}{
		{"striped-immediate", func(st *storage.Store) sched.Scheduler {
			return sched.NewMTStriped(st, sched.MTOptions{Core: engine.Options{K: 3, StarvationAvoidance: true}})
		}},
		{"striped-deferred", func(st *storage.Store) sched.Scheduler {
			return sched.NewMTStriped(st, sched.MTOptions{Core: engine.Options{K: 3, StarvationAvoidance: true}, DeferWrites: true})
		}},
		{"composite", func(st *storage.Store) sched.Scheduler {
			return sched.NewComposite(st, 3, engine.Options{})
		}},
		{"dmt", func(st *storage.Store) sched.Scheduler {
			return sched.NewDMT(st, dmt.Options{K: 3, Sites: 4})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := storage.New()
			bankStorm(t, storeExposer{tc.build(st), st}, 7)
		})
	}
}

// TestCompositeStressRace storms MT(k⁺) (epoch restarts included) and
// then checks each subprotocol's k-th-column uniqueness.
func TestCompositeStressRace(t *testing.T) {
	st := storage.New()
	c := sched.NewComposite(st, 2, engine.Options{})
	runStorm(t, c, 8, 30, 16, 11)
	proto := c.Protocol()
	for h := 1; h <= proto.K(); h++ {
		assertKthColumnUnique(t, fmt.Sprintf("sub %d", h), h, proto.Sub(h).Snapshot())
	}
}

// TestDMTStressRace storms DMT(k) across sites under zipf contention.
func TestDMTStressRace(t *testing.T) {
	st := storage.New()
	d := sched.NewDMT(st, dmt.Options{K: 2, Sites: 4})
	runStorm(t, d, 8, 30, 16, 13)
}
