package sched

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/nested"
	"repro/internal/oplog"
	"repro/internal/storage"
)

// NestedOptions configures the MT(k1, ..., kl) runtime adapter.
type NestedOptions struct {
	// Ks are the per-level vector sizes (nested.Options.Ks).
	Ks []int
	// UnitOf maps a transaction to its containing unit at each level
	// >= 1 (nested.Options.UnitOf); nil puts every transaction in
	// group 0.
	UnitOf func(txn, lvl int) int
	// Coarse selects the reference data path: every store access runs
	// under the protocol mutex. The default (false) is the striped
	// path, where item latches let store accesses on disjoint items
	// overlap.
	Coarse bool
}

// Nested adapts the hierarchical MT(k1, ..., kl) protocol to the
// runtime Scheduler interface (deferred writes: the protocol table has
// no abort/reseed machinery, so WT(x) must only ever name committed
// transactions). Like Composite, the protocol state stays under one
// mutex — the nested tables are unsynchronized — while the striped
// variant latches items so storage reads and commit publishes on
// disjoint items overlap.
type Nested struct {
	mu      sync.Mutex
	opts    NestedOptions
	sched   *nested.Scheduler
	store   *storage.Store
	latches *core.LatchTable // nil when Coarse
	txns    map[int]*mtTxn
}

// NewNested returns an MT(k1, ..., kl) runtime scheduler over the store.
func NewNested(store *storage.Store, opts NestedOptions) *Nested {
	n := &Nested{
		opts:  opts,
		sched: nested.NewScheduler(nested.Options{Ks: opts.Ks, UnitOf: opts.UnitOf}),
		store: store,
		txns:  make(map[int]*mtTxn),
	}
	if !opts.Coarse {
		n.latches = core.NewLatchTable(engine.DefaultStripes)
	}
	return n
}

// Name implements Scheduler.
func (n *Nested) Name() string {
	name := "MT("
	for i, k := range n.opts.Ks {
		if i > 0 {
			name += ","
		}
		name += fmt.Sprint(k)
	}
	name += ")"
	if n.opts.Coarse {
		name += "/coarse"
	}
	return name
}

// Begin implements Scheduler.
func (n *Nested) Begin(txn int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.txns[txn] = &mtTxn{writes: make(map[string]int64)}
}

func (n *Nested) state(txn int) *mtTxn {
	st := n.txns[txn]
	if st == nil {
		panic(fmt.Sprintf("sched: operation on transaction %d without Begin", txn))
	}
	return st
}

// Read implements Scheduler. Striped: the item's latch is held across
// the protocol step and the store read, pinning the decision to the
// committed state it was made against; coarse keeps the read under the
// protocol mutex.
func (n *Nested) Read(txn int, item string) (int64, error) {
	if n.latches != nil {
		unlock := n.latches.Lock(item)
		defer unlock()
	}
	n.mu.Lock()
	st := n.state(txn)
	if v, ok := st.writes[item]; ok {
		n.mu.Unlock()
		return v, nil
	}
	d := n.sched.Step(oplog.R(txn, item))
	if d.Verdict == core.Reject {
		st.blocker = d.Blocker
		n.mu.Unlock()
		return 0, Abort(txn, d.Blocker, "read rejected")
	}
	if n.latches == nil {
		defer n.mu.Unlock()
		return n.store.Get(item), nil
	}
	n.mu.Unlock()
	return n.store.Get(item), nil
}

// Write implements Scheduler (writes deferred to commit).
func (n *Nested) Write(txn int, item string, v int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.state(txn)
	if _, ok := st.writes[item]; !ok {
		st.order = append(st.order, item)
	}
	st.writes[item] = v
	return nil
}

// Commit implements Scheduler: the buffered writes are validated now,
// then the write set publishes atomically. Striped holds the write
// set's latches from validation through ApplyTxn.
func (n *Nested) Commit(txn int) error {
	n.mu.Lock()
	st := n.state(txn)
	order := append([]string(nil), st.order...)
	n.mu.Unlock()
	if n.latches != nil {
		unlock := n.latches.Lock(order...)
		defer unlock()
	}
	n.mu.Lock()
	if n.txns[txn] != st {
		n.mu.Unlock()
		return Abort(txn, 0, "transaction state lost before commit")
	}
	for _, x := range order {
		d := n.sched.Step(oplog.W(txn, x))
		if d.Verdict == core.Reject {
			st.blocker = d.Blocker
			delete(n.txns, txn)
			n.mu.Unlock()
			return Abort(txn, d.Blocker, "commit-time write validation failed")
		}
	}
	writes := make(map[string]int64, len(st.writes))
	for x, v := range st.writes {
		writes[x] = v
	}
	delete(n.txns, txn)
	if n.latches == nil {
		defer n.mu.Unlock()
		n.store.ApplyTxn(txn, writes)
		return nil
	}
	n.mu.Unlock()
	n.store.ApplyTxn(txn, writes)
	return nil
}

// Abort implements Scheduler. The hierarchical tables have no
// flush-and-reseed machinery; dropping the runtime state is enough,
// since deferred writes mean nothing was published.
func (n *Nested) Abort(txn int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.txns, txn)
}

// Protocol exposes the underlying hierarchical scheduler (tests,
// diagnostics).
func (n *Nested) Protocol() *nested.Scheduler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sched
}
