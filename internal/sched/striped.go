package sched

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/explore/hook"
	"repro/internal/oplog"
	"repro/internal/storage"
)

// MTStriped adapts the fine-grained-locking engine.Striped scheduler to
// the runtime Scheduler interface. It is decision-for-decision
// equivalent to MT (the coarse global-mutex adapter, retained as the
// differential reference) but operations on disjoint items from
// different transactions run concurrently.
//
// Lock order, outermost first:
//
//  1. the transaction's own state lock (write buffer, blocker) — one
//     lock per live transaction, so two incarnations of the same id (a
//     live retry plus a stray abandoned-timeout goroutine) serialize
//     while unrelated transactions never meet;
//  2. the core latch table's item stripes (ascending stripe order),
//     held across the protocol step AND the data access it orders —
//     the atomicity the coarse adapter gets from its global mutex: a
//     read's store.Get happens under the same latch as its accept, and
//     a commit holds its write set's latches from (deferred-mode)
//     validation through ApplyTxn, so no operation can slot between a
//     decision and the data state it was decided against;
//  3. the striped core's transaction-entry and counter locks;
//  4. the store's shard locks and commit mutex (the WAL group-commit
//     path stays the only global ordering point).
//
// The adapter's transaction map lock (tmu) is a leaf: it is never held
// while acquiring any of the above.
type MTStriped struct {
	opts  MTOptions
	sched *engine.Striped
	store *storage.Store

	tmu  sync.RWMutex
	txns map[int]*stripedTxnState

	// unsafePublish reintroduces the PR 5 deferred-mode publish
	// inversion for the schedule explorer's seeded-bug tests: commit
	// releases the write set's latches between validation and ApplyTxn,
	// reopening the window where two validated writers publish in commit
	// order instead of timestamp order. Never set outside tests.
	unsafePublish bool
}

// stripedTxnState is the runtime state of one live transaction,
// guarded by its own lock.
type stripedTxnState struct {
	mu      sync.Mutex
	writes  map[string]int64
	order   []string // write order, for deterministic commit validation
	blocker int      // last rejecting transaction (starvation fix seed)
}

// NewMTStriped returns a striped MT(k)-family runtime scheduler over
// the store.
func NewMTStriped(store *storage.Store, opts MTOptions) *MTStriped {
	return &MTStriped{
		opts:  opts,
		sched: engine.NewStriped(opts.Core),
		store: store,
		txns:  make(map[int]*stripedTxnState),
	}
}

// Name implements Scheduler.
func (m *MTStriped) Name() string {
	name := fmt.Sprintf("MT(%d)/striped", m.opts.Core.K)
	if m.opts.Core.MonotonicEncoding {
		name += "/mono"
	}
	if m.opts.DeferWrites {
		name += "/deferred"
	}
	return name
}

// Begin implements Scheduler.
func (m *MTStriped) Begin(txn int) {
	m.tmu.Lock()
	m.txns[txn] = &stripedTxnState{writes: make(map[string]int64)}
	m.tmu.Unlock()
}

// state returns the live incarnation's runtime state, or nil if the
// transaction has no live incarnation (never began, or was aborted by a
// deadline-expired runtime attempt whose straggler operation arrives
// late). Returning nil instead of panicking keeps the run alive: the
// caller answers such stray operations with a plain abort.
func (m *MTStriped) state(txn int) *stripedTxnState {
	m.tmu.RLock()
	st := m.txns[txn]
	m.tmu.RUnlock()
	return st
}

// live reports whether txn has runtime state (used as the liveness
// callback for the immediate-mode pending-writer check; takes only the
// leaf map lock).
func (m *MTStriped) live(txn int) bool {
	m.tmu.RLock()
	_, ok := m.txns[txn]
	m.tmu.RUnlock()
	return ok
}

// Read implements Scheduler: the read is validated immediately
// (Algorithm 1) under the item's latch, and the value is fetched under
// the same latch, so the value read is exactly the committed state the
// decision was made against. The immediate-mode "read ordered after
// uncommitted writer" abort mirrors MT.Read.
func (m *MTStriped) Read(txn int, item string) (int64, error) {
	st := m.state(txn)
	if st == nil {
		return 0, Abort(txn, 0, "no live incarnation")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if v, ok := st.writes[item]; ok {
		return v, nil
	}
	unlock := m.sched.Latches().Lock(item)
	defer unlock()
	d := m.sched.StepLocked(oplog.R(txn, item))
	if d.Verdict == core.Reject {
		st.blocker = d.Blocker
		return 0, Abort(txn, d.Blocker, "read rejected")
	}
	if !m.opts.DeferWrites {
		if w, conflict := m.sched.ReadPendingWriter(txn, item, m.live); conflict {
			st.blocker = w
			return 0, Abort(txn, w, "read ordered after uncommitted writer")
		}
	}
	return m.store.Get(item), nil
}

// Write implements Scheduler.
func (m *MTStriped) Write(txn int, item string, v int64) error {
	st := m.state(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !m.opts.DeferWrites {
		unlock := m.sched.Latches().Lock(item)
		// Immediate mode admits at most one uncommitted writer per item
		// (see MT.Write): a second live accepted write would publish in
		// commit order, inverting the decided write order for one of the
		// two. Checked under the item latch, before the protocol step, so
		// WT(x) still names the prior writer.
		if w, conflict := m.sched.WritePendingWriter(txn, item, m.live); conflict {
			unlock()
			st.blocker = w
			return Abort(txn, w, "write conflicts with uncommitted writer")
		}
		d := m.sched.StepLocked(oplog.W(txn, item))
		unlock()
		switch d.Verdict {
		case core.Reject:
			st.blocker = d.Blocker
			return Abort(txn, d.Blocker, "write rejected")
		case core.AcceptIgnored:
			// Thomas write rule: the write is obsolete; drop it.
			delete(st.writes, item)
			return nil
		}
	}
	if _, ok := st.writes[item]; !ok {
		st.order = append(st.order, item)
	}
	st.writes[item] = v
	return nil
}

// Commit implements Scheduler: with DeferWrites the buffered writes
// are validated now. The whole write set's latches are held from
// validation through ApplyTxn and the protocol commit, so concurrent
// readers of those items see either the pre-commit state with the
// pre-commit ordering or the post-commit state with the post-commit
// ordering — never a mix. The commit record itself is sequenced by the
// store's commit mutex inside ApplyTxn (the group-commit boundary),
// not at latch-acquire time.
func (m *MTStriped) Commit(txn int) error {
	st := m.state(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	apply := make(map[string]int64, len(st.writes))
	for x, v := range st.writes {
		apply[x] = v
	}
	unlock := m.sched.Latches().Lock(st.order...)
	if m.opts.DeferWrites {
		for _, x := range st.order {
			if _, ok := st.writes[x]; !ok {
				continue
			}
			d := m.sched.StepLocked(oplog.W(txn, x))
			switch d.Verdict {
			case core.Reject:
				st.blocker = d.Blocker
				m.sched.Abort(txn, d.Blocker)
				unlock()
				m.drop(txn)
				return Abort(txn, d.Blocker, "commit-time write validation failed")
			case core.AcceptIgnored:
				delete(apply, x)
			}
		}
	}
	if m.unsafePublish {
		// Seeded bug (explore harness): drop the latches before the
		// publish, as the pre-PR-5-fix code did. The yield marks the
		// reopened window so the explorer can preempt inside it.
		unlock()
		hook.Yield("sched.publish", "", int64(txn), 0)
		m.store.ApplyTxn(txn, apply)
		m.sched.Commit(txn)
		m.drop(txn)
		return nil
	}
	m.store.ApplyTxn(txn, apply)
	m.sched.Commit(txn)
	unlock()
	m.drop(txn)
	return nil
}

// SetUnsafePublish toggles the reintroduced publish-inversion bug
// (test-only fault injection for the schedule explorer; see the field
// comment).
func (m *MTStriped) SetUnsafePublish(v bool) { m.unsafePublish = v }

// drop removes txn's runtime state.
func (m *MTStriped) drop(txn int) {
	m.tmu.Lock()
	delete(m.txns, txn)
	m.tmu.Unlock()
}

// Abort implements Scheduler.
func (m *MTStriped) Abort(txn int) {
	m.tmu.RLock()
	st := m.txns[txn]
	m.tmu.RUnlock()
	blocker := 0
	if st != nil {
		st.mu.Lock()
		blocker = st.blocker
		st.mu.Unlock()
	}
	m.sched.Abort(txn, blocker)
	m.drop(txn)
}

// Striped exposes the underlying protocol scheduler (tests,
// diagnostics).
func (m *MTStriped) Striped() *engine.Striped { return m.sched }

// K returns the protocol's vector size (crash-harness restart
// discovery; MT exposes the same via Core().K()).
func (m *MTStriped) K() int { return m.opts.Core.K }

// WALCounters implements DurableCounters. The striped engine's
// counter lock is safe to take here: the journal hook runs under the
// store's commit mutex while the committing goroutine holds item
// latches and transaction-entry locks, all of which order BEFORE the
// counter lock.
func (m *MTStriped) WALCounters() (lo, hi int64) { return m.sched.Watermarks() }

// SeedWALCounters implements DurableCounters (atomic raise-only clamp).
func (m *MTStriped) SeedWALCounters(lo, hi int64) { m.sched.SeedCounters(lo, hi) }

// TryPartialRestart implements the Section VI-C-1 partial rollback,
// mirroring MT.TryPartialRestart: flush-and-reseed past the blocker,
// then re-validate the kept reads under the new vector.
func (m *MTStriped) TryPartialRestart(txn int, readItems []string) bool {
	m.tmu.RLock()
	st := m.txns[txn]
	m.tmu.RUnlock()
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.blocker == 0 || !m.opts.Core.StarvationAvoidance {
		return false
	}
	// Flush and reseed (keeps the transaction live: the write buffer and
	// state survive).
	m.sched.Abort(txn, st.blocker)
	st.blocker = 0
	for _, x := range readItems {
		unlock := m.sched.Latches().Lock(x)
		d := m.sched.StepLocked(oplog.R(txn, x))
		unlock()
		if d.Verdict == core.Reject {
			st.blocker = d.Blocker
			return false
		}
	}
	return true
}
