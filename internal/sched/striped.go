package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/explore/hook"
	"repro/internal/storage"
)

// MTStriped adapts the fine-grained-locking engine.Striped scheduler to
// the runtime Scheduler interface. It is decision-for-decision
// equivalent to MT (the coarse global-mutex adapter, retained as the
// differential reference) but operations on disjoint items from
// different transactions run concurrently.
//
// The adapter shares the store's item-intern table with the engine, so
// an operation interns its item once and then runs the id-indexed fast
// path end to end — stripe lookup, protocol step, store access — with
// no string hashing and no allocation in the steady state (the alloc
// gate holds BenchmarkStripedScheduler's step path at 0 allocs/op).
//
// Lock order, outermost first:
//
//  1. the transaction's own state lock (write buffer, blocker) — one
//     lock per live transaction, so two incarnations of the same id (a
//     live retry plus a stray abandoned-timeout goroutine) serialize
//     while unrelated transactions never meet;
//  2. the core latch table's item stripes (ascending stripe order),
//     held across the protocol step AND the data access it orders —
//     the atomicity the coarse adapter gets from its global mutex: a
//     read's store.Get happens under the same latch as its accept, and
//     a commit holds its write set's latches from (deferred-mode)
//     validation through ApplyTxn, so no operation can slot between a
//     decision and the data state it was decided against;
//  3. the striped core's transaction-entry and counter locks;
//  4. the store's shard locks and commit mutex (the WAL group-commit
//     path stays the only global ordering point).
//
// The adapter's transaction map lock (tmu) is a leaf: it is never held
// while acquiring any of the above.
type MTStriped struct {
	opts   MTOptions
	sched  *engine.Striped
	store  *storage.Store
	liveFn func(int) bool // m.live, bound once (no per-call closure)

	tmu  sync.RWMutex
	txns map[int]*stripedTxnState
	pool sync.Pool // *stripedTxnState, recycled across transactions

	// unsafePublish reintroduces the PR 5 deferred-mode publish
	// inversion for the schedule explorer's seeded-bug tests: commit
	// releases the write set's latches between validation and ApplyTxn,
	// reopening the window where two validated writers publish in commit
	// order instead of timestamp order. Never set outside tests.
	unsafePublish bool
}

// stripedTxnState is the runtime state of one live transaction,
// guarded by its own lock. States are pooled: drop returns them, Begin
// recycles them, and every lock of a possibly-stale pointer re-checks
// identity against the transaction map afterwards (see lockState).
type stripedTxnState struct {
	mu      sync.Mutex
	writes  map[int32]int64
	order   []int32 // write order, for deterministic commit validation
	blocker int     // last rejecting transaction (starvation fix seed)
	// commit-path scratch, reused across incarnations
	stripes []int
	ids     []int32
	vals    []int64
}

// NewMTStriped returns a striped MT(k)-family runtime scheduler over
// the store. The engine shares the store's intern table.
func NewMTStriped(store *storage.Store, opts MTOptions) *MTStriped {
	m := &MTStriped{
		opts:  opts,
		sched: engine.NewStripedInterned(opts.Core, store.Interner()),
		store: store,
		txns:  make(map[int]*stripedTxnState),
	}
	m.liveFn = m.live
	m.pool.New = func() any {
		return &stripedTxnState{writes: make(map[int32]int64)}
	}
	return m
}

// Name implements Scheduler.
func (m *MTStriped) Name() string {
	name := fmt.Sprintf("MT(%d)/striped", m.opts.Core.K)
	if m.opts.Core.MonotonicEncoding {
		name += "/mono"
	}
	if m.opts.DeferWrites {
		name += "/deferred"
	}
	return name
}

// Begin implements Scheduler.
func (m *MTStriped) Begin(txn int) {
	st := m.pool.Get().(*stripedTxnState)
	// Re-initialize under the state lock: the previous incarnation's
	// dropper may still hold it (drop runs before a deferred unlock),
	// and a straggler holding a stale pointer may lock it to run its
	// identity re-check at any moment.
	st.mu.Lock()
	clear(st.writes)
	st.order = st.order[:0]
	st.blocker = 0
	st.mu.Unlock()
	m.tmu.Lock()
	m.txns[txn] = st
	m.tmu.Unlock()
}

// lockState returns txn's live state with its lock held, or nil if the
// transaction has no live incarnation (never began, or was aborted by
// a deadline-expired runtime attempt whose straggler operation arrives
// late — such strays get a plain abort). Because states are pooled,
// the identity is re-checked after locking: if the state was dropped
// and recycled for another transaction between lookup and lock, the
// map no longer points at it for txn and the lookup retries.
func (m *MTStriped) lockState(txn int) *stripedTxnState {
	for {
		m.tmu.RLock()
		st := m.txns[txn]
		m.tmu.RUnlock()
		if st == nil {
			return nil
		}
		st.mu.Lock()
		m.tmu.RLock()
		cur := m.txns[txn]
		m.tmu.RUnlock()
		if cur == st {
			return st
		}
		st.mu.Unlock()
	}
}

// live reports whether txn has runtime state (used as the liveness
// callback for the immediate-mode pending-writer check; takes only the
// leaf map lock).
func (m *MTStriped) live(txn int) bool {
	m.tmu.RLock()
	_, ok := m.txns[txn]
	m.tmu.RUnlock()
	return ok
}

// Read implements Scheduler: the read is validated immediately
// (Algorithm 1) under the item's latch, and the value is fetched under
// the same latch, so the value read is exactly the committed state the
// decision was made against. The immediate-mode "read ordered after
// uncommitted writer" abort mirrors MT.Read.
func (m *MTStriped) Read(txn int, item string) (int64, error) {
	st := m.lockState(txn)
	if st == nil {
		return 0, Abort(txn, 0, "no live incarnation")
	}
	defer st.mu.Unlock()
	id := m.sched.ItemID(item)
	if v, ok := st.writes[id]; ok {
		return v, nil
	}
	lt := m.sched.Latches()
	stripe := lt.StripeOfID(id)
	lt.LockStripe(stripe)
	v, blocker := m.sched.StepReadID(txn, id)
	if v == core.Reject {
		lt.UnlockStripe(stripe)
		st.blocker = blocker
		return 0, Abort(txn, blocker, "read rejected")
	}
	if !m.opts.DeferWrites {
		if w, conflict := m.sched.ReadPendingWriterID(txn, id, m.liveFn); conflict {
			lt.UnlockStripe(stripe)
			st.blocker = w
			return 0, Abort(txn, w, "read ordered after uncommitted writer")
		}
	}
	val := m.store.GetID(id)
	lt.UnlockStripe(stripe)
	return val, nil
}

// Write implements Scheduler.
func (m *MTStriped) Write(txn int, item string, v int64) error {
	st := m.lockState(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	defer st.mu.Unlock()
	id := m.sched.ItemID(item)
	if !m.opts.DeferWrites {
		lt := m.sched.Latches()
		stripe := lt.StripeOfID(id)
		lt.LockStripe(stripe)
		// Immediate mode admits at most one uncommitted writer per item
		// (see MT.Write): a second live accepted write would publish in
		// commit order, inverting the decided write order for one of the
		// two. Checked under the item latch, before the protocol step, so
		// WT(x) still names the prior writer.
		if w, conflict := m.sched.WritePendingWriterID(txn, id, m.liveFn); conflict {
			lt.UnlockStripe(stripe)
			st.blocker = w
			return Abort(txn, w, "write conflicts with uncommitted writer")
		}
		verdict, blocker := m.sched.StepWriteID(txn, id)
		lt.UnlockStripe(stripe)
		switch verdict {
		case core.Reject:
			st.blocker = blocker
			return Abort(txn, blocker, "write rejected")
		case core.AcceptIgnored:
			// Thomas write rule: the write is obsolete; drop it.
			delete(st.writes, id)
			return nil
		}
	}
	if _, ok := st.writes[id]; !ok {
		st.order = append(st.order, id)
	}
	st.writes[id] = v
	return nil
}

// Commit implements Scheduler: with DeferWrites the buffered writes
// are validated now. The whole write set's latches are held from
// validation through ApplyTxn and the protocol commit, so concurrent
// readers of those items see either the pre-commit state with the
// pre-commit ordering or the post-commit state with the post-commit
// ordering — never a mix. The commit record itself is sequenced by the
// store's commit mutex inside ApplyTxn (the group-commit boundary),
// not at latch-acquire time.
func (m *MTStriped) Commit(txn int) error {
	st := m.lockState(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	defer st.mu.Unlock()
	lt := m.sched.Latches()
	st.stripes = st.stripes[:0]
	for _, id := range st.order {
		st.stripes = append(st.stripes, lt.StripeOfID(id))
	}
	sort.Ints(st.stripes)
	st.stripes = dedupInts(st.stripes)
	lt.LockStripesSorted(st.stripes)
	if m.opts.DeferWrites {
		for _, id := range st.order {
			if _, ok := st.writes[id]; !ok {
				continue
			}
			verdict, blocker := m.sched.StepWriteID(txn, id)
			switch verdict {
			case core.Reject:
				st.blocker = blocker
				m.sched.Abort(txn, blocker)
				lt.UnlockStripesSorted(st.stripes)
				m.drop(txn)
				return Abort(txn, blocker, "commit-time write validation failed")
			case core.AcceptIgnored:
				delete(st.writes, id)
			}
		}
	}
	st.ids, st.vals = st.ids[:0], st.vals[:0]
	for _, id := range st.order {
		if v, ok := st.writes[id]; ok {
			st.ids = append(st.ids, id)
			st.vals = append(st.vals, v)
		}
	}
	if m.unsafePublish {
		// Seeded bug (explore harness): drop the latches before the
		// publish, as the pre-PR-5-fix code did. The yield marks the
		// reopened window so the explorer can preempt inside it.
		lt.UnlockStripesSorted(st.stripes)
		hook.Yield("sched.publish", "", int64(txn), 0)
		m.store.ApplyTxnIDs(txn, st.ids, st.vals)
		m.sched.Commit(txn)
		m.drop(txn)
		return nil
	}
	m.store.ApplyTxnIDs(txn, st.ids, st.vals)
	m.sched.Commit(txn)
	lt.UnlockStripesSorted(st.stripes)
	m.drop(txn)
	return nil
}

// dedupInts removes adjacent duplicates from a sorted slice, in place.
func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// SetUnsafePublish toggles the reintroduced publish-inversion bug
// (test-only fault injection for the schedule explorer; see the field
// comment).
func (m *MTStriped) SetUnsafePublish(v bool) { m.unsafePublish = v }

// drop removes txn's runtime state and recycles it. The state may
// still be locked by the caller (or by a straggler); recyclers
// re-initialize under the state lock, so the pool handoff is safe.
func (m *MTStriped) drop(txn int) {
	m.tmu.Lock()
	st := m.txns[txn]
	delete(m.txns, txn)
	m.tmu.Unlock()
	if st != nil {
		m.pool.Put(st)
	}
}

// Abort implements Scheduler.
func (m *MTStriped) Abort(txn int) {
	blocker := 0
	if st := m.lockState(txn); st != nil {
		blocker = st.blocker
		st.mu.Unlock()
	}
	m.sched.Abort(txn, blocker)
	m.drop(txn)
}

// Striped exposes the underlying protocol scheduler (tests,
// diagnostics).
func (m *MTStriped) Striped() *engine.Striped { return m.sched }

// K returns the protocol's vector size (crash-harness restart
// discovery; MT exposes the same via Core().K()).
func (m *MTStriped) K() int { return m.opts.Core.K }

// WALCounters implements DurableCounters. The striped engine's
// counter lock is safe to take here: the journal hook runs under the
// store's commit mutex while the committing goroutine holds item
// latches and transaction-entry locks, all of which order BEFORE the
// counter lock.
func (m *MTStriped) WALCounters() (lo, hi int64) { return m.sched.Watermarks() }

// SeedWALCounters implements DurableCounters (atomic raise-only clamp).
func (m *MTStriped) SeedWALCounters(lo, hi int64) { m.sched.SeedCounters(lo, hi) }

// TryPartialRestart implements the Section VI-C-1 partial rollback,
// mirroring MT.TryPartialRestart: flush-and-reseed past the blocker,
// then re-validate the kept reads under the new vector.
func (m *MTStriped) TryPartialRestart(txn int, readItems []string) bool {
	st := m.lockState(txn)
	if st == nil {
		return false
	}
	defer st.mu.Unlock()
	if st.blocker == 0 || !m.opts.Core.StarvationAvoidance {
		return false
	}
	// Flush and reseed (keeps the transaction live: the write buffer and
	// state survive).
	m.sched.Abort(txn, st.blocker)
	st.blocker = 0
	lt := m.sched.Latches()
	for _, x := range readItems {
		id := m.sched.ItemID(x)
		stripe := lt.StripeOfID(id)
		lt.LockStripe(stripe)
		verdict, blocker := m.sched.StepReadID(txn, id)
		lt.UnlockStripe(stripe)
		if verdict == core.Reject {
			st.blocker = blocker
			return false
		}
	}
	return true
}
