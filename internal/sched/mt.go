package sched

import (
	"fmt"
	"sync"

	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oplog"
	"repro/internal/storage"
)

// MTOptions configures the MT(k) runtime adapter.
type MTOptions struct {
	// Core carries the protocol options (K, ThomasWriteRule,
	// StarvationAvoidance, hot-item encoding, ...).
	Core engine.Options
	// DeferWrites enables the Section VI-C-2 scheme: writes are buffered
	// and validated at commit, so WT(x) only ever names committed
	// transactions and a committed transaction can never be aborted.
	// When false, writes are validated (and WT updated) at write time —
	// Algorithm 1's immediate discipline — while data still publishes
	// atomically at commit.
	DeferWrites bool
}

// mtTxn is the runtime state of one live transaction.
type mtTxn struct {
	writes  map[string]int64
	order   []string // write order, for deterministic commit validation
	blocker int      // last rejecting transaction (starvation fix seed)
	epoch   uint64   // composite adapter epoch; 0 for plain MT

	// DMT degraded-mode bookkeeping (see sched/dmt.go): whether this
	// incarnation has validated any protocol step (a parked attempt may
	// only resume if nothing was validated against pre-crash state), and
	// whether it was already counted as a degraded-window attempt.
	stepped    bool
	winCounted bool
}

// MT adapts the core MT(k) protocol to the runtime Scheduler interface.
type MT struct {
	mu    sync.Mutex
	opts  MTOptions
	sched *engine.Scheduler
	store *storage.Store
	txns  map[int]*mtTxn
}

// NewMT returns an MT(k)-family runtime scheduler over the store.
func NewMT(store *storage.Store, opts MTOptions) *MT {
	return &MT{
		opts:  opts,
		sched: engine.NewScheduler(opts.Core),
		store: store,
		txns:  make(map[int]*mtTxn),
	}
}

// Name implements Scheduler.
func (m *MT) Name() string {
	name := fmt.Sprintf("MT(%d)", m.opts.Core.K)
	if m.opts.Core.MonotonicEncoding {
		name += "/mono"
	}
	if m.opts.DeferWrites {
		name += "/deferred"
	}
	return name
}

// Begin implements Scheduler.
func (m *MT) Begin(txn int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.txns[txn] = &mtTxn{writes: make(map[string]int64)}
}

// state returns the live incarnation's buffers, or nil if the
// transaction has no live incarnation (never began, or was aborted by a
// deadline-expired runtime attempt whose straggler operation arrives
// late). Returning nil instead of panicking keeps the run alive: the
// caller answers such stray operations with a plain abort.
func (m *MT) state(txn int) *mtTxn {
	return m.txns[txn]
}

// Read implements Scheduler: the read is validated immediately
// (Algorithm 1); the value comes from the transaction's own write buffer
// or the committed store.
//
// Immediate mode publishes WT(x) at write time but the DATA only at
// commit, so a read ordered after a still-uncommitted writer would see
// the old value while the protocol believes it saw the new one — a lost
// update. Such reads abort (no dirty-read window); a read ordered BEFORE
// the pending writer (the line-9 slot-in) legitimately reads the old
// version and proceeds. Deferred mode never hits this: WT(x) only ever
// names committed transactions.
func (m *MT) Read(txn int, item string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(txn)
	if st == nil {
		return 0, Abort(txn, 0, "no live incarnation")
	}
	if v, ok := st.writes[item]; ok {
		return v, nil
	}
	d := m.sched.Step(oplog.R(txn, item))
	if d.Verdict == core.Reject {
		st.blocker = d.Blocker
		return 0, Abort(txn, d.Blocker, "read rejected")
	}
	if !m.opts.DeferWrites {
		if w := m.sched.WT(item); w != txn {
			if _, live := m.txns[w]; live && !m.sched.Vector(txn).Less(m.sched.Vector(w)) {
				st.blocker = w
				return 0, Abort(txn, w, "read ordered after uncommitted writer")
			}
		}
	}
	return m.store.Get(item), nil
}

// Write implements Scheduler.
//
// Immediate mode admits at most one uncommitted writer per item: WT(x)
// is published at write time but the data only at commit, so if two
// live transactions both held accepted writes on x, whichever commit
// order occurred would invert the decided write order for one of them
// (the earlier-ordered writer publishing second silently clobbers the
// later-ordered committed value — the lost update the schedule explorer
// found on mix-3x2). The second writer aborts before the protocol step,
// mirroring the read-side "ordered after uncommitted writer" guard.
// Deferred mode never hits this: writes are validated at commit, where
// publication and ordering are one atomic decision.
func (m *MT) Write(txn int, item string, v int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	if !m.opts.DeferWrites {
		if w := m.sched.WT(item); w != 0 && w != txn {
			if _, live := m.txns[w]; live {
				st.blocker = w
				return Abort(txn, w, "write conflicts with uncommitted writer")
			}
		}
		d := m.sched.Step(oplog.W(txn, item))
		switch d.Verdict {
		case core.Reject:
			st.blocker = d.Blocker
			return Abort(txn, d.Blocker, "write rejected")
		case core.AcceptIgnored:
			// Thomas write rule: the write is obsolete; drop it.
			delete(st.writes, item)
			return nil
		}
	}
	if _, ok := st.writes[item]; !ok {
		st.order = append(st.order, item)
	}
	st.writes[item] = v
	return nil
}

// Commit implements Scheduler: with DeferWrites the buffered writes are
// validated now (each via the ordinary write arm of Algorithm 1); the
// surviving write set publishes atomically.
func (m *MT) Commit(txn int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	apply := make(map[string]int64, len(st.writes))
	for x, v := range st.writes {
		apply[x] = v
	}
	if m.opts.DeferWrites {
		for _, x := range st.order {
			if _, ok := st.writes[x]; !ok {
				continue
			}
			d := m.sched.Step(oplog.W(txn, x))
			switch d.Verdict {
			case core.Reject:
				st.blocker = d.Blocker
				m.sched.Abort(txn, d.Blocker)
				delete(m.txns, txn)
				return Abort(txn, d.Blocker, "commit-time write validation failed")
			case core.AcceptIgnored:
				delete(apply, x)
			}
		}
	}
	m.store.ApplyTxn(txn, apply)
	m.sched.Commit(txn)
	delete(m.txns, txn)
	return nil
}

// Abort implements Scheduler.
func (m *MT) Abort(txn int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.txns[txn]
	blocker := 0
	if st != nil {
		blocker = st.blocker
	}
	m.sched.Abort(txn, blocker)
	delete(m.txns, txn)
}

// Core exposes the underlying protocol scheduler (tests, diagnostics).
func (m *MT) Core() *engine.Scheduler { return m.sched }

// TryPartialRestart implements the Section VI-C-1 partial rollback for a
// transaction whose last operation was rejected: the vector is flushed
// and reseeded past the blocker (so the retried suffix can be ordered)
// and the transaction's earlier accepted reads are re-validated under the
// new vector. On success the caller may resume execution after the kept
// prefix, preserving its computation; the caller is responsible for
// checking that the kept read VALUES are still current (per-item store
// versions) before resuming. Requires StarvationAvoidance; returns false
// when a full restart is needed.
func (m *MT) TryPartialRestart(txn int, readItems []string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.txns[txn]
	if st == nil || st.blocker == 0 || !m.opts.Core.StarvationAvoidance {
		return false
	}
	// Flush and reseed (keeps the transaction live: the write buffer and
	// state survive).
	m.sched.Abort(txn, st.blocker)
	st.blocker = 0
	for _, x := range readItems {
		if d := m.sched.Step(oplog.R(txn, x)); d.Verdict == core.Reject {
			st.blocker = d.Blocker
			return false
		}
	}
	return true
}

// Composite adapts MT(k⁺) to the runtime. When every subprotocol has
// stopped, Algorithm 2 step 4 applies: all active transactions abort and
// the composite machinery restarts fresh (a new epoch).
//
// The protocol state (composite.Scheduler, epoch, transaction map) stays
// under one mutex — an epoch restart swaps the whole scheduler, which no
// per-item scheme survives — but DATA access is striped: an operation
// holds its items' latches (acquired before mu, released after the store
// access) so storage reads and commit publishes on disjoint items
// overlap, while the latch still pins each decision to the store state
// it was made against.
type Composite struct {
	mu      sync.Mutex
	k       int
	sub     engine.Options
	sched   *composite.Scheduler
	store   *storage.Store
	latches *core.LatchTable // nil in the coarse reference variant
	txns    map[int]*mtTxn
	epoch   uint64
}

// NewComposite returns an MT(k⁺) runtime scheduler (deferred writes)
// with the striped data path: item latches let storage accesses on
// disjoint items overlap.
func NewComposite(store *storage.Store, k int, sub engine.Options) *Composite {
	c := NewCompositeCoarse(store, k, sub)
	c.latches = core.NewLatchTable(engine.DefaultStripes)
	return c
}

// NewCompositeCoarse returns the coarse MT(k⁺) runtime scheduler: every
// store access runs under the protocol mutex, like the seed adapter.
// It is the differential reference the striped variant benches against.
func NewCompositeCoarse(store *storage.Store, k int, sub engine.Options) *Composite {
	return &Composite{
		k:     k,
		sub:   sub,
		sched: composite.NewScheduler(composite.Options{K: k, Sub: sub}),
		store: store,
		txns:  make(map[int]*mtTxn),
	}
}

// Name implements Scheduler.
func (c *Composite) Name() string {
	if c.latches == nil {
		return fmt.Sprintf("MT(%d+)/coarse", c.k)
	}
	return fmt.Sprintf("MT(%d+)", c.k)
}

// Begin implements Scheduler.
func (c *Composite) Begin(txn int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txns[txn] = &mtTxn{writes: make(map[string]int64), epoch: c.epoch}
}

// step runs one operation, handling the epoch-restart rule.
func (c *Composite) step(st *mtTxn, txn int, op oplog.Op) error {
	if st.epoch != c.epoch {
		return Abort(txn, 0, "composite epoch restart")
	}
	d := c.sched.Step(op)
	if d.Verdict == core.Reject {
		// All subprotocols stopped: abort all active transactions and
		// restart (Algorithm 2 step 4-i).
		c.epoch++
		c.sched = composite.NewScheduler(composite.Options{K: c.k, Sub: c.sub})
		return Abort(txn, 0, "all subprotocols stopped")
	}
	return nil
}

// Read implements Scheduler. Striped: the item's latch is held across
// the protocol step and the store read; the store access itself
// happens outside the protocol mutex, so reads of disjoint items
// overlap. Coarse: the store read stays under the protocol mutex.
func (c *Composite) Read(txn int, item string) (int64, error) {
	if c.latches != nil {
		unlock := c.latches.Lock(item)
		defer unlock()
	}
	c.mu.Lock()
	st := c.state(txn)
	if st == nil {
		c.mu.Unlock()
		return 0, Abort(txn, 0, "no live incarnation")
	}
	if v, ok := st.writes[item]; ok {
		c.mu.Unlock()
		return v, nil
	}
	if err := c.step(st, txn, oplog.R(txn, item)); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	if c.latches == nil {
		defer c.mu.Unlock()
		return c.store.Get(item), nil
	}
	c.mu.Unlock()
	return c.store.Get(item), nil
}

// Write implements Scheduler (writes deferred to commit).
func (c *Composite) Write(txn int, item string, v int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	if _, ok := st.writes[item]; !ok {
		st.order = append(st.order, item)
	}
	st.writes[item] = v
	return nil
}

// Commit implements Scheduler. The write set's latches are held from
// commit-time validation through ApplyTxn, so a concurrent reader of a
// written item sees either the pre-commit state with the pre-commit
// ordering or the post-commit state with the post-commit ordering; the
// publish itself runs outside the protocol mutex, so commits on
// disjoint items overlap in the store.
func (c *Composite) Commit(txn int) error {
	c.mu.Lock()
	st := c.state(txn)
	if st == nil {
		c.mu.Unlock()
		return Abort(txn, 0, "no live incarnation")
	}
	order := append([]string(nil), st.order...)
	c.mu.Unlock()
	if c.latches != nil {
		unlock := c.latches.Lock(order...)
		defer unlock()
	}
	c.mu.Lock()
	// Re-check under the latches: a stray incarnation (abandoned timeout
	// goroutine) may have aborted or replaced this id meanwhile.
	if c.txns[txn] != st {
		c.mu.Unlock()
		return Abort(txn, 0, "transaction state lost before commit")
	}
	for _, x := range order {
		if err := c.step(st, txn, oplog.W(txn, x)); err != nil {
			c.sched.Abort(txn, 0)
			delete(c.txns, txn)
			c.mu.Unlock()
			return err
		}
	}
	writes := make(map[string]int64, len(st.writes))
	for x, v := range st.writes {
		writes[x] = v
	}
	c.sched.Commit(txn)
	delete(c.txns, txn)
	if c.latches == nil {
		// Coarse reference: publish under the protocol mutex.
		defer c.mu.Unlock()
		c.store.ApplyTxn(txn, writes)
		return nil
	}
	c.mu.Unlock()
	c.store.ApplyTxn(txn, writes)
	return nil
}

// Abort implements Scheduler.
func (c *Composite) Abort(txn int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.txns[txn]; ok {
		c.sched.Abort(txn, 0)
		delete(c.txns, txn)
	}
}

// Protocol exposes the current composite scheduler (tests and
// diagnostics; epoch restarts swap it, so quiesce before inspecting).
func (c *Composite) Protocol() *composite.Scheduler {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sched
}

// state mirrors MT.state: nil for a transaction with no live
// incarnation, answered by the caller with a plain abort.
func (c *Composite) state(txn int) *mtTxn {
	return c.txns[txn]
}
