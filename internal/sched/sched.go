// Package sched defines the runtime concurrency-control interface shared
// by every protocol implementation (MT(k), MT(k⁺), MT(k1,k2), DMT(k) and
// the baselines 2PL, TO, OCC, SGT and timestamp intervals), plus the
// MT-family adapters themselves.
//
// All runtime schedulers manage data as well as ordering: Read returns
// committed values, Write buffers the new value, and Commit validates any
// deferred work and atomically publishes the write set (the paper's
// Section VI-C-2 rollback scheme — no dirty data is ever visible, so an
// abort never cascades).
package sched

import (
	"errors"
	"fmt"
	"time"
)

// ErrAbort is returned by Read, Write or Commit when the transaction must
// abort and may be retried by the caller.
var ErrAbort = errors.New("sched: transaction must abort")

// AbortError wraps ErrAbort with diagnostic context.
type AbortError struct {
	Txn     int
	Blocker int
	Reason  string
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("sched: txn %d aborted (%s, blocker %d)", e.Txn, e.Reason, e.Blocker)
}

// Unwrap makes errors.Is(err, ErrAbort) true.
func (e *AbortError) Unwrap() error { return ErrAbort }

// Abort builds an *AbortError.
func Abort(txn, blocker int, reason string) error {
	return &AbortError{Txn: txn, Blocker: blocker, Reason: reason}
}

// ErrUnavailable is returned by distributed schedulers when a site the
// operation needs is crashed, partitioned or lost the message (degraded
// mode). It is NOT an ErrAbort: the transaction did not lose a conflict
// and no ordering was established against it; the operation simply could
// not be performed right now. Callers retry it under a separate budget
// with backoff instead of treating it as a protocol abort.
var ErrUnavailable = errors.New("sched: site unavailable")

// UnavailableError wraps ErrUnavailable with the failing site.
type UnavailableError struct {
	Txn    int
	Site   int // unreachable site (-1 if unknown)
	Reason string
}

// Error implements error.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("sched: txn %d unavailable (%s, site %d)", e.Txn, e.Reason, e.Site)
}

// Unwrap makes errors.Is(err, ErrUnavailable) true.
func (e *UnavailableError) Unwrap() error { return ErrUnavailable }

// Unavailable builds an *UnavailableError.
func Unavailable(txn, site int, reason string) error {
	return &UnavailableError{Txn: txn, Site: site, Reason: reason}
}

// ErrDeadlineExceeded is returned by the transaction runtime when a
// per-transaction deadline expires before the transaction commits or
// exhausts its retry budgets. Like ErrUnavailable it is NOT an ErrAbort:
// no conflict was lost — the caller simply ran out of time, typically
// while blocked in a backoff sleep, a latch wait or an unavailability
// retry, all of which the deadline cancels.
var ErrDeadlineExceeded = errors.New("sched: transaction deadline exceeded")

// DeadlineError wraps ErrDeadlineExceeded with diagnostic context.
type DeadlineError struct {
	Txn     int
	Elapsed time.Duration // wall time from first attempt to expiry
	Stage   string        // where the deadline fired ("backoff", "attempt", ...)
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sched: txn %d deadline exceeded after %v (%s)", e.Txn, e.Elapsed, e.Stage)
}

// Unwrap makes errors.Is(err, ErrDeadlineExceeded) true.
func (e *DeadlineError) Unwrap() error { return ErrDeadlineExceeded }

// DeadlineExceeded builds a *DeadlineError.
func DeadlineExceeded(txn int, elapsed time.Duration, stage string) error {
	return &DeadlineError{Txn: txn, Elapsed: elapsed, Stage: stage}
}

// Scheduler is a runtime concurrency controller bound to a store.
// Transaction ids must be unique among concurrently live transactions; a
// retried transaction reuses its id (so protocols like MT(k) with the
// starvation fix can privilege the restarted incarnation).
//
// Implementations may block inside Read/Write (lock-based protocols) or
// fail fast with an error wrapping ErrAbort (timestamp-based protocols).
type Scheduler interface {
	// Name identifies the protocol in reports, e.g. "MT(3)".
	Name() string
	// Begin opens (or reopens, after an abort) the transaction.
	Begin(txn int)
	// Read returns the committed value of item visible to txn.
	Read(txn int, item string) (int64, error)
	// Write schedules the value to be written by txn at commit.
	Write(txn int, item string, v int64) error
	// Commit validates and atomically publishes txn's writes.
	Commit(txn int) error
	// Abort discards txn (idempotent; safe after a failed Commit).
	Abort(txn int)
}
