package sched

// DurableCounters is implemented by schedulers whose commits consume
// k-th-column counter values (MT's lcount/ucount, DMT's per-site
// counters). The write-ahead log samples WALCounters at every commit
// and persists the pair; recovery calls SeedWALCounters with the last
// durable pair so the restarted scheduler never re-issues a counter
// value consumed by a durable commit — the durability half of the
// paper's "synchronize the counters periodically" remark.
//
// Both values are consumption watermarks and MUST be monotone
// non-decreasing over a scheduler's lifetime (schedulers whose raw
// counters run downward, like MT's lcount, negate them).
type DurableCounters interface {
	// WALCounters returns the current (lower, upper) consumption
	// watermarks. It is called from the store's journal hook — i.e.
	// under the store mutex inside the scheduler's own Commit, where
	// the scheduler mutex is already held by the calling goroutine —
	// so implementations must NOT re-acquire their own mutex.
	WALCounters() (lo, hi int64)
	// SeedWALCounters restarts the scheduler at or above the recovered
	// watermarks. Call before traffic flows; raising, never lowering.
	SeedWALCounters(lo, hi int64)
}

// WALCounters implements DurableCounters. MT's lcount runs downward
// from 0 (every allocation decrements it), so its watermark is the
// negation; ucount runs upward and is its own watermark.
func (m *MT) WALCounters() (lo, hi int64) {
	l, u := m.sched.Counters()
	return -l, u
}

// SeedWALCounters implements DurableCounters.
func (m *MT) SeedWALCounters(lo, hi int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, u := m.sched.Counters()
	if -lo < l {
		l = -lo
	}
	if hi > u {
		u = hi
	}
	m.sched.SetCounters(l, u)
}

// WALCounters implements DurableCounters: the max over the live
// subprotocols' counters. An epoch restart replaces the subprotocols
// with fresh counters, so the instantaneous max can drop — the log
// writer's monotone clamp keeps the persisted watermarks valid (they
// simply stay at the all-time max, which is exactly the safe seed).
func (c *Composite) WALCounters() (lo, hi int64) {
	for h := 1; h <= c.sched.K(); h++ {
		l, u := c.sched.Sub(h).Counters()
		if -l > lo {
			lo = -l
		}
		if u > hi {
			hi = u
		}
	}
	return lo, hi
}

// SeedWALCounters implements DurableCounters.
func (c *Composite) SeedWALCounters(lo, hi int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for h := 1; h <= c.sched.K(); h++ {
		sub := c.sched.Sub(h)
		l, u := sub.Counters()
		if -lo < l {
			l = -lo
		}
		if hi > u {
			u = hi
		}
		sub.SetCounters(l, u)
	}
}

// WALCounters implements DurableCounters. The cluster takes its own
// per-site locks (never the adapter mutex), so the journal-hook
// no-reentrancy rule is satisfied trivially.
func (d *DMT) WALCounters() (lo, hi int64) { return d.cluster.Counters() }

// SeedWALCounters implements DurableCounters.
func (d *DMT) SeedWALCounters(lo, hi int64) { d.cluster.RaiseCounters(lo, hi) }
