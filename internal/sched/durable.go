package sched

// DurableCounters is implemented by schedulers whose commits consume
// k-th-column counter values (MT's lcount/ucount, DMT's per-site
// counters). The write-ahead log samples WALCounters at every commit
// and persists the pair; recovery calls SeedWALCounters with the last
// durable pair so the restarted scheduler never re-issues a counter
// value consumed by a durable commit — the durability half of the
// paper's "synchronize the counters periodically" remark.
//
// Both values are consumption watermarks and MUST be monotone
// non-decreasing over a scheduler's lifetime (schedulers whose raw
// counters run downward, like MT's lcount, negate them). Every engine
// instantiation exports the pair via Watermarks/RaiseWatermarks, so
// the adapters below are pure delegations — there is no per-adapter
// watermark arithmetic left to get wrong.
type DurableCounters interface {
	// WALCounters returns the current (lower, upper) consumption
	// watermarks. It is called from the store's journal hook — i.e.
	// under the store mutex inside the scheduler's own Commit, where
	// the scheduler mutex is already held by the calling goroutine —
	// so implementations must NOT re-acquire their own mutex.
	WALCounters() (lo, hi int64)
	// SeedWALCounters restarts the scheduler at or above the recovered
	// watermarks. Call before traffic flows; raising, never lowering.
	SeedWALCounters(lo, hi int64)
}

// WALCounters implements DurableCounters. The coarse engine's
// Watermarks takes no lock (the journal hook runs inside the
// adapter's own critical section).
func (m *MT) WALCounters() (lo, hi int64) { return m.sched.Watermarks() }

// SeedWALCounters implements DurableCounters.
func (m *MT) SeedWALCounters(lo, hi int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sched.RaiseWatermarks(lo, hi)
}

// WALCounters implements DurableCounters: the max over the
// subprotocols' engine watermarks. An epoch restart replaces the
// subprotocols with fresh counters, so the instantaneous max can drop
// — the log writer's monotone clamp keeps the persisted watermarks
// valid (they simply stay at the all-time max, which is exactly the
// safe seed).
func (c *Composite) WALCounters() (lo, hi int64) { return c.sched.Watermarks() }

// SeedWALCounters implements DurableCounters.
func (c *Composite) SeedWALCounters(lo, hi int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sched.RaiseWatermarks(lo, hi)
}

// WALCounters implements DurableCounters. The cluster takes its own
// per-site counter locks (never the adapter mutex), so the
// journal-hook no-reentrancy rule is satisfied trivially.
func (d *DMT) WALCounters() (lo, hi int64) { return d.cluster.Counters() }

// SeedWALCounters implements DurableCounters.
func (d *DMT) SeedWALCounters(lo, hi int64) { d.cluster.RaiseCounters(lo, hi) }

// WALCounters implements DurableCounters: the max over the hierarchy
// levels' table watermarks.
func (n *Nested) WALCounters() (lo, hi int64) { return n.sched.Watermarks() }

// SeedWALCounters implements DurableCounters.
func (n *Nested) SeedWALCounters(lo, hi int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sched.RaiseWatermarks(lo, hi)
}
