package sched_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dmt"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

func TestDMTRuntimeBasic(t *testing.T) {
	st := storage.New()
	d := sched.NewDMT(st, dmt.Options{K: 3, Sites: 2})
	if d.Name() != "DMT/2sites" {
		t.Fatalf("Name = %q", d.Name())
	}
	d.Begin(1)
	if _, err := d.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(1, "x", 5); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 0 {
		t.Fatal("dirty write visible")
	}
	if err := d.Commit(1); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 5 {
		t.Fatal("write lost")
	}
}

func TestDMTRuntimeRejectAndRetry(t *testing.T) {
	st := storage.New()
	d := sched.NewDMT(st, dmt.Options{K: 2, Sites: 2})
	// Fig. 5 shape: T3 reads y before the second writer bumps x.
	d.Begin(1)
	d.Write(1, "x", 1)
	d.Commit(1)
	d.Begin(3)
	if _, err := d.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	d.Begin(2)
	d.Write(2, "x", 2)
	d.Commit(2)
	err := d.Write(3, "x", 3)
	if !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("want abort, got %v", err)
	}
	d.Abort(3)
	// The distributed starvation fix reseeds TS(3): the retry succeeds.
	d.Begin(3)
	if _, err := d.Read(3, "y"); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(3, "x", 3); err != nil {
		t.Fatalf("retry rejected: %v", err)
	}
	if err := d.Commit(3); err != nil {
		t.Fatal(err)
	}
}

func TestDMTRuntimeBankingInvariant(t *testing.T) {
	accounts := []string{"a", "b", "c", "d"}
	initial := map[string]int64{}
	for _, a := range accounts {
		initial[a] = 500
	}
	var cluster *sched.DMT
	rep := sim.Run(sim.Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			cluster = sched.NewDMT(st, dmt.Options{K: 7, Sites: 3})
			return cluster
		},
		Specs:   workload.Transfers(80, accounts, 2, 31),
		Workers: 6,
		Backoff: 30 * time.Microsecond,
		Initial: initial,
	})
	if rep.Committed != 80 {
		t.Fatalf("committed = %d (gave up %d)", rep.Committed, rep.GaveUp)
	}
	if got := rep.Store.Sum(accounts); got != 2000 {
		t.Fatalf("sum = %d", got)
	}
	if cluster.Cluster().Messages() == 0 {
		t.Fatal("no cross-site traffic recorded")
	}
}

func TestDMTGCReclaimsVectors(t *testing.T) {
	st := storage.New()
	d := sched.NewDMT(st, dmt.Options{K: 2, Sites: 2})
	for i := 1; i <= 50; i++ {
		d.Begin(i)
		if err := d.Write(i, "x", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := d.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	d.Cluster().GC()
	// Only T0 and the current RT/WT holders survive.
	if live := d.Cluster().LiveVectors(); live > 3 {
		t.Fatalf("live vectors = %d, want <= 3", live)
	}
}
