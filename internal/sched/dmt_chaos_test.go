package sched

import (
	"errors"
	"testing"

	"repro/internal/dmt"
	"repro/internal/storage"
)

// Unavailability must surface as ErrUnavailable carrying the site — and
// never be misclassified as a protocol abort (ErrAbort), which would
// charge the conflict-retry budget for a down site.
func TestDMTUnavailableClassification(t *testing.T) {
	d := NewDMT(storage.New(), dmt.Options{K: 2, Sites: 2})
	d.Cluster().CrashSite(1, false)
	d.Begin(1) // txn 1 is homed at site 1
	_, rerr := d.Read(1, "x")
	werr := d.Write(1, "x", 9)
	cerr := d.Commit(1)
	for name, err := range map[string]error{"read": rerr, "write": werr, "commit": cerr} {
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("%s on crashed site: %v, want ErrUnavailable", name, err)
		}
		if errors.Is(err, ErrAbort) {
			t.Fatalf("%s misclassified as ErrAbort: %v", name, err)
		}
		var ue *UnavailableError
		if !errors.As(err, &ue) || ue.Site != 1 {
			t.Fatalf("%s error does not name site 1: %v", name, err)
		}
	}
}

// A transaction caught mid-flight by its home site's crash cannot
// commit; after recovery a fresh incarnation runs to commit and its
// writes land.
func TestDMTCommitAfterHomeSiteRecovery(t *testing.T) {
	st := storage.New()
	st.Set("x", 5)
	d := NewDMT(st, dmt.Options{
		K: 2, Sites: 2,
		HomeOfItem: func(string) int { return 0 },
	})
	run := func() error {
		d.Begin(1)
		if _, err := d.Read(1, "x"); err != nil {
			return err
		}
		if err := d.Write(1, "y", 9); err != nil {
			return err
		}
		return d.Commit(1)
	}
	if err := run(); err != nil { // healthy warm-up path works
		t.Fatalf("healthy run: %v", err)
	}
	d.Cluster().CrashSite(1, false)
	d.Begin(3) // also homed at site 1
	if err := d.Commit(3); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("commit on crashed home site: %v", err)
	}
	d.Abort(3)
	d.Cluster().RecoverSite(1)
	d.Begin(3)
	if _, err := d.Read(3, "x"); err != nil {
		t.Fatalf("post-recovery read: %v", err)
	}
	if err := d.Write(3, "z", 11); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	if err := d.Commit(3); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
	if st.Get("z") != 11 {
		t.Fatalf("z = %d after post-recovery commit", st.Get("z"))
	}
}
