package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/oplog"
	"repro/internal/storage"
)

// DMT adapts a DMT(k) cluster to the runtime Scheduler interface. The
// cluster itself is concurrency-safe (per-object ordered locking), so the
// adapter only guards its own write buffers; data publishes atomically at
// commit like every other scheduler in the suite.
//
// The default (striped) variant holds the item's latch across a read's
// protocol step and store fetch, and the write set's latches across
// commit-time publish, pinning each decision to the data state it was
// made against while disjoint items proceed concurrently. The coarse
// variant instead serializes every operation — protocol and store
// access — under one global mutex; it is the differential reference.
type DMT struct {
	cluster *dmt.Cluster
	store   *storage.Store
	sites   int
	latches *core.LatchTable // nil in the coarse reference variant
	gmu     *sync.Mutex      // non-nil in the coarse reference variant

	mu    sync.Mutex
	txns  map[int]*mtTxn
	steps atomic.Int64

	// trackWindows enables degraded-window accounting and home-site
	// admission on the step path. Only set when the cluster has a
	// transport: fault-free runs skip the per-op SiteUp check entirely.
	trackWindows bool

	// Degraded-mode commit hand-off (SetParking). parkSem bounds how
	// many commits may wait at once; nil means fail fast.
	parking Parking
	parkSem chan struct{}

	// Per-site circuit breaker (SetBreaker). When a site's circuit is
	// open, admitStep fails the attempt fast with ErrUnavailable instead
	// of letting it park or probe a transport that will not answer; the
	// step, probe and commit paths feed the breaker's failure detector.
	breaker *admit.Breaker

	parked      atomic.Int64 // commits that entered the hand-off queue
	healed      atomic.Int64 // parked commits released by a heal/recovery
	expired     atomic.Int64 // parked commits that hit the deadline
	rejected    atomic.Int64 // commits refused because the queue was full
	winAttempts atomic.Int64 // commit attempts made during a degraded window
	winCommits  atomic.Int64 // of those, how many committed
}

// Parking configures degraded-mode commits: instead of failing fast,
// an attempt whose home site is crashed parks in a bounded hand-off
// queue until the site heals or the deadline expires. Parking engages
// at two points: at commit time (everything validated, only the final
// decision pending), and at an attempt's FIRST protocol step (nothing
// validated yet, so resuming after the heal is indistinguishable from
// a fresh attempt). An attempt that loses its home site mid-flight
// still fails fast — its validated steps died with the site's volatile
// state. Parked attempts hold no latches, so reads and writes at
// reachable sites proceed while they wait.
type Parking struct {
	// Capacity bounds concurrently parked commits (backpressure); 0
	// disables parking (fail-fast, the pre-degraded behavior).
	Capacity int
	// Deadline is the maximum wall-clock wait before the parked commit
	// gives up with ErrUnavailable (default 250ms).
	Deadline time.Duration
	// Poll is the base probe interval while parked; each sleep is
	// jittered ±50% from the seeded sequence (default 200µs).
	Poll time.Duration
	// Seed drives the poll jitter.
	Seed int64
}

func (p Parking) withDefaults() Parking {
	if p.Deadline <= 0 {
		p.Deadline = 250 * time.Millisecond
	}
	if p.Poll <= 0 {
		p.Poll = 200 * time.Microsecond
	}
	return p
}

// DegradedStats is a snapshot of the degraded-mode commit counters.
type DegradedStats struct {
	Parked   int64 // commits that entered the hand-off queue
	Healed   int64 // parked commits released by heal/recovery
	Expired  int64 // parked commits that hit the deadline
	Rejected int64 // commits refused by queue backpressure
	// WindowAttempts/WindowCommits measure attempt-level commit
	// availability during degraded windows (a site down or a partition
	// active): an attempt counts when it reaches commit during a window
	// or runs into its down home site at a step, and counts as committed
	// when that same attempt goes on to commit. The ratio is what
	// degraded-mode parking improves over fail-fast — a parked attempt
	// rides out the outage and commits; a failed-fast one is charged as
	// an unavailable attempt.
	WindowAttempts int64
	WindowCommits  int64
}

// Availability returns WindowCommits/WindowAttempts (1 when no commit
// was attempted during a degraded window).
func (s DegradedStats) Availability() float64 {
	if s.WindowAttempts == 0 {
		return 1
	}
	return float64(s.WindowCommits) / float64(s.WindowAttempts)
}

// SetParking enables (or, with Capacity 0, disables) degraded-mode
// commit parking. Call before traffic flows.
func (d *DMT) SetParking(p Parking) {
	d.parking = p.withDefaults()
	if p.Capacity > 0 {
		d.parkSem = make(chan struct{}, p.Capacity)
	} else {
		d.parkSem = nil
	}
}

// SetBreaker installs a per-site circuit breaker in front of every
// protocol step. Call before traffic flows; nil removes it.
func (d *DMT) SetBreaker(b *admit.Breaker) { d.breaker = b }

// Breaker returns the installed circuit breaker (nil when none).
func (d *DMT) Breaker() *admit.Breaker { return d.breaker }

// Degraded returns a snapshot of the degraded-mode commit counters.
func (d *DMT) Degraded() DegradedStats {
	return DegradedStats{
		Parked:         d.parked.Load(),
		Healed:         d.healed.Load(),
		Expired:        d.expired.Load(),
		Rejected:       d.rejected.Load(),
		WindowAttempts: d.winAttempts.Load(),
		WindowCommits:  d.winCommits.Load(),
	}
}

// NewDMT returns a DMT(k) runtime scheduler over the store with the
// striped data path.
func NewDMT(store *storage.Store, opts dmt.Options) *DMT {
	d := newDMT(store, opts)
	d.latches = core.NewLatchTable(engine.DefaultStripes)
	return d
}

// NewDMTCoarse returns the coarse DMT(k) runtime scheduler: one global
// mutex serializes every operation end to end, store access included.
func NewDMTCoarse(store *storage.Store, opts dmt.Options) *DMT {
	d := newDMT(store, opts)
	d.gmu = &sync.Mutex{}
	return d
}

func newDMT(store *storage.Store, opts dmt.Options) *DMT {
	return &DMT{
		cluster:      dmt.NewCluster(opts),
		store:        store,
		sites:        opts.Sites,
		txns:         make(map[int]*mtTxn),
		trackWindows: opts.Transport != nil,
	}
}

// serialize takes the coarse variant's global mutex; a no-op when
// striped. Returns the unlock.
func (d *DMT) serialize() func() {
	if d.gmu == nil {
		return func() {}
	}
	d.gmu.Lock()
	return d.gmu.Unlock
}

// latch locks the given items' latches; a no-op when coarse. Returns
// the unlock.
func (d *DMT) latch(items ...string) func() {
	if d.latches == nil {
		return func() {}
	}
	return d.latches.Lock(items...)
}

// Name implements Scheduler.
func (d *DMT) Name() string {
	if d.gmu != nil {
		return fmt.Sprintf("DMT/%dsites/coarse", d.sites)
	}
	return fmt.Sprintf("DMT/%dsites", d.sites)
}

// Cluster exposes the underlying cluster (metrics).
func (d *DMT) Cluster() *dmt.Cluster { return d.cluster }

// Begin implements Scheduler.
func (d *DMT) Begin(txn int) {
	d.mu.Lock()
	d.txns[txn] = &mtTxn{writes: make(map[string]int64)}
	d.mu.Unlock()
}

// state returns the live incarnation's buffers, or nil if the
// transaction has no live incarnation (never began, or was aborted by a
// timed-out runtime attempt whose straggler operation arrives late).
// Returning nil instead of panicking keeps a degraded run alive: the
// caller answers such stray operations with a plain abort.
func (d *DMT) state(txn int) *mtTxn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.txns[txn]
}

// Read implements Scheduler. Striped: the item's latch is held from
// the protocol step through the store fetch, so the value read is the
// committed state the decision was made against.
func (d *DMT) Read(txn int, item string) (int64, error) {
	defer d.serialize()()
	st := d.state(txn)
	if st == nil {
		return 0, Abort(txn, 0, "no live incarnation")
	}
	d.mu.Lock()
	if v, ok := st.writes[item]; ok {
		d.mu.Unlock()
		return v, nil
	}
	d.mu.Unlock()
	if err := d.admitStep(txn, st); err != nil {
		return 0, err
	}
	defer d.latch(item)()
	dec := d.cluster.Step(oplog.R(txn, item))
	d.observeStep(txn, dec)
	if dec.Verdict == core.Unavailable {
		return 0, Unavailable(txn, dec.Site, "read unreachable")
	}
	if dec.Verdict == core.Reject {
		d.mu.Lock()
		st.blocker = dec.Blocker
		d.mu.Unlock()
		return 0, Abort(txn, dec.Blocker, "read rejected")
	}
	d.mu.Lock()
	st.stepped = true
	d.mu.Unlock()
	// No dirty-read window: the cluster publishes WT(x) at write time but
	// the data publishes at commit; conservatively abort reads over items
	// with a live writer (cheap check via the adapter's live set).
	if w := d.cluster.WTHolder(item); w != 0 && w != txn {
		d.mu.Lock()
		_, live := d.txns[w]
		d.mu.Unlock()
		if live {
			return 0, Abort(txn, w, "read over uncommitted writer")
		}
	}
	d.maybeGC()
	return d.store.Get(item), nil
}

// Write implements Scheduler: validated immediately at the cluster,
// buffered for atomic publication at commit.
func (d *DMT) Write(txn int, item string, v int64) error {
	defer d.serialize()()
	st := d.state(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	if err := d.admitStep(txn, st); err != nil {
		return err
	}
	// No write-write inversion: with deferred writes, two live
	// transactions writing the same item would both hold buffered
	// values, and whichever COMMITS last would publish last — if that is
	// the older-timestamped writer, the store ends up with the stale
	// value and the committed history has a cycle. Mirror the read
	// path's guard: abort rather than step over a live uncommitted
	// writer. The item's latch is held from the check through the
	// protocol step so the previous writer cannot publish (nor a new
	// writer slip in) between the two.
	unlock := d.latch(item)
	if w := d.cluster.WTHolder(item); w != 0 && w != txn {
		d.mu.Lock()
		_, live := d.txns[w]
		if live {
			st.blocker = w
		}
		d.mu.Unlock()
		if live {
			unlock()
			return Abort(txn, w, "write over uncommitted writer")
		}
	}
	dec := d.cluster.Step(oplog.W(txn, item))
	unlock()
	d.observeStep(txn, dec)
	if dec.Verdict == core.Unavailable {
		return Unavailable(txn, dec.Site, "write unreachable")
	}
	if dec.Verdict == core.Reject {
		d.mu.Lock()
		st.blocker = dec.Blocker
		d.mu.Unlock()
		return Abort(txn, dec.Blocker, "write rejected")
	}
	d.mu.Lock()
	st.writes[item] = v
	st.stepped = true
	d.mu.Unlock()
	return nil
}

// admitStep is the degraded-mode gate in front of every protocol step:
// when the transaction's home site is down, the attempt is counted
// against the degraded window once, and — if parking is enabled and
// nothing has been validated in this incarnation yet — parked until
// the site heals. A home that stays down past the deadline, a full
// queue, or a mid-flight loss (some step already validated against
// state the crash destroyed) all fail fast with ErrUnavailable, which
// the runtime's unavailability budget absorbs. No-op without a
// transport.
func (d *DMT) admitStep(txn int, st *mtTxn) error {
	if !d.trackWindows && d.breaker == nil {
		return nil
	}
	home := d.cluster.TxnSite(txn)
	if d.trackWindows && !d.cluster.SiteUp(home) {
		d.mu.Lock()
		counted, stepped := st.winCounted, st.stepped
		st.winCounted = true
		d.mu.Unlock()
		if !counted {
			d.winAttempts.Add(1)
		}
		// Open circuit: fail fast before parking — the whole point of
		// the breaker is not to burn a parked attempt's deadline against
		// a site the detector already holds Down. The half-open probe
		// that Allow lets through still takes the normal path below.
		if d.breaker != nil && !d.breaker.Allow(home) {
			return Unavailable(txn, home, "site breaker open")
		}
		if d.parkSem == nil || stepped {
			return Unavailable(txn, home, "home site down")
		}
		return d.parkWait(txn, home)
	}
	// Site looks up locally but the circuit may still be open (cooldown
	// running after a heal): fail fast until a probe closes it.
	if d.breaker != nil && !d.breaker.Allow(home) {
		return Unavailable(txn, home, "site breaker open")
	}
	return nil
}

// observeStep feeds the breaker from one protocol step's outcome: an
// Unavailable verdict is a failed contact with the unreachable site,
// any decided verdict (Accept or Reject — the protocol answered) is a
// successful contact with the transaction's acting home site.
func (d *DMT) observeStep(txn int, dec core.Decision) {
	if d.breaker == nil {
		return
	}
	if dec.Verdict == core.Unavailable {
		d.breaker.Observe(dec.Site, false)
	} else {
		d.breaker.Observe(d.cluster.TxnSite(txn), true)
	}
}

// Commit implements Scheduler. A transaction whose home site crashed
// mid-flight cannot commit immediately: without parking the error is
// retryable and the runtime re-runs the transaction once the site
// recovers (fail-fast); with parking (SetParking) the commit waits in a
// bounded hand-off queue for the site to heal, turning the crash window
// from guaranteed aborts into mostly-delayed commits. Parking happens
// BEFORE the coarse variant's global mutex is taken, so waiting commits
// never block reads and writes at reachable sites.
func (d *DMT) Commit(txn int) error {
	home := d.cluster.TxnSite(txn)
	var track bool
	if d.trackWindows {
		d.mu.Lock()
		if st := d.txns[txn]; st != nil && st.winCounted {
			track = true // attempt already counted at a parked/refused step
		}
		d.mu.Unlock()
		if !track && d.cluster.InDegradedWindow() {
			track = true
			d.winAttempts.Add(1)
		}
	}
	if !d.cluster.SiteUp(home) {
		if err := d.parkCommit(txn, home); err != nil {
			return err
		}
	}
	defer d.serialize()()
	d.mu.Lock()
	st := d.txns[txn]
	d.mu.Unlock()
	if st != nil {
		// Striped: hold the write set's latches across the publish and
		// the protocol commit, so a concurrent reader of a written item
		// sees either the pre-commit state with the pre-commit ordering
		// or the post-commit state with the post-commit ordering. The
		// live-set entry is removed only after the publish: the
		// uncommitted-writer guards key off it, and deleting it first
		// would open a window where a guard sees "not live" while the
		// buffered writes are still unpublished.
		items := make([]string, 0, len(st.writes))
		for x := range st.writes {
			items = append(items, x)
		}
		unlock := d.latch(items...)
		d.store.ApplyTxn(txn, st.writes)
		d.cluster.Commit(txn)
		d.mu.Lock()
		delete(d.txns, txn)
		d.mu.Unlock()
		unlock()
	} else {
		d.cluster.Commit(txn)
	}
	if d.breaker != nil {
		d.breaker.Observe(home, true)
	}
	if track {
		d.winCommits.Add(1)
	}
	d.maybeGC()
	return nil
}

// parkCommit parks a commit whose home site is down (fail-fast without
// a queue — the pre-degraded behavior).
func (d *DMT) parkCommit(txn, home int) error {
	if d.parkSem == nil {
		return Unavailable(txn, home, "commit on crashed home site")
	}
	return d.parkWait(txn, home)
}

// parkWait is the degraded-mode hand-off: wait (bounded in space by
// the queue capacity and in time by the deadline) for the home site to
// come back. Each poll probes the site THROUGH the transport, advancing
// the fault injector's logical clock — so scheduled heal and recovery
// events keep firing even when every worker is parked here, and the
// cluster cannot livelock waiting for a clock that only traffic drives.
func (d *DMT) parkWait(txn, home int) error {
	sem := d.parkSem
	select {
	case sem <- struct{}{}:
	default:
		d.rejected.Add(1)
		return Unavailable(txn, home, "parking queue full")
	}
	defer func() { <-sem }()
	d.parked.Add(1)
	deadline := time.Now().Add(d.parking.Deadline)
	for tick := int64(1); ; tick++ {
		up := d.cluster.ProbeSite(home) == nil && d.cluster.SiteUp(home)
		if d.breaker != nil {
			d.breaker.Observe(home, up)
		}
		if up {
			d.healed.Add(1)
			return nil
		}
		if time.Now().After(deadline) {
			d.expired.Add(1)
			return Unavailable(txn, home, "parked attempt deadline expired")
		}
		base := d.parking.Poll
		j := time.Duration(fault.Mix(d.parking.Seed^int64(txn), tick) % uint64(base))
		time.Sleep(base/2 + j)
	}
}

// Abort implements Scheduler.
func (d *DMT) Abort(txn int) {
	defer d.serialize()()
	d.mu.Lock()
	st := d.txns[txn]
	blocker := 0
	if st != nil {
		blocker = st.blocker
	}
	delete(d.txns, txn)
	d.mu.Unlock()
	d.cluster.Abort(txn, blocker)
}

// maybeGC sweeps finished vectors every 256 scheduler steps.
func (d *DMT) maybeGC() {
	if d.steps.Add(1)%256 == 0 {
		d.cluster.GC()
	}
}
