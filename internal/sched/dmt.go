package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/oplog"
	"repro/internal/storage"
)

// DMT adapts a DMT(k) cluster to the runtime Scheduler interface. The
// cluster itself is concurrency-safe (per-object ordered locking), so the
// adapter only guards its own write buffers; data publishes atomically at
// commit like every other scheduler in the suite.
//
// The default (striped) variant holds the item's latch across a read's
// protocol step and store fetch, and the write set's latches across
// commit-time publish, pinning each decision to the data state it was
// made against while disjoint items proceed concurrently. The coarse
// variant instead serializes every operation — protocol and store
// access — under one global mutex; it is the differential reference.
type DMT struct {
	cluster *dmt.Cluster
	store   *storage.Store
	sites   int
	latches *core.LatchTable // nil in the coarse reference variant
	gmu     *sync.Mutex      // non-nil in the coarse reference variant

	mu    sync.Mutex
	txns  map[int]*mtTxn
	steps atomic.Int64
}

// NewDMT returns a DMT(k) runtime scheduler over the store with the
// striped data path.
func NewDMT(store *storage.Store, opts dmt.Options) *DMT {
	d := newDMT(store, opts)
	d.latches = core.NewLatchTable(engine.DefaultStripes)
	return d
}

// NewDMTCoarse returns the coarse DMT(k) runtime scheduler: one global
// mutex serializes every operation end to end, store access included.
func NewDMTCoarse(store *storage.Store, opts dmt.Options) *DMT {
	d := newDMT(store, opts)
	d.gmu = &sync.Mutex{}
	return d
}

func newDMT(store *storage.Store, opts dmt.Options) *DMT {
	return &DMT{
		cluster: dmt.NewCluster(opts),
		store:   store,
		sites:   opts.Sites,
		txns:    make(map[int]*mtTxn),
	}
}

// serialize takes the coarse variant's global mutex; a no-op when
// striped. Returns the unlock.
func (d *DMT) serialize() func() {
	if d.gmu == nil {
		return func() {}
	}
	d.gmu.Lock()
	return d.gmu.Unlock
}

// latch locks the given items' latches; a no-op when coarse. Returns
// the unlock.
func (d *DMT) latch(items ...string) func() {
	if d.latches == nil {
		return func() {}
	}
	return d.latches.Lock(items...)
}

// Name implements Scheduler.
func (d *DMT) Name() string {
	if d.gmu != nil {
		return fmt.Sprintf("DMT/%dsites/coarse", d.sites)
	}
	return fmt.Sprintf("DMT/%dsites", d.sites)
}

// Cluster exposes the underlying cluster (metrics).
func (d *DMT) Cluster() *dmt.Cluster { return d.cluster }

// Begin implements Scheduler.
func (d *DMT) Begin(txn int) {
	d.mu.Lock()
	d.txns[txn] = &mtTxn{writes: make(map[string]int64)}
	d.mu.Unlock()
}

// state returns the live incarnation's buffers, or nil if the
// transaction has no live incarnation (never began, or was aborted by a
// timed-out runtime attempt whose straggler operation arrives late).
// Returning nil instead of panicking keeps a degraded run alive: the
// caller answers such stray operations with a plain abort.
func (d *DMT) state(txn int) *mtTxn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.txns[txn]
}

// Read implements Scheduler. Striped: the item's latch is held from
// the protocol step through the store fetch, so the value read is the
// committed state the decision was made against.
func (d *DMT) Read(txn int, item string) (int64, error) {
	defer d.serialize()()
	st := d.state(txn)
	if st == nil {
		return 0, Abort(txn, 0, "no live incarnation")
	}
	d.mu.Lock()
	if v, ok := st.writes[item]; ok {
		d.mu.Unlock()
		return v, nil
	}
	d.mu.Unlock()
	defer d.latch(item)()
	dec := d.cluster.Step(oplog.R(txn, item))
	if dec.Verdict == core.Unavailable {
		return 0, Unavailable(txn, dec.Site, "read unreachable")
	}
	if dec.Verdict == core.Reject {
		d.mu.Lock()
		st.blocker = dec.Blocker
		d.mu.Unlock()
		return 0, Abort(txn, dec.Blocker, "read rejected")
	}
	// No dirty-read window: the cluster publishes WT(x) at write time but
	// the data publishes at commit; conservatively abort reads over items
	// with a live writer (cheap check via the adapter's live set).
	if w := d.cluster.WTHolder(item); w != 0 && w != txn {
		d.mu.Lock()
		_, live := d.txns[w]
		d.mu.Unlock()
		if live {
			return 0, Abort(txn, w, "read over uncommitted writer")
		}
	}
	d.maybeGC()
	return d.store.Get(item), nil
}

// Write implements Scheduler: validated immediately at the cluster,
// buffered for atomic publication at commit.
func (d *DMT) Write(txn int, item string, v int64) error {
	defer d.serialize()()
	st := d.state(txn)
	if st == nil {
		return Abort(txn, 0, "no live incarnation")
	}
	dec := d.cluster.Step(oplog.W(txn, item))
	if dec.Verdict == core.Unavailable {
		return Unavailable(txn, dec.Site, "write unreachable")
	}
	if dec.Verdict == core.Reject {
		d.mu.Lock()
		st.blocker = dec.Blocker
		d.mu.Unlock()
		return Abort(txn, dec.Blocker, "write rejected")
	}
	d.mu.Lock()
	st.writes[item] = v
	d.mu.Unlock()
	return nil
}

// Commit implements Scheduler. A transaction whose home site crashed
// mid-flight cannot commit: its write set is left intact and the error
// is retryable, so the runtime aborts and re-runs the transaction once
// the site recovers.
func (d *DMT) Commit(txn int) error {
	defer d.serialize()()
	if home := d.cluster.TxnSite(txn); !d.cluster.SiteUp(home) {
		return Unavailable(txn, home, "commit on crashed home site")
	}
	d.mu.Lock()
	st := d.txns[txn]
	delete(d.txns, txn)
	d.mu.Unlock()
	if st != nil {
		// Striped: hold the write set's latches across the publish and
		// the protocol commit, so a concurrent reader of a written item
		// sees either the pre-commit state with the pre-commit ordering
		// or the post-commit state with the post-commit ordering.
		items := make([]string, 0, len(st.writes))
		for x := range st.writes {
			items = append(items, x)
		}
		unlock := d.latch(items...)
		d.store.ApplyTxn(txn, st.writes)
		d.cluster.Commit(txn)
		unlock()
	} else {
		d.cluster.Commit(txn)
	}
	d.maybeGC()
	return nil
}

// Abort implements Scheduler.
func (d *DMT) Abort(txn int) {
	defer d.serialize()()
	d.mu.Lock()
	st := d.txns[txn]
	blocker := 0
	if st != nil {
		blocker = st.blocker
	}
	delete(d.txns, txn)
	d.mu.Unlock()
	d.cluster.Abort(txn, blocker)
}

// maybeGC sweeps finished vectors every 256 scheduler steps.
func (d *DMT) maybeGC() {
	if d.steps.Add(1)%256 == 0 {
		d.cluster.GC()
	}
}
