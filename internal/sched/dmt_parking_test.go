package sched

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dmt"
	"repro/internal/fault"
	"repro/internal/storage"
)

// newParkingDMT builds a 2-site DMT whose items all live at site 0, so
// transactions homed at site 1 (odd ids) can lose their home site while
// their item accesses stay reachable.
func newParkingDMT(t *testing.T, transport bool) (*DMT, *storage.Store) {
	t.Helper()
	st := storage.New()
	opts := dmt.Options{K: 2, Sites: 2, HomeOfItem: func(string) int { return 0 }}
	if transport {
		opts.Transport = fault.New(fault.Plan{Name: "none"}, 2, 1)
	}
	return NewDMT(st, opts), st
}

// A commit parked on a crashed home site must complete once the site
// recovers, and its writes must land.
func TestDMTParkedCommitReleasedByRecovery(t *testing.T) {
	d, st := newParkingDMT(t, false)
	d.SetParking(Parking{Capacity: 2, Deadline: 10 * time.Second, Poll: 100 * time.Microsecond})
	d.Begin(1) // homed at site 1
	if err := d.Write(1, "x", 7); err != nil {
		t.Fatalf("write: %v", err)
	}
	d.Cluster().CrashSite(1, false)
	done := make(chan error, 1)
	go func() { done <- d.Commit(1) }()
	waitFor(t, func() bool { return d.Degraded().Parked == 1 })
	d.Cluster().RecoverSite(1)
	if err := <-done; err != nil {
		t.Fatalf("parked commit after recovery: %v", err)
	}
	if st.Get("x") != 7 {
		t.Fatalf("x = %d after healed commit, want 7", st.Get("x"))
	}
	s := d.Degraded()
	if s.Parked != 1 || s.Healed != 1 || s.Expired != 0 {
		t.Fatalf("stats = %+v, want 1 parked, 1 healed", s)
	}
}

// A parked commit whose home site never returns must give up at the
// deadline with a retryable unavailability error.
func TestDMTParkedCommitDeadlineExpires(t *testing.T) {
	d, _ := newParkingDMT(t, false)
	d.SetParking(Parking{Capacity: 1, Deadline: 5 * time.Millisecond, Poll: 200 * time.Microsecond})
	d.Begin(1)
	if err := d.Write(1, "x", 7); err != nil {
		t.Fatalf("write: %v", err)
	}
	d.Cluster().CrashSite(1, false)
	err := d.Commit(1)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("expired parked commit: %v, want ErrUnavailable", err)
	}
	s := d.Degraded()
	if s.Parked != 1 || s.Expired != 1 || s.Healed != 0 {
		t.Fatalf("stats = %+v, want 1 parked, 1 expired", s)
	}
}

// The hand-off queue is bounded: a commit arriving while the queue is
// full fails fast instead of waiting, and is counted as rejected.
func TestDMTParkingQueueBackpressure(t *testing.T) {
	d, _ := newParkingDMT(t, false)
	d.SetParking(Parking{Capacity: 1, Deadline: 10 * time.Second, Poll: 100 * time.Microsecond})
	d.Begin(1) // both homed at site 1
	d.Begin(3)
	if err := d.Write(1, "x", 1); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	d.Cluster().CrashSite(1, false)
	done := make(chan error, 1)
	go func() { done <- d.Commit(1) }()
	waitFor(t, func() bool { return d.Degraded().Parked == 1 })
	if err := d.Commit(3); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("commit into full queue: %v, want ErrUnavailable", err)
	}
	if got := d.Degraded().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	d.Cluster().RecoverSite(1)
	if err := <-done; err != nil {
		t.Fatalf("parked commit after recovery: %v", err)
	}
}

// An attempt that has validated nothing yet parks at its FIRST protocol
// step and resumes after the heal — indistinguishable from a fresh
// attempt, so no validated state is lost.
func TestDMTFirstStepParksUntilHeal(t *testing.T) {
	d, st := newParkingDMT(t, true)
	d.SetParking(Parking{Capacity: 2, Deadline: 10 * time.Second, Poll: 100 * time.Microsecond})
	st.Set("x", 41)
	d.Begin(1)
	d.Cluster().CrashSite(1, false)
	type res struct {
		v   int64
		err error
	}
	done := make(chan res, 1)
	go func() {
		v, err := d.Read(1, "x")
		done <- res{v, err}
	}()
	waitFor(t, func() bool { return d.Degraded().Parked == 1 })
	d.Cluster().RecoverSite(1)
	r := <-done
	if r.err != nil || r.v != 41 {
		t.Fatalf("first-step read after heal: v=%d err=%v", r.v, r.err)
	}
	if err := d.Commit(1); err != nil {
		t.Fatalf("commit: %v", err)
	}
	s := d.Degraded()
	if s.Parked != 1 || s.Healed != 1 {
		t.Fatalf("stats = %+v, want 1 parked, 1 healed", s)
	}
	if s.WindowAttempts != 1 || s.WindowCommits != 1 {
		t.Fatalf("window stats = %+v, want 1/1", s)
	}
}

// An attempt caught MID-flight by its home site's crash fails fast —
// its validated steps died with the site's volatile state, so parking
// it would resume from state that no longer exists.
func TestDMTMidFlightLossFailsFast(t *testing.T) {
	d, _ := newParkingDMT(t, true)
	d.SetParking(Parking{Capacity: 2, Deadline: 10 * time.Second, Poll: 100 * time.Microsecond})
	d.Begin(1)
	if err := d.Write(1, "x", 7); err != nil { // validated at healthy site 0
		t.Fatalf("write: %v", err)
	}
	d.Cluster().CrashSite(1, false)
	err := d.Write(1, "y", 8)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("mid-flight step on crashed home: %v, want ErrUnavailable", err)
	}
	s := d.Degraded()
	if s.Parked != 0 {
		t.Fatalf("mid-flight attempt parked: %+v", s)
	}
	if s.WindowAttempts != 1 {
		t.Fatalf("window attempts = %d, want 1", s.WindowAttempts)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
