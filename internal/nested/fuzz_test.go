package nested

import (
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/oplog"
)

// Lifecycle fuzz for the hierarchical protocol: random group shapes and
// operation sequences must never panic, and accepted abort-free
// sequences must be D-serializable.
func TestFuzzNestedLifecycle(t *testing.T) {
	items := []string{"a", "b", "c"}
	for seed := int64(0); seed < 4000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		levels := 1 + rng.Intn(3)
		ks := make([]int, levels)
		for i := range ks {
			ks[i] = 1 + rng.Intn(3)
		}
		// Random static assignment: txn -> unit per level.
		assign := map[[2]int]int{}
		unitOf := func(txn, lvl int) int {
			key := [2]int{txn, lvl}
			if u, ok := assign[key]; ok {
				return u
			}
			u := 1 + rng.Intn(2)
			// Nesting consistency: units at level l+1 derive from level l
			// (two txns in the same group share supergroups).
			assign[key] = u
			return u
		}
		// Precompute groups so that the hierarchy is consistent: group
		// determines supergroup.
		groupOf := map[int]int{}
		superOf := map[int]int{}
		for txn := 1; txn <= 5; txn++ {
			groupOf[txn] = 1 + rng.Intn(3)
		}
		for g := 1; g <= 3; g++ {
			superOf[g] = 1 + rng.Intn(2)
		}
		_ = unitOf
		s := NewScheduler(Options{
			Ks: ks,
			UnitOf: func(txn, lvl int) int {
				if lvl == 1 {
					return groupOf[txn]
				}
				return superOf[groupOf[txn]]
			},
		})
		var accepted []oplog.Op
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panic: %v", seed, r)
				}
			}()
			for step := 0; step < 30; step++ {
				txn := 1 + rng.Intn(5)
				it := items[rng.Intn(len(items))]
				var op oplog.Op
				if rng.Intn(2) == 0 {
					op = oplog.R(txn, it)
				} else {
					op = oplog.W(txn, it)
				}
				if d := s.Step(op); d.Verdict == core.Accept {
					accepted = append(accepted, op)
				}
			}
		}()
		if len(accepted) > 0 && !classify.DSR(oplog.NewLog(accepted...)) {
			t.Fatalf("seed %d: accepted non-DSR sequence %v", seed, oplog.NewLog(accepted...))
		}
	}
}
