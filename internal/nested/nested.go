// Package nested implements the protocol MT(k1, k2) of Section V-A for
// nested/grouped transaction models, generalized to MT(k1, ..., kl) for a
// hierarchy of l levels. Transactions are statically partitioned into
// groups (and groups into supergroups, ...). Serializability is assured
// level by level: a dependency between two transactions is encoded at the
// coarsest level at which they belong to different units, using that
// level's timestamp table and the MT(k) encoding rules. Group dependencies
// are therefore antisymmetric — once G1 -> G2 is encoded, any operation
// implying G2 -> G1 is rejected.
package nested

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oplog"
)

// Options configures a hierarchical MT(k1, ..., kl) scheduler.
type Options struct {
	// Ks[0] is the vector size of the transaction-level table (the
	// paper's k1); Ks[1] of the group level (k2); further entries add
	// supergroup levels. len(Ks) >= 1.
	Ks []int
	// UnitOf maps a transaction to its containing unit id at each level
	// >= 1 (UnitOf(t, 1) = group, UnitOf(t, 2) = supergroup, ...). It
	// must be static for the lifetime of a transaction and must map the
	// virtual transaction 0 to unit 0 at every level. Level 0 is the
	// transaction itself and is never queried. A nil UnitOf puts every
	// transaction in group 0 (reducing the protocol to MT(Ks[0])).
	UnitOf func(txn, lvl int) int
}

// Scheduler is the hierarchical multidimensional timestamp scheduler.
type Scheduler struct {
	opts   Options
	tables []*engine.VectorTable // tables[lvl]; lvl 0 = transactions
	rt     map[string]int
	wt     map[string]int
}

// NewScheduler returns an initialized MT(k1, ..., kl) scheduler.
func NewScheduler(opts Options) *Scheduler {
	if len(opts.Ks) == 0 {
		panic("nested: Options.Ks must not be empty")
	}
	s := &Scheduler{
		opts: opts,
		rt:   make(map[string]int),
		wt:   make(map[string]int),
	}
	for _, k := range opts.Ks {
		s.tables = append(s.tables, engine.NewVectorTable(k))
	}
	return s
}

// New2Level is the paper's MT(k1, k2): transaction vectors of size k1,
// group vectors of size k2, with the given transaction-to-group map
// (transactions absent from the map form the default group 0 alongside
// the virtual transaction).
func New2Level(k1, k2 int, groups map[int]int) *Scheduler {
	return NewScheduler(Options{
		Ks: []int{k1, k2},
		UnitOf: func(txn, lvl int) int {
			return groups[txn]
		},
	})
}

// Levels returns the number of hierarchy levels.
func (s *Scheduler) Levels() int { return len(s.tables) }

// unit returns the id of txn's containing unit at the given level.
func (s *Scheduler) unit(txn, lvl int) int {
	if lvl == 0 {
		return txn
	}
	if s.opts.UnitOf == nil {
		return 0
	}
	return s.opts.UnitOf(txn, lvl)
}

// encodeLevel returns the coarsest level at which a and b belong to
// different units, or -1 if they are the same transaction.
func (s *Scheduler) encodeLevel(a, b int) int {
	if a == b {
		return -1
	}
	for lvl := len(s.tables) - 1; lvl >= 0; lvl-- {
		if s.unit(a, lvl) != s.unit(b, lvl) {
			return lvl
		}
	}
	// Distinct transactions always differ at level 0.
	panic(fmt.Sprintf("nested: distinct transactions %d and %d share all units", a, b))
}

// less reports whether a precedes b in the established hierarchical order.
func (s *Scheduler) less(a, b int) bool {
	lvl := s.encodeLevel(a, b)
	if lvl < 0 {
		return false
	}
	return s.tables[lvl].Less(s.unit(a, lvl), s.unit(b, lvl))
}

// set tries to establish or encode the dependency a -> b at the
// appropriate level, reporting success.
func (s *Scheduler) set(a, b int) bool {
	lvl := s.encodeLevel(a, b)
	if lvl < 0 {
		return true
	}
	return s.tables[lvl].Set(s.unit(a, lvl), s.unit(b, lvl), false)
}

// Watermarks returns the hierarchy's monotone counter-consumption
// watermarks: the max over the per-level tables' engine watermarks.
func (s *Scheduler) Watermarks() (lo, hi int64) {
	for _, t := range s.tables {
		l, u := t.Watermarks()
		lo, hi = max(lo, l), max(hi, u)
	}
	return lo, hi
}

// RaiseWatermarks lifts every level's counters to at least the given
// watermarks (recovery seeding), raise-only.
func (s *Scheduler) RaiseWatermarks(lo, hi int64) {
	for _, t := range s.tables {
		t.RaiseWatermarks(lo, hi)
	}
}

// TxnVector returns a copy of the transaction-level vector TS(i).
func (s *Scheduler) TxnVector(i int) *core.Vector { return s.tables[0].Vector(i).Clone() }

// UnitVector returns a copy of the unit vector at the given level
// (GS(g) for lvl 1 in the 2-level protocol).
func (s *Scheduler) UnitVector(lvl, id int) *core.Vector {
	return s.tables[lvl].Vector(id).Clone()
}

// maxHolder picks RT(x) or WT(x), whichever has the larger timestamp in
// the hierarchical order (they are always comparable, like in MT(k)).
func (s *Scheduler) maxHolder(x string) int {
	if s.less(s.rt[x], s.wt[x]) {
		return s.wt[x]
	}
	return s.rt[x]
}

// Step schedules one operation under the hierarchical protocol.
func (s *Scheduler) Step(op oplog.Op) core.Decision {
	for _, x := range op.Items {
		j := s.maxHolder(x)
		if op.Kind == oplog.Read {
			if s.set(j, op.Txn) {
				s.rt[x] = op.Txn
				continue
			}
			// The line-9 analogue: slot between the write and the read.
			if j == s.rt[x] && s.less(s.wt[x], op.Txn) {
				continue
			}
			return core.Decision{Op: op, Verdict: core.Reject, Blocker: j, Item: x}
		}
		if s.set(j, op.Txn) {
			s.wt[x] = op.Txn
			continue
		}
		return core.Decision{Op: op, Verdict: core.Reject, Blocker: j, Item: x}
	}
	return core.Decision{Op: op, Verdict: core.Accept}
}

// AcceptLog runs a complete log, returning (true, -1) on full acceptance
// or (false, i) with the index of the first rejected operation.
func (s *Scheduler) AcceptLog(l *oplog.Log) (bool, int) {
	for idx, op := range l.Ops {
		if d := s.Step(op); d.Verdict == core.Reject {
			return false, idx
		}
	}
	return true, -1
}

// SerialOrder returns a serialization order of the given transactions
// consistent with the established hierarchical relations.
func (s *Scheduler) SerialOrder(txns []int) []int {
	n := len(txns)
	order := make([]int, 0, n)
	used := make([]bool, n)
	for len(order) < n {
		pick := -1
		for p := 0; p < n; p++ {
			if used[p] {
				continue
			}
			ok := true
			for q := 0; q < n; q++ {
				if !used[q] && q != p && s.less(txns[q], txns[p]) {
					ok = false
					break
				}
			}
			if ok && (pick == -1 || txns[p] < txns[pick]) {
				pick = p
			}
		}
		if pick == -1 {
			panic("nested: established relations are cyclic")
		}
		used[pick] = true
		order = append(order, txns[pick])
	}
	return order
}

// SignatureGroups implements the Example 6 partition rule: transactions
// with identical read/write item-set signatures share a group. It returns
// a transaction-to-group map suitable for New2Level; group ids start at 1
// in order of first appearance in the log.
func SignatureGroups(l *oplog.Log) map[int]int {
	sig := map[int]string{}
	for _, op := range l.Ops {
		key := op.Kind.String() + "{"
		for _, x := range op.Items {
			key += x + ","
		}
		key += "}"
		sig[op.Txn] += key
	}
	groupOf := map[string]int{}
	groups := map[int]int{}
	next := 1
	for _, t := range l.Transactions() {
		k := sig[t]
		if _, ok := groupOf[k]; !ok {
			groupOf[k] = next
			next++
		}
		groups[t] = groupOf[k]
	}
	return groups
}

// SiteGroups implements the Example 5 partition rule: transactions
// initiated at the same site share a group. siteOf maps a transaction to
// its site id (site ids must be >= 1; unknown transactions fall into the
// virtual group 0).
func SiteGroups(siteOf map[int]int) map[int]int {
	out := make(map[int]int, len(siteOf))
	for t, s := range siteOf {
		out[t] = s
	}
	return out
}
