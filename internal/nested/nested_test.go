package nested

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oplog"
)

func TestPanicsOnEmptyKs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScheduler(Options{})
}

// Example 4 / Table III: G1 = {T1, T2}, G2 = {T3}, k1 = k2 = 2 over the
// log R1[x] R2[y] W2[x] R3[x]. The dependencies arrive as a: G0->G1,
// b: G0->G1 (already encoded), c: T1->T2 (in-group), d: G1->G2.
func TestTableIII(t *testing.T) {
	s := New2Level(2, 2, map[int]int{1: 1, 2: 1, 3: 2})
	steps := []struct {
		op    oplog.Op
		check map[string]string // label -> expected vector
	}{
		{oplog.R(1, "x"), map[string]string{"GS1": "<1,*>"}},
		{oplog.R(2, "y"), map[string]string{"GS1": "<1,*>"}},
		{oplog.W(2, "x"), map[string]string{"TS1": "<1,*>", "TS2": "<2,*>"}},
		{oplog.R(3, "x"), map[string]string{"GS2": "<2,*>"}},
	}
	get := func(label string) string {
		switch label {
		case "GS0":
			return s.UnitVector(1, 0).String()
		case "GS1":
			return s.UnitVector(1, 1).String()
		case "GS2":
			return s.UnitVector(1, 2).String()
		case "TS1":
			return s.TxnVector(1).String()
		case "TS2":
			return s.TxnVector(2).String()
		case "TS3":
			return s.TxnVector(3).String()
		}
		t.Fatalf("bad label %q", label)
		return ""
	}
	for _, st := range steps {
		if d := s.Step(st.op); d.Verdict != core.Accept {
			t.Fatalf("%v rejected", st.op)
		}
		for label, want := range st.check {
			if got := get(label); got != want {
				t.Errorf("after %v: %s = %s, want %s", st.op, label, got, want)
			}
		}
	}
	// Resulting vectors row of Table III.
	for label, want := range map[string]string{
		"GS0": "<0,*>", "GS1": "<1,*>", "GS2": "<2,*>",
		"TS1": "<1,*>", "TS2": "<2,*>", "TS3": "<*,*>",
	} {
		if got := get(label); got != want {
			t.Errorf("resulting %s = %s, want %s", label, got, want)
		}
	}
}

// Example 4's closing remark: a later dependency T3 -> T2 is disallowed
// because it implies G2 -> G1 against the encoded G1 -> G2.
func TestGroupAntisymmetry(t *testing.T) {
	s := New2Level(2, 2, map[int]int{1: 1, 2: 1, 3: 2})
	l := oplog.MustParse("R1[x] R2[y] W2[x] R3[x] W3[w]")
	if ok, _ := s.AcceptLog(l); !ok {
		t.Fatal("setup log rejected")
	}
	// T2 reading w after T3 wrote it would create T3 -> T2, i.e. G2 -> G1.
	if d := s.Step(oplog.R(2, "w")); d.Verdict != core.Reject {
		t.Fatalf("G2 -> G1 dependency accepted: %v", d.Verdict)
	}
}

func TestSerialOrderTwoLevels(t *testing.T) {
	s := New2Level(2, 2, map[int]int{1: 1, 2: 1, 3: 2})
	l := oplog.MustParse("R1[x] R2[y] W2[x] R3[x]")
	if ok, _ := s.AcceptLog(l); !ok {
		t.Fatal("log rejected")
	}
	// Group order G1 < G2 and in-group order T1 < T2 force T1 T2 T3.
	if got := s.SerialOrder([]int{1, 2, 3}); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("order = %v", got)
	}
}

// With every transaction in its own group, MT(k1,k2) degenerates to group-
// level MT(k2); with all in one group it degenerates to MT(k1). Both must
// accept exactly what the flat protocol accepts.
func TestReductionToFlatMT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		l := randomTwoStep(rng, 3, 3)
		want2 := engine.Accepts(2, l)

		oneGroup := New2Level(2, 2, map[int]int{})
		got1, _ := oneGroup.AcceptLog(l)
		if got1 != want2 {
			t.Fatalf("single-group MT(2,2) = %v, MT(2) = %v on %v", got1, want2, l)
		}

		selfGroups := map[int]int{}
		for _, txn := range l.Transactions() {
			selfGroups[txn] = txn
		}
		singleton := New2Level(2, 2, selfGroups)
		got2, _ := singleton.AcceptLog(l)
		if got2 != want2 {
			t.Fatalf("singleton-groups MT(2,2) = %v, MT(2) = %v on %v", got2, want2, l)
		}
	}
}

// Accepted logs remain D-serializable under grouping.
func TestQuickNestedAcceptsOnlyDSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomTwoStep(rng, 4, 3)
		groups := map[int]int{}
		for _, txn := range l.Transactions() {
			groups[txn] = 1 + rng.Intn(2)
		}
		s := New2Level(2, 2, groups)
		n := 0
		for _, op := range l.Ops {
			if s.Step(op).Verdict == core.Reject {
				break
			}
			n++
		}
		if n == 0 {
			return true
		}
		return classify.DSR(l.Prefix(n))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Three-level hierarchy MT(k1,k2,k3): supergroup dependencies are encoded
// at the top table and stay antisymmetric.
func TestThreeLevels(t *testing.T) {
	// txns 1,2 in group 1; 3,4 in group 2; groups 1,2 in supergroup 1;
	// txn 5 in group 3 / supergroup 2.
	group := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3}
	super := map[int]int{1: 1, 2: 1, 3: 1, 4: 1, 5: 2}
	s := NewScheduler(Options{
		Ks: []int{2, 2, 2},
		UnitOf: func(txn, lvl int) int {
			if lvl == 1 {
				return group[txn]
			}
			return super[txn]
		},
	})
	// T1 writes x; T3 (different group, same supergroup) reads it:
	// encoded at the group level. T5 (different supergroup) reads it:
	// encoded at the supergroup level.
	l := oplog.MustParse("W1[x] R3[x] R5[x]")
	if ok, at := s.AcceptLog(l); !ok {
		t.Fatalf("rejected at %d", at)
	}
	if got := s.UnitVector(1, 1).String(); got == "<*,*>" {
		t.Error("group vector for G1 untouched; expected group-level encoding")
	}
	if got := s.UnitVector(2, 1).String(); got == "<*,*>" {
		t.Error("supergroup vector for S1 untouched; expected top-level encoding")
	}
	// Reverse supergroup dependency now rejected: T1 reading something T5
	// wrote implies S2 -> S1.
	if d := s.Step(oplog.W(5, "q")); d.Verdict != core.Accept {
		t.Fatal("W5[q] rejected")
	}
	if d := s.Step(oplog.R(1, "q")); d.Verdict != core.Reject {
		t.Fatal("supergroup antisymmetry violated")
	}
}

func TestSignatureGroups(t *testing.T) {
	// T1 and T3 share the signature R[x] W[y]; T2 differs.
	l := oplog.MustParse("R1[x] W1[y] R2[y] W2[x] R3[x] W3[y]")
	g := SignatureGroups(l)
	if g[1] != g[3] {
		t.Errorf("T1 and T3 should share a group: %v", g)
	}
	if g[1] == g[2] {
		t.Errorf("T1 and T2 should not share a group: %v", g)
	}
	if g[1] == 0 || g[2] == 0 {
		t.Errorf("group ids must start at 1: %v", g)
	}
}

func TestSiteGroups(t *testing.T) {
	g := SiteGroups(map[int]int{1: 2, 2: 2, 3: 5})
	if g[1] != 2 || g[2] != 2 || g[3] != 5 {
		t.Fatalf("SiteGroups = %v", g)
	}
}

func randomTwoStep(rng *rand.Rand, nTxns, nItems int) *oplog.Log {
	items := []string{"x", "y", "z"}[:nItems]
	type pend struct{ r, w oplog.Op }
	var pends []pend
	for t := 1; t <= nTxns; t++ {
		pends = append(pends, pend{
			oplog.R(t, items[rng.Intn(nItems)]),
			oplog.W(t, items[rng.Intn(nItems)]),
		})
	}
	var ops []oplog.Op
	emitted := make([]int, len(pends))
	for len(ops) < 2*len(pends) {
		i := rng.Intn(len(pends))
		if emitted[i] == 0 {
			ops = append(ops, pends[i].r)
			emitted[i] = 1
		} else if emitted[i] == 1 {
			ops = append(ops, pends[i].w)
			emitted[i] = 2
		}
	}
	return oplog.NewLog(ops...)
}
