// Package classify implements recognizers for the classes of serializable
// logs that form the paper's Fig. 4 hierarchy: DSR (D-serializable), SR
// (final-state serializable), SSR (strictly serializable), 2PL (producible
// by a two-phase-locking scheduler), TO(1) (Definition 4) and TO(k) (the
// class accepted by the protocol MT(k)).
//
// SR and SSR are decided by brute force over candidate serial orders and
// are therefore intended for small logs (the Fig. 4 census uses three
// transactions; composites use up to nine). DSR, 2PL, TO(1) and TO(k) run
// in polynomial time.
package classify

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/oplog"
)

// DSR reports whether the log is D-serializable: its dependency relation
// (Definition 7) is a partial order, i.e. the direct-conflict digraph is
// acyclic (Theorem 1).
func DSR(l *oplog.Log) bool {
	g, _ := l.DependencyGraph()
	return !g.HasCycle()
}

// TOk reports whether the log is in TO(k), the class recognized by the
// protocol MT(k).
func TOk(k int, l *oplog.Log) bool { return engine.Accepts(k, l) }

// TOkPlus reports whether the log is in TO(k⁺) = TO(1) ∪ ... ∪ TO(k), the
// class recognized by the composite protocol MT(k⁺).
func TOkPlus(k int, l *oplog.Log) bool {
	for h := 1; h <= k; h++ {
		if engine.Accepts(h, l) {
			return true
		}
	}
	return false
}

// TO1 implements Definition 4 directly: the log is 1-dimensional timestamp
// ordering iff choosing s_i = π(first operation of T_i) satisfies
// conditions i)-iv) — every ordered pair of same-item accesses by distinct
// transactions (including read-read, per condition iv) occurs in s-order.
func TO1(l *oplog.Log) bool {
	s := map[int]int{} // s_i = position of T_i's first operation
	for pos, op := range l.Ops {
		if _, ok := s[op.Txn]; !ok {
			s[op.Txn] = pos
		}
	}
	for i := 0; i < len(l.Ops); i++ {
		for j := i + 1; j < len(l.Ops); j++ {
			a, b := l.Ops[i], l.Ops[j]
			if a.Txn == b.Txn {
				continue
			}
			shared := false
			for _, x := range a.Items {
				if b.Accesses(x) {
					shared = true
					break
				}
			}
			if shared && s[a.Txn] >= s[b.Txn] {
				return false
			}
		}
	}
	return true
}

// readsFrom computes, for every (transaction, item) pair read in the log,
// the transaction that wrote the version read (0 denotes the initial
// database state). A transaction reading an item twice reads whichever
// version is current at each point; the map records the version of the
// LAST such read, which is sufficient for the one-read-per-item models we
// classify.
type rfKey struct {
	Txn  int
	Item string
}

func readsFrom(l *oplog.Log) map[rfKey]int {
	writer := map[string]int{} // current writer per item
	rf := make(map[rfKey]int)
	for _, op := range l.Ops {
		for _, x := range op.Items {
			if op.Kind == oplog.Read {
				rf[rfKey{op.Txn, x}] = writer[x]
			} else {
				writer[x] = op.Txn
			}
		}
	}
	return rf
}

// finalWriters returns the last writer of every item (items never written
// are omitted; their final value is the initial one in both logs compared).
func finalWriters(l *oplog.Log) map[string]int {
	fw := map[string]int{}
	for _, op := range l.Ops {
		if op.Kind == oplog.Write {
			for _, x := range op.Items {
				fw[x] = op.Txn
			}
		}
	}
	return fw
}

// liveSet computes the transactions whose writes can influence the final
// database state under Herbrand semantics: final writers, plus
// transitively every transaction a live transaction reads from.
func liveSet(l *oplog.Log, rf map[rfKey]int, fw map[string]int) map[int]bool {
	live := map[int]bool{}
	var mark func(t int)
	mark = func(t int) {
		if t == 0 || live[t] {
			return
		}
		live[t] = true
		for _, op := range l.Ops {
			if op.Txn != t || op.Kind != oplog.Read {
				continue
			}
			for _, x := range op.Items {
				mark(rf[rfKey{t, x}])
			}
		}
	}
	for _, t := range fw {
		mark(t)
	}
	return live
}

// FinalStateEquivalent reports whether two logs over the same transactions
// produce the same final database state for every interpretation of the
// transactions' functions (Herbrand semantics): identical final writers
// per item and identical reads-from relations on the live closure.
func FinalStateEquivalent(a, b *oplog.Log) bool {
	fwA, fwB := finalWriters(a), finalWriters(b)
	if len(fwA) != len(fwB) {
		return false
	}
	for x, t := range fwA {
		if fwB[x] != t {
			return false
		}
	}
	rfA, rfB := readsFrom(a), readsFrom(b)
	liveA := liveSet(a, rfA, fwA)
	liveB := liveSet(b, rfB, fwB)
	if len(liveA) != len(liveB) {
		return false
	}
	for t := range liveA {
		if !liveB[t] {
			return false
		}
	}
	// Live transactions must read the same versions in both logs.
	for key, w := range rfA {
		if liveA[key.Txn] && rfB[key] != w {
			return false
		}
	}
	for key, w := range rfB {
		if liveB[key.Txn] && rfA[key] != w {
			return false
		}
	}
	return true
}

// ViewEquivalent reports whether the two logs have identical reads-from
// relations for every read and the same final writers.
func ViewEquivalent(a, b *oplog.Log) bool {
	fwA, fwB := finalWriters(a), finalWriters(b)
	if len(fwA) != len(fwB) {
		return false
	}
	for x, t := range fwA {
		if fwB[x] != t {
			return false
		}
	}
	rfA, rfB := readsFrom(a), readsFrom(b)
	if len(rfA) != len(rfB) {
		return false
	}
	for key, w := range rfA {
		if rfB[key] != w {
			return false
		}
	}
	return true
}

// Serialize builds the serial log executing the transactions in the given
// order, each transaction's operations in their original relative order.
func Serialize(l *oplog.Log, order []int) *oplog.Log {
	var ops []oplog.Op
	for _, t := range order {
		ops = append(ops, l.OpsOf(t)...)
	}
	return oplog.NewLog(ops...)
}

// permute calls fn with every permutation of txns, stopping early when fn
// returns true, and reports whether any call returned true.
func permute(txns []int, fn func([]int) bool) bool {
	n := len(txns)
	perm := append([]int(nil), txns...)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return fn(perm)
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			if rec(i + 1) {
				return true
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		return false
	}
	return rec(0)
}

// SR reports whether the log is final-state serializable: some serial
// execution of its transactions is final-state equivalent to it. This is
// the class called SR in the paper's hierarchy (after Papadimitriou [16]).
// Brute force: use only on small logs.
func SR(l *oplog.Log) bool {
	return permute(l.Transactions(), func(order []int) bool {
		return FinalStateEquivalent(l, Serialize(l, order))
	})
}

// VSR reports view serializability, a stricter notion than SR kept for
// cross-checks. Brute force: use only on small logs.
func VSR(l *oplog.Log) bool {
	return permute(l.Transactions(), func(order []int) bool {
		return ViewEquivalent(l, Serialize(l, order))
	})
}

// SSR reports whether the log is strictly serializable: final-state
// serializable in an order that preserves the precedence of
// non-overlapping transactions (if T_i's last operation precedes T_j's
// first operation, T_i must come first). Brute force: small logs only.
func SSR(l *oplog.Log) bool {
	first := map[int]int{}
	last := map[int]int{}
	for pos, op := range l.Ops {
		if _, ok := first[op.Txn]; !ok {
			first[op.Txn] = pos
		}
		last[op.Txn] = pos
	}
	return permute(l.Transactions(), func(order []int) bool {
		pos := map[int]int{}
		for p, t := range order {
			pos[t] = p
		}
		for _, a := range order {
			for _, b := range order {
				if a != b && last[a] < first[b] && pos[a] > pos[b] {
					return false
				}
			}
		}
		return FinalStateEquivalent(l, Serialize(l, order))
	})
}

// lockBound is an exact "integer plus count of epsilons" value used by the
// 2PL lock-point feasibility test: value = base + cnt·δ with 0 < cnt·δ < 1.
type lockBound struct {
	base int
	cnt  int
}

func (a lockBound) lessThanInt(c int) bool { return a.base < c }

func maxBound(a, b lockBound) lockBound {
	if a.base != b.base {
		if a.base > b.base {
			return a
		}
		return b
	}
	if a.cnt > b.cnt {
		return a
	}
	return b
}

// TwoPL reports whether the log could have been produced by a two-phase
// locking scheduler with shared/exclusive locks: there exist lock points
// p_i such that for every ordered conflict of T_i before T_j on item x,
//
//	p_i < p_j,  p_i < π(T_j's first op on x),  p_j > π(T_i's last op on x),
//
// with each p_i no earlier than T_i's first operation. Feasibility reduces
// to a longest-path computation over the conflict DAG with exact
// integer+epsilon arithmetic.
func TwoPL(l *oplog.Log) bool {
	idx, ids := l.TxnIndex()
	n := len(ids)
	if n == 0 {
		return true
	}
	firstOp := make([]int, n) // position of txn's first operation (1-based)
	for p := len(l.Ops) - 1; p >= 0; p-- {
		firstOp[idx[l.Ops[p].Txn]] = p + 1
	}
	// Per (txn, item): first and last access positions (1-based).
	type ti struct {
		txn  int
		item string
	}
	firstAt := map[ti]int{}
	lastAt := map[ti]int{}
	for p, op := range l.Ops {
		for _, x := range op.Items {
			key := ti{idx[op.Txn], x}
			if _, ok := firstAt[key]; !ok {
				firstAt[key] = p + 1
			}
			lastAt[key] = p + 1
		}
	}

	g := graph.New(n)          // p_i < p_j edges
	ub := make([]int, n)       // p_i < ub[i]
	lb := make([]lockBound, n) // p_i > (base, with cnt epsilons)
	for i := 0; i < n; i++ {
		ub[i] = len(l.Ops) + 2
		lb[i] = lockBound{firstOp[i] - 1, 1}
	}
	for a := 0; a < len(l.Ops); a++ {
		for b := a + 1; b < len(l.Ops); b++ {
			if !oplog.Conflicts(l.Ops[a], l.Ops[b]) {
				continue
			}
			i, j := idx[l.Ops[a].Txn], idx[l.Ops[b].Txn]
			for _, x := range l.Ops[a].Items {
				if !l.Ops[b].Accesses(x) {
					continue
				}
				// Only constrain when the pair conflicts on x itself: at
				// least one of the two accesses to x writes. (Both ops may
				// overlap only on items where both read.)
				aWrites := l.Ops[a].Kind == oplog.Write
				bWrites := l.Ops[b].Kind == oplog.Write
				if !aWrites && !bWrites {
					continue
				}
				if lastAt[ti{i, x}] >= firstAt[ti{j, x}] {
					// T_j starts using x before T_i is done with it while
					// conflicting: no legal lock schedule.
					return false
				}
				g.AddEdge(i, j)
				if f := firstAt[ti{j, x}]; f < ub[i] {
					ub[i] = f
				}
				lb[j] = maxBound(lb[j], lockBound{lastAt[ti{i, x}], 1})
			}
		}
	}
	order, ok := g.TopoSort()
	if !ok {
		return false
	}
	p := make([]lockBound, n)
	for _, v := range order {
		p[v] = lb[v]
		for u := 0; u < n; u++ {
			if g.HasEdge(u, v) {
				p[v] = maxBound(p[v], lockBound{p[u].base, p[u].cnt + 1})
			}
		}
		if !p[v].lessThanInt(ub[v]) {
			return false
		}
	}
	return true
}
