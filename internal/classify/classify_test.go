package classify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/oplog"
)

func L(t *testing.T, s string) *oplog.Log {
	t.Helper()
	return oplog.MustParse(s)
}

func TestDSR(t *testing.T) {
	cases := []struct {
		log  string
		want bool
	}{
		{"R1[x] W1[x] R2[x] W2[x]", true},       // serial
		{"R1[x] R2[y] W2[x] W1[y]", false},      // 2-cycle
		{"W1[x] W1[y] R3[x] R2[y] W3[y]", true}, // Example 1
		{"", true},                              // empty log
		{"R1[x] W1[x]", true},                   // single txn
	}
	for _, c := range cases {
		if got := DSR(L(t, c.log)); got != c.want {
			t.Errorf("DSR(%q) = %v, want %v", c.log, got, c.want)
		}
	}
}

func TestTO1Definition4(t *testing.T) {
	cases := []struct {
		log  string
		want bool
	}{
		// Conflicts in first-op order: fine.
		{"R1[x] W1[x] R2[x] W2[x]", true},
		// Example 1's full log: the dependency T2 -> T3 contradicts the
		// first-op order (T3 started first), so TO(1) rejects.
		{"W1[x] W1[y] R3[x] R2[y] W3[y]", false},
		// Read-read on the same item against first-op order violates
		// condition iv.
		{"R2[z] R1[x] R2[x] W1[y] W2[q]", false},
		// Interleaved but all conflicts respect start order.
		{"R1[x] R2[y] W1[x] W2[y]", true},
	}
	for _, c := range cases {
		if got := TO1(L(t, c.log)); got != c.want {
			t.Errorf("TO1(%q) = %v, want %v", c.log, got, c.want)
		}
	}
}

func TestTOkMatchesCoreExamples(t *testing.T) {
	ex1 := L(t, "W1[x] W1[y] R3[x] R2[y] W3[y]")
	if TOk(1, ex1) {
		t.Error("TO(1) protocol class accepts Example 1")
	}
	if !TOk(2, ex1) || !TOk(3, ex1) {
		t.Error("TO(2)/TO(3) reject Example 1")
	}
	if !TOkPlus(2, ex1) {
		t.Error("TO(2+) rejects Example 1")
	}
}

func TestTOkPlusIsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		l := randomTwoStep(rng, 3, 2)
		want := TOk(1, l) || TOk(2, l) || TOk(3, l)
		if got := TOkPlus(3, l); got != want {
			t.Fatalf("TOkPlus(3, %v) = %v, want %v", l, got, want)
		}
	}
}

func TestSerialize(t *testing.T) {
	l := L(t, "R1[x] R2[y] W1[x] W2[y]")
	s := Serialize(l, []int{2, 1})
	if got := s.String(); got != "R2[y] W2[y] R1[x] W1[x]" {
		t.Fatalf("Serialize = %q", got)
	}
}

func TestFinalStateEquivalentBasics(t *testing.T) {
	a := L(t, "R1[x] R2[y] W1[x] W2[y]") // independent transactions
	b := Serialize(a, []int{1, 2})
	c := Serialize(a, []int{2, 1})
	if !FinalStateEquivalent(a, b) || !FinalStateEquivalent(a, c) {
		t.Error("independent transactions should be equivalent to both serial orders")
	}
	d := L(t, "R1[x] W1[x] R2[x] W2[x]")
	e := Serialize(d, []int{2, 1})
	if FinalStateEquivalent(d, e) {
		t.Error("conflicting logs with different reads-from reported equivalent")
	}
}

func TestFinalStateIgnoresDeadTransactions(t *testing.T) {
	// T1 and T2 form a dependency cycle but both are dead: T3 overwrites
	// x and y, and nobody reads T1's or T2's writes.
	l := L(t, "R1[x] R2[y] W2[x] W1[y] R3[z] W3[x,y]")
	serial := Serialize(l, []int{1, 2, 3})
	if !FinalStateEquivalent(l, serial) {
		t.Fatal("dead transactions should not affect final-state equivalence")
	}
	if ViewEquivalent(l, serial) {
		t.Fatal("view equivalence must still see the dead reads differ")
	}
}

func TestSRButNotDSR(t *testing.T) {
	// Same log: a dependency cycle of dead transactions — final-state
	// serializable but not D-serializable (the paper's SR \ DSR region).
	l := L(t, "R1[x] R2[y] W2[x] W1[y] R3[z] W3[x,y]")
	if DSR(l) {
		t.Fatal("expected non-DSR")
	}
	if !SR(l) {
		t.Fatal("expected SR")
	}
	if VSR(l) {
		t.Fatal("expected non-VSR (dead reads differ in every serial order)")
	}
}

func TestNotSR(t *testing.T) {
	l := L(t, "R1[x] R2[y] W2[x] W1[y]") // live cycle
	if SR(l) {
		t.Fatal("live dependency cycle cannot be SR")
	}
}

func TestSSRRespectsCompletionOrder(t *testing.T) {
	// Serial log: trivially SSR.
	if !SSR(L(t, "R1[x] W1[x] R2[x] W2[x]")) {
		t.Fatal("serial log not SSR")
	}
	// Overlapping transactions may serialize against arrival order.
	l := L(t, "R2[y] R1[x] W1[y] W2[x]")
	// Deps: R2[y] < W1[y]: 2->1; R1[x] < W2[x]: 1->2 — cycle, not SR at
	// all (live).
	if SSR(l) {
		t.Fatal("cyclic log reported SSR")
	}
}

func TestSSRSubsetOfSR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 400; trial++ {
		l := randomTwoStep(rng, 3, 2)
		if SSR(l) && !SR(l) {
			t.Fatalf("SSR log not SR: %v", l)
		}
	}
}

func TestTwoPLBasics(t *testing.T) {
	cases := []struct {
		log  string
		want bool
	}{
		{"R1[x] W1[x] R2[x] W2[x]", true}, // serial
		{"R1[x] R2[y] W1[x] W2[y]", true}, // disjoint items
		// T1 must release x before position 2 but hold y past position 3:
		// violates two-phase rule.
		{"W1[x] R2[x] R3[y] W1[y]", false},
		// Dependency cycle: not even serializable.
		{"R1[x] R2[y] W2[x] W1[y]", false},
	}
	for _, c := range cases {
		if got := TwoPL(L(t, c.log)); got != c.want {
			t.Errorf("TwoPL(%q) = %v, want %v", c.log, got, c.want)
		}
	}
}

func TestTwoPLEmptyLog(t *testing.T) {
	if !TwoPL(L(t, "")) {
		t.Fatal("empty log must be 2PL")
	}
}

func TestTwoPLInterleavedConflicting(t *testing.T) {
	// Lock-coupled chain: each transaction finishes with an item before
	// the next one starts on it.
	l := L(t, "R1[x] W1[x] R2[x] R1[y] W2[x] W1[y]")
	// T1 uses x at 1,2 and y at 4,6; T2 uses x at 3,5.
	// Conflict: T1 -> T2 on x requires p_1 < 3 and p_2 > 2... but T1's
	// later ops on y are fine: locks on y acquired before p_1 < 3 is
	// allowed (growing phase ended early, y-lock held long).
	if !TwoPL(l) {
		t.Fatal("expected 2PL-acceptable")
	}
}

func randomTwoStep(rng *rand.Rand, nTxns, nItems int) *oplog.Log {
	items := []string{"x", "y", "z", "w"}[:nItems]
	type pend struct{ r, w oplog.Op }
	var pends []pend
	for t := 1; t <= nTxns; t++ {
		pends = append(pends, pend{
			oplog.R(t, items[rng.Intn(nItems)]),
			oplog.W(t, items[rng.Intn(nItems)]),
		})
	}
	var ops []oplog.Op
	emitted := make([]int, len(pends))
	for len(ops) < 2*len(pends) {
		i := rng.Intn(len(pends))
		switch emitted[i] {
		case 0:
			ops = append(ops, pends[i].r)
			emitted[i] = 1
		case 1:
			ops = append(ops, pends[i].w)
			emitted[i] = 2
		}
	}
	return oplog.NewLog(ops...)
}

// Hierarchy chain: 2PL ⊆ DSR ⊆ VSR ⊆ SR, and TO(k) ⊆ DSR, TO(1) ⊆ DSR,
// SSR ⊆ SR on random two-step logs.
func TestQuickHierarchyChain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomTwoStep(rng, 3, 3)
		dsr := DSR(l)
		if TwoPL(l) && !dsr {
			return false
		}
		vsr := VSR(l)
		if dsr && !vsr {
			return false
		}
		sr := SR(l)
		if vsr && !sr {
			return false
		}
		if SSR(l) && !sr {
			return false
		}
		if TO1(l) && !dsr {
			return false
		}
		for k := 1; k <= 3; k++ {
			if TOk(k, l) && !dsr {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The protocol class TO(1) (MT(1)) and the Definition 4 class TO(1) agree
// on most logs; where they differ, both must still sit inside DSR. This
// guards the implementation rather than asserting exact equality, which
// the paper does not claim.
func TestTO1ProtocolVsDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	agree, disagree := 0, 0
	for trial := 0; trial < 1000; trial++ {
		l := randomTwoStep(rng, 3, 2)
		d4, mt1 := TO1(l), TOk(1, l)
		if d4 == mt1 {
			agree++
		} else {
			disagree++
			if !DSR(l) {
				t.Fatalf("non-DSR log accepted: %v (def4=%v mt1=%v)", l, d4, mt1)
			}
		}
	}
	if agree < disagree {
		t.Fatalf("definition-4 and MT(1) disagree too often: %d vs %d", agree, disagree)
	}
}
