package admit

import (
	"sync"

	"repro/internal/metrics"
)

// AgingOptions tunes the starvation-freedom machinery.
type AgingOptions struct {
	// ElderAfter is the restart count at which a transaction becomes an
	// elder: its retries stop sleeping and the admission barrier closes
	// to new first attempts until it finishes (default 8).
	ElderAfter int
	// YieldScale is the backoff multiplier a transaction pays when its
	// blocker is older than it is (default 4). Asymmetric backoff is the
	// aging tie-break: the young yield wall-clock to the old, so age —
	// not scheduling luck — decides who wins a repeated conflict.
	YieldScale float64
	// ExpressScale is the backoff multiplier of the oldest live
	// transaction (default 0.25). Small but deliberately nonzero: with a
	// literally-zero backoff the lane holder hot-loops — every abort
	// reseeds it past its blocker, which guarantees the next attempt
	// still orders after that blocker's in-flight write, so it can burn
	// its whole attempt budget racing a single bounded think window. A
	// short jittered sleep keeps the lane hot while ensuring it
	// eventually outwaits any bounded in-flight attempt.
	ExpressScale float64
	// Disabled turns the whole component off: OnAbort always returns 1,
	// the barrier never closes. Used by A/B experiments.
	Disabled bool
	// UnsafeZeroExpress reintroduces the PR 7 express-lane livelock for
	// the schedule explorer's seeded-bug tests: the oldest live
	// transaction's backoff scale becomes literally zero, so it
	// hot-loops its attempt budget against the reseed-past-the-blocker
	// rule. Never set outside tests.
	UnsafeZeroExpress bool
}

func (o AgingOptions) withDefaults() AgingOptions {
	if o.ElderAfter <= 0 {
		o.ElderAfter = 8
	}
	if o.YieldScale <= 0 {
		o.YieldScale = 4
	}
	if o.ExpressScale <= 0 {
		o.ExpressScale = 0.25
	}
	if o.UnsafeZeroExpress {
		o.ExpressScale = 0
	}
	return o
}

// Aging carries each transaction's age across restarts and turns it into
// scheduling priority. Age is the admission sequence number (stable
// across every incarnation of the id, assigned at first admission), so
// "older" means "arrived earlier", exactly the bounded-timestamp notion
// of precedence. Two mechanisms feed on it:
//
//   - Oldest-wins backoff: the oldest live transaction retries almost
//     immediately (ExpressScale) — it holds the sole express lane —
//     while one aborted by an older blocker sleeps YieldScale times
//     longer and everyone else sleeps normally. Age imposes a total
//     priority order, so a restart storm drains oldest-first instead of
//     everyone fighting everyone.
//   - Elder barrier: past ElderAfter restarts a transaction is promoted
//     to elder, and while any elder is live the admission barrier holds
//     back new first attempts, so the population the oldest must beat
//     only shrinks. Combined with the engine's reseed-past-the-blocker
//     rule its next conflicts are against a bounded, draining set — it
//     commits in bounded work, then the next-oldest inherits the lane.
//   - Crisis gate (RetryGate): while any elder is live, retries of every
//     transaction but the oldest park before launching, so the oldest
//     runs alone and its commit is certain, not merely likely. This is
//     the hard guarantee the backoff shaping alone cannot give.
type Aging struct {
	opts AgingOptions

	mu      sync.Mutex
	nextSeq int64
	txns    map[int]*ageEntry
	elderN  int           // live elders
	quiet   chan struct{} // closed while elderN == 0 (barrier open)
	turn    chan struct{} // closed and remade whenever the drain order may change

	elders       metrics.Counter // promotions
	barrierWaits metrics.Counter // admissions that waited on the barrier
	gateWaits    metrics.Counter // retries parked by the crisis gate
}

type ageEntry struct {
	seq      int64
	restarts int
	elder    bool
}

// NewAging returns an aging table with the given options.
func NewAging(o AgingOptions) *Aging {
	quiet := make(chan struct{})
	close(quiet)
	return &Aging{
		opts:  o.withDefaults(),
		txns:  make(map[int]*ageEntry),
		quiet: quiet,
		turn:  make(chan struct{}),
	}
}

// WaitBarrier blocks while the elder barrier is closed (some elder is
// fighting for its commit). Returns ctx.Err() if ctx expires first.
func (a *Aging) WaitBarrier(ctx Waiter) error {
	if a.opts.Disabled {
		return nil
	}
	for {
		a.mu.Lock()
		ch := a.quiet
		a.mu.Unlock()
		select {
		case <-ch:
			return nil
		default:
		}
		a.barrierWaits.Inc()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Admitted registers a first attempt, assigning the transaction its age.
// Re-admitting a live id keeps its original age (the runtime admits an
// id once per transaction, but idempotence is cheap insurance).
func (a *Aging) Admitted(id int) {
	a.mu.Lock()
	if _, ok := a.txns[id]; !ok {
		a.nextSeq++
		a.txns[id] = &ageEntry{seq: a.nextSeq}
	}
	a.mu.Unlock()
}

// OnAbort records one restart of id caused by blocker and returns the
// backoff scale for the retry: ExpressScale when id is the oldest live
// transaction (retry almost immediately — it must win next), YieldScale
// when the blocker is older than id, 1 otherwise. Giving the express
// lane to exactly one transaction at a time — the oldest — is what
// makes the guarantee composable: if every struggling transaction
// retried eagerly they would only fight each other, but a total
// priority order drains the storm oldest-first, each commit promoting
// the next-oldest.
func (a *Aging) OnAbort(id, blocker int) float64 {
	if a.opts.Disabled {
		return 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.txns[id]
	if e == nil {
		return 1
	}
	e.restarts++
	if !e.elder && e.restarts >= a.opts.ElderAfter {
		e.elder = true
		a.elders.Inc()
		a.elderN++
		if a.elderN == 1 {
			a.quiet = make(chan struct{}) // close the barrier
		}
	}
	oldest := true
	for _, o := range a.txns {
		if o.seq < e.seq {
			oldest = false
			break
		}
	}
	if oldest {
		return a.opts.ExpressScale
	}
	// Soft quiesce: while any elder is live, every non-oldest retry
	// yields. The aggressors that keep beating a starving transaction
	// are the young, low-restart ones retrying at full speed — widening
	// only the elders' sleeps would leave the express lane contested by
	// exactly the transactions that least need to run. Outside a
	// quiesce, a transaction yields only to an older blocker.
	if a.elderN > 0 {
		return a.opts.YieldScale
	}
	if b := a.txns[blocker]; b != nil && b.seq < e.seq {
		return a.opts.YieldScale
	}
	return 1
}

// RetryGate parks a retry while the crisis gate is down: whenever an
// elder is live, only the oldest live transaction may launch its next
// attempt; everyone else waits here — burning no attempt budget and
// generating no conflicts — until the lane holder finishes and the next
// oldest inherits. Backoff scaling alone cannot guarantee the drain: a
// sleeping yielder still wakes into a live attempt that can beat the
// oldest in the scheduler's races, so a long-enough unlucky streak
// starves it anyway. Serializing retries during a crisis removes the
// races outright — the oldest runs alone, so its commit is certain —
// and the storm drains in age order, one certain commit at a time.
// Returns ctx.Err() if ctx expires while parked.
func (a *Aging) RetryGate(ctx Waiter, id int) error {
	if a.opts.Disabled {
		return nil
	}
	waited := false
	for {
		a.mu.Lock()
		e := a.txns[id]
		proceed := e == nil || a.elderN == 0
		if !proceed {
			proceed = true
			for _, o := range a.txns {
				if o.seq < e.seq {
					proceed = false
					break
				}
			}
		}
		ch := a.turn
		a.mu.Unlock()
		if proceed {
			return nil
		}
		if !waited {
			waited = true
			a.gateWaits.Inc()
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Restarts returns the restart count recorded for id (0 if unknown).
func (a *Aging) Restarts(id int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e := a.txns[id]; e != nil {
		return e.restarts
	}
	return 0
}

// Done removes the transaction, reopening the barrier when the last
// elder finishes and waking the crisis gate (the drain order changed:
// the next-oldest may now hold the lane).
func (a *Aging) Done(id int) {
	a.mu.Lock()
	if e := a.txns[id]; e != nil {
		if e.elder {
			a.elderN--
			if a.elderN == 0 {
				close(a.quiet) // reopen the barrier
			}
		}
		delete(a.txns, id)
		close(a.turn)
		a.turn = make(chan struct{})
	}
	a.mu.Unlock()
}
