package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLimiterAcquireRelease(t *testing.T) {
	l := NewLimiter(LimiterOptions{Initial: 2})
	ctx := context.Background()
	if err := l.Acquire(ctx, 1); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := l.Acquire(ctx, 2); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d", got)
	}
	l.Release(true, 1, time.Millisecond)
	if got := l.InFlight(); got != 1 {
		t.Fatalf("InFlight after release = %d", got)
	}
}

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	l := NewLimiter(LimiterOptions{Initial: 1, Min: 1, QueuePerSlot: 1})
	ctx := context.Background()
	if err := l.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue.
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx, 2) }()
	// Wait until the waiter is queued.
	deadline := time.Now().Add(time.Second)
	for {
		l.mu.Lock()
		queued := len(l.queue)
		l.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}
	// The next arrival must shed, typed.
	err := l.Acquire(ctx, 3)
	var oe *OverloadError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want typed OverloadError, got %v", err)
	}
	if oe.Txn != 3 || oe.Limit != 1 {
		t.Fatalf("overload context = %+v", oe)
	}
	if l.Shed() != 1 {
		t.Fatalf("Shed = %d", l.Shed())
	}
	// Releasing hands the slot to the queued waiter.
	l.Release(false, 3, 0)
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	if got := l.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1 (transferred slot)", got)
	}
}

func TestLimiterAcquireCancelled(t *testing.T) {
	l := NewLimiter(LimiterOptions{Initial: 1})
	if err := l.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx, 2) }()
	deadline := time.Now().Add(time.Second)
	for {
		l.mu.Lock()
		queued := len(l.queue)
		l.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The slot is still usable: release and re-acquire.
	l.Release(true, 1, 0)
	if err := l.Acquire(context.Background(), 3); err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
}

func TestLimiterAIMD(t *testing.T) {
	l := NewLimiter(LimiterOptions{Initial: 8, Min: 1, Window: 4, TargetAbortRate: 0.5, Decrease: 0.5, LatencyFactor: 0})
	ctx := context.Background()
	// A window of pure aborts (gave-up transactions with many attempts)
	// must shrink the limit multiplicatively.
	for i := 0; i < 4; i++ {
		if err := l.Acquire(ctx, i); err != nil {
			t.Fatal(err)
		}
		l.Release(false, 10, 0)
	}
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after bad window = %d, want 4", got)
	}
	// A clean window (every attempt commits) must add one.
	for i := 0; i < 4; i++ {
		if err := l.Acquire(ctx, 10+i); err != nil {
			t.Fatal(err)
		}
		l.Release(true, 1, time.Microsecond)
	}
	if got := l.Limit(); got != 5 {
		t.Fatalf("limit after clean window = %d, want 5", got)
	}
	if l.decreases.Value() != 1 || l.increases.Value() != 1 {
		t.Fatalf("aimd counters = -%d/+%d", l.decreases.Value(), l.increases.Value())
	}
}

func TestLimiterLatencyGradient(t *testing.T) {
	l := NewLimiter(LimiterOptions{Initial: 8, Min: 1, Window: 4, TargetAbortRate: 0.99, LatencyFactor: 2, Decrease: 0.5})
	ctx := context.Background()
	// First window: fast commits establish the best p50.
	for i := 0; i < 4; i++ {
		if err := l.Acquire(ctx, i); err != nil {
			t.Fatal(err)
		}
		l.Release(true, 1, time.Millisecond)
	}
	// Second window: same abort rate (zero) but 10x the latency — the
	// gradient term must trigger the decrease.
	for i := 0; i < 4; i++ {
		if err := l.Acquire(ctx, 10+i); err != nil {
			t.Fatal(err)
		}
		l.Release(true, 1, 10*time.Millisecond)
	}
	if got := l.Limit(); got >= 8 {
		t.Fatalf("limit after slow window = %d, want < 8", got)
	}
}

func TestAgingOldestWins(t *testing.T) {
	a := NewAging(AgingOptions{ElderAfter: 100, YieldScale: 4})
	a.Admitted(1) // oldest
	a.Admitted(2)
	a.Admitted(3) // youngest
	if s := a.OnAbort(2, 1); s != 4 {
		t.Fatalf("young aborted by old: scale = %v, want 4", s)
	}
	if s := a.OnAbort(1, 2); s != 0.25 {
		t.Fatalf("oldest: scale = %v, want 0.25 (express lane)", s)
	}
	if s := a.OnAbort(2, 999); s != 1 {
		t.Fatalf("unknown blocker: scale = %v, want 1", s)
	}
	if s := a.OnAbort(2, 3); s != 1 {
		t.Fatalf("old aborted by young: scale = %v, want 1", s)
	}
	if a.Restarts(1) != 1 || a.Restarts(2) != 3 {
		t.Fatalf("restarts = %d/%d", a.Restarts(1), a.Restarts(2))
	}
	// Once the oldest finishes, the next-oldest inherits the lane.
	a.Done(1)
	if s := a.OnAbort(2, 3); s != 0.25 {
		t.Fatalf("new oldest: scale = %v, want 0.25", s)
	}
}

func TestAgingElderBarrier(t *testing.T) {
	a := NewAging(AgingOptions{ElderAfter: 2})
	a.Admitted(1)
	a.Admitted(2)
	// Barrier open: WaitBarrier returns immediately.
	if err := a.WaitBarrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Promote txn 1 to elder.
	a.OnAbort(1, 2)
	if s := a.OnAbort(1, 2); s != 0.25 {
		t.Fatalf("elder scale = %v, want 0.25", s)
	}
	if a.elders.Value() != 1 {
		t.Fatalf("elders = %d", a.elders.Value())
	}
	// Barrier closed: a new admission must wait until the elder is done.
	released := make(chan error, 1)
	go func() { released <- a.WaitBarrier(context.Background()) }()
	select {
	case <-released:
		t.Fatal("barrier did not hold")
	case <-time.After(2 * time.Millisecond):
	}
	a.Done(1)
	select {
	case err := <-released:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("barrier never reopened")
	}
	// Context expiry while the barrier is closed returns the ctx error.
	a.Admitted(3)
	a.OnAbort(3, 2)
	a.OnAbort(3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := a.WaitBarrier(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ctx deadline, got %v", err)
	}
}

func TestAgingDisabled(t *testing.T) {
	a := NewAging(AgingOptions{ElderAfter: 1, Disabled: true})
	a.Admitted(1)
	for i := 0; i < 10; i++ {
		if s := a.OnAbort(1, 2); s != 1 {
			t.Fatalf("disabled scale = %v", s)
		}
	}
	if err := a.WaitBarrier(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestStormTripAndClear(t *testing.T) {
	s := NewStorm(StormOptions{Window: 10, TripRatio: 3, Damp: 8})
	if s.Scale() != 1 {
		t.Fatal("fresh detector damping")
	}
	// 9 aborts : 1 commit = ratio 9 -> trip.
	for i := 0; i < 9; i++ {
		s.OnAbort()
	}
	s.OnCommit()
	if !s.Storming() || s.Scale() != 8 {
		t.Fatalf("storming=%v scale=%v", s.Storming(), s.Scale())
	}
	if s.Trips() != 1 {
		t.Fatalf("trips = %d", s.Trips())
	}
	// A healthy window clears it (ratio 10/9... need <= 1.5): all commits.
	for i := 0; i < 10; i++ {
		s.OnCommit()
	}
	if s.Storming() {
		t.Fatal("storm did not clear")
	}
	// Hysteresis: a window at ratio 2 (between clear 1.5 and trip 3)
	// neither trips nor clears.
	for i := 0; i < 6; i++ {
		s.OnAbort()
	}
	for i := 0; i < 3; i++ {
		s.OnCommit()
	}
	s.OnCommit()
	if s.Storming() {
		t.Fatal("mid-band window tripped")
	}
}

func TestStormAllAbortsTrips(t *testing.T) {
	s := NewStorm(StormOptions{Window: 8})
	for i := 0; i < 8; i++ {
		s.OnAbort()
	}
	if !s.Storming() {
		t.Fatal("zero-commit window did not trip")
	}
}

func TestBreakerTripHalfOpenClose(t *testing.T) {
	b := NewBreaker(2, BreakerOptions{Cooldown: time.Millisecond})
	if !b.Allow(0) || !b.Allow(1) {
		t.Fatal("fresh breaker not closed")
	}
	// Drive site 0 Down (defaults: DownAfter = 6).
	for i := 0; i < 6; i++ {
		b.Observe(0, false)
	}
	if !b.Open(0) {
		t.Fatal("breaker did not open")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d", b.Trips())
	}
	if b.Allow(0) {
		t.Fatal("open breaker allowed traffic")
	}
	if b.FastFails() == 0 {
		t.Fatal("fast-fail not counted")
	}
	if !b.Allow(1) {
		t.Fatal("healthy site affected")
	}
	// After the cooldown exactly one probe gets through.
	time.Sleep(2 * time.Millisecond)
	if !b.Allow(0) {
		t.Fatal("half-open probe refused")
	}
	if b.Allow(0) {
		t.Fatal("second concurrent probe allowed")
	}
	// Failed probe reopens for another cooldown.
	b.Observe(0, false)
	if b.Allow(0) {
		t.Fatal("reopened breaker allowed traffic")
	}
	time.Sleep(2 * time.Millisecond)
	if !b.Allow(0) {
		t.Fatal("second half-open probe refused")
	}
	// Successful probe closes the circuit.
	b.Observe(0, true)
	if b.Open(0) || !b.Allow(0) {
		t.Fatal("breaker did not close on success")
	}
	st := b.Stats()
	if st.Trips != 1 || st.Reprobes != 2 || st.Open != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerOutOfRange(t *testing.T) {
	b := NewBreaker(1, BreakerOptions{})
	if b.Allow(-1) || b.Allow(1) {
		t.Fatal("out-of-range site allowed")
	}
	b.Observe(-1, false) // must not panic
	b.Observe(5, true)
}

func TestControllerEndToEnd(t *testing.T) {
	c := NewController(Options{
		Limiter: LimiterOptions{Initial: 4, Window: 4},
		Aging:   AgingOptions{ElderAfter: 3},
		Storm:   StormOptions{Window: 8, TripRatio: 2, Damp: 4},
	})
	ctx := context.Background()
	if err := c.Admit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if c.InFlight() != 1 {
		t.Fatalf("InFlight = %d", c.InFlight())
	}
	// Aborts feed the storm detector and the aging table.
	for i := 0; i < 7; i++ {
		c.OnAbort(1, 99)
	}
	// 7 aborts + 1 commit closes the storm window at ratio 7 -> storm.
	c.Done(1, true, 8, time.Millisecond)
	st := c.Stats()
	if st.InFlight != 0 {
		t.Fatalf("InFlight after Done = %d", st.InFlight)
	}
	if st.StormTrips != 1 || !st.Storming {
		t.Fatalf("storm stats = %+v", st)
	}
	if st.Elders != 1 {
		t.Fatalf("elders = %d (txn 1 passed ElderAfter)", st.Elders)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
	// While storming, a non-oldest abort scale carries the damping; the
	// oldest live transaction keeps its express lane even mid-storm.
	if err := c.Admit(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if s := c.OnAbort(3, 99); s != 4 {
		t.Fatalf("storm scale = %v, want 4", s)
	}
	if s := c.OnAbort(2, 99); s != 0.25*4 {
		t.Fatalf("oldest scale = %v, want 1 (express lane x storm damping)", s)
	}
	c.Done(2, false, 2, 0)
	c.Done(3, false, 2, 0)
}

func TestControllerConcurrent(t *testing.T) {
	c := NewController(Options{
		Limiter: LimiterOptions{Initial: 4, Window: 8},
		Aging:   AgingOptions{ElderAfter: 4},
		Storm:   StormOptions{},
	})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			if err := c.Admit(ctx, id); err != nil {
				if errors.Is(err, ErrOverloaded) || errors.Is(err, context.DeadlineExceeded) {
					return
				}
				t.Errorf("admit %d: %v", id, err)
				return
			}
			for i := 0; i < 3; i++ {
				c.OnAbort(id, (id+1)%16)
			}
			c.Done(id, id%2 == 0, 4, time.Millisecond)
		}(w)
	}
	wg.Wait()
	if c.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", c.InFlight())
	}
}
