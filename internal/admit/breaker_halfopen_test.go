package admit

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// tripBreaker drives site 0 Down with consecutive failures.
func tripBreaker(b *Breaker) {
	for i := 0; i < 8 && !b.Open(0); i++ {
		b.Observe(0, false)
	}
}

func newTestBreaker(cooldown time.Duration) *Breaker {
	return NewBreaker(1, BreakerOptions{
		Cooldown: cooldown,
		Health:   fault.HealthOptions{SuspectAfter: 1, DownAfter: 2},
	})
}

// TestBreakerHalfOpenSingleProbe races many goroutines against the
// half-open transition: after the cooldown elapses, exactly one caller
// may pass as the probe, no matter how many arrive at once.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newTestBreaker(time.Millisecond)
	tripBreaker(b)
	if !b.Open(0) {
		t.Fatal("breaker did not trip")
	}
	if b.Allow(0) {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}
	time.Sleep(2 * time.Millisecond)

	const n = 32
	var admitted atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			if b.Allow(0) {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
	if b.Reprobes() != 1 {
		t.Fatalf("reprobes = %d, want 1", b.Reprobes())
	}
}

// TestBreakerProbeSuccessCloses: a successful half-open probe closes
// the circuit for everyone.
func TestBreakerProbeSuccessCloses(t *testing.T) {
	b := newTestBreaker(time.Millisecond)
	tripBreaker(b)
	time.Sleep(2 * time.Millisecond)
	if !b.Allow(0) {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Observe(0, true)
	if b.Open(0) {
		t.Fatal("successful probe did not close the circuit")
	}
	for i := 0; i < 4; i++ {
		if !b.Allow(0) {
			t.Fatal("closed breaker refused traffic")
		}
	}
}

// TestBreakerProbeFailureRestartsCooldown: a failed probe reopens the
// circuit for a full new cooldown, after which the next single probe is
// admitted again.
func TestBreakerProbeFailureRestartsCooldown(t *testing.T) {
	b := newTestBreaker(5 * time.Millisecond)
	tripBreaker(b)
	time.Sleep(7 * time.Millisecond)
	if !b.Allow(0) {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Observe(0, false)
	if !b.Open(0) {
		t.Fatal("failed probe closed the circuit")
	}
	// Immediately after the failed probe we are inside a fresh cooldown.
	if b.Allow(0) {
		t.Fatal("failed probe did not restart the cooldown")
	}
	time.Sleep(7 * time.Millisecond)
	if !b.Allow(0) {
		t.Fatal("second half-open period refused its probe")
	}
	if b.Reprobes() != 2 {
		t.Fatalf("reprobes = %d, want 2", b.Reprobes())
	}
}

// TestBreakerConcurrentObserveAllowRace hammers Allow and Observe from
// many goroutines through trip/recover cycles; the run must be
// race-free (go test -race) and end closed after a success.
func TestBreakerConcurrentObserveAllowRace(t *testing.T) {
	b := newTestBreaker(100 * time.Microsecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b.Allow(0)
				b.Stats()
			}
		}()
	}
	for cycle := 0; cycle < 20; cycle++ {
		tripBreaker(b)
		time.Sleep(200 * time.Microsecond)
		b.Observe(0, true)
	}
	close(stop)
	wg.Wait()
	b.Observe(0, true)
	if b.Open(0) {
		t.Fatal("breaker open after a final success")
	}
}
