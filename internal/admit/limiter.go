package admit

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// LimiterOptions tunes the adaptive concurrency limiter.
type LimiterOptions struct {
	// Initial is the starting concurrency limit (default 8).
	Initial int
	// Min and Max clamp the limit (defaults 1 and 4096).
	Min, Max int
	// Window is the number of completed transactions per adaptation
	// round (default 32).
	Window int
	// TargetAbortRate is the attempt-level abort rate above which the
	// window triggers a multiplicative decrease (default 0.5: more than
	// half of all executions were wasted work).
	TargetAbortRate float64
	// Decrease is the multiplicative-decrease factor (default 0.75).
	Decrease float64
	// LatencyFactor triggers a decrease when the window's p50 commit
	// latency exceeds this multiple of the best p50 seen so far
	// (default 4; the gradient term that catches queueing collapse the
	// abort rate alone misses). 0 disables the latency term.
	LatencyFactor float64
	// QueuePerSlot bounds waiters: at most QueuePerSlot × limit
	// admissions may wait for a slot before new arrivals are shed with
	// ErrOverloaded (default 2).
	QueuePerSlot int
}

func (o LimiterOptions) withDefaults() LimiterOptions {
	if o.Initial <= 0 {
		o.Initial = 8
	}
	if o.Min <= 0 {
		o.Min = 1
	}
	if o.Max <= 0 {
		o.Max = 4096
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.TargetAbortRate <= 0 {
		o.TargetAbortRate = 0.5
	}
	if o.Decrease <= 0 || o.Decrease >= 1 {
		o.Decrease = 0.75
	}
	if o.LatencyFactor < 0 {
		o.LatencyFactor = 0
	} else if o.LatencyFactor == 0 {
		o.LatencyFactor = 4
	}
	if o.QueuePerSlot <= 0 {
		o.QueuePerSlot = 2
	}
	if o.Initial < o.Min {
		o.Initial = o.Min
	}
	if o.Initial > o.Max {
		o.Initial = o.Max
	}
	return o
}

// Limiter is an AIMD concurrency limiter: Acquire admits a transaction
// into the scheduler (blocking in a bounded wait queue when the limit is
// reached, shedding with ErrOverloaded when the queue is full too), and
// Release feeds the outcome back. Every Window completions the limiter
// adapts: a window whose attempt-level abort rate exceeds
// TargetAbortRate — or whose p50 latency blew past the best window by
// LatencyFactor — multiplies the limit by Decrease; a healthy window
// (abort rate under half the target) adds one. The probe direction is
// deliberately asymmetric (slow up, fast down): restart storms feed on
// admission, so over-admitting is the expensive mistake.
type Limiter struct {
	opts LimiterOptions

	mu       sync.Mutex
	limit    int
	inflight int
	queue    []chan struct{} // FIFO hand-off; closed channel = slot granted

	// Window accumulators (under mu).
	winDone     int
	winAttempts int64
	winCommits  int64
	bestP50     int64 // best (lowest) windowed p50 commit latency seen

	lat metrics.Histogram // commit latencies of the current window

	gauge     metrics.Gauge   // in-flight admissions
	shed      metrics.Counter // admissions refused with ErrOverloaded
	increases metrics.Counter
	decreases metrics.Counter
}

// NewLimiter returns a limiter with the given options.
func NewLimiter(o LimiterOptions) *Limiter {
	o = o.withDefaults()
	return &Limiter{opts: o, limit: o.Initial}
}

// Limit returns the current concurrency limit.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// InFlight returns the number of currently held slots.
func (l *Limiter) InFlight() int64 { return l.gauge.Value() }

// Gauge exposes the in-flight gauge (reports).
func (l *Limiter) Gauge() *metrics.Gauge { return &l.gauge }

// Shed returns how many admissions were refused.
func (l *Limiter) Shed() int64 { return l.shed.Value() }

// Acquire admits one transaction: immediately when a slot is free,
// after a bounded wait when the limiter is at its limit, or not at all —
// a full wait queue sheds the arrival with a typed *OverloadError, and
// ctx expiry while queued returns ctx.Err().
func (l *Limiter) Acquire(ctx Waiter, id int) error {
	l.mu.Lock()
	if l.inflight < l.limit {
		l.inflight++
		l.mu.Unlock()
		l.gauge.Inc()
		return nil
	}
	if len(l.queue) >= l.opts.QueuePerSlot*l.limit {
		e := &OverloadError{Txn: id, InFlight: l.inflight, Limit: l.limit, Waiters: len(l.queue)}
		l.mu.Unlock()
		l.shed.Inc()
		return e
	}
	w := make(chan struct{})
	l.queue = append(l.queue, w)
	l.mu.Unlock()
	select {
	case <-w:
		l.gauge.Inc()
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				l.mu.Unlock()
				return ctx.Err()
			}
		}
		// The slot was granted while we were cancelling: hand it on.
		l.releaseSlotLocked()
		l.mu.Unlock()
		return ctx.Err()
	}
}

// releaseSlotLocked frees one slot, handing it to the oldest waiter if
// any and the limit still has room for it. Callers hold mu.
func (l *Limiter) releaseSlotLocked() {
	if len(l.queue) > 0 && l.inflight <= l.limit {
		w := l.queue[0]
		l.queue = l.queue[1:]
		close(w) // inflight count transfers to the waiter
		return
	}
	l.inflight--
}

// Release returns a transaction's slot and feeds its outcome into the
// adaptation window.
func (l *Limiter) Release(committed bool, attempts int, latency time.Duration) {
	if committed {
		l.lat.ObserveDuration(latency)
	}
	l.mu.Lock()
	l.winDone++
	l.winAttempts += int64(attempts)
	if committed {
		l.winCommits++
	}
	if l.winDone >= l.opts.Window {
		l.adaptLocked()
	}
	l.releaseSlotLocked()
	l.mu.Unlock()
	l.gauge.Dec()
}

// adaptLocked runs one AIMD round over the finished window. Callers
// hold mu.
func (l *Limiter) adaptLocked() {
	attempts, commits := l.winAttempts, l.winCommits
	l.winDone, l.winAttempts, l.winCommits = 0, 0, 0
	snap := l.lat.Snapshot()
	l.lat.Reset()
	p50 := snap.Percentile(50)
	if p50 > 0 && (l.bestP50 == 0 || p50 < l.bestP50) {
		l.bestP50 = p50
	}
	abortRate := 0.0
	if attempts > 0 {
		abortRate = float64(attempts-commits) / float64(attempts)
	}
	slow := l.opts.LatencyFactor > 0 && l.bestP50 > 0 && p50 > int64(float64(l.bestP50)*l.opts.LatencyFactor)
	switch {
	case abortRate > l.opts.TargetAbortRate || slow:
		next := int(float64(l.limit) * l.opts.Decrease)
		if next >= l.limit {
			next = l.limit - 1
		}
		if next < l.opts.Min {
			next = l.opts.Min
		}
		if next != l.limit {
			l.limit = next
			l.decreases.Inc()
		}
	case abortRate < l.opts.TargetAbortRate/2:
		if l.limit < l.opts.Max {
			l.limit++
			l.increases.Inc()
			// A raised limit may unblock a waiter immediately.
			if len(l.queue) > 0 && l.inflight < l.limit {
				w := l.queue[0]
				l.queue = l.queue[1:]
				l.inflight++
				close(w)
			}
		}
	}
}
