package admit

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// LimiterOptions tunes the adaptive concurrency limiter.
type LimiterOptions struct {
	// Initial is the starting concurrency limit (default 8).
	Initial int
	// Min and Max clamp the limit (defaults 1 and 4096).
	Min, Max int
	// Window is the number of completed transactions per adaptation
	// round (default 32).
	Window int
	// TargetAbortRate is the attempt-level abort rate above which the
	// window triggers a multiplicative decrease (default 0.5: more than
	// half of all executions were wasted work).
	TargetAbortRate float64
	// Decrease is the multiplicative-decrease factor (default 0.75).
	Decrease float64
	// LatencyFactor triggers a decrease when the window's p50 commit
	// latency exceeds this multiple of the best p50 over the last
	// recentWindows adaptation rounds (default 4; the gradient term
	// that catches queueing collapse the abort rate alone misses). The
	// anchor is a sliding minimum, not an all-time best: a light-load
	// phase posting microsecond p50s must not poison the comparison for
	// every later regime where queueing makes those unattainable. 0
	// disables the latency term.
	LatencyFactor float64
	// QueuePerSlot bounds waiters: at most QueuePerSlot × limit
	// admissions may wait for a slot before new arrivals are shed with
	// ErrOverloaded (default 2).
	QueuePerSlot int
}

func (o LimiterOptions) withDefaults() LimiterOptions {
	if o.Initial <= 0 {
		o.Initial = 8
	}
	if o.Min <= 0 {
		o.Min = 1
	}
	if o.Max <= 0 {
		o.Max = 4096
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.TargetAbortRate <= 0 {
		o.TargetAbortRate = 0.5
	}
	if o.Decrease <= 0 || o.Decrease >= 1 {
		o.Decrease = 0.75
	}
	if o.LatencyFactor < 0 {
		o.LatencyFactor = 0
	} else if o.LatencyFactor == 0 {
		o.LatencyFactor = 4
	}
	if o.QueuePerSlot <= 0 {
		o.QueuePerSlot = 2
	}
	if o.Initial < o.Min {
		o.Initial = o.Min
	}
	if o.Initial > o.Max {
		o.Initial = o.Max
	}
	return o
}

// Limiter is an AIMD concurrency limiter: Acquire admits a transaction
// into the scheduler (blocking in a bounded wait queue when the limit is
// reached, shedding with ErrOverloaded when the queue is full too), and
// Release feeds the outcome back. Every Window completions the limiter
// adapts: a window whose attempt-level abort rate exceeds
// TargetAbortRate — or whose p50 latency blew past the recent best by
// LatencyFactor — multiplies the limit by Decrease; a healthy window
// (abort rate under half the target) adds one. The probe direction is
// deliberately asymmetric (slow up, fast down): restart storms feed on
// admission, so over-admitting is the expensive mistake. One exception
// cuts the other way — a window that shed arrivals while neither
// decrease signal fired is refusing work with no overload evidence, and
// climbs out at limit/4 per window instead of one slot at a time.
type Limiter struct {
	opts LimiterOptions

	mu       sync.Mutex
	limit    int
	inflight int
	queue    []chan struct{} // FIFO hand-off; closed channel = slot granted

	// Window accumulators (under mu).
	winDone     int
	winAttempts int64
	winCommits  int64
	winSheds    int64
	// recentP50 is a ring of the last recentWindows windowed p50 commit
	// latencies; the latency-gradient anchor is its minimum, so the
	// anchor tracks the current load regime and forgets a faster past
	// within recentWindows adaptation rounds.
	recentP50 [recentWindows]int64
	p50Idx    int

	lat metrics.Histogram // commit latencies of the current window

	gauge     metrics.Gauge   // in-flight admissions
	shed      metrics.Counter // admissions refused with ErrOverloaded
	increases metrics.Counter
	decreases metrics.Counter
}

// recentWindows is how many adaptation rounds the latency-gradient
// anchor remembers (see LimiterOptions.LatencyFactor).
const recentWindows = 8

// NewLimiter returns a limiter with the given options.
func NewLimiter(o LimiterOptions) *Limiter {
	o = o.withDefaults()
	return &Limiter{opts: o, limit: o.Initial}
}

// Limit returns the current concurrency limit.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// InFlight returns the number of currently held slots.
func (l *Limiter) InFlight() int64 { return l.gauge.Value() }

// Gauge exposes the in-flight gauge (reports).
func (l *Limiter) Gauge() *metrics.Gauge { return &l.gauge }

// Shed returns how many admissions were refused.
func (l *Limiter) Shed() int64 { return l.shed.Value() }

// Acquire admits one transaction: immediately when a slot is free,
// after a bounded wait when the limiter is at its limit, or not at all —
// a full wait queue sheds the arrival with a typed *OverloadError, and
// ctx expiry while queued returns ctx.Err().
func (l *Limiter) Acquire(ctx Waiter, id int) error {
	l.mu.Lock()
	if l.inflight < l.limit {
		l.inflight++
		l.mu.Unlock()
		l.gauge.Inc()
		return nil
	}
	if len(l.queue) >= l.opts.QueuePerSlot*l.limit {
		e := &OverloadError{Txn: id, InFlight: l.inflight, Limit: l.limit, Waiters: len(l.queue)}
		l.winSheds++
		l.mu.Unlock()
		l.shed.Inc()
		return e
	}
	w := make(chan struct{})
	l.queue = append(l.queue, w)
	l.mu.Unlock()
	select {
	case <-w:
		l.gauge.Inc()
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				l.mu.Unlock()
				return ctx.Err()
			}
		}
		// The slot was granted while we were cancelling: hand it on.
		l.releaseSlotLocked()
		l.mu.Unlock()
		return ctx.Err()
	}
}

// releaseSlotLocked frees one slot, handing it to the oldest waiter if
// any and the limit still has room for it. Callers hold mu.
func (l *Limiter) releaseSlotLocked() {
	if len(l.queue) > 0 && l.inflight <= l.limit {
		w := l.queue[0]
		l.queue = l.queue[1:]
		close(w) // inflight count transfers to the waiter
		return
	}
	l.inflight--
}

// Release returns a transaction's slot and feeds its outcome into the
// adaptation window.
func (l *Limiter) Release(committed bool, attempts int, latency time.Duration) {
	if committed {
		l.lat.ObserveDuration(latency)
	}
	l.mu.Lock()
	l.winDone++
	l.winAttempts += int64(attempts)
	if committed {
		l.winCommits++
	}
	if l.winDone >= l.opts.Window {
		l.adaptLocked()
	}
	l.releaseSlotLocked()
	l.mu.Unlock()
	l.gauge.Dec()
}

// adaptLocked runs one AIMD round over the finished window. Callers
// hold mu.
func (l *Limiter) adaptLocked() {
	attempts, commits, sheds := l.winAttempts, l.winCommits, l.winSheds
	l.winDone, l.winAttempts, l.winCommits, l.winSheds = 0, 0, 0, 0
	snap := l.lat.Snapshot()
	l.lat.Reset()
	p50 := snap.Percentile(50)
	var anchor int64
	for _, v := range l.recentP50 {
		if v > 0 && (anchor == 0 || v < anchor) {
			anchor = v
		}
	}
	abortRate := 0.0
	if attempts > 0 {
		abortRate = float64(attempts-commits) / float64(attempts)
	}
	slow := l.opts.LatencyFactor > 0 && anchor > 0 && p50 > int64(float64(anchor)*l.opts.LatencyFactor)
	// A high abort rate alone is not overload evidence when retries are
	// cheap: a hotspot workload can waste half its attempts at ANY
	// concurrency while commit latency stays flat — throttling there
	// sheds work the scheduler absorbs fine. So the abort-rate trigger
	// needs corroboration: commit p50 elevated past half the collapse
	// factor (a storm's survivors carry their retry time in their
	// latency, so genuine storms corroborate themselves), or a window
	// that committed nothing at all. With the latency term disabled the
	// abort rate stands alone, as before.
	degraded := true
	if l.opts.LatencyFactor > 0 && commits > 0 {
		corr := l.opts.LatencyFactor / 2
		if corr < 1 {
			corr = 1
		}
		degraded = anchor > 0 && p50 > int64(float64(anchor)*corr)
	}
	if p50 > 0 {
		l.recentP50[l.p50Idx] = p50
		l.p50Idx = (l.p50Idx + 1) % recentWindows
	}
	switch {
	case (abortRate > l.opts.TargetAbortRate && degraded) || slow:
		next := int(float64(l.limit) * l.opts.Decrease)
		if next >= l.limit {
			next = l.limit - 1
		}
		if next < l.opts.Min {
			next = l.opts.Min
		}
		if next != l.limit {
			l.limit = next
			l.decreases.Inc()
		}
	default:
		step := 0
		if abortRate < l.opts.TargetAbortRate/2 {
			step = 1
		}
		if sheds > 0 {
			// Shed-probe: the window refused arrivals while neither
			// overload signal fired — the limiter itself is the
			// bottleneck, not the scheduler. Shedding is only justified
			// while the decrease evidence holds, so climb out
			// multiplicatively rather than one slot per window; a genuine
			// storm keeps its abort rate above target and never reaches
			// this branch.
			step = l.limit / 4
			if step < 1 {
				step = 1
			}
		}
		if step > 0 && l.limit < l.opts.Max {
			l.limit += step
			if l.limit > l.opts.Max {
				l.limit = l.opts.Max
			}
			l.increases.Inc()
			// A raised limit may unblock waiters immediately.
			for len(l.queue) > 0 && l.inflight < l.limit {
				w := l.queue[0]
				l.queue = l.queue[1:]
				l.inflight++
				close(w)
			}
		}
	}
}
