package admit

import (
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// BreakerOptions tunes the per-site circuit breaker.
type BreakerOptions struct {
	// Health tunes the embedded failure detector; the breaker maps its
	// Down state to the open circuit (DownAfter consecutive failures
	// trip the breaker).
	Health fault.HealthOptions
	// Cooldown is how long an open breaker blocks all traffic to the
	// site before letting one probe attempt through (half-open state;
	// default 2ms — sim time scales, tune up for real deployments).
	Cooldown time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * time.Millisecond
	}
	return o
}

// Breaker is a per-site circuit breaker over a fault.Health failure
// detector. The detector supplies the evidence (consecutive contact
// failures drive a site Up → Suspect → Down); the breaker adds the
// policy: once a site is Down the circuit opens and every attempt that
// would touch it fails fast with ErrUnavailable instead of burning its
// deadline against a transport that will not answer. After Cooldown one
// attempt per cooldown period is allowed through as a probe (half-open);
// a successful contact resets the detector and closes the circuit, a
// failed one reopens it for another cooldown.
//
// States map as: Health Up/Suspect = closed (Suspect still admits —
// false suspicion must not cost availability), Health Down + cooldown
// running = open, Health Down + cooldown elapsed = half-open.
type Breaker struct {
	opts    BreakerOptions
	health  *fault.Health
	openNs  []atomic.Int64 // monotonic ns when the circuit opened; 0 = closed
	probing []atomic.Bool  // a half-open probe is in flight

	trips     metrics.Counter // closed → open transitions
	fastFails metrics.Counter // attempts refused while open
	reprobes  metrics.Counter // half-open probes admitted
}

// NewBreaker returns a breaker for the given number of sites, all
// closed.
func NewBreaker(sites int, opts BreakerOptions) *Breaker {
	opts = opts.withDefaults()
	return &Breaker{
		opts:    opts,
		health:  fault.NewHealth(sites, opts.Health),
		openNs:  make([]atomic.Int64, sites),
		probing: make([]atomic.Bool, sites),
	}
}

// Health exposes the embedded failure detector (shared with counter-sync
// skip sets and diagnostics).
func (b *Breaker) Health() *fault.Health { return b.health }

// Allow reports whether an attempt may contact the site. While the
// circuit is open it returns false (fail fast); after Cooldown it admits
// exactly one caller per cooldown period as the half-open probe.
func (b *Breaker) Allow(site int) bool {
	if site < 0 || site >= len(b.openNs) {
		return false
	}
	if b.health.State(site) != fault.Down {
		return true
	}
	opened := b.openNs[site].Load()
	if opened == 0 {
		// Down but not yet stamped (detector raced ahead of Observe's
		// stamping): open now.
		b.openNs[site].CompareAndSwap(0, time.Now().UnixNano())
		b.fastFails.Inc()
		return false
	}
	if time.Since(time.Unix(0, opened)) < b.opts.Cooldown {
		b.fastFails.Inc()
		return false
	}
	// Half-open: one probe per cooldown period.
	if b.probing[site].CompareAndSwap(false, true) {
		b.reprobes.Inc()
		return true
	}
	b.fastFails.Inc()
	return false
}

// Observe feeds one contact outcome with the site, driving both the
// detector and the circuit state machine.
func (b *Breaker) Observe(site int, ok bool) {
	if site < 0 || site >= len(b.openNs) {
		return
	}
	wasDown := b.health.State(site) == fault.Down
	b.health.Observe(site, ok)
	switch {
	case ok:
		// Success closes the circuit (the detector is already reset).
		b.openNs[site].Store(0)
		b.probing[site].Store(false)
	case b.health.State(site) == fault.Down:
		if !wasDown {
			b.trips.Inc()
		}
		// A failure while down (tripping failure or failed half-open
		// probe) restarts the cooldown.
		b.openNs[site].Store(time.Now().UnixNano())
		b.probing[site].Store(false)
	}
}

// Open reports whether the site's circuit is currently open or
// half-open (i.e. the detector holds it Down).
func (b *Breaker) Open(site int) bool {
	return site >= 0 && site < len(b.openNs) && b.health.State(site) == fault.Down
}

// Trips returns the number of closed → open transitions.
func (b *Breaker) Trips() int64 { return b.trips.Value() }

// FastFails returns how many attempts were refused while open.
func (b *Breaker) FastFails() int64 { return b.fastFails.Value() }

// Reprobes returns how many half-open probes were admitted.
func (b *Breaker) Reprobes() int64 { return b.reprobes.Value() }

// BreakerStats is a snapshot of the breaker's counters for reports.
type BreakerStats struct {
	Trips     int64
	FastFails int64
	Reprobes  int64
	Open      int // sites currently open
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	s := BreakerStats{Trips: b.trips.Value(), FastFails: b.fastFails.Value(), Reprobes: b.reprobes.Value()}
	for i := range b.openNs {
		if b.Open(i) {
			s.Open++
		}
	}
	return s
}
