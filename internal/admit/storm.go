package admit

import (
	"sync"

	"repro/internal/metrics"
)

// StormOptions tunes the restart-storm detector.
type StormOptions struct {
	// Window is the number of attempt outcomes (aborts + commits) per
	// evaluation round (default 128).
	Window int
	// TripRatio is the abort:commit ratio at which the detector trips
	// (default 3: three aborted executions per commit). A window with
	// zero commits and at least Window aborts always trips.
	TripRatio float64
	// Damp is the global backoff multiplier while tripped (default 4).
	Damp float64
	// ClearRatio is the abort:commit ratio below which a tripped
	// detector releases (default TripRatio/2 — hysteresis, so the
	// damping does not flap at the threshold).
	ClearRatio float64
}

func (o StormOptions) withDefaults() StormOptions {
	if o.Window <= 0 {
		o.Window = 128
	}
	if o.TripRatio <= 0 {
		o.TripRatio = 3
	}
	if o.Damp <= 1 {
		o.Damp = 4
	}
	if o.ClearRatio <= 0 || o.ClearRatio >= o.TripRatio {
		o.ClearRatio = o.TripRatio / 2
	}
	return o
}

// Storm watches the global abort:commit ratio over fixed-size windows of
// attempt outcomes. When the ratio spikes past TripRatio the system is
// in a restart storm — most executions are wasted work — and every
// backoff in the runtime is widened by Damp until the ratio falls back
// under ClearRatio. Widening backoff globally drains the conflict
// window: fewer transactions are mid-flight at once, so the survivors'
// next attempts meet less competition. The trip counter is the
// operator-facing signal that offered load is past the knee.
type Storm struct {
	opts StormOptions

	mu         sync.Mutex
	winAborts  int64
	winCommits int64
	storming   bool

	trips metrics.Counter
}

// NewStorm returns a detector with the given options.
func NewStorm(o StormOptions) *Storm {
	return &Storm{opts: o.withDefaults()}
}

// OnAbort records one aborted attempt.
func (s *Storm) OnAbort() { s.observe(1, 0) }

// OnCommit records one committed attempt.
func (s *Storm) OnCommit() { s.observe(0, 1) }

func (s *Storm) observe(aborts, commits int64) {
	s.mu.Lock()
	s.winAborts += aborts
	s.winCommits += commits
	if s.winAborts+s.winCommits >= int64(s.opts.Window) {
		ratio := float64(s.winAborts)
		if s.winCommits > 0 {
			ratio = float64(s.winAborts) / float64(s.winCommits)
		}
		switch {
		case !s.storming && ratio >= s.opts.TripRatio:
			s.storming = true
			s.trips.Inc()
		case s.storming && ratio <= s.opts.ClearRatio:
			s.storming = false
		}
		s.winAborts, s.winCommits = 0, 0
	}
	s.mu.Unlock()
}

// Scale returns the current global backoff multiplier: Damp while a
// storm is running, 1 otherwise.
func (s *Storm) Scale() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.storming {
		return s.opts.Damp
	}
	return 1
}

// Storming reports whether the detector is currently tripped.
func (s *Storm) Storming() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storming
}

// Trips returns how many times the detector has tripped.
func (s *Storm) Trips() int64 { return s.trips.Value() }
