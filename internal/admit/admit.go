// Package admit is the overload-control and progress-guarantee layer in
// front of the transaction runtime. The MT-family protocols resolve
// conflicts by aborting and restarting transactions, so under offered
// load past the contention knee the system can collapse into restart
// storms: every scheduler cycle is spent on work that never commits.
// The paper proves serializability, not progress — this package supplies
// the progress half:
//
//   - Limiter: an adaptive (AIMD) concurrency limiter gates admission on
//     the windowed abort rate and commit-latency percentiles, shedding
//     excess load with a typed ErrOverloaded before it consumes
//     scheduler resources.
//   - Aging: restart counts carried across a transaction's incarnations
//     feed priority aging — young transactions yield backoff to older
//     blockers, and a transaction past the elder threshold gains an
//     admission barrier (no new first attempts while an elder is
//     in flight) plus zero-backoff retries, so combined with the
//     engine's Section III-D-4 reseeding it eventually wins every
//     conflict. This is the bounded-timestamp intuition of Haldar &
//     Vitányi: age, not luck, decides who goes next.
//   - Storm: a detector over the global abort:commit ratio that widens
//     every backoff multiplicatively while a restart storm is running
//     and releases the damping with hysteresis once it clears.
//   - Breaker: a per-site circuit breaker (built on fault.Health) for
//     the distributed scheduler, so a flapping site fails fast instead
//     of burning every attempt's deadline.
//
// Controller bundles the first three behind the two calls the runtime
// makes (Admit / Done) plus the per-abort hook (OnAbort) that shapes the
// next backoff sleep. The Breaker is wired separately into the DMT
// adapter's site-admission path.
package admit

import (
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is returned by Admit when the system refuses new work:
// the limiter is at its concurrency limit and the wait queue is full, so
// admitting the transaction would only deepen the restart storm. Callers
// should surface the rejection (shed) rather than retry immediately.
var ErrOverloaded = errors.New("admit: overloaded, admission refused")

// OverloadError wraps ErrOverloaded with the limiter state at rejection.
type OverloadError struct {
	Txn      int
	InFlight int
	Limit    int
	Waiters  int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("admit: txn %d shed (inflight %d, limit %d, waiters %d)",
		e.Txn, e.InFlight, e.Limit, e.Waiters)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Options configures a Controller. Zero values select the defaults of
// each component; a nil-safe Controller with everything disabled is not
// a thing — construct one only when overload control is wanted.
type Options struct {
	Limiter LimiterOptions
	Aging   AgingOptions
	Storm   StormOptions
}

// Controller bundles the limiter, the aging table and the storm detector
// behind the runtime's call points. All methods are safe for concurrent
// use.
type Controller struct {
	lim   *Limiter
	age   *Aging
	storm *Storm
}

// NewController builds a Controller from the options.
func NewController(o Options) *Controller {
	return &Controller{
		lim:   NewLimiter(o.Limiter),
		age:   NewAging(o.Aging),
		storm: NewStorm(o.Storm),
	}
}

// Admit gates a transaction's first attempt: it waits for the elder
// barrier (no new work while an aged transaction is fighting for its
// commit), then acquires a limiter slot. It returns nil on admission, a
// typed *OverloadError when the load must be shed, or the context error
// when ctx expires while waiting.
func (c *Controller) Admit(ctx Waiter, id int) error {
	if err := c.age.WaitBarrier(ctx); err != nil {
		return err
	}
	if err := c.lim.Acquire(ctx, id); err != nil {
		return err
	}
	c.age.Admitted(id)
	return nil
}

// Done reports a transaction's final outcome (committed or gave up) and
// releases its limiter slot and aging state. latency is the wall time
// from first attempt to outcome; attempts counts executions including
// the final one.
func (c *Controller) Done(id int, committed bool, attempts int, latency time.Duration) {
	c.lim.Release(committed, attempts, latency)
	c.age.Done(id)
	if committed {
		c.storm.OnCommit()
	}
}

// RetryGate parks a retry while the aging crisis gate is down (an elder
// is live and id is not the oldest live transaction). Call it before
// launching any attempt after the first; it returns nil when the
// transaction may proceed, or ctx's error if ctx expires while parked.
func (c *Controller) RetryGate(ctx Waiter, id int) error {
	return c.age.RetryGate(ctx, id)
}

// OnAbort reports one conflict abort of id by blocker and returns the
// scale factor for the next backoff sleep: <1 shortens it (the oldest
// live transaction's express lane), 1 is the neutral base, >1 widens
// the sleep (young transactions yielding to older blockers, global
// storm damping). The runtime multiplies its backoff base by the
// returned scale.
func (c *Controller) OnAbort(id, blocker int) float64 {
	c.storm.OnAbort()
	return c.age.OnAbort(id, blocker) * c.storm.Scale()
}

// Limit returns the limiter's current concurrency limit.
func (c *Controller) Limit() int { return c.lim.Limit() }

// InFlight returns the number of currently admitted transactions.
func (c *Controller) InFlight() int64 { return c.lim.InFlight() }

// Stats snapshots every component's counters.
func (c *Controller) Stats() Stats {
	s := Stats{
		Limit:       c.lim.Limit(),
		InFlight:    c.lim.InFlight(),
		MaxInFlight: c.lim.gauge.High(),
		Shed:        c.lim.shed.Value(),
		Decreases:   c.lim.decreases.Value(),
		Increases:   c.lim.increases.Value(),
		Elders:      c.age.elders.Value(),
		ElderWaits:  c.age.barrierWaits.Value(),
		GateWaits:   c.age.gateWaits.Value(),
		StormTrips:  c.storm.trips.Value(),
		Storming:    c.storm.Storming(),
	}
	return s
}

// Stats is a point-in-time snapshot of the controller's counters.
type Stats struct {
	Limit       int   // current concurrency limit
	InFlight    int64 // currently admitted transactions
	MaxInFlight int64 // high-water mark of admitted transactions
	Shed        int64 // admissions refused with ErrOverloaded
	Decreases   int64 // limiter multiplicative decreases
	Increases   int64 // limiter additive increases
	Elders      int64 // transactions promoted past the elder threshold
	ElderWaits  int64 // admissions that waited on the elder barrier
	GateWaits   int64 // retries parked by the crisis gate
	StormTrips  int64 // storm detector trips
	Storming    bool  // currently inside a detected storm
}

// String renders the snapshot for reports.
func (s Stats) String() string {
	return fmt.Sprintf("limit=%d inflight=%d max-inflight=%d shed=%d aimd=+%d/-%d elders=%d storm-trips=%d",
		s.Limit, s.InFlight, s.MaxInFlight, s.Shed, s.Increases, s.Decreases, s.Elders, s.StormTrips)
}

// Waiter is the subset of context.Context the package blocks on; taking
// the interface keeps admit free of direct context plumbing in tests.
type Waiter interface {
	Done() <-chan struct{}
	Err() error
}
