// Package sim is the experiment harness: it runs a workload against a
// scheduler with a worker pool and reports throughput, abort/retry counts
// and latency percentiles. The runtime benchmarks (bench_test.go) and the
// cmd/mtsim tool are thin wrappers over it.
package sim

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Config describes one simulation run.
type Config struct {
	// NewScheduler builds the scheduler under test over the given store.
	NewScheduler func(*storage.Store) sched.Scheduler
	// Specs is the workload.
	Specs []txn.Spec
	// Workers is the number of concurrent client goroutines.
	Workers int
	// MaxAttempts bounds per-transaction conflict retries (0 = forever).
	MaxAttempts int
	// Backoff is the retry backoff base (0 = none).
	Backoff time.Duration
	// Think is the per-operation think time (forces overlap).
	Think time.Duration
	// Seed sets initial item values (item -> value); optional.
	Initial map[string]int64
	// RuntimeSeed perturbs per-transaction retry jitter (see
	// txn.Runtime.Seed); 0 keeps the legacy per-spec seeding.
	RuntimeSeed int64
	// AttemptTimeout bounds one attempt's wall time (0 = unbounded).
	AttemptTimeout time.Duration
	// UnavailableBudget bounds unavailability retries (0 = forever).
	UnavailableBudget int
	// UnavailableBackoff is the backoff base for unavailability retries
	// (0 = use Backoff).
	UnavailableBackoff time.Duration
	// FaultStats, when set, is attached to the Report so chaos harnesses
	// can print injector counters next to throughput.
	FaultStats *fault.Stats
}

// Report aggregates one run's results.
type Report struct {
	Name        string
	Txns        int
	Committed   int64
	GaveUp      int64 // transactions that exhausted a retry budget
	Attempts    int64 // total executions, committed or not
	Restarts    int64 // Attempts - Txns that finished (retry count)
	Unavailable int64 // attempts ended by sched.ErrUnavailable
	Timeouts    int64 // attempts abandoned by the per-attempt timeout
	Wall        time.Duration
	Latency     *metrics.Histogram
	Store       *storage.Store
	Fault       *fault.Stats // injector counters (nil without faults)
}

// Throughput returns committed transactions per second.
func (r *Report) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Wall.Seconds()
}

// AbortRate returns the fraction of attempts that aborted.
func (r *Report) AbortRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Restarts) / float64(r.Attempts)
}

// String renders a one-line summary. Gave-up and restart counts appear
// alongside throughput so degraded runs are visible at a glance;
// unavailability counters are appended only when they fired.
func (r *Report) String() string {
	s := fmt.Sprintf("%-14s txns=%d committed=%d gaveup=%d restarts=%d abort-rate=%.3f tput=%.0f/s mean-lat=%.0fµs p99=%dµs",
		r.Name, r.Txns, r.Committed, r.GaveUp, r.Restarts, r.AbortRate(), r.Throughput(),
		r.Latency.Mean()/1e3, r.Latency.Percentile(99)/1000)
	if r.Unavailable > 0 || r.Timeouts > 0 {
		s += fmt.Sprintf(" unavail=%d timeouts=%d", r.Unavailable, r.Timeouts)
	}
	if r.Fault != nil {
		s += fmt.Sprintf(" [faults: sent=%d dropped=%d rejected=%d crashes=%d recoveries=%d]",
			r.Fault.Sent.Value(), r.Fault.Dropped.Value(), r.Fault.Rejected.Value(),
			r.Fault.Crashes.Value(), r.Fault.Recoveries.Value())
	}
	return s
}

// Run executes the configured simulation.
func Run(cfg Config) *Report {
	store := storage.New()
	for x, v := range cfg.Initial {
		store.Set(x, v)
	}
	s := cfg.NewScheduler(store)
	rt := &txn.Runtime{
		Sched: s, MaxAttempts: cfg.MaxAttempts, Backoff: cfg.Backoff, Think: cfg.Think,
		Seed: cfg.RuntimeSeed, AttemptTimeout: cfg.AttemptTimeout,
		UnavailableBudget: cfg.UnavailableBudget, UnavailableBackoff: cfg.UnavailableBackoff,
	}
	rep := &Report{
		Name:    s.Name(),
		Txns:    len(cfg.Specs),
		Latency: &metrics.Histogram{},
		Store:   store,
		Fault:   cfg.FaultStats,
	}
	start := time.Now()
	results := rt.Pool(cfg.Specs, cfg.Workers)
	rep.Wall = time.Since(start)
	for _, res := range results {
		rep.Attempts += int64(res.Attempts)
		if res.Committed {
			rep.Committed++
		} else {
			rep.GaveUp++
		}
		rep.Restarts += int64(res.Attempts - 1)
		rep.Unavailable += int64(res.Unavailable)
		rep.Timeouts += int64(res.Timeouts)
		rep.Latency.ObserveDuration(res.Latency)
	}
	return rep
}
