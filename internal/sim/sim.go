// Package sim is the experiment harness: it runs a workload against a
// scheduler with a worker pool and reports throughput, abort/retry counts
// and latency percentiles. The runtime benchmarks (bench_test.go) and the
// cmd/mtsim tool are thin wrappers over it.
package sim

import (
	"fmt"
	"time"

	"repro/internal/admit"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Config describes one simulation run.
type Config struct {
	// NewScheduler builds the scheduler under test over the given store.
	NewScheduler func(*storage.Store) sched.Scheduler
	// Specs is the workload.
	Specs []txn.Spec
	// Workers is the number of concurrent client goroutines.
	Workers int
	// MaxAttempts bounds per-transaction conflict retries (0 = forever).
	MaxAttempts int
	// Backoff is the retry backoff base (0 = none).
	Backoff time.Duration
	// Think is the per-operation think time (forces overlap).
	Think time.Duration
	// Initial sets initial item values (item -> value); optional. With a
	// WAL it only applies to a fresh log directory: a durable restart
	// restores the seeded items' committed values from the log instead.
	Initial map[string]int64
	// RuntimeSeed perturbs per-transaction retry jitter (see
	// txn.Runtime.Seed); 0 keeps the legacy per-spec seeding.
	RuntimeSeed int64
	// AttemptTimeout bounds one attempt's wall time (0 = unbounded).
	AttemptTimeout time.Duration
	// UnavailableBudget bounds unavailability retries (0 = forever).
	UnavailableBudget int
	// UnavailableBackoff is the backoff base for unavailability retries
	// (0 = use Backoff).
	UnavailableBackoff time.Duration
	// FaultStats, when set, is attached to the Report so chaos harnesses
	// can print injector counters next to throughput.
	FaultStats *fault.Stats
	// WAL, when set, makes commits durable: the run opens (and recovers)
	// the write-ahead log directory, restores the store from it, attaches
	// the journal before seeding, seeds the scheduler's counters from the
	// recovered watermarks, and acks each commit only after its redo
	// record reaches stable storage per the options' sync policy.
	WAL *wal.Options
	// OnWALOpen, when set together with WAL, runs after the log writer
	// is opened and attached, before any batch is journaled. Crash
	// harnesses use it to capture the writer (e.g. to read
	// LastWatermarks from the Observe hook).
	OnWALOpen func(*wal.Writer, *wal.RecoveredState)
	// Observe, when set, sees every committed batch (after the WAL
	// journal, both under the store mutex). Crash harnesses use it to
	// build the shadow copy recovery is checked against. Per the
	// storage.Journal contract the maps are only valid during the call.
	Observe storage.Journal
	// KeepResults attaches every per-transaction txn.Result to the
	// Report (crash harnesses need the durable-ack per transaction).
	KeepResults bool
	// StoreLatency, when non-zero, models a paged/remote storage backend:
	// every store access sleeps this long under the affected shard locks
	// (see storage.SetSimLatency). Benchmarks use it to expose what a
	// scheduler's lock granularity costs when data access is not free.
	StoreLatency time.Duration
	// Repro, when set, is attached verbatim to the Report: the effective
	// seeds and the planned fault schedule (Injector.PlannedSchedule), so
	// a failing chaos/partition run is replayable from its log alone.
	Repro []string
	// Admit, when set, puts an overload controller in front of the
	// runtime: admission is gated by its adaptive concurrency limiter
	// (excess load is shed with ErrOverloaded), restart-storm damping
	// widens backoffs globally, and priority aging gives starving
	// transactions precedence. The controller's stats land on the Report.
	Admit *admit.Options
	// Deadline bounds each transaction's total wall time (admission wait,
	// every attempt and every backoff included); 0 = none. Missed
	// deadlines are reported per-transaction and counted on the Report.
	Deadline time.Duration
	// ShedPause is the rejected client's retry-after pause: a shed
	// transaction sleeps this long before its worker offers the next
	// one. See txn.Runtime.ShedPause.
	ShedPause time.Duration
}

// Report aggregates one run's results.
type Report struct {
	Name         string
	Txns         int
	Committed    int64
	GaveUp       int64 // transactions that exhausted a retry budget
	Shed         int64 // transactions refused admission (ErrOverloaded)
	DeadlineMiss int64 // transactions that ran out of deadline
	Attempts     int64 // total executions, committed or not
	Restarts     int64 // Attempts - Txns that finished (retry count)
	Unavailable  int64 // attempts ended by sched.ErrUnavailable
	Timeouts     int64 // attempts abandoned by the per-attempt timeout
	Durable      int64 // commits acked durable (== Committed without a WAL)
	Wall         time.Duration
	Latency      *metrics.Histogram
	Store        *storage.Store
	Fault        *fault.Stats         // injector counters (nil without faults)
	WAL          *wal.Stats           // log writer counters (nil without a WAL)
	Results      []txn.Result         // per-transaction results (KeepResults only)
	Recovered    *wal.RecoveredState  // state the run started from (WAL only)
	Degraded     *sched.DegradedStats // degraded-mode commit counters (DMT only)
	Admit        *admit.Stats         // overload controller counters (Config.Admit only)
	Breaker      *admit.BreakerStats  // per-site circuit breaker counters (if installed)
	Repro        []string             // replay lines (Config.Repro, verbatim)
}

// Throughput returns committed transactions per second.
func (r *Report) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Wall.Seconds()
}

// Goodput returns useful work per second: transactions that committed
// (within their deadline, when one was set). Shed and deadline-missed
// transactions cost wall time but produce nothing, so under overload
// goodput is the number to watch, not offered throughput.
func (r *Report) Goodput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Wall.Seconds()
}

// AbortRate returns the fraction of attempts that aborted.
func (r *Report) AbortRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Restarts) / float64(r.Attempts)
}

// String renders a one-line summary. Gave-up and restart counts appear
// alongside throughput so degraded runs are visible at a glance;
// unavailability counters are appended only when they fired.
func (r *Report) String() string {
	s := fmt.Sprintf("%-14s txns=%d committed=%d gaveup=%d restarts=%d abort-rate=%.3f tput=%.0f/s mean-lat=%.0fµs p99=%dµs",
		r.Name, r.Txns, r.Committed, r.GaveUp, r.Restarts, r.AbortRate(), r.Throughput(),
		r.Latency.Mean()/1e3, r.Latency.Percentile(99)/1000)
	if r.Unavailable > 0 || r.Timeouts > 0 {
		s += fmt.Sprintf(" unavail=%d timeouts=%d", r.Unavailable, r.Timeouts)
	}
	if r.Shed > 0 || r.DeadlineMiss > 0 {
		s += fmt.Sprintf(" shed=%d deadline-miss=%d", r.Shed, r.DeadlineMiss)
	}
	if r.Admit != nil {
		s += " [admit: " + r.Admit.String() + "]"
	}
	if r.Breaker != nil {
		s += fmt.Sprintf(" [breaker: trips=%d fast-fails=%d reprobes=%d open=%d]",
			r.Breaker.Trips, r.Breaker.FastFails, r.Breaker.Reprobes, r.Breaker.Open)
	}
	if r.Fault != nil {
		s += fmt.Sprintf(" [faults: sent=%d dropped=%d rejected=%d crashes=%d recoveries=%d",
			r.Fault.Sent.Value(), r.Fault.Dropped.Value(), r.Fault.Rejected.Value(),
			r.Fault.Crashes.Value(), r.Fault.Recoveries.Value())
		if r.Fault.Partitions.Value() > 0 || r.Fault.Partitioned.Value() > 0 {
			s += fmt.Sprintf(" partitions=%d heals=%d part-refused=%d",
				r.Fault.Partitions.Value(), r.Fault.Heals.Value(), r.Fault.Partitioned.Value())
		}
		s += "]"
	}
	if r.Degraded != nil {
		s += fmt.Sprintf(" [degraded: parked=%d healed=%d expired=%d queue-full=%d window-attempts=%d window-commits=%d avail=%.3f]",
			r.Degraded.Parked, r.Degraded.Healed, r.Degraded.Expired, r.Degraded.Rejected,
			r.Degraded.WindowAttempts, r.Degraded.WindowCommits, r.Degraded.Availability())
	}
	if r.WAL != nil {
		s += fmt.Sprintf(" [wal: durable=%d fsyncs=%d batch-mean=%.1f fsync-p50=%dµs fsync-p99=%dµs ckpts=%d]",
			r.Durable, r.WAL.Syncs.Value(), r.WAL.BatchRecords.Mean(),
			r.WAL.FsyncNs.Percentile(50)/1000, r.WAL.FsyncNs.Percentile(99)/1000,
			r.WAL.Checkpoints.Value())
	}
	return s
}

// Run executes the configured simulation. With cfg.WAL set the run is
// durable: it restores the store and counter watermarks from the log
// directory before traffic and journals every commit; a WAL that fails
// to open panics (an experiment cannot meaningfully continue without
// the durability it was asked to measure).
func Run(cfg Config) *Report {
	store := storage.New()
	var w *wal.Writer
	var recovered *wal.RecoveredState
	if cfg.WAL != nil {
		var err error
		w, recovered, err = wal.Open(*cfg.WAL)
		if err != nil {
			panic(fmt.Sprintf("sim: opening WAL: %v", err))
		}
		store = storage.Restore(recovered.Store)
		w.Attach(store, nil)
		if cfg.OnWALOpen != nil {
			cfg.OnWALOpen(w, recovered)
		}
	}
	if cfg.StoreLatency > 0 {
		store.SetSimLatency(cfg.StoreLatency)
	}
	if cfg.Observe != nil {
		journal := cfg.Observe
		if w != nil {
			wj := w.Journal
			journal = func(ev storage.ApplyEvent) { wj(ev); cfg.Observe(ev) }
		}
		store.SetJournal(journal)
	}
	// Seed initial values only on a fresh store: a durable restart has
	// already recovered the seeded items (possibly overwritten by later
	// commits), and re-seeding would clobber committed values while
	// journaling spurious new versions for them.
	if recovered == nil || recovered.Store.Version == 0 {
		for x, v := range cfg.Initial {
			store.Set(x, v)
		}
	}
	s := cfg.NewScheduler(store)
	if w != nil {
		if dc, ok := s.(sched.DurableCounters); ok {
			dc.SeedWALCounters(recovered.Lo, recovered.Hi)
			w.SetCounterSource(dc.WALCounters)
		}
	}
	rt := &txn.Runtime{
		Sched: s, MaxAttempts: cfg.MaxAttempts, Backoff: cfg.Backoff, Think: cfg.Think,
		Seed: cfg.RuntimeSeed, AttemptTimeout: cfg.AttemptTimeout,
		UnavailableBudget: cfg.UnavailableBudget, UnavailableBackoff: cfg.UnavailableBackoff,
		Deadline: cfg.Deadline, ShedPause: cfg.ShedPause,
	}
	var ctrl *admit.Controller
	if cfg.Admit != nil {
		ctrl = admit.NewController(*cfg.Admit)
		rt.Admit = ctrl
	}
	if w != nil {
		rt.Durable = w
	}
	rep := &Report{
		Name:      s.Name(),
		Txns:      len(cfg.Specs),
		Latency:   &metrics.Histogram{},
		Store:     store,
		Fault:     cfg.FaultStats,
		Recovered: recovered,
		Repro:     cfg.Repro,
	}
	if w != nil {
		rep.WAL = w.Stats()
	}
	start := time.Now()
	results := rt.Pool(cfg.Specs, cfg.Workers)
	rep.Wall = time.Since(start)
	for _, res := range results {
		rep.Attempts += int64(res.Attempts)
		switch {
		case res.Committed:
			rep.Committed++
		case res.Shed:
			rep.Shed++
		case res.DeadlineExceeded:
			rep.DeadlineMiss++
		default:
			rep.GaveUp++
		}
		if res.Committed && res.Durable {
			rep.Durable++
		}
		if res.Attempts > 0 {
			rep.Restarts += int64(res.Attempts - 1)
		}
		rep.Unavailable += int64(res.Unavailable)
		rep.Timeouts += int64(res.Timeouts)
		// Shed transactions never executed; their near-zero "latency"
		// would only dilute the percentiles of work that actually ran.
		if !res.Shed {
			rep.Latency.ObserveDuration(res.Latency)
		}
	}
	if cfg.KeepResults {
		rep.Results = results
	}
	// Look through decorators (e.g. history.Recorder) for the
	// degraded-mode counters of the scheduler underneath.
	inner := sched.Scheduler(s)
	for {
		u, ok := inner.(interface{ Unwrap() sched.Scheduler })
		if !ok {
			break
		}
		inner = u.Unwrap()
	}
	if dg, ok := inner.(interface{ Degraded() sched.DegradedStats }); ok {
		if snap := dg.Degraded(); snap.WindowAttempts > 0 || snap.Parked > 0 || snap.Rejected > 0 {
			rep.Degraded = &snap
		}
	}
	if bk, ok := inner.(interface{ Breaker() *admit.Breaker }); ok {
		if b := bk.Breaker(); b != nil {
			snap := b.Stats()
			rep.Breaker = &snap
		}
	}
	if ctrl != nil {
		snap := ctrl.Stats()
		rep.Admit = &snap
	}
	if w != nil {
		// Close flushes the tail; a writer that already died (injected
		// crash) reports the sticky error, which the run has already
		// accounted for per-transaction in the durable acks.
		_ = w.Close()
	}
	return rep
}
