package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/txn"
)

// OverloadConfig describes a goodput-vs-offered-load sweep: the base
// configuration is run once per factor with its worker count and
// workload scaled, and the resulting curve locates the saturation knee
// and what happens past it. With Base.Admit set the sweep measures how
// well admission control holds goodput at the knee under overload;
// without it, how hard the raw scheduler collapses.
type OverloadConfig struct {
	// Base is the 1× point: its Specs and Workers define one unit of
	// offered load. Everything else (scheduler, backoff, budgets,
	// admission, deadline) is reused verbatim at every point.
	Base Config
	// Factors are the offered-load multipliers to sweep, in order.
	// Default: 1, 2, 4, 8, 10.
	Factors []float64
	// Repeats runs each point this many times and keeps the run with the
	// median goodput (default 1). On a small host a single sub-second
	// run's goodput can swing 2x on scheduler and GC luck; the median of
	// three is a real run — counters stay internally consistent — with
	// the outliers filtered.
	Repeats int
}

// OverloadPoint is one measured point of the curve.
type OverloadPoint struct {
	Factor  float64 // offered-load multiplier
	Offered int     // transactions offered at this point
	Workers int     // concurrent clients at this point
	Report  *Report
}

// Goodput returns the point's committed transactions per second.
func (p OverloadPoint) Goodput() float64 { return p.Report.Goodput() }

// String renders one curve row.
func (p OverloadPoint) String() string {
	r := p.Report
	return fmt.Sprintf("x%-4g offered=%-6d workers=%-4d goodput=%.0f/s committed=%d shed=%d deadline-miss=%d gaveup=%d abort-rate=%.3f",
		p.Factor, p.Offered, p.Workers, p.Goodput(), r.Committed, r.Shed, r.DeadlineMiss, r.GaveUp, r.AbortRate())
}

// OverloadResult is the full sweep.
type OverloadResult struct {
	Points []OverloadPoint
	// Knee is the index of the point with the highest goodput — the
	// saturation knee of the curve. Past it, added offered load can only
	// be shed or burned.
	Knee int
}

// KneePoint returns the knee's measurement.
func (r *OverloadResult) KneePoint() OverloadPoint { return r.Points[r.Knee] }

// Retention returns the ratio of the final (highest-factor) point's
// goodput to the knee's: 1 means the system fully holds its best
// goodput under overload, values near 0 mean congestion collapse.
func (r *OverloadResult) Retention() float64 {
	knee := r.KneePoint().Goodput()
	if knee <= 0 {
		return 0
	}
	return r.Points[len(r.Points)-1].Goodput() / knee
}

// RunOverload sweeps the configured factors. Each point runs on a fresh
// scheduler and store (and, with Base.Admit set, a fresh controller):
// points are independent measurements, not a continuous ramp.
func RunOverload(cfg OverloadConfig) *OverloadResult {
	factors := cfg.Factors
	if len(factors) == 0 {
		factors = []float64{1, 2, 4, 8, 10}
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	res := &OverloadResult{}
	for _, f := range factors {
		c := cfg.Base
		c.Workers = int(math.Ceil(float64(cfg.Base.Workers) * f))
		if c.Workers < 1 {
			c.Workers = 1
		}
		c.Specs = scaleSpecs(cfg.Base.Specs, f)
		reports := make([]*Report, 0, repeats)
		for i := 0; i < repeats; i++ {
			reports = append(reports, Run(c))
		}
		sort.Slice(reports, func(a, b int) bool { return reports[a].Goodput() < reports[b].Goodput() })
		p := OverloadPoint{Factor: f, Offered: len(c.Specs), Workers: c.Workers, Report: reports[len(reports)/2]}
		res.Points = append(res.Points, p)
		if p.Goodput() > res.Points[res.Knee].Goodput() {
			res.Knee = len(res.Points) - 1
		}
	}
	return res
}

// scaleSpecs replicates the workload to factor× its size, re-IDing the
// copies past the base range so every offered transaction is distinct.
func scaleSpecs(base []txn.Spec, factor float64) []txn.Spec {
	want := int(math.Ceil(float64(len(base)) * factor))
	if want <= len(base) {
		return base[:want]
	}
	stride := 0
	for _, s := range base {
		if s.ID > stride {
			stride = s.ID
		}
	}
	stride++
	out := make([]txn.Spec, 0, want)
	for copyN := 0; len(out) < want; copyN++ {
		for _, s := range base {
			if len(out) == want {
				break
			}
			s.ID += copyN * stride
			out = append(out, s)
		}
	}
	return out
}
