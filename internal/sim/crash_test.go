package sim

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// crashItems is the working set of the crash-point workload.
var crashItems = []string{"a", "b", "c", "d"}

// crashBase builds the pre-crash workload: MT(1) with deferred writes,
// a few read-modify-write transactions over a small hot set (enough
// contention to exercise retries, small enough that the full crash
// matrix stays fast). K = 1 makes EVERY element assignment a
// counter-column assignment, so the counter consumption the watermarks
// protect is maximal and the re-issue check has teeth.
func crashBase() Config {
	specs := make([]txn.Spec, 12)
	for i := range specs {
		x := crashItems[i%len(crashItems)]
		y := crashItems[(i+1)%len(crashItems)]
		specs[i] = txn.Spec{
			ID:  i + 1,
			Ops: []txn.Op{txn.R(x), txn.R(y), txn.W(x), txn.W(y)},
			Value: func(item string, reads map[string]int64) int64 {
				return reads[item] + 1
			},
		}
	}
	initial := make(map[string]int64, len(crashItems))
	for _, x := range crashItems {
		initial[x] = 100
	}
	return Config{
		NewScheduler: func(s *storage.Store) sched.Scheduler {
			return sched.NewMT(s, sched.MTOptions{
				Core:        engine.Options{K: 1, StarvationAvoidance: true},
				DeferWrites: true,
			})
		},
		Specs:       specs,
		Workers:     3,
		MaxAttempts: 16,
		Backoff:     10 * time.Microsecond,
		Initial:     initial,
	}
}

// restartPhase returns the post-recovery workload and traced-scheduler
// constructor for the counter re-issue check.
func restartPhase() ([]txn.Spec, func(*storage.Store, func(core.Event)) sched.Scheduler) {
	specs := make([]txn.Spec, 6)
	for i := range specs {
		x := crashItems[i%len(crashItems)]
		specs[i] = txn.Spec{ID: 1000 + i, Ops: []txn.Op{txn.R(x), txn.W(x)}}
	}
	build := func(s *storage.Store, trace func(core.Event)) sched.Scheduler {
		return sched.NewMT(s, sched.MTOptions{
			Core:        engine.Options{K: 1, StarvationAvoidance: true, Trace: trace},
			DeferWrites: true,
		})
	}
	return specs, build
}

func crashPointConfig(crashAt, seed int64) CrashPointConfig {
	specs, build := restartPhase()
	return CrashPointConfig{
		Config:             crashBase(),
		Seed:               seed,
		CrashAt:            crashAt,
		Sync:               wal.SyncGroup,
		BatchDelay:         50 * time.Microsecond,
		CheckpointEvery:    5,
		RestartSpecs:       specs,
		NewTracedScheduler: build,
	}
}

// TestCrashPointMatrix injects a crash at EVERY filesystem sync
// boundary a clean run performs and verifies, for each point: recovery
// succeeds (torn tails truncated), the recovered state equals the
// shadow copy, no commit acked durable is lost, watermarks dominate,
// and the restarted scheduler re-issues no k-th-column counter value.
func TestCrashPointMatrix(t *testing.T) {
	clean := RunCrashPoint(crashPointConfig(0, 1))
	if err := clean.Err(); err != nil {
		t.Fatalf("clean run: %v\n%s", err, clean)
	}
	if clean.Crashed {
		t.Fatal("clean run crashed")
	}
	if clean.AckedDurable == 0 || clean.RestartAssigns == 0 {
		t.Fatalf("clean run exercised nothing: %s", clean)
	}
	n := clean.CleanOps
	if n < 10 {
		t.Fatalf("suspiciously few I/O ops in clean run: %d", n)
	}
	if testing.Short() && n > 40 {
		n = 40
	}
	crashes := 0
	for crashAt := int64(1); crashAt <= n; crashAt++ {
		rep := RunCrashPoint(crashPointConfig(crashAt, 1+crashAt))
		if err := rep.Err(); err != nil {
			t.Errorf("crashAt=%d: %v\n%s", crashAt, err, rep)
		}
		if rep.Crashed {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("no crash point actually fired")
	}
	t.Logf("matrix: %d crash points, %d fired, clean ops=%d", n, crashes, clean.CleanOps)
}

// TestCrashPointDMT runs a coarse crash sweep under the distributed
// scheduler: replay equality, acked-durable survival and watermark
// dominance must hold there too (the counter-trace restart phase is
// MT-specific and skipped).
func TestCrashPointDMT(t *testing.T) {
	base := crashBase()
	base.NewScheduler = func(s *storage.Store) sched.Scheduler {
		return sched.NewDMT(s, dmt.Options{K: 4, Sites: 3})
	}
	cfg := CrashPointConfig{
		Config:          base,
		Seed:            7,
		Sync:            wal.SyncGroup,
		BatchDelay:      50 * time.Microsecond,
		CheckpointEvery: 4,
	}
	clean := RunCrashPoint(cfg)
	if err := clean.Err(); err != nil {
		t.Fatalf("clean run: %v\n%s", err, clean)
	}
	for crashAt := int64(1); crashAt <= clean.CleanOps; crashAt += 3 {
		c := cfg
		c.CrashAt, c.Seed = crashAt, 7+crashAt
		if rep := RunCrashPoint(c); rep.Err() != nil {
			t.Errorf("crashAt=%d: %v\n%s", crashAt, rep.Err(), rep)
		}
	}
}

// TestDurableRunOSFS exercises the real-filesystem path end to end: a
// durable run on disk, then recovery must reproduce the final store.
func TestDurableRunOSFS(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := crashBase()
	cfg.WAL = &wal.Options{Dir: dir, Sync: wal.SyncGroup, BatchDelay: 100 * time.Microsecond}
	rep := Run(cfg)
	if rep.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if rep.Durable != rep.Committed {
		t.Fatalf("durable=%d != committed=%d on a healthy disk", rep.Durable, rep.Committed)
	}
	rec, err := wal.Recover(nil, dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !statesEqual(rec.Store, rep.Store.State()) {
		t.Fatalf("recovered state != final store state")
	}

	// A second run over the same directory continues from the recovered
	// state. Initial must NOT re-seed: it would overwrite the first
	// run's committed values with the seed constants.
	cfg2 := crashBase()
	cfg2.WAL = &wal.Options{Dir: dir, Sync: wal.SyncGroup, BatchDelay: 100 * time.Microsecond}
	rep2 := Run(cfg2)
	if rep2.Recovered == nil || rep2.Recovered.Store.Version == 0 {
		t.Fatal("second run did not recover the first run's state")
	}
	if !statesEqual(rep2.Recovered.Store, rep.Store.State()) {
		t.Fatal("second run recovered a different state than the first run committed")
	}
	if rep2.Durable != rep2.Committed {
		t.Fatalf("second run durable=%d != committed=%d", rep2.Durable, rep2.Committed)
	}
	// Every committed txn adds exactly +1 to two items; had Initial
	// re-seeded (resetting every item to 100), the final sum would fall
	// short of recovered-sum + 2*committed.
	var recSum int64
	for _, x := range crashItems {
		recSum += rep2.Recovered.Store.Data[x]
	}
	if got, want := rep2.Store.Sum(crashItems), recSum+2*rep2.Committed; got != want {
		t.Fatalf("final sum %d != recovered sum %d + 2*committed %d (Initial re-seeded a durable restart?)",
			got, recSum, rep2.Committed)
	}
}

// stripedCrashConfig is the striped-path racing-commit crash matrix:
// MT(1)/striped with more workers and more items than crashBase, so
// several commits are typically in flight concurrently — their commit
// records must be sequenced at the group-commit boundary (the store's
// commit mutex inside ApplyTxn), never at latch-acquire time, or
// replay equality (invariant 2) and watermark dominance (invariant 4)
// break. The restart phase reuses the striped scheduler, exercising
// the crash harness's K-discovery fallback and the atomic
// SeedWALCounters clamp.
func stripedCrashConfig(crashAt, seed int64) CrashPointConfig {
	base := crashBase()
	base.Workers = 6
	base.NewScheduler = func(s *storage.Store) sched.Scheduler {
		return sched.NewMTStriped(s, sched.MTOptions{
			Core:        engine.Options{K: 1, StarvationAvoidance: true},
			DeferWrites: true,
		})
	}
	specs := make([]txn.Spec, 6)
	for i := range specs {
		x := crashItems[i%len(crashItems)]
		specs[i] = txn.Spec{ID: 1000 + i, Ops: []txn.Op{txn.R(x), txn.W(x)}}
	}
	build := func(s *storage.Store, trace func(core.Event)) sched.Scheduler {
		return sched.NewMTStriped(s, sched.MTOptions{
			Core:        engine.Options{K: 1, StarvationAvoidance: true, Trace: trace},
			DeferWrites: true,
		})
	}
	return CrashPointConfig{
		Config:             base,
		Seed:               seed,
		CrashAt:            crashAt,
		Sync:               wal.SyncGroup,
		BatchDelay:         50 * time.Microsecond,
		CheckpointEvery:    5,
		RestartSpecs:       specs,
		NewTracedScheduler: build,
	}
}

// TestCrashPointStripedRacingCommits sweeps crash points across a run
// whose commits race on the striped scheduler and verifies all five
// durability invariants at every point.
func TestCrashPointStripedRacingCommits(t *testing.T) {
	clean := RunCrashPoint(stripedCrashConfig(0, 21))
	if err := clean.Err(); err != nil {
		t.Fatalf("clean run: %v\n%s", err, clean)
	}
	if clean.AckedDurable == 0 || clean.RestartAssigns == 0 {
		t.Fatalf("clean run exercised nothing: %s", clean)
	}
	n := clean.CleanOps
	if testing.Short() && n > 40 {
		n = 40
	}
	crashes := 0
	for crashAt := int64(1); crashAt <= n; crashAt++ {
		rep := RunCrashPoint(stripedCrashConfig(crashAt, 21+crashAt))
		if err := rep.Err(); err != nil {
			t.Errorf("crashAt=%d: %v\n%s", crashAt, err, rep)
		}
		if rep.Crashed {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("no crash point actually fired")
	}
	t.Logf("striped matrix: %d crash points, %d fired", n, crashes)
}

// TestStoreLatencyConfig checks Config.StoreLatency reaches the store:
// a run with latency takes measurably longer than the same run without.
func TestStoreLatencyConfig(t *testing.T) {
	build := func() Config {
		cfg := crashBase()
		cfg.NewScheduler = func(s *storage.Store) sched.Scheduler {
			return sched.NewMTStriped(s, sched.MTOptions{
				Core:        engine.Options{K: 2, StarvationAvoidance: true},
				DeferWrites: true,
			})
		}
		cfg.Workers = 2
		return cfg
	}
	fast := Run(build())
	slowCfg := build()
	slowCfg.StoreLatency = 2 * time.Millisecond
	slow := Run(slowCfg)
	if fast.Committed == 0 || slow.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if slow.Wall < 10*fast.Wall && slow.Wall < 20*time.Millisecond {
		t.Fatalf("store latency had no effect: fast=%v slow=%v", fast.Wall, slow.Wall)
	}
}
