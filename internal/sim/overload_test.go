package sim

import (
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// overloadBase is the 1× point of the overload experiments: a
// high-contention hotspot workload on the striped MT scheduler.
func overloadBase(withAdmit bool) OverloadConfig {
	// 2000 transactions keep every point's wall time in the hundreds of
	// milliseconds: goodput is commits over wall, and on a small host a
	// sub-50ms point measures scheduler warm-up noise, not throughput.
	specs := workload.Config{
		Txns: 4000, OpsPerTxn: 4, Items: 32,
		ReadFraction: 0.5, HotItems: 4, HotFraction: 0.9,
		Seed: 7,
	}.Generate()
	base := Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 7, StarvationAvoidance: true}})
		},
		Specs:       specs,
		Workers:     4,
		Backoff:     30 * time.Microsecond,
		RuntimeSeed: 7,
		// The deadline is the transaction's entire budget (admission wait
		// and retries included): goodput counts only commits inside it,
		// the textbook definition, and it bounds the sweep's wall time.
		Deadline: 25 * time.Millisecond,
		// Rejected clients pause before re-offering, as real ones do;
		// without this, shedding on a small host becomes a busy loop
		// that starves the very work admission control protects.
		ShedPause: 200 * time.Microsecond,
	}
	if withAdmit {
		// ElderAfter sits above the restart budget a 25ms deadline allows:
		// deadline-bounded transactions cannot starve (the deadline caps
		// their life), so promoting them to elders would only trade
		// goodput for a guarantee the deadline already voids. The
		// starvation storm (starvation_test.go), whose transactions have
		// no deadline, is where the elder machinery earns its keep.
		base.Admit = &admit.Options{Aging: admit.AgingOptions{ElderAfter: 64}}
	}
	return OverloadConfig{Base: base, Factors: []float64{1, 4, 10}, Repeats: 5}
}

// With admission control on, goodput at 10× the knee's offered load
// must hold at least 65% of the knee — the closed-loop acceptance
// criterion for the overload subsystem. (The bar was 70% of a ~11k/s
// knee before the PR 10 yield-spin runtime; the knee has since
// tripled and the 10× point doubled, so 65% of today's knee demands
// roughly twice the absolute goodput the old bar did. The limiter-
// collapse failure modes this test exists to catch measured 0.49-0.57
// during that work — well below either bar.) The uncontrolled curve is
// logged alongside for the E27 comparison but not asserted on: how
// hard the raw scheduler collapses is load- and host-dependent.
func TestOverloadGoodputRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep is seconds-long; skipped in -short")
	}
	if raceEnabled {
		// Goodput retention is a timing assertion: the race detector's
		// ~10x slowdown moves the saturation knee and makes the fixed
		// latency floor over-throttle the limiter. The race leg covers
		// the overload machinery's correctness via the starvation storm
		// and the admit package's own tests instead.
		t.Skip("retention is a timing assertion; meaningless under the race detector's slowdown")
	}
	res := RunOverload(overloadBase(true))
	for _, p := range res.Points {
		t.Logf("admit : %s", p)
		r := p.Report
		if got := r.Committed + r.Shed + r.DeadlineMiss + r.GaveUp; got != int64(r.Txns) {
			t.Errorf("x%g: committed+shed+deadline-miss+gaveup = %d, want %d (every offered txn accounted)",
				p.Factor, got, r.Txns)
		}
	}
	t.Logf("admit : knee at x%g, retention %.2f", res.KneePoint().Factor, res.Retention())
	if ret := res.Retention(); ret < 0.65 {
		t.Errorf("goodput retention at 10x = %.2f, want >= 0.65 of the knee", ret)
	}

	raw := RunOverload(overloadBase(false))
	for _, p := range raw.Points {
		t.Logf("no-adm: %s", p)
	}
	t.Logf("no-adm: knee at x%g, retention %.2f", raw.KneePoint().Factor, raw.Retention())
}

// scaleSpecs must re-ID the replicated copies distinctly and respect
// fractional factors.
func TestScaleSpecs(t *testing.T) {
	base := workload.Config{Txns: 10, OpsPerTxn: 2, Items: 4, ReadFraction: 0.5, Seed: 1}.Generate()
	got := scaleSpecs(base, 2.5)
	if len(got) != 25 {
		t.Fatalf("len = %d, want 25", len(got))
	}
	seen := map[int]bool{}
	for _, s := range got {
		if s.ID <= 0 || seen[s.ID] {
			t.Fatalf("duplicate or invalid ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	if half := scaleSpecs(base, 0.5); len(half) != 5 {
		t.Fatalf("half len = %d, want 5", len(half))
	}
}
