package sim

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dmt"
	"repro/internal/fault"
	"repro/internal/history"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// partitionPlan is the availability A/B scenario: a partition of site 1
// overlapping a crash+drift of site 2, then a second crash of site 2
// after the heal — attempts keep running into down or unreachable home
// sites throughout the run.
func partitionPlan() fault.Plan {
	return fault.Plan{
		Name: "test-partition",
		Events: []fault.Event{
			{At: 200, Kind: fault.Partition, Groups: [][]int{{1}}},
			{At: 300, Kind: fault.Crash, Site: 2, Drift: true},
			{At: 800, Kind: fault.Recover, Site: 2},
			{At: 1200, Kind: fault.Heal, Groups: [][]int{{1}}},
			{At: 1300, Kind: fault.Crash, Site: 2},
			{At: 1800, Kind: fault.Recover, Site: 2},
		},
	}
}

// The degraded-mode acceptance test: on the same seeds and the same
// fault plan, parking commits on a down home site (instead of failing
// fast) yields at least the fail-fast commit availability during
// degraded windows, actually parks and heals attempts, and the
// committed history stays D-serializable.
func TestDegradedModeAvailabilityAB(t *testing.T) {
	const sites = 4
	if err := partitionPlan().Validate(sites); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	specs := workload.Config{
		Txns: 400, OpsPerTxn: 3, Items: 48, ReadFraction: 0.6, Seed: 11,
	}.Generate()

	run := func(park bool) (*Report, *history.Recorder) {
		inj := fault.New(partitionPlan(), sites, 13)
		var rec *history.Recorder
		rep := Run(Config{
			NewScheduler: func(st *storage.Store) sched.Scheduler {
				d := sched.NewDMT(st, dmt.Options{K: 3, Sites: sites, Transport: inj})
				if park {
					d.SetParking(sched.Parking{
						Capacity: 8, Deadline: 300 * time.Millisecond, Seed: 11,
					})
				}
				rec = history.Wrap(d)
				return rec
			},
			Specs:   specs,
			Workers: 8,
			// Think makes transactions long enough to straddle the fault
			// boundaries; without it a whole attempt fits between two
			// injector events and the windows are never felt.
			Think:              50 * time.Microsecond,
			MaxAttempts:        1000,
			Backoff:            20 * time.Microsecond,
			RuntimeSeed:        11,
			UnavailableBudget:  400,
			UnavailableBackoff: 100 * time.Microsecond,
			FaultStats:         inj.Stats(),
		})
		return rep, rec
	}

	ff, _ := run(false)
	dg, rec := run(true)

	if ff.Degraded == nil || dg.Degraded == nil {
		t.Fatal("reports carry no degraded-mode stats")
	}
	// Non-vacuous: the fail-fast run actually attempted commits inside
	// degraded windows.
	if ff.Degraded.WindowAttempts == 0 {
		t.Fatal("fail-fast run saw no degraded-window attempts; the A/B is vacuous")
	}
	// Parking engaged and released attempts across a heal.
	if dg.Degraded.Parked == 0 || dg.Degraded.Healed == 0 {
		t.Fatalf("parking never engaged: parked=%d healed=%d",
			dg.Degraded.Parked, dg.Degraded.Healed)
	}
	// Every parked attempt was accounted for: released by a heal or
	// expired at the deadline.
	if got := dg.Degraded.Healed + dg.Degraded.Expired; got != dg.Degraded.Parked {
		t.Fatalf("parked attempts leaked: parked=%d healed+expired=%d",
			dg.Degraded.Parked, got)
	}
	// The point of the exercise: availability during degraded windows is
	// no worse than fail-fast on the same seed (mtsim -partition records
	// the strict improvement; see EXPERIMENTS.md E26).
	if av, fv := dg.Degraded.Availability(), ff.Degraded.Availability(); av < fv {
		t.Fatalf("degraded-mode availability %.3f below fail-fast %.3f", av, fv)
	}
	// Riding out an outage must not buy availability with correctness:
	// the committed history is still D-serializable.
	if l := rec.CommittedLog(); !classify.DSR(l) {
		t.Fatalf("degraded-mode committed history is not D-serializable (%d ops)", l.Len())
	}
	if dg.Committed == 0 {
		t.Fatal("degraded-mode run committed nothing")
	}
}
