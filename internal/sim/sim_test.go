package sim

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/interval"
	"repro/internal/lock"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/sgt"
	"repro/internal/storage"
	"repro/internal/tsto"
	"repro/internal/txn"
	"repro/internal/workload"
)

// allSchedulers enumerates every runtime protocol under test.
func allSchedulers() map[string]func(*storage.Store) sched.Scheduler {
	return map[string]func(*storage.Store) sched.Scheduler{
		"MT(3)": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 3, StarvationAvoidance: true}})
		},
		"MT(3)/deferred": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{
				Core: engine.Options{K: 3, StarvationAvoidance: true}, DeferWrites: true})
		},
		"MT(3+)": func(st *storage.Store) sched.Scheduler {
			return sched.NewComposite(st, 3, engine.Options{StarvationAvoidance: true})
		},
		"2PL":      func(st *storage.Store) sched.Scheduler { return lock.NewTwoPL(st) },
		"TO(1)":    func(st *storage.Store) sched.Scheduler { return tsto.New(st, tsto.Options{}) },
		"OCC":      func(st *storage.Store) sched.Scheduler { return occ.New(st) },
		"SGT":      func(st *storage.Store) sched.Scheduler { return sgt.New(st) },
		"Interval": func(st *storage.Store) sched.Scheduler { return interval.New(st, interval.Options{}) },
	}
}

// The banking invariant: concurrent transfers conserve the total balance
// under every serializable protocol in the suite.
func TestBankingInvariantAllSchedulers(t *testing.T) {
	accounts := []string{"a0", "a1", "a2", "a3", "a4"}
	initial := map[string]int64{}
	for _, a := range accounts {
		initial[a] = 1000
	}
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			rep := Run(Config{
				NewScheduler: mk,
				Specs:        workload.Transfers(60, accounts, 7, 42),
				Workers:      6,
				Backoff:      50 * time.Microsecond,
				Initial:      initial,
			})
			if rep.Committed != 60 {
				t.Fatalf("committed = %d, want 60 (gave up %d)", rep.Committed, rep.GaveUp)
			}
			if got := rep.Store.Sum(accounts); got != 5000 {
				t.Fatalf("total balance = %d, want 5000", got)
			}
		})
	}
}

func TestReportMath(t *testing.T) {
	rep := Run(Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			// Note: no starvation fix here, so retries must be bounded —
			// unbounded retry can loop forever on the Fig. 5 pattern.
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 2}})
		},
		Specs:       workload.Config{Txns: 20, OpsPerTxn: 2, Items: 50, ReadFraction: 0.5, Seed: 1}.Generate(),
		Workers:     4,
		MaxAttempts: 50,
	})
	if rep.Txns != 20 {
		t.Fatalf("Txns = %d", rep.Txns)
	}
	if rep.Committed+rep.GaveUp != 20 {
		t.Fatalf("committed %d + gaveup %d != 20", rep.Committed, rep.GaveUp)
	}
	if rep.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
	if rep.AbortRate() < 0 || rep.AbortRate() > 1 {
		t.Fatalf("abort rate = %f", rep.AbortRate())
	}
	if rep.String() == "" {
		t.Fatal("empty String")
	}
	if rep.Latency.Count() != 20 {
		t.Fatalf("latency samples = %d", rep.Latency.Count())
	}
}

func TestMaxAttemptsPropagates(t *testing.T) {
	// Extremely contended single item with 1 max attempt: some
	// transactions may give up; totals must still add up.
	rep := Run(Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			return tsto.New(st, tsto.Options{})
		},
		Specs:       workload.Config{Txns: 50, OpsPerTxn: 3, Items: 1, ReadFraction: 0.5, Seed: 2}.Generate(),
		Workers:     8,
		MaxAttempts: 1,
	})
	if rep.Committed+rep.GaveUp != 50 {
		t.Fatalf("committed %d + gaveup %d != 50", rep.Committed, rep.GaveUp)
	}
}

// Under high contention the MT(k) scheduler with the starvation fix makes
// progress on every transaction (no give-ups even with bounded retries).
func TestMTProgressUnderContention(t *testing.T) {
	rep := Run(Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{
				Core: engine.Options{K: 3, StarvationAvoidance: true}})
		},
		Specs:       workload.Config{Txns: 80, OpsPerTxn: 3, Items: 4, ReadFraction: 0.6, Seed: 5}.Generate(),
		Workers:     8,
		MaxAttempts: 200,
		Backoff:     20 * time.Microsecond,
	})
	if rep.GaveUp != 0 {
		t.Fatalf("%d transactions starved", rep.GaveUp)
	}
}

// A single worker serializes everything: most protocols never abort in a
// serial execution. MT(k) for k >= 2 is a documented exception: the
// literal TS(i,m) := TS(j,m)+1 encoding of Algorithm 1 can assign a
// transaction a small element from a shallow conflict chain and later
// meet a deeper chain's larger element — an established Greater even in a
// serial run. (A monotonic clock would avoid this but would destroy the
// paper's Example 1, where T2 and T3 must receive EQUAL elements.) MT(1)
// and the composite MT(k⁺) are immune because the k-th/counter column is
// globally monotonic. The starvation fix makes MT(k)'s serial retries
// converge, so everyone still commits.
func TestSerialExecutionNeverAborts(t *testing.T) {
	mtException := map[string]bool{"MT(3)": true, "MT(3)/deferred": true}
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			rep := Run(Config{
				NewScheduler: mk,
				Specs:        workload.Config{Txns: 30, OpsPerTxn: 4, Items: 5, ReadFraction: 0.5, Seed: 3}.Generate(),
				Workers:      1,
			})
			if rep.Restarts != 0 && !mtException[name] {
				t.Fatalf("serial run restarted %d times", rep.Restarts)
			}
			if rep.Committed != 30 {
				t.Fatalf("committed = %d", rep.Committed)
			}
		})
	}
}

// The serial-corner companion test: MT(1) never restarts a serial run
// (its single column is the globally monotonic counter column).
func TestMT1SerialNeverAborts(t *testing.T) {
	rep := Run(Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 1}})
		},
		Specs:   workload.Config{Txns: 50, OpsPerTxn: 4, Items: 5, ReadFraction: 0.5, Seed: 3}.Generate(),
		Workers: 1,
	})
	if rep.Restarts != 0 || rep.Committed != 50 {
		t.Fatalf("restarts=%d committed=%d", rep.Restarts, rep.Committed)
	}
}

func TestPoolResultOrdering(t *testing.T) {
	st := storage.New()
	rt := &txn.Runtime{Sched: sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 2}})}
	specs := []txn.Spec{{ID: 5, Ops: []txn.Op{txn.W("x")}}, {ID: 9, Ops: []txn.Op{txn.W("y")}}}
	res := rt.Pool(specs, 2)
	if res[0].ID != 5 || res[1].ID != 9 {
		t.Fatalf("result order: %d, %d", res[0].ID, res[1].ID)
	}
}
