package sim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dmt"
	"repro/internal/fault"
	"repro/internal/history"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// chaosPlan is the acceptance scenario: one site crash with counter
// drift plus message loss, recovery mid-workload.
func chaosPlan() fault.Plan {
	return fault.Plan{
		Name:     "test-chaos",
		DropRate: 0.02,
		Events: []fault.Event{
			{At: 300, Kind: fault.Crash, Site: 1, Drift: true},
			{At: 1500, Kind: fault.Recover, Site: 1},
		},
	}
}

// The chaos acceptance test: under a seeded fault plan with a site crash
// and message loss, a DMT(k) workload terminates, every commit is
// D-serializable, unavailability is reported as such, the cluster
// commits new transactions at every site after recovery, and the fault
// schedule is exactly the planned (seed-deterministic) one.
func TestChaosRunSerializableAndRecovers(t *testing.T) {
	const sites = 4
	specs := workload.Config{
		Txns: 600, OpsPerTxn: 3, Items: 48, ReadFraction: 0.6, Seed: 5,
	}.Generate()
	inj := fault.New(chaosPlan(), sites, 9)
	var d *sched.DMT
	var rec *history.Recorder
	rep := Run(Config{
		NewScheduler: func(st *storage.Store) sched.Scheduler {
			d = sched.NewDMT(st, dmt.Options{K: 5, Sites: sites, Transport: inj})
			rec = history.Wrap(d)
			return rec
		},
		Specs:              specs,
		Workers:            8,
		MaxAttempts:        1000,
		Backoff:            20 * time.Microsecond,
		RuntimeSeed:        5,
		UnavailableBudget:  500,
		UnavailableBackoff: 100 * time.Microsecond,
		FaultStats:         inj.Stats(),
	})

	// The run terminated (we are here) and made progress through faults.
	if rep.Committed == 0 {
		t.Fatal("nothing committed under the chaos plan")
	}
	if inj.Stats().Crashes.Value() != 1 || inj.Stats().Recoveries.Value() != 1 {
		t.Fatalf("fault stats: crashes=%d recoveries=%d",
			inj.Stats().Crashes.Value(), inj.Stats().Recoveries.Value())
	}
	// The crash was felt and classified as unavailability, not conflict.
	if rep.Unavailable == 0 {
		t.Fatal("no attempt was reported unavailable despite a site crash")
	}
	// Every commit is serializable.
	if l := rec.CommittedLog(); !classify.DSR(l) {
		t.Fatalf("committed history is not D-serializable (%d ops)", l.Len())
	}

	// After recovery the cluster serves every site again. Recovery runs
	// asynchronously, so wait for the up state first.
	deadline := time.Now().Add(10 * time.Second)
	for s := 0; s < sites; s++ {
		for !d.Cluster().SiteUp(s) {
			if time.Now().After(deadline) {
				t.Fatalf("site %d still down after the run", s)
			}
			time.Sleep(time.Millisecond)
		}
	}
	rt := &txn.Runtime{
		Sched: rec, MaxAttempts: 1000, Backoff: 20 * time.Microsecond,
		UnavailableBudget: 500, UnavailableBackoff: 100 * time.Microsecond,
	}
	base := 100000 // fresh ids; base+s is homed at site (base+s) mod sites
	for s := 0; s < sites; s++ {
		res := rt.Exec(txn.Spec{ID: base + s, Ops: []txn.Op{txn.R("a"), txn.W("b")}})
		if !res.Committed {
			t.Fatalf("post-recovery transaction homed at site %d did not commit: %+v",
				(base+s)%sites, res)
		}
	}
	if l := rec.CommittedLog(); !classify.DSR(l) {
		t.Fatal("committed history not D-serializable after post-recovery transactions")
	}

	// The executed fault schedule is exactly the planned one: every event
	// and drop the injector recorded sits at its precomputed sequence slot
	// (decisions are pure functions of (plan, seed, seq), independent of
	// goroutine interleaving).
	planned := inj.PlannedSchedule(inj.Seq())
	plannedEvents := map[string]bool{}
	plannedDrops := map[string]bool{}
	for _, line := range planned {
		if seq, ok := strings.CutSuffix(line, " would-drop"); ok {
			plannedDrops[seq] = true
		} else {
			plannedEvents[line] = true
		}
	}
	for _, line := range inj.Schedule() {
		parts := strings.SplitN(line, " ", 2)
		if strings.HasPrefix(parts[1], "drop ") {
			if !plannedDrops[parts[0]] {
				t.Fatalf("executed drop not in the planned schedule: %s", line)
			}
		} else if !plannedEvents[line] {
			t.Fatalf("executed event not in the planned schedule: %s", line)
		}
	}
}

// Same (plan, sites, seed) → byte-for-byte identical fault schedule.
func TestChaosScheduleReproducible(t *testing.T) {
	a := fault.New(chaosPlan(), 4, 9)
	b := fault.New(chaosPlan(), 4, 9)
	sa := strings.Join(a.PlannedSchedule(30000), "\n")
	sb := strings.Join(b.PlannedSchedule(30000), "\n")
	if sa != sb {
		t.Fatal("same seed produced different fault schedules")
	}
	if sa == "" {
		t.Fatal("empty planned schedule for a plan with a crash and 2% loss")
	}
}
