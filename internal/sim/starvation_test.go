package sim

import (
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/dmt"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// starvationStorm is a workload engineered to starve: 192 transactions
// from 32 workers fight over 2 items with think time wide enough that
// attempts always overlap, so on every scheduler some transactions lose
// the retry race over and over. (The yield-spin backoff runtime made
// retries precise enough that the original 16-worker storm stopped
// starving anyone; this population is calibrated to starve ~30 without
// aging.) MaxAttempts is the starvation detector:
// a transaction that burns 100 conflict retries without committing is
// starved for this test's purposes.
func starvationStorm(aging bool) Config {
	cfg := Config{
		Specs: workload.Config{
			Txns: 192, OpsPerTxn: 3, Items: 2,
			ReadFraction: 0.3, Seed: 11,
		}.Generate(),
		Workers:     32,
		MaxAttempts: 100,
		Backoff:     100 * time.Microsecond,
		Think:       400 * time.Microsecond,
		RuntimeSeed: 11,
		KeepResults: true,
	}
	if aging {
		// The limiter is pinned wide open (it never sheds) so the run
		// isolates the aging machinery: priority aging, the elder
		// barrier and the crisis gate, with no admission control help.
		cfg.Admit = &admit.Options{
			Limiter: admit.LimiterOptions{Initial: 64, Min: 64, Max: 64},
			Aging:   admit.AgingOptions{ElderAfter: 8},
		}
	}
	return cfg
}

// TestStarvationFreedom is the progress half of the overload work's
// closed loop: under a seeded restart storm, every admitted transaction
// eventually commits when aging is on — zero starved transactions and a
// bounded worst-case attempt count — while the same storm without aging
// demonstrably starves at least one transaction on every scheduler
// variant (the detector that proves the storm is real).
func TestStarvationFreedom(t *testing.T) {
	if testing.Short() {
		t.Skip("starvation storm is seconds-long; skipped in -short")
	}
	variants := map[string]func(*storage.Store) sched.Scheduler{
		"mt-striped": func(st *storage.Store) sched.Scheduler {
			return sched.NewMT(st, sched.MTOptions{Core: engine.Options{K: 7, StarvationAvoidance: true}})
		},
		"composite": func(st *storage.Store) sched.Scheduler {
			return sched.NewComposite(st, 7, engine.Options{StarvationAvoidance: true})
		},
		"dmt": func(st *storage.Store) sched.Scheduler {
			return sched.NewDMT(st, dmt.Options{K: 7, Sites: 2})
		},
	}
	for name, ns := range variants {
		t.Run(name, func(t *testing.T) {
			cfg := starvationStorm(true)
			cfg.NewScheduler = ns
			rep := Run(cfg)
			maxAtt := 0
			for _, r := range rep.Results {
				if r.Attempts > maxAtt {
					maxAtt = r.Attempts
				}
				if !r.Committed {
					t.Errorf("txn %d starved with aging on (%d attempts)", r.ID, r.Attempts)
				}
			}
			// Observed worst case is ~12 attempts; 40 leaves slack for
			// scheduler jitter without ever tolerating a real livelock
			// (a starved transaction burns all 100).
			if maxAtt > 40 {
				t.Errorf("max attempts with aging = %d, want <= 40", maxAtt)
			}
			if rep.Admit == nil || rep.Admit.Elders == 0 {
				t.Error("storm never promoted an elder — the test is not exercising aging")
			}
			t.Logf("aging on : committed=%d/%d maxatt=%d elders=%d gate-waits=%d",
				rep.Committed, rep.Txns, maxAtt, rep.Admit.Elders, rep.Admit.GateWaits)

			cfg = starvationStorm(false)
			cfg.NewScheduler = ns
			raw := Run(cfg)
			if raw.GaveUp == 0 {
				t.Error("storm starved nobody without aging — detector workload too mild")
			}
			t.Logf("aging off: committed=%d/%d starved=%d", raw.Committed, raw.Txns, raw.GaveUp)
		})
	}
}
