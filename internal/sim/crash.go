package sim

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// crashDir is the WAL directory inside the harness's in-memory FS.
const crashDir = "walcrash"

// shadowEvent is one committed batch as the shadow copy saw it: deep
// copies of the maps (the journal contract lends them only for the
// call) plus the counter watermarks the log writer recorded in the
// batch's redo record.
type shadowEvent struct {
	Txn     int
	Version int64
	Writes  map[string]int64
	Vers    map[string]int64
	Lo, Hi  int64
}

// CrashPointConfig drives one crash-point experiment: run the embedded
// workload with the WAL on an in-memory filesystem that dies at the
// CrashAt-th I/O operation, then recover and verify.
type CrashPointConfig struct {
	// Config is the workload; its WAL, Observe and KeepResults fields
	// are owned by the harness and overwritten.
	Config
	// Seed drives the deterministic torn-tail lengths (and is mixed per
	// file), so a whole crash matrix is reproducible from one integer.
	Seed int64
	// CrashAt schedules the crash on the n-th filesystem operation
	// (0 = never crash; used to measure CleanOps, the sweep bound).
	CrashAt int64
	// Sync, BatchDelay, BatchBytes, CheckpointEvery configure the log
	// writer (see wal.Options).
	Sync            wal.SyncPolicy
	BatchDelay      time.Duration
	BatchBytes      int
	CheckpointEvery int
	// RestartSpecs, when non-empty together with NewTracedScheduler,
	// runs a post-recovery phase that traces every k-th-column counter
	// assignment and reports any value the pre-crash run could already
	// have consumed durably — the counter re-issue check.
	RestartSpecs []txn.Spec
	// NewTracedScheduler builds the post-recovery scheduler with a core
	// trace attached (MT-family schedulers route engine.Options.Trace).
	NewTracedScheduler func(*storage.Store, func(core.Event)) sched.Scheduler
}

// CrashPointReport is the outcome of one crash-point run, with every
// verified invariant. A report with empty Violations passed.
type CrashPointReport struct {
	// Crashed reports whether the scheduled crash fired (a CrashAt past
	// the run's total I/O count never fires).
	Crashed bool
	// CleanOps is the filesystem op count of the run — with CrashAt=0
	// this is the sweep bound for the full matrix.
	CleanOps int64
	// Committed and AckedDurable count scheduler commits and commits
	// acknowledged as durable (fsynced) before the crash.
	Committed    int64
	AckedDurable int64
	// RecoveredVersion/RecoveredRecords/TornBytes describe recovery.
	RecoveredVersion int64
	RecoveredRecords int
	TornBytes        int64
	// RestartAssigns counts k-th-column values assigned post-recovery
	// (0 when the restart phase is not configured).
	RestartAssigns int
	// Violations lists every broken invariant (empty = pass).
	Violations []string
}

func (r *CrashPointReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Err returns nil when every invariant held.
func (r *CrashPointReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("crash-point invariants violated: %v", r.Violations)
}

// String renders a one-line summary.
func (r *CrashPointReport) String() string {
	status := "PASS"
	if len(r.Violations) > 0 {
		status = fmt.Sprintf("FAIL %v", r.Violations)
	}
	return fmt.Sprintf("crashed=%v committed=%d acked-durable=%d recovered-version=%d replayed=%d torn-bytes=%d restart-assigns=%d %s",
		r.Crashed, r.Committed, r.AckedDurable, r.RecoveredVersion,
		r.RecoveredRecords, r.TornBytes, r.RestartAssigns, status)
}

// RunCrashPoint runs the workload against a WAL on a crash-scheduled
// in-memory filesystem, restarts the "machine", recovers, and verifies
// the durability invariants:
//
//  1. recovery succeeds — a torn tail is truncated, never fatal;
//  2. the recovered state equals the shadow copy replayed to the
//     recovered version (exact data, item versions and version);
//  3. every commit acknowledged as durable survived (its batch version
//     is within the recovered prefix) — no lost acked commit;
//  4. the recovered counter watermarks dominate those sampled at every
//     surviving commit;
//  5. (with a restart phase) no k-th-column counter value that a
//     durable pre-crash commit could have consumed is re-issued.
func RunCrashPoint(cfg CrashPointConfig) *CrashPointReport {
	fsys := wal.NewMemFS(cfg.Seed, cfg.CrashAt)
	var shadow []shadowEvent
	var w *wal.Writer
	cfg.Config.OnWALOpen = func(wr *wal.Writer, _ *wal.RecoveredState) { w = wr }
	cfg.Config.WAL = &wal.Options{
		Dir:             crashDir,
		FS:              fsys,
		Sync:            cfg.Sync,
		BatchDelay:      cfg.BatchDelay,
		BatchBytes:      cfg.BatchBytes,
		CheckpointEvery: cfg.CheckpointEvery,
	}
	cfg.Config.Observe = func(ev storage.ApplyEvent) {
		e := shadowEvent{Txn: ev.Txn, Version: ev.Version,
			Writes: make(map[string]int64, len(ev.Writes)),
			Vers:   make(map[string]int64, len(ev.Vers))}
		for x, v := range ev.Writes {
			e.Writes[x] = v
		}
		for x, v := range ev.Vers {
			e.Vers[x] = v
		}
		if w != nil {
			// Read the watermarks the log writer just recorded for this
			// batch (its journal hook ran first, under the same
			// store-mutex hold) instead of re-sampling the scheduler:
			// DMT's cluster counters advance under per-site locks, so a
			// re-sample could exceed what the log persisted and trip
			// invariant 4 spuriously.
			e.Lo, e.Hi = w.LastWatermarks()
		}
		// The journal runs under the store mutex: appends are serialized
		// and arrive in commit order.
		shadow = append(shadow, e)
	}
	cfg.Config.KeepResults = true

	// A crash can fire during wal.Open itself (the very first I/O ops
	// belong to recovery and the append-open): that models a process
	// dying at startup, so the run simply never happened.
	runRep := runTolerant(cfg.Config)
	if runRep == nil {
		runRep = &Report{}
	}
	rep := &CrashPointReport{
		Crashed:   fsys.Crashed(),
		CleanOps:  fsys.Ops(),
		Committed: runRep.Committed,
	}
	txnVersion := make(map[int]int64, len(shadow))
	for _, ev := range shadow {
		if ev.Txn != 0 {
			txnVersion[ev.Txn] = ev.Version
		}
	}

	// The machine restarts: volatile bytes are gone, recovery begins.
	fsys.Restart()
	rec, err := wal.Recover(fsys, crashDir)
	if err != nil {
		rep.violate("recovery failed: %v", err)
		return rep
	}
	rep.RecoveredVersion = rec.Store.Version
	rep.RecoveredRecords = rec.Records
	rep.TornBytes = rec.TornBytes

	// (2) Recovered state == shadow prefix replayed to the same version.
	replay := storage.State{
		Data:     make(map[string]int64),
		ItemVers: make(map[string]int64),
	}
	if rec.Store.Version > int64(len(shadow)) {
		rep.violate("recovered version %d beyond the %d applied batches", rec.Store.Version, len(shadow))
		return rep
	}
	for _, ev := range shadow[:rec.Store.Version] {
		if ev.Version != replay.Version+1 {
			rep.violate("shadow versions not contiguous at %d", ev.Version)
			return rep
		}
		for x, v := range ev.Writes {
			replay.Data[x] = v
			replay.ItemVers[x] = ev.Vers[x]
		}
		replay.Version = ev.Version
	}
	if !statesEqual(replay, rec.Store) {
		rep.violate("recovered state != shadow replay at version %d", rec.Store.Version)
	}

	// (3) No commit acked durable may be missing from the recovery.
	for _, res := range runRep.Results {
		if !res.Committed || !res.Durable {
			continue
		}
		rep.AckedDurable++
		ver, ok := txnVersion[res.ID]
		if !ok {
			continue // read-only commit: nothing to lose
		}
		if ver > rec.Store.Version {
			rep.violate("txn %d acked durable at version %d but recovery stops at %d",
				res.ID, ver, rec.Store.Version)
		}
	}

	// (4) Recovered watermarks dominate every surviving commit's sample.
	for _, ev := range shadow[:rec.Store.Version] {
		if ev.Lo > rec.Lo || ev.Hi > rec.Hi {
			rep.violate("recovered watermarks (%d,%d) below surviving commit %d's (%d,%d)",
				rec.Lo, rec.Hi, ev.Version, ev.Lo, ev.Hi)
			break
		}
	}

	// (5) Restart phase: no re-issued k-th-column counter value. Every
	// pre-crash durable commit consumed upper values < rec.Hi and lower
	// values > -rec.Lo (watermarks are consumption counts), so any
	// post-restart assignment inside those ranges is a re-issue.
	if len(cfg.RestartSpecs) > 0 && cfg.NewTracedScheduler != nil {
		store2 := storage.Restore(rec.Store)
		var k int
		var assigns []int64
		var traced sched.Scheduler
		trace := func(ev core.Event) {
			if ev.Kind == core.EvAssign && ev.Pos == k && ev.Txn != 0 {
				assigns = append(assigns, ev.Val)
			}
		}
		traced = cfg.NewTracedScheduler(store2, trace)
		if d, ok := traced.(sched.DurableCounters); ok {
			d.SeedWALCounters(rec.Lo, rec.Hi)
		} else {
			rep.violate("restart scheduler lacks DurableCounters")
		}
		if mt, ok := traced.(interface{ Core() *engine.Scheduler }); ok {
			k = mt.Core().K()
		} else if kk, ok := traced.(interface{ K() int }); ok {
			// Striped schedulers have no coarse core; they expose K directly.
			k = kk.K()
		} else {
			rep.violate("restart scheduler does not expose its core (need K)")
		}
		rt2 := &txn.Runtime{Sched: traced, MaxAttempts: 8}
		for _, sp := range cfg.RestartSpecs {
			rt2.Exec(sp)
		}
		rep.RestartAssigns = len(assigns)
		for _, v := range assigns {
			if v > 0 && v < rec.Hi {
				rep.violate("upper counter value %d re-issued (durable watermark %d)", v, rec.Hi)
			}
			if v <= 0 && v > -rec.Lo {
				rep.violate("lower counter value %d re-issued (durable watermark %d)", v, rec.Lo)
			}
		}
	}
	return rep
}

// runTolerant runs the simulation, absorbing the startup panic a
// crash-during-open causes (nil report: the process died before any
// transaction ran). Any other panic propagates.
func runTolerant(cfg Config) (rep *Report) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(string); ok && strings.Contains(s, wal.ErrCrash.Error()) {
				rep = nil
				return
			}
			panic(r)
		}
	}()
	return Run(cfg)
}

// statesEqual compares two storage states field by field (ItemVers and
// Data may be nil vs empty).
func statesEqual(a, b storage.State) bool {
	if a.Version != b.Version || len(a.Data) != len(b.Data) || len(a.ItemVers) != len(b.ItemVers) {
		return false
	}
	for x, v := range a.Data {
		if b.Data[x] != v {
			return false
		}
	}
	for x, v := range a.ItemVers {
		if b.ItemVers[x] != v {
			return false
		}
	}
	return true
}
