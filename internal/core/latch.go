package core

import (
	"sort"

	"repro/internal/explore/hook"
)

// LatchTable is a hash-striped per-item latch table: each item maps to
// one of a fixed set of mutex stripes, and a multi-item acquisition
// takes its stripes in ascending stripe order — the same ordered-object
// locking discipline DMT(k) uses for its per-item vector objects
// (Section V), which makes every acquisition deadlock-free regardless
// of how item sets overlap. Latches are short-term (held for one
// protocol step or one commit's validate-and-publish), unlike the 2PL
// locks in internal/lock, which are held to commit and need deadlock
// detection.
type LatchTable struct {
	stripes []chanMutex
	mask    uint32
	// resBase is this table's first stripe's process-unique resource id
	// for the explore hook: stripe i is resource resBase+i, so the
	// schedule explorer can track waiters per stripe across any number
	// of coexisting tables.
	resBase uint64
}

// chanMutex is a mutex built on a 1-buffered channel. It behaves like
// sync.Mutex but keeps the latch table self-contained and makes the
// fuzz harness's bounded-wait watchdog meaningful (a lost wakeup would
// park a goroutine forever; the channel send/receive pairing cannot
// lose one).
type chanMutex chan struct{}

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }

// NewLatchTable returns a table with at least n stripes (rounded up to
// a power of two, minimum 1).
func NewLatchTable(n int) *LatchTable {
	size := 1
	for size < n {
		size <<= 1
	}
	t := &LatchTable{
		stripes: make([]chanMutex, size),
		mask:    uint32(size - 1),
		resBase: hook.NewResourceRange(size),
	}
	for i := range t.stripes {
		t.stripes[i] = make(chanMutex, 1)
	}
	return t
}

// Stripes returns the stripe count.
func (t *LatchTable) Stripes() int { return len(t.stripes) }

// StripeOf returns the stripe index item hashes to. Two items with the
// same stripe index share a latch (and therefore serialize), which is
// safe but costs concurrency; callers that keep per-stripe side state
// (the striped scheduler's rt/wt maps) key it by this index.
func (t *LatchTable) StripeOf(item string) int {
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h ^= uint32(item[i])
		h *= 16777619
	}
	return int(h & t.mask)
}

// Lock acquires the latches covering items and returns the unlock
// function. Stripe indices are deduplicated and taken in ascending
// order, so concurrent multi-item acquisitions can never deadlock; the
// unlock function releases in descending order. Lock with no items
// returns a no-op unlock.
func (t *LatchTable) Lock(items ...string) func() {
	switch len(items) {
	case 0:
		return func() {}
	case 1:
		return t.LockStripes([]int{t.StripeOf(items[0])})
	}
	idx := make([]int, 0, len(items))
	for _, x := range items {
		idx = append(idx, t.StripeOf(x))
	}
	sort.Ints(idx)
	// Deduplicate in place: the same stripe may back several items.
	uniq := idx[:1]
	for _, i := range idx[1:] {
		if i != uniq[len(uniq)-1] {
			uniq = append(uniq, i)
		}
	}
	return t.LockStripes(uniq)
}

// LockStripes acquires the given stripe indices, which MUST be sorted
// ascending and deduplicated (Lock prepares them; exported for callers
// that cache stripe indices across acquisitions).
func (t *LatchTable) LockStripes(sorted []int) func() {
	for _, i := range sorted {
		t.lockStripe(i)
	}
	return func() {
		for j := len(sorted) - 1; j >= 0; j-- {
			t.unlockStripe(sorted[j])
		}
	}
}

// lockStripe acquires one stripe. Under the schedule explorer the
// acquisition is controlled: the hook try-loops a non-blocking lock
// attempt, parking the goroutine between failures, so a latch wait is a
// scheduling decision rather than a wall-clock block. In production the
// hook declines (one atomic load) and the plain channel send runs.
func (t *LatchTable) lockStripe(i int) {
	m := t.stripes[i]
	if hook.TryAcquire(t.resBase+uint64(i), "latch.acquire", func() bool {
		select {
		case m <- struct{}{}:
			return true
		default:
			return false
		}
	}) {
		return
	}
	m.lock()
}

// unlockStripe releases one stripe and notifies controlled waiters.
func (t *LatchTable) unlockStripe(i int) {
	t.stripes[i].unlock()
	hook.Release(t.resBase + uint64(i))
}
