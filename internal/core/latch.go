package core

import (
	"sort"

	"repro/internal/explore/hook"
	"repro/internal/intern"
)

// LatchTable is a hash-striped per-item latch table: each item maps to
// one of a fixed set of mutex stripes, and a multi-item acquisition
// takes its stripes in ascending stripe order — the same ordered-object
// locking discipline DMT(k) uses for its per-item vector objects
// (Section V), which makes every acquisition deadlock-free regardless
// of how item sets overlap. Latches are short-term (held for one
// protocol step or one commit's validate-and-publish), unlike the 2PL
// locks in internal/lock, which are held to commit and need deadlock
// detection.
//
// A table may be bound to an intern.Table (BindInterner), in which case
// items stripe by their dense interned id instead of a string hash:
// StripeOf(item) and StripeOfID(ID(item)) then agree, so id-indexed
// fast paths and legacy string callers always latch the same stripe.
type LatchTable struct {
	stripes []chanMutex
	mask    uint32
	// unlockFns[i] releases stripe i; built once at construction so the
	// closure-returning Lock API costs no allocation on the single-item
	// steady path.
	unlockFns []func()
	// names, when non-nil, makes striping id-based (see type comment).
	names *intern.Table
	// resBase is this table's first stripe's process-unique resource id
	// for the explore hook: stripe i is resource resBase+i, so the
	// schedule explorer can track waiters per stripe across any number
	// of coexisting tables.
	resBase uint64
}

// chanMutex is a mutex built on a 1-buffered channel. It behaves like
// sync.Mutex but keeps the latch table self-contained and makes the
// fuzz harness's bounded-wait watchdog meaningful (a lost wakeup would
// park a goroutine forever; the channel send/receive pairing cannot
// lose one).
type chanMutex chan struct{}

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }

// NewLatchTable returns a table with at least n stripes (rounded up to
// a power of two, minimum 1).
func NewLatchTable(n int) *LatchTable {
	size := 1
	for size < n {
		size <<= 1
	}
	t := &LatchTable{
		stripes: make([]chanMutex, size),
		mask:    uint32(size - 1),
		resBase: hook.NewResourceRange(size),
	}
	for i := range t.stripes {
		t.stripes[i] = make(chanMutex, 1)
	}
	t.unlockFns = make([]func(), size)
	for i := range t.unlockFns {
		i := i
		t.unlockFns[i] = func() { t.UnlockStripe(i) }
	}
	return t
}

// BindInterner switches the table to id-based striping over tbl. Must
// be called before the table is shared between goroutines (it is a
// construction-time wiring step, not a runtime toggle).
func (t *LatchTable) BindInterner(tbl *intern.Table) { t.names = tbl }

// Stripes returns the stripe count.
func (t *LatchTable) Stripes() int { return len(t.stripes) }

// StripeOf returns the stripe index item hashes to. Two items with the
// same stripe index share a latch (and therefore serialize), which is
// safe but costs concurrency; callers that keep per-stripe side state
// (the striped scheduler's rt/wt tables) key it by this index.
func (t *LatchTable) StripeOf(item string) int {
	if t.names != nil {
		return int(uint32(t.names.ID(item)) & t.mask)
	}
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h ^= uint32(item[i])
		h *= 16777619
	}
	return int(h & t.mask)
}

// StripeOfID returns the stripe index for an interned item id. Valid
// only on tables bound to the interner that produced the id (unbound
// tables stripe strings by hash, which need not agree).
func (t *LatchTable) StripeOfID(id int32) int {
	return int(uint32(id) & t.mask)
}

// Lock acquires the latches covering items and returns the unlock
// function. Stripe indices are deduplicated and taken in ascending
// order, so concurrent multi-item acquisitions can never deadlock; the
// unlock function releases in descending order. Lock with no items
// returns a no-op unlock.
func (t *LatchTable) Lock(items ...string) func() {
	switch len(items) {
	case 0:
		return nop
	case 1:
		i := t.StripeOf(items[0])
		t.LockStripe(i)
		return t.unlockFns[i]
	}
	idx := make([]int, 0, len(items))
	for _, x := range items {
		idx = append(idx, t.StripeOf(x))
	}
	sort.Ints(idx)
	// Deduplicate in place: the same stripe may back several items.
	uniq := idx[:1]
	for _, i := range idx[1:] {
		if i != uniq[len(uniq)-1] {
			uniq = append(uniq, i)
		}
	}
	return t.LockStripes(uniq)
}

var nop = func() {}

// LockStripes acquires the given stripe indices, which MUST be sorted
// ascending and deduplicated (Lock prepares them; exported for callers
// that cache stripe indices across acquisitions).
func (t *LatchTable) LockStripes(sorted []int) func() {
	if len(sorted) == 1 {
		t.LockStripe(sorted[0])
		return t.unlockFns[sorted[0]]
	}
	t.LockStripesSorted(sorted)
	return func() { t.UnlockStripesSorted(sorted) }
}

// LockStripesSorted acquires the given stripes, which MUST be sorted
// ascending and deduplicated. Paired with UnlockStripesSorted, it is
// the allocation-free form of LockStripes for callers that keep the
// stripe slice themselves.
func (t *LatchTable) LockStripesSorted(sorted []int) {
	for _, i := range sorted {
		t.LockStripe(i)
	}
}

// UnlockStripesSorted releases stripes previously acquired with
// LockStripesSorted, in descending order.
func (t *LatchTable) UnlockStripesSorted(sorted []int) {
	for j := len(sorted) - 1; j >= 0; j-- {
		t.UnlockStripe(sorted[j])
	}
}

// LockStripe acquires one stripe. Under the schedule explorer the
// acquisition is controlled: the hook try-loops a non-blocking lock
// attempt, parking the goroutine between failures, so a latch wait is a
// scheduling decision rather than a wall-clock block. In production the
// hook declines (one atomic load, checked before the try-closure is
// even built so the steady path allocates nothing) and the plain
// channel send runs.
func (t *LatchTable) LockStripe(i int) {
	m := t.stripes[i]
	if hook.Enabled() {
		if hook.TryAcquire(t.resBase+uint64(i), "latch.acquire", func() bool {
			select {
			case m <- struct{}{}:
				return true
			default:
				return false
			}
		}) {
			return
		}
	}
	m.lock()
}

// UnlockStripe releases one stripe and notifies controlled waiters.
func (t *LatchTable) UnlockStripe(i int) {
	t.stripes[i].unlock()
	hook.Release(t.resBase + uint64(i))
}
