// Package core implements the paper's primary contribution: the
// multidimensional timestamp protocol MT(k) of Algorithm 1, including the
// timestamp-vector ordering of Definition 6, the starvation fix of Section
// III-D-4, the Thomas-write-rule integration and the optimized ("hot item")
// dependency encoding of Section III-D-5.
//
// A transaction T_i carries a timestamp vector TS(i) of k elements, each
// either an integer or undefined (the paper's '*'). Vectors are compared
// lexicographically left to right; a newly discovered dependency
// T_j -> T_i is encoded by making TS(j) < TS(i) at the first position where
// the two vectors are not both defined and equal. Defined elements are
// never overwritten, so established order relations are immutable and the
// induced relation '<' remains a strict partial order (Lemmas 1-2), which
// yields serializability (Theorem 2).
package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// Elem is a single timestamp-vector element: an integer value or the
// undefined marker '*'.
type Elem struct {
	V       int64
	Defined bool
}

// Undef is the undefined element.
var Undef = Elem{}

// Int returns a defined element with value v.
func Int(v int64) Elem { return Elem{V: v, Defined: true} }

// String renders the element as its value or '*'.
func (e Elem) String() string {
	if !e.Defined {
		return "*"
	}
	return fmt.Sprintf("%d", e.V)
}

// Rel is the outcome of comparing two timestamp vectors per Definition 6.
type Rel int

// Comparison outcomes. Less and Greater are *established* relations that
// can never change afterwards; Equal means both vectors are undefined at
// the deciding position (the paper's TS(i) = TS(j)); Unknown means exactly
// one side is undefined there (the paper's '?').
const (
	Less Rel = iota
	Greater
	Equal
	Unknown
)

// String returns a symbol for the relation.
func (r Rel) String() string {
	switch r {
	case Less:
		return "<"
	case Greater:
		return ">"
	case Equal:
		return "="
	default:
		return "?"
	}
}

// Vector is a k-dimensional timestamp vector.
//
// Representation (paper §III-E): values live in a dense int64 slice and
// definedness in a bitmask, one bit per column. Comparison then scans
// whole 64-column definedness words at once — the deciding position is
// found with one AND plus a trailing-zeros count instead of a per-column
// Defined branch — and Reset is O(1) for k <= 64. Columns 65.. (only the
// vecproc experiments use them) spill into overflow words.
type Vector struct {
	vals []int64  // column values, 0-based; valid only where defined
	mask uint64   // definedness bits for columns 1..min(k,64)
	ext  []uint64 // definedness bits for columns 65.. (nil when k <= 64)
}

// NewVector returns an all-undefined vector of size k.
func NewVector(k int) *Vector {
	if k < 1 {
		panic("core: vector size must be >= 1")
	}
	v := &Vector{vals: make([]int64, k)}
	if k > 64 {
		v.ext = make([]uint64, (k-64+63)/64)
	}
	return v
}

// VectorOf builds a vector from explicit elements (for tests and tables).
func VectorOf(elems ...Elem) *Vector {
	if len(elems) == 0 {
		panic("core: empty vector")
	}
	v := NewVector(len(elems))
	for i, e := range elems {
		if e.Defined {
			v.set(i+1, e.V)
		}
	}
	return v
}

// defined reports whether 0-based column i is defined.
func (v *Vector) defined(i int) bool {
	if i < 64 {
		return v.mask&(uint64(1)<<uint(i)) != 0
	}
	return v.ext[(i-64)>>6]&(uint64(1)<<uint((i-64)&63)) != 0
}

// setBit marks 0-based column i defined.
func (v *Vector) setBit(i int) {
	if i < 64 {
		v.mask |= uint64(1) << uint(i)
		return
	}
	v.ext[(i-64)>>6] |= uint64(1) << uint((i-64)&63)
}

// K returns the vector size.
func (v *Vector) K() int { return len(v.vals) }

// Elem returns the m-th element, 1-based as in the paper's TS(i, m).
func (v *Vector) Elem(m int) Elem {
	if !v.defined(m - 1) {
		_ = v.vals[m-1] // preserve the bounds panic for m > k
		return Elem{}
	}
	return Elem{V: v.vals[m-1], Defined: true}
}

// DefinedCount returns the number of defined elements.
func (v *Vector) DefinedCount() int {
	n := bits.OnesCount64(v.mask)
	for _, w := range v.ext {
		n += bits.OnesCount64(w)
	}
	return n
}

// set assigns element m (1-based). Overwriting a defined element would
// silently destroy an established order relation, so it panics instead:
// every call site must only fill undefined slots. Reset is the only
// sanctioned way to discard a vector's history (starvation fix).
func (v *Vector) set(m int, val int64) {
	if v.defined(m - 1) {
		panic(fmt.Sprintf("core: element %d already defined", m))
	}
	v.vals[m-1] = val
	v.setBit(m - 1)
}

// SetElem assigns element m (1-based). Like every element assignment it
// panics on overwriting a defined element: established order relations are
// immutable. Exported for the decentralized protocol, which stores vectors
// outside a VectorTable.
func (v *Vector) SetElem(m int, val int64) { v.set(m, val) }

// Reset flushes the vector back to all-undefined (the starvation fix's
// "flush out TS(i)"). O(1) for k <= 64: only the definedness mask is
// cleared, stale values are unreachable behind it.
func (v *Vector) Reset() {
	v.mask = 0
	for i := range v.ext {
		v.ext[i] = 0
	}
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := &Vector{vals: append([]int64(nil), v.vals...), mask: v.mask}
	if v.ext != nil {
		c.ext = append([]uint64(nil), v.ext...)
	}
	return c
}

// String renders the vector in the paper's notation, e.g. "<1,2,*>".
func (v *Vector) String() string {
	parts := make([]string, len(v.vals))
	for m := 1; m <= len(v.vals); m++ {
		parts[m-1] = v.Elem(m).String()
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// Compare implements Definition 6. It walks corresponding elements left to
// right while both are defined and equal and returns the relation together
// with the 1-based deciding position m. If every pair of elements is
// defined and equal (possible only when v and w are the same transaction's
// vector, since the k-th column holds distinct values), it returns
// (Equal, k).
//
// The walk is branch-reduced per §III-E: one word-parallel AND over the
// definedness masks plus a trailing-zeros count locates the first column
// where the vectors are not both defined, so the loop up to that bound
// compares raw values with no per-column Defined tests.
func (v *Vector) Compare(w *Vector) (Rel, int) {
	k := len(v.vals)
	if k != len(w.vals) {
		panic(fmt.Sprintf("core: comparing vectors of size %d and %d", k, len(w.vals)))
	}
	// First column (0-based) where NOT both defined, within the first
	// definedness word; 64 when the whole word is both-defined.
	lim := bits.TrailingZeros64(^(v.mask & w.mask))
	if lim > k {
		lim = k
	}
	for m := 0; m < lim; m++ {
		if a, b := v.vals[m], w.vals[m]; a != b {
			if a < b {
				return Less, m + 1
			}
			return Greater, m + 1
		}
	}
	if lim == k {
		return Equal, k // every column defined and equal
	}
	if lim < 64 {
		// Column lim is the deciding position: at most one side defined.
		if (v.mask|w.mask)&(uint64(1)<<uint(lim)) == 0 {
			return Equal, lim + 1
		}
		return Unknown, lim + 1
	}
	// Spill columns (k > 64): the first word was both-defined and equal.
	for m := 64; m < k; m++ {
		ad, bd := v.defined(m), w.defined(m)
		switch {
		case ad && bd:
			if a, b := v.vals[m], w.vals[m]; a != b {
				if a < b {
					return Less, m + 1
				}
				return Greater, m + 1
			}
		case !ad && !bd:
			return Equal, m + 1
		default:
			return Unknown, m + 1
		}
	}
	return Equal, k
}

// Less reports whether v < w is an established relation.
func (v *Vector) Less(w *Vector) bool {
	rel, _ := v.Compare(w)
	return rel == Less
}

// FirstUndefined returns the 1-based index of the first undefined element,
// or k+1 if the vector is fully defined.
func (v *Vector) FirstUndefined() int {
	k := len(v.vals)
	if m := bits.TrailingZeros64(^v.mask); m < k && m < 64 {
		return m + 1
	}
	for m := 64; m < k; m++ {
		if !v.defined(m) {
			return m + 1
		}
	}
	return k + 1
}
