// Package core implements the paper's primary contribution: the
// multidimensional timestamp protocol MT(k) of Algorithm 1, including the
// timestamp-vector ordering of Definition 6, the starvation fix of Section
// III-D-4, the Thomas-write-rule integration and the optimized ("hot item")
// dependency encoding of Section III-D-5.
//
// A transaction T_i carries a timestamp vector TS(i) of k elements, each
// either an integer or undefined (the paper's '*'). Vectors are compared
// lexicographically left to right; a newly discovered dependency
// T_j -> T_i is encoded by making TS(j) < TS(i) at the first position where
// the two vectors are not both defined and equal. Defined elements are
// never overwritten, so established order relations are immutable and the
// induced relation '<' remains a strict partial order (Lemmas 1-2), which
// yields serializability (Theorem 2).
package core

import (
	"fmt"
	"strings"
)

// Elem is a single timestamp-vector element: an integer value or the
// undefined marker '*'.
type Elem struct {
	V       int64
	Defined bool
}

// Undef is the undefined element.
var Undef = Elem{}

// Int returns a defined element with value v.
func Int(v int64) Elem { return Elem{V: v, Defined: true} }

// String renders the element as its value or '*'.
func (e Elem) String() string {
	if !e.Defined {
		return "*"
	}
	return fmt.Sprintf("%d", e.V)
}

// Rel is the outcome of comparing two timestamp vectors per Definition 6.
type Rel int

// Comparison outcomes. Less and Greater are *established* relations that
// can never change afterwards; Equal means both vectors are undefined at
// the deciding position (the paper's TS(i) = TS(j)); Unknown means exactly
// one side is undefined there (the paper's '?').
const (
	Less Rel = iota
	Greater
	Equal
	Unknown
)

// String returns a symbol for the relation.
func (r Rel) String() string {
	switch r {
	case Less:
		return "<"
	case Greater:
		return ">"
	case Equal:
		return "="
	default:
		return "?"
	}
}

// Vector is a k-dimensional timestamp vector.
type Vector struct {
	elems []Elem
}

// NewVector returns an all-undefined vector of size k.
func NewVector(k int) *Vector {
	if k < 1 {
		panic("core: vector size must be >= 1")
	}
	return &Vector{elems: make([]Elem, k)}
}

// VectorOf builds a vector from explicit elements (for tests and tables).
func VectorOf(elems ...Elem) *Vector {
	if len(elems) == 0 {
		panic("core: empty vector")
	}
	return &Vector{elems: append([]Elem(nil), elems...)}
}

// K returns the vector size.
func (v *Vector) K() int { return len(v.elems) }

// Elem returns the m-th element, 1-based as in the paper's TS(i, m).
func (v *Vector) Elem(m int) Elem { return v.elems[m-1] }

// DefinedCount returns the number of defined elements.
func (v *Vector) DefinedCount() int {
	n := 0
	for _, e := range v.elems {
		if e.Defined {
			n++
		}
	}
	return n
}

// set assigns element m (1-based). Overwriting a defined element would
// silently destroy an established order relation, so it panics instead:
// every call site must only fill undefined slots. Reset is the only
// sanctioned way to discard a vector's history (starvation fix).
func (v *Vector) set(m int, val int64) {
	if v.elems[m-1].Defined {
		panic(fmt.Sprintf("core: element %d already defined", m))
	}
	v.elems[m-1] = Int(val)
}

// SetElem assigns element m (1-based). Like every element assignment it
// panics on overwriting a defined element: established order relations are
// immutable. Exported for the decentralized protocol, which stores vectors
// outside a VectorTable.
func (v *Vector) SetElem(m int, val int64) { v.set(m, val) }

// Reset flushes the vector back to all-undefined (the starvation fix's
// "flush out TS(i)").
func (v *Vector) Reset() {
	for i := range v.elems {
		v.elems[i] = Elem{}
	}
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return &Vector{elems: append([]Elem(nil), v.elems...)}
}

// String renders the vector in the paper's notation, e.g. "<1,2,*>".
func (v *Vector) String() string {
	parts := make([]string, len(v.elems))
	for i, e := range v.elems {
		parts[i] = e.String()
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// Compare implements Definition 6. It walks corresponding elements left to
// right while both are defined and equal and returns the relation together
// with the 1-based deciding position m. If every pair of elements is
// defined and equal (possible only when v and w are the same transaction's
// vector, since the k-th column holds distinct values), it returns
// (Equal, k).
func (v *Vector) Compare(w *Vector) (Rel, int) {
	if len(v.elems) != len(w.elems) {
		panic(fmt.Sprintf("core: comparing vectors of size %d and %d", len(v.elems), len(w.elems)))
	}
	for m := 0; m < len(v.elems); m++ {
		a, b := v.elems[m], w.elems[m]
		switch {
		case a.Defined && b.Defined:
			if a.V < b.V {
				return Less, m + 1
			}
			if a.V > b.V {
				return Greater, m + 1
			}
			// equal: continue to the next element
		case !a.Defined && !b.Defined:
			return Equal, m + 1
		default:
			return Unknown, m + 1
		}
	}
	return Equal, len(v.elems)
}

// Less reports whether v < w is an established relation.
func (v *Vector) Less(w *Vector) bool {
	rel, _ := v.Compare(w)
	return rel == Less
}

// FirstUndefined returns the 1-based index of the first undefined element,
// or k+1 if the vector is fully defined.
func (v *Vector) FirstUndefined() int {
	for m, e := range v.elems {
		if !e.Defined {
			return m + 1
		}
	}
	return len(v.elems) + 1
}
