package core

import (
	"fmt"
	"testing"

	"repro/internal/intern"
)

// These tests pin the zero-allocation contract of the hot-path
// primitives (DESIGN.md §14). They use testing.AllocsPerRun, so a
// regression shows up as a deterministic test failure rather than a
// benchmark drift that only make alloc-gate would catch.

func TestVectorCompareAllocFree(t *testing.T) {
	for _, k := range []int{4, 7, 64, 256} {
		a := NewVector(k)
		b := NewVector(k)
		a.SetElem(1, 5)
		b.SetElem(1, 3)
		if k >= 64 {
			a.SetElem(k, 9)
			b.SetElem(k, 2)
		}
		if n := testing.AllocsPerRun(200, func() {
			_, _ = a.Compare(b)
			_ = a.Less(b)
		}); n != 0 {
			t.Errorf("k=%d: Compare/Less allocated %v/run, want 0", k, n)
		}
	}
}

func TestVectorMutateAllocFree(t *testing.T) {
	v := NewVector(256)
	if n := testing.AllocsPerRun(200, func() {
		v.Reset()
		v.SetElem(1, 7)
		v.SetElem(200, 9)
		_ = v.Elem(200)
		_ = v.FirstUndefined()
		_ = v.DefinedCount()
	}); n != 0 {
		t.Errorf("Reset/SetElem/Elem/FirstUndefined allocated %v/run, want 0", n)
	}
}

func TestLatchLockAllocFree(t *testing.T) {
	lt := NewLatchTable(64)
	tbl := intern.New()
	lt.BindInterner(tbl)
	items := make([]string, 32)
	for i := range items {
		items[i] = fmt.Sprintf("item-%02d", i)
		tbl.ID(items[i]) // pre-intern: steady state means no new names
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		i++
		unlock := lt.Lock(items[i%len(items)])
		unlock()
	}); n != 0 {
		t.Errorf("single-item Lock allocated %v/run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		i++
		s := lt.StripeOfID(int32(i % len(items)))
		lt.LockStripe(s)
		lt.UnlockStripe(s)
	}); n != 0 {
		t.Errorf("LockStripe/UnlockStripe allocated %v/run, want 0", n)
	}
	sorted := []int{1, 5, 9}
	if n := testing.AllocsPerRun(200, func() {
		lt.LockStripesSorted(sorted)
		lt.UnlockStripesSorted(sorted)
	}); n != 0 {
		t.Errorf("LockStripesSorted allocated %v/run, want 0", n)
	}
}
