package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// vec builds a vector from a compact spec: values are ints, nil-like
// undefined slots are represented by the sentinel minInt.
const undef = int64(-1 << 62)

func vec(vals ...int64) *Vector {
	elems := make([]Elem, len(vals))
	for i, v := range vals {
		if v != undef {
			elems[i] = Int(v)
		}
	}
	return VectorOf(elems...)
}

func TestElemString(t *testing.T) {
	if Undef.String() != "*" {
		t.Fatalf("Undef = %q", Undef.String())
	}
	if Int(-3).String() != "-3" {
		t.Fatalf("Int(-3) = %q", Int(-3).String())
	}
}

func TestVectorString(t *testing.T) {
	v := vec(1, undef, 3)
	if got := v.String(); got != "<1,*,3>" {
		t.Fatalf("String = %q", got)
	}
}

func TestNewVectorPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVector(0)
}

func TestCompareDefinition6(t *testing.T) {
	cases := []struct {
		a, b  *Vector
		rel   Rel
		pos   int
		label string
	}{
		{vec(1, undef), vec(2, undef), Less, 1, "defined less at 1"},
		{vec(2, undef), vec(1, undef), Greater, 1, "defined greater at 1"},
		{vec(2, 1), vec(2, 2), Less, 2, "shared prefix, decide at 2"},
		{vec(2, undef), vec(2, undef), Equal, 2, "both undefined at 2"},
		{vec(undef, undef), vec(undef, undef), Equal, 1, "both undefined at 1"},
		{vec(2, 1), vec(2, undef), Unknown, 2, "one undefined at 2"},
		{vec(undef, undef), vec(2, undef), Unknown, 1, "one undefined at 1"},
		{vec(1, 0), vec(1, 2), Less, 2, "paper edge e: <1,0> < <1,2>"},
	}
	for _, c := range cases {
		rel, pos := c.a.Compare(c.b)
		if rel != c.rel || pos != c.pos {
			t.Errorf("%s: Compare(%v,%v) = (%v,%d), want (%v,%d)",
				c.label, c.a, c.b, rel, pos, c.rel, c.pos)
		}
	}
}

func TestCompareFullyEqualDefined(t *testing.T) {
	rel, pos := vec(1, 2).Compare(vec(1, 2))
	if rel != Equal || pos != 2 {
		t.Fatalf("got (%v,%d)", rel, pos)
	}
}

func TestCompareSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	vec(1).Compare(vec(1, 2))
}

func TestCompareAntisymmetric(t *testing.T) {
	// If a < b then b > a at the same position.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		mk := func() *Vector {
			v := NewVector(k)
			// defined prefix invariant, as maintained by the scheduler
			d := rng.Intn(k + 1)
			for m := 1; m <= d; m++ {
				v.set(m, int64(rng.Intn(3)))
			}
			return v
		}
		a, b := mk(), mk()
		ra, pa := a.Compare(b)
		rb, pb := b.Compare(a)
		if pa != pb {
			return false
		}
		switch ra {
		case Less:
			return rb == Greater
		case Greater:
			return rb == Less
		default:
			return rb == ra
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Lemma 1: established '<' is transitive (on prefix-defined vectors).
func TestLemma1Transitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		mk := func() *Vector {
			v := NewVector(k)
			d := rng.Intn(k + 1)
			for m := 1; m <= d; m++ {
				v.set(m, int64(rng.Intn(3)))
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Lemma 2: '<' is irreflexive.
func TestLemma2Irreflexive(t *testing.T) {
	for _, v := range []*Vector{vec(undef, undef), vec(1, undef), vec(1, 2)} {
		if v.Less(v) {
			t.Errorf("%v < itself", v)
		}
	}
}

func TestSetPanicsOnOverwrite(t *testing.T) {
	v := NewVector(2)
	v.set(1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overwriting a defined element")
		}
	}()
	v.set(1, 6)
}

func TestResetAndClone(t *testing.T) {
	v := vec(1, 2)
	c := v.Clone()
	v.Reset()
	if v.DefinedCount() != 0 {
		t.Fatal("Reset left defined elements")
	}
	if c.DefinedCount() != 2 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestFirstUndefined(t *testing.T) {
	if got := vec(1, undef, undef).FirstUndefined(); got != 2 {
		t.Fatalf("got %d", got)
	}
	if got := vec(1, 2).FirstUndefined(); got != 3 {
		t.Fatalf("fully defined: got %d", got)
	}
	if got := vec(undef).FirstUndefined(); got != 1 {
		t.Fatalf("all undefined: got %d", got)
	}
}

func TestVectorOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VectorOf()
}

func TestRelString(t *testing.T) {
	for rel, want := range map[Rel]string{Less: "<", Greater: ">", Equal: "=", Unknown: "?"} {
		if rel.String() != want {
			t.Errorf("Rel(%d).String() = %q, want %q", rel, rel.String(), want)
		}
	}
}
