package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/oplog"
)

// Striped is the fine-grained-locking implementation of the MT(k)
// scheduler of Algorithm 1: decision-for-decision equivalent to
// Scheduler (the differential suite in internal/sched asserts this op
// by op), but safe for concurrent use, with operations on disjoint
// items from different transactions proceeding in parallel.
//
// The locking scheme follows the paper's own decentralized protocol
// (Section V), which serializes only per-object vector accesses via
// ordered locking, and the Section VI remark that vector operations on
// different items proceed concurrently:
//
//  1. a hash-striped per-item LatchTable serializes the two accesses
//     that conflict on an item — reading/updating RT(x), WT(x) and the
//     access counts — with multi-item acquisitions (a deferred commit's
//     validate-and-publish) taking stripes in ascending order;
//  2. a per-transaction lock guards each timestamp vector and its
//     pin/done lifecycle bits; every step locks the (at most three)
//     transactions it touches — RT(x), WT(x) and the operating
//     transaction — in ascending id order;
//  3. a counter lock guards the lcount/ucount pair and the per-column
//     clock, taken last, only while a Set actually assigns elements.
//
// The hierarchy is strict (latches, then transaction locks, then the
// counter lock), so no acquisition order can deadlock. Each Set(j, i)
// runs entirely under the locks of both vectors it inspects and
// mutates, so dependency encoding stays atomic and Lemmas 1-2 (defined
// elements are never overwritten; '<' is a strict partial order) carry
// over unchanged: any concurrent execution is equivalent to some serial
// sequence of Set transitions, which is exactly the coarse scheduler's
// regime.
type Striped struct {
	opts    Options
	k       int
	latches *LatchTable
	stripes []itemStripe

	// tmu guards the id -> entry map only; entry contents are guarded
	// by the per-entry lock. Never held while blocking on an entry lock.
	tmu  sync.RWMutex
	txns map[int]*txnEntry

	// cmu guards lcount/ucount and the column clock.
	cmu    sync.Mutex
	lcount int64
	ucount int64
	clock  []int64

	// OnDecision, when non-nil, observes every Step decision while the
	// operation's item latches are still held, so for any single item
	// the observed order is the true decision order. Set it before
	// traffic flows. Stress tests use it to build serialization graphs.
	OnDecision func(Decision)
}

// itemStripe is the per-stripe slice of the scheduler's item-indexed
// state, guarded by the latch with the same index.
type itemStripe struct {
	rt     map[string]int
	wt     map[string]int
	access map[string]int
}

// txnEntry is one transaction's vector plus lifecycle state, guarded by
// its own lock.
type txnEntry struct {
	mu   sync.Mutex
	vec  *Vector
	pins int
	done bool
	// dead marks an entry reclaimed and removed from the map; a looker
	// that finds it set re-fetches (a fresh entry may exist by then).
	dead bool
}

// DefaultStripes is the latch-table width used by NewStriped.
const DefaultStripes = 128

// NewStriped returns a concurrent MT(k) scheduler with the default
// stripe count. Options are interpreted exactly as by NewScheduler.
func NewStriped(opts Options) *Striped {
	return NewStripedSize(opts, DefaultStripes)
}

// NewStripedSize returns a concurrent MT(k) scheduler with at least
// nStripes latch stripes.
func NewStripedSize(opts Options, nStripes int) *Striped {
	if opts.K < 1 {
		panic("core: Options.K must be >= 1")
	}
	s := &Striped{
		opts:    opts,
		k:       opts.K,
		latches: NewLatchTable(nStripes),
		txns:    make(map[int]*txnEntry),
		ucount:  1,
		clock:   make([]int64, opts.K),
	}
	s.stripes = make([]itemStripe, s.latches.Stripes())
	for i := range s.stripes {
		s.stripes[i] = itemStripe{
			rt:     make(map[string]int),
			wt:     make(map[string]int),
			access: make(map[string]int),
		}
	}
	// TS(0) = <0,*,...,*>: the virtual transaction T_0.
	t0 := NewVector(opts.K)
	t0.set(1, 0)
	s.txns[0] = &txnEntry{vec: t0}
	return s
}

// K returns the vector size.
func (s *Striped) K() int { return s.k }

// Latches exposes the latch table so the runtime adapter can hold an
// operation's item latches across the protocol step AND the data
// access it orders (the atomicity the coarse adapter gets from its
// global mutex).
func (s *Striped) Latches() *LatchTable { return s.latches }

// entry returns the live entry for id, creating one on demand.
func (s *Striped) entry(id int) *txnEntry {
	s.tmu.RLock()
	e := s.txns[id]
	s.tmu.RUnlock()
	if e != nil {
		return e
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if e = s.txns[id]; e != nil {
		return e
	}
	e = &txnEntry{vec: NewVector(s.k)}
	s.txns[id] = e
	return e
}

// lockTxns locks the entries for the given ids in ascending id order
// (ids are deduplicated here), retrying from the map if any entry was
// reclaimed between lookup and lock. Returns the locked entries keyed
// by id and an unlock function.
func (s *Striped) lockTxns(ids ...int) (map[int]*txnEntry, func()) {
	sort.Ints(ids)
	uniq := ids[:0]
	for i, id := range ids {
		if i == 0 || id != uniq[len(uniq)-1] {
			uniq = append(uniq, id)
		}
	}
	for {
		es := make([]*txnEntry, len(uniq))
		for i, id := range uniq {
			es[i] = s.entry(id)
		}
		ok := true
		for i, e := range es {
			e.mu.Lock()
			if e.dead {
				for j := i; j >= 0; j-- {
					es[j].mu.Unlock()
				}
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		m := make(map[int]*txnEntry, len(uniq))
		for i, id := range uniq {
			m[id] = es[i]
		}
		return m, func() {
			for j := len(es) - 1; j >= 0; j-- {
				es[j].mu.Unlock()
			}
		}
	}
}

// Step schedules one atomic operation, acquiring the items' latches
// itself. Multi-item operations process their items in order; the
// first rejecting item rejects the whole operation.
func (s *Striped) Step(op oplog.Op) Decision {
	unlock := s.latches.Lock(op.Items...)
	defer unlock()
	return s.StepLocked(op)
}

// StepLocked is Step for callers that already hold the latches
// covering op.Items (the runtime adapter, which keeps them held across
// the subsequent data access).
func (s *Striped) StepLocked(op oplog.Op) Decision {
	var ignored []string
	d := Decision{Op: op, Verdict: Accept}
	for _, x := range op.Items {
		var v Verdict
		var blocker int
		if op.Kind == oplog.Read {
			v, blocker = s.stepItem(op.Txn, x, true)
		} else {
			v, blocker = s.stepItem(op.Txn, x, false)
		}
		if v == Reject {
			d = Decision{Op: op, Verdict: Reject, Blocker: blocker, Item: x}
			if s.OnDecision != nil {
				s.OnDecision(d)
			}
			return d
		}
		if v == AcceptIgnored {
			ignored = append(ignored, x)
		}
	}
	if len(ignored) == len(op.Items) {
		d.Verdict = AcceptIgnored
	}
	d.IgnoredItems = ignored
	if s.OnDecision != nil {
		s.OnDecision(d)
	}
	return d
}

// stepItem runs the read or write arm of Algorithm 1 for one item,
// with the item's latch held by the caller. It locks the (at most
// three) transactions involved, makes the decision, and updates the
// RT/WT indexes and pin counts before releasing them.
func (s *Striped) stepItem(i int, x string, read bool) (Verdict, int) {
	st := &s.stripes[s.latches.StripeOf(x)]
	st.access[x]++
	rt, wt := st.rt[x], st.wt[x]
	es, unlock := s.lockTxns(rt, wt, i)
	defer unlock()
	// A transaction issuing operations is live: a restarted incarnation
	// after Abort reactivates its (possibly reseeded) vector.
	es[i].done = false
	// maxHolder: j := RT(x) or WT(x), whichever timestamp is larger.
	j, ej := rt, es[rt]
	if rt != wt && s.vecLess(es[rt].vec, es[wt].vec) {
		j, ej = wt, es[wt]
	}
	if read {
		if s.setDep(j, i, ej, es[i], x) {
			s.repin(st, &st.rt, x, i, es)
			return Accept, 0
		}
		// Line 9: the read may slot between the most recent write and
		// the most recent read without becoming the most recent reader.
		if j == rt {
			if s.opts.RelaxedReadCheck {
				if s.setDep(wt, i, es[wt], es[i], x) {
					return Accept, 0
				}
			} else if wt != i && s.vecLess(es[wt].vec, es[i].vec) {
				return Accept, 0
			}
		}
		return Reject, j
	}
	if s.setDep(j, i, ej, es[i], x) {
		s.repin(st, &st.wt, x, i, es)
		return Accept, 0
	}
	// Thomas write rule: if TS(RT(x)) < TS(i) < TS(WT(x)), the write is
	// obsolete and can be ignored.
	if s.opts.ThomasWriteRule && j == wt && i != wt && s.vecLess(es[i].vec, es[wt].vec) &&
		s.setDep(rt, i, es[rt], es[i], x) {
		return AcceptIgnored, 0
	}
	return Reject, j
}

// vecLess reports a < b established, mirroring VectorTable.Less for
// already-locked vectors.
func (s *Striped) vecLess(a, b *Vector) bool {
	if a == b {
		return false
	}
	return a.Less(b)
}

// hot reports whether x qualifies for right-shifted encoding. The
// caller holds x's latch (access counts live under it).
func (s *Striped) hot(st *itemStripe, x string) bool {
	if s.opts.HotItems[x] {
		return true
	}
	return s.opts.HotThreshold > 0 && st.access[x] >= s.opts.HotThreshold
}

// setDep is procedure Set(j, i) with both entries locked; x (may be
// empty) is the item whose access created the dependency.
func (s *Striped) setDep(j, i int, ej, ei *txnEntry, x string) bool {
	if j == i {
		return true
	}
	rel, _ := ej.vec.Compare(ei.vec)
	if rel == Greater {
		return false
	}
	if rel == Less {
		if s.opts.Trace != nil {
			s.opts.Trace(Event{Kind: EvEstablished, J: j, I: i})
		}
		return true
	}
	shift := false
	if x != "" {
		shift = s.hot(&s.stripes[s.latches.StripeOf(x)], x)
	}
	if !s.encode(j, i, ej, ei, shift) {
		return false
	}
	if s.opts.Trace != nil {
		s.opts.Trace(Event{Kind: EvEncode, J: j, I: i})
	}
	return true
}

// assign sets element pos of id's (locked) vector and advances the
// column clock. The caller holds cmu.
func (s *Striped) assign(id int, e *txnEntry, pos int, val int64) {
	e.vec.set(pos, val)
	if val > s.clock[pos-1] {
		s.clock[pos-1] = val
	}
	if s.opts.Trace != nil {
		s.opts.Trace(Event{Kind: EvAssign, Txn: id, Pos: pos, Val: val})
	}
}

// upper returns the value for a fresh "greater" element in column m
// (cmu held), mirroring VectorTable.upper.
func (s *Striped) upper(m int, floor int64) int64 {
	v := floor + 1
	if s.opts.MonotonicEncoding && s.clock[m-1]+1 > v {
		v = s.clock[m-1] + 1
	}
	return v
}

// encode mirrors VectorTable.Set: establish or encode TS(j) < TS(i),
// reporting success. Both entries are locked by the caller; the
// element assignments and counter allocations run under cmu so the
// lcount/ucount interaction stays atomic.
func (s *Striped) encode(j, i int, ej, ei *txnEntry, shift bool) bool {
	if j == i {
		return true
	}
	vj, vi := ej.vec, ei.vec
	rel, m := vj.Compare(vi)
	switch rel {
	case Less:
		return true
	case Greater:
		return false
	case Equal:
		if vj.Elem(m).Defined {
			panic(fmt.Sprintf("core: Set(%d,%d) on identical fully-defined vectors %v", j, i, vj))
		}
		s.cmu.Lock()
		if m == s.k {
			s.assign(j, ej, s.k, s.ucount)
			s.assign(i, ei, s.k, s.ucount+1)
			s.ucount += 2
		} else {
			v := s.upper(m, 0)
			s.assign(j, ej, m, v)
			s.assign(i, ei, m, v+1)
		}
		s.cmu.Unlock()
	default: // Unknown: exactly one of the two elements is undefined.
		if shift && m < s.k && s.shiftEncode(j, i, ej, ei, m) {
			return true
		}
		s.cmu.Lock()
		if !vi.Elem(m).Defined {
			if m == s.k {
				s.assign(i, ei, s.k, s.ucount)
				s.ucount++
			} else {
				s.assign(i, ei, m, s.upper(m, vj.Elem(m).V))
			}
		} else {
			if m == s.k {
				s.assign(j, ej, s.k, s.lcount)
				s.lcount--
			} else {
				s.assign(j, ej, m, vi.Elem(m).V-1)
			}
		}
		s.cmu.Unlock()
	}
	return true
}

// shiftEncode mirrors VectorTable.shiftEncode: copy the longer vector's
// defined prefix into the shorter one and encode at the next position
// where both are undefined.
func (s *Striped) shiftEncode(j, i int, ej, ei *txnEntry, m int) bool {
	vj, vi := ej.vec, ei.vec
	longer, shortID, shortE := vj, i, ei
	if !vj.Elem(m).Defined {
		longer, shortID, shortE = vi, j, ej
	}
	end := longer.FirstUndefined() - 1
	if end > s.k-1 {
		end = s.k - 1
	}
	if end < m {
		return false
	}
	s.cmu.Lock()
	for p := m; p <= end; p++ {
		s.assign(shortID, shortE, p, longer.Elem(p).V)
	}
	s.cmu.Unlock()
	return s.encode(j, i, ej, ei, false)
}

// repin moves the RT or WT index for x to txn, maintaining pin counts.
// The old holder is always among the locked entries (it was rt[x] or
// wt[x] when the step locked them).
func (s *Striped) repin(st *itemStripe, table *map[string]int, x string, txn int, es map[int]*txnEntry) {
	old := (*table)[x]
	if old == txn {
		return
	}
	(*table)[x] = txn
	es[txn].pins++
	if old == 0 {
		return
	}
	eo := es[old]
	eo.pins--
	s.maybeReclaim(old, eo)
}

// maybeReclaim frees the entry once the transaction is finished and no
// longer a most-recent read/write timestamp. The caller holds e.mu.
func (s *Striped) maybeReclaim(id int, e *txnEntry) {
	if id == 0 {
		return
	}
	if e.done && e.pins <= 0 && !e.dead {
		e.dead = true
		s.tmu.Lock()
		delete(s.txns, id)
		s.tmu.Unlock()
	}
}

// Commit marks transaction i finished; its vector storage is reclaimed
// as soon as it stops being a most-recent read/write timestamp.
func (s *Striped) Commit(i int) {
	es, unlock := s.lockTxns(i)
	defer unlock()
	e := es[i]
	e.done = true
	s.maybeReclaim(i, e)
}

// Abort discards transaction i; blocker is the Blocker of the
// rejecting Decision (0 for other causes). With StarvationAvoidance
// the vector is flushed and reseeded past the blocker, exactly as in
// Scheduler.Abort.
func (s *Striped) Abort(i, blocker int) {
	if i == 0 {
		return
	}
	if s.opts.StarvationAvoidance && blocker != 0 {
		es, unlock := s.lockTxns(i, blocker)
		b := es[blocker].vec.Elem(1)
		if b.Defined {
			seed := s.reseedFirst(i, es[i], b.V)
			unlock()
			if s.opts.Trace != nil {
				s.opts.Trace(Event{Kind: EvFlush, Txn: i, Val: seed})
			}
			return
		}
		e := es[i]
		e.done = true
		s.maybeReclaim(i, e)
		unlock()
		return
	}
	es, unlock := s.lockTxns(i)
	defer unlock()
	e := es[i]
	e.done = true
	s.maybeReclaim(i, e)
}

// reseedFirst mirrors VectorTable.ReseedFirst under the entry lock.
func (s *Striped) reseedFirst(i int, e *txnEntry, floor int64) int64 {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	seed := floor + 1
	if c := s.clock[0] + 1; c > seed {
		seed = c
	}
	if s.k == 1 {
		if seed < s.ucount {
			seed = s.ucount
		}
		s.ucount = seed + 1
	}
	e.vec.Reset()
	s.assign(i, e, 1, seed)
	return seed
}

// ReadPendingWriter supports the runtime adapter's immediate-mode
// check ("read ordered after uncommitted writer"): with x's latch HELD
// by the caller, it reports whether x's most recent writer w (≠ i) is
// live per the callback and TS(i) < TS(w) is NOT established — the
// lost-update window the adapter must abort. The callback must not
// call back into this scheduler.
func (s *Striped) ReadPendingWriter(i int, x string, live func(int) bool) (blocker int, conflict bool) {
	st := &s.stripes[s.latches.StripeOf(x)]
	w := st.wt[x]
	if w == i || !live(w) {
		return 0, false
	}
	es, unlock := s.lockTxns(i, w)
	defer unlock()
	if !s.vecLess(es[i].vec, es[w].vec) {
		return w, true
	}
	return 0, false
}

// Vector returns a copy of TS(i). Unknown transactions have the
// all-undefined vector.
func (s *Striped) Vector(i int) *Vector {
	es, unlock := s.lockTxns(i)
	defer unlock()
	return es[i].vec.Clone()
}

// RT returns RT(x) (0 if none), taking x's latch. Diagnostics only —
// callers already holding the latch must not use it.
func (s *Striped) RT(x string) int {
	unlock := s.latches.Lock(x)
	defer unlock()
	return s.stripes[s.latches.StripeOf(x)].rt[x]
}

// WT returns WT(x) (0 if none), taking x's latch. Diagnostics only.
func (s *Striped) WT(x string) int {
	unlock := s.latches.Lock(x)
	defer unlock()
	return s.stripes[s.latches.StripeOf(x)].wt[x]
}

// Counters returns the current (lcount, ucount) pair.
func (s *Striped) Counters() (lo, hi int64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.lcount, s.ucount
}

// SeedCounters raises the counters to at least the given consumption
// watermarks (lo for the descending lower counter negated, hi for the
// ascending upper counter) in one atomic clamp — the striped analogue
// of the coarse adapter's read-modify-write under its global mutex.
func (s *Striped) SeedCounters(lo, hi int64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if -lo < s.lcount {
		s.lcount = -lo
	}
	if hi > s.ucount {
		s.ucount = hi
	}
}

// LiveVectors returns the number of vectors currently held (including
// T_0), for storage-reclamation tests.
func (s *Striped) LiveVectors() int {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	return len(s.txns)
}

// Snapshot returns copies of all live timestamp vectors keyed by
// transaction id. Entries are locked one at a time, so the result is
// per-vector consistent; quiesce the scheduler for a global snapshot.
func (s *Striped) Snapshot() map[int]*Vector {
	s.tmu.RLock()
	ids := make([]int, 0, len(s.txns))
	for id := range s.txns {
		ids = append(ids, id)
	}
	s.tmu.RUnlock()
	out := make(map[int]*Vector, len(ids))
	for _, id := range ids {
		s.tmu.RLock()
		e := s.txns[id]
		s.tmu.RUnlock()
		if e == nil {
			continue
		}
		e.mu.Lock()
		if !e.dead {
			out[id] = e.vec.Clone()
		}
		e.mu.Unlock()
	}
	return out
}
