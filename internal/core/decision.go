package core

import "repro/internal/oplog"

// Verdict is the scheduler's decision on a single operation.
type Verdict int

// Possible verdicts. AcceptIgnored is an accepted write whose effect is
// dropped under the Thomas write rule (implementation issue (c)).
// Unavailable is not a protocol decision at all: a distributed scheduler
// could not reach a site it needed (crash or partition), so the
// operation failed fast without establishing or violating any ordering.
const (
	Accept Verdict = iota
	AcceptIgnored
	Reject
	Unavailable
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case AcceptIgnored:
		return "accept-ignored"
	case Unavailable:
		return "unavailable"
	default:
		return "reject"
	}
}

// Decision is the outcome of scheduling one operation. On Reject, Blocker
// is the transaction whose established-greater timestamp forced the abort
// (the paper's TS(j) > TS(i)).
type Decision struct {
	Op      oplog.Op
	Verdict Verdict
	Blocker int
	// Item is the item on which the reject happened (multi-item ops may
	// pass several items before one rejects).
	Item string
	// Site is the unreachable site of an Unavailable verdict (-1
	// otherwise meaningless).
	Site int
	// IgnoredItems lists the items of an accepted write whose effect must
	// be dropped under the Thomas write rule.
	IgnoredItems []string
}

// EventKind tags trace events.
type EventKind int

// Trace event kinds.
const (
	// EvAssign: element Pos of transaction Txn's vector was set to Val.
	EvAssign EventKind = iota
	// EvEncode: the dependency J -> I was newly encoded at position Pos.
	EvEncode
	// EvEstablished: the dependency J -> I was already established.
	EvEstablished
	// EvFlush: transaction Txn's vector was flushed and reseeded
	// (starvation fix).
	EvFlush
)

// Event is a trace record emitted through Options.Trace.
type Event struct {
	Kind EventKind
	Txn  int   // EvAssign, EvFlush
	Pos  int   // EvAssign: element index (1-based); EvEncode: deciding position
	Val  int64 // EvAssign: assigned value
	J, I int   // EvEncode, EvEstablished: dependency J -> I
}
