package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestLatchTableRoundsUp(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {100, 128},
	} {
		if got := NewLatchTable(tc.n).Stripes(); got != tc.want {
			t.Errorf("NewLatchTable(%d).Stripes() = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestLatchTableAliasedItems locks item sets that collide on the same
// stripe in one call: the dedup must keep the acquisition from
// self-deadlocking.
func TestLatchTableAliasedItems(t *testing.T) {
	lt := NewLatchTable(2) // every item lands on stripe 0 or 1
	items := make([]string, 16)
	for i := range items {
		items[i] = fmt.Sprintf("item%03d", i)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			unlock := lt.Lock(items...)
			unlock()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("aliased multi-item Lock deadlocked")
	}
}

// TestLatchTableMutualExclusion hammers one counter per stripe from
// many goroutines; under -race this also proves the latch establishes
// happens-before edges.
func TestLatchTableMutualExclusion(t *testing.T) {
	lt := NewLatchTable(4)
	counters := make([]int, lt.Stripes())
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				x := items[rng.Intn(len(items))]
				unlock := lt.Lock(x)
				counters[lt.StripeOf(x)]++
				unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != workers*rounds {
		t.Fatalf("lost increments: total %d, want %d", total, workers*rounds)
	}
}

// TestLatchTableNoLostWakeups parks many goroutines on ONE stripe and
// releases them one by one; if a wakeup were ever lost, a waiter would
// park forever and the watchdog fires.
func TestLatchTableNoLostWakeups(t *testing.T) {
	lt := NewLatchTable(1)
	const waiters = 32
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				unlock := lt.Lock("hot")
				unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("a waiter never woke up")
	}
}

// latchStorm is the shared property: N goroutines acquire random
// overlapping item sets in a loop; the run must finish within the
// watchdog deadline (deadlock-freedom) with all acquisitions balanced.
func latchStorm(t *testing.T, stripes, workers, itemsN, setMax, rounds int, seed int64) {
	t.Helper()
	lt := NewLatchTable(stripes)
	items := make([]string, itemsN)
	for i := range items {
		items[i] = fmt.Sprintf("k%04d", i)
	}
	held := make([]int32, lt.Stripes()) // guarded by the latch itself
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				n := 1 + rng.Intn(setMax)
				set := make([]string, n)
				for i := range set {
					set[i] = items[rng.Intn(len(items))]
				}
				unlock := lt.Lock(set...)
				seen := map[int]bool{}
				for _, x := range set {
					s := lt.StripeOf(x)
					if seen[s] {
						continue
					}
					seen[s] = true
					if held[s]++; held[s] != 1 {
						panic("latch held by two goroutines")
					}
				}
				for s := range seen {
					held[s]--
				}
				unlock()
			}
		}(seed + int64(w))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("latch storm deadlocked (watchdog)")
	}
}

func TestLatchTableStorm(t *testing.T) {
	latchStorm(t, 8, 12, 40, 6, 300, 1)
	latchStorm(t, 1, 8, 10, 4, 200, 2) // total aliasing: one stripe
}

// FuzzLatchTable derives a storm shape from the fuzz input: random
// overlap, random stripe aliasing, bounded wait asserted by watchdog.
func FuzzLatchTable(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint8(12), uint8(3), int64(42))
	f.Add(uint8(1), uint8(8), uint8(3), uint8(3), int64(7))
	f.Add(uint8(64), uint8(2), uint8(50), uint8(8), int64(-1))
	f.Fuzz(func(t *testing.T, stripes, workers, itemsN, setMax uint8, seed int64) {
		s := int(stripes%64) + 1
		w := int(workers%8) + 2
		n := int(itemsN%64) + 1
		m := int(setMax%8) + 1
		latchStorm(t, s, w, n, m, 50, seed)
	})
}
