package engine

import (
	"sync"
	"testing"
)

// TestSiteCountersStress races AllocUpper/AllocLower against
// RaiseSite/Sync/Skew/Reset under -race and asserts the two properties
// concurrency must not break: every allocated upper value is unique
// cluster-wide (k-th-column uniqueness survives crash/sync churn as
// long as Reset is immediately followed by a dominating re-raise, the
// journal-driven recovery contract), and watermarks are monotone
// outside the reset windows.
func TestSiteCountersStress(t *testing.T) {
	const sites = 4
	const perG = 400
	sc := NewSiteCounters(sites)

	// resetMu serializes Reset+RaiseSite pairs against a snapshot of the
	// cluster maximum, modeling recovery: volatile loss is always followed
	// by a reseed at or above everything any site has consumed.
	var resetMu sync.Mutex

	var mu sync.Mutex
	seen := make(map[int64]int)

	var wg sync.WaitGroup
	for g := 0; g < sites*2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			site := g % sites
			var vals []int64
			for i := 0; i < perG; i++ {
				resetMu.Lock()
				vals = append(vals, sc.AllocUpper(site, 0))
				sc.AllocLower(site, 0)
				resetMu.Unlock()
				switch i % 97 {
				case 13:
					sc.Sync(nil)
				case 31:
					sc.Sync(func(s int) bool { return s == (site+1)%sites })
				case 53:
					_ = sc.Skew()
				case 71:
					// Crash + journal reseed, atomically above the cluster max.
					resetMu.Lock()
					_, hi := sc.Watermarks()
					lo, _ := sc.Watermarks()
					sc.Reset(site)
					sc.RaiseSite(site, hi, lo)
					resetMu.Unlock()
				}
			}
			mu.Lock()
			for _, v := range vals {
				seen[v]++
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	for v, n := range seen {
		if n > 1 {
			t.Fatalf("upper value %d allocated %d times (re-issue under race)", v, n)
		}
	}
	if len(seen) != sites*2*perG {
		t.Fatalf("allocated %d unique values, want %d", len(seen), sites*2*perG)
	}
}

// TestSiteCountersWatermarkMonotone: without resets, Watermarks is
// non-decreasing under concurrent allocation and sync.
func TestSiteCountersWatermarkMonotone(t *testing.T) {
	sc := NewSiteCounters(3)
	stop := make(chan struct{})
	var allocs, watcher sync.WaitGroup
	for s := 0; s < 3; s++ {
		allocs.Add(1)
		go func(s int) {
			defer allocs.Done()
			for i := 0; i < 2000; i++ {
				sc.AllocUpper(s, 0)
				sc.AllocLower(s, 0)
				if i%50 == 0 {
					sc.Sync(nil)
				}
			}
		}(s)
	}
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		var lastLo, lastHi int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			lo, hi := sc.Watermarks()
			if lo < lastLo || hi < lastHi {
				t.Errorf("watermarks went backwards: (%d,%d) after (%d,%d)", lo, hi, lastLo, lastHi)
				return
			}
			lastLo, lastHi = lo, hi
		}
	}()
	allocs.Wait()
	close(stop)
	watcher.Wait()
}

// TestSyncNeverRaisesSkippedSite is the property test the degraded-mode
// skip set relies on: whatever the skip set, a skipped site is neither
// read nor written by Sync — its counters are bit-identical before and
// after, and the raised sites' maximum ignores the skipped site's
// counters entirely.
func TestSyncNeverRaisesSkippedSite(t *testing.T) {
	const sites = 5
	for trial := 0; trial < 64; trial++ {
		sc := NewSiteCounters(sites)
		// Deterministic pseudo-random counter states and skip sets.
		rnd := func(i int64) int64 { return int64(uint64(trial)*0x9E3779B9+uint64(i)*0x85EBCA6B) % 1000 }
		for s := 0; s < sites; s++ {
			sc.RaiseSite(s, 1+rnd(int64(s))%500, rnd(int64(s)*7)%300)
		}
		skipSet := map[int]bool{}
		for s := 0; s < sites; s++ {
			if rnd(int64(s)*13)%3 == 0 {
				skipSet[s] = true
			}
		}
		before := make([][2]int64, sites)
		var wantU, wantL int64
		for s := 0; s < sites; s++ {
			u, l := sc.SiteWatermarks(s)
			before[s] = [2]int64{u, l}
			if !skipSet[s] {
				wantU = max(wantU, u)
				wantL = max(wantL, l)
			}
		}
		sc.Sync(func(s int) bool { return skipSet[s] })
		for s := 0; s < sites; s++ {
			u, l := sc.SiteWatermarks(s)
			if skipSet[s] {
				if u != before[s][0] || l != before[s][1] {
					t.Fatalf("trial %d: skipped site %d moved (%d,%d) -> (%d,%d)",
						trial, s, before[s][0], before[s][1], u, l)
				}
			} else {
				if u != wantU || l != wantL {
					t.Fatalf("trial %d: synced site %d at (%d,%d), want reachable max (%d,%d)",
						trial, s, u, l, wantU, wantL)
				}
			}
		}
		if len(skipSet) == sites {
			continue
		}
		// Skew over the synced population is zero by construction; the
		// cluster-wide skew is bounded by the skipped sites' lag.
		if got := sc.Skew(); got < 0 {
			t.Fatalf("negative skew %d", got)
		}
	}
}

// TestSkewBoundAfterSync: with no skip set, Sync drives Skew to zero —
// the bound the paper's periodic synchronization maintains.
func TestSkewBoundAfterSync(t *testing.T) {
	sc := NewSiteCounters(4)
	for s := 0; s < 4; s++ {
		for i := 0; i < (s+1)*10; i++ {
			sc.AllocUpper(s, 0)
		}
	}
	if sc.Skew() == 0 {
		t.Fatal("test is vacuous: no skew built up")
	}
	sc.Sync(nil)
	if got := sc.Skew(); got != 0 {
		t.Fatalf("Skew after full Sync = %d, want 0", got)
	}
}
