package engine

import (
	"repro/internal/core"
	"repro/internal/oplog"
)

// Discipline selects the locking scheme an engine instantiation uses.
type Discipline int

const (
	// Coarse is the single-owner discipline: the caller serializes every
	// call (typically under one adapter mutex). It is the differential
	// reference the equivalence suite checks all other instantiations
	// against.
	Coarse Discipline = iota
	// StripedLocks is the fine-grained discipline: hash-striped item
	// latches, per-transaction entry locks and a counter lock (see
	// Striped), safe for concurrent use.
	StripedLocks
)

// Engine is the scheduler surface both disciplines provide: the
// Algorithm 1 step/commit/abort protocol plus the durable-counter
// watermark export every engine instantiation carries, so an adapter
// built on the engine cannot forget durability (the DurableCounters
// methods of internal/sched delegate straight to these).
type Engine interface {
	Step(op oplog.Op) core.Decision
	Commit(i int)
	Abort(i, blocker int)
	K() int
	Vector(i int) *core.Vector
	LiveVectors() int
	// Watermarks returns the monotone counter-consumption watermarks
	// (lower count, upper count) the WAL journals with every commit.
	Watermarks() (lo, hi int64)
	// RaiseWatermarks lifts the counters to at least the given
	// watermarks (recovery seeding), raise-only.
	RaiseWatermarks(lo, hi int64)
}

// New builds an MT(k) engine under the given locking discipline. Both
// disciplines implement Engine and are decision-for-decision
// equivalent; Coarse additionally exposes the coarse-only helpers via
// *Scheduler and StripedLocks the latch table via *Striped.
func New(opts Options, d Discipline) Engine {
	if d == StripedLocks {
		return NewStriped(opts)
	}
	return NewScheduler(opts)
}

// Both disciplines must satisfy the full engine surface.
var (
	_ Engine = (*Scheduler)(nil)
	_ Engine = (*Striped)(nil)
)
