package engine

import (
	"fmt"

	"repro/internal/core"
)

// This file is the protocol kernel: the one implementation of the
// dependency-encoding procedure Set(j, i) of Algorithm 1 that every
// variant in the family shares. A variant differs only in
//
//   - where counter-column values come from (its ColumnAllocator),
//   - where assigned elements land and how relative values are chosen
//     (its Sink: table clock + trace hook for MT(k), per-subprotocol
//     maps for MT(k+), bare vectors for DMT(k)),
//
// so the four-case switch below — and the two per-column arms it is
// built from, which the MT(k+) shared tables also call directly —
// exists exactly once.

// Side names the two transactions of a dependency TS(j) < TS(i).
type Side int

// The j (lesser) and i (greater) sides of an encoding.
const (
	SideJ Side = iota
	SideI
)

// Sink receives the kernel's element assignments. Assign must store the
// value into the side's vector at pos (and may advance clocks or emit
// trace events); Upper returns the value for a fresh "greater" element
// in relative column m given a floor — floor+1 in the paper, past the
// column clock under the monotonic-encoding ablation.
type Sink interface {
	Assign(side Side, pos int, val int64)
	Upper(m int, floor int64) int64
}

// Dep is one dependency-encoding request: establish or encode
// TS(j) < TS(i) over the two vectors, drawing counter-column values
// from Alloc and writing through Sink. Shift requests the Section
// III-D-5 right-shifted encoding for hot items.
type Dep struct {
	J, I   int
	VJ, VI *core.Vector
	K      int
	Alloc  ColumnAllocator
	Sink   Sink
	Shift  bool
}

// Encode implements procedure Set(j, i): it reports whether
// TS(j) < TS(i) is (now) established, assigning elements through the
// sink when the order is still open. The caller must hold whatever
// locks its discipline requires for both vectors and the allocator.
func (d Dep) Encode() bool {
	if d.J == d.I {
		return true
	}
	rel, m := d.VJ.Compare(d.VI)
	switch rel {
	case core.Less:
		return true
	case core.Greater:
		return false
	case core.Equal:
		if d.VJ.Elem(m).Defined {
			// Compare walked off the end: two DISTINCT ids with identical
			// fully-defined vectors. Unreachable through the schedulers
			// (counter-column values are distinct and nothing is ever
			// ordered before T_0, whose <0,...> can tie the first lcount
			// value when k = 1); reject API misuse loudly rather than
			// corrupting the table.
			panic(fmt.Sprintf("engine: Set(%d,%d) on identical fully-defined vectors %v", d.J, d.I, d.VJ))
		}
		d.encodeAt(m, core.Undef, core.Undef)
	default: // Unknown: exactly one of the two elements is undefined.
		if d.Shift && m < d.K && d.shiftEncode(m) {
			return true
		}
		d.encodeAt(m, d.VJ.Elem(m), d.VI.Elem(m))
	}
	return true
}

// encodeAt assigns the missing element(s) at the deciding position m so
// that TS(j) < TS(i) holds there.
func (d Dep) encodeAt(m int, ej, ei core.Elem) {
	var nj, ni core.Elem
	if m == d.K {
		nj, ni, _ = EncodeCounterColumn(ej, ei, d.Alloc)
	} else {
		nj, ni, _ = EncodeRelativeColumn(ej, ei, func(floor int64) int64 { return d.Sink.Upper(m, floor) })
	}
	if !ej.Defined {
		d.Sink.Assign(SideJ, m, nj.V)
	}
	if !ei.Defined {
		d.Sink.Assign(SideI, m, ni.V)
	}
}

// shiftEncode copies the longer vector's defined prefix into the
// shorter one and encodes the dependency at the first position where
// both are undefined (or with counters at column k). Reports whether it
// applied.
func (d Dep) shiftEncode(m int) bool {
	longer, short := d.VJ, SideI
	if !d.VJ.Elem(m).Defined {
		longer, short = d.VI, SideJ
	}
	end := longer.FirstUndefined() - 1 // last defined position
	if end > d.K-1 {
		end = d.K - 1
	}
	if end < m {
		return false
	}
	for p := m; p <= end; p++ {
		d.Sink.Assign(short, p, longer.Elem(p).V)
	}
	// Equal prefixes now extend through end; encode at the next deciding
	// position without shifting again.
	d2 := d
	d2.Shift = false
	return d2.Encode()
}

// EncodeCounterColumn is the counter-column (column k) arm of procedure
// Set for one column: given the two current elements it returns the
// (possibly freshly allocated) elements and the resulting relation.
// Greater means the column contradicts TS(j) < TS(i); Equal means both
// values were already equal — impossible for a distinct counter column,
// reported so callers over plain maps (the MT(k+) LASTCOL) can treat
// it as already encoded. The caller stores any element it passed in as
// undefined.
func EncodeCounterColumn(ej, ei core.Elem, alloc ColumnAllocator) (core.Elem, core.Elem, core.Rel) {
	switch {
	case ej.Defined && ei.Defined:
		switch {
		case ej.V < ei.V:
			return ej, ei, core.Less
		case ej.V > ei.V:
			return ej, ei, core.Greater
		default:
			return ej, ei, core.Equal
		}
	case ej.Defined:
		return ej, core.Int(alloc.AllocUpper(ej.V)), core.Less
	case ei.Defined:
		return core.Int(alloc.AllocLower(ei.V)), ei, core.Less
	default:
		a, b := alloc.AllocPair(0)
		return core.Int(a), core.Int(b), core.Less
	}
}

// EncodeRelativeColumn is the relative-column (column m < k) arm:
// values need not be unique, only ordered, so fresh elements are
// derived from the neighbour (upper(floor) for the greater side,
// value-1 for the lesser). Equal means the column cannot decide and the
// caller walks to the next one.
func EncodeRelativeColumn(pj, pi core.Elem, upper func(floor int64) int64) (core.Elem, core.Elem, core.Rel) {
	switch {
	case pj.Defined && pi.Defined:
		switch {
		case pj.V < pi.V:
			return pj, pi, core.Less
		case pj.V > pi.V:
			return pj, pi, core.Greater
		default:
			return pj, pi, core.Equal
		}
	case pj.Defined:
		return pj, core.Int(upper(pj.V)), core.Less
	case pi.Defined:
		return core.Int(pi.V - 1), pi, core.Less
	default:
		v := upper(0)
		return core.Int(v), core.Int(v + 1), core.Less
	}
}

// VectorSink writes straight into the two vectors with the paper's
// plain relative values (no clock, no trace) — the DMT(k) discipline,
// whose vectors live outside any table.
type VectorSink struct {
	VJ, VI *core.Vector
}

// Assign stores the value into the addressed vector.
func (s VectorSink) Assign(side Side, pos int, val int64) {
	if side == SideJ {
		s.VJ.SetElem(pos, val)
	} else {
		s.VI.SetElem(pos, val)
	}
}

// Upper returns the paper's relative value floor+1.
func (s VectorSink) Upper(m int, floor int64) int64 { return floor + 1 }
