package engine

import (
	"sync"

	"repro/internal/explore/hook"
)

// ColumnAllocator hands out the distinct k-th-column ("counter column")
// values of Algorithm 1. Every protocol variant in the family differs
// only in WHERE those values come from:
//
//   - MT(k) and MT(k1,k2) draw from one LocalCounters pair per table;
//   - MT(k+) draws from one LocalCounters pair per subprotocol LASTCOL;
//   - DMT(k) draws globally-unique (counter, site-id) pairs from the
//     acting site's SiteCounters slot.
//
// AllocUpper returns a fresh value strictly greater than bound (and
// greater than every upper value the allocator handed out before);
// AllocLower returns a fresh value strictly smaller than bound (and
// smaller than every previous lower value); AllocPair returns two fresh
// ascending upper values, both greater than bound, for the case where
// neither vector has a counter-column element yet. Synchronization is
// the allocator's own business: LocalCounters relies on the engine's
// locking discipline, SiteCounters locks per site.
type ColumnAllocator interface {
	AllocUpper(bound int64) int64
	AllocLower(bound int64) int64
	AllocPair(bound int64) (int64, int64)
}

// LocalCounters is the centralized lcount/ucount pair of Fig. 2: upper
// values ascend from 1, lower values descend from 0. It is deliberately
// unsynchronized — the engine's locking discipline (the coarse owner's
// serialization or the striped engine's counter lock) guards it, so the
// same allocator serves both disciplines without double locking.
type LocalCounters struct {
	lcount int64
	ucount int64
	// aid is a process-unique allocator id: the schedule explorer's
	// k-th-column uniqueness oracle checks that no value is handed out
	// twice by the same allocator, and composite/nested schedulers run
	// several LocalCounters side by side.
	aid uint64
}

// NewLocalCounters returns the initial counter pair (lcount 0, ucount 1).
func NewLocalCounters() *LocalCounters {
	return &LocalCounters{ucount: 1, aid: hook.NewResourceRange(1)}
}

// AllocUpper consumes the next ascending upper value. The bound is
// ignored: centralized counters are already strictly monotonic, so
// every fresh upper value exceeds every previously assigned one.
func (c *LocalCounters) AllocUpper(bound int64) int64 {
	v := c.ucount
	c.ucount++
	hook.Observe("alloc.upper", "", v, int64(c.aid))
	return v
}

// AllocLower consumes the next descending lower value (bound ignored,
// as for AllocUpper).
func (c *LocalCounters) AllocLower(bound int64) int64 {
	v := c.lcount
	c.lcount--
	hook.Observe("alloc.lower", "", v, int64(c.aid))
	return v
}

// AllocPair consumes two consecutive upper values.
func (c *LocalCounters) AllocPair(bound int64) (int64, int64) {
	a := c.ucount
	c.ucount += 2
	hook.Observe("alloc.upper", "", a, int64(c.aid))
	hook.Observe("alloc.upper", "", a+1, int64(c.aid))
	return a, a + 1
}

// ReserveAtLeast consumes and returns an upper value that is at least
// seed (the starvation fix's k = 1 reseed: the seeded element lives in
// the counter column, so it must come from ucount to stay unique).
func (c *LocalCounters) ReserveAtLeast(seed int64) int64 {
	if seed < c.ucount {
		seed = c.ucount
	}
	c.ucount = seed + 1
	hook.Observe("alloc.upper", "", seed, int64(c.aid))
	return seed
}

// Counters returns the raw (lcount, ucount) pair.
func (c *LocalCounters) Counters() (lo, hi int64) { return c.lcount, c.ucount }

// SetCounters overrides the raw pair (table reproduction and tests).
func (c *LocalCounters) SetCounters(lo, hi int64) { c.lcount, c.ucount = lo, hi }

// Watermarks returns the monotone consumption watermarks the WAL
// journals: how far each counter has advanced from its seed (both
// non-negative and non-decreasing over the allocator's lifetime).
func (c *LocalCounters) Watermarks() (lo, hi int64) { return -c.lcount, c.ucount }

// Raise lifts the counters to at least the given watermarks in one
// raise-only clamp; values already past the watermark are preserved
// (recovery replays may observe stale watermarks).
func (c *LocalCounters) Raise(lo, hi int64) {
	if -lo < c.lcount {
		c.lcount = -lo
	}
	if hi > c.ucount {
		c.ucount = hi
	}
}

// SiteCounters is the decentralized counter discipline of DMT(k)
// (Section V-B): every site s owns an independent (ucnt, lcnt) pair and
// allocates the globally unique k-th-column values cnt*S + s (negated
// for lower values), so no coordination is needed for uniqueness. The
// bound-bumping loops skip past any counter multiples at or inside the
// bound, mirroring the centralized counters' "strictly past everything
// seen" guarantee one site at a time.
type SiteCounters struct {
	n     int64 // number of sites S
	sites []siteCounter
	// aid identifies the cluster to the explorer's uniqueness oracle:
	// cnt*S+site values are unique across the whole cluster, so one id
	// covers every site.
	aid uint64
}

type siteCounter struct {
	mu   sync.Mutex
	ucnt int64
	lcnt int64

	// Durable write-ahead lease (SetDurable): the site never consumes a
	// counter at or past durU/durL without first persisting an extended
	// lease, so a restart that reseeds from the persisted lease can never
	// re-issue a consumed value. Invariant while extend != nil and
	// leaseErr == nil: durU >= ucnt and durL >= lcnt.
	extend     func(u, l int64) error
	durU, durL int64
	leaseBatch int64
	leaseErr   error // sticky: first failed lease extension
}

// extendLeaseLocked persists a new lease when the counters have caught
// up with the durable one. Batching amortizes the fsync: each extension
// covers the next leaseBatch allocations. Caller holds s.mu.
func (s *siteCounter) extendLeaseLocked() {
	if s.extend == nil || s.leaseErr != nil {
		return
	}
	if s.ucnt <= s.durU && s.lcnt <= s.durL {
		return
	}
	u := max(s.ucnt, s.durU) + s.leaseBatch
	l := max(s.lcnt, s.durL) + s.leaseBatch
	if err := s.extend(u, l); err != nil {
		s.leaseErr = err
		return
	}
	s.durU, s.durL = u, l
}

// NewSiteCounters returns per-site counters for the given cluster size.
func NewSiteCounters(sites int) *SiteCounters {
	if sites < 1 {
		panic("engine: SiteCounters needs at least one site")
	}
	c := &SiteCounters{n: int64(sites), sites: make([]siteCounter, sites), aid: hook.NewResourceRange(1)}
	for i := range c.sites {
		c.sites[i].ucnt = 1
	}
	return c
}

// Sites returns the cluster size S.
func (c *SiteCounters) Sites() int { return len(c.sites) }

// For returns the acting site's ColumnAllocator view, the object a
// dependency encoding passes to the engine kernel.
func (c *SiteCounters) For(site int) ColumnAllocator { return siteAlloc{c: c, site: site} }

// AllocUpper allocates a fresh upper value cnt*S+site strictly greater
// than bound from the acting site's counter.
func (c *SiteCounters) AllocUpper(site int, bound int64) int64 {
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	cnt := s.ucnt
	for cnt*c.n+int64(site) <= bound {
		cnt++
	}
	s.ucnt = cnt + 1
	s.extendLeaseLocked()
	v := cnt*c.n + int64(site)
	hook.Observe("alloc.upper", "", v, int64(c.aid))
	return v
}

// AllocLower allocates a fresh lower value -(cnt*S+site) strictly
// smaller than bound from the acting site's counter.
func (c *SiteCounters) AllocLower(site int, bound int64) int64 {
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	cnt := s.lcnt
	for -(cnt*c.n + int64(site)) >= bound {
		cnt++
	}
	s.lcnt = cnt + 1
	s.extendLeaseLocked()
	v := -(cnt*c.n + int64(site))
	hook.Observe("alloc.lower", "", v, int64(c.aid))
	return v
}

type siteAlloc struct {
	c    *SiteCounters
	site int
}

func (a siteAlloc) AllocUpper(bound int64) int64 { return a.c.AllocUpper(a.site, bound) }
func (a siteAlloc) AllocLower(bound int64) int64 { return a.c.AllocLower(a.site, bound) }

// AllocPair chains two upper allocations so the second strictly
// dominates the first (the decentralized analogue of (ucount, ucount+1)).
func (a siteAlloc) AllocPair(bound int64) (int64, int64) {
	v1 := a.c.AllocUpper(a.site, bound)
	v2 := a.c.AllocUpper(a.site, v1)
	return v1, v2
}

// Reset drops one site's counters back to their initial values — the
// volatile-state loss of a crash, for harnesses that model recovery
// without a journal. The durable lease hook is detached too (its file
// handle died with the process); recovery reinstalls it via SetDurable
// with the watermarks read back from the site's log.
func (c *SiteCounters) Reset(site int) {
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ucnt, s.lcnt = 1, 0
	s.extend = nil
	s.durU, s.durL = 0, 0
	s.leaseErr = nil
}

// MaxExcept returns the maximum upper and lower counter over every site
// but the excepted one — the surviving-population bound a recovering
// site must re-validate its journal-derived counters against.
func (c *SiteCounters) MaxExcept(except int) (hiU, hiL int64) {
	for i := range c.sites {
		if i == except {
			continue
		}
		s := &c.sites[i]
		s.mu.Lock()
		if s.ucnt > hiU {
			hiU = s.ucnt
		}
		if s.lcnt > hiL {
			hiL = s.lcnt
		}
		s.mu.Unlock()
	}
	return hiU, hiL
}

// RaiseSite lifts one site's counters to at least (u, l), raise-only.
func (c *SiteCounters) RaiseSite(site int, u, l int64) {
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	if u > s.ucnt {
		s.ucnt = u
	}
	if l > s.lcnt {
		s.lcnt = l
	}
	s.extendLeaseLocked()
}

// SetDurable installs a write-ahead lease for one site: before any
// allocation or raise moves the site's counters past the persisted
// lease (durU, durL), extend is called — under the site's mutex — to
// persist a lease batch allocations ahead. seed (durU, durL) with the
// watermarks recovered from the site's own durable log; the counters
// are raised to them, which is exactly the no-reissue reseed: every
// counter the previous incarnation could have consumed lies below the
// lease it persisted first. A failed extension is sticky (DurableErr);
// allocation continues volatile so a durability fault degrades the
// guarantee, not availability.
func (c *SiteCounters) SetDurable(site int, durU, durL, batch int64, extend func(u, l int64) error) {
	if batch < 1 {
		batch = 1
	}
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	if durU > s.ucnt {
		s.ucnt = durU
	}
	if durL > s.lcnt {
		s.lcnt = durL
	}
	s.extend = extend
	s.durU, s.durL = durU, durL
	s.leaseBatch = batch
	s.leaseErr = nil
	s.extendLeaseLocked()
}

// DetachDurable removes a site's lease hook without touching the
// counters — the hook's file handle died with the site's process; the
// persisted lease survives on disk for the recovery reseed.
func (c *SiteCounters) DetachDurable(site int) {
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extend = nil
	s.durU, s.durL = 0, 0
	s.leaseErr = nil
}

// DurableErr returns the site's sticky lease-extension error, if any.
func (c *SiteCounters) DurableErr(site int) error {
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaseErr
}

// DurableLease returns the site's current persisted lease (0, 0 when no
// durable hook is installed) — tests assert the lease always dominates
// the volatile counters.
func (c *SiteCounters) DurableLease(site int) (u, l int64) {
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durU, s.durL
}

// SiteWatermarks returns one site's raw (ucnt, lcnt) pair.
func (c *SiteCounters) SiteWatermarks(site int) (u, l int64) {
	s := &c.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ucnt, s.lcnt
}

// Sync raises every reachable site's counters to the cluster-wide
// maximum (the paper's periodic counter synchronization, which bounds
// the element-value skew between sites). Sites for which skip reports
// true (down or partitioned) are neither read nor written.
func (c *SiteCounters) Sync(skip func(site int) bool) {
	var maxU, maxL int64
	for i := range c.sites {
		if skip != nil && skip(i) {
			continue
		}
		s := &c.sites[i]
		s.mu.Lock()
		if s.ucnt > maxU {
			maxU = s.ucnt
		}
		if s.lcnt > maxL {
			maxL = s.lcnt
		}
		s.mu.Unlock()
	}
	for i := range c.sites {
		if skip != nil && skip(i) {
			continue
		}
		c.RaiseSite(i, maxU, maxL)
	}
}

// Skew returns the largest upper-counter gap between any two sites
// (the quantity Sync bounds), for tests and diagnostics.
func (c *SiteCounters) Skew() int64 {
	var minU, maxU int64
	for i := range c.sites {
		s := &c.sites[i]
		s.mu.Lock()
		u := s.ucnt
		s.mu.Unlock()
		if i == 0 || u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
	}
	return maxU - minU
}

// Watermarks returns the cluster-wide consumption watermarks: the
// maximum lower and upper counter over all sites. Per-site counters
// only grow (Reset models volatile loss and is followed by a
// journal-driven re-raise), so the maxima are monotone and safe to
// journal as durable watermarks.
func (c *SiteCounters) Watermarks() (lo, hi int64) {
	for i := range c.sites {
		s := &c.sites[i]
		s.mu.Lock()
		if s.lcnt > lo {
			lo = s.lcnt
		}
		if s.ucnt > hi {
			hi = s.ucnt
		}
		s.mu.Unlock()
	}
	return lo, hi
}

// Raise lifts every site's counters to at least the given watermarks
// (recovery seeding), raise-only per site.
func (c *SiteCounters) Raise(lo, hi int64) {
	for i := range c.sites {
		c.RaiseSite(i, hi, lo)
	}
}
