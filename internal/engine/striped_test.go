package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	. "repro/internal/core"
	"repro/internal/oplog"
)

// stripedDiffConfig is one cell of the differential matrix.
type stripedDiffConfig struct {
	name string
	opts Options
}

func stripedDiffMatrix() []stripedDiffConfig {
	return []stripedDiffConfig{
		{"k1", Options{K: 1}},
		{"k2", Options{K: 2}},
		{"k3", Options{K: 3}},
		{"k2-thomas", Options{K: 2, ThomasWriteRule: true}},
		{"k2-starve", Options{K: 2, StarvationAvoidance: true}},
		{"k2-relaxed", Options{K: 2, RelaxedReadCheck: true}},
		{"k3-mono", Options{K: 3, MonotonicEncoding: true}},
		{"k3-hot", Options{K: 3, HotThreshold: 3}},
		{"k3-all", Options{K: 3, ThomasWriteRule: true, StarvationAvoidance: true,
			RelaxedReadCheck: true, HotThreshold: 4}},
	}
}

// TestStripedMatchesCoarse drives the coarse Scheduler and the Striped
// scheduler through identical random operation streams (single
// goroutine, so the striped one runs in a fixed serial order) and
// asserts bit-identical behaviour: every Decision, every trace event,
// the counters, the live-vector count and every surviving vector.
func TestStripedMatchesCoarse(t *testing.T) {
	for _, cfg := range stripedDiffMatrix() {
		for seed := int64(1); seed <= 6; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", cfg.name, seed), func(t *testing.T) {
				runStripedDiff(t, cfg.opts, seed)
			})
		}
	}
}

func runStripedDiff(t *testing.T, opts Options, seed int64) {
	t.Helper()
	var coarseTrace, stripedTrace []Event
	co := opts
	co.Trace = func(e Event) { coarseTrace = append(coarseTrace, e) }
	so := opts
	so.Trace = func(e Event) { stripedTrace = append(stripedTrace, e) }
	coarse := NewScheduler(co)
	// A tiny stripe count forces distinct items onto shared stripes, so
	// the differential also covers latch/stripe aliasing.
	striped := NewStripedSize(so, 4)

	rng := rand.New(rand.NewSource(seed))
	const txns = 12
	items := []string{"a", "b", "c", "d", "e"}
	blockers := make(map[int]int)
	live := make(map[int]bool)
	for step := 0; step < 400; step++ {
		i := 1 + rng.Intn(txns)
		switch r := rng.Float64(); {
		case r < 0.40: // read
			n := 1
			if rng.Intn(4) == 0 {
				n = 2
			}
			op := oplog.R(i, pickItems(rng, items, n)...)
			compareStep(t, step, coarse, striped, op, blockers, live)
		case r < 0.80: // write
			op := oplog.W(i, pickItems(rng, items, 1)...)
			compareStep(t, step, coarse, striped, op, blockers, live)
		case r < 0.92: // commit
			if live[i] {
				coarse.Commit(i)
				striped.Commit(i)
				delete(live, i)
				delete(blockers, i)
			}
		default: // abort with the last rejecting blocker (starvation path)
			if live[i] {
				coarse.Abort(i, blockers[i])
				striped.Abort(i, blockers[i])
				delete(live, i)
				delete(blockers, i)
			}
		}
		if len(coarseTrace) != len(stripedTrace) {
			t.Fatalf("step %d: trace lengths diverge: coarse %d striped %d",
				step, len(coarseTrace), len(stripedTrace))
		}
	}
	if !reflect.DeepEqual(coarseTrace, stripedTrace) {
		for i := range coarseTrace {
			if coarseTrace[i] != stripedTrace[i] {
				t.Fatalf("trace[%d]: coarse %+v striped %+v", i, coarseTrace[i], stripedTrace[i])
			}
		}
		t.Fatalf("traces differ")
	}
	cl, cu := coarse.Counters()
	sl, su := striped.Counters()
	if cl != sl || cu != su {
		t.Fatalf("counters: coarse (%d,%d) striped (%d,%d)", cl, cu, sl, su)
	}
	if coarse.LiveVectors() != striped.LiveVectors() {
		t.Fatalf("live vectors: coarse %d striped %d", coarse.LiveVectors(), striped.LiveVectors())
	}
	cs, ss := coarse.Snapshot(), striped.Snapshot()
	if len(cs) != len(ss) {
		t.Fatalf("snapshot sizes: coarse %d striped %d", len(cs), len(ss))
	}
	for id, cv := range cs {
		sv := ss[id]
		if sv == nil {
			t.Fatalf("txn %d in coarse snapshot only", id)
		}
		if cv.String() != sv.String() {
			t.Fatalf("txn %d vectors differ: coarse %v striped %v", id, cv, sv)
		}
	}
}

func pickItems(rng *rand.Rand, items []string, n int) []string {
	out := make([]string, 0, n)
	for len(out) < n {
		x := items[rng.Intn(len(items))]
		dup := false
		for _, y := range out {
			if y == x {
				dup = true
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

func compareStep(t *testing.T, step int, coarse *Scheduler, striped *Striped,
	op oplog.Op, blockers map[int]int, live map[int]bool) {
	t.Helper()
	dc := coarse.Step(op)
	ds := striped.Step(op)
	if dc.Verdict != ds.Verdict || dc.Blocker != ds.Blocker || dc.Item != ds.Item ||
		!reflect.DeepEqual(dc.IgnoredItems, ds.IgnoredItems) {
		t.Fatalf("step %d op %v: coarse %+v striped %+v", step, op, dc, ds)
	}
	live[op.Txn] = true
	if dc.Verdict == Reject {
		blockers[op.Txn] = dc.Blocker
	}
	// Spot-check the per-item indexes agree.
	for _, x := range op.Items {
		if coarse.RT(x) != striped.RT(x) || coarse.WT(x) != striped.WT(x) {
			t.Fatalf("step %d item %s: RT/WT coarse (%d,%d) striped (%d,%d)",
				step, x, coarse.RT(x), coarse.WT(x), striped.RT(x), striped.WT(x))
		}
	}
}

// TestStripedAcceptsPaperExample replays the Example 1 two-step log
// (accepted by MT(2), rejected by MT(1)) through the striped scheduler.
func TestStripedAcceptsPaperExample(t *testing.T) {
	l := oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]")
	s := NewStriped(Options{K: 2})
	for idx, op := range l.Ops {
		if d := s.Step(op); d.Verdict == Reject {
			t.Fatalf("op %d %v rejected (blocker %d)", idx, op, d.Blocker)
		}
	}
	s1 := NewStriped(Options{K: 1})
	rejected := false
	for _, op := range l.Ops {
		if d := s1.Step(op); d.Verdict == Reject {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("MT(1)/striped accepted the Example 1 log")
	}
}

// TestStripedReclaimsVectors mirrors the coarse storage-reclamation
// behaviour: committed transactions vanish once unpinned.
func TestStripedReclaimsVectors(t *testing.T) {
	s := NewStriped(Options{K: 2})
	for i := 1; i <= 50; i++ {
		if d := s.Step(oplog.R(i, "x")); d.Verdict == Reject {
			t.Fatalf("read %d rejected", i)
		}
		if d := s.Step(oplog.W(i, "x")); d.Verdict == Reject {
			t.Fatalf("write %d rejected", i)
		}
		s.Commit(i)
	}
	// Only T_0 and the last transaction (still pinned as RT/WT) survive.
	if n := s.LiveVectors(); n > 3 {
		t.Fatalf("LiveVectors = %d, want <= 3", n)
	}
}
